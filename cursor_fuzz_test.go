package topk

// FuzzCursorSequence drives a cursor through arbitrary op sequences —
// deepen by 0, deepen past n, score-range pages, close, pages after close,
// pages after exhaustion — and holds every prefix to the recompute oracle:
// whatever the interleaving, the answers emitted so far must be exactly a
// fresh run of the same total depth, with the identical bill. The nightly
// workflow runs the long campaign; CI smokes it briefly.

import (
	"errors"
	"reflect"
	"testing"
)

func FuzzCursorSequence(f *testing.F) {
	f.Add(int64(1), []byte{3, 4, 5})
	f.Add(int64(7), []byte{0, 13, 0, 13, 2})      // zero-delta polls and over-asks
	f.Add(int64(42), []byte{200, 1})              // exhaust, then keep paging
	f.Add(int64(3), []byte{2, 0xFF, 3, 4})        // close mid-sequence
	f.Add(int64(11), []byte{0xFE, 2, 0xFE, 0xFE}) // score-range pages between ordinal ones
	f.Add(int64(19), []byte{1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1})

	f.Fuzz(func(t *testing.T, seed int64, ops []byte) {
		const (
			n = 40
			m = 2
			k = 3
		)
		if len(ops) > 24 {
			ops = ops[:24]
		}
		ds, err := GenerateDataset("uniform", n, m, seed%1000)
		if err != nil {
			t.Skip()
		}
		eng, err := NewEngine(DataBackend(ds), UniformScenario(m, 1, 2))
		if err != nil {
			t.Fatal(err)
		}
		fixed := WithNC([]float64{0.5, 0.5}, nil)
		cur, err := eng.Open(Query{F: Min(), K: k}, fixed)
		if err != nil {
			t.Fatal(err)
		}
		defer cur.Close()

		oracle := TopKOracle(ds, Min(), n)
		var got []Item
		tau := 0.0 // NextUntil thresholds descend through the true scores
		closed := false
		rangeUsed := false
		for _, op := range ops {
			switch {
			case closed:
				// Every op after close must fail the same way, with no items
				// and a zeroed ledger view.
				if _, err := cur.Next(int(op) % 7); !errors.Is(err, ErrCursorClosed) {
					t.Fatalf("Next after Close: err = %v, want ErrCursorClosed", err)
				}
				if led := cur.Ledger(); led.TotalAccesses() != 0 {
					t.Fatal("closed cursor still exposes a ledger")
				}
			case op == 0xFF:
				if err := cur.Close(); err != nil {
					t.Fatalf("Close: %v", err)
				}
				closed = true
			case op == 0xFE:
				// Score-range page: tau exactly on the next unemitted true
				// score, so the page emits at least that one answer (unless
				// already exhausted).
				idx := len(got) + 2
				if idx >= len(oracle) {
					idx = len(oracle) - 1
				}
				tau = oracle[idx].Score
				rangeUsed = true
				page, err := cur.NextUntil(tau)
				if err != nil {
					t.Fatalf("NextUntil(%g): %v", tau, err)
				}
				got = append(got, page.Items...)
			default:
				delta := int(op) % 7
				if op%13 == 0 && op > 0 {
					delta = n + 5 // over-ask: must clamp to exhaustion, not error
				}
				page, err := cur.Next(delta)
				if err != nil {
					t.Fatalf("Next(%d): %v", delta, err)
				}
				if len(page.Items) > delta {
					t.Fatalf("Next(%d) returned %d items", delta, len(page.Items))
				}
				got = append(got, page.Items...)
			}
			if closed {
				continue
			}
			// Recompute oracle, checked at EVERY prefix: a fresh engine run
			// of the current depth must reproduce answers and bill exactly.
			if len(got) > 0 {
				fresh, err := eng.Run(Query{F: Min(), K: len(got)}, fixed)
				if err != nil {
					t.Fatalf("oracle run: %v", err)
				}
				if !reflect.DeepEqual(got, fresh.Items) {
					t.Fatalf("after %d ops: paged answers diverge\n paged %v\n fresh %v", len(got), got, fresh.Items)
				}
				// Exhaustion is detected lazily — a page that happens to end
				// on the last object only learns the queue is empty on the
				// NEXT call — so the implication runs one way only.
				if cur.Exhausted() && len(got) != n {
					t.Fatalf("exhausted with only %d/%d emitted", len(got), n)
				}
				led := cur.Ledger()
				if !rangeUsed {
					// Ordinal-only sequences resume for free: the bill is
					// byte-identical to the fresh run at every prefix.
					if !reflect.DeepEqual(led, fresh.Ledger) {
						t.Fatalf("after %d ops: paged bill diverges\n paged %+v\n fresh %+v", len(got), led, fresh.Ledger)
					}
				} else {
					// A range page may additionally have paid to prove its
					// boundary; it must never have paid LESS than emission
					// required (a short bill means stale or unbilled state).
					for i := range led.SortedCounts {
						if led.SortedCounts[i] < fresh.Ledger.SortedCounts[i] ||
							led.RandomCounts[i] < fresh.Ledger.RandomCounts[i] {
							t.Fatalf("cursor bill below the oracle at pred %d: %+v vs %+v", i, led, fresh.Ledger)
						}
					}
				}
			}
		}
	})
}
