package topk

// Adaptivity capstone: the planner is fed wrong statistics (uniform
// assumptions over heavily drifted data) and lying sources, and the
// engine must recover mid-query. Two contracts are under test:
//
//  1. Cost: across the Figure-2 matrix over drifted data, the adaptive
//     pipeline (divergence checkpoints + mid-query re-planning) never
//     costs more than freezing the initial plan, and somewhere in the
//     matrix it actually re-plans.
//  2. Honesty: under injected contract violations (unsorted lists, NaN,
//     duplicate ranks, inconsistent probes) a guarded engine returns the
//     exact top-k or an explicitly degraded answer — never a silently
//     wrong "exact" result.

import (
	"context"
	"fmt"
	"math"
	"testing"
	"time"

	"repro/internal/data"
)

// driftedDataset generates a uniform dataset and warps every score
// through s^gamma: ranked lists stay valid (warping is monotone) but
// scores pile up near zero, so the planner's uniform sample badly
// overestimates how slowly the streams descend. This is pure statistics
// drift — the access contract holds throughout.
func driftedDataset(t *testing.T, n, m int, seed int64, gamma float64) *Dataset {
	t.Helper()
	base := mustGenerateDataset(t, "uniform", n, m, seed)
	scores := make([][]float64, n)
	for u := 0; u < n; u++ {
		row := base.Scores(u)
		for i := range row {
			row[i] = math.Pow(row[i], gamma)
		}
		scores[u] = row
	}
	ds, err := data.New(fmt.Sprintf("drift(%s,g=%g)", base.Name(), gamma), scores)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

// TestAdaptiveNeverCostsMoreThanFrozen is the cost property: on every
// Figure-2 cell over drifted data, running with WithAdaptive must not
// cost more than the frozen-plan run, both must stay exact, and the
// re-planned runs' traces must still conserve the ledger.
func TestAdaptiveNeverCostsMoreThanFrozen(t *testing.T) {
	const (
		n      = 300
		k      = 5
		period = 16
	)
	seeds := []int64{3, 11}
	gammas := []float64{4, 6}
	replans := 0
	for _, gamma := range gammas {
		for _, cell := range figure2Cells(3, 10) {
			for _, seed := range seeds {
				t.Run(fmt.Sprintf("g%g/%s/seed%d", gamma, cell.name, seed), func(t *testing.T) {
					ds := driftedDataset(t, n, 3, seed, gamma)
					eng, err := NewEngine(DataBackend(ds), cell.scn)
					if err != nil {
						t.Fatal(err)
					}
					frozen, err := eng.Run(Query{F: Min(), K: k})
					if err != nil {
						t.Fatalf("frozen run: %v", err)
					}
					assertExactTopK(t, ds, Min(), k, frozen)

					adaptive, err := eng.Run(Query{F: Min(), K: k},
						WithAdaptive(period), WithTrace())
					if err != nil {
						t.Fatalf("adaptive run: %v", err)
					}
					assertExactTopK(t, ds, Min(), k, adaptive)
					checkConservation(t, "adaptive", adaptive)

					if af, ff := adaptive.TotalCost().Units(), frozen.TotalCost().Units(); af > ff+1e-9 {
						t.Errorf("adaptive cost %g exceeds frozen %g", af, ff)
					}
					replans += len(adaptive.Trace.AdaptiveReplans)
				})
			}
		}
	}
	// The property is vacuous if no checkpoint ever diverged: somewhere in
	// the matrix the drift must actually trigger a mid-query re-plan.
	if replans == 0 {
		t.Error("no adaptive run re-planned under heavy drift")
	}
}

// TestAdaptiveReplanTraceConservation pins the observability contract of
// a single known-divergent query: the trace carries the re-plan events
// (with their trigger and divergence score), the answer exposes the final
// plan, and the per-predicate counts still equal the ledger exactly even
// though the selector was swapped mid-flight.
func TestAdaptiveReplanTraceConservation(t *testing.T) {
	// Probe-expensive cell over 6x-warped data: the uniform-assumption
	// plan drains far too shallowly and burns expensive probes, so the
	// first checkpoint's divergence clears the re-plan margin decisively.
	ds := driftedDataset(t, 300, 3, 3, 6)
	eng, err := NewEngine(DataBackend(ds), UniformScenario(3, 1, 10))
	if err != nil {
		t.Fatal(err)
	}
	ans, err := eng.Run(Query{F: Min(), K: 5}, WithAdaptive(16), WithTrace())
	if err != nil {
		t.Fatal(err)
	}
	assertExactTopK(t, ds, Min(), 5, ans)
	checkConservation(t, "replanned", ans)
	if len(ans.Trace.AdaptiveReplans) == 0 {
		t.Fatal("6x drift at checkpoint period 16 must trigger a re-plan")
	}
	for _, ev := range ans.Trace.AdaptiveReplans {
		if ev.Trigger == "" || ev.Divergence <= 0 {
			t.Errorf("re-plan event missing trigger or divergence: %+v", ev)
		}
	}
	if ans.Plan == nil {
		t.Error("adaptive run should expose its (final) plan")
	}
}

// lyingSource wraps a backend with per-call rewrite hooks, modelling a
// web source that violates the access contract rather than failing.
type lyingSource struct {
	Backend
	sorted func(pred, rank, obj int, sc float64) (int, float64)
	random func(pred, obj int, sc float64) float64
}

func (l *lyingSource) Sorted(ctx context.Context, pred, rank int) (int, float64, error) {
	obj, sc, err := l.Backend.Sorted(ctx, pred, rank)
	if err == nil && l.sorted != nil {
		obj, sc = l.sorted(pred, rank, obj, sc)
	}
	return obj, sc, err
}

func (l *lyingSource) Random(ctx context.Context, pred, obj int) (float64, error) {
	sc, err := l.Backend.Random(ctx, pred, obj)
	if err == nil && l.random != nil {
		sc = l.random(pred, obj, sc)
	}
	return sc, err
}

// TestContractGuardOracle drives guarded engines over lying sources
// across the Figure-2 matrix. The lies here are all detectable at first
// occurrence (order breaks, duplicate ids, NaN) — a source that lies
// consistently from its very first response, with no cross-witness, is
// indistinguishable from an honest source with different data, so only
// first-occurrence lies admit a matrix-wide oracle. The contract: every
// run returns the exact top-k or an explicitly degraded answer — never a
// silently wrong "exact" result — and wherever the guard fires, the
// violation reaches both the engine counters and the trace. Each lie must
// also actually be caught somewhere in the matrix (which cells exercise
// which capability is the plan's business, not the test's).
func TestContractGuardOracle(t *testing.T) {
	const (
		n = 60
		k = 4
	)
	type lie struct {
		name   string
		reason string
		make   func() *lyingSource
	}
	lies := []lie{
		{name: "unsorted", reason: "unsorted", make: func() *lyingSource {
			// Predicate 0's list climbs back up from rank 3 on.
			return &lyingSource{sorted: func(pred, rank, obj int, sc float64) (int, float64) {
				if pred == 0 && rank >= 3 {
					return obj, 0.99
				}
				return obj, sc
			}}
		}},
		{name: "dup", reason: "dup", make: func() *lyingSource {
			// Predicate 0 replays its top object at every rank past 2.
			var firstObj int
			var firstSc float64
			return &lyingSource{sorted: func(pred, rank, obj int, sc float64) (int, float64) {
				if pred != 0 {
					return obj, sc
				}
				if rank == 0 {
					firstObj, firstSc = obj, sc
				}
				if rank >= 3 {
					return firstObj, firstSc
				}
				return obj, sc
			}}
		}},
		{name: "nan", reason: "nan", make: func() *lyingSource {
			return &lyingSource{random: func(pred, obj int, sc float64) float64 {
				if pred == 1 {
					return math.NaN()
				}
				return sc
			}}
		}},
	}

	caught := map[string]bool{}
	for _, cell := range figure2Cells(3, 10) {
		for _, li := range lies {
			t.Run(cell.name+"/"+li.name, func(t *testing.T) {
				ds := mustGenerateDataset(t, "uniform", n, 3, 13)
				src := li.make()
				src.Backend = DataBackend(ds)
				breakers := NewBreakerSet(3, BreakerConfig{FailureThreshold: 2, Cooldown: 10 * time.Millisecond})
				eng, err := NewEngine(src, cell.scn, WithContractGuard())
				if err != nil {
					t.Fatal(err)
				}
				ans, err := eng.Run(Query{F: Min(), K: k},
					WithResilience(&Resilience{Breakers: breakers}), WithTrace())
				if err != nil {
					t.Fatalf("guarded run errored (must degrade instead): %v", err)
				}
				if ans.Truncated {
					if len(ans.Degraded) == 0 {
						t.Fatal("truncated answer carries no degraded reasons")
					}
					for _, it := range ans.Items {
						if it.Exact {
							truth := Min().Eval(ds.Scores(it.Obj))
							if math.Abs(it.Score-truth) > 1e-9 {
								t.Fatalf("degraded answer lies: object %d exact %g, truth %g", it.Obj, it.Score, truth)
							}
						}
					}
				} else {
					// Undegraded answers must be the true top-k despite the lie.
					assertExactTopK(t, ds, Min(), k, ans)
				}
				if v := eng.GuardViolations(); v[li.reason] > 0 {
					caught[li.name] = true
					if len(ans.Trace.ContractViolations) == 0 {
						t.Fatal("guard fired but trace carries no contract-violation events")
					}
				}
			})
		}
	}
	for _, li := range lies {
		if !caught[li.name] {
			t.Errorf("lie %q never caught anywhere in the matrix", li.name)
		}
	}
}

// TestContractGuardInconsistentProbe pins the cross-access consistency
// check through the engine: a probe lie is only detectable once a sorted
// sighting of the same object contradicts it, and within one SR/G run a
// predicate's probed region and drained region never overlap — so the
// witness arrives on the *next* query. The guard is engine-level and its
// witness state outlives individual runs: query 1 probes predicate 1
// (recording the lies), query 2 drains predicate 1's sorted stream, which
// serves the true scores and exposes the contradiction.
func TestContractGuardInconsistentProbe(t *testing.T) {
	ds := mustGenerateDataset(t, "uniform", 40, 2, 9)
	src := &lyingSource{
		Backend: DataBackend(ds),
		random: func(pred, obj int, sc float64) float64 {
			if pred == 1 {
				return sc / 2
			}
			return sc
		},
	}
	breakers := NewBreakerSet(2, BreakerConfig{FailureThreshold: 2, Cooldown: 10 * time.Millisecond})
	eng, err := NewEngine(src, UniformScenario(2, 1, 1), WithContractGuard())
	if err != nil {
		t.Fatal(err)
	}
	// Query 1: drain predicate 0 only, probe predicate 1. Every probe
	// result is a lie the guard records but cannot yet refute.
	if _, err := eng.Run(Query{F: Min(), K: 3}, WithNC([]float64{0.3, 1}, nil),
		WithResilience(&Resilience{Breakers: breakers})); err != nil {
		t.Fatalf("probe-heavy run errored: %v", err)
	}
	if v := eng.GuardViolations(); v["inconsistent"] != 0 {
		t.Fatalf("a consistent probe lie must be undetectable without a witness: %v", v)
	}
	// Query 2: drain predicate 1's sorted stream. The true scores
	// contradict the recorded probe values — the guard must flag them.
	ans, err := eng.Run(Query{F: Min(), K: 3}, WithNC([]float64{0.3, 0.3}, nil),
		WithResilience(&Resilience{Breakers: breakers}), WithTrace())
	if err != nil {
		t.Fatalf("guarded run errored (must degrade instead): %v", err)
	}
	if v := eng.GuardViolations(); v["inconsistent"] == 0 {
		t.Fatalf("guard never logged the probe/sorted contradiction: %v", v)
	}
	if len(ans.Trace.ContractViolations) == 0 {
		t.Fatal("trace carries no contract-violation events")
	}
	// No exactness assertion on the answer itself: objects probed below
	// the drain depth never get a sorted witness, and their consistent
	// lies are indistinguishable from honest data — the guard's contract
	// for this class of lie is *flagged, not silent*, which the violation
	// counters and trace events above establish.
	if ans.Truncated && len(ans.Degraded) == 0 {
		t.Fatal("truncated answer carries no degraded reasons")
	}
}

// TestContractGuardHonestSourcesClean is the null hypothesis: a guarded
// engine over honest sources never reports a violation and matches the
// unguarded answer bit for bit.
func TestContractGuardHonestSourcesClean(t *testing.T) {
	ds := mustGenerateDataset(t, "uniform", 80, 2, 5)
	scn := UniformScenario(2, 1, 5)
	plain, err := NewEngine(DataBackend(ds), scn)
	if err != nil {
		t.Fatal(err)
	}
	guarded, err := NewEngine(DataBackend(ds), scn, WithContractGuard())
	if err != nil {
		t.Fatal(err)
	}
	a, err := plain.Run(Query{F: Avg(), K: 6})
	if err != nil {
		t.Fatal(err)
	}
	b, err := guarded.Run(Query{F: Avg(), K: 6})
	if err != nil {
		t.Fatal(err)
	}
	if v := guarded.GuardViolations(); len(v) != 0 {
		t.Fatalf("honest sources flagged: %v", v)
	}
	if a.TotalCost() != b.TotalCost() || len(a.Items) != len(b.Items) {
		t.Fatalf("guard changed an honest run: %v vs %v", a.TotalCost(), b.TotalCost())
	}
	for i := range a.Items {
		if a.Items[i] != b.Items[i] {
			t.Fatalf("item %d differs under guard: %+v vs %+v", i, a.Items[i], b.Items[i])
		}
	}
}
