#!/bin/sh
# escapes.sh prints the compiler's escape-analysis inventory of the
# serve-path packages, one sorted, deduplicated line per heap allocation
# site. ESCAPES_baseline.txt is this script's committed output; the
# nightly workflow diffs a fresh run against it so a new allocation on the
# serve path shows up as a reviewable one-line diff, not a silent
# regression the next profile has to rediscover.
#
# Regenerate the baseline after a deliberate change:
#
#	./scripts/escapes.sh > ESCAPES_baseline.txt
set -e
cd "$(dirname "$0")/.."
for pkg in internal/state internal/access internal/algo internal/share internal/cluster internal/store .; do
	go build -gcflags='-m -m' "./$pkg" 2>&1 |
		grep -E 'escapes to heap$|moved to heap' |
		sed "s|^\./|$pkg/|"
done | sed 's|^\./||' | sort -u
