package topk

// Chaos capstone: the Figure-2 scenario matrix is driven through the
// deterministic fault injector at aggressive fault rates — per-access
// errors, latency spikes, hangs, and one full predicate outage — with the
// fault-tolerant engine configuration. The contract under test is the
// PR's headline invariant: every query either returns the exact top-k or
// an explicitly degraded (Truncated + machine-readable reasons) answer.
// No query may hang past its deadline, panic, or silently return a wrong
// "exact" result.

import (
	"context"
	"fmt"
	"math"
	"testing"
	"time"

	"repro/internal/data"
	"repro/internal/fault"
)

// chaosProfile is one fault regime plus the breaker tuning it is run
// under.
type chaosProfile struct {
	faults  fault.Config
	breaker BreakerConfig
}

// chaosProfiles are the two fault regimes of the capstone: "flaky" keeps
// every source alive but failing ≥30% of the time (plus latency spikes
// and hangs) under a lenient breaker threshold, so exact answers stay
// reachable through retries; "outage" additionally takes predicate 2 down
// permanently under a hair-trigger breaker, so exact min-scoring answers
// become impossible and every run must degrade explicitly.
func chaosProfiles(seed int64) map[string]chaosProfile {
	return map[string]chaosProfile{
		"flaky": {
			faults: fault.Config{Seed: seed, Preds: map[int]fault.PredFault{
				0: {ErrorRate: 0.35, SlowRate: 0.2, SlowDelay: time.Millisecond},
				1: {ErrorRate: 0.3, HangRate: 0.05},
				2: {ErrorRate: 0.3, SlowRate: 0.1, SlowDelay: time.Millisecond},
			}},
			// 0.35^8 consecutive failures is rare: circuits mostly stay
			// closed and the framework retries through the noise.
			breaker: BreakerConfig{FailureThreshold: 8, Cooldown: 10 * time.Millisecond},
		},
		"outage": {
			faults: fault.Config{Seed: seed, Preds: map[int]fault.PredFault{
				0: {ErrorRate: 0.35, SlowRate: 0.2, SlowDelay: time.Millisecond},
				1: {ErrorRate: 0.3, HangRate: 0.05},
				2: {OutageFrom: 0, OutageTo: -1}, // never recovers
			}},
			breaker: BreakerConfig{FailureThreshold: 2, Cooldown: 10 * time.Millisecond},
		},
	}
}

func TestChaosFigure2Matrix(t *testing.T) {
	cells := figure2Cells(3, 10)
	seeds := []int64{1, 7, 42}
	const (
		n        = 60
		k        = 5
		deadline = 20 * time.Second
	)

	exactCount, degradedCount := 0, 0
	for _, cell := range cells {
		for _, seed := range seeds {
			for profile, pr := range chaosProfiles(seed) {
				// The matrix runs twice: once against the raw backend and
				// once with the cross-query sharing layer underneath the
				// fault injector (the service's composition order — faults
				// hit sessions and breakers, never poison shared caches).
				// The degradation contract must hold identically in both.
				for _, sharing := range []bool{false, true} {
					name := fmt.Sprintf("%s/seed%d/%s", cell.name, seed, profile)
					if sharing {
						name += "/shared"
					}
					t.Run(name, func(t *testing.T) {
						ds, err := data.Generate(data.Uniform, n, 3, seed)
						if err != nil {
							t.Fatal(err)
						}
						breakers := NewBreakerSet(3, pr.breaker)
						backend := matrixBackend(ds, sharing, breakers)
						eng, err := NewEngine(fault.Wrap(backend, pr.faults), cell.scn)
						if err != nil {
							t.Fatal(err)
						}
						ctx, cancel := context.WithTimeout(context.Background(), deadline)
						defer cancel()
						start := time.Now()
						ans, err := eng.Run(Query{F: Min(), K: k},
							WithContext(ctx),
							WithResilience(&Resilience{
								Breakers:      breakers,
								AccessTimeout: 50 * time.Millisecond,
							}))
						elapsed := time.Since(start)
						if err != nil {
							t.Fatalf("chaos run errored (must degrade instead): %v", err)
						}
						if elapsed >= deadline {
							t.Fatalf("query overran its deadline: %v", elapsed)
						}
						if ans.Truncated {
							if len(ans.Degraded) == 0 {
								t.Fatal("truncated answer carries no degraded reasons")
							}
							// A degraded answer must still be honest about what
							// it knows exactly.
							for _, it := range ans.Items {
								if it.Exact {
									truth := Min().Eval(ds.Scores(it.Obj))
									if math.Abs(it.Score-truth) > 1e-9 {
										t.Fatalf("degraded answer lies: object %d exact %g, truth %g", it.Obj, it.Score, truth)
									}
								}
							}
							degradedCount++
							return
						}
						if len(ans.Degraded) != 0 {
							t.Fatalf("exact answer carries degraded reasons %v", ans.Degraded)
						}
						assertExactTopK(t, ds, Min(), k, ans)
						exactCount++
					})
				}
			}
		}
	}
	// The matrix must exercise both sides of the contract: the flaky
	// profile recovers to exact answers somewhere, and the outage profile
	// forces explicit degradation somewhere.
	if exactCount == 0 {
		t.Error("no chaos run recovered to an exact answer")
	}
	if degradedCount == 0 {
		t.Error("no chaos run degraded explicitly")
	}
}

// TestChaosDriftAdaptive crosses the fault matrix with statistics drift:
// the dataset is warped (s^6) so the planner's uniform assumptions are
// badly wrong, sources are flaky on top, and every run goes through the
// adaptive pipeline with the contract guard installed. The contract is
// the union of the chaos and adaptivity invariants: exact or explicitly
// degraded answers under faults AND wrong statistics, with checkpoints
// still firing (and somewhere re-planning) through the fault noise.
func TestChaosDriftAdaptive(t *testing.T) {
	const (
		n        = 60
		k        = 5
		gamma    = 6
		deadline = 20 * time.Second
	)
	seeds := []int64{1, 7}
	exactCount, degradedCount, replans := 0, 0, 0
	for _, cell := range figure2Cells(3, 10) {
		for _, seed := range seeds {
			t.Run(fmt.Sprintf("%s/seed%d", cell.name, seed), func(t *testing.T) {
				ds := driftedDataset(t, n, 3, seed, gamma)
				pr := chaosProfiles(seed)["flaky"]
				breakers := NewBreakerSet(3, pr.breaker)
				eng, err := NewEngine(fault.Wrap(DataBackend(ds), pr.faults), cell.scn,
					WithContractGuard())
				if err != nil {
					t.Fatal(err)
				}
				ctx, cancel := context.WithTimeout(context.Background(), deadline)
				defer cancel()
				ans, err := eng.Run(Query{F: Min(), K: k},
					WithContext(ctx),
					WithAdaptive(16),
					WithTrace(),
					WithResilience(&Resilience{
						Breakers:      breakers,
						AccessTimeout: 50 * time.Millisecond,
					}))
				if err != nil {
					t.Fatalf("drift chaos run errored (must degrade instead): %v", err)
				}
				if v := eng.GuardViolations(); len(v) != 0 {
					t.Fatalf("drift is honest data, guard must stay silent: %v", v)
				}
				replans += len(ans.Trace.AdaptiveReplans)
				if ans.Truncated {
					if len(ans.Degraded) == 0 {
						t.Fatal("truncated answer carries no degraded reasons")
					}
					for _, it := range ans.Items {
						if it.Exact {
							truth := Min().Eval(ds.Scores(it.Obj))
							if math.Abs(it.Score-truth) > 1e-9 {
								t.Fatalf("degraded answer lies: object %d exact %g, truth %g", it.Obj, it.Score, truth)
							}
						}
					}
					degradedCount++
					return
				}
				assertExactTopK(t, ds, Min(), k, ans)
				exactCount++
			})
		}
	}
	if exactCount == 0 {
		t.Error("no drift chaos run recovered to an exact answer")
	}
	if replans == 0 {
		t.Error("no drift chaos run re-planned: checkpoints must survive fault noise")
	}
	_ = degradedCount // outages are not injected here; degradation is allowed, not required
}

// TestChaosCursorPagination drives resumable cursors into a mid-pagination
// outage: predicate 3 is healthy while the cursor opens and serves its
// first pages, then goes down permanently partway through the deepening
// sequence. The contract is the cursor analogue of the chaos capstone:
// every page either deepens exactly or degrades explicitly (re-planned
// around the outage, or Truncated with reasons) — and the cumulative
// ledger is never stale or double-billed: after every page the trace's
// per-predicate counts equal the cursor ledger exactly, and counts only
// grow.
func TestChaosCursorPagination(t *testing.T) {
	const (
		n     = 60
		k     = 2
		pages = 6
	)
	seeds := []int64{1, 7, 42}
	degradedSeen, continuedPastOutage := 0, 0
	for _, cell := range figure2Cells(3, 10) {
		for _, seed := range seeds {
			for _, sharing := range []bool{false, true} {
				name := fmt.Sprintf("%s/seed%d", cell.name, seed)
				if sharing {
					name += "/shared"
				}
				t.Run(name, func(t *testing.T) {
					ds, err := data.Generate(data.Uniform, n, 3, seed)
					if err != nil {
						t.Fatal(err)
					}
					faults := fault.Config{Seed: seed, Preds: map[int]fault.PredFault{
						0: {ErrorRate: 0.2},
						2: {OutageFrom: 25, OutageTo: -1}, // healthy while the cursor opens, then gone
					}}
					breakers := NewBreakerSet(3, BreakerConfig{FailureThreshold: 2, Cooldown: 10 * time.Millisecond})
					eng, err := NewEngine(fault.Wrap(matrixBackend(ds, sharing, breakers), faults), cell.scn)
					if err != nil {
						t.Fatal(err)
					}
					cur, err := eng.Open(Query{F: Min(), K: k},
						WithTrace(),
						WithResilience(&Resilience{Breakers: breakers, AccessTimeout: 50 * time.Millisecond}))
					if err != nil {
						t.Skipf("cell cannot open (no legal plan): %v", err)
					}
					defer cur.Close()

					var prevLedger Ledger
					seen := make(map[int]bool)
					truncated := false
					for page := 0; page < pages; page++ {
						res, err := cur.Next(k)
						if err != nil {
							t.Fatalf("page %d errored (must degrade instead): %v", page, err)
						}
						if truncated && !res.Truncated {
							t.Fatalf("page %d lost the sticky Truncated flag", page)
						}
						if res.Truncated {
							truncated = true
							if len(res.Degraded) == 0 {
								t.Fatal("truncated page carries no degraded reasons")
							}
						}
						for _, it := range res.Items {
							if seen[it.Obj] {
								t.Fatalf("page %d re-emitted object %d", page, it.Obj)
							}
							seen[it.Obj] = true
							if it.Exact {
								truth := Min().Eval(ds.Scores(it.Obj))
								if math.Abs(it.Score-truth) > 1e-9 {
									t.Fatalf("page %d lies: object %d exact %g, truth %g", page, it.Obj, it.Score, truth)
								}
							}
						}
						// Never double-billed, never rolled back: per-predicate
						// counts are monotone across pages...
						for i := range res.Ledger.SortedCounts {
							if i < len(prevLedger.SortedCounts) &&
								(res.Ledger.SortedCounts[i] < prevLedger.SortedCounts[i] ||
									res.Ledger.RandomCounts[i] < prevLedger.RandomCounts[i]) {
								t.Fatalf("page %d ledger went backwards at pred %d", page, i)
							}
						}
						prevLedger = res.Ledger
						// ...and never stale: after every page the cumulative
						// trace equals the cumulative ledger exactly.
						snap := cur.Trace()
						led := cur.Ledger()
						for i := range led.SortedCounts {
							st, rt := 0, 0
							if i < len(snap.SortedAccesses) {
								st = snap.SortedAccesses[i]
							}
							if i < len(snap.RandomAccesses) {
								rt = snap.RandomAccesses[i]
							}
							if st != led.SortedCounts[i] || rt != led.RandomCounts[i] {
								t.Fatalf("page %d: trace (%d,%d) vs ledger (%d,%d) at pred %d",
									page, st, rt, led.SortedCounts[i], led.RandomCounts[i], i)
							}
						}
					}
					if truncated {
						degradedSeen++
					}
					if cur.Emitted() > k {
						continuedPastOutage++
					}
				})
			}
		}
	}
	if degradedSeen == 0 {
		t.Error("no paginated run degraded explicitly under the outage")
	}
	if continuedPastOutage == 0 {
		t.Error("no cursor deepened past its first page under faults")
	}
}
