package topk

// Chaos capstone: the Figure-2 scenario matrix is driven through the
// deterministic fault injector at aggressive fault rates — per-access
// errors, latency spikes, hangs, and one full predicate outage — with the
// fault-tolerant engine configuration. The contract under test is the
// PR's headline invariant: every query either returns the exact top-k or
// an explicitly degraded (Truncated + machine-readable reasons) answer.
// No query may hang past its deadline, panic, or silently return a wrong
// "exact" result.

import (
	"context"
	"fmt"
	"math"
	"sort"
	"testing"
	"time"

	"repro/internal/access"
	"repro/internal/data"
	"repro/internal/fault"
)

// chaosProfile is one fault regime plus the breaker tuning it is run
// under.
type chaosProfile struct {
	faults  fault.Config
	breaker BreakerConfig
}

// chaosProfiles are the two fault regimes of the capstone: "flaky" keeps
// every source alive but failing ≥30% of the time (plus latency spikes
// and hangs) under a lenient breaker threshold, so exact answers stay
// reachable through retries; "outage" additionally takes predicate 2 down
// permanently under a hair-trigger breaker, so exact min-scoring answers
// become impossible and every run must degrade explicitly.
func chaosProfiles(seed int64) map[string]chaosProfile {
	return map[string]chaosProfile{
		"flaky": {
			faults: fault.Config{Seed: seed, Preds: map[int]fault.PredFault{
				0: {ErrorRate: 0.35, SlowRate: 0.2, SlowDelay: time.Millisecond},
				1: {ErrorRate: 0.3, HangRate: 0.05},
				2: {ErrorRate: 0.3, SlowRate: 0.1, SlowDelay: time.Millisecond},
			}},
			// 0.35^8 consecutive failures is rare: circuits mostly stay
			// closed and the framework retries through the noise.
			breaker: BreakerConfig{FailureThreshold: 8, Cooldown: 10 * time.Millisecond},
		},
		"outage": {
			faults: fault.Config{Seed: seed, Preds: map[int]fault.PredFault{
				0: {ErrorRate: 0.35, SlowRate: 0.2, SlowDelay: time.Millisecond},
				1: {ErrorRate: 0.3, HangRate: 0.05},
				2: {OutageFrom: 0, OutageTo: -1}, // never recovers
			}},
			breaker: BreakerConfig{FailureThreshold: 2, Cooldown: 10 * time.Millisecond},
		},
	}
}

// assertExactTopK checks an untruncated answer against the brute-force
// oracle (multiset of true scores, distinct objects, honest Exact flags).
func assertExactTopK(t *testing.T, ds *Dataset, f ScoreFunc, k int, ans *Answer) {
	t.Helper()
	oracle := TopKOracle(ds, f, k)
	if len(ans.Items) != len(oracle) {
		t.Fatalf("returned %d items, oracle has %d", len(ans.Items), len(oracle))
	}
	got := make([]float64, len(ans.Items))
	seen := make(map[int]bool)
	for i, it := range ans.Items {
		if seen[it.Obj] {
			t.Fatalf("duplicate object %d", it.Obj)
		}
		seen[it.Obj] = true
		truth := f.Eval(ds.Scores(it.Obj))
		if it.Exact && math.Abs(it.Score-truth) > 1e-9 {
			t.Fatalf("object %d reported exact score %g, truth %g", it.Obj, it.Score, truth)
		}
		got[i] = truth
	}
	want := make([]float64, len(oracle))
	for i, it := range oracle {
		want[i] = it.Score
	}
	sort.Float64s(got)
	sort.Float64s(want)
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Fatalf("score multiset mismatch: got %v, oracle %v", got, want)
		}
	}
}

func TestChaosFigure2Matrix(t *testing.T) {
	cells := []struct {
		name string
		scn  Scenario
	}{
		{"sa-cheap_ra-cheap", access.MatrixCell(3, access.Cheap, access.Cheap, 10)},
		{"sa-cheap_ra-expensive", access.MatrixCell(3, access.Cheap, access.Expensive, 10)},
		{"sa-cheap_ra-impossible", access.MatrixCell(3, access.Cheap, access.Impossible, 10)},
		{"sa-impossible_ra-expensive", access.MatrixCell(3, access.Impossible, access.Expensive, 10)},
		{"sa-expensive_ra-cheap", access.MatrixCell(3, access.Expensive, access.Cheap, 10)},
	}
	seeds := []int64{1, 7, 42}
	const (
		n        = 60
		k        = 5
		deadline = 20 * time.Second
	)

	exactCount, degradedCount := 0, 0
	for _, cell := range cells {
		for _, seed := range seeds {
			for profile, pr := range chaosProfiles(seed) {
				// The matrix runs twice: once against the raw backend and
				// once with the cross-query sharing layer underneath the
				// fault injector (the service's composition order — faults
				// hit sessions and breakers, never poison shared caches).
				// The degradation contract must hold identically in both.
				for _, sharing := range []bool{false, true} {
					name := fmt.Sprintf("%s/seed%d/%s", cell.name, seed, profile)
					if sharing {
						name += "/shared"
					}
					t.Run(name, func(t *testing.T) {
						ds, err := data.Generate(data.Uniform, n, 3, seed)
						if err != nil {
							t.Fatal(err)
						}
						breakers := NewBreakerSet(3, pr.breaker)
						backend := DataBackend(ds)
						if sharing {
							backend = NewSharedAccess(backend, SharingOptions{Breakers: breakers})
						}
						eng, err := NewEngine(fault.Wrap(backend, pr.faults), cell.scn)
						if err != nil {
							t.Fatal(err)
						}
						ctx, cancel := context.WithTimeout(context.Background(), deadline)
						defer cancel()
						start := time.Now()
						ans, err := eng.Run(Query{F: Min(), K: k},
							WithContext(ctx),
							WithResilience(&Resilience{
								Breakers:      breakers,
								AccessTimeout: 50 * time.Millisecond,
							}))
						elapsed := time.Since(start)
						if err != nil {
							t.Fatalf("chaos run errored (must degrade instead): %v", err)
						}
						if elapsed >= deadline {
							t.Fatalf("query overran its deadline: %v", elapsed)
						}
						if ans.Truncated {
							if len(ans.Degraded) == 0 {
								t.Fatal("truncated answer carries no degraded reasons")
							}
							// A degraded answer must still be honest about what
							// it knows exactly.
							for _, it := range ans.Items {
								if it.Exact {
									truth := Min().Eval(ds.Scores(it.Obj))
									if math.Abs(it.Score-truth) > 1e-9 {
										t.Fatalf("degraded answer lies: object %d exact %g, truth %g", it.Obj, it.Score, truth)
									}
								}
							}
							degradedCount++
							return
						}
						if len(ans.Degraded) != 0 {
							t.Fatalf("exact answer carries degraded reasons %v", ans.Degraded)
						}
						assertExactTopK(t, ds, Min(), k, ans)
						exactCount++
					})
				}
			}
		}
	}
	// The matrix must exercise both sides of the contract: the flaky
	// profile recovers to exact answers somewhere, and the outage profile
	// forces explicit degradation somewhere.
	if exactCount == 0 {
		t.Error("no chaos run recovered to an exact answer")
	}
	if degradedCount == 0 {
		t.Error("no chaos run degraded explicitly")
	}
}
