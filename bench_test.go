package topk

// Benchmarks regenerating the paper's tables and figures: one Benchmark
// per experiment id (see DESIGN.md's per-experiment index). Each iteration
// runs the experiment end-to-end in quick mode, so `go test -bench .`
// doubles as a smoke run of the whole harness; use cmd/topkbench for the
// paper-scale outputs recorded in EXPERIMENTS.md.
//
// The Benchmark*Algo micro-benchmarks measure the per-access bookkeeping
// overhead of the middleware algorithms themselves (the costs the paper's
// model deliberately ignores in favor of access costs).

import (
	"testing"

	"repro/internal/access"
	"repro/internal/algo"
	"repro/internal/bench"
	"repro/internal/data"
	"repro/internal/data/datatest"
	"repro/internal/obs"
	"repro/internal/score"
)

func benchExperiment(b *testing.B, id string) {
	e, ok := bench.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	cfg := bench.Config{Quick: true}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tab, err := e.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(tab.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkExpE1(b *testing.B)  { benchExperiment(b, "E1") }
func BenchmarkExpE2(b *testing.B)  { benchExperiment(b, "E2") }
func BenchmarkExpE3(b *testing.B)  { benchExperiment(b, "E3") }
func BenchmarkExpE4(b *testing.B)  { benchExperiment(b, "E4") }
func BenchmarkExpE5(b *testing.B)  { benchExperiment(b, "E5") }
func BenchmarkExpE6(b *testing.B)  { benchExperiment(b, "E6") }
func BenchmarkExpE7(b *testing.B)  { benchExperiment(b, "E7") }
func BenchmarkExpE8(b *testing.B)  { benchExperiment(b, "E8") }
func BenchmarkExpE9(b *testing.B)  { benchExperiment(b, "E9") }
func BenchmarkExpE10(b *testing.B) { benchExperiment(b, "E10") }
func BenchmarkExpE11(b *testing.B) { benchExperiment(b, "E11") }
func BenchmarkExpE12(b *testing.B) { benchExperiment(b, "E12") }

// benchAlgorithm measures one full query execution (n=1000, m=2, k=10).
func benchAlgorithm(b *testing.B, mk func() algo.Algorithm, scn access.Scenario, f score.Func) {
	ds := datatest.MustGenerate(data.Uniform, 1000, 2, 9)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sess, err := access.NewSession(access.DatasetBackend{DS: ds}, scn)
		if err != nil {
			b.Fatal(err)
		}
		prob, err := algo.NewProblem(f, 10, sess)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := mk().Run(prob); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAlgoNC(b *testing.B) {
	benchAlgorithm(b, func() algo.Algorithm {
		a, err := algo.NewNC([]float64{0.5, 0.5}, nil)
		if err != nil {
			b.Fatal(err)
		}
		return a
	}, access.Uniform(2, 1, 1), score.Min())
}

func BenchmarkAlgoTA(b *testing.B) {
	benchAlgorithm(b, func() algo.Algorithm { return algo.TA{} }, access.Uniform(2, 1, 1), score.Min())
}

func BenchmarkAlgoNRA(b *testing.B) {
	benchAlgorithm(b, func() algo.Algorithm { return algo.NRA{} },
		access.MatrixCell(2, access.Cheap, access.Impossible, 10), score.Avg())
}

func BenchmarkAlgoCA(b *testing.B) {
	benchAlgorithm(b, func() algo.Algorithm { return algo.CA{} },
		access.MatrixCell(2, access.Cheap, access.Expensive, 10), score.Avg())
}

func BenchmarkAlgoMPro(b *testing.B) {
	benchAlgorithm(b, func() algo.Algorithm { return algo.MPro{} },
		access.MatrixCell(2, access.Impossible, access.Expensive, 10), score.Min())
}

// BenchmarkOptimizerHClimb measures one full plan search (dummy sample,
// 11-point grid, 5 restarts) — the optimization overhead a middleware pays
// per query.
func BenchmarkOptimizerHClimb(b *testing.B) {
	ds := datatest.MustGenerate(data.Uniform, 1000, 2, 9)
	eng, err := NewEngine(DataBackend(ds), UniformScenario(2, 1, 10))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Run(Query{F: Min(), K: 10}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkObserverOverhead prices the observability layer on the E1
// workload (uniform data, avg scoring, cs=cr=1, fixed NC configuration):
// the same query uninstrumented, through the no-op observer, through a
// registry-backed metrics observer, and with a per-query trace. The first
// two must be indistinguishable (the nil-guarded default path costs
// nothing); the gap to the latter two is the per-event price an operator
// pays. BENCH_obs.json records the committed baseline.
func BenchmarkObserverOverhead(b *testing.B) {
	ds := datatest.MustGenerate(data.Uniform, 1000, 2, 42)
	eng, err := NewEngine(DataBackend(ds), UniformScenario(2, 1, 1))
	if err != nil {
		b.Fatal(err)
	}
	q := Query{F: Avg(), K: 10}
	fixed := WithNC([]float64{0.5, 0.5}, nil)
	reg := NewMetricsRegistry()
	metrics := NewMetricsObserver(reg)
	cases := []struct {
		name string
		opts []RunOption
	}{
		{"uninstrumented", []RunOption{fixed}},
		{"nop", []RunOption{fixed, WithObserver(obs.Nop{})}},
		{"metrics", []RunOption{fixed, WithObserver(metrics)}},
		{"trace", []RunOption{fixed, WithTrace()}},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := eng.Run(q, c.opts...); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkParallelExecutor measures a B=8 simulated-concurrency run.
func BenchmarkParallelExecutor(b *testing.B) {
	ds := datatest.MustGenerate(data.Uniform, 1000, 2, 9)
	eng, err := NewEngine(DataBackend(ds), UniformScenario(2, 1, 5))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Run(Query{F: Min(), K: 10}, WithParallel(8), WithNC([]float64{0.5, 0.5}, nil)); err != nil {
			b.Fatal(err)
		}
	}
}
