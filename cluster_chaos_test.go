package topk

// Chaos matrix row for the cluster: kill one shard mid-query. A 3-shard
// scatter-gather deployment runs the Figure-2 matrix while one shard's
// node goes dark partway through the access sequence — permanently
// ("shard-dies") or for a bounded window ("shard-blips"). The contract is
// the cluster instance of the repo's headline invariant: every query
// either returns the exact top-k or an explicitly degraded (Truncated +
// machine-readable reasons) answer. No query may hang past its deadline,
// panic, or silently return a wrong "exact" result — a dead shard means
// missing objects, which is exactly the silent-wrongness a coordinator
// could smuggle past a client. After every run, trace must equal ledger:
// recovery and retries may not double-bill or lose accesses.

import (
	"context"
	"fmt"
	"math"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/data"
	"repro/internal/fault"
)

// woundedCluster builds a 3-shard cluster over ds with the given shard's
// node wrapped in the deterministic fault injector. The wrapped shard
// loses its paging fast path (the fault layer only speaks the scalar
// Backend protocol), which is itself realistic: a sick node degrades to
// entry-at-a-time service before it dies.
func woundedCluster(t *testing.T, ds *Dataset, victim int, faults fault.Config) *cluster.Coordinator {
	t.Helper()
	parts, err := cluster.Partition(ds, 3)
	if err != nil {
		t.Fatal(err)
	}
	members := make([]cluster.Shard, len(parts))
	for i, sd := range parts {
		local := cluster.NewLocalShard(sd)
		if i == victim {
			members[i] = cluster.WrapShard(fault.Wrap(local, faults), local.LocalN())
		} else {
			members[i] = local
		}
	}
	coord, err := cluster.New(members, cluster.Options{
		FailureThreshold: 2,
		Cooldown:         20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	return coord
}

// shardChaosProfiles: "shard-dies" takes the victim down permanently after
// a few accesses per predicate; "shard-blips" takes it down for a bounded
// access window so retries through the breaker cooldown can recover.
func shardChaosProfiles(seed int64) map[string]fault.Config {
	allPreds := func(pf fault.PredFault) map[int]fault.PredFault {
		return map[int]fault.PredFault{0: pf, 1: pf, 2: pf}
	}
	return map[string]fault.Config{
		"shard-dies":  {Seed: seed, Preds: allPreds(fault.PredFault{OutageFrom: 4, OutageTo: -1})},
		"shard-blips": {Seed: seed, Preds: allPreds(fault.PredFault{OutageFrom: 3, OutageTo: 8})},
	}
}

func TestChaosShardLoss(t *testing.T) {
	const (
		n        = 60
		k        = 5
		deadline = 20 * time.Second
	)
	seeds := []int64{1, 7, 42}

	exactCount, degradedCount := 0, 0
	for _, cell := range figure2Cells(3, 10) {
		for _, seed := range seeds {
			for profile, faults := range shardChaosProfiles(seed) {
				t.Run(fmt.Sprintf("%s/seed%d/%s", cell.name, seed, profile), func(t *testing.T) {
					ds, err := data.Generate(data.Uniform, n, 3, seed)
					if err != nil {
						t.Fatal(err)
					}
					coord := woundedCluster(t, ds, int(seed)%3, faults)
					breakers := NewBreakerSet(3, BreakerConfig{FailureThreshold: 2, Cooldown: 10 * time.Millisecond})
					eng, err := NewEngine(coord, cell.scn)
					if err != nil {
						t.Fatal(err)
					}
					ctx, cancel := context.WithTimeout(context.Background(), deadline)
					defer cancel()
					start := time.Now()
					ans, err := eng.Run(Query{F: Min(), K: k},
						WithContext(ctx),
						WithTrace(),
						WithResilience(&Resilience{
							Breakers:      breakers,
							AccessTimeout: 50 * time.Millisecond,
						}))
					elapsed := time.Since(start)
					if err != nil {
						t.Fatalf("shard-loss run errored (must degrade instead): %v", err)
					}
					if elapsed >= deadline {
						t.Fatalf("query overran its deadline: %v", elapsed)
					}

					// Trace equals ledger after recovery: fencing, retries,
					// and re-planning may not double-bill or lose accesses.
					for i := range ans.Ledger.SortedCounts {
						st, rt := 0, 0
						if i < len(ans.Trace.SortedAccesses) {
							st = ans.Trace.SortedAccesses[i]
						}
						if i < len(ans.Trace.RandomAccesses) {
							rt = ans.Trace.RandomAccesses[i]
						}
						if st != ans.Ledger.SortedCounts[i] || rt != ans.Ledger.RandomCounts[i] {
							t.Fatalf("trace (%d,%d) vs ledger (%d,%d) at pred %d",
								st, rt, ans.Ledger.SortedCounts[i], ans.Ledger.RandomCounts[i], i)
						}
					}

					if ans.Truncated {
						if len(ans.Degraded) == 0 {
							t.Fatal("truncated answer carries no degraded reasons")
						}
						// A degraded answer must still be honest about what it
						// claims to know exactly.
						for _, it := range ans.Items {
							if it.Exact {
								truth := Min().Eval(ds.Scores(it.Obj))
								if math.Abs(it.Score-truth) > 1e-9 {
									t.Fatalf("degraded answer lies: object %d exact %g, truth %g", it.Obj, it.Score, truth)
								}
							}
						}
						degradedCount++
						return
					}
					if len(ans.Degraded) != 0 {
						t.Fatalf("exact answer carries degraded reasons %v", ans.Degraded)
					}
					assertExactTopK(t, ds, Min(), k, ans)
					exactCount++
				})
			}
		}
	}
	// Both sides of the contract must be exercised: the blip profile must
	// recover to exact answers somewhere, and the permanent loss must
	// force explicit degradation somewhere.
	if exactCount == 0 {
		t.Error("no shard-loss run recovered to an exact answer")
	}
	if degradedCount == 0 {
		t.Error("no shard-loss run degraded explicitly")
	}
}
