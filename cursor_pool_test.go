package topk

// Pool-discipline guard for cursors: a cursor borrows the engine's pooled
// query state (session + framework scratch) for its whole life and Close
// returns it. These tests pin the two failure modes that would silently
// erode the serve path: per-cycle allocation creep (state not actually
// reused) and pool poisoning (a retired cursor leaving stale state that a
// later run observes, or cycles growing the heap without bound).

import (
	"reflect"
	"testing"
)

// TestCursorAllocGate bounds the steady-state cost of a full
// open/page/close cycle on pooled state. The measured figure is ~15
// allocations (facade cursor + page assembly + option closures); the gate
// doubles it so machine noise never trips CI while an accidental
// per-cycle table or queue rebuild (hundreds of allocations) always does.
func TestCursorAllocGate(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc gate needs steady-state measurement")
	}
	ds := mustGenerateDataset(t, "uniform", 100, 2, 5)
	eng, err := NewEngine(DataBackend(ds), UniformScenario(2, 1, 2))
	if err != nil {
		t.Fatal(err)
	}
	cycle := func() {
		cur, err := eng.Open(Query{F: Min(), K: 4}, WithNC([]float64{0.5, 0.5}, nil))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := cur.Next(4); err != nil {
			t.Fatal(err)
		}
		cur.Close()
	}
	cycle() // warm the pool to steady state
	if got := testing.AllocsPerRun(100, cycle); got > 30 {
		t.Errorf("open/page/close cycle allocates %.1f/op, gate is 30", got)
	}
}

// TestCursorPoolCycles churns ten thousand open/page/close cycles through
// one engine and then proves the pool is as good as new: the per-cycle
// allocation count has not grown (state kept coming back), and a fresh
// run on the recycled state is byte-identical to one on a cold engine
// (nothing stale survived the churn).
func TestCursorPoolCycles(t *testing.T) {
	if testing.Short() {
		t.Skip("pool churn is a long steady-state test")
	}
	ds := mustGenerateDataset(t, "uniform", 60, 2, 9)
	eng, err := NewEngine(DataBackend(ds), UniformScenario(2, 1, 2))
	if err != nil {
		t.Fatal(err)
	}
	fixed := WithNC([]float64{0.5, 0.5}, nil)
	cycle := func() {
		cur, err := eng.Open(Query{F: Min(), K: 2}, fixed)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := cur.Next(2); err != nil {
			t.Fatal(err)
		}
		cur.Close()
	}
	cycle()
	before := testing.AllocsPerRun(50, cycle)
	for i := 0; i < 10_000; i++ {
		cycle()
	}
	after := testing.AllocsPerRun(50, cycle)
	// +10 absorbs measurement jitter (AllocsPerRun wobbles by a few
	// counts on a loaded machine, more under -race); real pool leakage
	// re-allocates the table, queue, and session every cycle and costs
	// hundreds per op, far past any jitter.
	if after > before+10 {
		t.Errorf("per-cycle allocations grew after 10k cycles: %.1f -> %.1f", before, after)
	}

	// Nothing stale: a run on the churned engine equals a cold engine's.
	churned, err := eng.Run(Query{F: Min(), K: 10}, fixed)
	if err != nil {
		t.Fatal(err)
	}
	coldEng, err := NewEngine(DataBackend(ds), UniformScenario(2, 1, 2))
	if err != nil {
		t.Fatal(err)
	}
	cold, err := coldEng.Run(Query{F: Min(), K: 10}, fixed)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(churned.Items, cold.Items) || !reflect.DeepEqual(churned.Ledger, cold.Ledger) {
		t.Error("pooled state carried stale results across 10k cursor cycles")
	}
}

// TestCursorAbandonedDoesNotPoisonPool drops cursors without Close (the
// client that never comes back, before the service reaper existed). The
// pool must simply miss that state — later runs allocate fresh and stay
// correct — rather than double-free or corrupt.
func TestCursorAbandonedDoesNotPoisonPool(t *testing.T) {
	ds := mustGenerateDataset(t, "uniform", 60, 2, 9)
	eng, err := NewEngine(DataBackend(ds), UniformScenario(2, 1, 2))
	if err != nil {
		t.Fatal(err)
	}
	fixed := WithNC([]float64{0.5, 0.5}, nil)
	want, err := eng.Run(Query{F: Min(), K: 8}, fixed)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		cur, err := eng.Open(Query{F: Min(), K: 2}, fixed)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := cur.Next(1); err != nil {
			t.Fatal(err)
		}
		// abandoned: no Close
		_ = cur
	}
	got, err := eng.Run(Query{F: Min(), K: 8}, fixed)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Items, want.Items) || !reflect.DeepEqual(got.Ledger, want.Ledger) {
		t.Error("abandoned cursors corrupted later runs")
	}
}
