// Adaptivity: the paper's "the Web is dynamic" motivation, live. A query
// starts against sources where probes are far cheaper than sorted scans
// (the Example 2 shape), so the optimal plan leans on probes; mid-query,
// both sources hit a load spike and probes become 50x more expensive. We run the same
// query three ways — the oblivious classic (TA), a plan optimized once for
// the initial costs, and the adaptive pipeline that re-optimizes against
// the costs in force — and show why runtime adaptation is the point of
// cost-based optimization.
//
// Run with: go run ./examples/adaptivity
package main

import (
	"fmt"
	"log"

	topk "repro"
)

func main() {
	ds, err := topk.GenerateDataset("uniform", 1000, 2, 1)
	if err != nil {
		log.Fatal(err)
	}
	query := topk.Query{F: topk.Avg(), K: 10}

	// The load spike: after 60 accesses, random accesses cost 50x.
	spike := []topk.CostShift{
		{AfterAccesses: 60, Pred: 0, RandomFactor: 50},
		{AfterAccesses: 60, Pred: 1, RandomFactor: 50},
	}
	eng, err := topk.NewEngine(topk.DataBackend(ds), topk.UniformScenario(2, 3, 0.3),
		topk.WithCostShifts(spike...))
	if err != nil {
		log.Fatal(err)
	}

	// 1. TA, oblivious to costs altogether.
	ta, err := eng.Run(query, topk.WithAlgorithm("TA"))
	if err != nil {
		log.Fatal(err)
	}

	// 2. A statically optimized plan: right for the initial costs, wrong
	// after the spike. (Optimize against a spike-free engine, then replay
	// that fixed plan on the spiking one.)
	calm, err := topk.NewEngine(topk.DataBackend(ds), topk.UniformScenario(2, 3, 0.3))
	if err != nil {
		log.Fatal(err)
	}
	planned, err := calm.Run(query)
	if err != nil {
		log.Fatal(err)
	}
	static, err := eng.Run(query, topk.WithNC(planned.Plan.H, planned.Plan.Omega))
	if err != nil {
		log.Fatal(err)
	}

	// 3. Adaptive: re-optimize every 10 accesses against current costs.
	adaptive, err := eng.Run(query, topk.WithAdaptive(10))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("probe load spike after 60 accesses (random access 50x):")
	fmt.Printf("  TA (cost-oblivious):            %8.1f units\n", ta.TotalCost().Units())
	fmt.Printf("  NC static plan H=%v:   %8.1f units\n", planned.Plan.H, static.TotalCost().Units())
	fmt.Printf("  NC adaptive re-planning:        %8.1f units (%.1fx better than static)\n",
		adaptive.TotalCost().Units(),
		float64(static.TotalCost())/float64(adaptive.TotalCost()))

	// All three return the same answers; only the bill differs.
	fmt.Println("top-3 of the identical answer set:")
	for i := 0; i < 3; i++ {
		fmt.Printf("  %d. object %-4d score %.4f\n", i+1, adaptive.Items[i].Obj, adaptive.Items[i].Score)
	}
}
