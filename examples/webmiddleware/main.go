// Web middleware: the full stack over real HTTP. Two simulated Web
// sources (the dineme.com / superpages.com split of Example 1) run as
// local HTTP servers with different latencies. The middleware registers
// them in a source catalog, *calibrates* per-access costs by timing real
// requests, optimizes a plan for the calibrated scenario, and answers the
// query — first sequentially, then with real bounded concurrency, where
// every access is a concurrent HTTP request.
//
// Run with: go run ./examples/webmiddleware
package main

import (
	"context"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"time"

	topk "repro"
	"repro/internal/catalog"
	"repro/internal/data"
	"repro/internal/websim"
)

func main() {
	// The "Web": two sources scoring different predicates of the same
	// restaurant universe, each with its own response latency.
	bench, restaurants, err := data.Restaurants(400, 21)
	if err != nil {
		log.Fatal(err)
	}
	ds := bench.Dataset

	dineme := startSource(ds, 0, 2*time.Millisecond) // rating, slower
	defer dineme.Close()
	superpages := startSource(ds, 1, 1*time.Millisecond) // closeness, faster
	defer superpages.Close()
	fmt.Printf("sources up: dineme=%s superpages=%s\n", dineme.URL, superpages.URL)

	// The middleware's source catalog: one HTTP-backed registration per
	// predicate, costs unknown until calibration.
	cat := catalog.New()
	register := func(source, pred, url string) {
		client, err := websim.NewClient(context.Background(), http.DefaultClient, []websim.Route{{BaseURL: url, Pred: 0}})
		if err != nil {
			log.Fatal(err)
		}
		if err := cat.Register(catalog.Registration{
			Source: source, PredName: pred,
			Backend: client, LocalPred: 0,
			Sorted: true, Random: true,
		}); err != nil {
			log.Fatal(err)
		}
	}
	register("dineme.com", "rating", dineme.URL)
	register("superpages.com", "closeness", superpages.URL)

	scn, err := cat.Calibrate(context.Background(), "calibrated-http", 5)
	if err != nil {
		log.Fatal(err)
	}
	for i, name := range cat.PredicateNames() {
		fmt.Printf("calibrated %-10s sorted %.1f ms, random %.1f ms\n",
			name, scn.Preds[i].Sorted.Units(), scn.Preds[i].Random.Units())
	}

	backend, err := cat.Backend()
	if err != nil {
		log.Fatal(err)
	}
	eng, err := topk.NewEngine(backend, scn)
	if err != nil {
		log.Fatal(err)
	}
	query := topk.Query{F: topk.Min(), K: 5}

	// Sequential run: every access is one HTTP round trip.
	start := time.Now()
	seq, err := eng.Run(query)
	if err != nil {
		log.Fatal(err)
	}
	seqWall := time.Since(start)

	fmt.Println("top-5 restaurants by min(rating, closeness), fetched over HTTP:")
	for i, it := range seq.Items {
		r := restaurants[it.Obj]
		fmt.Printf("  %d. %-16s %.1f stars  score %.3f\n", i+1, r.Name, r.Rating, it.Score)
	}
	fmt.Printf("sequential: plan H=%v, %d requests, modeled cost %.0f ms, wall %v\n",
		seq.Plan.H, seq.Ledger.TotalAccesses(), seq.TotalCost().Units(), seqWall.Round(time.Millisecond))

	// Live bounded concurrency: same engine, 8 HTTP requests in flight.
	live, err := eng.Run(query, topk.WithLive(8))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("live B=8:   %d requests, modeled cost %.0f ms, wall %v (%.1fx faster)\n",
		live.Ledger.TotalAccesses(), live.TotalCost().Units(),
		live.Wall.Round(time.Millisecond), float64(seqWall)/float64(live.Wall))
}

func startSource(ds *data.Dataset, pred int, latency time.Duration) *httptest.Server {
	srv, err := websim.NewServer(ds, websim.WithPredicates(pred), websim.WithLatency(latency))
	if err != nil {
		log.Fatal(err)
	}
	return httptest.NewServer(srv)
}
