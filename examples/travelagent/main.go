// Travel agent: the paper's motivating scenario (Examples 1 and 2).
//
// Query Q1 finds the top-5 restaurants that are highly rated AND close:
//
//	select name from restaurants
//	order by min(rating(r), closeness(r, myaddr)) stop after 5
//
// with dineme.com scoring rating (sorted 0.2s, random 1.0s) and
// superpages.com scoring closeness (sorted 0.1s, random 0.5s) — random
// accesses are more expensive in both sources, with different scales.
//
// Query Q2 finds the top-5 hotels that are close, well-starred, and within
// budget:
//
//	select name from hotels
//	order by avg(closeness(h, myaddr), rating(h), cheap(h)) stop after 5
//
// with hotels.com serving all predicates by sorted access (0.3s each); a
// sorted access returns the full record, so subsequent random accesses are
// free — the cost scenario no prior algorithm was designed for.
//
// Run with: go run ./examples/travelagent
package main

import (
	"fmt"
	"log"

	topk "repro"
	"repro/internal/data"
)

func main() {
	q1()
	q2()
}

func q1() {
	bench, restaurants, err := data.Restaurants(1000, 7)
	if err != nil {
		log.Fatal(err)
	}
	ds := bench.Dataset
	scn := topk.Scenario{Name: "example1", Preds: []topk.PredCost{
		{Sorted: topk.CostOf(0.2), SortedOK: true, Random: topk.CostOf(1.0), RandomOK: true}, // dineme.com: rating
		{Sorted: topk.CostOf(0.1), SortedOK: true, Random: topk.CostOf(0.5), RandomOK: true}, // superpages.com: closeness
	}}
	eng, err := topk.NewEngine(topk.DataBackend(ds), scn)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Q1: top-5 restaurants by min(rating, closeness)")
	ans, err := eng.Run(topk.Query{F: topk.Min(), K: 5})
	if err != nil {
		log.Fatal(err)
	}
	for i, it := range ans.Items {
		r := restaurants[it.Obj]
		fmt.Printf("  %d. %-16s %.1f stars at (%.1f,%.1f)  score %.3f\n",
			i+1, r.Name, r.Rating, r.X, r.Y, it.Score)
	}
	fmt.Printf("  optimized plan H=%v: %.1f s of source time\n", ans.Plan.H, ans.TotalCost().Units())

	for _, name := range []string{"TA", "CA"} {
		b, err := eng.Run(topk.Query{F: topk.Min(), K: 5}, topk.WithAlgorithm(name))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-3s would need %.1f s (%.0f%% of it saved by optimization)\n",
			name, b.TotalCost().Units(),
			100*(1-float64(ans.TotalCost())/float64(b.TotalCost())))
	}
	fmt.Println()
}

func q2() {
	bench, hotels, err := data.Hotels(1000, 8)
	if err != nil {
		log.Fatal(err)
	}
	ds := bench.Dataset
	free := topk.PredCost{Sorted: topk.CostOf(0.3), SortedOK: true, Random: 0, RandomOK: true}
	scn := topk.Scenario{Name: "example2", Preds: []topk.PredCost{free, free, free}}
	eng, err := topk.NewEngine(topk.DataBackend(ds), scn)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Q2: top-5 hotels by avg(closeness, rating, cheap), budget $%.0f\n", bench.Budget)
	// A deployed travel middleware keeps statistics: give the optimizer a
	// real sample so the chosen depths respect the actual distributions.
	sample, err := data.Sample(ds, 100, 1)
	if err != nil {
		log.Fatal(err)
	}
	ans, err := eng.Run(topk.Query{F: topk.Avg(), K: 5},
		topk.WithOptimizer(topk.OptimizerConfig{Sample: sample}))
	if err != nil {
		log.Fatal(err)
	}
	for i, it := range ans.Items {
		h := hotels[it.Obj]
		fmt.Printf("  %d. %-12s %.0f stars, $%3.0f/night  score %.3f\n",
			i+1, h.Name, h.Stars, h.Price, it.Score)
	}
	fmt.Printf("  optimized plan H=%v: %.1f s of source time\n", ans.Plan.H, ans.TotalCost().Units())

	ta, err := eng.Run(topk.Query{F: topk.Avg(), K: 5}, topk.WithAlgorithm("TA"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  TA would need %.1f s — this 'random access cheaper' cell is the matrix's '?'\n",
		ta.TotalCost().Units())
}
