// Quickstart: ask a top-k query over sources with asymmetric access costs
// and let the cost-based optimizer pick the middleware plan.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	topk "repro"
)

func main() {
	// A database of 1000 objects scored by two predicates. In a real
	// deployment the scores live at remote sources; here they are
	// synthesized, but every access still goes through the metered
	// middleware session.
	ds, err := topk.GenerateDataset("uniform", 1000, 2, 42)
	if err != nil {
		log.Fatal(err)
	}

	// Cost scenario: sorted access costs 1 unit, random access 10 units
	// (the classic "probes are expensive" Web setting).
	eng, err := topk.NewEngine(topk.DataBackend(ds), topk.UniformScenario(2, 1, 10))
	if err != nil {
		log.Fatal(err)
	}

	// Default pipeline: optimize an SR/G configuration for this query and
	// scenario, then execute Framework NC with it.
	ans, err := eng.Run(topk.Query{F: topk.Min(), K: 5})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("top-5 by min(p1, p2):")
	for i, it := range ans.Items {
		fmt.Printf("  %d. object %-4d score %.4f\n", i+1, it.Obj, it.Score)
	}
	fmt.Printf("optimizer chose H=%v Omega=%v (estimated cost %.1f)\n",
		ans.Plan.H, ans.Plan.Omega, ans.Plan.EstimatedCost.Units())
	fmt.Printf("total access cost: %.1f units (%d sorted, %d random accesses)\n",
		ans.TotalCost().Units(), sum(ans.Ledger.SortedCounts), sum(ans.Ledger.RandomCounts))

	// Compare with the classic Threshold Algorithm on the same query.
	ta, err := eng.Run(topk.Query{F: topk.Min(), K: 5}, topk.WithAlgorithm("TA"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("TA on the same query: %.1f units -> optimized NC costs %.0f%% of TA\n",
		ta.TotalCost().Units(), 100*float64(ans.TotalCost())/float64(ta.TotalCost()))
}

func sum(xs []int) int {
	t := 0
	for _, x := range xs {
		t += x
	}
	return t
}
