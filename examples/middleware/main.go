// Middleware tour: one query, every access-cost scenario of the paper's
// Figure 2 matrix. For each cell we run the specialist algorithm designed
// for it and the cost-based optimizer, showing that a single framework
// adapts across the whole matrix — including the '?' cell nobody designed
// an algorithm for — and also showing bounded-concurrency execution.
//
// Run with: go run ./examples/middleware
package main

import (
	"fmt"
	"log"

	topk "repro"
	"repro/internal/access"
)

func main() {
	ds, err := topk.GenerateDataset("uniform", 1000, 2, 11)
	if err != nil {
		log.Fatal(err)
	}
	query := topk.Query{F: topk.Avg(), K: 10}

	type cell struct {
		label       string
		scn         topk.Scenario
		specialists []string
	}
	cells := []cell{
		{"sorted cheap, random cheap", access.MatrixCell(2, access.Cheap, access.Cheap, 10), []string{"FA", "TA", "Quick-Combine"}},
		{"sorted cheap, random expensive", access.MatrixCell(2, access.Cheap, access.Expensive, 10), []string{"CA", "SR-Combine"}},
		{"sorted cheap, random impossible", access.MatrixCell(2, access.Cheap, access.Impossible, 10), []string{"NRA", "Stream-Combine"}},
		{"sorted impossible, random expensive", access.MatrixCell(2, access.Impossible, access.Expensive, 10), []string{"MPro", "Upper"}},
		{"sorted expensive, random cheap (the '?')", access.MatrixCell(2, access.Expensive, access.Cheap, 10), nil},
	}

	for _, c := range cells {
		fmt.Printf("%s\n", c.label)
		eng, err := topk.NewEngine(topk.DataBackend(ds), c.scn)
		if err != nil {
			log.Fatal(err)
		}
		opt, err := eng.Run(query)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  NC optimized (H=%v): %8.1f units\n", opt.Plan.H, opt.TotalCost().Units())
		for _, name := range c.specialists {
			res, err := eng.Run(query, topk.WithAlgorithm(name))
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-22s %8.1f units (NC at %3.0f%%)\n",
				name+":", res.TotalCost().Units(),
				100*float64(opt.TotalCost())/float64(res.TotalCost()))
		}
		if c.specialists == nil {
			fmt.Println("  (no existing algorithm targets this cell; the optimizer covers it anyway)")
		}
		fmt.Println()
	}

	// Bounded-concurrency execution: same plan, shrinking elapsed time.
	fmt.Println("bounded concurrency on the (cheap, expensive) cell:")
	eng, err := topk.NewEngine(topk.DataBackend(ds), access.MatrixCell(2, access.Cheap, access.Expensive, 10))
	if err != nil {
		log.Fatal(err)
	}
	for _, b := range []int{1, 4, 16} {
		res, err := eng.Run(query, topk.WithParallel(b))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  B=%-2d elapsed %7.1f units, total cost %7.1f units\n",
			b, res.Elapsed, res.TotalCost().Units())
	}
}
