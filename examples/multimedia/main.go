// Multimedia middleware: the paper notes its approach "is applicable in
// any middleware environments (e.g., multimedia systems)". This example
// searches an image collection by three similarity predicates with
// heterogeneous access capabilities, mirroring a real multimedia stack:
//
//   - color:    an index supports both sorted and random access, cheap;
//   - texture:  computable per image on demand — random access only;
//   - keywords: a text engine streams results by relevance — sorted only.
//
// Scoring uses the 2nd-largest order statistic ("at least two of the
// three features must match well"), a monotone quantile semantics the
// framework handles like any other function — and a scenario mix that
// exists in none of the classic algorithms' design envelopes.
//
// Run with: go run ./examples/multimedia
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	topk "repro"
	"repro/internal/data"
)

// image is a synthetic library entry with three feature vectors reduced to
// scalars for the demo.
type image struct {
	name                    string
	color, texture, keyword float64 // feature coordinates in [0,1]
}

func main() {
	rng := rand.New(rand.NewSource(4))
	const n = 800
	images := make([]image, n)
	scores := make([][]float64, n)

	// The query: find images similar to a reference photo at feature
	// coordinates (0.72, 0.31, 0.55). Similarity = 1 - |distance|, with
	// color and texture correlated (as they are for natural images).
	q := image{color: 0.72, texture: 0.31, keyword: 0.55}
	for u := range images {
		base := rng.Float64()
		img := image{
			name:    fmt.Sprintf("img-%04d", u),
			color:   clamp(base + 0.2*rng.NormFloat64()),
			texture: clamp(base + 0.3*rng.NormFloat64()),
			keyword: rng.Float64(),
		}
		images[u] = img
		scores[u] = []float64{
			1 - math.Abs(img.color-q.color),
			1 - math.Abs(img.texture-q.texture),
			1 - math.Abs(img.keyword-q.keyword),
		}
	}
	ds, err := data.New("images", scores)
	if err != nil {
		log.Fatal(err)
	}

	scn := topk.Scenario{Name: "multimedia", Preds: []topk.PredCost{
		{Sorted: topk.CostOf(1), SortedOK: true, Random: topk.CostOf(2), RandomOK: true}, // color index
		{Random: topk.CostOf(5), RandomOK: true},                                         // texture: compute on demand
		{Sorted: topk.CostOf(1), SortedOK: true},                                         // keyword stream
	}}
	eng, err := topk.NewEngine(topk.DataBackend(ds), scn)
	if err != nil {
		log.Fatal(err)
	}

	query := topk.Query{F: topk.OrderStatistic(2), K: 5}
	ans, err := eng.Run(query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("top-5 images where at least 2 of 3 features match (2nd-largest similarity):")
	for i, it := range ans.Items {
		img := images[it.Obj]
		fmt.Printf("  %d. %-9s color=%.2f texture=%.2f keyword=%.2f  score %.3f\n",
			i+1, img.name, img.color, img.texture, img.keyword, it.Score)
	}
	fmt.Printf("plan H=%v Omega=%v, cost %.1f units\n", ans.Plan.H, ans.Plan.Omega, ans.TotalCost().Units())

	// No classic algorithm fits this capability mix; the closest, MPro and
	// Upper, treat every non-streamed predicate as probe-only.
	for _, name := range []string{"MPro", "Upper"} {
		res, err := eng.Run(query, topk.WithAlgorithm(name))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-6s would cost %.1f units (NC at %.0f%%)\n", name,
			res.TotalCost().Units(), 100*float64(ans.TotalCost())/float64(res.TotalCost()))
	}

	// The texture service is slow today: double-check with an anytime
	// budget — take the best answer 50 cost units can buy.
	capped, err := eng.Run(query, topk.WithBudget(50))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("with a 50-unit budget: truncated=%v, best guess %s (score >= %.3f)\n",
		capped.Truncated, images[capped.Items[0].Obj].name, capped.Items[0].Score)
}

func clamp(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
