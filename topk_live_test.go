package topk

import (
	"testing"
)

func TestEngineLiveRun(t *testing.T) {
	ds := exampleDataset(t)
	eng, err := NewEngine(DataBackend(ds), UniformScenario(2, 1, 5))
	if err != nil {
		t.Fatal(err)
	}
	ans, err := eng.Run(Query{F: Min(), K: 5}, WithLive(4))
	if err != nil {
		t.Fatal(err)
	}
	scoresMatchOracle(t, ds, Min(), 5, ans.Items)
	if ans.Wall <= 0 {
		t.Error("live run should report wall time")
	}
	if ans.Plan == nil {
		t.Error("live default pipeline should record the plan")
	}
	// With a fixed configuration, no plan is recorded.
	ans2, err := eng.Run(Query{F: Min(), K: 5}, WithLive(4), WithNC([]float64{0.5, 0.5}, nil))
	if err != nil {
		t.Fatal(err)
	}
	scoresMatchOracle(t, ds, Min(), 5, ans2.Items)
	if ans2.Plan != nil {
		t.Error("fixed-config live run should not optimize")
	}
}

func TestEngineLiveRejectsIncompatibleOptions(t *testing.T) {
	ds := exampleDataset(t)
	eng, _ := NewEngine(DataBackend(ds), UniformScenario(2, 1, 1))
	if _, err := eng.Run(Query{F: Min(), K: 2}, WithLive(2), WithAlgorithm("TA")); err == nil {
		t.Error("live + baseline should fail")
	}
	if _, err := eng.Run(Query{F: Min(), K: 2}, WithLive(2), WithAdaptive(5)); err == nil {
		t.Error("live + adaptive should fail")
	}
	if _, err := eng.Run(Query{F: Min(), K: 2}, WithLive(2), WithParallel(2)); err == nil {
		t.Error("live + parallel should fail")
	}
	shifted, _ := NewEngine(DataBackend(ds), UniformScenario(2, 1, 1),
		WithCostShifts(CostShift{AfterAccesses: 5, Pred: 0, RandomFactor: 2}))
	if _, err := shifted.Run(Query{F: Min(), K: 2}, WithLive(2)); err == nil {
		t.Error("live + cost shifts should fail")
	}
}

func TestEngineApproximation(t *testing.T) {
	ds := exampleDataset(t)
	eng, err := NewEngine(DataBackend(ds), UniformScenario(2, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	exact, err := eng.Run(Query{F: Avg(), K: 10}, WithNC([]float64{0, 0}, nil))
	if err != nil {
		t.Fatal(err)
	}
	approx, err := eng.Run(Query{F: Avg(), K: 10}, WithNC([]float64{0, 0}, nil), WithApproximation(0.3))
	if err != nil {
		t.Fatal(err)
	}
	if approx.TotalCost() > exact.TotalCost() {
		t.Errorf("approximate cost %v exceeds exact %v", approx.TotalCost(), exact.TotalCost())
	}
	// Guarantee: (1+eps)*F(returned) >= F(anything else).
	returned := make(map[int]bool)
	worst := 2.0
	for _, it := range approx.Items {
		returned[it.Obj] = true
		if truth := Avg().Eval(ds.Scores(it.Obj)); truth < worst {
			worst = truth
		}
	}
	for u := 0; u < ds.N(); u++ {
		if returned[u] {
			continue
		}
		if truth := Avg().Eval(ds.Scores(u)); 1.3*worst < truth-1e-9 {
			t.Fatalf("approximation guarantee violated: %g vs %g", worst, truth)
		}
	}
	// Validation.
	if _, err := eng.Run(Query{F: Avg(), K: 2}, WithApproximation(-1)); err == nil {
		t.Error("negative epsilon should fail")
	}
	if _, err := eng.Run(Query{F: Avg(), K: 2}, WithApproximation(0.1), WithAlgorithm("TA")); err == nil {
		t.Error("approximation + baseline should fail")
	}
	if _, err := eng.Run(Query{F: Avg(), K: 2}, WithApproximation(0.1), WithParallel(2)); err == nil {
		t.Error("approximation + parallel should fail")
	}
}

func TestEngineExplain(t *testing.T) {
	ds := exampleDataset(t)
	eng, err := NewEngine(DataBackend(ds), UniformScenario(2, 1, 10))
	if err != nil {
		t.Fatal(err)
	}
	plan, err := eng.Explain(Query{F: Min(), K: 5}, OptimizerConfig{Grid: 6, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.H) != 2 || plan.EstimatedCost <= 0 || plan.Evals == 0 {
		t.Fatalf("plan = %+v", plan)
	}
	// Explain must not touch the sources: executing the explained plan
	// afterwards costs exactly what a fresh run does.
	a, err := eng.Run(Query{F: Min(), K: 5}, WithNC(plan.H, plan.Omega))
	if err != nil {
		t.Fatal(err)
	}
	b, err := eng.Run(Query{F: Min(), K: 5}, WithNC(plan.H, plan.Omega))
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalCost() != b.TotalCost() {
		t.Error("Explain leaked state into the engine")
	}
	if _, err := eng.Explain(Query{F: Min(), K: 0}, OptimizerConfig{}); err == nil {
		t.Error("k=0 should fail")
	}
	if _, err := eng.Explain(Query{F: Weighted(1, 2, 3), K: 2}, OptimizerConfig{}); err == nil {
		t.Error("arity mismatch should fail")
	}
}

func TestEngineOpenCursor(t *testing.T) {
	ds := exampleDataset(t)
	eng, err := NewEngine(DataBackend(ds), UniformScenario(2, 1, 2))
	if err != nil {
		t.Fatal(err)
	}
	cur, err := eng.Open(Query{F: Min(), K: 10})
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()
	first, err := cur.Next(4)
	if err != nil || len(first.Items) != 4 {
		t.Fatalf("first page: %v %v", first, err)
	}
	more, err := cur.Next(4)
	if err != nil || len(more.Items) != 4 {
		t.Fatalf("second page: %v %v", more, err)
	}
	scoresMatchOracle(t, ds, Min(), 8, append(append([]Item(nil), first.Items...), more.Items...))
	if cur.Cost() <= 0 || cur.Ledger().TotalAccesses() == 0 {
		t.Error("cursor accounting empty")
	}
	if cur.Plan() == nil || first.Plan == nil {
		t.Error("optimizer-planned cursor should expose its plan")
	}
	if cur.Emitted() != 8 {
		t.Errorf("Emitted = %d, want 8", cur.Emitted())
	}
	// TA is resumable through the facade; other baselines stay batch-only.
	ta, err := eng.Open(Query{F: Min(), K: 2}, WithAlgorithm("TA"))
	if err != nil {
		t.Fatalf("cursor + TA should work: %v", err)
	}
	if page, err := ta.Next(2); err != nil || len(page.Items) != 2 {
		t.Fatalf("TA cursor page: %v %v", page, err)
	}
	if _, err := ta.NextUntil(0.5); err == nil {
		t.Error("TA cursor should refuse score-range paging")
	}
	ta.Close()
	if _, err := eng.Open(Query{F: Min(), K: 2}, WithAlgorithm("FA")); err == nil {
		t.Error("cursor + FA should fail")
	}
	if _, err := eng.Open(Query{F: Min(), K: 2}, WithParallel(2)); err == nil {
		t.Error("cursor + parallel should fail")
	}
	// Adaptive cursors are supported: the divergence monitor attaches to
	// the suspended execution and re-plans between checkpoints.
	if adc, err := eng.Open(Query{F: Min(), K: 2}, WithAdaptive(5)); err != nil {
		t.Errorf("cursor + adaptive should work: %v", err)
	} else {
		if page, err := adc.Next(2); err != nil || len(page.Items) != 2 {
			t.Errorf("adaptive cursor page: %v %v", page, err)
		}
		adc.Close()
	}
	if _, err := eng.Open(Query{F: Min(), K: 2}, WithBudget(-1)); err == nil {
		t.Error("cursor + bad budget should fail")
	}
	// Cursor with a fixed configuration and approximation.
	cur2, err := eng.Open(Query{F: Avg(), K: 5}, WithNC([]float64{0.5, 0.5}, nil), WithApproximation(0.3))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cur2.Next(5); err != nil {
		t.Fatal(err)
	}
	cur2.Close()
	if _, err := cur2.Next(1); err == nil {
		t.Error("page after Close should fail")
	}
	if err := cur2.Close(); err != nil {
		t.Errorf("Close should be idempotent, got %v", err)
	}
}
