package topk

// The scatter-gather oracle: sharding the sources must be invisible to the
// query layer. A 3-shard in-process cluster — the same consistent-hash
// partition topkd's -shard nodes compute — fronted by the coordinator must
// produce byte-identical answers AND a byte-identical access ledger to a
// single-node run over the unsharded dataset, across the Figure-2
// capability matrix, for every algorithm family (fixed-plan NC, TA, MPro),
// with the sharing layer off and on. The ledger equality is the strong
// half: the coordinator may prefetch ahead inside shards, but what it
// surfaces to the session — and therefore what the client is billed — must
// match the unsharded source exactly.

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/cluster"
)

// newTestCluster partitions ds into the given number of in-process shards
// and fronts them with a fresh coordinator.
func newTestCluster(t *testing.T, ds *Dataset, shards int) *cluster.Coordinator {
	t.Helper()
	parts, err := cluster.Partition(ds, shards)
	if err != nil {
		t.Fatal(err)
	}
	members := make([]cluster.Shard, len(parts))
	for i, sd := range parts {
		members[i] = cluster.NewLocalShard(sd)
	}
	coord, err := cluster.New(members, cluster.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return coord
}

func TestClusterScatterGatherOracle(t *testing.T) {
	const (
		n      = 120
		m      = 2
		k      = 6
		shards = 3
	)
	ds := mustGenerateDataset(t, "uniform", n, m, 31)
	q := Query{F: Min(), K: k}

	completed := 0
	for _, cell := range figure2Cells(m, 10) {
		for _, alg := range cursorOracleAlgos() {
			for _, sharing := range []bool{false, true} {
				name := fmt.Sprintf("%s/%s", cell.name, alg.name)
				if sharing {
					name += "/shared"
				}
				t.Run(name, func(t *testing.T) {
					opts := alg.opts(m)

					// Single-node oracle over the unsharded dataset.
					singleEng, err := NewEngine(matrixBackend(ds, sharing, nil), cell.scn)
					if err != nil {
						t.Skip("cell has no legal access")
					}
					single, err := singleEng.Run(q, opts...)
					if err != nil {
						t.Skipf("cell denies an access %s requires: %v", alg.name, err)
					}

					// The same query through a 3-shard scatter-gather
					// cluster. When sharing is on the layer sits above the
					// coordinator, exactly as the service composes it.
					var backend Backend = newTestCluster(t, ds, shards)
					if sharing {
						backend = NewSharedAccess(backend, SharingOptions{})
					}
					clusterEng, err := NewEngine(backend, cell.scn)
					if err != nil {
						t.Fatal(err)
					}
					got, err := clusterEng.Run(q, opts...)
					if err != nil {
						t.Fatalf("single-node run succeeded, cluster failed: %v", err)
					}

					if !reflect.DeepEqual(got.Items, single.Items) {
						t.Errorf("cluster answers diverge from single-node:\n cluster %v\n single  %v", got.Items, single.Items)
					}
					if !reflect.DeepEqual(got.Ledger, single.Ledger) {
						t.Errorf("cluster ledger diverges from single-node:\n cluster %+v\n single  %+v", got.Ledger, single.Ledger)
					}
					if got.Truncated != single.Truncated || !reflect.DeepEqual(got.Degraded, single.Degraded) {
						t.Errorf("cluster flags (trunc=%v degr=%v) diverge from single-node (trunc=%v degr=%v)",
							got.Truncated, got.Degraded, single.Truncated, single.Degraded)
					}
					assertExactTopK(t, ds, q.F, k, got)
					completed++
				})
			}
		}
	}
	// The sweep must exercise the property across the matrix, not skip its
	// way to vacuous success.
	if completed < 15 {
		t.Fatalf("only %d cell/algorithm combinations completed", completed)
	}
}

// TestClusterShardCountInvariance pins the partition-independence half of
// the contract: for any shard count the coordinator must surface the same
// global access order, so the answers and the bill cannot depend on how
// many nodes the data happens to live on.
func TestClusterShardCountInvariance(t *testing.T) {
	const (
		n = 90
		m = 3
		k = 5
	)
	ds := mustGenerateDataset(t, "zipf", n, m, 17)
	q := Query{F: Avg(), K: k}
	scn := UniformScenario(m, 1, 4)

	var ref *Answer
	for _, shards := range []int{1, 2, 3, 5} {
		eng, err := NewEngine(newTestCluster(t, ds, shards), scn)
		if err != nil {
			t.Fatal(err)
		}
		ans, err := eng.Run(q, WithNC([]float64{0.6, 0.6, 0.6}, nil))
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if ref == nil {
			ref = ans
			assertExactTopK(t, ds, q.F, k, ans)
			continue
		}
		if !reflect.DeepEqual(ans.Items, ref.Items) {
			t.Errorf("shards=%d answers diverge: %v vs %v", shards, ans.Items, ref.Items)
		}
		if !reflect.DeepEqual(ans.Ledger, ref.Ledger) {
			t.Errorf("shards=%d ledger diverges: %+v vs %+v", shards, ans.Ledger, ref.Ledger)
		}
	}
}
