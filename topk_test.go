package topk

import (
	"context"
	"errors"
	"math"
	"sort"
	"testing"

	"repro/internal/access"
)

func exampleDataset(t *testing.T) *Dataset {
	t.Helper()
	return mustGenerateDataset(t, "uniform", 300, 2, 42)
}

func scoresMatchOracle(t *testing.T, ds *Dataset, f ScoreFunc, k int, items []Item) {
	t.Helper()
	oracle := TopKOracle(ds, f, k)
	if len(items) != len(oracle) {
		t.Fatalf("got %d items, oracle %d", len(items), len(oracle))
	}
	got := make([]float64, len(items))
	want := make([]float64, len(items))
	for i := range items {
		got[i] = f.Eval(ds.Scores(items[i].Obj))
		want[i] = oracle[i].Score
	}
	sort.Float64s(got)
	sort.Float64s(want)
	for i := range got {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Fatalf("score multiset mismatch: %v vs %v", got, want)
		}
	}
}

func TestEngineDefaultPipeline(t *testing.T) {
	ds := exampleDataset(t)
	eng, err := NewEngine(DataBackend(ds), UniformScenario(2, 1, 10))
	if err != nil {
		t.Fatal(err)
	}
	ans, err := eng.Run(Query{F: Min(), K: 5})
	if err != nil {
		t.Fatal(err)
	}
	scoresMatchOracle(t, ds, Min(), 5, ans.Items)
	if ans.Plan == nil {
		t.Error("default pipeline should record the optimizer's plan")
	}
	if ans.TotalCost() <= 0 {
		t.Error("no cost accrued")
	}
}

func TestEngineIsReusable(t *testing.T) {
	ds := exampleDataset(t)
	eng, err := NewEngine(DataBackend(ds), UniformScenario(2, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	a1, err := eng.Run(Query{F: Avg(), K: 3}, WithNC([]float64{0.5, 0.5}, nil))
	if err != nil {
		t.Fatal(err)
	}
	a2, err := eng.Run(Query{F: Avg(), K: 3}, WithNC([]float64{0.5, 0.5}, nil))
	if err != nil {
		t.Fatal(err)
	}
	if a1.TotalCost() != a2.TotalCost() {
		t.Error("identical runs on a reusable engine must cost the same")
	}
}

func TestEngineNamedBaselines(t *testing.T) {
	ds := exampleDataset(t)
	eng, err := NewEngine(DataBackend(ds), UniformScenario(2, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"FA", "TA", "CA", "NRA", "Quick-Combine", "Stream-Combine"} {
		f := Avg()
		ans, err := eng.Run(Query{F: f, K: 5}, WithAlgorithm(name))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		scoresMatchOracle(t, ds, f, 5, ans.Items)
	}
	if _, err := eng.Run(Query{F: Avg(), K: 5}, WithAlgorithm("nope")); err == nil {
		t.Error("unknown algorithm name should fail at Run")
	}
}

func TestEngineFixedNC(t *testing.T) {
	ds := exampleDataset(t)
	eng, _ := NewEngine(DataBackend(ds), UniformScenario(2, 1, 1))
	ans, err := eng.Run(Query{F: Min(), K: 4}, WithNC([]float64{0.3, 1}, []int{1, 0}))
	if err != nil {
		t.Fatal(err)
	}
	scoresMatchOracle(t, ds, Min(), 4, ans.Items)
	if ans.Plan != nil {
		t.Error("fixed NC run should not invoke the optimizer")
	}
}

func TestEngineParallel(t *testing.T) {
	ds := exampleDataset(t)
	eng, _ := NewEngine(DataBackend(ds), UniformScenario(2, 1, 5))
	ans, err := eng.Run(Query{F: Min(), K: 5}, WithParallel(4))
	if err != nil {
		t.Fatal(err)
	}
	scoresMatchOracle(t, ds, Min(), 5, ans.Items)
	if ans.Elapsed <= 0 || ans.Elapsed > ans.TotalCost().Units()+1e-9 {
		t.Errorf("elapsed %g vs cost %g", ans.Elapsed, ans.TotalCost().Units())
	}
	// Parallel with a fixed configuration too.
	ans2, err := eng.Run(Query{F: Min(), K: 5}, WithParallel(4), WithNC([]float64{0.4, 0.4}, nil))
	if err != nil {
		t.Fatal(err)
	}
	scoresMatchOracle(t, ds, Min(), 5, ans2.Items)
	// Parallel refuses named baselines and adaptive mode.
	if _, err := eng.Run(Query{F: Min(), K: 5}, WithParallel(2), WithAlgorithm("TA")); err == nil {
		t.Error("parallel + named baseline should fail")
	}
	if _, err := eng.Run(Query{F: Min(), K: 5}, WithParallel(2), WithAdaptive(10)); err == nil {
		t.Error("parallel + adaptive should fail")
	}
}

func TestEngineAdaptiveWithShifts(t *testing.T) {
	ds := exampleDataset(t)
	eng, err := NewEngine(DataBackend(ds), UniformScenario(2, 1, 1),
		WithCostShifts(CostShift{AfterAccesses: 20, Pred: 0, RandomFactor: 30},
			CostShift{AfterAccesses: 20, Pred: 1, RandomFactor: 30}))
	if err != nil {
		t.Fatal(err)
	}
	ans, err := eng.Run(Query{F: Avg(), K: 5}, WithAdaptive(10))
	if err != nil {
		t.Fatal(err)
	}
	scoresMatchOracle(t, ds, Avg(), 5, ans.Items)
}

func TestEngineValidation(t *testing.T) {
	ds := exampleDataset(t)
	if _, err := NewEngine(nil, UniformScenario(2, 1, 1)); err == nil {
		t.Error("nil backend should fail")
	}
	if _, err := NewEngine(DataBackend(ds), UniformScenario(3, 1, 1)); err == nil {
		t.Error("scenario arity mismatch should fail")
	}
	eng, _ := NewEngine(DataBackend(ds), UniformScenario(2, 1, 1))
	if _, err := eng.Run(Query{F: Min(), K: 0}); err == nil {
		t.Error("k=0 should fail")
	}
	if _, err := eng.Run(Query{F: Min(), K: 2}, WithNC([]float64{2, 2}, nil)); err == nil {
		t.Error("invalid depths should fail")
	}
}

func TestWithoutNoWildGuessesOption(t *testing.T) {
	ds := exampleDataset(t)
	eng, err := NewEngine(DataBackend(ds), UniformScenario(2, 1, 1), WithoutNoWildGuesses())
	if err != nil {
		t.Fatal(err)
	}
	ans, err := eng.Run(Query{F: Min(), K: 3}, WithNC([]float64{1, 1}, nil))
	if err != nil {
		t.Fatal(err)
	}
	scoresMatchOracle(t, ds, Min(), 3, ans.Items)
}

func TestScoreByNameReexport(t *testing.T) {
	f, err := ScoreByName("geomean")
	if err != nil || f.Name() != "geomean" {
		t.Errorf("ScoreByName = %v, %v", f, err)
	}
}

func TestCostHelpers(t *testing.T) {
	if CostOf(2) != 2*access.UnitCost {
		t.Error("CostOf mismatch")
	}
	if c, err := CostFromUnits(1.5); err != nil || c != CostOf(1.5) {
		t.Errorf("CostFromUnits(1.5) = %v, %v", c, err)
	}
	if _, err := CostFromUnits(-1); err == nil {
		t.Error("negative units should be rejected")
	}
	if ds := mustGenerateDataset(t, "uniform", 10, 2, 1); ds.N() != 10 {
		t.Error("GenerateDataset mismatch")
	}
	if _, err := GenerateDataset("bogus", 10, 2, 1); err == nil {
		t.Error("bogus distribution should fail")
	}
}

func TestOracleOrder(t *testing.T) {
	ds := exampleDataset(t)
	items := TopKOracle(ds, Avg(), 10)
	for i := 1; i < len(items); i++ {
		if items[i].Score > items[i-1].Score {
			t.Fatal("oracle not sorted")
		}
	}
}

func TestEngineProbeOnlyBaselines(t *testing.T) {
	ds := exampleDataset(t)
	scn := Scenario{Name: "probe", Preds: []PredCost{
		{Sorted: CostOf(1), SortedOK: true, Random: CostOf(5), RandomOK: true},
		{Random: CostOf(5), RandomOK: true},
	}}
	eng, err := NewEngine(DataBackend(ds), scn)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"MPro", "Upper"} {
		ans, err := eng.Run(Query{F: Min(), K: 5}, WithAlgorithm(name))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		scoresMatchOracle(t, ds, Min(), 5, ans.Items)
	}
	// SR-Combine in its home cell (both access kinds, probes expensive).
	eng2, err := NewEngine(DataBackend(ds), UniformScenario(2, 1, 10))
	if err != nil {
		t.Fatal(err)
	}
	ans, err := eng2.Run(Query{F: Avg(), K: 5}, WithAlgorithm("SR-Combine"))
	if err != nil {
		t.Fatal(err)
	}
	scoresMatchOracle(t, ds, Avg(), 5, ans.Items)
}

func TestEngineBudgetThroughFacade(t *testing.T) {
	ds := exampleDataset(t)
	eng, err := NewEngine(DataBackend(ds), UniformScenario(2, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	ans, err := eng.Run(Query{F: Avg(), K: 5}, WithNC([]float64{0.5, 0.5}, nil), WithBudget(15))
	if err != nil {
		t.Fatal(err)
	}
	if !ans.Truncated || ans.TotalCost().Units() > 15 {
		t.Errorf("budgeted answer = truncated=%v cost=%v", ans.Truncated, ans.TotalCost())
	}
	if len(ans.Items) != 5 {
		t.Errorf("anytime answer has %d items", len(ans.Items))
	}
	if _, err := eng.Run(Query{F: Avg(), K: 5}, WithBudget(-3)); err == nil {
		t.Error("negative budget should fail")
	}
}

func TestEngineMedianScoring(t *testing.T) {
	ds := mustGenerateDataset(t, "gaussian", 200, 3, 8)
	eng, err := NewEngine(DataBackend(ds), UniformScenario(3, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	ans, err := eng.Run(Query{F: Median(), K: 6})
	if err != nil {
		t.Fatal(err)
	}
	scoresMatchOracle(t, ds, Median(), 6, ans.Items)
	ans2, err := eng.Run(Query{F: OrderStatistic(2), K: 6}, WithAlgorithm("TA"))
	if err != nil {
		t.Fatal(err)
	}
	scoresMatchOracle(t, ds, OrderStatistic(2), 6, ans2.Items)
}

func TestRunWithContextCancellation(t *testing.T) {
	ds := exampleDataset(t)
	eng, err := NewEngine(DataBackend(ds), UniformScenario(2, 1, 10))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := eng.Run(Query{F: Min(), K: 5}, WithContext(ctx)); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled sequential run: err = %v, want context.Canceled", err)
	}
	if _, err := eng.Run(Query{F: Min(), K: 5}, WithContext(ctx), WithParallel(4)); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled parallel run: err = %v, want context.Canceled", err)
	}
	if _, err := eng.Run(Query{F: Min(), K: 5}, WithContext(ctx), WithLive(4)); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled live run: err = %v, want context.Canceled", err)
	}
	// The same options with a live context still answer.
	ans, err := eng.Run(Query{F: Min(), K: 5}, WithContext(context.Background()))
	if err != nil {
		t.Fatal(err)
	}
	scoresMatchOracle(t, ds, Min(), 5, ans.Items)
}
