package topk

import "testing"

func mustGenerateDataset(t *testing.T, dist string, n, m int, seed int64) *Dataset {
	t.Helper()
	ds, err := GenerateDataset(dist, n, m, seed)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}
