package topk

import (
	"math"
	"sort"
	"testing"

	"repro/internal/access"
)

func mustGenerateDataset(t *testing.T, dist string, n, m int, seed int64) *Dataset {
	t.Helper()
	ds, err := GenerateDataset(dist, n, m, seed)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

// figure2Cell is one named cell of the paper's Figure-2 cost matrix: a
// (sorted-access, random-access) capability combination every end-to-end
// sweep in this package iterates.
type figure2Cell struct {
	name string
	scn  Scenario
}

// figure2Cells enumerates the legal matrix cells for m predicates at the
// given access cost. The sa-impossible/ra-impossible corner is excluded —
// no algorithm can run there.
func figure2Cells(m int, cost float64) []figure2Cell {
	return []figure2Cell{
		{"sa-cheap_ra-cheap", access.MatrixCell(m, access.Cheap, access.Cheap, cost)},
		{"sa-cheap_ra-expensive", access.MatrixCell(m, access.Cheap, access.Expensive, cost)},
		{"sa-cheap_ra-impossible", access.MatrixCell(m, access.Cheap, access.Impossible, cost)},
		{"sa-impossible_ra-expensive", access.MatrixCell(m, access.Impossible, access.Expensive, cost)},
		{"sa-expensive_ra-cheap", access.MatrixCell(m, access.Expensive, access.Cheap, cost)},
	}
}

// matrixBackend composes a matrix run's backend the way the service does:
// the cross-query sharing layer (when enabled) sits directly over the data,
// so fault injectors and resilience wrap sessions, never the shared caches.
func matrixBackend(ds *Dataset, sharing bool, breakers *BreakerSet) Backend {
	backend := DataBackend(ds)
	if sharing {
		backend = NewSharedAccess(backend, SharingOptions{Breakers: breakers})
	}
	return backend
}

// assertExactTopK checks an untruncated answer against the brute-force
// oracle (multiset of true scores, distinct objects, honest Exact flags).
func assertExactTopK(t *testing.T, ds *Dataset, f ScoreFunc, k int, ans *Answer) {
	t.Helper()
	oracle := TopKOracle(ds, f, k)
	if len(ans.Items) != len(oracle) {
		t.Fatalf("returned %d items, oracle has %d", len(ans.Items), len(oracle))
	}
	got := make([]float64, len(ans.Items))
	seen := make(map[int]bool)
	for i, it := range ans.Items {
		if seen[it.Obj] {
			t.Fatalf("duplicate object %d", it.Obj)
		}
		seen[it.Obj] = true
		truth := f.Eval(ds.Scores(it.Obj))
		if it.Exact && math.Abs(it.Score-truth) > 1e-9 {
			t.Fatalf("object %d reported exact score %g, truth %g", it.Obj, it.Score, truth)
		}
		got[i] = truth
	}
	want := make([]float64, len(oracle))
	for i, it := range oracle {
		want[i] = it.Score
	}
	sort.Float64s(got)
	sort.Float64s(want)
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Fatalf("score multiset mismatch: got %v, oracle %v", got, want)
		}
	}
}
