package topk

// Integration tests exercising the full middleware stack across packages:
// the SQL-like query front-end, the source catalog with cost calibration,
// HTTP web sources, the optimizer, and both sequential and live-concurrent
// execution — everything a deployed instance of the system would touch.

import (
	"context"
	"math"
	"net/http"
	"net/http/httptest"
	"sort"
	"testing"
	"time"

	"repro/internal/catalog"
	"repro/internal/data"
	"repro/internal/sqlq"
	"repro/internal/websim"
)

func TestFullStackOverHTTP(t *testing.T) {
	// The query, in the paper's syntax.
	pq, err := sqlq.Parse("select name from restaurants order by min(rating, closeness) stop after 4")
	if err != nil {
		t.Fatal(err)
	}

	// Two HTTP sources with different latencies over one universe.
	bench, _, err := data.Restaurants(150, 77)
	if err != nil {
		t.Fatal(err)
	}
	ds := bench.Dataset
	start := func(pred int, latency time.Duration) *httptest.Server {
		srv, err := websim.NewServer(ds, websim.WithPredicates(pred), websim.WithLatency(latency))
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv)
		t.Cleanup(ts.Close)
		return ts
	}
	ratingSrv := start(0, 2*time.Millisecond)
	closenessSrv := start(1, time.Millisecond)

	// Catalog: register, bind the query's predicates, calibrate costs.
	cat := catalog.New()
	register := func(source, pred, url string) {
		client, err := websim.NewClient(context.Background(), http.DefaultClient, []websim.Route{{BaseURL: url, Pred: 0}})
		if err != nil {
			t.Fatal(err)
		}
		if err := cat.Register(catalog.Registration{
			Source: source, PredName: pred, Backend: client, LocalPred: 0,
			Sorted: true, Random: true,
		}); err != nil {
			t.Fatal(err)
		}
	}
	register("dineme", "rating", ratingSrv.URL)
	register("superpages", "closeness", closenessSrv.URL)

	cols, err := sqlq.Bind(pq, cat.PredicateNames())
	if err != nil {
		t.Fatal(err)
	}
	// The query lists rating first, matching registration order.
	if cols[0] != 0 || cols[1] != 1 {
		t.Fatalf("binding = %v", cols)
	}

	scn, err := cat.Calibrate(context.Background(), "http", 3)
	if err != nil {
		t.Fatal(err)
	}
	// Calibration must notice that the rating source is slower.
	if scn.Preds[0].Sorted <= scn.Preds[1].Sorted {
		t.Errorf("calibration order wrong: %v vs %v", scn.Preds[0].Sorted, scn.Preds[1].Sorted)
	}

	backend, err := cat.Backend()
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(backend, scn)
	if err != nil {
		t.Fatal(err)
	}

	oracle := ds.TopK(pq.Func.Eval, pq.K)
	check := func(items []Item) {
		t.Helper()
		if len(items) != pq.K {
			t.Fatalf("got %d items", len(items))
		}
		got := make([]float64, len(items))
		want := make([]float64, len(items))
		for i := range items {
			got[i] = pq.Func.Eval(ds.Scores(items[i].Obj))
			want[i] = oracle[i].Score
		}
		sort.Float64s(got)
		sort.Float64s(want)
		for i := range got {
			if math.Abs(got[i]-want[i]) > 1e-9 {
				t.Fatalf("answer mismatch: %v vs %v", got, want)
			}
		}
	}

	seq, err := eng.Run(Query{F: pq.Func, K: pq.K})
	if err != nil {
		t.Fatal(err)
	}
	check(seq.Items)
	if seq.TotalCost() <= 0 || seq.Plan == nil {
		t.Error("sequential run missing cost or plan")
	}

	live, err := eng.Run(Query{F: pq.Func, K: pq.K}, WithLive(6))
	if err != nil {
		t.Fatal(err)
	}
	check(live.Items)
	if live.Wall <= 0 {
		t.Error("live run missing wall time")
	}
}

func TestFullStackDynamicCostsAdaptive(t *testing.T) {
	// End-to-end adaptivity through the facade: an engine whose sources
	// degrade mid-query, answered adaptively, statically, and by TA.
	ds := mustGenerateDataset(t, "uniform", 500, 2, 13)
	shifts := []CostShift{
		{AfterAccesses: 40, Pred: 0, RandomFactor: 30},
		{AfterAccesses: 40, Pred: 1, RandomFactor: 30},
	}
	eng, err := NewEngine(DataBackend(ds), UniformScenario(2, 1, 1), WithCostShifts(shifts...))
	if err != nil {
		t.Fatal(err)
	}
	q := Query{F: Avg(), K: 8}
	adaptive, err := eng.Run(q, WithAdaptive(10))
	if err != nil {
		t.Fatal(err)
	}
	scoresMatchOracle(t, ds, Avg(), 8, adaptive.Items)
	ta, err := eng.Run(q, WithAlgorithm("TA"))
	if err != nil {
		t.Fatal(err)
	}
	scoresMatchOracle(t, ds, Avg(), 8, ta.Items)
	if adaptive.TotalCost() >= ta.TotalCost() {
		t.Errorf("adaptive %v should beat oblivious TA %v under a probe-cost spike",
			adaptive.TotalCost(), ta.TotalCost())
	}
}

func TestSQLQueryThroughFacade(t *testing.T) {
	// Parse the paper's Q2 syntax and execute it against the hotel
	// benchmark through the facade.
	pq, err := sqlq.Parse("select name from hotels order by avg(closeness, rating, cheap) stop after 5")
	if err != nil {
		t.Fatal(err)
	}
	bench, _, err := data.Hotels(300, 3)
	if err != nil {
		t.Fatal(err)
	}
	cols, err := sqlq.Bind(pq, bench.PredicateNames)
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range cols {
		if c != i {
			t.Fatalf("Q2's predicate order matches the benchmark's: %v", cols)
		}
	}
	eng, err := NewEngine(DataBackend(bench.Dataset), UniformScenario(3, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	ans, err := eng.Run(Query{F: pq.Func, K: pq.K})
	if err != nil {
		t.Fatal(err)
	}
	scoresMatchOracle(t, bench.Dataset, pq.Func, pq.K, ans.Items)
}
