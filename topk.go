// Package topk is a cost-based top-k query middleware for Web-style
// sources, reproducing Hwang & Chang's "Optimizing Access Cost for Top-k
// Queries over Web Sources: A Unified Cost-based Approach" (ICDE 2005).
//
// A top-k query (F, k) ranks objects by a monotone scoring function F of
// per-predicate scores that must be gathered from sources through sorted
// and random accesses, each with its own cost. This package's Engine
// optimizes and executes such queries with Framework NC — a dynamic,
// cost-based search over middleware algorithms that unifies and
// generalizes FA, TA, CA, NRA, MPro, Upper, and the Combine family, all of
// which are also available as named baselines.
//
// Quickstart:
//
//	ds, _ := topk.GenerateDataset("uniform", 1000, 2, 42)
//	eng, _ := topk.NewEngine(topk.DataBackend(ds), topk.UniformScenario(2, 1, 10))
//	ans, _ := eng.Run(topk.Query{F: topk.Min(), K: 5})
//	for _, it := range ans.Items {
//	    fmt.Println(it.Obj, it.Score)
//	}
//	fmt.Println("total access cost:", ans.TotalCost())
//
// See examples/ for end-to-end scenarios (including querying live HTTP
// sources via internal/websim) and cmd/topkbench for the experiment
// harness regenerating the paper's evaluation.
package topk

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/access"
	"repro/internal/adapt"
	"repro/internal/algo"
	"repro/internal/data"
	"repro/internal/obs"
	"repro/internal/opt"
	"repro/internal/parallel"
	"repro/internal/score"
	"repro/internal/share"
)

// Re-exported core types. The facade aliases the internal packages' types
// so callers never import repro/internal/... directly.
type (
	// ScoreFunc is a monotone scoring function over predicate scores.
	ScoreFunc = score.Func
	// Dataset is an immutable in-memory database of predicate scores.
	Dataset = data.Dataset
	// Scenario describes per-predicate access capabilities and unit costs.
	Scenario = access.Scenario
	// PredCost is one predicate's capability/cost entry of a Scenario.
	PredCost = access.PredCost
	// CostShift is a dynamic mid-query cost change.
	CostShift = access.CostShift
	// Cost is a fixed-point access cost.
	Cost = access.Cost
	// Ledger summarizes accesses performed and cost accrued.
	Ledger = access.Ledger
	// Item is one ranked answer.
	Item = algo.Item
	// Backend supplies raw access results (in-memory or HTTP).
	Backend = access.Backend
	// Plan is an optimizer-chosen SR/G configuration.
	Plan = opt.Plan
	// OptimizerConfig tunes the cost-based optimizer.
	OptimizerConfig = opt.Config
	// PlanCache memoizes optimizer plans across queries with LRU bounds
	// and singleflight dedup (see WithPlanCache).
	PlanCache = opt.PlanCache
	// PlanCacheStats reports plan-cache hits, misses, and evictions.
	PlanCacheStats = opt.CacheStats
	// Observer receives engine execution events (see WithObserver).
	Observer = obs.Observer
	// TraceSnapshot is a per-query execution trace (see WithTrace).
	TraceSnapshot = obs.TraceSnapshot
	// MetricsRegistry is a metrics registry with Prometheus exposition.
	MetricsRegistry = obs.Registry
	// BreakerSet is a shared set of per-capability circuit breakers (see
	// WithResilience).
	BreakerSet = access.BreakerSet
	// BreakerConfig tunes circuit-breaker thresholds and cooldowns.
	BreakerConfig = access.BreakerConfig
	// Resilience attaches circuit breakers and per-access deadlines to a
	// run (see WithResilience).
	Resilience = access.Resilience
	// SharedAccess is the cross-query access-sharing layer: shared sorted
	// cursors, a score cache, and batched random access over any Backend
	// (see WithSharing).
	SharedAccess = share.Layer
	// SharingOptions tunes a SharedAccess layer.
	SharingOptions = share.Options
	// SharingStats snapshots a sharing layer's effectiveness.
	SharingStats = share.Stats
	// BatchBackend is the capability a backend advertises to receive
	// coalesced random accesses (the websim client implements it).
	BatchBackend = share.BatchBackend
)

// Observability constructors, re-exported so callers wire metrics without
// importing repro/internal/obs.
var (
	// NewMetricsRegistry returns an empty metrics registry.
	NewMetricsRegistry = obs.NewRegistry
	// NewMetricsObserver registers the engine metric set on a registry and
	// returns the observer feeding it (pass to WithObserver).
	NewMetricsObserver = obs.NewMetrics
	// MultiObserver fans events out to several observers.
	MultiObserver = obs.Multi
	// NewBreakerSet builds a closed circuit-breaker set for m predicates,
	// to be shared across runs via WithResilience.
	NewBreakerSet = access.NewBreakerSet
	// NewPlanCache builds a bounded optimizer plan cache (capacity <= 0
	// selects the default), to be shared across engines via WithPlanCache.
	NewPlanCache = opt.NewPlanCache
	// NewSharedAccess builds a cross-query sharing layer over a backend,
	// to be attached to engines via WithSharing (or viewed per projection
	// with its View method).
	NewSharedAccess = share.New
)

// Scoring-function constructors.
var (
	// Min returns the minimum scoring function (Query Q1's "min").
	Min = score.Min
	// Max returns the maximum scoring function.
	Max = score.Max
	// Avg returns the arithmetic mean (Query Q2's "avg").
	Avg = score.Avg
	// Product returns the product function.
	Product = score.Product
	// Geometric returns the geometric mean.
	Geometric = score.Geometric
	// Weighted returns a weighted sum with the given weights.
	Weighted = score.Weighted
	// Median returns the lower-median order statistic.
	Median = score.Median
	// OrderStatistic returns the j-th-largest scoring function.
	OrderStatistic = score.OrderStatistic
	// ScoreByName resolves "min", "max", "avg", "product", "geomean",
	// "median".
	ScoreByName = score.ByName
)

// UniformScenario builds a scenario with identical sorted cost cs and
// random cost cr on all m predicates.
func UniformScenario(m int, cs, cr float64) Scenario { return access.Uniform(m, cs, cr) }

// CostFromUnits converts float units (e.g. seconds) to a Cost. It
// rejects negative and non-finite values.
func CostFromUnits(u float64) (Cost, error) { return access.CostFromUnits(u) }

// CostOf converts float units to a Cost for scenario literals. Invalid
// values yield a negative sentinel that Scenario.Validate rejects, so
// mistakes surface at engine construction rather than silently.
func CostOf(u float64) Cost { return access.CostOf(u) }

// GenerateDataset synthesizes a dataset from a named distribution:
// "uniform", "gaussian", "skewed", "correlated", or "anticorrelated".
func GenerateDataset(dist string, n, m int, seed int64) (*Dataset, error) {
	d, err := data.DistributionByName(dist)
	if err != nil {
		return nil, err
	}
	return data.Generate(d, n, m, seed)
}

// DataBackend wraps an in-memory dataset as a Backend.
func DataBackend(ds *Dataset) Backend { return access.DatasetBackend{DS: ds} }

// Query is one top-k request.
type Query struct {
	F ScoreFunc
	K int
}

// Answer is a completed execution.
type Answer struct {
	// Items are the top-k, best first. Exact is false when the algorithm
	// (e.g. NRA) proves the set without learning exact scores.
	Items []Item
	// Ledger records the accesses performed and the total cost (Eq. 1).
	Ledger Ledger
	// Plan is the optimizer's chosen configuration, when one was used.
	Plan *Plan
	// Elapsed is the simulated elapsed time in cost units for parallel
	// runs (zero for sequential runs, where elapsed equals the cost).
	Elapsed float64
	// Wall is the measured wall-clock time of live (WithLive) runs.
	Wall time.Duration
	// Truncated reports that a WithBudget run exhausted its budget — or a
	// WithResilience run degraded — before proving the answer; Items then
	// holds best-effort candidates.
	Truncated bool
	// Degraded lists machine-readable reasons a WithResilience answer is
	// best-effort rather than exact ("circuit_open:sa:p1",
	// "query_deadline", "no_legal_plan", ...). Empty for exact answers.
	Degraded []string
	// Trace is the per-query execution trace (nil unless WithTrace):
	// phase timings, per-predicate access counts matching the Ledger,
	// refused accesses, and optimizer/executor statistics.
	Trace *TraceSnapshot
}

// TotalCost returns the run's total access cost.
func (a *Answer) TotalCost() Cost { return a.Ledger.TotalCost }

// Engine executes top-k queries against a backend under a cost scenario.
// An Engine is reusable: every Run opens a fresh access session.
type Engine struct {
	backend   Backend
	scn       Scenario
	nwg       bool
	shifts    []CostShift
	planCache *PlanCache
	share     *share.Layer
	guard     *adapt.Guard
	// storageKey fingerprints a disk store and its IO calibration into
	// the plan-cache key (see WithStore).
	storageKey string
	guardOpts  []GuardOption
	useGuard   bool

	// pool recycles per-query state (access session + framework scratch)
	// across sequential Runs. Pooled state is fully reset before reuse;
	// nothing in an Answer aliases it.
	pool sync.Pool // of *queryState
}

// queryState is the per-query allocation unit the engine recycles.
type queryState struct {
	sess    *access.Session
	scratch algo.Scratch //topklint:allow resetcomplete re-prepared from the plan by every RunScratch before use
}

// Reset restores recycled state for a new query: the session re-arms its
// budget and bookkeeping under the new options. The scratch needs no work
// here — every RunScratch re-prepares it from the plan before use.
func (st *queryState) Reset(sessOpts []access.Option) error {
	return st.sess.Reset(sessOpts...)
}

// acquire returns a reset pooled query state, or builds a fresh one.
//
//topklint:hotpath
func (e *Engine) acquire(sessOpts []access.Option) (*queryState, error) {
	if st, ok := e.pool.Get().(*queryState); ok {
		if err := st.Reset(sessOpts); err != nil {
			// A failed Reset means bad options, not corrupt state; the
			// state stays recyclable because the next Get resets again.
			e.pool.Put(st)
			return nil, err
		}
		return st, nil
	}
	//topklint:allow hotpathalloc first-use miss: the fresh state is built once, then recycled
	sess, err := access.NewSession(e.backend, e.scn, sessOpts...)
	if err != nil {
		return nil, err
	}
	//topklint:allow hotpathalloc first-use miss: the fresh state is built once, then recycled
	return &queryState{sess: sess}, nil
}

// optimize resolves a plan through the attached cache, or directly. With
// a sharing layer attached, the scenario's expected costs are discounted
// by the layer's observed (quantized) hit rates before planning — shared
// accesses never reach the sources, so the optimizer should not price
// them at full cost. Explicit discounts in cfg win.
func (e *Engine) optimize(cfg OptimizerConfig, scn Scenario, f ScoreFunc, k, n int) (Plan, error) {
	if e.share != nil && cfg.SortedDiscount == 0 && cfg.RandomDiscount == 0 {
		cfg.SortedDiscount, cfg.RandomDiscount = e.share.Stats().Discounts()
	}
	if cfg.ClusterKey == "" {
		cfg.ClusterKey = clusterKeyOf(e.backend)
	}
	if cfg.StorageKey == "" {
		cfg.StorageKey = e.storageKey
	}
	if e.planCache != nil {
		return e.planCache.Get(cfg, scn, f, k, n)
	}
	return opt.Optimize(cfg, scn, f, k, n)
}

// membershipKeyed is the capability a distributed backend (the cluster
// coordinator, or a view of it) advertises to fingerprint its live shard
// membership.
type membershipKeyed interface{ MembershipKey() string }

// clusterKeyOf probes the backend — unwrapping the guard and sharing
// layers the engine may have stacked over it — for a cluster membership
// fingerprint to fold into the plan-cache key. Single-node backends key
// empty, at the cost of a few type assertions per optimization.
func clusterKeyOf(b Backend) string {
	for b != nil {
		if mk, ok := b.(membershipKeyed); ok {
			return mk.MembershipKey()
		}
		switch w := b.(type) {
		case *share.Layer:
			b = w.Backend()
		case *share.View:
			b = w.Layer().Backend()
		case *adapt.Guard:
			b = w.Backend()
		default:
			return ""
		}
	}
	return ""
}

// newAdapter wires the adaptive layer's re-plan loop to this engine:
// checkpoint re-plans go through optimize — so they get the sharing
// discounts and hit the plan cache under the observation-extended key —
// the scenario-change probe watches the live session, and apply installs
// each new plan on the running execution.
func (e *Engine) newAdapter(spec *runSpec, sess *access.Session, q Query, o obs.Observer, initial *Plan, apply func(Plan) error) *adapt.Adapter {
	base := spec.optCfg
	base.DisableNWG = !e.nwg
	base.Observer = o
	lastPreds := snapshotPreds(sess.CurrentScenario())
	a := &adapt.Adapter{
		Mon:  adapt.NewMonitor(adapt.Config{Period: spec.period}),
		Base: base,
		PlanFunc: func(cfg OptimizerConfig) (Plan, error) {
			return e.optimize(cfg, sess.CurrentScenario(), q.F, q.K, sess.N())
		},
		// EstimateFunc prices the incumbent plan under the re-plan's
		// observation-warped model (same discounts as PlanFunc) so the
		// adapter only swaps plans whose modelled advantage clears the
		// switching cost.
		EstimateFunc: func(cfg OptimizerConfig, h []float64, omega []int) (access.Cost, error) {
			if e.share != nil && cfg.SortedDiscount == 0 && cfg.RandomDiscount == 0 {
				cfg.SortedDiscount, cfg.RandomDiscount = e.share.Stats().Discounts()
			}
			return opt.EstimateConfiguration(cfg, sess.CurrentScenario(), q.F, q.K, sess.N(), h, omega)
		},
		ApplyFunc: apply,
		Obs:       o,
		Scenario:  sess.CurrentScenario,
		ScenarioChanged: func() bool {
			cur := sess.CurrentScenario()
			if predsEqual(cur.Preds, lastPreds) {
				return false
			}
			lastPreds = snapshotPreds(cur)
			return true
		},
	}
	if initial != nil {
		a.Incumbent = *initial
	}
	return a
}

// SharingStats reports the attached sharing layer's cumulative counters
// (the zero Stats when no layer is attached).
func (e *Engine) SharingStats() SharingStats {
	if e.share == nil {
		return SharingStats{}
	}
	return e.share.Stats()
}

// EngineOption configures an Engine.
type EngineOption func(*Engine)

// WithoutNoWildGuesses lifts the rule that random access requires the
// object to have been seen by a sorted access first.
func WithoutNoWildGuesses() EngineOption { return func(e *Engine) { e.nwg = false } }

// WithCostShifts installs dynamic mid-query cost changes (for adaptivity
// studies; each Run replays them afresh).
func WithCostShifts(shifts ...CostShift) EngineOption {
	return func(e *Engine) { e.shifts = append(e.shifts, shifts...) }
}

// WithSharing routes the engine's accesses through a cross-query sharing
// layer: sorted accesses hit its shared per-predicate cursors, random
// accesses its score cache, and — when the layer's wrapped backend
// supports batching — cache misses coalesce into batched round trips.
// The layer must wrap a backend over the same predicate space as the
// engine's (typically the very backend passed to NewEngine); it replaces
// that backend for every Run. Share one layer across engines (and
// services) to amortize accesses across all their queries; per-query
// ledgers are unaffected, sharing only reduces the accesses that reach
// the sources. The optimizer's expected costs are discounted by the
// layer's observed hit rates (see OptimizerConfig.SortedDiscount).
func WithSharing(l *SharedAccess) EngineOption {
	return func(e *Engine) {
		e.backend = l
		e.share = l
	}
}

// WithPlanCache attaches a plan cache: Runs that would invoke the
// cost-based optimizer first consult it, keyed by the full planning
// problem (current scenario capabilities and costs, scoring function, k,
// n, optimizer config). Identical queries then share one optimization —
// including concurrent ones, which dedup to a single search. A cache may
// be shared across engines. Runs against a breaker-degraded scenario key
// differently, so degradation invalidates cached plans automatically.
func WithPlanCache(c *PlanCache) EngineOption {
	return func(e *Engine) { e.planCache = c }
}

// GuardOption tunes the source contract guard (see WithContractGuard).
type GuardOption = adapt.GuardOption

// Contract-guard tuning options, usable with WithContractGuard:
// GuardClampRange serves finite out-of-[0,1] scores clamped (counted as
// soft violations) instead of failing the access; GuardFailFast poisons a
// sorted stream on its first violation instead of letting the resilience
// breaker quarantine a persistent liar.
var (
	GuardClampRange = adapt.WithClampRange
	GuardFailFast   = adapt.WithFailFast
)

// WithContractGuard wraps the engine's backend (after all other engine
// options, so it also covers a sharing layer) with the source contract
// guard: every response is vetted — descending sorted order, finite
// scores in [0,1], distinct ids per stream, random results consistent with
// sorted sightings — before it can reach any session. Violating accesses
// fail without being billed; under WithResilience the breakers quarantine
// a persistently lying capability exactly like a failing one, so answers
// degrade honestly (Truncated + Degraded) instead of going silently wrong.
// GuardViolations reports the cumulative counts.
func WithContractGuard(opts ...GuardOption) EngineOption {
	return func(e *Engine) {
		e.useGuard = true
		e.guardOpts = append(e.guardOpts, opts...)
	}
}

// NewEngine validates the scenario against the backend and builds an
// engine.
func NewEngine(b Backend, scn Scenario, opts ...EngineOption) (*Engine, error) {
	if b == nil {
		return nil, fmt.Errorf("topk: engine requires a backend")
	}
	e := &Engine{backend: b, scn: scn, nwg: true}
	for _, o := range opts {
		o(e)
	}
	// The guard wraps last so it vets whatever the engine will actually
	// talk to — including a sharing layer installed by WithSharing.
	if e.useGuard {
		e.guard = adapt.NewGuard(e.backend, e.guardOpts...)
		e.backend = e.guard
	}
	// Validate after options: WithSharing may have replaced the backend,
	// and the scenario must match whatever the engine will actually run
	// against.
	if err := scn.Validate(e.backend.M()); err != nil {
		return nil, err
	}
	return e, nil
}

// GuardViolations reports the contract guard's cumulative per-reason
// violation counts (nil without WithContractGuard). Reason keys are the
// obs.ViolationReasons vocabulary: "unsorted", "nan", "range", "dup",
// "inconsistent".
func (e *Engine) GuardViolations() map[string]int {
	if e.guard == nil {
		return nil
	}
	return e.guard.Violations()
}

// runSpec captures the execution strategy chosen through RunOptions.
type runSpec struct {
	algorithm  algo.Algorithm // nil = optimize
	h          []float64      // fixed NC configuration
	omega      []int
	optCfg     OptimizerConfig
	adaptive   bool
	period     int
	parallelB  int
	liveB      int
	epsilon    float64
	budget     float64
	hasBudget  bool
	ctx        context.Context
	observer   obs.Observer
	trace      bool
	resilience *access.Resilience
}

// resolveObserver combines the user observer with the run's trace (when
// requested) into the single observer threaded through the stack. The
// returned trace is nil unless WithTrace was set; the observer is nil
// when nothing is watching, keeping the default path at zero overhead.
func (r *runSpec) resolveObserver() (obs.Observer, *obs.QueryTrace) {
	if !r.trace {
		return r.observer, nil
	}
	tr := obs.NewQueryTrace()
	if r.observer == nil {
		return tr, tr
	}
	return obs.Multi(r.observer, tr), tr
}

func (r *runSpec) context() context.Context {
	if r.ctx != nil {
		return r.ctx
	}
	return context.Background()
}

// RunOption selects how a query is executed.
type RunOption func(*runSpec)

// WithAlgorithm runs a named baseline: "FA", "TA", "CA", "NRA", "MPro",
// "Upper", "Quick-Combine", or "Stream-Combine".
func WithAlgorithm(name string) RunOption {
	return func(r *runSpec) {
		alg, err := algo.ByName(name)
		if err != nil {
			r.algorithm = errAlgorithm{err}
			return
		}
		r.algorithm = alg
	}
}

// WithNC runs Framework NC with a fixed SR/G configuration: depths h (one
// per predicate, in score space) and probe schedule omega (nil = index
// order), bypassing the optimizer.
func WithNC(h []float64, omega []int) RunOption {
	return func(r *runSpec) { r.h, r.omega = h, omega }
}

// WithOptimizer customizes the cost-based optimizer used by the default
// execution mode.
func WithOptimizer(cfg OptimizerConfig) RunOption {
	return func(r *runSpec) { r.optCfg = cfg }
}

// WithAdaptive makes the execution self-correcting: every period accesses
// (period <= 0 takes the adaptive layer's default) a checkpoint compares
// each source's observed behaviour — sorted-stream descent slopes,
// random-access score means, the unseen-object frontier — against the
// plan's statistical assumptions, and past a divergence threshold the
// query re-plans mid-flight: the optimizer re-runs with the quantized
// observations folded into its sample (and into the plan-cache key, so
// repeat re-plans are cache hits), and the new SR/G configuration swaps in
// while all paid-for score state carries over. When the divergence is
// extreme the estimator's sample is flagged stale and the re-plan routes
// to the statistics-free greedy planner instead. Scenario changes (cost
// shifts, breaker flips) also trigger checkpoint re-plans, subsuming the
// earlier costs-only adaptivity. Applies to NC-based execution; on TA
// cursors the monitor attaches telemetry-only (TA has no plan to change).
func WithAdaptive(period int) RunOption {
	return func(r *runSpec) { r.adaptive, r.period = true, period }
}

// WithParallel executes under a bounded-concurrency simulated executor
// with at most b concurrent accesses. Combines with WithNC or the
// optimizer (the chosen plan's selector drives dispatch); not compatible
// with named baselines.
func WithParallel(b int) RunOption {
	return func(r *runSpec) { r.parallelB = b }
}

// WithLive executes with real concurrent backend requests (goroutines)
// bounded by b — for engines whose backend is a live source such as the
// HTTP web-source client. The answer's Wall field reports measured time.
// Not compatible with named baselines, WithAdaptive, or cost shifts.
func WithLive(b int) RunOption {
	return func(r *runSpec) { r.liveB = b }
}

// WithBudget caps the run's total access cost (in cost units). NC-based
// execution turns anytime: when the budget runs out the answer holds the
// best current candidates and Truncated is set. Named baselines are not
// anytime and fail once the budget is hit.
func WithBudget(units float64) RunOption {
	return func(r *runSpec) { r.budget, r.hasBudget = units, true }
}

// WithContext bounds the run with a context: cancelling it aborts the
// execution and any in-flight backend requests. The default is
// context.Background().
func WithContext(ctx context.Context) RunOption {
	return func(r *runSpec) { r.ctx = ctx }
}

// WithObserver streams the run's execution events — accesses performed
// and refused, phase timings, optimizer estimator evaluations, framework
// iterations, executor concurrency — into the observer. Combine with a
// registry-backed observer (NewMetricsObserver) for service metrics.
// Without WithObserver or WithTrace the engine emits nothing and pays no
// instrumentation cost.
func WithObserver(o Observer) RunOption {
	return func(r *runSpec) { r.observer = o }
}

// WithTrace records a per-query execution trace, returned in the
// Answer's Trace field: the production analogue of the session's access
// ledger, extended with phase timings and engine statistics. Composes
// with WithObserver (both sinks receive every event).
func WithTrace() RunOption {
	return func(r *runSpec) { r.trace = true }
}

// WithResilience makes the run fault-tolerant: backend failures are
// absorbed instead of failing the query, consecutive failures open the
// attached circuit breakers (flipping the capability off in the current
// scenario, so the framework re-plans against the degraded scenario), and
// each access is bounded by the attachment's AccessTimeout. When
// degradation leaves no way to prove the exact answer, the run returns the
// best current candidates with Truncated set and the reasons in the
// Answer's Degraded field — the same anytime contract as WithBudget.
// Share one BreakerSet across runs so breaker state carries across
// queries. Applies to session-based execution; not compatible with
// WithLive.
func WithResilience(r *Resilience) RunOption {
	return func(spec *runSpec) { spec.resilience = r }
}

// WithApproximation relaxes the query to (1+epsilon)-approximation: every
// returned object u is guaranteed (1+epsilon)*F(u) >= F(v) for every
// object v left out, usually at a fraction of the exact cost.
// Approximately-emitted items carry Exact=false and their final lower
// bound as Score. Applies to NC-based execution (default, WithNC).
func WithApproximation(epsilon float64) RunOption {
	return func(r *runSpec) { r.epsilon = epsilon }
}

type errAlgorithm struct{ err error }

func (e errAlgorithm) Name() string                            { return "error" }
func (e errAlgorithm) Run(*algo.Problem) (*algo.Result, error) { return nil, e.err }

// Run executes a query. By default it runs the full cost-based pipeline:
// optimize an SR/G configuration for this engine's scenario (HClimb over a
// dummy sample unless configured otherwise), then execute Framework NC
// with it.
func (e *Engine) Run(q Query, opts ...RunOption) (*Answer, error) {
	var spec runSpec
	for _, o := range opts {
		o(&spec)
	}
	if spec.epsilon < 0 {
		return nil, fmt.Errorf("topk: approximation epsilon must be >= 0, got %g", spec.epsilon)
	}
	if spec.epsilon > 0 && (spec.algorithm != nil || spec.adaptive || spec.parallelB > 0 || spec.liveB > 0) {
		return nil, fmt.Errorf("topk: WithApproximation applies only to sequential NC execution")
	}
	if spec.liveB > 0 {
		if spec.resilience != nil {
			return nil, fmt.Errorf("topk: WithResilience is not compatible with WithLive (the live executor bypasses the session)")
		}
		return e.runLive(q, spec)
	}
	o, tr := spec.resolveObserver()
	var sessOpts []access.Option
	if !e.nwg {
		sessOpts = append(sessOpts, access.WithoutNoWildGuesses())
	}
	if len(e.shifts) > 0 {
		sessOpts = append(sessOpts, access.WithShifts(e.shifts...))
	}
	if spec.resilience != nil {
		sessOpts = append(sessOpts, access.WithResilience(spec.resilience))
	}
	if spec.hasBudget {
		if spec.budget <= 0 {
			return nil, fmt.Errorf("topk: budget must be positive, got %g", spec.budget)
		}
		budget, berr := access.CostFromUnits(spec.budget)
		if berr != nil {
			return nil, fmt.Errorf("topk: budget: %w", berr)
		}
		sessOpts = append(sessOpts, access.WithBudget(budget))
	}
	if spec.ctx != nil {
		sessOpts = append(sessOpts, access.WithContext(spec.ctx))
	}
	if o != nil {
		sessOpts = append(sessOpts, access.WithObserver(o))
	}
	// Sequential runs draw their session and framework scratch from the
	// engine's pool; the concurrent executor manages its own lifecycle, so
	// its session stays unpooled.
	var (
		sess *access.Session
		st   *queryState
	)
	if spec.parallelB == 0 {
		var aerr error
		if st, aerr = e.acquire(sessOpts); aerr != nil {
			return nil, aerr
		}
		sess = st.sess
		defer e.pool.Put(st)
	} else {
		var serr error
		if sess, serr = access.NewSession(e.backend, e.scn, sessOpts...); serr != nil {
			return nil, serr
		}
	}
	prob, err := algo.NewProblem(q.F, q.K, sess)
	if err != nil {
		return nil, err
	}

	ans := &Answer{}
	attachTrace := func() {
		if tr != nil {
			snap := tr.Snapshot()
			ans.Trace = &snap
		}
	}

	// Resolve the SR/G configuration when one is needed (fixed, optimized,
	// or none for named baselines).
	needPlan := spec.algorithm == nil && spec.h == nil
	if spec.parallelB > 0 && spec.algorithm != nil {
		return nil, fmt.Errorf("topk: WithParallel cannot run named baseline algorithms")
	}
	var h []float64
	var omega []int
	if spec.h != nil {
		h, omega = spec.h, spec.omega
	} else if needPlan {
		cfg := spec.optCfg
		cfg.DisableNWG = !e.nwg
		cfg.Observer = o
		optStart := time.Now()
		plan, err := e.optimize(cfg, sess.CurrentScenario(), q.F, q.K, sess.N())
		if o != nil {
			o.PhaseDone(obs.PhaseOptimize, time.Since(optStart))
		}
		if err != nil {
			return nil, err
		}
		ans.Plan = &plan
		h, omega = plan.H, plan.Omega
	}

	execStart := time.Now()
	execDone := func() {
		if o != nil {
			o.PhaseDone(obs.PhaseExecute, time.Since(execStart))
		}
	}

	if spec.parallelB > 0 {
		if spec.adaptive {
			return nil, fmt.Errorf("topk: WithParallel cannot be combined with WithAdaptive")
		}
		sel, err := algo.NewSRG(h, omega)
		if err != nil {
			return nil, err
		}
		res, err := (&parallel.Executor{B: spec.parallelB, Sel: sel, Obs: o}).Run(spec.context(), prob)
		execDone()
		if err != nil {
			return nil, err
		}
		ans.Items, ans.Ledger, ans.Elapsed = res.Items, res.Ledger, res.Elapsed
		attachTrace()
		return ans, nil
	}

	var alg algo.Algorithm
	switch {
	case spec.algorithm != nil:
		alg = spec.algorithm
	case spec.adaptive:
		sel, serr := algo.NewSRG(h, omega)
		if serr != nil {
			return nil, serr
		}
		nc := &algo.NC{Sel: sel, Obs: o}
		nc.Monitor = e.newAdapter(&spec, sess, q, o, ans.Plan, func(p Plan) error {
			s2, aerr := algo.NewSRG(p.H, p.Omega)
			if aerr != nil {
				return aerr
			}
			nc.Sel = s2
			ans.Plan = &p
			return nil
		})
		alg = nc
	default:
		sel, serr := algo.NewSRG(h, omega)
		if serr != nil {
			return nil, serr
		}
		alg = &algo.NC{Sel: sel, Epsilon: spec.epsilon, Obs: o}
	}
	var res *algo.Result
	if nc, ok := alg.(*algo.NC); ok && st != nil {
		res, err = nc.RunScratch(prob, &st.scratch)
	} else {
		res, err = alg.Run(prob)
	}
	execDone()
	if err != nil {
		return nil, err
	}
	ans.Items, ans.Ledger, ans.Truncated, ans.Degraded = res.Items, res.Ledger, res.Truncated, res.Degraded
	attachTrace()
	return ans, nil
}

// ErrCursorClosed reports a page request on a closed cursor.
var ErrCursorClosed = algo.ErrCursorClosed

// Page is one batch of answers from a resumable Cursor.
type Page struct {
	// Items are the page's new answers, best first — only the answers this
	// Next/NextUntil call proved, never earlier pages'.
	Items []Item
	// Ledger is the cursor's cumulative access ledger: successive pages
	// show monotone cost, and the final page's ledger is byte-identical to
	// a fresh run of the total depth.
	Ledger Ledger
	// Truncated reports the cursor degraded to anytime draining (budget
	// exhausted, or resilience ran out of legal plans); sticky across
	// pages.
	Truncated bool
	// Degraded lists machine-readable reasons a truncated page is
	// best-effort ("circuit_open:sa:p1", "query_deadline", ...).
	Degraded []string
	// Exhausted reports every object has been emitted; further pages are
	// empty and access-free.
	Exhausted bool
	// Plan is the SR/G configuration in force while this page was
	// produced (nil under WithNC or named algorithms). Re-planning on a
	// scenario change between pages replaces it.
	Plan *Plan
}

// Cursor is a suspended query execution: the per-query score state —
// table, candidate queue, access session ledger — stays alive between
// pages, so deepening k -> k+delta resumes exactly where the last page
// stopped and never re-pays for accesses already performed. Cursors draw
// their state from the engine's pool; Close returns it. A Cursor is safe
// for serialized use from multiple goroutines (an internal mutex orders
// pages) but pages cannot be produced concurrently.
type Cursor struct {
	mu    sync.Mutex
	eng   *Engine
	pager algo.Pager
	nc    *algo.Cursor // non-nil for NC-shaped cursors (score-range, re-planning)
	sess  *access.Session
	st    *queryState
	q     Query

	// Re-planning state: when the plan came from the optimizer, a scenario
	// change between pages (breaker flips, cost shifts) re-optimizes
	// against the current scenario — through the plan cache, which keys on
	// the scenario and so re-keys automatically.
	planned bool
	planScn []PredCost
	optCfg  OptimizerConfig
	plan    *Plan

	obsv   Observer
	tr     *obs.QueryTrace
	closed bool
}

// Open suspends a query as a resumable cursor: the first Next(k) performs
// exactly the accesses Run with K=k would, and each further Next(delta)
// deepens to k+delta at only the marginal cost. The query's K sizes the
// optimizer's plan (how deep the configuration expects to go); paging may
// run past it. Supported options: WithNC, WithOptimizer, WithAdaptive
// (checkpoint re-plans on NC-shaped cursors; telemetry-only on TA/MPro),
// WithAlgorithm ("TA", "MPro"), WithApproximation, WithBudget,
// WithResilience, WithObserver, WithTrace, WithContext (rebind per page
// with Bind); the concurrent executors and other named baselines are
// batch-only.
func (e *Engine) Open(q Query, opts ...RunOption) (*Cursor, error) {
	var spec runSpec
	for _, o := range opts {
		o(&spec)
	}
	if spec.parallelB > 0 || spec.liveB > 0 {
		return nil, fmt.Errorf("topk: Open supports only sequential execution (NC, TA, MPro)")
	}
	if spec.epsilon < 0 {
		return nil, fmt.Errorf("topk: approximation epsilon must be >= 0, got %g", spec.epsilon)
	}
	if spec.epsilon > 0 && spec.algorithm != nil {
		return nil, fmt.Errorf("topk: WithApproximation applies only to NC-based cursors")
	}
	o, tr := spec.resolveObserver()
	var sessOpts []access.Option
	if !e.nwg {
		sessOpts = append(sessOpts, access.WithoutNoWildGuesses())
	}
	if len(e.shifts) > 0 {
		sessOpts = append(sessOpts, access.WithShifts(e.shifts...))
	}
	if spec.resilience != nil {
		sessOpts = append(sessOpts, access.WithResilience(spec.resilience))
	}
	if spec.hasBudget {
		if spec.budget <= 0 {
			return nil, fmt.Errorf("topk: budget must be positive, got %g", spec.budget)
		}
		budget, berr := access.CostFromUnits(spec.budget)
		if berr != nil {
			return nil, fmt.Errorf("topk: budget: %w", berr)
		}
		sessOpts = append(sessOpts, access.WithBudget(budget))
	}
	if spec.ctx != nil {
		sessOpts = append(sessOpts, access.WithContext(spec.ctx))
	}
	if o != nil {
		sessOpts = append(sessOpts, access.WithObserver(o))
	}
	st, err := e.acquire(sessOpts)
	if err != nil {
		return nil, err
	}
	sess := st.sess
	fail := func(err error) (*Cursor, error) {
		e.pool.Put(st)
		return nil, err
	}
	prob, err := algo.NewProblem(q.F, q.K, sess)
	if err != nil {
		return fail(err)
	}
	c := &Cursor{eng: e, sess: sess, st: st, q: q, optCfg: spec.optCfg, obsv: o, tr: tr}
	switch alg := spec.algorithm.(type) {
	case nil:
		h, omega := spec.h, spec.omega
		if h == nil {
			cfg := spec.optCfg
			cfg.DisableNWG = !e.nwg
			cfg.Observer = o
			optStart := time.Now()
			plan, perr := e.optimize(cfg, sess.CurrentScenario(), q.F, q.K, sess.N())
			if o != nil {
				o.PhaseDone(obs.PhaseOptimize, time.Since(optStart))
			}
			if perr != nil {
				return fail(perr)
			}
			c.plan = &plan
			c.planned = true
			c.planScn = snapshotPreds(sess.CurrentScenario())
			h, omega = plan.H, plan.Omega
		}
		sel, serr := algo.NewSRG(h, omega)
		if serr != nil {
			return fail(serr)
		}
		ncAlg := &algo.NC{Sel: sel, Epsilon: spec.epsilon, Obs: o}
		cur, cerr := ncAlg.Open(prob, &st.scratch)
		if cerr != nil {
			return fail(cerr)
		}
		c.nc, c.pager = cur, cur
		if spec.adaptive {
			// Checkpoint re-plans swap the suspended cursor's selector in
			// place (all paid-for state carries over) and re-anchor the
			// page-boundary scenario snapshot so one change is not
			// re-planned twice.
			ncAlg.Monitor = e.newAdapter(&spec, sess, q, o, c.plan, func(p Plan) error {
				s2, aerr := algo.NewSRG(p.H, p.Omega)
				if aerr != nil {
					return aerr
				}
				if serr := cur.SetSelector(s2); serr != nil {
					return serr
				}
				c.plan = &p
				c.planScn = snapshotPreds(sess.CurrentScenario())
				return nil
			})
		}
	case algo.TA:
		cur, cerr := algo.TA{}.Open(prob)
		if cerr != nil {
			return fail(cerr)
		}
		c.pager = cur
		if spec.adaptive {
			// TA has no plan degrees of freedom: the monitor attaches
			// telemetry-only (divergence checkpoints, no re-plans).
			cur.Monitor = e.newAdapter(&spec, sess, q, o, nil, nil)
		}
	case algo.MPro:
		if spec.adaptive {
			// MPro's configuration is derived from the scenario, not
			// planned: telemetry-only, like TA.
			alg.Monitor = e.newAdapter(&spec, sess, q, o, nil, nil)
		}
		cur, cerr := alg.Open(prob, &st.scratch)
		if cerr != nil {
			return fail(cerr)
		}
		c.nc, c.pager = cur, cur
	case errAlgorithm:
		return fail(alg.err)
	default:
		return fail(fmt.Errorf("topk: Open supports NC, TA, and MPro; %s is batch-only", alg.Name()))
	}
	return c, nil
}

// Next deepens the query by delta answers: the cursor resumes where the
// previous page stopped and performs only the accesses needed to prove
// the next delta. A page shorter than delta means exhaustion or (with
// Truncated set) a degraded anytime fill. If the access scenario changed
// since the last page — a breaker flipped mid- or between pages — an
// optimizer-planned cursor first re-plans against the current scenario on
// the preserved state.
func (c *Cursor) Next(delta int) (*Page, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, algo.ErrCursorClosed
	}
	c.replan()
	res, err := c.pager.Next(delta)
	if err != nil {
		return nil, err
	}
	return c.page(res), nil
}

// NextUntil is score-range paging: it emits every remaining answer
// provably scoring at least tau, best first, and suspends — without
// consuming the boundary candidate — once no remaining object can reach
// tau. Ordinal paging (Next) and further NextUntil calls with lower
// thresholds continue from exactly that point. Only NC-shaped cursors
// (default, WithNC, MPro) support it.
func (c *Cursor) NextUntil(tau float64) (*Page, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, algo.ErrCursorClosed
	}
	if c.nc == nil {
		return nil, fmt.Errorf("topk: score-range paging requires an NC-based cursor (default, WithNC, or MPro)")
	}
	c.replan()
	res, err := c.nc.NextUntil(tau)
	if err != nil {
		return nil, err
	}
	return c.page(res), nil
}

// replan re-optimizes the SR/G configuration when the access scenario
// changed since the plan was made (PR 3's mid-query scenario-change
// machinery, applied at page boundaries). The preserved score state stays
// valid — which access to perform next is pure policy — so the cursor
// continues under the new plan without repeating work. A scenario that can
// no longer be planned keeps the old selector; the framework's own
// degradation absorbs it.
func (c *Cursor) replan() {
	if c.nc == nil || !c.planned {
		return
	}
	cur := c.sess.CurrentScenario()
	if predsEqual(cur.Preds, c.planScn) {
		return
	}
	c.planScn = snapshotPreds(cur)
	cfg := c.optCfg
	cfg.DisableNWG = !c.eng.nwg
	cfg.Observer = c.obsv
	plan, err := c.eng.optimize(cfg, cur, c.q.F, c.q.K, c.sess.N())
	if err != nil {
		return
	}
	if sel, serr := algo.NewSRG(plan.H, plan.Omega); serr == nil && c.nc.SetSelector(sel) == nil {
		c.plan = &plan
		if c.obsv != nil {
			c.obsv.DegradedReplan("scenario_change")
		}
	}
}

// page assembles the public Page from an algo page.
func (c *Cursor) page(res *algo.Result) *Page {
	return &Page{
		Items:     res.Items,
		Ledger:    res.Ledger,
		Truncated: res.Truncated,
		Degraded:  res.Degraded,
		Exhausted: c.pager.Exhausted(),
		Plan:      c.plan,
	}
}

// Bind re-points the cursor's context for subsequent pages: each page of
// a server-side cursor gets its own deadline while the session — and the
// paid-for state behind it — survives between requests. Nil resets to
// context.Background().
func (c *Cursor) Bind(ctx context.Context) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return
	}
	c.sess.Bind(ctx)
}

// Emitted reports the total answers produced across all pages.
func (c *Cursor) Emitted() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.pager.Emitted()
}

// Exhausted reports whether every object has been emitted.
func (c *Cursor) Exhausted() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.pager.Exhausted()
}

// Cost reports the access cost accrued so far.
func (c *Cursor) Cost() Cost { return c.Ledger().TotalCost }

// Ledger snapshots the cumulative accesses performed so far.
func (c *Cursor) Ledger() Ledger {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return Ledger{}
	}
	return c.pager.Ledger()
}

// Plan returns the SR/G configuration currently in force (nil under
// WithNC or named algorithms).
func (c *Cursor) Plan() *Plan {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.plan
}

// Trace snapshots the cursor's cumulative execution trace (nil unless
// opened with WithTrace). Successive snapshots grow with each page; the
// access counts always match the cumulative Ledger.
func (c *Cursor) Trace() *TraceSnapshot {
	if c.tr == nil {
		return nil
	}
	snap := c.tr.Snapshot()
	return &snap
}

// Close ends the execution and returns the cursor's pooled state (session
// and framework scratch) to the engine. Idempotent; pages after Close fail
// with algo.ErrCursorClosed.
func (c *Cursor) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	c.pager.Close()
	if c.st != nil {
		st := c.st
		c.st = nil
		c.eng.pool.Put(st)
	}
	return nil
}

// snapshotPreds copies a scenario's per-predicate capability/cost entries
// for later change detection.
func snapshotPreds(scn Scenario) []PredCost { return append([]PredCost(nil), scn.Preds...) }

// predsEqual reports whether two capability/cost snapshots are identical.
func predsEqual(a, b []PredCost) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Explain runs the cost-based optimizer for a query without executing it:
// the query-planning API. It returns the chosen SR/G configuration and its
// estimated total access cost under the engine's scenario. No source
// access is performed (the estimator works on samples).
func (e *Engine) Explain(q Query, cfg OptimizerConfig) (Plan, error) {
	if err := score.Validate(q.F, e.scn.M()); err != nil {
		return Plan{}, err
	}
	if q.K <= 0 {
		return Plan{}, fmt.Errorf("topk: retrieval size must be positive, got %d", q.K)
	}
	cfg.DisableNWG = !e.nwg
	return opt.Optimize(cfg, e.scn, q.F, q.K, e.backend.N())
}

// runLive executes the query with real concurrent backend requests.
func (e *Engine) runLive(q Query, spec runSpec) (*Answer, error) {
	if spec.algorithm != nil {
		return nil, fmt.Errorf("topk: WithLive cannot run named baseline algorithms")
	}
	if spec.adaptive {
		return nil, fmt.Errorf("topk: WithLive cannot be combined with WithAdaptive")
	}
	if spec.parallelB > 0 {
		return nil, fmt.Errorf("topk: WithLive and WithParallel are mutually exclusive")
	}
	if len(e.shifts) > 0 {
		return nil, fmt.Errorf("topk: live execution does not support simulated cost shifts")
	}
	o, tr := spec.resolveObserver()
	ans := &Answer{}
	h, omega := spec.h, spec.omega
	if h == nil {
		cfg := spec.optCfg
		cfg.DisableNWG = !e.nwg
		cfg.Observer = o
		optStart := time.Now()
		plan, err := e.optimize(cfg, e.scn, q.F, q.K, e.backend.N())
		if o != nil {
			o.PhaseDone(obs.PhaseOptimize, time.Since(optStart))
		}
		if err != nil {
			return nil, err
		}
		ans.Plan = &plan
		h, omega = plan.H, plan.Omega
	}
	sel, err := algo.NewSRG(h, omega)
	if err != nil {
		return nil, err
	}
	live := &parallel.Live{B: spec.liveB, Sel: sel, Scn: e.scn, DisableNWG: !e.nwg, Obs: o}
	execStart := time.Now()
	res, err := live.Run(spec.context(), e.backend, q.F, q.K)
	if o != nil {
		o.PhaseDone(obs.PhaseExecute, time.Since(execStart))
	}
	if err != nil {
		return nil, err
	}
	ans.Items, ans.Ledger, ans.Wall = res.Items, res.Ledger, res.Wall
	if tr != nil {
		snap := tr.Snapshot()
		ans.Trace = &snap
	}
	return ans, nil
}

// TopKOracle computes the exact answer by brute force over a dataset —
// free of access costs, for verification and testing.
func TopKOracle(ds *Dataset, f ScoreFunc, k int) []Item {
	ranked := ds.TopK(f.Eval, k)
	items := make([]Item, len(ranked))
	for i, r := range ranked {
		items[i] = Item{Obj: r.Obj, Score: r.Score, Exact: true}
	}
	return items
}
