package topk

// The resume-vs-recompute oracle: the defining property of a cursor is
// that pagination is free of history — Open(k) followed by any sequence of
// Next(delta) calls must produce, in total, byte-identical answers AND a
// byte-identical access ledger to a single fresh run of depth k+sum(delta).
// The suite sweeps the Figure-2 capability matrix for every resumable
// algorithm (fixed-plan NC — the optimizer's h depends on K, so a fixed
// configuration is the precondition for comparing different depths — TA,
// and MPro), with the sharing layer off and on. Sharing uses a fresh layer
// per run so both sides see identical backend state.

import (
	"fmt"
	"reflect"
	"testing"
)

// cursorOracleAlgo is one resumable algorithm configuration under test.
type cursorOracleAlgo struct {
	name string
	opts func(m int) []RunOption
}

func cursorOracleAlgos() []cursorOracleAlgo {
	return []cursorOracleAlgo{
		{"NC-fixed", func(m int) []RunOption {
			h := make([]float64, m)
			for i := range h {
				h[i] = 0.5
			}
			return []RunOption{WithNC(h, nil)}
		}},
		{"TA", func(int) []RunOption { return []RunOption{WithAlgorithm("TA")} }},
		{"MPro", func(int) []RunOption { return []RunOption{WithAlgorithm("MPro")} }},
	}
}

// TestCursorResumeOracle is the satellite's core property test.
func TestCursorResumeOracle(t *testing.T) {
	const (
		n = 80
		m = 2
		k = 4
	)
	// Page plans: ordinary deepening, a zero-delta poll mid-sequence, and
	// an over-ask that runs into exhaustion.
	deltaPlans := [][]int{
		{3, 5},
		{0, 4, 0, 4},
		{1, 1, 1, 1, 1},
	}
	ds := mustGenerateDataset(t, "uniform", n, m, 23)

	completed := 0
	for _, cell := range figure2Cells(m, 10) {
		for _, alg := range cursorOracleAlgos() {
			for _, sharing := range []bool{false, true} {
				for pi, deltas := range deltaPlans {
					name := fmt.Sprintf("%s/%s/plan%d", cell.name, alg.name, pi)
					if sharing {
						name += "/shared"
					}
					t.Run(name, func(t *testing.T) {
						total := k
						for _, d := range deltas {
							total += d
						}
						opts := alg.opts(m)

						// Recompute oracle: one fresh engine, one run of the
						// full depth.
						freshEng, err := NewEngine(matrixBackend(ds, sharing, nil), cell.scn)
						if err != nil {
							t.Skip("cell has no legal access")
						}
						fresh, err := freshEng.Run(Query{F: Min(), K: total}, opts...)
						if err != nil {
							t.Skipf("cell denies an access %s requires: %v", alg.name, err)
						}

						// Resumed: a second engine (and, when sharing, a
						// second cold sharing layer) pages to the same depth.
						pagedEng, err := NewEngine(matrixBackend(ds, sharing, nil), cell.scn)
						if err != nil {
							t.Fatal(err)
						}
						cur, err := pagedEng.Open(Query{F: Min(), K: k}, opts...)
						if err != nil {
							t.Fatalf("Run succeeded but Open failed: %v", err)
						}
						defer cur.Close()
						var items []Item
						page, err := cur.Next(k)
						if err != nil {
							t.Fatal(err)
						}
						items = append(items, page.Items...)
						for _, d := range deltas {
							if page, err = cur.Next(d); err != nil {
								t.Fatal(err)
							}
							items = append(items, page.Items...)
						}

						// Byte-identical answers...
						if !reflect.DeepEqual(items, fresh.Items) {
							t.Errorf("paged answers diverge from fresh run:\n paged %v\n fresh %v", items, fresh.Items)
						}
						// ...and a byte-identical bill: same accesses, same
						// order-independent per-predicate counts, same cost.
						if !reflect.DeepEqual(cur.Ledger(), fresh.Ledger) {
							t.Errorf("paged ledger diverges from fresh run:\n paged %+v\n fresh %+v", cur.Ledger(), fresh.Ledger)
						}
						if page.Truncated != fresh.Truncated {
							t.Errorf("paged Truncated=%v, fresh %v", page.Truncated, fresh.Truncated)
						}
						// Exhaustion coda: once every object is emitted,
						// further pages are empty and access-free.
						if cur.Exhausted() {
							before := cur.Ledger()
							extra, err := cur.Next(5)
							if err != nil || len(extra.Items) != 0 {
								t.Errorf("post-exhaustion page: %v items, err %v", len(extra.Items), err)
							}
							if !reflect.DeepEqual(cur.Ledger(), before) {
								t.Error("post-exhaustion page performed accesses")
							}
						}
						completed++
					})
				}
			}
		}
	}
	// The sweep must actually exercise the property across the matrix, not
	// skip its way to vacuous success.
	if completed < 40 {
		t.Fatalf("only %d cell/algorithm/plan combinations completed", completed)
	}
}

// TestCursorScoreRangeOracle extends the oracle to score-range mode: a
// NextUntil(tau) page must equal the ordinal prefix of answers scoring
// >= tau, with the identical bill.
func TestCursorScoreRangeOracle(t *testing.T) {
	const (
		n = 80
		m = 2
	)
	ds := mustGenerateDataset(t, "uniform", n, m, 29)
	oracle := TopKOracle(ds, Min(), 20)
	completed := 0
	for _, cell := range figure2Cells(m, 10) {
		for _, sharing := range []bool{false, true} {
			name := cell.name
			if sharing {
				name += "/shared"
			}
			t.Run(name, func(t *testing.T) {
				// tau sits exactly on the 12th-best true score: the range
				// page must emit precisely 12 answers.
				tau := oracle[11].Score
				opts := []RunOption{WithNC([]float64{0.5, 0.5}, nil)}

				freshEng, err := NewEngine(matrixBackend(ds, sharing, nil), cell.scn)
				if err != nil {
					t.Skip("cell has no legal access")
				}
				fresh12, err := freshEng.Run(Query{F: Min(), K: 12}, opts...)
				if err != nil {
					t.Skipf("cell denies a required access: %v", err)
				}
				fresh13, err := freshEng.Run(Query{F: Min(), K: 13}, opts...)
				if err != nil {
					t.Fatal(err)
				}

				pagedEng, err := NewEngine(matrixBackend(ds, sharing, nil), cell.scn)
				if err != nil {
					t.Fatal(err)
				}
				cur, err := pagedEng.Open(Query{F: Min(), K: 12}, opts...)
				if err != nil {
					t.Fatal(err)
				}
				defer cur.Close()
				page, err := cur.NextUntil(tau)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(page.Items, fresh12.Items) {
					t.Errorf("score-range page diverges from ordinal prefix:\n range %v\n fresh %v", page.Items, fresh12.Items)
				}
				// The range page's bill sits between the two ordinal depths:
				// it pays for the 12 answers plus whatever it takes to PROVE
				// the boundary (no remaining object reaches tau) — strictly
				// no more than emitting the 13th answer would cost.
				rng := cur.Ledger()
				for i := range rng.SortedCounts {
					if rng.SortedCounts[i] < fresh12.Ledger.SortedCounts[i] || rng.SortedCounts[i] > fresh13.Ledger.SortedCounts[i] ||
						rng.RandomCounts[i] < fresh12.Ledger.RandomCounts[i] || rng.RandomCounts[i] > fresh13.Ledger.RandomCounts[i] {
						t.Errorf("pred %d: range bill (%d,%d) outside [k=12 (%d,%d), k=13 (%d,%d)]", i,
							rng.SortedCounts[i], rng.RandomCounts[i],
							fresh12.Ledger.SortedCounts[i], fresh12.Ledger.RandomCounts[i],
							fresh13.Ledger.SortedCounts[i], fresh13.Ledger.RandomCounts[i])
					}
				}
				// The boundary is not consumed: ordinal paging continues
				// seamlessly with the 13th-best answer, and by then the
				// cumulative bill is byte-identical to a fresh k=13 run —
				// the boundary proof is never paid twice.
				more, err := cur.Next(1)
				if err != nil {
					t.Fatal(err)
				}
				if len(more.Items) != 1 || more.Items[0].Obj != oracle[12].Obj {
					t.Errorf("post-range page = %v, want object %d", more.Items, oracle[12].Obj)
				}
				if !reflect.DeepEqual(cur.Ledger(), fresh13.Ledger) {
					t.Errorf("post-range ledger diverges from fresh k=13:\n range %+v\n fresh %+v", cur.Ledger(), fresh13.Ledger)
				}
				completed++
			})
		}
	}
	if completed < 4 {
		t.Fatalf("only %d score-range cells completed", completed)
	}
}
