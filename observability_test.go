package topk

import (
	"math"
	"strings"
	"testing"

	"repro/internal/access"
	"repro/internal/algo"
	"repro/internal/obs"
)

// traceAt reads a lazily-grown per-predicate trace slice, treating the
// missing tail as zero.
func traceAt(s []int, i int) int {
	if i < len(s) {
		return s[i]
	}
	return 0
}

// checkConservation asserts the tentpole invariant of the trace: the
// observer-side per-predicate access counts and billed cost must equal the
// session ledger exactly — the trace is the ledger, seen from the outside.
func checkConservation(t *testing.T, label string, ans *Answer) {
	t.Helper()
	if ans.Trace == nil {
		t.Fatalf("%s: no trace attached", label)
	}
	for i := range ans.Ledger.SortedCounts {
		if got, want := traceAt(ans.Trace.SortedAccesses, i), ans.Ledger.SortedCounts[i]; got != want {
			t.Errorf("%s: trace sorted[%d] = %d, ledger says %d", label, i, got, want)
		}
		if got, want := traceAt(ans.Trace.RandomAccesses, i), ans.Ledger.RandomCounts[i]; got != want {
			t.Errorf("%s: trace random[%d] = %d, ledger says %d", label, i, got, want)
		}
	}
	if diff := math.Abs(ans.Trace.CostUnits - ans.TotalCost().Units()); diff > 1e-6 {
		t.Errorf("%s: trace cost %g vs ledger %g", label, ans.Trace.CostUnits, ans.TotalCost().Units())
	}
}

// TestTraceConservesLedger runs every registry algorithm (plus fixed and
// optimized NC) across the Figure 2 scenario matrix and checks that the
// per-query trace conserves the ledger in every cell the algorithm
// supports. Cells an algorithm cannot run in (capability mismatch) error
// out before completing and are skipped — conservation is a property of
// completed runs.
func TestTraceConservesLedger(t *testing.T) {
	ds := mustGenerateDataset(t, "uniform", 120, 2, 7)
	caps := []access.Capability{access.Cheap, access.Expensive, access.Impossible}

	type run struct {
		name string
		opts []RunOption
	}
	runs := []run{
		{"NC-fixed", []RunOption{WithNC([]float64{0.5, 0.5}, nil)}},
		{"NC-opt", nil},
	}
	for _, name := range algo.Names() {
		runs = append(runs, run{name, []RunOption{WithAlgorithm(name)}})
	}

	completed := 0
	for _, sc := range caps {
		for _, rc := range caps {
			scn := access.MatrixCell(2, sc, rc, 10)
			eng, err := NewEngine(DataBackend(ds), scn)
			if err != nil {
				continue // a cell with no legal access at all (sa=ra=impossible)
			}
			for _, r := range runs {
				opts := append(append([]RunOption{}, r.opts...), WithTrace())
				ans, err := eng.Run(Query{F: Min(), K: 5}, opts...)
				if err != nil {
					continue // the cell denies an access this algorithm requires
				}
				completed++
				checkConservation(t, r.name+" @ "+scn.Name, ans)
			}
		}
	}
	if completed < 20 {
		t.Fatalf("only %d algorithm/cell combinations completed; the matrix sweep is not exercising the property", completed)
	}
}

// TestRunObserverAndTraceCompose drives the full optimized pipeline with a
// metrics registry and a trace at once and cross-checks all three views:
// ledger, trace, and Prometheus exposition.
func TestRunObserverAndTraceCompose(t *testing.T) {
	ds := mustGenerateDataset(t, "uniform", 200, 2, 11)
	eng, err := NewEngine(DataBackend(ds), UniformScenario(2, 1, 5))
	if err != nil {
		t.Fatal(err)
	}
	reg := NewMetricsRegistry()
	ans, err := eng.Run(Query{F: Avg(), K: 5}, WithObserver(NewMetricsObserver(reg)), WithTrace())
	if err != nil {
		t.Fatal(err)
	}
	checkConservation(t, "optimized", ans)
	if ans.Trace.EstimatorEvals == 0 {
		t.Error("optimized run recorded no estimator evaluations")
	}
	if ans.Trace.Iterations == 0 || ans.Trace.CandidatesHighWater == 0 {
		t.Errorf("framework progress missing from trace: %+v", ans.Trace)
	}
	phases := make(map[string]bool)
	for _, p := range ans.Trace.Phases {
		phases[string(p.Phase)] = true
	}
	if !phases["optimize"] || !phases["execute"] {
		t.Errorf("phases = %v, want optimize and execute", ans.Trace.Phases)
	}

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	totalAccesses := 0
	for i := range ans.Ledger.SortedCounts {
		totalAccesses += ans.Ledger.SortedCounts[i] + ans.Ledger.RandomCounts[i]
	}
	if !strings.Contains(out, "topk_accesses_total") || totalAccesses == 0 {
		t.Fatalf("no accesses exposed; ledger = %+v", ans.Ledger)
	}
	// The cost histogram saw exactly one observation per billed access.
	costCount := reg.Histogram("topk_access_cost_units", "", nil).Count()
	if costCount != int64(totalAccesses) {
		t.Errorf("cost histogram count = %d, ledger billed %d", costCount, totalAccesses)
	}
}

// TestTraceBudgetExhaustion checks the anytime path: a starved budget must
// surface in the trace as budget denials with the exhaustion flag set.
func TestTraceBudgetExhaustion(t *testing.T) {
	ds := mustGenerateDataset(t, "uniform", 200, 2, 3)
	eng, err := NewEngine(DataBackend(ds), UniformScenario(2, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	ans, err := eng.Run(Query{F: Min(), K: 10},
		WithNC([]float64{0.5, 0.5}, nil), WithBudget(4), WithTrace())
	if err != nil {
		t.Fatal(err)
	}
	if !ans.Truncated {
		t.Fatal("budget of 4 units should truncate a k=10 run")
	}
	if !ans.Trace.BudgetExhausted || ans.Trace.Denied["budget"] == 0 {
		t.Errorf("trace missed the budget cutoff: %+v", ans.Trace)
	}
	checkConservation(t, "budgeted", ans)
}

// TestParallelTrace checks the simulated concurrent executor's trace: slot
// occupancy reached the bound at least once on a busy run, and the counts
// still conserve the ledger.
func TestParallelTrace(t *testing.T) {
	ds := mustGenerateDataset(t, "uniform", 300, 2, 13)
	eng, err := NewEngine(DataBackend(ds), UniformScenario(2, 1, 2))
	if err != nil {
		t.Fatal(err)
	}
	ans, err := eng.Run(Query{F: Min(), K: 10},
		WithNC([]float64{0.5, 0.5}, nil), WithParallel(4), WithTrace())
	if err != nil {
		t.Fatal(err)
	}
	checkConservation(t, "parallel", ans)
	if ans.Trace.InflightHighWater < 1 {
		t.Errorf("inflight high water = %d, want >= 1", ans.Trace.InflightHighWater)
	}
	if ans.Trace.InflightHighWater > 4 {
		t.Errorf("inflight high water %d exceeds the bound B=4", ans.Trace.InflightHighWater)
	}
}

// TestObserverThroughCursor checks that Open threads an observer into the
// incremental session and that cursor traces accumulate across pages,
// always conserving the cumulative ledger.
func TestObserverThroughCursor(t *testing.T) {
	ds := mustGenerateDataset(t, "uniform", 100, 2, 17)
	eng, err := NewEngine(DataBackend(ds), UniformScenario(2, 1, 2))
	if err != nil {
		t.Fatal(err)
	}
	traced, err := eng.Open(Query{F: Min(), K: 5}, WithNC([]float64{0.5, 0.5}, nil), WithTrace())
	if err != nil {
		t.Fatal(err)
	}
	defer traced.Close()
	if _, err := traced.Next(3); err != nil {
		t.Fatal(err)
	}
	snap1 := traced.Trace()
	if snap1 == nil {
		t.Fatal("traced cursor returned no snapshot")
	}
	if _, err := traced.Next(3); err != nil {
		t.Fatal(err)
	}
	snap2 := traced.Trace()
	if snap2.CostUnits <= snap1.CostUnits {
		t.Errorf("cursor trace should accumulate across pages: %g then %g", snap1.CostUnits, snap2.CostUnits)
	}
	tled := traced.Ledger()
	for i := range tled.SortedCounts {
		if traceAt(snap2.SortedAccesses, i) != tled.SortedCounts[i] {
			t.Errorf("paged trace sorted[%d] = %d, ledger %d",
				i, traceAt(snap2.SortedAccesses, i), tled.SortedCounts[i])
		}
	}

	tr := obs.NewQueryTrace()
	cur, err := eng.Open(Query{F: Min(), K: 5}, WithNC([]float64{0.5, 0.5}, nil), WithObserver(tr))
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()
	if _, err := cur.Next(1); err != nil {
		t.Fatal(err)
	}
	snap := tr.Snapshot()
	led := cur.Ledger()
	for i := range led.SortedCounts {
		if traceAt(snap.SortedAccesses, i) != led.SortedCounts[i] {
			t.Errorf("cursor trace sorted[%d] = %d, ledger %d",
				i, traceAt(snap.SortedAccesses, i), led.SortedCounts[i])
		}
	}
	if snap.CostUnits == 0 {
		t.Error("cursor observer saw no billed cost")
	}
}
