// Command topkd runs the top-k middleware as an HTTP service: one database
// (a travel benchmark, a synthetic dataset, or a JSON file) under one cost
// scenario, answering SQL-like top-k queries over POST /query.
//
// Usage:
//
//	topkd -bench q1 -addr :8080
//	topkd -dist skewed -n 5000 -m 3 -cs 1 -cr 10
//	topkd -data db.json -scenario costs.json
//
// Query it with:
//
//	curl -s localhost:8080/meta
//	curl -s -X POST localhost:8080/query -d '{"sql":
//	  "select name from db order by min(rating, closeness) stop after 5"}'
//
// The same binary also runs as one node of a shard cluster. A shard node
// serves its consistent-hash slice of the database over the websim source
// protocol (deterministic: every node partitions the same dataset flags
// the same way); a coordinator node fronts the shard nodes as one
// scatter-gather database behind the ordinary query API:
//
//	topkd -dist skewed -n 100000 -shards 3 -shard 0 -addr :9090
//	topkd -dist skewed -n 100000 -shards 3 -shard 1 -addr :9091
//	topkd -dist skewed -n 100000 -shards 3 -shard 2 -addr :9092
//	topkd -coordinator http://127.0.0.1:9090,http://127.0.0.1:9091,http://127.0.0.1:9092 \
//	      -m 2 -addr :8080
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"strings"
	"time"

	topk "repro"
	"repro/internal/access"
	"repro/internal/cluster"
	"repro/internal/data"
	"repro/internal/service"
	"repro/internal/websim"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "topkd:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr     = flag.String("addr", "127.0.0.1:8080", "listen address")
		benchQ   = flag.String("bench", "", "serve a travel benchmark: q1 (restaurants) or q2 (hotels)")
		dist     = flag.String("dist", "", "serve a synthetic dataset from this distribution")
		n        = flag.Int("n", 1000, "synthetic dataset size")
		m        = flag.Int("m", 2, "synthetic predicate count")
		seed     = flag.Int64("seed", 1, "synthetic dataset seed")
		dataFile = flag.String("data", "", "serve a dataset from this JSON file")
		storeDir = flag.String("store", "", "serve a disk store directory (built with topk.BuildStore or the topkbench -store workload)")
		coldCal  = flag.Bool("calibrate-cold", false, "calibrate the store with caches dropped between batches (cold mode)")
		scnFile  = flag.String("scenario", "", "load the cost scenario from this JSON file")
		cs       = flag.Float64("cs", 1, "sorted access unit cost (without -scenario; ignored with -store, which prices accesses from timed IO)")
		cr       = flag.Float64("cr", 1, "random access unit cost (without -scenario)")
		slowQ    = flag.Duration("slow-query", 500*time.Millisecond, "log queries slower than this (0 disables)")
		pprofOn  = flag.Bool("pprof", true, "serve runtime profiles under /debug/pprof/")

		queryTimeout  = flag.Duration("query-timeout", 30*time.Second, "per-query deadline; timed-out queries return a degraded answer (negative disables)")
		maxInflight   = flag.Int("max-inflight", 0, "shed queries beyond this many concurrently executing (0 = unlimited)")
		accessTimeout = flag.Duration("access-timeout", 5*time.Second, "per-access deadline inside a query (negative disables)")
		brkThreshold  = flag.Int("breaker-threshold", 3, "consecutive access failures that open a capability's circuit")
		brkCooldown   = flag.Duration("breaker-cooldown", time.Second, "how long an open circuit waits before probing the source again")

		cursorTTL  = flag.Duration("cursor-ttl", time.Minute, "reclaim server-side query cursors idle this long (negative disables expiry)")
		maxCursors = flag.Int("max-cursors", 128, "open server-side cursors beyond this return 503 (negative = unlimited)")

		shareOn  = flag.Bool("share", false, "share accesses across concurrent queries: shared sorted cursors and a score cache (topk_share_* in /metrics)")
		shareCap = flag.Int("share-cache", 0, "shared score cache capacity in entries (0 = default, negative disables score caching)")

		adaptive = flag.Int("adaptive", 0, "re-plan queries mid-flight when sources diverge from the plan's statistics, checkpointing every this many accesses (0 disables)")
		guardOn  = flag.Bool("contract-guard", false, "vet every source response against the access contract; lying sources are quarantined via the circuit breakers (topk_contract_violations_total in /metrics)")

		shardIdx    = flag.Int("shard", -1, "serve one shard of the database over the websim source protocol: this node's index in [0,-shards)")
		shardCount  = flag.Int("shards", 0, "total shard count for -shard mode (every node must build the database from identical flags)")
		coordinator = flag.String("coordinator", "", "comma-separated shard base URLs: front them as one scatter-gather database (-m sets the predicate count; no local database flags apply)")
	)
	flag.Parse()

	var (
		ds      *data.Dataset
		coord   *cluster.Coordinator
		st      *topk.Store
		cal     topk.StoreCalibration
		columns []string
		err     error
	)
	if *coordinator != "" {
		coord, err = dialCluster(*coordinator, *m)
		if err != nil {
			return err
		}
		columns = genericColumns(*m)
	} else if *storeDir != "" {
		st, err = topk.OpenStore(*storeDir, topk.StoreOptions{})
		if err != nil {
			return err
		}
		defer st.Close()
		columns = genericColumns(st.M())
		// Price the scenario from the store's own physics: timed IO at
		// startup, quantized so repeated boots of unchanged hardware key
		// to the same cached plans.
		calCtx, cancel := context.WithTimeout(context.Background(), time.Minute)
		cal, err = topk.MeasureStore(calCtx, st, topk.StoreMeasureOptions{Cold: *coldCal})
		cancel()
		if err != nil {
			return fmt.Errorf("calibrating %s: %w", *storeDir, err)
		}
		log.Printf("topkd: calibrated %s: %s (cr/cs %.1fx)", st.Name(), cal.Key(), cal.Ratio())
	} else {
		switch {
		case *dataFile != "":
			f, err := os.Open(*dataFile)
			if err != nil {
				return err
			}
			ds, err = data.ReadJSON(f)
			f.Close()
			if err != nil {
				return err
			}
			columns = genericColumns(ds.M())
		case *benchQ == "q1":
			q, _, err := data.Restaurants(*n, *seed)
			if err != nil {
				return err
			}
			ds, columns = q.Dataset, q.PredicateNames
		case *benchQ == "q2":
			q, _, err := data.Hotels(*n, *seed)
			if err != nil {
				return err
			}
			ds, columns = q.Dataset, q.PredicateNames
		case *dist != "":
			d, derr := data.DistributionByName(*dist)
			if derr != nil {
				return derr
			}
			ds, err = data.Generate(d, *n, *m, *seed)
			if err != nil {
				return err
			}
			columns = genericColumns(ds.M())
		default:
			return fmt.Errorf("choose a database: -bench, -dist, or -data")
		}
	}

	if *shardCount > 0 || *shardIdx >= 0 {
		if coord != nil {
			return fmt.Errorf("-shard/-shards and -coordinator are different roles; pick one")
		}
		if st != nil {
			return fmt.Errorf("-shard mode serves an in-memory dataset; it cannot front -store")
		}
		return serveShard(*addr, ds, *shardIdx, *shardCount)
	}

	var scn access.Scenario
	if *scnFile == "" && st != nil {
		scn = topk.CalibratedScenario(st.M(), cal)
	} else if *scnFile != "" {
		f, err := os.Open(*scnFile)
		if err != nil {
			return err
		}
		scn, err = access.ReadScenarioJSON(f)
		f.Close()
		if err != nil {
			return err
		}
	} else {
		scn = access.Uniform(len(columns), *cs, *cr)
	}

	var health topk.Backend
	switch {
	case coord != nil:
		health = coord
	case st != nil:
		health = st
	default:
		health = topk.DataBackend(ds)
	}
	h, err := service.NewHandler(service.Config{
		Dataset:            ds,
		Cluster:            coord,
		Store:              st,
		StoreCalibration:   cal,
		Columns:            columns,
		Scenario:           scn,
		SlowQueryThreshold: *slowQ,
		EnablePprof:        *pprofOn,
		HealthBackend:      health,
		QueryTimeout:       *queryTimeout,
		MaxInflight:        *maxInflight,
		AccessTimeout:      *accessTimeout,
		Breaker:            topk.BreakerConfig{FailureThreshold: *brkThreshold, Cooldown: *brkCooldown},
		EnableSharing:      *shareOn,
		ShareScoreCapacity: *shareCap,
		AdaptivePeriod:     *adaptive,
		ContractGuard:      *guardOn,
		CursorTTL:          *cursorTTL,
		MaxCursors:         *maxCursors,
	})
	if err != nil {
		return err
	}
	if coord != nil {
		log.Printf("topkd: coordinating %d shards (%d objects, predicates %v) under scenario %q on %s (metrics on /metrics, share=%v)",
			coord.Shards(), coord.N(), columns, scn.Name, *addr, *shareOn)
	} else if st != nil {
		log.Printf("topkd: serving disk store %s (%d objects, predicates %v) under scenario %q on %s (metrics on /metrics, pprof=%v, share=%v)",
			st.Name(), st.N(), columns, scn.Name, *addr, *pprofOn, *shareOn)
	} else {
		log.Printf("topkd: serving %s (%d objects, predicates %v) under scenario %q on %s (metrics on /metrics, pprof=%v, share=%v)",
			ds.Name(), ds.N(), columns, scn.Name, *addr, *pprofOn, *shareOn)
	}
	return http.ListenAndServe(*addr, h)
}

// dialCluster connects to every shard node in the comma-separated URL
// list and fronts them with a scatter-gather coordinator.
func dialCluster(urls string, m int) (*cluster.Coordinator, error) {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	var shards []cluster.Shard
	for _, u := range strings.Split(urls, ",") {
		u = strings.TrimSpace(u)
		if u == "" {
			continue
		}
		rs, err := cluster.DialShard(ctx, u, m, http.DefaultClient)
		if err != nil {
			return nil, fmt.Errorf("dialing shard %s: %w", u, err)
		}
		shards = append(shards, rs)
	}
	if len(shards) == 0 {
		return nil, fmt.Errorf("-coordinator lists no shard URLs")
	}
	return cluster.New(shards, cluster.Options{})
}

// serveShard partitions the database the same way every peer node does
// (consistent hashing is deterministic in the shard count) and serves this
// node's slice over the websim source protocol for a coordinator to dial.
func serveShard(addr string, ds *data.Dataset, idx, count int) error {
	if count < 1 {
		return fmt.Errorf("-shard requires -shards >= 1")
	}
	if idx < 0 || idx >= count {
		return fmt.Errorf("-shard index %d outside [0,%d)", idx, count)
	}
	parts, err := cluster.Partition(ds, count)
	if err != nil {
		return err
	}
	sd := parts[idx]
	if sd.LocalN() == 0 {
		return fmt.Errorf("shard %d of %d owns no objects of %s; use fewer shards", idx, count, ds.Name())
	}
	srv, err := websim.NewServer(sd.Local, websim.WithShardObjects(sd.Global, ds.N()))
	if err != nil {
		return err
	}
	log.Printf("topkd: serving shard %d/%d of %s (%d of %d objects) on %s",
		idx, count, ds.Name(), sd.LocalN(), ds.N(), addr)
	return http.ListenAndServe(addr, srv)
}

func genericColumns(m int) []string {
	cols := make([]string, m)
	for i := range cols {
		cols[i] = fmt.Sprintf("p%d", i+1)
	}
	return cols
}
