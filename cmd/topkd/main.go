// Command topkd runs the top-k middleware as an HTTP service: one database
// (a travel benchmark, a synthetic dataset, or a JSON file) under one cost
// scenario, answering SQL-like top-k queries over POST /query.
//
// Usage:
//
//	topkd -bench q1 -addr :8080
//	topkd -dist skewed -n 5000 -m 3 -cs 1 -cr 10
//	topkd -data db.json -scenario costs.json
//
// Query it with:
//
//	curl -s localhost:8080/meta
//	curl -s -X POST localhost:8080/query -d '{"sql":
//	  "select name from db order by min(rating, closeness) stop after 5"}'
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	topk "repro"
	"repro/internal/access"
	"repro/internal/data"
	"repro/internal/service"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "topkd:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr     = flag.String("addr", "127.0.0.1:8080", "listen address")
		benchQ   = flag.String("bench", "", "serve a travel benchmark: q1 (restaurants) or q2 (hotels)")
		dist     = flag.String("dist", "", "serve a synthetic dataset from this distribution")
		n        = flag.Int("n", 1000, "synthetic dataset size")
		m        = flag.Int("m", 2, "synthetic predicate count")
		seed     = flag.Int64("seed", 1, "synthetic dataset seed")
		dataFile = flag.String("data", "", "serve a dataset from this JSON file")
		scnFile  = flag.String("scenario", "", "load the cost scenario from this JSON file")
		cs       = flag.Float64("cs", 1, "sorted access unit cost (without -scenario)")
		cr       = flag.Float64("cr", 1, "random access unit cost (without -scenario)")
		slowQ    = flag.Duration("slow-query", 500*time.Millisecond, "log queries slower than this (0 disables)")
		pprofOn  = flag.Bool("pprof", true, "serve runtime profiles under /debug/pprof/")

		queryTimeout  = flag.Duration("query-timeout", 30*time.Second, "per-query deadline; timed-out queries return a degraded answer (negative disables)")
		maxInflight   = flag.Int("max-inflight", 0, "shed queries beyond this many concurrently executing (0 = unlimited)")
		accessTimeout = flag.Duration("access-timeout", 5*time.Second, "per-access deadline inside a query (negative disables)")
		brkThreshold  = flag.Int("breaker-threshold", 3, "consecutive access failures that open a capability's circuit")
		brkCooldown   = flag.Duration("breaker-cooldown", time.Second, "how long an open circuit waits before probing the source again")

		cursorTTL  = flag.Duration("cursor-ttl", time.Minute, "reclaim server-side query cursors idle this long (negative disables expiry)")
		maxCursors = flag.Int("max-cursors", 128, "open server-side cursors beyond this return 503 (negative = unlimited)")

		shareOn  = flag.Bool("share", false, "share accesses across concurrent queries: shared sorted cursors and a score cache (topk_share_* in /metrics)")
		shareCap = flag.Int("share-cache", 0, "shared score cache capacity in entries (0 = default, negative disables score caching)")

		adaptive = flag.Int("adaptive", 0, "re-plan queries mid-flight when sources diverge from the plan's statistics, checkpointing every this many accesses (0 disables)")
		guardOn  = flag.Bool("contract-guard", false, "vet every source response against the access contract; lying sources are quarantined via the circuit breakers (topk_contract_violations_total in /metrics)")
	)
	flag.Parse()

	var (
		ds      *data.Dataset
		columns []string
		err     error
	)
	switch {
	case *dataFile != "":
		f, err := os.Open(*dataFile)
		if err != nil {
			return err
		}
		ds, err = data.ReadJSON(f)
		f.Close()
		if err != nil {
			return err
		}
		columns = genericColumns(ds.M())
	case *benchQ == "q1":
		q, _, err := data.Restaurants(*n, *seed)
		if err != nil {
			return err
		}
		ds, columns = q.Dataset, q.PredicateNames
	case *benchQ == "q2":
		q, _, err := data.Hotels(*n, *seed)
		if err != nil {
			return err
		}
		ds, columns = q.Dataset, q.PredicateNames
	case *dist != "":
		d, derr := data.DistributionByName(*dist)
		if derr != nil {
			return derr
		}
		ds, err = data.Generate(d, *n, *m, *seed)
		if err != nil {
			return err
		}
		columns = genericColumns(ds.M())
	default:
		return fmt.Errorf("choose a database: -bench, -dist, or -data")
	}

	var scn access.Scenario
	if *scnFile != "" {
		f, err := os.Open(*scnFile)
		if err != nil {
			return err
		}
		scn, err = access.ReadScenarioJSON(f)
		f.Close()
		if err != nil {
			return err
		}
	} else {
		scn = access.Uniform(ds.M(), *cs, *cr)
	}

	h, err := service.NewHandler(service.Config{
		Dataset:            ds,
		Columns:            columns,
		Scenario:           scn,
		SlowQueryThreshold: *slowQ,
		EnablePprof:        *pprofOn,
		HealthBackend:      topk.DataBackend(ds),
		QueryTimeout:       *queryTimeout,
		MaxInflight:        *maxInflight,
		AccessTimeout:      *accessTimeout,
		Breaker:            topk.BreakerConfig{FailureThreshold: *brkThreshold, Cooldown: *brkCooldown},
		EnableSharing:      *shareOn,
		ShareScoreCapacity: *shareCap,
		AdaptivePeriod:     *adaptive,
		ContractGuard:      *guardOn,
		CursorTTL:          *cursorTTL,
		MaxCursors:         *maxCursors,
	})
	if err != nil {
		return err
	}
	log.Printf("topkd: serving %s (%d objects, predicates %v) under scenario %q on %s (metrics on /metrics, pprof=%v, share=%v)",
		ds.Name(), ds.N(), columns, scn.Name, *addr, *pprofOn, *shareOn)
	return http.ListenAndServe(*addr, h)
}

func genericColumns(m int) []string {
	cols := make([]string, m)
	for i := range cols {
		cols[i] = fmt.Sprintf("p%d", i+1)
	}
	return cols
}
