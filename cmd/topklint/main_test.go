package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/analysis"
)

// chdirRepoRoot moves to the module root (two levels up from cmd/topklint)
// so the loader resolves ./... the same way CI does.
func chdirRepoRoot(t *testing.T) {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(filepath.Join(wd, "..", "..")); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = os.Chdir(wd) })
}

func TestListAnalyzers(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-list"}, &out, &errOut); code != 0 {
		t.Fatalf("run(-list) = %d, stderr: %s", code, errOut.String())
	}
	for _, name := range []string{"nopanic", "detrand", "registrycomplete", "ctxfirst", "lockdiscipline", "hotpathalloc", "resetcomplete", "poolpair", "billedaccess"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing analyzer %q:\n%s", name, out.String())
		}
	}
}

// TestTreeIsClean is the gate the ISSUE demands: the merged tree must lint
// clean. It runs the real driver over the serving-path packages.
func TestTreeIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module")
	}
	chdirRepoRoot(t)
	var out, errOut strings.Builder
	code := run([]string{"./internal/...", "."}, &out, &errOut)
	if code != 0 {
		t.Fatalf("topklint found violations (exit %d):\n%s%s", code, out.String(), errOut.String())
	}
}

// TestSelfCheck: the linter's own tree must satisfy the invariants it
// enforces on the rest of the repository.
func TestSelfCheck(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the lint tree")
	}
	chdirRepoRoot(t)
	var out, errOut strings.Builder
	code := run([]string{"./internal/lint/...", "./cmd/topklint"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("topklint is not clean on its own tree (exit %d):\n%s%s", code, out.String(), errOut.String())
	}
}

// TestJSONOutput checks the machine-readable envelope: a clean run still
// emits the full SARIF-lite document (version, tool, empty results), so
// CI artifact consumers never special-case success.
func TestJSONOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the lint tree")
	}
	chdirRepoRoot(t)
	var out, errOut strings.Builder
	code := run([]string{"-json", "./internal/lint/linttest"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("run(-json) = %d:\n%s%s", code, out.String(), errOut.String())
	}
	var doc struct {
		Version string `json:"version"`
		Tool    struct {
			Name  string   `json:"name"`
			Rules []string `json:"rules"`
		} `json:"tool"`
		Results []interface{} `json:"results"`
	}
	if err := json.Unmarshal([]byte(out.String()), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, out.String())
	}
	if doc.Version != analysis.JSONVersion {
		t.Errorf("version = %q, want %q", doc.Version, analysis.JSONVersion)
	}
	if doc.Tool.Name != "topklint" {
		t.Errorf("tool.name = %q, want topklint", doc.Tool.Name)
	}
	if len(doc.Tool.Rules) != len(lint.All()) {
		t.Errorf("tool.rules has %d entries, want %d", len(doc.Tool.Rules), len(lint.All()))
	}
	if doc.Results == nil || len(doc.Results) != 0 {
		t.Errorf("results = %v, want empty non-null array", doc.Results)
	}
}

// TestFixOnCleanTree: -fix on a clean package applies nothing and exits 0.
func TestFixOnCleanTree(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the lint tree")
	}
	chdirRepoRoot(t)
	var out, errOut strings.Builder
	code := run([]string{"-fix", "./internal/lint/linttest"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("run(-fix) = %d:\n%s%s", code, out.String(), errOut.String())
	}
	if !strings.Contains(errOut.String(), "applied 0 fix(es)") {
		t.Errorf("stderr missing fix summary: %s", errOut.String())
	}
}

func TestBadPatternFails(t *testing.T) {
	chdirRepoRoot(t)
	var out, errOut strings.Builder
	if code := run([]string{"./no/such/package"}, &out, &errOut); code != 2 {
		t.Fatalf("run(bad pattern) = %d, want 2 (stderr: %s)", code, errOut.String())
	}
}
