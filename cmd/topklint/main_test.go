package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// chdirRepoRoot moves to the module root (two levels up from cmd/topklint)
// so the loader resolves ./... the same way CI does.
func chdirRepoRoot(t *testing.T) {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(filepath.Join(wd, "..", "..")); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = os.Chdir(wd) })
}

func TestListAnalyzers(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-list"}, &out, &errOut); code != 0 {
		t.Fatalf("run(-list) = %d, stderr: %s", code, errOut.String())
	}
	for _, name := range []string{"nopanic", "detrand", "registrycomplete", "ctxfirst", "lockdiscipline"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing analyzer %q:\n%s", name, out.String())
		}
	}
}

// TestTreeIsClean is the gate the ISSUE demands: the merged tree must lint
// clean. It runs the real driver over the serving-path packages.
func TestTreeIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module")
	}
	chdirRepoRoot(t)
	var out, errOut strings.Builder
	code := run([]string{"./internal/...", "."}, &out, &errOut)
	if code != 0 {
		t.Fatalf("topklint found violations (exit %d):\n%s%s", code, out.String(), errOut.String())
	}
}

func TestBadPatternFails(t *testing.T) {
	chdirRepoRoot(t)
	var out, errOut strings.Builder
	if code := run([]string{"./no/such/package"}, &out, &errOut); code != 2 {
		t.Fatalf("run(bad pattern) = %d, want 2 (stderr: %s)", code, errOut.String())
	}
}
