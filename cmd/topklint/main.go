// Command topklint runs the repository's analyzer suite (internal/lint)
// over the given packages and exits non-zero if any invariant is
// violated. It is a tier-1 CI gate:
//
//	go run ./cmd/topklint ./...
//
// Each diagnostic is positional (file:line:col) and names the analyzer,
// so a violation can be suppressed — deliberately and with a reason —
// via `//topklint:allow <analyzer> <reason>` on or above the line.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/lint"
	"repro/internal/lint/analysis"
	"repro/internal/lint/loader"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("topklint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list the analyzers and exit")
	jsonOut := fs.Bool("json", false, "emit diagnostics as SARIF-lite JSON on stdout")
	fix := fs.Bool("fix", false, "apply mechanical fixes in place; only unfixable diagnostics remain violations")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: topklint [-list] [-json] [-fix] [packages]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range lint.All() {
			fmt.Fprintf(stdout, "%-18s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := loader.Load(".", patterns)
	if err != nil {
		fmt.Fprintln(stderr, "topklint:", err)
		return 2
	}
	analyzers := lint.All()
	var all []analysis.Diagnostic
	for _, pkg := range pkgs {
		diags, err := analysis.RunPackage(pkg.Fset, pkg.Syntax, pkg.Types, pkg.TypesInfo, analyzers)
		if err != nil {
			fmt.Fprintln(stderr, "topklint:", err)
			return 2
		}
		all = append(all, diags...)
	}
	if *fix {
		applied, err := analysis.ApplyFixes(all)
		if err != nil {
			fmt.Fprintln(stderr, "topklint:", err)
			return 2
		}
		fmt.Fprintf(stderr, "topklint: applied %d fix(es)\n", applied)
		remaining := all[:0]
		for _, d := range all {
			if d.Fix == nil {
				remaining = append(remaining, d)
			}
		}
		all = remaining
	}
	if *jsonOut {
		names := make([]string, len(analyzers))
		for i, a := range analyzers {
			names[i] = a.Name
		}
		if err := analysis.WriteJSON(stdout, names, all); err != nil {
			fmt.Fprintln(stderr, "topklint:", err)
			return 2
		}
	} else {
		for _, d := range all {
			fmt.Fprintln(stdout, d)
		}
	}
	if len(all) > 0 {
		fmt.Fprintf(stderr, "topklint: %d violation(s)\n", len(all))
		return 1
	}
	return 0
}
