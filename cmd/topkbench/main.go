// Command topkbench regenerates the paper's tables and figures (and the
// extension experiments). Each experiment id (E1..E12) maps to one artifact; see DESIGN.md's
// per-experiment index and EXPERIMENTS.md for the recorded results.
//
// Usage:
//
//	topkbench -exp E2            # one experiment at paper-scale defaults
//	topkbench -exp all -quick    # everything, small sizes
//	topkbench -list              # show the experiment registry
//	topkbench -exp E3 -n 2000 -k 25 -seed 7
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
)

func main() {
	var (
		exp    = flag.String("exp", "all", "experiment id (E1..E12) or 'all'")
		n      = flag.Int("n", 0, "database size (0 = experiment default)")
		k      = flag.Int("k", 0, "retrieval size (0 = experiment default)")
		seed   = flag.Int64("seed", 0, "base random seed (0 = default)")
		quick  = flag.Bool("quick", false, "shrink sizes ~8x for a fast smoke run")
		list   = flag.Bool("list", false, "list experiments and exit")
		format = flag.String("format", "text", "output format: text or csv")
		verify = flag.Bool("verify", false, "after each experiment, check the paper's shape claim and report PASS/FAIL")
	)
	flag.Parse()

	if *list {
		fmt.Println("id    paper artifact                                  title")
		for _, e := range bench.Registry() {
			fmt.Printf("%-5s %-47s %s\n", e.ID, e.Paper, e.Title)
		}
		return
	}

	cfg := bench.Config{N: *n, K: *k, Seed: *seed, Quick: *quick}
	failed := false
	var exps []bench.Experiment
	if *exp == "all" {
		exps = bench.Registry()
	} else {
		e, ok := bench.ByID(*exp)
		if !ok {
			fmt.Fprintf(os.Stderr, "topkbench: unknown experiment %q (try -list)\n", *exp)
			os.Exit(2)
		}
		exps = []bench.Experiment{e}
	}
	for _, e := range exps {
		tab, err := e.Run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "topkbench: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		var werr error
		switch *format {
		case "text":
			_, werr = tab.WriteTo(os.Stdout)
		case "csv":
			werr = tab.WriteCSV(os.Stdout)
		default:
			werr = fmt.Errorf("unknown format %q (text or csv)", *format)
		}
		if werr != nil {
			fmt.Fprintf(os.Stderr, "topkbench: %v\n", werr)
			os.Exit(1)
		}
		if *verify {
			if err := bench.VerifyShape(tab); err != nil {
				fmt.Printf("shape %s: FAIL — %v\n\n", e.ID, err)
				failed = true
			} else {
				fmt.Printf("shape %s: PASS\n\n", e.ID)
			}
		}
	}
	if failed {
		os.Exit(1)
	}
}
