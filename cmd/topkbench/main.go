// Command topkbench regenerates the paper's tables and figures (and the
// extension experiments). Each experiment id (E1..E12) maps to one artifact; see DESIGN.md's
// per-experiment index and EXPERIMENTS.md for the recorded results.
//
// Usage:
//
//	topkbench -exp E2            # one experiment at paper-scale defaults
//	topkbench -exp all -quick    # everything, small sizes
//	topkbench -list              # show the experiment registry
//	topkbench -exp E3 -n 2000 -k 25 -seed 7
//	topkbench -serve-bench       # serve-path throughput in queries/sec
//	topkbench -serve-bench -cpuprofile cpu.out -memprofile mem.out
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	topk "repro"
	"repro/internal/bench"
	"repro/internal/data"
)

func main() {
	var (
		exp        = flag.String("exp", "all", "experiment id (E1..E12) or 'all'")
		n          = flag.Int("n", 0, "database size (0 = experiment default)")
		k          = flag.Int("k", 0, "retrieval size (0 = experiment default)")
		seed       = flag.Int64("seed", 0, "base random seed (0 = default)")
		quick      = flag.Bool("quick", false, "shrink sizes ~8x for a fast smoke run")
		list       = flag.Bool("list", false, "list experiments and exit")
		format     = flag.String("format", "text", "output format: text or csv")
		verify     = flag.Bool("verify", false, "after each experiment, check the paper's shape claim and report PASS/FAIL")
		serveBench = flag.Bool("serve-bench", false, "run the serve-path throughput workload (BENCH_perf.json) and emit queries/sec")
		serveQ     = flag.Int("serve-queries", 2000, "queries per serve-bench case")
		clusterOn  = flag.Bool("cluster", false, "run the scatter-gather throughput workload (BENCH_cluster.json) at 1, 2, and 3 shards")
		clusterN   = flag.Int("cluster-n", 0, "cluster workload dataset size (0 = the BENCH_cluster.json default, 1e6)")
		clusterQ   = flag.Int("cluster-queries", 0, "queries per cluster case (0 = default)")
		clusterC   = flag.Duration("cluster-access-cost", 0, "simulated per-entry service time at each node (0 = default)")
		clusterD   = flag.String("cluster-dist", "", "cluster workload distribution (empty = zipf)")
		storeOn    = flag.Bool("store", false, "run the disk-store workload (BENCH_store.json): IO calibration plus the measured-vs-uniform plan-shift sweep")
		storeN     = flag.Int("store-n", 0, "store workload dataset size (0 = the BENCH_store.json default, 1e6)")
		storeDist  = flag.String("store-dist", "", "store workload distribution (empty = zipf)")
		storeDir   = flag.String("store-root", "", "store cache root (empty = $TOPK_STORE_CACHE or the OS temp dir)")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "topkbench: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "topkbench: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "topkbench: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "topkbench: %v\n", err)
			}
		}()
	}

	if *serveBench {
		if err := runServeBench(*serveQ); err != nil {
			fmt.Fprintf(os.Stderr, "topkbench: serve-bench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *clusterOn {
		if err := runClusterBench(*clusterN, *clusterQ, *clusterC, *clusterD); err != nil {
			fmt.Fprintf(os.Stderr, "topkbench: cluster: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *storeOn {
		if err := runStoreBench(*storeN, *storeDist, *storeDir); err != nil {
			fmt.Fprintf(os.Stderr, "topkbench: store: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *list {
		fmt.Println("id    paper artifact                                  title")
		for _, e := range bench.Registry() {
			fmt.Printf("%-5s %-47s %s\n", e.ID, e.Paper, e.Title)
		}
		return
	}

	cfg := bench.Config{N: *n, K: *k, Seed: *seed, Quick: *quick}
	failed := false
	var exps []bench.Experiment
	if *exp == "all" {
		exps = bench.Registry()
	} else {
		e, ok := bench.ByID(*exp)
		if !ok {
			fmt.Fprintf(os.Stderr, "topkbench: unknown experiment %q (try -list)\n", *exp)
			os.Exit(2)
		}
		exps = []bench.Experiment{e}
	}
	for _, e := range exps {
		tab, err := e.Run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "topkbench: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		var werr error
		switch *format {
		case "text":
			_, werr = tab.WriteTo(os.Stdout)
		case "csv":
			werr = tab.WriteCSV(os.Stdout)
		default:
			werr = fmt.Errorf("unknown format %q (text or csv)", *format)
		}
		if werr != nil {
			fmt.Fprintf(os.Stderr, "topkbench: %v\n", werr)
			os.Exit(1)
		}
		if *verify {
			if err := bench.VerifyShape(tab); err != nil {
				fmt.Printf("shape %s: FAIL — %v\n\n", e.ID, err)
				failed = true
			} else {
				fmt.Printf("shape %s: PASS\n\n", e.ID)
			}
		}
	}
	if failed {
		os.Exit(1)
	}
}

// runServeBench times the BENCH_perf.json serve-path workload — the E1
// query (uniform n=1000 m=2 seed=42, avg, k=10, cs=cr=1) through a fixed
// NC plan and through the optimizer with and without the plan cache — and
// reports each case as queries/sec. Combine with -cpuprofile/-memprofile
// to see where a served query actually spends its time.
func runServeBench(queries int) error {
	if queries <= 0 {
		return fmt.Errorf("need a positive -serve-queries, got %d", queries)
	}
	ds, err := data.Generate(data.Uniform, 1000, 2, 42)
	if err != nil {
		return err
	}
	q := topk.Query{F: topk.Avg(), K: 10}
	fixed := topk.WithNC([]float64{0.5, 0.5}, nil)
	optimized := topk.WithOptimizer(topk.OptimizerConfig{})
	shared := topk.NewSharedAccess(topk.DataBackend(ds), topk.SharingOptions{})
	cases := []struct {
		name string
		opts []topk.EngineOption
		run  []topk.RunOption
	}{
		{"fixed-plan", nil, []topk.RunOption{fixed}},
		{"optimizer/no-cache", nil, []topk.RunOption{optimized}},
		{"optimizer/plan-cache", []topk.EngineOption{topk.WithPlanCache(topk.NewPlanCache(0))}, []topk.RunOption{optimized}},
		{"optimizer/shared", []topk.EngineOption{topk.WithPlanCache(topk.NewPlanCache(0)), topk.WithSharing(shared)}, []topk.RunOption{optimized}},
	}
	fmt.Printf("serve-path throughput (%d queries per case, E1 workload)\n", queries)
	for _, c := range cases {
		eng, err := topk.NewEngine(topk.DataBackend(ds), topk.UniformScenario(2, 1, 1), c.opts...)
		if err != nil {
			return err
		}
		if _, err := eng.Run(q, c.run...); err != nil { // warm pools and cache
			return err
		}
		start := time.Now()
		for i := 0; i < queries; i++ {
			if _, err := eng.Run(q, c.run...); err != nil {
				return err
			}
		}
		elapsed := time.Since(start)
		fmt.Printf("%-22s %10.0f queries/s   (%s/query)\n",
			c.name, float64(queries)/elapsed.Seconds(), elapsed/time.Duration(queries))
	}
	return nil
}

// runStoreBench drives the BENCH_store.json workload: build-or-open the
// cached store directory, calibrate cs and cr from timed IO (warm and
// cold), then plan each Figure-2 sweep cell under uniform-assumed and
// io-measured costs and bill both plans against the store's real prices.
func runStoreBench(n int, dist, root string) error {
	fmt.Println("disk-store workload (IO-measured calibration + plan-shift sweep; see BENCH_store.json)")
	res, err := bench.RunStoreLoad(bench.StoreLoad{N: n, Dist: dist, Root: root})
	if err != nil {
		return err
	}
	action := "cache hit"
	if res.Built {
		action = "built"
	}
	fmt.Printf("store %s (%s, n=%d m=%d)\n", res.Dir, action, res.N, res.M)
	fmt.Printf("warm calibration: %s   (cr/cs %.1fx)\n", res.Warm.Key(), res.Warm.Ratio())
	fmt.Printf("cold calibration: %s   (cr/cs %.1fx)\n", res.Cold.Key(), res.Cold.Ratio())
	fmt.Printf("%-12s %-5s %-5s %14s %14s %10s\n", "cell", "f", "k", "uniform-plan", "measured-plan", "advantage")
	for _, sh := range res.Shifts {
		fmt.Printf("%-12s %-5s %-5d %12.3fms %12.3fms %9.1f%%\n",
			sh.Cell, sh.F, sh.K, sh.Uniform, sh.Measured, sh.Advantage*100)
	}
	fmt.Printf("best advantage %.1f%%   sweep totals: uniform %.3fms, measured %.3fms\n",
		res.BestAdvantage*100, res.TotalUniform, res.TotalMeasured)
	return nil
}

// runClusterBench drives the BENCH_cluster.json workload at 1, 2, and 3
// shards and reports aggregate throughput plus the node-side entry counts
// (billed accesses + coordinator prefetch overshoot). The 1-shard row is
// the single-node baseline the >=2x cluster gate compares against.
func runClusterBench(n, queries int, accessCost time.Duration, dist string) error {
	fmt.Println("cluster scatter-gather throughput (throttled source nodes; see BENCH_cluster.json)")
	var baseline float64
	for _, shards := range []int{1, 2, 3} {
		res, err := bench.RunClusterLoad(bench.ClusterLoad{
			N: n, Queries: queries, AccessCost: accessCost, Dist: dist, Shards: shards,
		})
		if err != nil {
			return err
		}
		speedup := 1.0
		if shards == 1 {
			baseline = res.QueriesPerSec
		} else if baseline > 0 {
			speedup = res.QueriesPerSec / baseline
		}
		fmt.Printf("%-9s %s   speedup=%.2fx\n", fmt.Sprintf("shards=%d", shards), res, speedup)
	}
	return nil
}
