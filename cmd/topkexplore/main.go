// Command topkexplore prints the cost surface of the SR/G configuration
// space for a query — a text rendition of the paper's Figure 11 contour
// plots, for any scoring function, cost scenario, and dataset. Each cell
// is the actual total access cost of Framework NC at depths (h1, h2); the
// minimum cell is marked with '*' and the depths an equal-depth TA run
// reaches are marked with '+' when TA is applicable.
//
// Usage:
//
//	topkexplore -f min -n 1000 -k 10 -grid 9 -cs 1 -cr 10
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/access"
	"repro/internal/algo"
	"repro/internal/data"
	"repro/internal/score"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "topkexplore:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		dist  = flag.String("dist", "uniform", "dataset distribution")
		n     = flag.Int("n", 1000, "number of objects")
		k     = flag.Int("k", 10, "retrieval size")
		seed  = flag.Int64("seed", 1, "random seed")
		fname = flag.String("f", "min", "scoring function")
		grid  = flag.Int("grid", 6, "grid points per dimension (>= 2)")
		cs    = flag.Float64("cs", 1, "sorted access unit cost")
		cr    = flag.Float64("cr", 1, "random access unit cost")
	)
	flag.Parse()
	if *grid < 2 {
		return fmt.Errorf("grid must be >= 2")
	}

	d, err := data.DistributionByName(*dist)
	if err != nil {
		return err
	}
	ds, err := data.Generate(d, *n, 2, *seed)
	if err != nil {
		return err
	}
	f, err := score.ByName(*fname)
	if err != nil {
		return err
	}
	scn := access.Uniform(2, *cs, *cr)

	vals := make([]float64, *grid)
	for i := range vals {
		vals[i] = float64(i) / float64(*grid-1)
	}
	costs := make([][]access.Cost, *grid)
	best := access.Cost(-1)
	bi, bj := 0, 0
	for i, h1 := range vals {
		costs[i] = make([]access.Cost, *grid)
		for j, h2 := range vals {
			sess, err := access.NewSession(access.DatasetBackend{DS: ds}, scn)
			if err != nil {
				return err
			}
			prob, err := algo.NewProblem(f, *k, sess)
			if err != nil {
				return err
			}
			alg, err := algo.NewNC([]float64{h1, h2}, nil)
			if err != nil {
				return err
			}
			res, err := alg.Run(prob)
			if err != nil {
				return err
			}
			costs[i][j] = res.Cost()
			if best < 0 || res.Cost() < best {
				best, bi, bj = res.Cost(), i, j
			}
		}
	}

	// TA's position in the space, when applicable.
	taI, taJ := -1, -1
	var taCost access.Cost
	sess, err := access.NewSession(access.DatasetBackend{DS: ds}, scn, access.WithTrace())
	if err != nil {
		return err
	}
	prob, err := algo.NewProblem(f, *k, sess)
	if err != nil {
		return err
	}
	if res, err := (algo.TA{}).Run(prob); err == nil {
		taCost = res.Cost()
		depth := []float64{1, 1}
		for _, rec := range sess.Trace() {
			if rec.Kind == access.SortedAccess {
				depth[rec.Pred] = rec.Score
			}
		}
		taI, taJ = nearest(vals, depth[0]), nearest(vals, depth[1])
	}

	fmt.Printf("cost surface: F=%s, %s n=%d k=%d, cs=%g cr=%g ('*' minimum, '+' TA's depths)\n\n",
		f.Name(), *dist, *n, *k, *cs, *cr)
	fmt.Printf("%8s", "h1\\h2")
	for _, v := range vals {
		fmt.Printf("%10.2f", v)
	}
	fmt.Println()
	for i, h1 := range vals {
		fmt.Printf("%8.2f", h1)
		for j := range vals {
			mark := " "
			if i == bi && j == bj {
				mark = "*"
			} else if i == taI && j == taJ {
				mark = "+"
			}
			fmt.Printf("%9.1f%s", costs[i][j].Units(), mark)
		}
		fmt.Println()
	}
	fmt.Printf("\nminimum: H=(%.2f,%.2f) cost %.1f\n", vals[bi], vals[bj], best.Units())
	if taI >= 0 {
		fmt.Printf("TA: depths ~(%.2f,%.2f), cost %.1f -> NC-at-minimum/TA = %.0f%%\n",
			vals[taI], vals[taJ], taCost.Units(), 100*float64(best)/float64(taCost))
	}
	return nil
}

func nearest(vals []float64, x float64) int {
	best, bd := 0, 2.0
	for i, v := range vals {
		d := v - x
		if d < 0 {
			d = -d
		}
		if d < bd {
			best, bd = i, d
		}
	}
	return best
}
