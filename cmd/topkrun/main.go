// Command topkrun executes a single top-k query against a synthetic
// dataset or the travel-agent benchmark, with any algorithm in the
// library, and reports the answers, the access ledger, and (optionally)
// the full access trace.
//
// Usage examples:
//
//	topkrun -dist uniform -n 1000 -m 2 -f min -k 5
//	topkrun -f avg -algo TA -cs 1 -cr 10
//	topkrun -bench q1 -k 5 -algo opt
//	topkrun -f min -algo nc -H 0.3,1 -omega 1,0 -trace
//	topkrun -f min -algo opt -parallel 8
//	topkrun -query "select name from q1 order by min(rating, closeness) stop after 5"
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/access"
	"repro/internal/algo"
	"repro/internal/data"
	"repro/internal/opt"
	"repro/internal/parallel"
	"repro/internal/score"
	"repro/internal/sqlq"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "topkrun:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		dist     = flag.String("dist", "uniform", "dataset distribution (uniform|gaussian|skewed|correlated|anticorrelated)")
		benchQ   = flag.String("bench", "", "use a travel benchmark instead: q1 (restaurants) or q2 (hotels)")
		n        = flag.Int("n", 1000, "number of objects")
		m        = flag.Int("m", 2, "number of predicates")
		k        = flag.Int("k", 5, "retrieval size")
		seed     = flag.Int64("seed", 1, "random seed")
		fname    = flag.String("f", "min", "scoring function (min|max|avg|product|geomean)")
		algoName = flag.String("algo", "opt", "algorithm: opt, nc, adaptive, or a baseline (FA|TA|CA|NRA|MPro|Upper|Quick-Combine|Stream-Combine)")
		hFlag    = flag.String("H", "", "NC depths, comma-separated (with -algo nc)")
		omFlag   = flag.String("omega", "", "NC probe schedule, comma-separated predicate indices")
		cs       = flag.Float64("cs", 1, "sorted access unit cost")
		cr       = flag.Float64("cr", 1, "random access unit cost")
		par      = flag.Int("parallel", 0, "concurrency bound (0 = sequential)")
		trace    = flag.Bool("trace", false, "print the access trace")
		queryStr = flag.String("query", "", `SQL-like query, e.g. "select name from q1 order by min(rating, closeness) stop after 5"; tables: q1, q2, or a distribution name with predicates p1..pm`)
	)
	flag.Parse()

	// Dataset and query context.
	var ds *data.Dataset
	var labels bool
	var f score.Func
	var err error
	kVal := *k

	if *queryStr != "" {
		pq, err := sqlq.Parse(*queryStr)
		if err != nil {
			return err
		}
		ds, labels, err = resolveTable(pq.From, *n, *m, *seed)
		if err != nil {
			return err
		}
		cols, err := sqlq.Bind(pq, tableColumns(pq.From, ds.M()))
		if err != nil {
			return err
		}
		ds, err = projectColumns(ds, cols)
		if err != nil {
			return err
		}
		f, kVal = pq.Func, pq.K
		fmt.Println("query:", pq)
	} else {
		f, err = score.ByName(*fname)
		if err != nil {
			return err
		}
		switch *benchQ {
		case "":
			d, err := data.DistributionByName(*dist)
			if err != nil {
				return err
			}
			ds, err = data.Generate(d, *n, *m, *seed)
			if err != nil {
				return err
			}
		case "q1":
			q, _, err := data.Restaurants(*n, *seed)
			if err != nil {
				return err
			}
			ds, labels = q.Dataset, true
			f = score.Min()
		case "q2":
			q, _, err := data.Hotels(*n, *seed)
			if err != nil {
				return err
			}
			ds, labels = q.Dataset, true
			f = score.Avg()
		default:
			return fmt.Errorf("unknown benchmark %q (want q1 or q2)", *benchQ)
		}
	}
	scn := access.Uniform(ds.M(), *cs, *cr)

	var opts []access.Option
	if *trace {
		opts = append(opts, access.WithTrace())
	}
	sess, err := access.NewSession(access.DatasetBackend{DS: ds}, scn, opts...)
	if err != nil {
		return err
	}
	prob, err := algo.NewProblem(f, kVal, sess)
	if err != nil {
		return err
	}

	// Resolve the execution strategy.
	var items []algo.Item
	var elapsed float64
	switch {
	case *par > 0:
		h, omega, err := resolveConfig(*algoName, *hFlag, *omFlag, scn, f, kVal, ds.N(), *seed)
		if err != nil {
			return err
		}
		sel, err := algo.NewSRG(h, omega)
		if err != nil {
			return err
		}
		res, err := (&parallel.Executor{B: *par, Sel: sel}).Run(context.Background(), prob)
		if err != nil {
			return err
		}
		items, elapsed = res.Items, res.Elapsed
		fmt.Printf("parallel B=%d  elapsed=%.2f units\n", *par, elapsed)
	case *algoName == "opt", *algoName == "nc", *algoName == "adaptive":
		if *algoName == "adaptive" {
			a := &opt.Adaptive{Cfg: opt.Config{Seed: *seed}}
			res, err := a.Run(prob)
			if err != nil {
				return err
			}
			items = res.Items
			fmt.Printf("adaptive: %d re-plan(s)\n", a.Replans)
			break
		}
		h, omega, err := resolveConfig(*algoName, *hFlag, *omFlag, scn, f, kVal, ds.N(), *seed)
		if err != nil {
			return err
		}
		fmt.Printf("NC configuration: H=%v Omega=%v\n", h, omega)
		alg, err := algo.NewNC(h, omega)
		if err != nil {
			return err
		}
		res, err := alg.Run(prob)
		if err != nil {
			return err
		}
		items = res.Items
	default:
		alg, err := algo.ByName(*algoName)
		if err != nil {
			return err
		}
		res, err := alg.Run(prob)
		if err != nil {
			return err
		}
		items = res.Items
	}

	// Report.
	fmt.Printf("top-%d by %s over %s:\n", kVal, f.Name(), ds.Name())
	for i, it := range items {
		name := fmt.Sprintf("u%d", it.Obj)
		if labels {
			name = ds.Label(it.Obj)
		}
		exact := ""
		if !it.Exact {
			exact = " (score is a lower bound)"
		}
		fmt.Printf("%3d. %-18s %.4f%s\n", i+1, name, it.Score, exact)
	}
	l := sess.Ledger()
	fmt.Printf("accesses: sorted=%v random=%v  total cost=%.2f units\n",
		l.SortedCounts, l.RandomCounts, l.TotalCost.Units())
	if *trace {
		fmt.Println("trace:")
		for _, rec := range sess.Trace() {
			fmt.Println("  ", rec)
		}
	}
	return nil
}

// resolveConfig returns the SR/G configuration: parsed from flags for
// "nc", optimizer-chosen for "opt".
func resolveConfig(mode, hFlag, omFlag string, scn access.Scenario, f score.Func, k, n int, seed int64) ([]float64, []int, error) {
	if mode == "nc" || hFlag != "" {
		h, err := parseFloats(hFlag)
		if err != nil {
			return nil, nil, fmt.Errorf("-H: %w", err)
		}
		var omega []int
		if omFlag != "" {
			omega, err = parseInts(omFlag)
			if err != nil {
				return nil, nil, fmt.Errorf("-omega: %w", err)
			}
		}
		return h, omega, nil
	}
	plan, err := opt.Optimize(opt.Config{Seed: seed}, scn, f, k, n)
	if err != nil {
		return nil, nil, err
	}
	return plan.H, plan.Omega, nil
}

func parseFloats(s string) ([]float64, error) {
	if s == "" {
		return nil, fmt.Errorf("empty list")
	}
	parts := strings.Split(s, ",")
	out := make([]float64, len(parts))
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

func parseInts(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, len(parts))
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}
