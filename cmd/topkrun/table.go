package main

import (
	"fmt"

	"repro/internal/data"
)

// resolveTable materializes the table a query's FROM clause names:
// "q1"/"restaurants" and "q2"/"hotels" yield the travel benchmarks (with
// object labels); any distribution name yields a synthetic dataset whose
// columns are named p1..pm.
func resolveTable(name string, n, m int, seed int64) (*data.Dataset, bool, error) {
	switch name {
	case "q1", "restaurants":
		q, _, err := data.Restaurants(n, seed)
		if err != nil {
			return nil, false, err
		}
		return q.Dataset, true, nil
	case "q2", "hotels":
		q, _, err := data.Hotels(n, seed)
		if err != nil {
			return nil, false, err
		}
		return q.Dataset, true, nil
	default:
		d, err := data.DistributionByName(name)
		if err != nil {
			return nil, false, fmt.Errorf("unknown table %q (q1, q2, or a distribution name)", name)
		}
		ds, err := data.Generate(d, n, m, seed)
		if err != nil {
			return nil, false, err
		}
		return ds, false, nil
	}
}

// tableColumns returns the predicate (column) names of a table.
func tableColumns(name string, m int) []string {
	switch name {
	case "q1", "restaurants":
		return []string{"rating", "closeness"}
	case "q2", "hotels":
		return []string{"closeness", "rating", "cheap"}
	default:
		cols := make([]string, m)
		for i := range cols {
			cols[i] = fmt.Sprintf("p%d", i+1)
		}
		return cols
	}
}

// projectColumns reorders/subsets a dataset's predicate columns to the
// query's predicate order (the column indices Bind resolved). Labels are
// preserved; an identity projection is a no-op.
func projectColumns(ds *data.Dataset, cols []int) (*data.Dataset, error) {
	return data.Project(ds, cols)
}
