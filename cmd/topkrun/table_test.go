package main

import (
	"testing"
)

func TestParseFloats(t *testing.T) {
	got, err := parseFloats("0.3, 1, 0.5")
	if err != nil || len(got) != 3 || got[0] != 0.3 || got[1] != 1 || got[2] != 0.5 {
		t.Errorf("parseFloats = %v, %v", got, err)
	}
	if _, err := parseFloats(""); err == nil {
		t.Error("empty list should fail")
	}
	if _, err := parseFloats("0.3,x"); err == nil {
		t.Error("non-numeric should fail")
	}
}

func TestParseInts(t *testing.T) {
	got, err := parseInts("1,0,2")
	if err != nil || len(got) != 3 || got[0] != 1 || got[2] != 2 {
		t.Errorf("parseInts = %v, %v", got, err)
	}
	if _, err := parseInts("1,a"); err == nil {
		t.Error("non-numeric should fail")
	}
}

func TestResolveTable(t *testing.T) {
	ds, labels, err := resolveTable("q1", 50, 0, 1)
	if err != nil || !labels || ds.M() != 2 {
		t.Errorf("q1: %v %v %v", ds, labels, err)
	}
	ds, labels, err = resolveTable("hotels", 50, 0, 1)
	if err != nil || !labels || ds.M() != 3 {
		t.Errorf("hotels: %v %v %v", ds, labels, err)
	}
	ds, labels, err = resolveTable("skewed", 40, 3, 2)
	if err != nil || labels || ds.N() != 40 || ds.M() != 3 {
		t.Errorf("skewed: %v %v %v", ds, labels, err)
	}
	if _, _, err := resolveTable("nosuch", 10, 2, 1); err == nil {
		t.Error("unknown table should fail")
	}
}

func TestTableColumns(t *testing.T) {
	if cols := tableColumns("q1", 0); len(cols) != 2 || cols[0] != "rating" {
		t.Errorf("q1 cols = %v", cols)
	}
	if cols := tableColumns("q2", 0); len(cols) != 3 || cols[2] != "cheap" {
		t.Errorf("q2 cols = %v", cols)
	}
	if cols := tableColumns("uniform", 3); len(cols) != 3 || cols[0] != "p1" || cols[2] != "p3" {
		t.Errorf("synthetic cols = %v", cols)
	}
}

func TestProjectColumns(t *testing.T) {
	ds, _, err := resolveTable("q2", 20, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Identity projection returns the same dataset.
	same, err := projectColumns(ds, []int{0, 1, 2})
	if err != nil || same != ds {
		t.Errorf("identity projection should be a no-op: %v", err)
	}
	// Reorder and subset.
	proj, err := projectColumns(ds, []int{2, 0})
	if err != nil {
		t.Fatal(err)
	}
	if proj.M() != 2 || proj.N() != ds.N() {
		t.Fatalf("projected %dx%d", proj.N(), proj.M())
	}
	for u := 0; u < ds.N(); u++ {
		if proj.Score(u, 0) != ds.Score(u, 2) || proj.Score(u, 1) != ds.Score(u, 0) {
			t.Fatal("projection scrambled scores")
		}
	}
	if proj.Label(0) != ds.Label(0) {
		t.Error("projection lost labels")
	}
}
