// Command benchtrend gates benchmark trend drift: it parses `go test
// -bench` output from stdin and compares every measured case against the
// committed BENCH_*.json baselines, failing when a case drifts beyond the
// tolerance. The nightly workflow runs the full benchmark suite at
// -benchtime 2s and pipes it through this tool, so a regression (or an
// unbelievable speedup — usually a broken benchmark) surfaces as a red
// run with the offending cases listed.
//
// Usage:
//
//	go test -bench . -benchtime 2s -run '^$' ./... | benchtrend -tolerance 0.25 BENCH_perf.json BENCH_share.json BENCH_obs.json
//
// Benchmark sub-case names map onto baseline case keys by dropping the
// Benchmark prefix and the -GOMAXPROCS suffix and flattening slashes:
// "BenchmarkServeThroughput/fixed/sequential-8" is case "fixed_sequential"
// of the file whose "benchmark" field is "BenchmarkServeThroughput".
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// baselineFile is the slice of a BENCH_*.json file benchtrend consumes.
type baselineFile struct {
	Benchmark string                        `json:"benchmark"`
	Cases     map[string]map[string]float64 `json:"cases"`
}

// measurement is one parsed benchmark output line.
type measurement struct {
	bench string // "BenchmarkServeThroughput"
	key   string // "fixed_sequential"
	nsOp  float64
}

var benchLine = regexp.MustCompile(`^(Benchmark\w+)/(\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op`)

// parseBench extracts the per-case ns/op measurements from `go test
// -bench` output. Unrecognized lines (headers, PASS, plain tests) are
// skipped; repeated cases (-count > 1) keep their fastest run, the
// conventional noise filter for trend comparison.
func parseBench(r io.Reader) ([]measurement, error) {
	best := map[string]measurement{}
	var order []string
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			return nil, fmt.Errorf("benchtrend: bad ns/op in %q: %w", sc.Text(), err)
		}
		key := strings.ReplaceAll(m[2], "/", "_")
		id := m[1] + "/" + key
		prev, seen := best[id]
		if !seen {
			order = append(order, id)
		}
		if !seen || ns < prev.nsOp {
			best[id] = measurement{bench: m[1], key: key, nsOp: ns}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	out := make([]measurement, 0, len(order))
	for _, id := range order {
		out = append(out, best[id])
	}
	return out, nil
}

// compare checks measurements against the baselines, writing one report
// line per matched case. It returns how many cases matched per baseline
// benchmark and how many drifted beyond the tolerance. Every baseline
// starts at zero in the returned map, so a baseline no measurement
// matched is visible to the caller — run turns that into a hard failure
// rather than letting a renamed benchmark silently disable its own gate.
func compare(w io.Writer, meas []measurement, baselines map[string]baselineFile, tolerance float64) (matched map[string]int, drifted int) {
	matched = make(map[string]int, len(baselines))
	for name := range baselines {
		matched[name] = 0
	}
	for _, m := range meas {
		bl, ok := baselines[m.bench]
		if !ok {
			continue
		}
		c, ok := bl.Cases[m.key]
		if !ok {
			fmt.Fprintf(w, "SKIP %s/%s: no committed baseline case\n", m.bench, m.key)
			continue
		}
		base := c["ns_per_op"]
		if base <= 0 {
			fmt.Fprintf(w, "SKIP %s/%s: baseline has no ns_per_op\n", m.bench, m.key)
			continue
		}
		matched[m.bench]++
		delta := (m.nsOp - base) / base
		status := "ok  "
		if delta > tolerance || delta < -tolerance {
			status = "DRIFT"
			drifted++
		}
		fmt.Fprintf(w, "%s %s/%s: %.0f ns/op vs baseline %.0f (%+.1f%%, tolerance ±%.0f%%)\n",
			status, m.bench, m.key, m.nsOp, base, delta*100, tolerance*100)
	}
	return matched, drifted
}

func run() error {
	tolerance := flag.Float64("tolerance", 0.25, "allowed relative drift from the committed ns_per_op")
	flag.Parse()
	if flag.NArg() == 0 {
		return fmt.Errorf("benchtrend: need at least one BENCH_*.json baseline file")
	}
	baselines := map[string]baselineFile{}
	paths := map[string]string{} // benchmark name -> baseline file, for error messages
	for _, path := range flag.Args() {
		raw, err := os.ReadFile(path)
		if err != nil {
			return fmt.Errorf("benchtrend: %w", err)
		}
		var bl baselineFile
		if err := json.Unmarshal(raw, &bl); err != nil {
			return fmt.Errorf("benchtrend: %s: %w", path, err)
		}
		if bl.Benchmark == "" || len(bl.Cases) == 0 {
			return fmt.Errorf("benchtrend: %s: missing benchmark name or cases", path)
		}
		if prev, dup := paths[bl.Benchmark]; dup {
			return fmt.Errorf("benchtrend: %s and %s both claim benchmark %s", prev, path, bl.Benchmark)
		}
		baselines[bl.Benchmark] = bl
		paths[bl.Benchmark] = path
	}
	meas, err := parseBench(os.Stdin)
	if err != nil {
		return err
	}
	matched, drifted := compare(os.Stdout, meas, baselines, *tolerance)
	// A baseline nothing matched is a hard failure, not a skip: a renamed
	// or dropped benchmark would otherwise disable its own trend gate and
	// the nightly would stay green while measuring nothing.
	var missing []string
	total := 0
	for name, count := range matched {
		if count == 0 {
			missing = append(missing, fmt.Sprintf("%s (%s)", name, paths[name]))
		}
		total += count
	}
	if len(missing) > 0 {
		sort.Strings(missing)
		return fmt.Errorf("benchtrend: no measured case matched baseline %s — renamed benchmark or wrong -bench selection?",
			strings.Join(missing, ", "))
	}
	if drifted > 0 {
		return fmt.Errorf("benchtrend: %d of %d cases drifted beyond ±%.0f%%", drifted, total, *tolerance*100)
	}
	fmt.Printf("benchtrend: %d cases within ±%.0f%% of committed baselines\n", total, *tolerance*100)
	return nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
