package main

import (
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: repro/internal/bench
BenchmarkServeThroughput/fixed/sequential-8         	    2000	    140000 ns/op	      7142 queries/s	    1049 B/op	      13 allocs/op
BenchmarkServeThroughput/fixed/sequential-8         	    2000	    138000 ns/op	      7246 queries/s	    1049 B/op	      13 allocs/op
BenchmarkServeThroughput/opt/cache-8                	    2000	    500000 ns/op	      2000 queries/s	    1592 B/op	      28 allocs/op
BenchmarkSharedThroughput/shared/parallel-8         	    2000	    163297 ns/op	         0.167 backend-accesses/query	      6124 queries/s	    1056 B/op	      13 allocs/op
PASS
`

func sampleBaselines() map[string]baselineFile {
	return map[string]baselineFile{
		"BenchmarkServeThroughput": {
			Benchmark: "BenchmarkServeThroughput",
			Cases: map[string]map[string]float64{
				"fixed_sequential": {"ns_per_op": 138616},
				"opt_cache":        {"ns_per_op": 139713},
			},
		},
		"BenchmarkSharedThroughput": {
			Benchmark: "BenchmarkSharedThroughput",
			Cases: map[string]map[string]float64{
				"shared_parallel": {"ns_per_op": 163297},
			},
		},
	}
}

func TestParseBench(t *testing.T) {
	meas, err := parseBench(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(meas) != 3 {
		t.Fatalf("parsed %d cases, want 3 (repeats collapse): %+v", len(meas), meas)
	}
	// Repeated cases keep the fastest run.
	if meas[0].bench != "BenchmarkServeThroughput" || meas[0].key != "fixed_sequential" || meas[0].nsOp != 138000 {
		t.Errorf("first case = %+v", meas[0])
	}
	if meas[2].key != "shared_parallel" {
		t.Errorf("third case = %+v", meas[2])
	}
}

func TestCompareFlagsDrift(t *testing.T) {
	meas, err := parseBench(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	var report strings.Builder
	matched, drifted := compare(&report, meas, sampleBaselines(), 0.25)
	if matched["BenchmarkServeThroughput"] != 2 || matched["BenchmarkSharedThroughput"] != 1 {
		t.Errorf("matched = %v, want 2 serve + 1 shared", matched)
	}
	// opt/cache measured 500000 vs baseline 139713: far outside ±25%.
	if drifted != 1 {
		t.Errorf("drifted = %d, want 1\n%s", drifted, report.String())
	}
	if !strings.Contains(report.String(), "DRIFT BenchmarkServeThroughput/opt_cache") {
		t.Errorf("report missing drift line:\n%s", report.String())
	}

	report.Reset()
	if _, drifted := compare(&report, meas, sampleBaselines(), 5.0); drifted != 0 {
		t.Errorf("generous tolerance should pass everything:\n%s", report.String())
	}
}

// TestCompareReportsUnmatchedBaseline is the regression test for the
// silent-skip bug: a baseline whose benchmark name no measurement
// carries (renamed bench, wrong -bench regex) must surface as a
// zero-match entry so run() can hard-fail instead of quietly gating
// nothing.
func TestCompareReportsUnmatchedBaseline(t *testing.T) {
	meas, err := parseBench(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	baselines := sampleBaselines()
	baselines["BenchmarkStoreAccess"] = baselineFile{
		Benchmark: "BenchmarkStoreAccess",
		Cases:     map[string]map[string]float64{"zipf_sorted": {"ns_per_op": 100}},
	}
	var report strings.Builder
	matched, _ := compare(&report, meas, baselines, 0.25)
	count, present := matched["BenchmarkStoreAccess"]
	if !present {
		t.Fatal("unmatched baseline missing from the match map entirely")
	}
	if count != 0 {
		t.Fatalf("unmatched baseline reports %d matches", count)
	}
	// The matched baselines are unaffected.
	if matched["BenchmarkServeThroughput"] != 2 {
		t.Fatalf("matched = %v", matched)
	}
}
