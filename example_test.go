package topk_test

import (
	"fmt"

	topk "repro"
)

// Example runs the default pipeline — optimize an SR/G configuration for
// the query and cost scenario, then execute Framework NC — and compares
// the bill with the Threshold Algorithm's.
func Example() {
	ds, err := topk.GenerateDataset("uniform", 1000, 2, 42)
	if err != nil {
		panic(err)
	}
	eng, err := topk.NewEngine(topk.DataBackend(ds), topk.UniformScenario(2, 1, 10))
	if err != nil {
		panic(err)
	}
	ans, err := eng.Run(topk.Query{F: topk.Min(), K: 3})
	if err != nil {
		panic(err)
	}
	for i, it := range ans.Items {
		fmt.Printf("%d. object %d scores %.4f\n", i+1, it.Obj, it.Score)
	}
	ta, err := eng.Run(topk.Query{F: topk.Min(), K: 3}, topk.WithAlgorithm("TA"))
	if err != nil {
		panic(err)
	}
	fmt.Printf("optimized cost %.0f vs TA %.0f\n", ans.TotalCost().Units(), ta.TotalCost().Units())
	// Output:
	// 1. object 9 scores 0.9417
	// 2. object 266 scores 0.9312
	// 3. object 599 scores 0.9243
	// optimized cost 144 vs TA 1510
}

// ExampleEngine_Run_budget shows anytime execution: cap the spend and take
// the best current answer when the budget runs dry.
func ExampleEngine_Run_budget() {
	ds, err := topk.GenerateDataset("uniform", 500, 2, 7)
	if err != nil {
		panic(err)
	}
	eng, err := topk.NewEngine(topk.DataBackend(ds), topk.UniformScenario(2, 1, 1))
	if err != nil {
		panic(err)
	}
	ans, err := eng.Run(topk.Query{F: topk.Avg(), K: 5},
		topk.WithNC([]float64{0.5, 0.5}, nil),
		topk.WithBudget(20))
	if err != nil {
		panic(err)
	}
	fmt.Printf("truncated: %v, items: %d, spent <= 20: %v\n",
		ans.Truncated, len(ans.Items), ans.TotalCost().Units() <= 20)
	// Output:
	// truncated: true, items: 5, spent <= 20: true
}

// ExampleEngine_Run_approximate trades a (1+epsilon) guarantee for cost in
// a sorted-only scenario.
func ExampleEngine_Run_approximate() {
	ds, err := topk.GenerateDataset("uniform", 500, 3, 9)
	if err != nil {
		panic(err)
	}
	scn := topk.Scenario{Name: "streams", Preds: []topk.PredCost{
		{Sorted: topk.CostOf(1), SortedOK: true},
		{Sorted: topk.CostOf(1), SortedOK: true},
		{Sorted: topk.CostOf(1), SortedOK: true},
	}}
	eng, err := topk.NewEngine(topk.DataBackend(ds), scn)
	if err != nil {
		panic(err)
	}
	exact, err := eng.Run(topk.Query{F: topk.Avg(), K: 5}, topk.WithNC([]float64{0, 0, 0}, nil))
	if err != nil {
		panic(err)
	}
	approx, err := eng.Run(topk.Query{F: topk.Avg(), K: 5},
		topk.WithNC([]float64{0, 0, 0}, nil), topk.WithApproximation(0.5))
	if err != nil {
		panic(err)
	}
	fmt.Printf("approximate run is cheaper: %v\n", approx.TotalCost() < exact.TotalCost())
	// Output:
	// approximate run is cheaper: true
}
