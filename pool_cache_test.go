package topk

import (
	"reflect"
	"sync"
	"testing"
)

// TestPooledRunsMatchFreshEngine hammers one engine with repeated and
// varied queries (so its session/scratch pool is actually recycled) and
// checks every answer and ledger is byte-identical to a fresh engine's.
func TestPooledRunsMatchFreshEngine(t *testing.T) {
	ds := mustGenerateDataset(t, "correlated", 400, 2, 17)
	scn := UniformScenario(2, 1, 5)
	hot, err := NewEngine(DataBackend(ds), scn)
	if err != nil {
		t.Fatal(err)
	}
	queries := []struct {
		q    Query
		opts []RunOption
	}{
		{Query{F: Avg(), K: 5}, []RunOption{WithNC([]float64{0.5, 0.5}, nil)}},
		{Query{F: Avg(), K: 5}, []RunOption{WithNC([]float64{0.5, 0.5}, nil)}},
		{Query{F: Min(), K: 3}, []RunOption{WithNC([]float64{0.8, 0.2}, nil)}},
		{Query{F: Avg(), K: 10}, nil}, // optimizer path
		{Query{F: Avg(), K: 2}, []RunOption{WithAlgorithm("TA")}},
		{Query{F: Avg(), K: 2}, []RunOption{WithAlgorithm("NRA")}},
		{Query{F: Avg(), K: 5}, []RunOption{WithBudget(4), WithNC([]float64{0.5, 0.5}, nil)}},
	}
	for round := 0; round < 3; round++ {
		for i, tc := range queries {
			got, err := hot.Run(tc.q, tc.opts...)
			if err != nil {
				t.Fatalf("round %d query %d: %v", round, i, err)
			}
			cold, err := NewEngine(DataBackend(ds), scn)
			if err != nil {
				t.Fatal(err)
			}
			want, err := cold.Run(tc.q, tc.opts...)
			if err != nil {
				t.Fatalf("round %d query %d (fresh): %v", round, i, err)
			}
			if !reflect.DeepEqual(got.Items, want.Items) {
				t.Errorf("round %d query %d: pooled items %+v, fresh %+v", round, i, got.Items, want.Items)
			}
			if !reflect.DeepEqual(got.Ledger, want.Ledger) {
				t.Errorf("round %d query %d: pooled ledger %+v, fresh %+v", round, i, got.Ledger, want.Ledger)
			}
			if got.Truncated != want.Truncated {
				t.Errorf("round %d query %d: truncated %v vs %v", round, i, got.Truncated, want.Truncated)
			}
		}
	}
}

// TestPooledRunsConcurrent exercises the pool under parallel Runs with the
// race detector; every answer must equal the oracle.
func TestPooledRunsConcurrent(t *testing.T) {
	ds := mustGenerateDataset(t, "uniform", 300, 2, 23)
	eng, err := NewEngine(DataBackend(ds), UniformScenario(2, 1, 2))
	if err != nil {
		t.Fatal(err)
	}
	want := TopKOracle(ds, Avg(), 5)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				ans, err := eng.Run(Query{F: Avg(), K: 5}, WithNC([]float64{0.5, 0.5}, nil))
				if err != nil {
					t.Error(err)
					return
				}
				if !reflect.DeepEqual(ans.Items, want) {
					t.Errorf("concurrent pooled run diverged: %+v vs %+v", ans.Items, want)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestEnginePlanCache checks WithPlanCache: the second identical Run
// reuses the first's plan (one miss, then hits), answers are unchanged,
// and a second engine sharing the cache also hits.
func TestEnginePlanCache(t *testing.T) {
	ds := mustGenerateDataset(t, "uniform", 300, 2, 7)
	scn := UniformScenario(2, 1, 5)
	cache := NewPlanCache(16)
	eng, err := NewEngine(DataBackend(ds), scn, WithPlanCache(cache))
	if err != nil {
		t.Fatal(err)
	}
	cfg := OptimizerConfig{Grid: 5, SampleSize: 20, Restarts: 2}
	first, err := eng.Run(Query{F: Avg(), K: 5}, WithOptimizer(cfg))
	if err != nil {
		t.Fatal(err)
	}
	second, err := eng.Run(Query{F: Avg(), K: 5}, WithOptimizer(cfg))
	if err != nil {
		t.Fatal(err)
	}
	if st := cache.Stats(); st.Misses != 1 || st.Hits != 1 {
		t.Errorf("cache stats = %+v, want 1 miss / 1 hit", st)
	}
	if !reflect.DeepEqual(first.Items, second.Items) || !reflect.DeepEqual(first.Plan, second.Plan) {
		t.Errorf("cached plan changed the answer: %+v vs %+v", first, second)
	}
	if !reflect.DeepEqual(first.Items, TopKOracle(ds, Avg(), 5)) {
		t.Errorf("answer diverges from oracle: %+v", first.Items)
	}

	other, err := NewEngine(DataBackend(ds), scn, WithPlanCache(cache))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := other.Run(Query{F: Avg(), K: 5}, WithOptimizer(cfg)); err != nil {
		t.Fatal(err)
	}
	if st := cache.Stats(); st.Hits != 2 {
		t.Errorf("shared cache should hit across engines, stats = %+v", st)
	}
	// A different k is a different planning problem.
	if _, err := eng.Run(Query{F: Avg(), K: 6}, WithOptimizer(cfg)); err != nil {
		t.Fatal(err)
	}
	if st := cache.Stats(); st.Misses != 2 {
		t.Errorf("changed k should miss, stats = %+v", st)
	}
}
