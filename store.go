package topk

import (
	"context"
	"fmt"

	"repro/internal/data"
	"repro/internal/store"
)

// Disk-backed storage facade. A Store is an access.Backend whose cost
// asymmetry is physical — sorted access amortizes block reads, random
// access pays a positioned read per probe — and is therefore the backend
// to *measure* (cs, cr) against instead of assuming them. See
// internal/store for the on-disk format and DESIGN.md §16 for the
// calibration protocol.
type (
	// Store is a read-only disk-backed Backend over a store directory.
	Store = store.Store
	// StoreOptions tunes OpenStore (block-cache budget).
	StoreOptions = store.Options
	// StoreWriterOptions tunes BuildStore (block granularity, generator
	// version stamp).
	StoreWriterOptions = store.WriterOptions
	// StoreStats snapshots a store's physical IO counters.
	StoreStats = store.Stats
	// StoreCalibration is an IO-measured access cost model: quantized
	// milliseconds per sorted and per random access.
	StoreCalibration = store.Calibration
	// StoreMeasureOptions tunes MeasureStore (probes per batch, batches,
	// cold mode).
	StoreMeasureOptions = store.MeasureOptions
)

// ErrStoreCorrupt reports a store directory that failed validation on
// open: missing or truncated files, checksum or fence-order damage. The
// store refuses loudly instead of serving bytes it cannot vouch for.
var ErrStoreCorrupt = store.ErrCorrupt

// BuildStore generates a dataset of a named distribution ("uniform",
// "zipf", "correlated", ...) directly into store format at dir, streaming
// one object row at a time — n=10^6 and beyond never materialize in
// memory. The result serves bit-identical scores and sorted orders to
// GenerateDataset with the same parameters.
func BuildStore(dir, dist string, n, m int, seed int64, opts StoreWriterOptions) error {
	d, err := data.DistributionByName(dist)
	if err != nil {
		return err
	}
	return store.WriteStream(dir, d, n, m, seed, opts)
}

// BuildStoreFromDataset writes an in-memory dataset to store format.
func BuildStoreFromDataset(dir string, ds *Dataset, opts StoreWriterOptions) error {
	return store.WriteDataset(dir, ds, opts)
}

// OpenStore validates and opens a store directory built by BuildStore.
// Damage surfaces as ErrStoreCorrupt; rebuilding is always safe.
func OpenStore(dir string, opts StoreOptions) (*Store, error) {
	return store.Open(dir, opts)
}

// MeasureStore times sorted and random accesses against a backend
// (batched, median-of-batches) and returns quantized per-access costs in
// milliseconds. Use the result with CalibratedScenario and WithStore.
func MeasureStore(ctx context.Context, b Backend, opts StoreMeasureOptions) (StoreCalibration, error) {
	return store.Measure(ctx, b, opts)
}

// CalibratedScenario prices all m predicates at a measured calibration:
// cs = cal.SortedMS, cr = cal.RandomMS, in milliseconds-as-units. This is
// the paper's uniform-cost scenario with the assumption replaced by
// measurement.
func CalibratedScenario(m int, cal StoreCalibration) Scenario {
	scn := UniformScenario(m, cal.SortedMS, cal.RandomMS)
	scn.Name = fmt.Sprintf("calibrated(%s)", cal.Key())
	return scn
}

// WithStore declares the engine serves a disk store priced by the given
// calibration: the store's identity and the quantized measured costs join
// the plan-cache fingerprint (OptimizerConfig.StorageKey), so plans
// priced under one calibration are not replayed after a re-calibration —
// new hardware, warm vs cold mode — moves the physics, while repeat
// calibrations of unchanged physics stay cache hits. It does not replace
// the engine's backend; pass the store (or a layer over it) to NewEngine
// as usual.
func WithStore(s *Store, cal StoreCalibration) EngineOption {
	return func(e *Engine) {
		e.storageKey = fmt.Sprintf("%s@%s", s.Name(), cal.Key())
	}
}
