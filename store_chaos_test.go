package topk

// Chaos row for the disk store: the Figure-2 matrix is driven against a
// real store directory wrapped in the deterministic fault injector —
// failing, slow, and hanging reads, plus one permanent predicate outage —
// under the fault-tolerant engine configuration. The contract is the
// chaos capstone's, now with physical IO underneath: every query returns
// the exact top-k or an explicitly degraded (Truncated + reasons)
// answer, no hangs, no panics, and the per-predicate access counts in
// the trace equal the billed ledger exactly — faults must not cause
// billing drift between what the trace saw and what the session charged.

import (
	"context"
	"fmt"
	"math"
	"testing"
	"time"

	"repro/internal/fault"
)

func TestChaosStoreIO(t *testing.T) {
	const (
		n        = 60
		m        = 3
		k        = 5
		deadline = 20 * time.Second
	)
	seeds := []int64{1, 7}
	exactCount, degradedCount := 0, 0
	for _, cell := range figure2Cells(m, 10) {
		for _, seed := range seeds {
			ds := mustGenerateDataset(t, "uniform", n, m, seed)
			st := newTestStore(t, "uniform", n, m, seed)
			for profile, pr := range chaosProfiles(seed) {
				t.Run(fmt.Sprintf("%s/seed%d/%s", cell.name, seed, profile), func(t *testing.T) {
					breakers := NewBreakerSet(m, pr.breaker)
					eng, err := NewEngine(fault.Wrap(st, pr.faults), cell.scn)
					if err != nil {
						t.Fatal(err)
					}
					ctx, cancel := context.WithTimeout(context.Background(), deadline)
					defer cancel()
					start := time.Now()
					ans, err := eng.Run(Query{F: Min(), K: k},
						WithContext(ctx),
						WithTrace(),
						WithResilience(&Resilience{
							Breakers:      breakers,
							AccessTimeout: 50 * time.Millisecond,
						}))
					elapsed := time.Since(start)
					if err != nil {
						t.Fatalf("store chaos run errored (must degrade instead): %v", err)
					}
					if elapsed >= deadline {
						t.Fatalf("query overran its deadline: %v", elapsed)
					}
					// Trace==ledger: what the trace counted per predicate is
					// exactly what the session billed, faults or not.
					for i := range ans.Ledger.SortedCounts {
						st, rt := 0, 0
						if i < len(ans.Trace.SortedAccesses) {
							st = ans.Trace.SortedAccesses[i]
						}
						if i < len(ans.Trace.RandomAccesses) {
							rt = ans.Trace.RandomAccesses[i]
						}
						if st != ans.Ledger.SortedCounts[i] || rt != ans.Ledger.RandomCounts[i] {
							t.Fatalf("trace (%d,%d) vs ledger (%d,%d) at pred %d",
								st, rt, ans.Ledger.SortedCounts[i], ans.Ledger.RandomCounts[i], i)
						}
					}
					if ans.Truncated {
						if len(ans.Degraded) == 0 {
							t.Fatal("truncated answer carries no degraded reasons")
						}
						for _, it := range ans.Items {
							if it.Exact {
								truth := Min().Eval(ds.Scores(it.Obj))
								if math.Abs(it.Score-truth) > 1e-9 {
									t.Fatalf("degraded answer lies: object %d exact %g, truth %g", it.Obj, it.Score, truth)
								}
							}
						}
						degradedCount++
						return
					}
					if len(ans.Degraded) != 0 {
						t.Fatalf("exact answer carries degraded reasons %v", ans.Degraded)
					}
					assertExactTopK(t, ds, Min(), k, ans)
					exactCount++
				})
			}
		}
	}
	if exactCount == 0 {
		t.Error("no store chaos run recovered to an exact answer")
	}
	if degradedCount == 0 {
		t.Error("no store chaos run degraded explicitly")
	}
}
