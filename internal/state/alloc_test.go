package state

import (
	"testing"

	"repro/internal/data"
	"repro/internal/data/datatest"
	"repro/internal/score"
)

// The score-state layer is the per-access bookkeeping every algorithm
// pays; after the typed-heap rewrite its hot operations must stay
// allocation-free on warm structures. testing.AllocsPerRun guards keep
// interface boxing or map churn from creeping back in.

func TestQueueOpsZeroAlloc(t *testing.T) {
	n, m := 512, 3
	ds := datatest.MustGenerate(data.Uniform, n, m, 11)
	tab := MustNewTable(n, m, score.Avg())
	for i := 0; i < m; i++ {
		for r := 0; r < n; r++ {
			obj, s := ds.SortedAt(i, r)
			tab.ObserveSorted(i, obj, s)
		}
	}
	q := NewQueue(tab, false)
	// Warm the heap and scratch to their high-water marks.
	_ = q.TopN(n)

	if allocs := testing.AllocsPerRun(100, func() {
		e, ok := q.Pop()
		if !ok {
			t.Fatal("queue drained")
		}
		q.Add(e.ID)
	}); allocs != 0 {
		t.Errorf("pop+push on a warm queue allocates %.1f/op, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(100, func() {
		if _, ok := q.Peek(); !ok { // Peek revalidates the top
			t.Fatal("queue drained")
		}
	}); allocs != 0 {
		t.Errorf("peek/revalidate allocates %.1f/op, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(100, func() {
		if got := q.TopN(8); len(got) != 8 {
			t.Fatalf("TopN = %d entries", len(got))
		}
	}); allocs != 0 {
		t.Errorf("TopN on a warm queue allocates %.1f/op, want 0", allocs)
	}
}

func TestQueueRevalidationZeroAlloc(t *testing.T) {
	// Lazy revalidation is the churn path: stale tops are re-sifted in
	// place, never reboxed through an interface.
	n := 256
	ds := datatest.MustGenerate(data.Uniform, n, 2, 5)
	tab := MustNewTable(n, 2, score.Avg())
	q := NewQueue(tab, false)
	probed := 0
	if allocs := testing.AllocsPerRun(100, func() {
		// Each probe staleness-invalidates the queue top's cached bound.
		u := probed % n
		if !tab.Known(u, 0) {
			tab.ObserveRandom(0, u, ds.Score(u, 0))
		}
		probed++
		if _, ok := q.Peek(); !ok {
			t.Fatal("queue drained")
		}
	}); allocs != 0 {
		t.Errorf("revalidation after probes allocates %.1f/op, want 0", allocs)
	}
}

func TestTableObserveZeroAlloc(t *testing.T) {
	n, m := 512, 2
	ds := datatest.MustGenerate(data.Uniform, n, m, 3)
	tab := MustNewTable(n, m, score.Avg())
	rank, probe := 0, 0
	if allocs := testing.AllocsPerRun(100, func() {
		obj, s := ds.SortedAt(0, rank%n)
		rank++
		tab.ObserveSorted(0, obj, s)
	}); allocs != 0 {
		t.Errorf("ObserveSorted allocates %.1f/op, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(100, func() {
		u := probe % n
		probe++
		tab.ObserveRandom(1, u, ds.Score(u, 1))
	}); allocs != 0 {
		t.Errorf("ObserveRandom allocates %.1f/op, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(100, func() {
		_ = tab.Upper(7)
		_ = tab.Lower(7)
		_ = tab.UnseenUpper()
	}); allocs != 0 {
		t.Errorf("bound computation allocates %.1f/op, want 0", allocs)
	}
}

func TestTableResetMatchesFresh(t *testing.T) {
	n, m := 64, 2
	ds := datatest.MustGenerate(data.Gaussian, n, m, 8)
	used := MustNewTable(n, m, score.Min())
	for r := 0; r < n/2; r++ {
		obj, s := ds.SortedAt(0, r)
		used.ObserveSorted(0, obj, s)
	}
	used.ObserveRandom(1, 3, ds.Score(3, 1))
	if err := used.Reset(score.Avg()); err != nil {
		t.Fatal(err)
	}
	fresh := MustNewTable(n, m, score.Avg())
	for u := 0; u < n; u++ {
		if used.Upper(u) != fresh.Upper(u) || used.Lower(u) != fresh.Lower(u) {
			t.Fatalf("object %d bounds diverge after Reset", u)
		}
		if used.Seen(u) || used.KnownCount(u) != 0 {
			t.Fatalf("object %d retains state after Reset", u)
		}
	}
	for i := 0; i < m; i++ {
		if used.LastSeen(i) != 1 || used.Depth(i) != 0 {
			t.Fatalf("predicate %d retains state after Reset", i)
		}
	}
	if used.SeenCount() != 0 || used.AllSeen() {
		t.Fatal("seen bookkeeping retained after Reset")
	}
	if used.Func().Name() != "avg" {
		t.Fatalf("Reset should swap the scoring function, got %s", used.Func().Name())
	}
	if err := used.Reset(score.Weighted(1, 2, 3)); err == nil {
		t.Fatal("Reset with an arity-mismatched function should fail")
	}
}

func TestQueueResetMatchesFresh(t *testing.T) {
	tab := MustNewTable(8, 1, score.Min())
	q := NewQueue(tab, false)
	for i := 0; i < 5; i++ {
		q.Pop()
	}
	q.Reset(tab, true)
	if q.Len() != 1 {
		t.Fatalf("reset NWG queue len = %d, want 1", q.Len())
	}
	if e, ok := q.Peek(); !ok || e.ID != UnseenID {
		t.Fatalf("reset NWG queue top = %+v, %v", e, ok)
	}
	q.Reset(tab, false)
	if q.Len() != 8 || q.Contains(UnseenID) {
		t.Fatalf("reset open queue len = %d (unseen=%v)", q.Len(), q.Contains(UnseenID))
	}
}
