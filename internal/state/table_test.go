package state

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/data"
	"repro/internal/data/datatest"
	"repro/internal/score"
)

// fig3 reproduces the paper's Dataset 1 (Figure 3) score state walkthrough
// of Example 7: after sa1, sa1, sa2, ra1(u1) the state is
//
//	u1: p1=.6  p2<=.9   F-bar=.6   (F = min)
//	u2: p1=.65 p2<=.9   F-bar=.65
//	u3: p1=.7  p2=.9    (u3 seen at rank 0 of p1)
//
// We map u1,u2,u3 to OIDs 0,1,2 as in the access tests.
func fig3() *data.Dataset {
	return datatest.MustNew("fig3", [][]float64{
		{0.6, 0.8},
		{0.65, 0.8},
		{0.7, 0.9},
	})
}

func TestTableExample7State(t *testing.T) {
	ds := fig3()
	tab := MustNewTable(3, 2, score.Min())

	// P = {sa1, sa1, sa2, ra1(u1)} in the paper's numbering; here the two
	// sorted accesses on p1 hit u3(.7) then u2(.65), sa2 hits u3(.9), and
	// we probe p1 of object 0 (paper's u1) to get .6.
	obj, s := ds.SortedAt(0, 0)
	tab.ObserveSorted(0, obj, s) // u3, .7
	obj, s = ds.SortedAt(0, 1)
	tab.ObserveSorted(0, obj, s) // u2, .65
	obj, s = ds.SortedAt(1, 0)
	tab.ObserveSorted(1, obj, s) // u3, .9
	tab.ObserveRandom(0, 0, ds.Score(0, 0))

	if got := tab.LastSeen(0); got != 0.65 {
		t.Errorf("ell_1 = %g, want 0.65", got)
	}
	if got := tab.LastSeen(1); got != 0.9 {
		t.Errorf("ell_2 = %g, want 0.9", got)
	}
	// u3 (OID 2) complete with exact min(.7,.9) = .7.
	if !tab.Complete(2) {
		t.Fatal("u3 should be complete")
	}
	if ex, ok := tab.Exact(2); !ok || math.Abs(ex-0.7) > 1e-12 {
		t.Errorf("F(u3) = %g, want 0.7", ex)
	}
	// u2 (OID 1): p1 known .65, p2 bounded by .9 -> F-bar = .65.
	if got := tab.Upper(1); math.Abs(got-0.65) > 1e-12 {
		t.Errorf("F-bar(u2) = %g, want 0.65", got)
	}
	// u1 (OID 0): p1 probed .6 -> F-bar = min(.6,.9) = .6.
	if got := tab.Upper(0); math.Abs(got-0.6) > 1e-12 {
		t.Errorf("F-bar(u1) = %g, want 0.6", got)
	}
	// Lower bounds: unknowns -> 0.
	if got := tab.Lower(1); got != 0 {
		t.Errorf("F-floor(u2) = %g, want 0 under min", got)
	}
	if got := tab.Lower(2); math.Abs(got-0.7) > 1e-12 {
		t.Errorf("F-floor(u3) = %g, want 0.7 (complete)", got)
	}
	// Unseen bound: F(ell) = min(.65,.9) = .65.
	if got := tab.UnseenUpper(); math.Abs(got-0.65) > 1e-12 {
		t.Errorf("unseen upper = %g, want 0.65", got)
	}
	// Seen bookkeeping: u2,u3 seen via sorted, u1 (0) only probed.
	if tab.Seen(0) || !tab.Seen(1) || !tab.Seen(2) {
		t.Error("seen flags wrong")
	}
	if tab.SeenCount() != 2 || tab.AllSeen() {
		t.Errorf("seen count = %d", tab.SeenCount())
	}
	if tab.Depth(0) != 2 || tab.Depth(1) != 1 {
		t.Errorf("depths = %d,%d", tab.Depth(0), tab.Depth(1))
	}
	// Unknown predicates of u1 (OID 0): p2 only.
	if got := tab.UnknownPreds(0, nil); len(got) != 1 || got[0] != 1 {
		t.Errorf("unknown preds of u1 = %v", got)
	}
	if got := tab.UnknownPreds(2, nil); len(got) != 0 {
		t.Errorf("unknown preds of u3 = %v", got)
	}
}

func TestTableValidation(t *testing.T) {
	if _, err := NewTable(0, 2, score.Min()); err == nil {
		t.Error("n=0 should fail")
	}
	if _, err := NewTable(2, 0, score.Min()); err == nil {
		t.Error("m=0 should fail")
	}
	if _, err := NewTable(2, 3, score.Weighted(1, 2)); err == nil {
		t.Error("arity mismatch should fail")
	}
}

func TestValuePanicsWhenUnknown(t *testing.T) {
	tab := MustNewTable(2, 2, score.Avg())
	defer func() {
		if recover() == nil {
			t.Error("Value of unknown score should panic")
		}
	}()
	tab.Value(0, 0)
}

func TestExactRequiresComplete(t *testing.T) {
	tab := MustNewTable(1, 2, score.Avg())
	if _, ok := tab.Exact(0); ok {
		t.Error("incomplete object must not report exact score")
	}
	tab.ObserveRandom(0, 0, 0.5)
	tab.ObserveRandom(1, 0, 0.7)
	if ex, ok := tab.Exact(0); !ok || math.Abs(ex-0.6) > 1e-12 {
		t.Errorf("exact = %g,%v", ex, ok)
	}
}

// TestBoundInvariantsProperty drives a table with a random legal access
// sequence over a random dataset and checks, after every access, that
// F-floor(u) <= F(u) <= F-bar(u), that uppers never increase, and that
// lowers never decrease.
func TestBoundInvariantsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	funcs := []score.Func{score.Min(), score.Avg(), score.Max(), score.Product()}
	prop := func(seed int64, fIdx uint8) bool {
		n, m := 12, 3
		ds := datatest.MustGenerate(data.Uniform, n, m, seed)
		f := funcs[int(fIdx)%len(funcs)]
		tab := MustNewTable(n, m, f)
		local := rand.New(rand.NewSource(seed ^ 0x5eed))

		prevUp := make([]float64, n)
		prevLo := make([]float64, n)
		for u := 0; u < n; u++ {
			prevUp[u] = tab.Upper(u)
			prevLo[u] = tab.Lower(u)
		}
		cursor := make([]int, m)
		for step := 0; step < 40; step++ {
			if local.Intn(2) == 0 {
				i := local.Intn(m)
				if cursor[i] < n {
					obj, s := ds.SortedAt(i, cursor[i])
					cursor[i]++
					tab.ObserveSorted(i, obj, s)
				}
			} else {
				u, i := local.Intn(n), local.Intn(m)
				tab.ObserveRandom(i, u, ds.Score(u, i))
			}
			for u := 0; u < n; u++ {
				up, lo := tab.Upper(u), tab.Lower(u)
				truth := f.Eval(ds.Scores(u))
				if lo > truth+1e-12 || truth > up+1e-12 {
					return false
				}
				if up > prevUp[u]+1e-12 || lo < prevLo[u]-1e-12 {
					return false
				}
				prevUp[u], prevLo[u] = up, lo
			}
			// Every truly unseen object is bounded by the unseen upper.
			uu := tab.UnseenUpper()
			for u := 0; u < n; u++ {
				if !tab.Seen(u) {
					// Its p_i from sorted lists are unknown, so Upper(u)
					// uses ell everywhere except probed predicates.
					if tab.KnownCount(u) == 0 && math.Abs(tab.Upper(u)-uu) > 1e-12 {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40, Rand: rng}); err != nil {
		t.Error(err)
	}
}
