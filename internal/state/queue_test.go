package state

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/data"
	"repro/internal/data/datatest"
	"repro/internal/score"
)

func TestQueueInitialNWG(t *testing.T) {
	tab := MustNewTable(3, 2, score.Min())
	q := NewQueue(tab, true)
	if q.Len() != 1 {
		t.Fatalf("NWG queue should start with only the unseen entry, len=%d", q.Len())
	}
	e, ok := q.Peek()
	if !ok || e.ID != UnseenID || e.Upper != 1 {
		t.Fatalf("top = %+v, %v", e, ok)
	}
}

func TestQueueInitialOpen(t *testing.T) {
	tab := MustNewTable(3, 2, score.Min())
	q := NewQueue(tab, false)
	if q.Len() != 3 {
		t.Fatalf("open queue len = %d", q.Len())
	}
	// All uppers tie at 1.0; higher OID wins (paper Example 9 picked u3).
	e, _ := q.Peek()
	if e.ID != 2 {
		t.Errorf("tie-break top = %d, want 2", e.ID)
	}
}

func TestQueueLazyRevalidation(t *testing.T) {
	ds := datatest.MustNew("d", [][]float64{
		{0.9, 0.2},
		{0.5, 0.9},
		{0.3, 0.4},
	})
	tab := MustNewTable(3, 2, score.Avg())
	q := NewQueue(tab, false)

	// Drop object 2's bound via probes: exact avg(.3,.4)=.35.
	tab.ObserveRandom(0, 2, ds.Score(2, 0))
	tab.ObserveRandom(1, 2, ds.Score(2, 1))
	// Probe object 0 partially: p1=.9 -> upper avg(.9, 1) = .95.
	tab.ObserveRandom(0, 0, ds.Score(0, 0))

	e, _ := q.Pop()
	if e.ID != 1 || e.Upper != 1 { // untouched object keeps the perfect bound
		t.Fatalf("first pop = %+v, want object 1 at 1.0", e)
	}
	e, _ = q.Pop()
	if e.ID != 0 || math.Abs(e.Upper-0.95) > 1e-12 {
		t.Fatalf("second pop = %+v, want object 0 at 0.95", e)
	}
	e, _ = q.Pop()
	if e.ID != 2 || math.Abs(e.Upper-0.35) > 1e-12 {
		t.Fatalf("third pop = %+v, want object 2 at 0.35", e)
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("queue should be empty")
	}
}

func TestQueueUnseenDropsWhenAllSeen(t *testing.T) {
	tab := MustNewTable(2, 1, score.Min())
	q := NewQueue(tab, true)
	tab.ObserveSorted(0, 1, 0.8)
	q.Add(1)
	tab.ObserveSorted(0, 0, 0.6)
	q.Add(0)
	if !tab.AllSeen() {
		t.Fatal("all seen expected")
	}
	ids := []int{}
	for {
		e, ok := q.Pop()
		if !ok {
			break
		}
		ids = append(ids, e.ID)
	}
	if len(ids) != 2 || ids[0] != 1 || ids[1] != 0 {
		t.Fatalf("pops = %v, want [1 0] with unseen dropped", ids)
	}
}

func TestQueueAddIdempotent(t *testing.T) {
	tab := MustNewTable(3, 1, score.Min())
	q := NewQueue(tab, true)
	tab.ObserveSorted(0, 1, 0.9)
	q.Add(1)
	q.Add(1)
	if q.Len() != 2 { // unseen + object 1
		t.Fatalf("len = %d, want 2", q.Len())
	}
	if !q.Contains(1) || q.Contains(0) {
		t.Error("Contains bookkeeping wrong")
	}
}

func TestQueueAddUnseenPanics(t *testing.T) {
	tab := MustNewTable(1, 1, score.Min())
	q := NewQueue(tab, true)
	defer func() {
		if recover() == nil {
			t.Error("Add(UnseenID) should panic")
		}
	}()
	q.Add(UnseenID)
}

func TestTopNPreservesQueue(t *testing.T) {
	tab := MustNewTable(5, 1, score.Min())
	q := NewQueue(tab, false)
	for u := 0; u < 5; u++ {
		tab.ObserveRandom(0, u, float64(u)/10)
	}
	top := q.TopN(3)
	if len(top) != 3 || top[0].ID != 4 || top[1].ID != 3 || top[2].ID != 2 {
		t.Fatalf("TopN = %+v", top)
	}
	if q.Len() != 5 {
		t.Fatalf("TopN must not shrink the queue: len=%d", q.Len())
	}
	again := q.TopN(3)
	for i := range top {
		if again[i] != top[i] {
			t.Fatal("TopN not repeatable")
		}
	}
	if got := q.TopN(0); got != nil {
		t.Error("TopN(0) should be nil")
	}
	if got := q.TopN(99); len(got) != 5 {
		t.Errorf("TopN(99) len = %d", len(got))
	}
}

// TestQueueMatchesSortedScan cross-checks queue pops against a full sort
// under random partial information.
func TestQueueMatchesSortedScan(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		n, m := 25, 3
		ds := datatest.MustGenerate(data.Gaussian, n, m, seed)
		tab := MustNewTable(n, m, score.Avg())
		rng := rand.New(rand.NewSource(seed))
		cursor := make([]int, m)
		for step := 0; step < 30; step++ {
			i := rng.Intn(m)
			if cursor[i] < n {
				obj, s := ds.SortedAt(i, cursor[i])
				cursor[i]++
				tab.ObserveSorted(i, obj, s)
			}
		}
		q := NewQueue(tab, false)
		type us struct {
			id int
			up float64
		}
		want := make([]us, n)
		for u := 0; u < n; u++ {
			want[u] = us{u, tab.Upper(u)}
		}
		sort.Slice(want, func(a, b int) bool {
			if want[a].up != want[b].up {
				return want[a].up > want[b].up
			}
			return want[a].id > want[b].id
		})
		for i := 0; i < n; i++ {
			e, ok := q.Pop()
			if !ok {
				t.Fatalf("seed %d: queue drained early at %d", seed, i)
			}
			if e.ID != want[i].id || math.Abs(e.Upper-want[i].up) > 1e-12 {
				t.Fatalf("seed %d: pop %d = %+v, want %+v", seed, i, e, want[i])
			}
		}
	}
}

func TestQueueString(t *testing.T) {
	tab := MustNewTable(1, 1, score.Min())
	q := NewQueue(tab, true)
	if q.String() == "" {
		t.Error("String should describe the queue")
	}
}
