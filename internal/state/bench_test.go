package state

import (
	"testing"

	"repro/internal/data"
	"repro/internal/data/datatest"
	"repro/internal/score"
)

// Benchmarks for the score-state layer: bound computation and queue
// maintenance are the per-access bookkeeping every algorithm pays, so
// their constants matter for large-n simulation runs.

func seededTable(b *testing.B, n, m int) (*Table, *data.Dataset) {
	b.Helper()
	ds := datatest.MustGenerate(data.Uniform, n, m, 7)
	tab := MustNewTable(n, m, score.Avg())
	// Partially observe: half of each sorted list plus scattered probes.
	for i := 0; i < m; i++ {
		for r := 0; r < n/2; r++ {
			obj, s := ds.SortedAt(i, r)
			tab.ObserveSorted(i, obj, s)
		}
	}
	for u := 0; u < n; u += 3 {
		tab.ObserveRandom(0, u, ds.Score(u, 0))
	}
	return tab, ds
}

func BenchmarkTableUpper(b *testing.B) {
	tab, _ := seededTable(b, 1000, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = tab.Upper(i % tab.N())
	}
}

func BenchmarkTableObserveSorted(b *testing.B) {
	ds := datatest.MustGenerate(data.Uniform, 1000, 2, 9)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab := MustNewTable(1000, 2, score.Avg())
		for r := 0; r < 1000; r++ {
			obj, s := ds.SortedAt(0, r)
			tab.ObserveSorted(0, obj, s)
		}
	}
}

func BenchmarkQueuePopAll(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		tab, _ := seededTable(b, 1000, 3)
		q := NewQueue(tab, false)
		b.StartTimer()
		for {
			if _, ok := q.Pop(); !ok {
				break
			}
		}
	}
}

func BenchmarkQueueTopN(b *testing.B) {
	tab, _ := seededTable(b, 1000, 3)
	q := NewQueue(tab, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = q.TopN(10)
	}
}
