// Package state implements the score-state bookkeeping that top-k
// middleware algorithms share: per-object partial scores gathered from
// accesses, last-seen bounds from sorted accesses, maximal-possible and
// minimal-possible overall scores, seen/unseen tracking with the virtual
// "unseen" object of Section 8 (Figure 10), and a lazily-revalidated
// priority queue of candidates ordered by maximal-possible score — the
// mechanism Theorem 1 calls for to find unsatisfied scoring tasks.
package state

import (
	"fmt"

	"repro/internal/score"
)

// UnseenID is the pseudo object id of the virtual "unseen" object that
// represents all objects not yet returned by any sorted access (Section 8).
const UnseenID = -1

// Table tracks everything an algorithm knows about object scores at a
// point in time. It is pure bookkeeping: algorithms perform accesses
// through an access.Session and feed the results in via ObserveSorted and
// ObserveRandom. Not safe for concurrent use. Tables are recycled across
// queries inside the pooled algo.Scratch.
//
//topklint:pooled
type Table struct {
	f    score.Func //topklint:allow resetcomplete Reset(nil) deliberately keeps the scoring function; non-nil swaps it
	n, m int        //topklint:allow resetcomplete identity: a recycled table serves the same n-by-m shape

	val      []float64 //topklint:allow resetcomplete stale values are unreachable: known gates every read and is cleared
	known    []bool
	nknown   []int // per-object count of known predicates
	lastSeen []float64
	depth    []int // sorted accesses performed per predicate
	seen     []bool
	nseen    int

	buf []float64 //topklint:allow resetcomplete Eval scratch, fully overwritten before every read
}

// NewTable creates an empty table for n objects, m predicates, and scoring
// function f. All last-seen bounds start at the perfect 1.0.
func NewTable(n, m int, f score.Func) (*Table, error) {
	if n <= 0 || m <= 0 {
		return nil, fmt.Errorf("state: table requires positive sizes, got n=%d m=%d", n, m)
	}
	if err := score.Validate(f, m); err != nil {
		return nil, err
	}
	t := &Table{
		f:        f,
		n:        n,
		m:        m,
		val:      make([]float64, n*m),
		known:    make([]bool, n*m),
		nknown:   make([]int, n),
		lastSeen: make([]float64, m),
		depth:    make([]int, m),
		seen:     make([]bool, n),
		buf:      make([]float64, m),
	}
	for i := range t.lastSeen {
		t.lastSeen[i] = 1
	}
	return t, nil
}

// Reset restores the table to its as-new state for a fresh run over the
// same n and m, optionally swapping the scoring function (nil keeps the
// current one). It reuses every backing array, so pooled tables make a
// query execution allocation-free; val does not need clearing because
// known gates every read.
func (t *Table) Reset(f score.Func) error {
	if f != nil {
		if err := score.Validate(f, t.m); err != nil {
			return err
		}
		t.f = f
	}
	clear(t.known)
	clear(t.nknown)
	clear(t.depth)
	clear(t.seen)
	t.nseen = 0
	for i := range t.lastSeen {
		t.lastSeen[i] = 1
	}
	return nil
}

// N returns the object count.
func (t *Table) N() int { return t.n }

// M returns the predicate count.
func (t *Table) M() int { return t.m }

// Func returns the scoring function.
func (t *Table) Func() score.Func { return t.f }

// ObserveSorted records the result of sa_i returning object u with score
// s: p_i[u] becomes known, u becomes seen, and the last-seen bound ell_i
// drops to s (its side effect on all objects still unseen in list i).
//
//topklint:hotpath
func (t *Table) ObserveSorted(i, u int, s float64) {
	t.setKnown(i, u, s)
	t.lastSeen[i] = s
	t.depth[i]++
	if !t.seen[u] {
		t.seen[u] = true
		t.nseen++
	}
}

// ObserveRandom records the result of ra_i(u) = s. Random access has no
// side effects on other objects and does not make u "seen" (under
// no-wild-guesses it could only have been issued for a seen object anyway;
// without the rule, probing is score gathering, not list discovery).
//
//topklint:hotpath
func (t *Table) ObserveRandom(i, u int, s float64) {
	t.setKnown(i, u, s)
}

//topklint:hotpath
func (t *Table) setKnown(i, u int, s float64) {
	idx := u*t.m + i
	if !t.known[idx] {
		t.known[idx] = true
		t.nknown[u]++
	}
	t.val[idx] = s
}

// Known reports whether p_i[u] has been determined.
func (t *Table) Known(u, i int) bool { return t.known[u*t.m+i] }

// Value returns the known score p_i[u]; it panics if unknown (callers must
// check Known), since silently returning a bound here would corrupt exact
// score reporting.
func (t *Table) Value(u, i int) float64 {
	idx := u*t.m + i
	if !t.known[idx] {
		//topklint:allow nopanic caller contract: Known(u,i) must be checked first; a silent bound here would corrupt exact score reporting
		panic(fmt.Sprintf("state: Value(u%d, p%d) is not known", u, i+1))
	}
	return t.val[idx]
}

// Complete reports whether object u has been fully evaluated on all
// predicates (the completeness notion of Definition 1, case 1).
func (t *Table) Complete(u int) bool { return t.nknown[u] == t.m }

// KnownCount returns how many of u's predicates are determined.
func (t *Table) KnownCount(u int) int { return t.nknown[u] }

// UnknownPreds appends the indices of u's undetermined predicates to dst
// and returns it. Pass a reusable slice to avoid allocation.
func (t *Table) UnknownPreds(u int, dst []int) []int {
	base := u * t.m
	for i := 0; i < t.m; i++ {
		if !t.known[base+i] {
			dst = append(dst, i)
		}
	}
	return dst
}

// LastSeen returns ell_i, the score bound established by the deepest
// sorted access on predicate i so far (1.0 before any access).
func (t *Table) LastSeen(i int) float64 { return t.lastSeen[i] }

// Depth returns the number of sorted accesses recorded on predicate i.
func (t *Table) Depth(i int) int { return t.depth[i] }

// Seen reports whether u has been returned by any sorted access.
func (t *Table) Seen(u int) bool { return t.seen[u] }

// SeenCount returns the number of distinct seen objects.
func (t *Table) SeenCount() int { return t.nseen }

// AllSeen reports whether every object has been seen, i.e. the virtual
// unseen object no longer exists.
func (t *Table) AllSeen() bool { return t.nseen == t.n }

// Upper computes the maximal-possible score F-bar(u) of Eq. 3: F applied
// to the known scores with every undetermined predicate replaced by its
// last-seen bound ell_i. By monotonicity this upper-bounds F(u), and it is
// non-increasing over time.
//
//topklint:hotpath
func (t *Table) Upper(u int) float64 {
	base := u * t.m
	for i := 0; i < t.m; i++ {
		if t.known[base+i] {
			t.buf[i] = t.val[base+i]
		} else {
			t.buf[i] = t.lastSeen[i]
		}
	}
	return t.f.Eval(t.buf)
}

// Lower computes the minimal-possible score F-floor(u): undetermined
// predicates replaced by 0. It lower-bounds F(u) and is non-decreasing;
// NRA-style algorithms halt on it.
//
//topklint:hotpath
func (t *Table) Lower(u int) float64 {
	base := u * t.m
	for i := 0; i < t.m; i++ {
		if t.known[base+i] {
			t.buf[i] = t.val[base+i]
		} else {
			t.buf[i] = 0
		}
	}
	return t.f.Eval(t.buf)
}

// Exact returns F(u) if u is complete.
func (t *Table) Exact(u int) (float64, bool) {
	if !t.Complete(u) {
		return 0, false
	}
	base := u * t.m
	copy(t.buf, t.val[base:base+t.m])
	return t.f.Eval(t.buf), true
}

// UnseenUpper computes the maximal-possible score of the virtual unseen
// object: F(ell_1, ..., ell_m). Every unseen object is bounded by it.
//
//topklint:hotpath
func (t *Table) UnseenUpper() float64 {
	copy(t.buf, t.lastSeen)
	return t.f.Eval(t.buf)
}

// UpperOf returns Upper(u) for real objects and UnseenUpper for UnseenID.
//
//topklint:hotpath
func (t *Table) UpperOf(id int) float64 {
	if id == UnseenID {
		return t.UnseenUpper()
	}
	return t.Upper(id)
}
