package state

import "repro/internal/score"

// MustNewTable is a test-only NewTable that panics on error; production
// code handles the error.
func MustNewTable(n, m int, f score.Func) *Table {
	t, err := NewTable(n, m, f)
	if err != nil {
		panic(err)
	}
	return t
}
