package state

import (
	"fmt"
)

// Entry is one candidate in the queue: an object id (possibly UnseenID)
// with its maximal-possible score as of the last validation.
type Entry struct {
	ID    int
	Upper float64
}

// Before reports whether e ranks strictly ahead of o under the
// deterministic order: higher upper first, then higher id. UnseenID (-1)
// therefore loses ties against every real object, which keeps runs
// deterministic and lets seen objects surface first.
func (e Entry) Before(o Entry) bool {
	if e.Upper != o.Upper {
		return e.Upper > o.Upper
	}
	return e.ID > o.ID
}

// Queue is a priority queue of candidate objects ordered by
// maximal-possible score, the "search mechanism for finding unsatisfied
// tasks" suggested by Section 6.1. Because upper bounds only ever
// decrease, the queue revalidates lazily: an entry popped with a stale
// (too-high) cached bound is recomputed and reinserted; an entry whose
// cached bound matches its current bound is genuinely the maximum.
//
// Under the no-wild-guesses rule the queue starts holding only the virtual
// unseen object (Figure 10); real objects are added as sorted accesses
// reveal them. Without the rule, all objects start in the queue with the
// perfect bound F(1,...,1).
//
// The heap is hand-rolled (typed sift-up/sift-down over []Entry) rather
// than container/heap: the interface-based API boxes every Entry pushed or
// popped, and those per-access allocations dominated serve-path profiles.
// All queue operations are allocation-free once the backing arrays have
// grown to their high-water mark.
//
//topklint:pooled
type Queue struct {
	t        *Table
	h        []Entry
	inQueue  []bool // indexed by id+1 so UnseenID (-1) maps to slot 0
	hasUnsn  bool
	nwgStart bool
	scratch  []Entry // TopN result buffer, reused across calls
}

// NewQueue builds the candidate queue. If nwg is true, only the virtual
// unseen object is enqueued initially; otherwise every object is.
func NewQueue(t *Table, nwg bool) *Queue {
	q := &Queue{}
	q.Reset(t, nwg)
	return q
}

// Reset re-initializes the queue over a (possibly different) table,
// reusing the backing arrays. It restores exactly the NewQueue state, so
// pooled queues behave identically to fresh ones.
func (q *Queue) Reset(t *Table, nwg bool) {
	q.t = t
	q.h = q.h[:0]
	if cap(q.inQueue) < t.N()+1 {
		q.inQueue = make([]bool, t.N()+1)
	} else {
		q.inQueue = q.inQueue[:t.N()+1]
		clear(q.inQueue)
	}
	q.hasUnsn = false
	q.nwgStart = nwg
	q.scratch = q.scratch[:0]
	if nwg {
		q.pushRaw(Entry{ID: UnseenID, Upper: t.UnseenUpper()})
	} else {
		for u := 0; u < t.N(); u++ {
			q.pushRaw(Entry{ID: u, Upper: t.Upper(u)})
		}
	}
}

// siftUp restores the heap invariant after appending at index i.
//
//topklint:hotpath
func (q *Queue) siftUp(i int) {
	h := q.h
	e := h[i]
	for i > 0 {
		parent := (i - 1) / 2
		if !e.Before(h[parent]) {
			break
		}
		h[i] = h[parent]
		i = parent
	}
	h[i] = e
}

// siftDown restores the heap invariant after replacing the entry at index
// i (with n live entries).
//
//topklint:hotpath
func (q *Queue) siftDown(i int) {
	h := q.h
	n := len(h)
	e := h[i]
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		best := l
		if r := l + 1; r < n && h[r].Before(h[l]) {
			best = r
		}
		if !h[best].Before(e) {
			break
		}
		h[i] = h[best]
		i = best
	}
	h[i] = e
}

//topklint:hotpath
func (q *Queue) pushRaw(e Entry) {
	if q.inQueue[e.ID+1] {
		return
	}
	q.inQueue[e.ID+1] = true
	if e.ID == UnseenID {
		q.hasUnsn = true
	}
	q.h = append(q.h, e)
	q.siftUp(len(q.h) - 1)
}

// popTop removes and returns the heap root without validation.
//
//topklint:hotpath
func (q *Queue) popTop() Entry {
	h := q.h
	e := h[0]
	last := len(h) - 1
	h[0] = h[last]
	q.h = h[:last]
	if last > 0 {
		q.siftDown(0)
	}
	q.inQueue[e.ID+1] = false
	if e.ID == UnseenID {
		q.hasUnsn = false
	}
	return e
}

// Add enqueues object u (typically when it is first seen). Adding an
// object already present is a no-op.
//
//topklint:hotpath
func (q *Queue) Add(u int) {
	if u == UnseenID {
		//topklint:allow nopanic caller contract: UnseenID is a package-internal sentinel no algorithm receives from an access
		panic("state: Add(UnseenID); the unseen entry is managed internally")
	}
	q.pushRaw(Entry{ID: u, Upper: q.t.Upper(u)})
}

// Len returns the number of candidates currently enqueued.
func (q *Queue) Len() int { return len(q.h) }

// Contains reports whether id is in the queue.
func (q *Queue) Contains(id int) bool { return q.inQueue[id+1] }

// revalidateTop restores the invariant that the heap root carries its
// current (not stale) upper bound, dropping the unseen entry once all
// objects have been seen. Returns false when the queue is empty.
//
//topklint:hotpath
func (q *Queue) revalidateTop() bool {
	for len(q.h) > 0 {
		top := q.h[0]
		if top.ID == UnseenID && q.t.AllSeen() {
			q.popTop()
			continue
		}
		cur := q.t.UpperOf(top.ID)
		if cur < top.Upper {
			q.h[0].Upper = cur
			q.siftDown(0)
			continue
		}
		return true
	}
	return false
}

// Peek returns the current best candidate without removing it.
//
//topklint:hotpath
func (q *Queue) Peek() (Entry, bool) {
	if !q.revalidateTop() {
		return Entry{}, false
	}
	return q.h[0], true
}

// Pop removes and returns the current best candidate.
//
//topklint:hotpath
func (q *Queue) Pop() (Entry, bool) {
	if !q.revalidateTop() {
		return Entry{}, false
	}
	return q.popTop(), true
}

// TopN returns the current best n candidates in order without disturbing
// the queue (entries are popped with validation and reinserted). It is
// used by the parallel executor to find several distinct unsatisfied
// tasks, and by K_P-style inspection in tests. The returned slice is a
// scratch buffer owned by the queue, valid only until the next TopN call;
// callers that retain it must copy.
func (q *Queue) TopN(n int) []Entry {
	if n <= 0 {
		return nil
	}
	out := q.scratch[:0]
	for len(out) < n {
		e, ok := q.Pop()
		if !ok {
			break
		}
		out = append(out, e)
	}
	for _, e := range out {
		q.pushRaw(e)
	}
	q.scratch = out
	return out
}

// String summarizes the queue for debugging.
func (q *Queue) String() string {
	return fmt.Sprintf("queue(len=%d, unseen=%v)", len(q.h), q.hasUnsn)
}
