package state

import (
	"container/heap"
	"fmt"
)

// Entry is one candidate in the queue: an object id (possibly UnseenID)
// with its maximal-possible score as of the last validation.
type Entry struct {
	ID    int
	Upper float64
}

// Before reports whether e ranks strictly ahead of o under the
// deterministic order: higher upper first, then higher id. UnseenID (-1)
// therefore loses ties against every real object, which keeps runs
// deterministic and lets seen objects surface first.
func (e Entry) Before(o Entry) bool {
	if e.Upper != o.Upper {
		return e.Upper > o.Upper
	}
	return e.ID > o.ID
}

type entryHeap []Entry

func (h entryHeap) Len() int            { return len(h) }
func (h entryHeap) Less(a, b int) bool  { return h[a].Before(h[b]) }
func (h entryHeap) Swap(a, b int)       { h[a], h[b] = h[b], h[a] }
func (h *entryHeap) Push(x interface{}) { *h = append(*h, x.(Entry)) }
func (h *entryHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Queue is a priority queue of candidate objects ordered by
// maximal-possible score, the "search mechanism for finding unsatisfied
// tasks" suggested by Section 6.1. Because upper bounds only ever
// decrease, the queue revalidates lazily: an entry popped with a stale
// (too-high) cached bound is recomputed and reinserted; an entry whose
// cached bound matches its current bound is genuinely the maximum.
//
// Under the no-wild-guesses rule the queue starts holding only the virtual
// unseen object (Figure 10); real objects are added as sorted accesses
// reveal them. Without the rule, all objects start in the queue with the
// perfect bound F(1,...,1).
type Queue struct {
	t        *Table
	h        entryHeap
	inQueue  map[int]bool
	hasUnsn  bool
	nwgStart bool
}

// NewQueue builds the candidate queue. If nwg is true, only the virtual
// unseen object is enqueued initially; otherwise every object is.
func NewQueue(t *Table, nwg bool) *Queue {
	q := &Queue{t: t, inQueue: make(map[int]bool, t.N()+1), nwgStart: nwg}
	if nwg {
		q.pushRaw(Entry{ID: UnseenID, Upper: t.UnseenUpper()})
	} else {
		for u := 0; u < t.N(); u++ {
			q.pushRaw(Entry{ID: u, Upper: t.Upper(u)})
		}
	}
	return q
}

func (q *Queue) pushRaw(e Entry) {
	if q.inQueue[e.ID] {
		return
	}
	q.inQueue[e.ID] = true
	if e.ID == UnseenID {
		q.hasUnsn = true
	}
	heap.Push(&q.h, e)
}

// Add enqueues object u (typically when it is first seen). Adding an
// object already present is a no-op.
func (q *Queue) Add(u int) {
	if u == UnseenID {
		//topklint:allow nopanic caller contract: UnseenID is a package-internal sentinel no algorithm receives from an access
		panic("state: Add(UnseenID); the unseen entry is managed internally")
	}
	q.pushRaw(Entry{ID: u, Upper: q.t.Upper(u)})
}

// Len returns the number of candidates currently enqueued.
func (q *Queue) Len() int { return len(q.h) }

// Contains reports whether id is in the queue.
func (q *Queue) Contains(id int) bool { return q.inQueue[id] }

// revalidateTop restores the invariant that the heap root carries its
// current (not stale) upper bound, dropping the unseen entry once all
// objects have been seen. Returns false when the queue is empty.
func (q *Queue) revalidateTop() bool {
	for len(q.h) > 0 {
		top := q.h[0]
		if top.ID == UnseenID && q.t.AllSeen() {
			heap.Pop(&q.h)
			delete(q.inQueue, UnseenID)
			q.hasUnsn = false
			continue
		}
		cur := q.t.UpperOf(top.ID)
		if cur < top.Upper {
			q.h[0].Upper = cur
			heap.Fix(&q.h, 0)
			continue
		}
		return true
	}
	return false
}

// Peek returns the current best candidate without removing it.
func (q *Queue) Peek() (Entry, bool) {
	if !q.revalidateTop() {
		return Entry{}, false
	}
	return q.h[0], true
}

// Pop removes and returns the current best candidate.
func (q *Queue) Pop() (Entry, bool) {
	if !q.revalidateTop() {
		return Entry{}, false
	}
	e := heap.Pop(&q.h).(Entry)
	delete(q.inQueue, e.ID)
	if e.ID == UnseenID {
		q.hasUnsn = false
	}
	return e, true
}

// TopN returns the current best n candidates in order without disturbing
// the queue (entries are popped with validation and reinserted). It is
// used by the parallel executor to find several distinct unsatisfied
// tasks, and by K_P-style inspection in tests.
func (q *Queue) TopN(n int) []Entry {
	if n <= 0 {
		return nil
	}
	out := make([]Entry, 0, n)
	for len(out) < n {
		e, ok := q.Pop()
		if !ok {
			break
		}
		out = append(out, e)
	}
	for _, e := range out {
		q.pushRaw(e)
	}
	return out
}

// String summarizes the queue for debugging.
func (q *Queue) String() string {
	return fmt.Sprintf("queue(len=%d, unseen=%v)", len(q.h), q.hasUnsn)
}
