package bench_test

// BenchmarkSharedThroughput prices the cross-query sharing layer on the
// serve path: many concurrent queries over the E1 workload (uniform
// n=1000 m=2 seed=42, avg, k=10, cs=cr=1), with sharing off and on.
// Sharing's contract is access reduction, not latency — the interesting
// outputs are queries/s (must stay in the same league as unshared) and
// backend-accesses/query (must collapse). BENCH_share.json records the
// committed baseline; TestSharedAccessGate (internal/service) enforces
// the reduction factor end to end.

import (
	"testing"

	topk "repro"
	"repro/internal/data"
	"repro/internal/data/datatest"
)

func BenchmarkSharedThroughput(b *testing.B) {
	q := topk.Query{F: topk.Avg(), K: 10}
	fixed := topk.WithNC([]float64{0.5, 0.5}, nil)

	run := func(b *testing.B, eng *topk.Engine) {
		b.Helper()
		if _, err := eng.Run(q, fixed); err != nil { // warm pools (and caches)
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				if _, err := eng.Run(q, fixed); err != nil {
					b.Error(err)
					return
				}
			}
		})
		reportQPS(b)
	}

	b.Run("unshared/parallel", func(b *testing.B) {
		run(b, e1Engine(b))
	})
	b.Run("shared/parallel", func(b *testing.B) {
		ds := datatest.MustGenerate(data.Uniform, 1000, 2, 42)
		backend := topk.DataBackend(ds)
		layer := topk.NewSharedAccess(backend, topk.SharingOptions{})
		eng, err := topk.NewEngine(backend, topk.UniformScenario(2, 1, 1), topk.WithSharing(layer))
		if err != nil {
			b.Fatal(err)
		}
		run(b, eng)
		if b.N > 1 {
			st := layer.Stats()
			total := float64(st.BackendSorted + st.BackendRandom)
			b.ReportMetric(total/float64(b.N), "backend-accesses/query")
		}
	})
}
