//go:build !race

package bench

// raceEnabled reports whether this binary was built with the race
// detector; see race_test.go.
const raceEnabled = false
