package bench

import (
	"fmt"

	"repro/internal/access"
	"repro/internal/algo"
	"repro/internal/data"
	"repro/internal/opt"
	"repro/internal/score"
	"repro/internal/stats"
)

// RunE11 is an extension experiment (beyond the paper's evaluation):
// approximate top-k in the NC framework. The framework's bound intervals
// support the classic theta = (1+epsilon) guarantee of the TA family; we
// sweep epsilon and report the access-cost saving and how many answers
// were emitted approximately. Expected shape: cost falls monotonically
// with epsilon, steeply in sorted-only scenarios where exact resolution is
// what forces deep list drains.
func RunE11(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{
		ID:     "E11",
		Title:  "extension: approximate top-k — cost vs epsilon",
		Header: []string{"scenario", "epsilon", "cost", "vs exact", "approx items"},
	}
	type scenario struct {
		name string
		scn  access.Scenario
		h    []float64
		f    score.Func
	}
	scns := []scenario{
		{"sorted-only, avg, m=3", access.MatrixCell(3, access.Cheap, access.Impossible, 10), []float64{0, 0, 0}, score.Avg()},
		{"expensive probes, avg, m=2", access.Uniform(2, 1, 10), []float64{0.3, 0.3}, score.Avg()},
	}
	epsilons := []float64{0, 0.1, 0.25, 0.4, 0.5, 0.75}
	for _, sc := range scns {
		ds, err := data.Generate(data.Uniform, cfg.N, len(sc.h), cfg.Seed)
		if err != nil {
			return nil, err
		}
		var exact access.Cost
		for _, eps := range epsilons {
			sel, err := algo.NewSRG(sc.h, nil)
			if err != nil {
				return nil, err
			}
			sess, err := access.NewSession(access.DatasetBackend{DS: ds}, sc.scn)
			if err != nil {
				return nil, err
			}
			prob, err := algo.NewProblem(sc.f, cfg.K, sess)
			if err != nil {
				return nil, err
			}
			res, err := (&algo.NC{Sel: sel, Epsilon: eps}).Run(prob)
			if err != nil {
				return nil, err
			}
			if eps == 0 {
				exact = res.Cost()
			}
			approxItems := 0
			for _, it := range res.Items {
				if !it.Exact {
					approxItems++
				}
			}
			t.AddRow(sc.name, fmt.Sprintf("%.2f", eps), costStr(res.Cost()), pct(res.Cost(), exact), approxItems)
		}
	}
	t.Notes = append(t.Notes,
		"expected shape: cost is non-increasing in epsilon, with a knee once the slack covers the bound interval of borderline candidates;",
		"savings are largest where exactness forces deep sorted drains",
		"extension beyond the paper: (1+epsilon)-approximation layered on Framework NC's bound intervals")
	return t, nil
}

// RunE12 is an extension experiment refining E8(c): the three sample
// provenances of Section 7.3 — dummy uniform samples, histogram-
// synthesized samples (offline statistics, independence assumed), and
// real data samples — across score distributions. Expected shape: dummy
// samples suffice for uniform data; histogram samples recover most of the
// gap on skewed marginals; only real samples capture cross-predicate
// correlation (the anticorrelated row).
func RunE12(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{
		ID:     "E12",
		Title:  "extension: optimizer sample provenance across distributions",
		Header: []string{"distribution", "sample", "realized cost", "vs best"},
	}
	grid := 7
	if cfg.Quick {
		grid = 5
	}
	scn := access.Uniform(2, 1, 10)
	f := score.Avg()
	sampleSize := 60
	for _, dist := range []data.Distribution{data.Uniform, data.Skewed, data.AntiCorrelated} {
		ds, err := data.Generate(dist, cfg.N, 2, cfg.Seed)
		if err != nil {
			return nil, err
		}
		hists, err := stats.Collect(ds, 16)
		if err != nil {
			return nil, err
		}
		histSample, err := stats.SynthesizeSample(hists, sampleSize, cfg.Seed)
		if err != nil {
			return nil, err
		}
		realSample, err := data.Sample(ds, sampleSize, cfg.Seed)
		if err != nil {
			return nil, err
		}
		variants := []struct {
			name string
			cfg  opt.Config
		}{
			{"dummy uniform", opt.Config{Grid: grid, Seed: cfg.Seed, SampleSize: sampleSize}},
			{"histogram-synthesized", opt.Config{Grid: grid, Seed: cfg.Seed, Sample: histSample}},
			{"real sample", opt.Config{Grid: grid, Seed: cfg.Seed, Sample: realSample}},
		}
		costs := make([]access.Cost, len(variants))
		best := access.Cost(-1)
		for i, v := range variants {
			c, _, err := runOptimized(v.cfg, ds, scn, f, cfg.K)
			if err != nil {
				return nil, err
			}
			costs[i] = c
			if best < 0 || c < best {
				best = c
			}
		}
		for i, v := range variants {
			t.AddRow(dist.String(), v.name, costStr(costs[i]), pct(costs[i], best))
		}
	}
	t.Notes = append(t.Notes,
		"expected shape: all provenances tie on uniform data; histogram samples track skewed marginals; real samples additionally capture correlation",
		"extension refining Section 7.3's sample discussion (E8c)")
	return t, nil
}
