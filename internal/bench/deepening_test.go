package bench_test

// BenchmarkDeepening measures what resumable cursors exist to save: the
// cost of deepening a query from k to 2k answers. "recompute" pays for a
// fresh 2k-deep run; "resume" opens a cursor at k and pages the second
// half out of suspended state. TestDeepeningGate holds the access-level
// contract — the resumed half must cost at most the committed fraction of
// the recompute — against BENCH_cursor.json, the same committed-baseline
// idiom as the perf and sharing gates.

import (
	"encoding/json"
	"os"
	"testing"

	topk "repro"
	"repro/internal/data"
	"repro/internal/data/datatest"
)

// deepeningWorkload is the shared fixture: the BENCH_perf.json serve
// workload (uniform n=1000 m=2 seed=42, avg, cs=cr=1) with a fixed NC
// plan, deepened from k=10 to 2k=20.
const (
	deepeningK = 10
)

func deepeningEngine(tb testing.TB) *topk.Engine {
	tb.Helper()
	ds := datatest.MustGenerate(data.Uniform, 1000, 2, 42)
	eng, err := topk.NewEngine(topk.DataBackend(ds), topk.UniformScenario(2, 1, 1))
	if err != nil {
		tb.Fatal(err)
	}
	return eng
}

func BenchmarkDeepening(b *testing.B) {
	eng := deepeningEngine(b)
	q := topk.Query{F: topk.Avg(), K: 2 * deepeningK}
	fixed := topk.WithNC([]float64{0.5, 0.5}, nil)

	b.Run("recompute", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := eng.Run(q, fixed); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("resume", func(b *testing.B) {
		b.ReportAllocs()
		var marginal int
		for i := 0; i < b.N; i++ {
			cur, err := eng.Open(topk.Query{F: topk.Avg(), K: deepeningK}, fixed)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := cur.Next(deepeningK); err != nil {
				b.Fatal(err)
			}
			first := cur.Ledger().TotalAccesses()
			if _, err := cur.Next(deepeningK); err != nil {
				b.Fatal(err)
			}
			marginal = cur.Ledger().TotalAccesses() - first
			cur.Close()
		}
		b.ReportMetric(float64(marginal), "marginal-accesses/op")
	})
}

// cursorBaseline is the slice of BENCH_cursor.json the gate consumes.
type cursorBaseline struct {
	Baseline struct {
		Recompute2kAccesses float64 `json:"recompute_2k_accesses"`
		MarginalAccesses    float64 `json:"resume_marginal_accesses"`
	} `json:"baseline"`
	Gate struct {
		MaxMarginalFraction float64 `json:"max_marginal_access_fraction"`
	} `json:"gate"`
}

func loadCursorBaseline(t *testing.T) cursorBaseline {
	t.Helper()
	raw, err := os.ReadFile("../../BENCH_cursor.json")
	if err != nil {
		t.Fatalf("committed baseline missing: %v", err)
	}
	var cb cursorBaseline
	if err := json.Unmarshal(raw, &cb); err != nil {
		t.Fatalf("BENCH_cursor.json unparseable: %v", err)
	}
	if cb.Baseline.Recompute2kAccesses == 0 || cb.Gate.MaxMarginalFraction == 0 {
		t.Fatal("BENCH_cursor.json gate values incomplete")
	}
	return cb
}

// TestDeepeningGate is the access-level deepening gate: resuming a cursor
// from k to 2k must reach the backend for at most the committed fraction
// (55%) of what a fresh 2k recompute pays, and the cursor's cumulative
// bill must land exactly on the recompute's — resume saves the first
// half's accesses and adds nothing.
func TestDeepeningGate(t *testing.T) {
	cb := loadCursorBaseline(t)
	eng := deepeningEngine(t)
	fixed := topk.WithNC([]float64{0.5, 0.5}, nil)

	fresh, err := eng.Run(topk.Query{F: topk.Avg(), K: 2 * deepeningK}, fixed)
	if err != nil {
		t.Fatal(err)
	}
	recompute := fresh.Ledger.TotalAccesses()

	cur, err := eng.Open(topk.Query{F: topk.Avg(), K: deepeningK}, fixed)
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()
	if _, err := cur.Next(deepeningK); err != nil {
		t.Fatal(err)
	}
	first := cur.Ledger().TotalAccesses()
	if _, err := cur.Next(deepeningK); err != nil {
		t.Fatal(err)
	}
	total := cur.Ledger().TotalAccesses()
	marginal := total - first

	if limit := cb.Gate.MaxMarginalFraction * float64(recompute); float64(marginal) > limit {
		t.Errorf("resume k->2k performed %d accesses, gate is %.0f%% of the %d-access recompute (%.0f)",
			marginal, 100*cb.Gate.MaxMarginalFraction, recompute, limit)
	}
	if total != recompute {
		t.Errorf("paged cumulative accesses %d, fresh 2k recompute %d — resume must add nothing", total, recompute)
	}
}
