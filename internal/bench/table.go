// Package bench is the experiment harness: it regenerates every table and
// figure of the paper's evaluation (reconstructed per DESIGN.md's
// per-experiment index) as printable tables. Each experiment has a stable
// id (E1..E10) shared by DESIGN.md, EXPERIMENTS.md, cmd/topkbench, and the
// root-level Go benchmarks.
package bench

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
	"text/tabwriter"
)

// Table is one experiment's formatted output: a titled grid of rows plus
// free-form notes (expected shape, caveats).
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a row of stringified cells.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// WriteTo renders the table as aligned text.
func (t *Table) WriteTo(w io.Writer) (int64, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	tw := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	if len(t.Header) > 0 {
		fmt.Fprintln(tw, strings.Join(t.Header, "\t"))
		rule := make([]string, len(t.Header))
		for i, h := range t.Header {
			rule[i] = strings.Repeat("-", len(h))
		}
		fmt.Fprintln(tw, strings.Join(rule, "\t"))
	}
	for _, row := range t.Rows {
		fmt.Fprintln(tw, strings.Join(row, "\t"))
	}
	if err := tw.Flush(); err != nil {
		return 0, err
	}
	for _, note := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", note)
	}
	b.WriteByte('\n')
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// WriteCSV renders the table as CSV: a header row (prefixed with the
// experiment id column), the data rows, and the notes as trailing comment
// lines — machine-readable output for downstream plotting.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if len(t.Header) > 0 {
		if err := cw.Write(append([]string{"experiment"}, t.Header...)); err != nil {
			return err
		}
	}
	for _, row := range t.Rows {
		if err := cw.Write(append([]string{t.ID}, row...)); err != nil {
			return err
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return err
	}
	for _, note := range t.Notes {
		if _, err := fmt.Fprintf(w, "# %s\n", note); err != nil {
			return err
		}
	}
	return nil
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	if _, err := t.WriteTo(&b); err != nil {
		return fmt.Sprintf("table %s: %v", t.ID, err)
	}
	return b.String()
}

// Config tunes experiment sizes. The zero value is upgraded to the
// defaults used in EXPERIMENTS.md; Quick shrinks everything for use in
// unit tests and smoke runs.
type Config struct {
	N     int   // database size (default 1000)
	K     int   // retrieval size (default 10)
	Seed  int64 // base seed (default 1)
	Quick bool  // shrink sizes ~8x for fast runs
}

func (c Config) withDefaults() Config {
	if c.N == 0 {
		c.N = 1000
	}
	if c.K == 0 {
		c.K = 10
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Quick {
		c.N = max(60, c.N/8)
		if c.K > c.N/4 {
			c.K = c.N / 4
		}
	}
	return c
}

// Experiment couples an id with its runner.
type Experiment struct {
	ID    string
	Title string
	Paper string // which paper artifact it regenerates
	Run   func(cfg Config) (*Table, error)
}

// Registry lists all experiments in id order.
func Registry() []Experiment {
	return []Experiment{
		{"E1", "Cost contour over H, scenario S1 (avg, uniform, cs=cr=1)", "Figure 11(a)", RunE1},
		{"E2", "Cost contour over H, scenario S2 (min, uniform, cs=cr=1)", "Figure 11(b)", RunE2},
		{"E3", "NC vs TA across symmetric and asymmetric scenarios", "Figure 12", RunE3},
		{"E4", "NC vs the specialist of each access-scenario cell", "Figure 2 matrix / Section 9 synthetic study", RunE4},
		{"E5", "Travel-agent benchmark queries Q1 and Q2", "Examples 1-2 / Section 9 real-life study", RunE5},
		{"E6", "Optimization schemes: Naive vs Strategies vs HClimb", "Appendix scheme comparison", RunE6},
		{"E7", "Parallelization: elapsed time vs concurrency bound", "Section 9.1.1", RunE7},
		{"E8", "Ablations: SR rule, global schedule, sample size", "Section 7 design choices", RunE8},
		{"E9", "Scaling with n, k, and m", "Section 9 sensitivity", RunE9},
		{"E10", "Adaptivity to mid-query cost shifts", "Section 1 motivation (dynamic costs)", RunE10},
		{"E11", "Extension: approximate top-k, cost vs epsilon", "extension (TA-family theta-approximation on NC)", RunE11},
		{"E12", "Extension: optimizer sample provenance across distributions", "extension (Section 7.3 refined)", RunE12},
	}
}

// ByID finds an experiment.
func ByID(id string) (Experiment, bool) {
	for _, e := range Registry() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}
