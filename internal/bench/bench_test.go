package bench

import (
	"fmt"
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	reg := Registry()
	if len(reg) != 12 {
		t.Fatalf("registry has %d experiments, want 12", len(reg))
	}
	for i, e := range reg {
		want := fmt.Sprintf("E%d", i+1)
		if e.ID != want {
			t.Errorf("registry[%d] = %s, want %s", i, e.ID, want)
		}
		if e.Title == "" || e.Paper == "" || e.Run == nil {
			t.Errorf("%s is incomplete", e.ID)
		}
		got, ok := ByID(e.ID)
		if !ok || got.ID != e.ID {
			t.Errorf("ByID(%s) failed", e.ID)
		}
	}
	if _, ok := ByID("E99"); ok {
		t.Error("ByID(E99) should fail")
	}
}

// TestAllExperimentsRunQuick executes every experiment end-to-end in quick
// mode and sanity-checks the emitted tables. This is the harness's
// integration test: every paper artifact must regenerate without error.
func TestAllExperimentsRunQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments take a few seconds")
	}
	cfg := Config{Quick: true}
	for _, e := range Registry() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tab, err := e.Run(cfg)
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if tab.ID != e.ID {
				t.Errorf("table id %s != %s", tab.ID, e.ID)
			}
			if len(tab.Rows) == 0 {
				t.Error("no rows")
			}
			out := tab.String()
			if !strings.Contains(out, e.ID) {
				t.Error("rendered table lacks its id")
			}
		})
	}
}

func TestTableFormatting(t *testing.T) {
	tab := &Table{ID: "X", Title: "demo", Header: []string{"a", "b"}}
	tab.AddRow("x", 1.5)
	tab.AddRow(2, "y")
	tab.Notes = append(tab.Notes, "hello")
	out := tab.String()
	for _, want := range []string{"== X: demo ==", "a", "1.50", "note: hello"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.N != 1000 || c.K != 10 || c.Seed != 1 {
		t.Errorf("defaults = %+v", c)
	}
	q := Config{Quick: true}.withDefaults()
	if q.N >= 1000 || q.K > q.N/4 {
		t.Errorf("quick config too large: %+v", q)
	}
}

func TestHeterogeneousDataset(t *testing.T) {
	ds, err := heterogeneousDataset(500, 3)
	if err != nil {
		t.Fatal(err)
	}
	mean := func(i int) float64 {
		s := 0.0
		for u := 0; u < ds.N(); u++ {
			s += ds.Score(u, i)
		}
		return s / float64(ds.N())
	}
	if !(mean(0) < mean(1) && mean(1) < mean(2)) {
		t.Errorf("means not ordered: %.2f %.2f %.2f", mean(0), mean(1), mean(2))
	}
}

func TestReversed(t *testing.T) {
	got := reversed([]int{2, 0, 1})
	if got[0] != 1 || got[1] != 0 || got[2] != 2 {
		t.Errorf("reversed = %v", got)
	}
}

func TestTableWriteCSV(t *testing.T) {
	tab := &Table{ID: "EX", Title: "demo", Header: []string{"a", "b"}}
	tab.AddRow("x, y", 1.5)
	tab.Notes = append(tab.Notes, "a note")
	var sb strings.Builder
	if err := tab.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"experiment,a,b", `EX,"x, y",1.50`, "# a note"} {
		if !strings.Contains(out, want) {
			t.Errorf("csv missing %q:\n%s", want, out)
		}
	}
}
