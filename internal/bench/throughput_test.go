package bench_test

// Serve-path throughput benchmarks (external test package: the facade
// imports internal/bench from its own benchmarks, so this suite must sit
// outside package bench to import the facade without a cycle).
//
// BenchmarkServeThroughput prices one served query on the E1 workload
// (uniform n=1000 m=2 seed=42, avg scoring, k=10, cs=cr=1) through the
// paths a production deployment actually exercises: a fixed NC plan
// sequentially and under RunParallel, and the optimizer path with and
// without the shared plan cache. BENCH_perf.json records the committed
// baseline; cmd/topkbench -serve-bench emits the same workload as
// queries/sec for profiling runs.

import (
	"testing"

	topk "repro"
	"repro/internal/data"
	"repro/internal/data/datatest"
)

// e1Engine builds the BENCH_obs/BENCH_perf reference workload.
func e1Engine(b *testing.B, opts ...topk.EngineOption) *topk.Engine {
	b.Helper()
	ds := datatest.MustGenerate(data.Uniform, 1000, 2, 42)
	eng, err := topk.NewEngine(topk.DataBackend(ds), topk.UniformScenario(2, 1, 1), opts...)
	if err != nil {
		b.Fatal(err)
	}
	return eng
}

func reportQPS(b *testing.B) {
	if s := b.Elapsed().Seconds(); s > 0 {
		b.ReportMetric(float64(b.N)/s, "queries/s")
	}
}

func BenchmarkServeThroughput(b *testing.B) {
	q := topk.Query{F: topk.Avg(), K: 10}
	fixed := topk.WithNC([]float64{0.5, 0.5}, nil)
	optCfg := topk.WithOptimizer(topk.OptimizerConfig{})

	b.Run("fixed/sequential", func(b *testing.B) {
		eng := e1Engine(b)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := eng.Run(q, fixed); err != nil {
				b.Fatal(err)
			}
		}
		reportQPS(b)
	})
	b.Run("fixed/parallel", func(b *testing.B) {
		eng := e1Engine(b)
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				if _, err := eng.Run(q, fixed); err != nil {
					b.Error(err)
					return
				}
			}
		})
		reportQPS(b)
	})
	// Every query pays a full HClimb search: the pre-cache serving cost.
	b.Run("opt/nocache", func(b *testing.B) {
		eng := e1Engine(b)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := eng.Run(q, optCfg); err != nil {
				b.Fatal(err)
			}
		}
		reportQPS(b)
	})
	// Identical repeated queries resolve their plan from the cache.
	b.Run("opt/cache", func(b *testing.B) {
		eng := e1Engine(b, topk.WithPlanCache(topk.NewPlanCache(0)))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := eng.Run(q, optCfg); err != nil {
				b.Fatal(err)
			}
		}
		reportQPS(b)
	})
	b.Run("opt/cache/parallel", func(b *testing.B) {
		eng := e1Engine(b, topk.WithPlanCache(topk.NewPlanCache(0)))
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				if _, err := eng.Run(q, optCfg); err != nil {
					b.Error(err)
					return
				}
			}
		})
		reportQPS(b)
	})
}
