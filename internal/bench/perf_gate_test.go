package bench_test

// TestServeAllocGate is the allocation-regression gate: a fast, plain-test
// (no -bench flag needed) check that the serve path still meets the
// committed BENCH_perf.json budget. It fails when a change reintroduces
// per-query allocation — the cheap early warning; the full throughput
// picture comes from BenchmarkServeThroughput.

import (
	"encoding/json"
	"os"
	"testing"

	topk "repro"
	"repro/internal/data"
	"repro/internal/data/datatest"
)

type perfBaseline struct {
	Baseline struct {
		AllocsPerOp float64 `json:"allocs_per_op"`
	} `json:"baseline"`
	Gate struct {
		MaxAllocsFixed     float64 `json:"max_allocs_per_op_fixed"`
		MaxAllocsCachedOpt float64 `json:"max_allocs_per_op_cached_opt"`
		MinReduction       float64 `json:"min_alloc_reduction_factor"`
	} `json:"gate"`
}

func loadPerfBaseline(t *testing.T) perfBaseline {
	t.Helper()
	raw, err := os.ReadFile("../../BENCH_perf.json")
	if err != nil {
		t.Fatalf("committed baseline missing: %v", err)
	}
	var pb perfBaseline
	if err := json.Unmarshal(raw, &pb); err != nil {
		t.Fatalf("BENCH_perf.json unparseable: %v", err)
	}
	if pb.Baseline.AllocsPerOp == 0 || pb.Gate.MaxAllocsFixed == 0 || pb.Gate.MaxAllocsCachedOpt == 0 {
		t.Fatal("BENCH_perf.json gate values incomplete")
	}
	return pb
}

func TestServeAllocGate(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc gate needs steady-state measurement")
	}
	pb := loadPerfBaseline(t)
	ds := datatest.MustGenerate(data.Uniform, 1000, 2, 42)
	q := topk.Query{F: topk.Avg(), K: 10}

	eng, err := topk.NewEngine(topk.DataBackend(ds), topk.UniformScenario(2, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	fixed := topk.WithNC([]float64{0.5, 0.5}, nil)
	run := func() {
		if _, err := eng.Run(q, fixed); err != nil {
			t.Fatal(err)
		}
	}
	run() // warm the session/scratch pool to steady state
	if got := testing.AllocsPerRun(50, run); got > pb.Gate.MaxAllocsFixed {
		t.Errorf("fixed-plan serve path allocates %.1f/op, gate is %.0f", got, pb.Gate.MaxAllocsFixed)
	} else if factor := pb.Baseline.AllocsPerOp / got; factor < pb.Gate.MinReduction {
		t.Errorf("alloc reduction vs pre-PR baseline is %.1fx, contract is >=%.0fx", factor, pb.Gate.MinReduction)
	}

	cached, err := topk.NewEngine(topk.DataBackend(ds), topk.UniformScenario(2, 1, 1),
		topk.WithPlanCache(topk.NewPlanCache(0)))
	if err != nil {
		t.Fatal(err)
	}
	runOpt := func() {
		if _, err := cached.Run(q, topk.WithOptimizer(topk.OptimizerConfig{})); err != nil {
			t.Fatal(err)
		}
	}
	runOpt() // first run misses and pays the HClimb search; the rest hit
	if got := testing.AllocsPerRun(50, runOpt); got > pb.Gate.MaxAllocsCachedOpt {
		t.Errorf("cached optimizer serve path allocates %.1f/op, gate is %.0f", got, pb.Gate.MaxAllocsCachedOpt)
	}
}
