package bench

import (
	"fmt"

	"repro/internal/access"
	"repro/internal/algo"
	"repro/internal/data"
	"repro/internal/opt"
	"repro/internal/score"
)

// runAlgo executes one algorithm on a fresh session and returns its total
// access cost.
func runAlgo(alg algo.Algorithm, ds *data.Dataset, scn access.Scenario, f score.Func, k int, opts ...access.Option) (access.Cost, error) {
	sess, err := access.NewSession(access.DatasetBackend{DS: ds}, scn, opts...)
	if err != nil {
		return 0, err
	}
	prob, err := algo.NewProblem(f, k, sess)
	if err != nil {
		return 0, err
	}
	res, err := alg.Run(prob)
	if err != nil {
		return 0, err
	}
	return res.Cost(), nil
}

// runNC executes Framework NC with a fixed SR/G configuration.
func runNC(h []float64, omega []int, ds *data.Dataset, scn access.Scenario, f score.Func, k int, opts ...access.Option) (access.Cost, error) {
	alg, err := algo.NewNC(h, omega)
	if err != nil {
		return 0, err
	}
	return runAlgo(alg, ds, scn, f, k, opts...)
}

// runOptimized optimizes (HClimb by default) and executes the chosen plan,
// returning the realized cost and the plan.
func runOptimized(cfg opt.Config, ds *data.Dataset, scn access.Scenario, f score.Func, k int, opts ...access.Option) (access.Cost, opt.Plan, error) {
	plan, err := opt.Optimize(cfg, scn, f, k, ds.N())
	if err != nil {
		return 0, opt.Plan{}, err
	}
	cost, err := runNC(plan.H, plan.Omega, ds, scn, f, k, opts...)
	if err != nil {
		return 0, opt.Plan{}, err
	}
	return cost, plan, nil
}

// pct formats b as a percentage of a (a = 100%).
func pct(b, a access.Cost) string {
	if a == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.0f%%", 100*float64(b)/float64(a))
}

// costStr prints a cost in units.
func costStr(c access.Cost) string { return fmt.Sprintf("%.1f", c.Units()) }

// hStr prints a depth vector compactly.
func hStr(h []float64) string {
	s := "("
	for i, x := range h {
		if i > 0 {
			s += ","
		}
		s += fmt.Sprintf("%.2f", x)
	}
	return s + ")"
}

// taEquivalentDepth reports the sorted depth (in score space) that TA
// reached on each predicate in a reference run, locating TA inside the H
// space the way Figure 11 marks it with an oval.
func taEquivalentDepth(ds *data.Dataset, scn access.Scenario, f score.Func, k int) ([]float64, access.Cost, error) {
	sess, err := access.NewSession(access.DatasetBackend{DS: ds}, scn, access.WithTrace())
	if err != nil {
		return nil, 0, err
	}
	prob, err := algo.NewProblem(f, k, sess)
	if err != nil {
		return nil, 0, err
	}
	res, err := (algo.TA{}).Run(prob)
	if err != nil {
		return nil, 0, err
	}
	depth := make([]float64, ds.M())
	for i := range depth {
		depth[i] = 1
	}
	for _, rec := range sess.Trace() {
		if rec.Kind == access.SortedAccess {
			depth[rec.Pred] = rec.Score
		}
	}
	return depth, res.Cost(), nil
}
