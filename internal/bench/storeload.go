package bench

// Disk-store workload (BENCH_store.json): a large Zipf dataset written
// once to store format (cached across runs — the CI storage job restores
// the directory via actions/cache), IO-calibrated in warm and cold
// modes, then driven through the paper's central claim with the
// assumption removed: the optimizer planning under the *measured*
// (cs, cr) must bill less than the same optimizer planning under the
// uniform-cost assumption, when both plans execute against the store's
// real physics. cmd/topkbench -store drives this from the CLI;
// BenchmarkStoreAccess and TestStoreGate (store_bench_test.go) pin the
// committed baseline.

import (
	"context"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/access"
	"repro/internal/algo"
	"repro/internal/data"
	"repro/internal/opt"
	"repro/internal/score"
	"repro/internal/store"
)

// StoreCacheEnv names the environment variable that roots the dataset
// cache. The CI storage job points it at the directory restored by
// actions/cache, keyed on the store format and generator versions — the
// same versions spelled into every cached directory's name below.
const StoreCacheEnv = "TOPK_STORE_CACHE"

// StoreLoad parameterizes the workload. The zero value is the committed
// BENCH_store.json shape: zipf n=10^6 m=3 seed=42.
type StoreLoad struct {
	// Root directories the dataset cache ("" = $TOPK_STORE_CACHE, or
	// topk-store-cache under the OS temp dir).
	Root string
	// N, M, Dist, Seed shape the dataset (default zipf 1e6 x 3 seed 42,
	// the cluster workload's regime: a thin strong head over a long
	// irrelevant tail, where plan shape matters most).
	N, M int
	Dist string
	Seed int64
	// K is the retrieval size of the plan-shift sweep (default 10; the
	// sweep also runs 5*K).
	K int
	// Probes and Batches tune calibration (store.MeasureOptions).
	Probes, Batches int
	// SampleSize is the real-sample size fed to both optimizations
	// (default 500: at n=10^6 each sampled row stands for 2000 real ones,
	// the coarsest scaling at which the estimator's plan choices are
	// stable run to run — 100-row samples make the measured-vs-uniform
	// comparison flip sign with calibration noise).
	SampleSize int
}

func (c StoreLoad) withDefaults() StoreLoad {
	if c.Root == "" {
		c.Root = os.Getenv(StoreCacheEnv)
	}
	if c.Root == "" {
		c.Root = filepath.Join(os.TempDir(), "topk-store-cache")
	}
	if c.N == 0 {
		c.N = 1_000_000
	}
	if c.M == 0 {
		c.M = 3
	}
	if c.Dist == "" {
		c.Dist = data.Zipf.String()
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	if c.K == 0 {
		c.K = 10
	}
	if c.Probes == 0 {
		c.Probes = 512
	}
	if c.Batches == 0 {
		c.Batches = 5
	}
	if c.SampleSize == 0 {
		c.SampleSize = 500
	}
	return c
}

// StoreDir names the cached store directory for a workload. The name
// carries every input that determines the bytes — distribution, sizes,
// seed, store format version, generator version — so a code change that
// alters either format or generation can never be served stale bytes
// from a warm cache.
func StoreDir(cfg StoreLoad) string {
	cfg = cfg.withDefaults()
	return filepath.Join(cfg.Root, fmt.Sprintf("%s-n%d-m%d-seed%d-fv%d-gv%d",
		cfg.Dist, cfg.N, cfg.M, cfg.Seed, store.FormatVersion, data.GeneratorVersion))
}

// EnsureStore opens the workload's cached store, building it first when
// the directory is missing or fails validation (a torn cache entry is
// rebuilt, not trusted). It reports whether a build ran.
func EnsureStore(cfg StoreLoad) (*store.Store, bool, error) {
	cfg = cfg.withDefaults()
	dir := StoreDir(cfg)
	if s, err := store.Open(dir, store.Options{}); err == nil {
		return s, false, nil
	}
	dist, err := data.DistributionByName(cfg.Dist)
	if err != nil {
		return nil, false, err
	}
	if err := os.RemoveAll(dir); err != nil {
		return nil, false, err
	}
	if err := store.WriteStream(dir, dist, cfg.N, cfg.M, cfg.Seed, store.WriterOptions{}); err != nil {
		return nil, false, err
	}
	s, err := store.Open(dir, store.Options{})
	if err != nil {
		return nil, false, err
	}
	return s, true, nil
}

// StorePlanShift is one cell of the plan-shift sweep: the same planning
// problem optimized under the uniform-cost assumption and under the
// measured calibration, both plans executed against the store priced at
// the measured costs.
type StorePlanShift struct {
	Cell     string  // capability shape, figure-2 style
	F        string  // scoring function
	K        int     // retrieval size
	Uniform  float64 // billed cost (ms) of the uniform-cost plan
	Measured float64 // billed cost (ms) of the measured-cost plan
	// Advantage is 1 - Measured/Uniform: the fraction of the bill the
	// measured-cost plan saves. Zero when the plans coincide.
	Advantage float64
}

// StoreLoadResult reports one full workload run.
type StoreLoadResult struct {
	Dir    string
	Built  bool
	N, M   int
	Warm   store.Calibration
	Cold   store.Calibration
	Shifts []StorePlanShift
	// BestAdvantage is the largest observed Advantage across the sweep —
	// the figure the BENCH_store.json gate compares.
	BestAdvantage float64
	// TotalUniform and TotalMeasured sum the billed cost of every sweep
	// cell under each planner — reported for context, not gated: the
	// optimizer is a sample-driven heuristic, and on cells where its
	// cardinality estimates are biased (avg at large k) the measured-cost
	// plan can genuinely come out worse despite the truer prices.
	TotalUniform, TotalMeasured float64
}

// storeShiftCell is one capability shape of the sweep, figure-2 style.
// caps reports (sortedOK, randomOK) for predicate i of m. Both-available
// is where the uniform assumption is most wrong (it prices ra at parity
// with sa while the disk charges a positioned read per probe); sa-only
// pins that the measured plan never does worse where there is no freedom
// to exploit; probe-heavy is MPro's regime — one sorted retrieval
// predicate, the rest probe-only — where probes are mandatory and the
// freedom is only in how deep the retrieval list runs.
type storeShiftCell struct {
	name string
	caps func(i, m int) (bool, bool)
}

var storeShiftCells = []storeShiftCell{
	{"sa-ra", func(i, m int) (bool, bool) { return true, true }},
	{"sa-only", func(i, m int) (bool, bool) { return true, false }},
	{"probe-heavy", func(i, m int) (bool, bool) { return i == 0, i > 0 }},
}

// scenarioFor prices the workload's capabilities: uniform charges 1 unit
// per supported access, measured charges the calibration's milliseconds.
func scenarioFor(m int, cell storeShiftCell, cal *store.Calibration) access.Scenario {
	cs, cr := 1.0, 1.0
	name := "uniform-assumed"
	if cal != nil {
		cs, cr = cal.SortedMS, cal.RandomMS
		name = "io-measured"
	}
	preds := make([]access.PredCost, m)
	for i := range preds {
		sorted, random := cell.caps(i, m)
		var pc access.PredCost
		if sorted {
			pc.SortedOK = true
			pc.Sorted = access.CostOf(cs)
		}
		if random {
			pc.RandomOK = true
			pc.Random = access.CostOf(cr)
		}
		preds[i] = pc
	}
	return access.Scenario{Name: fmt.Sprintf("%s/%s", name, cell.name), Preds: preds}
}

// RunStoreLoad builds/opens the cached store, calibrates it, and runs
// the plan-shift sweep.
func RunStoreLoad(cfg StoreLoad) (StoreLoadResult, error) {
	cfg = cfg.withDefaults()
	s, built, err := EnsureStore(cfg)
	if err != nil {
		return StoreLoadResult{}, err
	}
	defer s.Close()

	ctx := context.Background()
	mopts := store.MeasureOptions{Probes: cfg.Probes, Batches: cfg.Batches, Seed: cfg.Seed}
	warm, err := store.Measure(ctx, s, mopts)
	if err != nil {
		return StoreLoadResult{}, err
	}
	mopts.Cold = true
	cold, err := store.Measure(ctx, s, mopts)
	if err != nil {
		return StoreLoadResult{}, err
	}

	res := StoreLoadResult{
		Dir: s.Dir(), Built: built, N: s.N(), M: s.M(),
		Warm: warm, Cold: cold,
	}

	// One real sample serves both optimizations: the only difference
	// between the two plans is the cost model.
	sample, err := s.SampleDataset(cfg.SampleSize, cfg.Seed)
	if err != nil {
		return StoreLoadResult{}, err
	}

	funcs := []score.Func{score.Min(), score.Avg()}
	for _, cell := range storeShiftCells {
		for _, f := range funcs {
			for _, k := range []int{cfg.K, 5 * cfg.K} {
				shift, err := runPlanShift(s, cell, f, k, sample, warm)
				if err != nil {
					return StoreLoadResult{}, fmt.Errorf("cell %s/%s/k=%d: %w", cell.name, f.Name(), k, err)
				}
				res.Shifts = append(res.Shifts, shift)
				res.TotalUniform += shift.Uniform
				res.TotalMeasured += shift.Measured
				if shift.Advantage > res.BestAdvantage {
					res.BestAdvantage = shift.Advantage
				}
			}
		}
	}
	return res, nil
}

// runPlanShift optimizes one planning problem twice — uniform-assumed vs
// io-measured costs — and executes both plans against the store under
// the measured scenario, comparing billed cost.
func runPlanShift(s *store.Store, cell storeShiftCell, f score.Func, k int, sample *data.Dataset, cal store.Calibration) (StorePlanShift, error) {
	uniformScn := scenarioFor(s.M(), cell, nil)
	measuredScn := scenarioFor(s.M(), cell, &cal)
	cfg := opt.Config{Sample: sample, Seed: 1}

	uniformPlan, err := opt.Optimize(cfg, uniformScn, f, k, s.N())
	if err != nil {
		return StorePlanShift{}, fmt.Errorf("uniform optimize: %w", err)
	}
	measuredPlan, err := opt.Optimize(cfg, measuredScn, f, k, s.N())
	if err != nil {
		return StorePlanShift{}, fmt.Errorf("measured optimize: %w", err)
	}

	// Both plans are billed under the measured scenario: the physics is
	// the judge, the assumption only picked the plan.
	uniformCost, err := executePlan(s, measuredScn, f, k, uniformPlan)
	if err != nil {
		return StorePlanShift{}, fmt.Errorf("uniform plan execution: %w", err)
	}
	measuredCost, err := executePlan(s, measuredScn, f, k, measuredPlan)
	if err != nil {
		return StorePlanShift{}, fmt.Errorf("measured plan execution: %w", err)
	}

	shift := StorePlanShift{
		Cell: cell.name, F: f.Name(), K: k,
		Uniform:  uniformCost.Units(),
		Measured: measuredCost.Units(),
	}
	if shift.Uniform > 0 {
		shift.Advantage = 1 - shift.Measured/shift.Uniform
	}
	return shift, nil
}

// executePlan runs a fixed NC configuration against the store and
// returns the billed total cost from the session ledger.
func executePlan(s *store.Store, scn access.Scenario, f score.Func, k int, plan opt.Plan) (access.Cost, error) {
	sel, err := algo.NewSRG(plan.H, plan.Omega)
	if err != nil {
		return 0, err
	}
	sess, err := access.NewSession(s, scn)
	if err != nil {
		return 0, err
	}
	prob, err := algo.NewProblem(f, k, sess)
	if err != nil {
		return 0, err
	}
	alg := &algo.NC{Sel: sel}
	if _, err := alg.RunScratch(prob, new(algo.Scratch)); err != nil {
		return 0, err
	}
	return sess.Ledger().TotalCost, nil
}
