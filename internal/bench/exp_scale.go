package bench

import (
	"fmt"

	"repro/internal/access"
	"repro/internal/algo"
	"repro/internal/data"
	"repro/internal/opt"
	"repro/internal/score"
)

// RunE9 runs the sensitivity sweeps standard in the paper's family of
// evaluations: access cost of optimized NC against TA as the database size
// n, the retrieval size k, and the predicate count m grow. Expected shape:
// both costs grow sublinearly in n and roughly linearly in k; NC's
// advantage persists across the sweep (here under F = min, where focusing
// pays) and widens with m as TA's exhaustive probing multiplies.
func RunE9(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{
		ID:     "E9",
		Title:  "scaling: cost vs n, k, m (F=min, cs=1, cr=5)",
		Header: []string{"sweep", "value", "TA cost", "NC cost", "NC/TA"},
	}
	grid := 7
	if cfg.Quick {
		grid = 5
	}
	run := func(sweep string, val string, n, k, m int, seed int64) error {
		ds, err := data.Generate(data.Uniform, n, m, seed)
		if err != nil {
			return err
		}
		scn := access.Uniform(m, 1, 5)
		taCost, err := runAlgo(algo.TA{}, ds, scn, score.Min(), k)
		if err != nil {
			return err
		}
		// Cap the mesh budget via HClimb regardless of m.
		ncCost, _, err := runOptimized(opt.Config{Grid: grid, Seed: seed, Restarts: 4}, ds, scn, score.Min(), k)
		if err != nil {
			return err
		}
		t.AddRow(sweep, val, costStr(taCost), costStr(ncCost), pct(ncCost, taCost))
		return nil
	}

	ns := []int{250, 500, 1000, 2000}
	ks := []int{1, 5, 10, 25, 50}
	ms := []int{2, 3, 4}
	if cfg.Quick {
		ns = []int{100, 200, 400}
		ks = []int{1, 5, 10}
		ms = []int{2, 3}
	}
	for _, n := range ns {
		if err := run("n", fmt.Sprint(n), n, cfg.K, 2, cfg.Seed); err != nil {
			return nil, err
		}
	}
	for _, k := range ks {
		if err := run("k", fmt.Sprint(k), cfg.N, k, 2, cfg.Seed); err != nil {
			return nil, err
		}
	}
	for _, m := range ms {
		if err := run("m", fmt.Sprint(m), cfg.N, cfg.K, m, cfg.Seed); err != nil {
			return nil, err
		}
	}
	t.Notes = append(t.Notes,
		"expected shape: NC/TA stays below 100% across all sweeps; the gap widens with m",
		"paper artifact: Section 9 sensitivity analysis")
	return t, nil
}

// RunE10 runs the adaptivity experiment motivated by Section 1's "the Web
// is dynamic" requirement: mid-query, both sources' random accesses become
// 25x more expensive (a load spike). We compare TA (oblivious), a static
// NC plan optimized for the initial costs, and adaptive NC, which re-plans
// against the costs in force. Expected shape: adaptive <= static < TA —
// re-planning shifts remaining work toward the still-cheap sorted
// accesses.
func RunE10(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{
		ID:     "E10",
		Title:  "adaptivity: mid-query cost shift (random access 25x after a load spike)",
		Header: []string{"algorithm", "cost", "vs adaptive"},
	}
	grid := 7
	if cfg.Quick {
		grid = 5
	}
	ds, err := data.Generate(data.Uniform, cfg.N, 2, cfg.Seed)
	if err != nil {
		return nil, err
	}
	// Under avg with cheap probes, the optimized plan leans on random
	// accesses — which is exactly what the mid-query load spike punishes.
	scn := access.Uniform(2, 1, 1)
	shiftAt := 60
	if cfg.Quick {
		shiftAt = 15
	}
	shifts := []access.CostShift{
		{AfterAccesses: shiftAt, Pred: 0, RandomFactor: 25},
		{AfterAccesses: shiftAt, Pred: 1, RandomFactor: 25},
	}
	f := score.Avg()
	k := cfg.K

	runShifted := func(alg algo.Algorithm) (access.Cost, error) {
		return runAlgo(alg, ds, scn, f, k, access.WithShifts(shifts...))
	}

	// Static plan: optimized once against the *initial* scenario.
	plan, err := opt.Optimize(opt.Config{Grid: grid, Seed: cfg.Seed}, scn, f, k, ds.N())
	if err != nil {
		return nil, err
	}
	staticAlg, err := algo.NewNC(plan.H, plan.Omega)
	if err != nil {
		return nil, err
	}
	staticCost, err := runShifted(staticAlg)
	if err != nil {
		return nil, err
	}
	adaptive := &opt.Adaptive{Cfg: opt.Config{Grid: grid, Seed: cfg.Seed}, Period: 10}
	adaptiveCost, err := runShifted(adaptive)
	if err != nil {
		return nil, err
	}
	taCost, err := runShifted(algo.TA{})
	if err != nil {
		return nil, err
	}

	t.AddRow("NC-Adaptive", costStr(adaptiveCost), pct(adaptiveCost, adaptiveCost))
	t.AddRow(fmt.Sprintf("NC static H=%s", hStr(plan.H)), costStr(staticCost), pct(staticCost, adaptiveCost))
	t.AddRow("TA", costStr(taCost), pct(taCost, adaptiveCost))
	t.Notes = append(t.Notes,
		fmt.Sprintf("cost shift after %d accesses; adaptive re-planned %d time(s)", shiftAt, adaptive.Replans),
		"expected shape: adaptive <= static < TA once probes become expensive mid-query",
		"paper artifact: Section 1 adaptivity motivation / dynamic cost scenarios")
	return t, nil
}
