package bench

import (
	"fmt"

	"repro/internal/access"
	"repro/internal/data"
	"repro/internal/score"
)

// contour runs the Figure-11 experiment: evaluate the *actual* cost of
// every grid configuration H on the full dataset, locate the minimum (the
// paper marks it with a rectangle), and mark the depths TA reaches (the
// paper's oval) with TA's cost, so the two algorithms can be compared as
// points of the same space.
func contour(id, title, paperRef string, f score.Func, cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	g := 6
	if cfg.Quick {
		g = 4
	}
	ds, err := data.Generate(data.Uniform, cfg.N, 2, cfg.Seed)
	if err != nil {
		return nil, err
	}
	scn := access.Uniform(2, 1, 1)

	vals := make([]float64, g)
	for i := range vals {
		vals[i] = float64(i) / float64(g-1)
	}
	t := &Table{ID: id, Title: title}
	t.Header = append([]string{"h1\\h2"}, func() []string {
		hs := make([]string, g)
		for j, v := range vals {
			hs[j] = fmt.Sprintf("%.2f", v)
		}
		return hs
	}()...)

	bestCost := access.Cost(-1)
	var bestH [2]float64
	for _, h1 := range vals {
		row := []string{fmt.Sprintf("%.2f", h1)}
		for _, h2 := range vals {
			c, err := runNC([]float64{h1, h2}, nil, ds, scn, f, cfg.K)
			if err != nil {
				return nil, err
			}
			row = append(row, costStr(c))
			if bestCost < 0 || c < bestCost {
				bestCost, bestH = c, [2]float64{h1, h2}
			}
		}
		t.Rows = append(t.Rows, row)
	}

	taDepth, taCost, err := taEquivalentDepth(ds, scn, f, cfg.K)
	if err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("grid minimum (paper's rectangle): H=(%.2f,%.2f) cost %s", bestH[0], bestH[1], costStr(bestCost)),
		fmt.Sprintf("TA reaches depths (paper's oval): (%.2f,%.2f) at cost %s", taDepth[0], taDepth[1], costStr(taCost)),
		fmt.Sprintf("NC-at-minimum / TA = %s", pct(bestCost, taCost)),
		"paper artifact: "+paperRef,
	)
	return t, nil
}

// RunE1 regenerates Figure 11(a): scenario S1, F = avg, uniform scores,
// cs = cr = 1. Expected shape: the minimum sits near the diagonal (equal
// depths) close to where TA lands, and NC's advantage over TA is small.
func RunE1(cfg Config) (*Table, error) {
	return contour("E1", "cost contour over H — S1: F=avg, uniform, cs=cr=1", "Figure 11(a)", score.Avg(), cfg)
}

// RunE2 regenerates Figure 11(b): scenario S2, F = min. Expected shape:
// the minimum is an asymmetric, focused configuration (deep on one list,
// shallow on the other) and NC saves substantially (paper: ~30%) over TA's
// equal-depth point.
func RunE2(cfg Config) (*Table, error) {
	return contour("E2", "cost contour over H — S2: F=min, uniform, cs=cr=1", "Figure 11(b)", score.Min(), cfg)
}
