package bench

// Cluster scatter-gather throughput workload (BENCH_cluster.json): one
// large dataset served either by a single throttled source node or
// partitioned over several, with concurrent clients running the same
// top-k query against each deployment. Every node serves one entry at a
// time and each entry costs a fixed slice of wall time — the bounded
// per-source capacity the paper's cost model bills for — so aggregate
// throughput is capped by nodes/AccessCost and sharding the sources is
// the only way past one node's ceiling. The coordinator is rebuilt per
// query: no merged frontier survives between queries, so the measured
// speedup comes from scatter-gather parallelism alone, not from
// cross-query caching (the sharing layer exists for that and is
// measured by BENCH_share.json).
//
// cmd/topkbench -cluster drives this workload from the CLI;
// BenchmarkCluster and TestClusterGate (cluster_bench_test.go) pin the
// committed baseline.

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/access"
	"repro/internal/algo"
	"repro/internal/cluster"
	"repro/internal/data"
	"repro/internal/score"
)

// ClusterLoad parameterizes the workload. The zero value is usable: see
// withDefaults for the committed BENCH_cluster.json shape.
type ClusterLoad struct {
	// N, M, Dist, Seed shape the dataset (default zipf 1e6 x 3, seed 42:
	// large enough that the score matrix outgrows CPU caches). Dist is a
	// distribution name for data.DistributionByName; empty means zipf.
	N, M int
	Dist string
	Seed int64
	// K is the retrieval size (default 10).
	K int
	// Shards is the node count; 1 serves the whole dataset from one
	// throttled node (the baseline), >1 partitions it and scatter-gathers
	// through a cluster coordinator.
	Shards int
	// Workers is the number of concurrent query clients (default 16, so
	// the default Queries all run concurrently and the shards never
	// starve for demand).
	Workers int
	// Queries is the total query count across workers (default 12).
	Queries int
	// AccessCost is the simulated service time per entry at each node
	// (default 30us). Nodes serve serially, so one node's capacity is
	// 1/AccessCost entries per second regardless of client concurrency.
	// The default keeps node service time well above the client-side CPU
	// per query even when three shards split it, so the measured speedup
	// reflects source capacity — the paper's cost model — and survives a
	// single-core runner.
	AccessCost time.Duration
	// H and Omega fix the NC configuration every query runs, so the
	// per-query access footprint is identical across deployments (default
	// h=0.8 per predicate with the natural probe order — the measured
	// sweet spot for the default Zipf workload, ~52k entries/query at
	// n=10^6: shallower depths explode the probe phase, deeper ones
	// drain whole lists).
	H     []float64
	Omega []int
}

func (c ClusterLoad) withDefaults() ClusterLoad {
	if c.N == 0 {
		c.N = 1_000_000
	}
	if c.M == 0 {
		c.M = 3
	}
	if c.Dist == "" {
		c.Dist = data.Zipf.String()
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	if c.K == 0 {
		c.K = 10
	}
	if c.Shards == 0 {
		c.Shards = 1
	}
	if c.Workers == 0 {
		c.Workers = 16
	}
	if c.Queries == 0 {
		c.Queries = 12
	}
	if c.AccessCost == 0 {
		c.AccessCost = 30 * time.Microsecond
	}
	if c.H == nil {
		c.H = make([]float64, c.M)
		for i := range c.H {
			c.H[i] = 0.8
		}
	}
	return c
}

// ClusterLoadResult reports one deployment's measured throughput.
type ClusterLoadResult struct {
	Shards  int
	Queries int
	Elapsed time.Duration
	// QueriesPerSec is the aggregate client-side throughput.
	QueriesPerSec float64
	// NodeEntries counts entries actually served by the throttled nodes —
	// billed accesses plus coordinator prefetch overshoot — so
	// EntriesPerQuery exposes the scatter-gather fan-out tax directly.
	NodeEntries     int64
	EntriesPerQuery float64
}

func (r ClusterLoadResult) String() string {
	return fmt.Sprintf("shards=%d queries=%d elapsed=%v throughput=%.1f queries/s node-entries/query=%.0f",
		r.Shards, r.Queries, r.Elapsed.Round(time.Millisecond), r.QueriesPerSec, r.EntriesPerQuery)
}

// node throttles one source: a mutex serializes service and every entry
// costs AccessCost of wall time, modeling a single-threaded web source
// whose capacity does not grow with client concurrency. It wraps a
// cluster.Shard so the same type serves both deployments — directly as
// an access.Backend for the single-node baseline, and behind the
// coordinator for the sharded one.
type node struct {
	inner  cluster.Shard
	pages  cluster.PageBackend // non-nil when inner serves pages
	cost   time.Duration
	mu     sync.Mutex
	debt   time.Duration // accrued service time not yet slept off
	served atomic.Int64
}

// throttleQuantum batches the throttle sleeps: per-entry costs accrue as
// debt and the node only sleeps once at least this much is owed. A raw
// time.Sleep(10us) per entry would be dominated by timer granularity;
// millisecond sleeps are accurate, and measuring each sleep and crediting
// the oversleep back keeps long-run capacity at exactly 1/AccessCost.
const throttleQuantum = time.Millisecond

func newNode(inner cluster.Shard, cost time.Duration) *node {
	n := &node{inner: inner, cost: cost}
	if pb, ok := inner.(cluster.PageBackend); ok {
		n.pages = pb
	}
	return n
}

// serve charges the node's serial capacity for entries: the lock is held
// across the sleep on purpose — concurrent requests queue exactly like
// they would at a busy source.
func (t *node) serve(entries int) {
	t.mu.Lock()
	t.debt += time.Duration(entries) * t.cost
	if t.debt >= throttleQuantum {
		start := time.Now()
		//topklint:allow lockdiscipline sleeping under the lock IS the model: a serial source serves one request at a time
		time.Sleep(t.debt)
		t.debt -= time.Since(start) // oversleep becomes credit
	}
	t.mu.Unlock()
	t.served.Add(int64(entries))
}

func (t *node) N() int      { return t.inner.N() }
func (t *node) M() int      { return t.inner.M() }
func (t *node) LocalN() int { return t.inner.LocalN() }

func (t *node) Sorted(ctx context.Context, pred, rank int) (int, float64, error) {
	t.serve(1)
	return t.inner.Sorted(ctx, pred, rank)
}

func (t *node) Random(ctx context.Context, pred, obj int) (float64, error) {
	t.serve(1)
	return t.inner.Random(ctx, pred, obj)
}

func (t *node) BatchRandom(ctx context.Context, preds, objs []int) ([]float64, error) {
	t.serve(len(objs))
	return t.inner.(interface {
		BatchRandom(ctx context.Context, preds, objs []int) ([]float64, error)
	}).BatchRandom(ctx, preds, objs)
}

// SortedPage forwards one prefetch page, charging per entry: paging
// saves round trips, never service time.
func (t *node) SortedPage(ctx context.Context, pred, rank, count int) ([]cluster.Entry, error) {
	t.serve(count)
	return t.pages.SortedPage(ctx, pred, rank, count)
}

// RunClusterLoad builds the deployment and drives the workload, returning
// the measured throughput.
func RunClusterLoad(cfg ClusterLoad) (ClusterLoadResult, error) {
	cfg = cfg.withDefaults()
	dist, err := data.DistributionByName(cfg.Dist)
	if err != nil {
		return ClusterLoadResult{}, err
	}
	ds, err := data.Generate(dist, cfg.N, cfg.M, cfg.Seed)
	if err != nil {
		return ClusterLoadResult{}, err
	}
	return runClusterLoad(cfg, ds)
}

// runClusterLoad runs the workload over an already-built dataset (the
// gate test reuses one dataset across deployments).
func runClusterLoad(cfg ClusterLoad, ds *data.Dataset) (ClusterLoadResult, error) {
	cfg = cfg.withDefaults()
	scn := access.Uniform(cfg.M, 1, 1)
	f := score.Avg()

	var nodes []*node
	var backend func() (access.Backend, error)
	if cfg.Shards <= 1 {
		n := newNode(cluster.WrapShard(access.DatasetBackend{DS: ds}, ds.N()), cfg.AccessCost)
		nodes = []*node{n}
		backend = func() (access.Backend, error) { return n, nil }
	} else {
		parts, err := cluster.Partition(ds, cfg.Shards)
		if err != nil {
			return ClusterLoadResult{}, err
		}
		shards := make([]cluster.Shard, len(parts))
		for i, sd := range parts {
			n := newNode(cluster.NewLocalShard(sd), cfg.AccessCost)
			nodes = append(nodes, n)
			shards[i] = n
		}
		// A fresh coordinator per query: its merged frontier must not
		// leak between queries, or the measurement would credit caching
		// to sharding.
		backend = func() (access.Backend, error) {
			coord, err := cluster.New(shards, cluster.Options{})
			if err != nil {
				return nil, err
			}
			return coord, nil
		}
	}

	sel, err := algo.NewSRG(cfg.H, cfg.Omega)
	if err != nil {
		return ClusterLoadResult{}, err
	}
	alg := &algo.NC{Sel: sel}
	// Each worker owns one Scratch: at n=10^6 a fresh per-query score
	// table is tens of MB, and the GC churn of allocating one per query
	// steals the single measurement core and swamps the signal.
	runOne := func(sc *algo.Scratch) error {
		b, err := backend()
		if err != nil {
			return err
		}
		sess, err := access.NewSession(b, scn)
		if err != nil {
			return err
		}
		prob, err := algo.NewProblem(f, cfg.K, sess)
		if err != nil {
			return err
		}
		_, err = alg.RunScratch(prob, sc)
		return err
	}
	scratch := make([]*algo.Scratch, cfg.Workers)
	for i := range scratch {
		scratch[i] = new(algo.Scratch)
	}
	// Warm every worker's scratch to steady state (and surface workload
	// errors) before the clock starts. The throttle is lifted for the
	// warm-up — it exists to price the measured queries, and paying it
	// Workers more times here would dwarf the measurement — and restored
	// before the clock starts. No queries run concurrently with the
	// mutation.
	for _, n := range nodes {
		n.cost = 0
	}
	for _, sc := range scratch {
		if err := runOne(sc); err != nil {
			return ClusterLoadResult{}, err
		}
	}
	for _, n := range nodes {
		n.cost = cfg.AccessCost
		n.debt = 0
		n.served.Store(0)
	}

	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		errMu    sync.Mutex
		firstErr error
	)
	start := time.Now()
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(sc *algo.Scratch) {
			defer wg.Done()
			for next.Add(1) <= int64(cfg.Queries) {
				if err := runOne(sc); err != nil {
					errMu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					errMu.Unlock()
					return
				}
			}
		}(scratch[w])
	}
	wg.Wait()
	elapsed := time.Since(start)
	if firstErr != nil {
		return ClusterLoadResult{}, firstErr
	}

	var served int64
	for _, n := range nodes {
		served += n.served.Load()
	}
	return ClusterLoadResult{
		Shards:          cfg.Shards,
		Queries:         cfg.Queries,
		Elapsed:         elapsed,
		QueriesPerSec:   float64(cfg.Queries) / elapsed.Seconds(),
		NodeEntries:     served,
		EntriesPerQuery: float64(served) / float64(cfg.Queries),
	}, nil
}
