//go:build race

package bench

// raceEnabled reports that this binary was built with the race detector:
// wall-clock throughput gates skip, since instrumented client CPU skews
// the very ratio they enforce.
const raceEnabled = true
