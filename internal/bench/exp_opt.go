package bench

import (
	"fmt"

	"repro/internal/access"
	"repro/internal/algo"
	"repro/internal/data"
	"repro/internal/opt"
	"repro/internal/score"
	"repro/internal/state"
	"repro/internal/stats"
)

// RunE6 regenerates the appendix's scheme comparison: for several query
// scenarios, the plan quality (realized cost of the configuration each
// scheme picks) and the optimization overhead (number of simulation runs)
// of Naive, Strategies, and HClimb. Expected shape: all three land on
// similar-quality plans; Naive pays by far the most evaluations, HClimb is
// the best quality-per-overhead trade (the paper adopts it).
func RunE6(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{
		ID:     "E6",
		Title:  "optimization schemes: plan quality vs search overhead",
		Header: []string{"scenario", "scheme", "estimated cost", "realized cost", "estimator runs"},
	}
	grid := 7
	if cfg.Quick {
		grid = 5
	}
	type scenario struct {
		name string
		f    score.Func
		scn  access.Scenario
	}
	scns := []scenario{
		{"S1: avg, cs=cr=1", score.Avg(), access.Uniform(2, 1, 1)},
		{"S2: min, cs=cr=1", score.Min(), access.Uniform(2, 1, 1)},
		{"S3: min, cr=10cs", score.Min(), access.Uniform(2, 1, 10)},
	}
	for _, sc := range scns {
		ds, err := data.Generate(data.Uniform, cfg.N, 2, cfg.Seed)
		if err != nil {
			return nil, err
		}
		for _, scheme := range []opt.Scheme{opt.SchemeNaive, opt.SchemeStrategies, opt.SchemeHClimb} {
			ocfg := opt.Config{Scheme: scheme, Grid: grid, Seed: cfg.Seed}
			plan, err := opt.Optimize(ocfg, sc.scn, sc.f, cfg.K, ds.N())
			if err != nil {
				return nil, err
			}
			realized, err := runNC(plan.H, plan.Omega, ds, sc.scn, sc.f, cfg.K)
			if err != nil {
				return nil, err
			}
			t.AddRow(sc.name, scheme.String(), costStr(plan.EstimatedCost), costStr(realized), plan.Evals)
		}
	}
	t.Notes = append(t.Notes,
		"expected shape: comparable realized costs; HClimb and Strategies use far fewer estimator runs than Naive",
		"paper artifact: appendix scheme comparison (HClimb adopted for Section 9)")
	return t, nil
}

// rsSelector deliberately violates the SR (sorted-then-random) rule of
// Lemma 1: it probes first whenever a probe is available and falls back to
// sorted access only when it must. E8 uses it to quantify what the SR
// space reduction preserves.
type rsSelector struct{}

func (rsSelector) Name() string { return "RS (random-first)" }

func (rsSelector) Choose(tab *state.Table, sess algo.AccessContext, target int, choices []algo.Choice) algo.Choice {
	for _, ch := range choices {
		if ch.Kind == access.RandomAccess {
			return ch
		}
	}
	return choices[0]
}

// RunE8 runs the design-choice ablations of Section 7:
//
//	(a) the SR rule (Lemma 1): SR/G's best configuration against a
//	    random-first selector in a scenario with expensive probes;
//	(b) global probe scheduling: the optimizer's Omega against the reverse
//	    and the naive index order, in a probe-only scenario with
//	    heterogeneous predicate selectivities and costs;
//	(c) estimator samples: realized plan quality as the dummy-sample size
//	    grows, and with a real data sample of the same size.
func RunE8(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{
		ID:     "E8",
		Title:  "ablations: SR rule, global schedule Omega, estimator samples",
		Header: []string{"ablation", "variant", "cost", "vs best"},
	}
	grid := 7
	if cfg.Quick {
		grid = 5
	}

	// (a) SR vs random-first under expensive probes, F = min.
	ds, err := data.Generate(data.Uniform, cfg.N, 2, cfg.Seed)
	if err != nil {
		return nil, err
	}
	scn := access.Uniform(2, 1, 10)
	srCost, _, err := runOptimized(opt.Config{Grid: grid, Seed: cfg.Seed}, ds, scn, score.Min(), cfg.K)
	if err != nil {
		return nil, err
	}
	rsCost, err := runAlgo(&algo.NC{Sel: rsSelector{}}, ds, scn, score.Min(), cfg.K)
	if err != nil {
		return nil, err
	}
	best := srCost
	if rsCost < best {
		best = rsCost
	}
	t.AddRow("(a) Select rule", "SR/G (optimized)", costStr(srCost), pct(srCost, best))
	t.AddRow("(a) Select rule", "random-first", costStr(rsCost), pct(rsCost, best))

	// (b) Omega quality in a probe-only scenario with heterogeneous
	// predicates: p1 selective but costly, p2 unselective and cheap, p3
	// selective and cheap.
	hets, err := heterogeneousDataset(cfg.N, cfg.Seed+2)
	if err != nil {
		return nil, err
	}
	probeScn := access.Scenario{Name: "probe-het", Preds: []access.PredCost{
		{Sorted: access.CostOf(0.1), SortedOK: true, Random: access.CostOf(8), RandomOK: true},
		{Sorted: 0, SortedOK: false, Random: access.CostOf(1), RandomOK: true},
		{Sorted: 0, SortedOK: false, Random: access.CostOf(2), RandomOK: true},
	}}
	hetSample, err := data.Sample(hets, 50, cfg.Seed)
	if err != nil {
		return nil, err
	}
	goodOmega := opt.OptimizeOmega(hetSample, probeScn)
	badOmega := reversed(goodOmega)
	indexOmega := []int{0, 1, 2}
	h := []float64{0, 1, 1} // MPro-style: drain the retrieval list as needed
	variants := []struct {
		name  string
		omega []int
	}{
		{"optimized Omega " + fmt.Sprint(goodOmega), goodOmega},
		{"index order " + fmt.Sprint(indexOmega), indexOmega},
		{"reversed " + fmt.Sprint(badOmega), badOmega},
	}
	bestB := access.Cost(-1)
	costsB := make([]access.Cost, len(variants))
	for i, v := range variants {
		c, err := runNC(h, v.omega, hets, probeScn, score.Min(), cfg.K)
		if err != nil {
			return nil, err
		}
		costsB[i] = c
		if bestB < 0 || c < bestB {
			bestB = c
		}
	}
	for i, v := range variants {
		t.AddRow("(b) Omega", v.name, costStr(costsB[i]), pct(costsB[i], bestB))
	}

	// (c) Sample size and provenance: plan realized cost for growing dummy
	// samples, plus a real sample (Section 7.3's two sources of samples).
	sizes := []int{10, 25, 50, 100}
	if cfg.Quick {
		sizes = []int{10, 25, 50}
	}
	var cCosts []access.Cost
	var cNames []string
	for _, s := range sizes {
		c, _, err := runOptimized(opt.Config{Grid: grid, Seed: cfg.Seed, SampleSize: s}, ds, scn, score.Min(), cfg.K)
		if err != nil {
			return nil, err
		}
		cNames = append(cNames, fmt.Sprintf("dummy sample, s=%d", s))
		cCosts = append(cCosts, c)
	}
	hists, err := stats.Collect(ds, 16)
	if err != nil {
		return nil, err
	}
	histSample, err := stats.SynthesizeSample(hists, 50, cfg.Seed)
	if err != nil {
		return nil, err
	}
	c, _, err := runOptimized(opt.Config{Grid: grid, Seed: cfg.Seed, Sample: histSample}, ds, scn, score.Min(), cfg.K)
	if err != nil {
		return nil, err
	}
	cNames = append(cNames, "histogram sample, s=50")
	cCosts = append(cCosts, c)
	realSample, err := data.Sample(ds, 50, cfg.Seed)
	if err != nil {
		return nil, err
	}
	c, _, err = runOptimized(opt.Config{Grid: grid, Seed: cfg.Seed, Sample: realSample}, ds, scn, score.Min(), cfg.K)
	if err != nil {
		return nil, err
	}
	cNames = append(cNames, "real sample, s=50")
	cCosts = append(cCosts, c)
	bestC := cCosts[0]
	for _, x := range cCosts[1:] {
		if x < bestC {
			bestC = x
		}
	}
	for i := range cCosts {
		t.AddRow("(c) samples", cNames[i], costStr(cCosts[i]), pct(cCosts[i], bestC))
	}

	t.Notes = append(t.Notes,
		"expected shape: (a) SR/G well below random-first when probes are expensive;",
		"(b) optimized Omega is the cheapest schedule; (c) plan quality stabilizes with modest samples, real samples help but dummy ones already adapt to F, k, and costs",
		"paper artifact: Section 7 design choices (Lemma 1, global scheduling, Section 7.3 samples)")
	return t, nil
}

// heterogeneousDataset builds three predicates with distinct score
// distributions (selectivities): p1 skewed low, p2 mid-uniform, p3 skewed
// high, so probe schedules genuinely differ in value.
func heterogeneousDataset(n int, seed int64) (*data.Dataset, error) {
	base, err := data.Generate(data.Uniform, n, 3, seed)
	if err != nil {
		return nil, err
	}
	rows := make([][]float64, n)
	for u := 0; u < n; u++ {
		r := base.Scores(u)
		rows[u] = []float64{
			r[0] * r[0] * r[0],       // mean .25: selective
			r[1],                     // mean .5
			1 - (1-r[2])*(1-r[2])/2., // mean ~.83: unselective
		}
	}
	return data.New(fmt.Sprintf("heterogeneous(n=%d,seed=%d)", n, seed), rows)
}

func reversed(xs []int) []int {
	out := make([]int, len(xs))
	for i, x := range xs {
		out[len(xs)-1-i] = x
	}
	return out
}
