package bench

// BenchmarkCluster prices the scatter-gather deployment against the
// single-node baseline on the BENCH_cluster.json workload: zipf n=1e6 m=3,
// a fixed NC plan, 12 identical queries from 16 concurrent clients, nodes
// throttled at 30us of serial service per entry. ns/op is reported as
// wall-clock per query so the committed baseline reads directly as query
// latency under load. TestClusterGate enforces the headline contract — a
// 3-shard cluster must serve at least min_speedup_3_shards times the
// single node's throughput — over one shared dataset build.

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"

	"repro/internal/data"
)

// clusterDataset builds the committed workload's dataset once per process:
// at n=10^6 the generate-and-sort cost dwarfs a single deployment run.
var clusterDataset *data.Dataset

func clusterWorkloadDataset(tb testing.TB) *data.Dataset {
	tb.Helper()
	if clusterDataset == nil {
		cfg := ClusterLoad{}.withDefaults()
		dist, err := data.DistributionByName(cfg.Dist)
		if err != nil {
			tb.Fatal(err)
		}
		ds, err := data.Generate(dist, cfg.N, cfg.M, cfg.Seed)
		if err != nil {
			tb.Fatal(err)
		}
		clusterDataset = ds
	}
	return clusterDataset
}

func BenchmarkCluster(b *testing.B) {
	ds := clusterWorkloadDataset(b)
	for _, shards := range []int{1, 2, 3} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			var last ClusterLoadResult
			for i := 0; i < b.N; i++ {
				res, err := runClusterLoad(ClusterLoad{Shards: shards}, ds)
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			// Report per-query wall clock, not per-iteration: one
			// iteration is a whole 12-query deployment run and the
			// committed baseline (and benchtrend) track query latency.
			b.ReportMetric(float64(last.Elapsed.Nanoseconds())/float64(last.Queries), "ns/op")
			b.ReportMetric(last.QueriesPerSec, "queries/s")
			b.ReportMetric(last.EntriesPerQuery, "entries/query")
		})
	}
}

type clusterBaseline struct {
	Gate struct {
		MinSpeedup3 float64 `json:"min_speedup_3_shards"`
	} `json:"gate"`
}

// TestClusterGate is the distributed-throughput gate: sharding the sources
// three ways must at least double aggregate throughput on the committed
// workload. The measured single-core figure is ~2.3x (multi-core runners
// sit closer to the 3x capacity ratio), so the 2x floor absorbs scheduler
// noise without ever letting scatter-gather regress to parity.
func TestClusterGate(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster gate runs a full n=1e6 throughput measurement")
	}
	if raceEnabled {
		t.Skip("race instrumentation inflates client CPU and skews the throughput ratio")
	}
	raw, err := os.ReadFile("../../BENCH_cluster.json")
	if err != nil {
		t.Fatalf("committed baseline missing: %v", err)
	}
	var cb clusterBaseline
	if err := json.Unmarshal(raw, &cb); err != nil {
		t.Fatalf("BENCH_cluster.json unparseable: %v", err)
	}
	if cb.Gate.MinSpeedup3 == 0 {
		t.Fatal("BENCH_cluster.json gate values incomplete")
	}

	ds := clusterWorkloadDataset(t)
	single, err := runClusterLoad(ClusterLoad{Shards: 1}, ds)
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := runClusterLoad(ClusterLoad{Shards: 3}, ds)
	if err != nil {
		t.Fatal(err)
	}
	speedup := sharded.QueriesPerSec / single.QueriesPerSec
	t.Logf("single: %s", single)
	t.Logf("3-shard: %s (speedup %.2fx)", sharded, speedup)
	if speedup < cb.Gate.MinSpeedup3 {
		t.Errorf("3-shard speedup %.2fx below the %.1fx gate", speedup, cb.Gate.MinSpeedup3)
	}
	// The footprint guard: scatter-gather must not inflate the bill. The
	// coordinator's prefetch overshoot is ~0.1% measured; 5% is already a
	// design break.
	if sharded.EntriesPerQuery > single.EntriesPerQuery*1.05 {
		t.Errorf("3-shard serves %.0f entries/query vs %.0f single-node: prefetch overshoot out of bounds",
			sharded.EntriesPerQuery, single.EntriesPerQuery)
	}
}
