package bench

import (
	"context"
	"fmt"

	"repro/internal/access"
	"repro/internal/algo"
	"repro/internal/data"
	"repro/internal/opt"
	"repro/internal/parallel"
	"repro/internal/score"
)

// RunE7 regenerates the parallelization study (Section 9.1.1): execute the
// cost-optimized plan under growing concurrency bounds B and report
// elapsed (simulated) time against total access cost. Expected shape:
// elapsed time falls steeply with B while total cost stays at (or near)
// the sequential plan's — bounded concurrency accelerates the plan without
// abusing source resources.
func RunE7(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{
		ID:     "E7",
		Title:  "parallelization: elapsed time vs concurrency bound B",
		Header: []string{"B", "elapsed (s)", "total cost (s)", "speedup", "cost overhead"},
	}
	grid := 8
	if cfg.Quick {
		grid = 5
	}
	// Q1-style scenario: expensive probes dominate, so overlapping them
	// pays off the most.
	q1, _, err := data.Restaurants(cfg.N, cfg.Seed)
	if err != nil {
		return nil, err
	}
	scn := access.Scenario{Name: "example1", Preds: []access.PredCost{
		{Sorted: access.CostOf(0.2), SortedOK: true, Random: access.CostOf(1.0), RandomOK: true},
		{Sorted: access.CostOf(0.1), SortedOK: true, Random: access.CostOf(0.5), RandomOK: true},
	}}
	k := cfg.K
	plan, err := opt.Optimize(opt.Config{Grid: grid, Seed: cfg.Seed}, scn, score.Min(), k, q1.Dataset.N())
	if err != nil {
		return nil, err
	}
	sel, err := algo.NewSRG(plan.H, plan.Omega)
	if err != nil {
		return nil, err
	}
	bounds := []int{1, 2, 4, 8, 16, 32}
	if cfg.Quick {
		bounds = []int{1, 2, 4, 8}
	}
	var base *parallel.Result
	for _, b := range bounds {
		sess, err := access.NewSession(access.DatasetBackend{DS: q1.Dataset}, scn)
		if err != nil {
			return nil, err
		}
		prob, err := algo.NewProblem(score.Min(), k, sess)
		if err != nil {
			return nil, err
		}
		res, err := (&parallel.Executor{B: b, Sel: sel}).Run(context.Background(), prob)
		if err != nil {
			return nil, err
		}
		if base == nil {
			base = res
		}
		t.AddRow(b,
			fmt.Sprintf("%.1f", res.Elapsed),
			costStr(res.Cost()),
			fmt.Sprintf("%.2fx", base.Elapsed/res.Elapsed),
			pct(res.Cost(), base.Cost()))
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("plan: H=%s Omega=%v (optimized for the sequential cost model)", hStr(plan.H), plan.Omega),
		"expected shape: speedup grows with B; cost overhead stays near 100% (only necessary tasks are serviced)",
		"paper artifact: Section 9.1.1")
	return t, nil
}
