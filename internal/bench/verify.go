package bench

import (
	"fmt"
	"strconv"
	"strings"
)

// VerifyShape checks a generated table against the paper's qualitative
// claim for that experiment — the "expected shape" its notes describe. It
// returns nil when the shape holds, and a descriptive error otherwise, so
// `topkbench -verify` lets anyone confirm the reproduction on their own
// machine (shapes are asserted with slack; absolute numbers never are).
// Experiments without a mechanical shape check (the contour prints E1/E2,
// whose claims E3 covers) verify trivially.
func VerifyShape(t *Table) error {
	switch t.ID {
	case "E3":
		// min rows must beat TA; symmetric avg near parity; high cost
		// ratios must save at least 40%.
		for _, row := range t.Rows {
			f, ratio, rel := row[0], row[1], row[5]
			p, err := parsePct(rel)
			if err != nil {
				return err
			}
			switch {
			case f == "min" && p >= 100:
				return fmt.Errorf("E3: min row (cr/cs=%s) at %s, want < 100%%", ratio, rel)
			case ratio == "100" && p > 60:
				return fmt.Errorf("E3: cr/cs=100 row at %s, want <= 60%%", rel)
			case f == "avg" && ratio == "1" && p > 115:
				return fmt.Errorf("E3: symmetric avg row at %s, want near parity", rel)
			}
		}
	case "E4":
		// NC at most ~equal to every specialist (105% slack for noise).
		for _, row := range t.Rows {
			p, err := parsePct(row[4])
			if err != nil {
				return err
			}
			if p > 105 {
				return fmt.Errorf("E4: NC at %s of %s in %s", row[4], row[1], row[0])
			}
		}
	case "E5":
		// Q1: optimized NC strictly below every applicable baseline.
		for _, row := range t.Rows {
			if row[0] != "Q1 (min)" || row[1] == "n/a" {
				continue
			}
			if strings.HasPrefix(row[1], "NC-Opt") {
				p, err := parsePct(row[3])
				if err != nil {
					return err
				}
				if p > 100 {
					return fmt.Errorf("E5: Q1 NC at %s of the best baseline", row[3])
				}
			}
		}
	case "E6":
		// Naive must spend strictly more estimator runs than HClimb on
		// every scenario, at no better realized cost.
		runs := map[string]map[string]float64{}
		costs := map[string]map[string]float64{}
		for _, row := range t.Rows {
			scn, scheme := row[0], row[1]
			r, err := strconv.ParseFloat(row[4], 64)
			if err != nil {
				return fmt.Errorf("E6: bad runs %q", row[4])
			}
			c, err := strconv.ParseFloat(row[3], 64)
			if err != nil {
				return fmt.Errorf("E6: bad cost %q", row[3])
			}
			if runs[scn] == nil {
				runs[scn] = map[string]float64{}
				costs[scn] = map[string]float64{}
			}
			runs[scn][scheme] = r
			costs[scn][scheme] = c
		}
		for scn := range runs {
			if runs[scn]["Naive"] <= runs[scn]["HClimb"] {
				return fmt.Errorf("E6: %s: Naive ran %v estimates vs HClimb %v", scn, runs[scn]["Naive"], runs[scn]["HClimb"])
			}
			if costs[scn]["HClimb"] > 1.25*costs[scn]["Naive"] {
				return fmt.Errorf("E6: %s: HClimb realized cost %v too far above Naive %v", scn, costs[scn]["HClimb"], costs[scn]["Naive"])
			}
		}
	case "E7":
		// Highest B must show meaningful speedup at bounded cost overhead.
		last := t.Rows[len(t.Rows)-1]
		speedup, err := strconv.ParseFloat(strings.TrimSuffix(last[3], "x"), 64)
		if err != nil {
			return fmt.Errorf("E7: bad speedup %q", last[3])
		}
		overhead, err := parsePct(last[4])
		if err != nil {
			return err
		}
		if speedup < 2 {
			return fmt.Errorf("E7: top speedup %.2fx, want >= 2x", speedup)
		}
		if overhead > 150 {
			return fmt.Errorf("E7: cost overhead %s, want <= 150%%", last[4])
		}
	case "E8":
		// Random-first must be strictly worse than SR/G.
		for _, row := range t.Rows {
			if row[1] == "random-first" {
				p, err := parsePct(row[3])
				if err != nil {
					return err
				}
				if p <= 100 {
					return fmt.Errorf("E8: random-first at %s, want > 100%%", row[3])
				}
			}
		}
	case "E9":
		// Every sweep point: NC below TA.
		for _, row := range t.Rows {
			p, err := parsePct(row[4])
			if err != nil {
				return err
			}
			if p >= 100 {
				return fmt.Errorf("E9: %s=%s at %s, want < 100%%", row[0], row[1], row[4])
			}
		}
	case "E10":
		// TA must cost a multiple of the adaptive run.
		for _, row := range t.Rows {
			if row[0] == "TA" {
				p, err := parsePct(row[2])
				if err != nil {
					return err
				}
				if p < 150 {
					return fmt.Errorf("E10: TA at %s of adaptive, want >= 150%%", row[2])
				}
			}
		}
	case "E11":
		// Cost non-increasing down each scenario's epsilon column.
		prev := map[string]float64{}
		for _, row := range t.Rows {
			c, err := strconv.ParseFloat(row[2], 64)
			if err != nil {
				return fmt.Errorf("E11: bad cost %q", row[2])
			}
			if last, ok := prev[row[0]]; ok && c > last+1e-9 {
				return fmt.Errorf("E11: %s: cost rose to %v at eps=%s", row[0], c, row[1])
			}
			prev[row[0]] = c
		}
	}
	return nil
}

// parsePct parses "93%" into 93.
func parsePct(s string) (float64, error) {
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
	if err != nil {
		return 0, fmt.Errorf("bench: cannot parse percentage %q", s)
	}
	return v, nil
}
