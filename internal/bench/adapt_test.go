package bench_test

// Adaptivity benchmarks and their regression gate. Two questions are
// measured: what does the divergence monitor cost on a healthy (no-drift)
// serve path where it never fires, and what does mid-query re-planning
// buy on drifted data where the initial plan's statistics are wrong.
// TestAdaptGate enforces the committed BENCH_adapt.json budgets — the
// deterministic parts (allocations, billed access cost) rather than
// wall-clock, which the nightly benchtrend tracks instead.

import (
	"encoding/json"
	"math"
	"os"
	"testing"

	topk "repro"
	"repro/internal/data"
	"repro/internal/data/datatest"
)

type adaptBaseline struct {
	Gate struct {
		MaxAllocsAdaptiveFixed float64 `json:"max_allocs_per_op_adaptive_fixed"`
		MaxAllocOverhead       float64 `json:"max_alloc_overhead_vs_frozen"`
		MinCostReduction       float64 `json:"min_cost_reduction_drifted"`
	} `json:"gate"`
}

func loadAdaptBaseline(t *testing.T) adaptBaseline {
	t.Helper()
	raw, err := os.ReadFile("../../BENCH_adapt.json")
	if err != nil {
		t.Fatalf("committed baseline missing: %v", err)
	}
	var ab adaptBaseline
	if err := json.Unmarshal(raw, &ab); err != nil {
		t.Fatalf("BENCH_adapt.json unparseable: %v", err)
	}
	if ab.Gate.MaxAllocsAdaptiveFixed == 0 || ab.Gate.MaxAllocOverhead == 0 || ab.Gate.MinCostReduction == 0 {
		t.Fatal("BENCH_adapt.json gate values incomplete")
	}
	return ab
}

// driftedBenchDataset warps uniform scores through s^gamma: the adaptive
// workload where the planner's uniform sample is badly wrong.
func driftedBenchDataset(tb testing.TB, n, m int, seed int64, gamma float64) *data.Dataset {
	tb.Helper()
	base := datatest.MustGenerate(data.Uniform, n, m, seed)
	scores := make([][]float64, n)
	for u := 0; u < n; u++ {
		row := base.Scores(u)
		for i := range row {
			row[i] = math.Pow(row[i], gamma)
		}
		scores[u] = row
	}
	ds, err := data.New("drifted", scores)
	if err != nil {
		tb.Fatal(err)
	}
	return ds
}

// BenchmarkAdapt measures the monitored serve path. nodrift_frozen is the
// plain fixed-plan baseline; nodrift_adaptive runs the same queries with
// the divergence monitor checkpointing every 16 accesses (it never
// diverges — this is the pure overhead case); drift_adaptive runs the
// full pipeline over drifted data where re-planning actually fires.
func BenchmarkAdapt(b *testing.B) {
	uniform := datatest.MustGenerate(data.Uniform, 1000, 2, 42)
	q := topk.Query{F: topk.Avg(), K: 10}
	fixed := topk.WithNC([]float64{0.5, 0.5}, nil)

	b.Run("nodrift_frozen", func(b *testing.B) {
		eng, err := topk.NewEngine(topk.DataBackend(uniform), topk.UniformScenario(2, 1, 1))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := eng.Run(q, fixed); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("nodrift_adaptive", func(b *testing.B) {
		eng, err := topk.NewEngine(topk.DataBackend(uniform), topk.UniformScenario(2, 1, 1))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := eng.Run(q, fixed, topk.WithAdaptive(16)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("drift_adaptive", func(b *testing.B) {
		ds := driftedBenchDataset(b, 300, 3, 3, 6)
		eng, err := topk.NewEngine(topk.DataBackend(ds), topk.UniformScenario(3, 1, 10),
			topk.WithPlanCache(topk.NewPlanCache(0)))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := eng.Run(topk.Query{F: topk.Min(), K: 5}, topk.WithAdaptive(16)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// TestAdaptGate is the adaptivity regression gate. It enforces the two
// deterministic contracts of the PR: (1) the monitored no-drift serve
// path stays within the committed allocation budget — the divergence
// monitor must not reintroduce per-access allocation; (2) on the drifted
// probe-expensive workload, mid-query re-planning cuts billed access cost
// by at least the committed factor against the frozen plan.
func TestAdaptGate(t *testing.T) {
	if testing.Short() {
		t.Skip("adapt gate needs steady-state measurement")
	}
	ab := loadAdaptBaseline(t)

	// (1) Allocation overhead of the never-firing monitor.
	uniform := datatest.MustGenerate(data.Uniform, 1000, 2, 42)
	q := topk.Query{F: topk.Avg(), K: 10}
	fixed := topk.WithNC([]float64{0.5, 0.5}, nil)
	eng, err := topk.NewEngine(topk.DataBackend(uniform), topk.UniformScenario(2, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	frozenRun := func() {
		if _, err := eng.Run(q, fixed); err != nil {
			t.Fatal(err)
		}
	}
	adaptiveRun := func() {
		if _, err := eng.Run(q, fixed, topk.WithAdaptive(16)); err != nil {
			t.Fatal(err)
		}
	}
	frozenRun()
	adaptiveRun() // warm pools to steady state
	frozen := testing.AllocsPerRun(50, frozenRun)
	adaptive := testing.AllocsPerRun(50, adaptiveRun)
	if adaptive > ab.Gate.MaxAllocsAdaptiveFixed {
		t.Errorf("monitored fixed-plan path allocates %.1f/op, gate is %.0f", adaptive, ab.Gate.MaxAllocsAdaptiveFixed)
	}
	if overhead := adaptive - frozen; overhead > ab.Gate.MaxAllocOverhead {
		t.Errorf("monitor adds %.1f allocs/op over the frozen path, gate is %.0f", overhead, ab.Gate.MaxAllocOverhead)
	}

	// (2) Cost reduction on drifted data (deterministic: billed units).
	ds := driftedBenchDataset(t, 300, 3, 3, 6)
	deng, err := topk.NewEngine(topk.DataBackend(ds), topk.UniformScenario(3, 1, 10))
	if err != nil {
		t.Fatal(err)
	}
	fz, err := deng.Run(topk.Query{F: topk.Min(), K: 5})
	if err != nil {
		t.Fatal(err)
	}
	ad, err := deng.Run(topk.Query{F: topk.Min(), K: 5}, topk.WithAdaptive(16))
	if err != nil {
		t.Fatal(err)
	}
	if factor := fz.TotalCost().Units() / ad.TotalCost().Units(); factor < ab.Gate.MinCostReduction {
		t.Errorf("adaptive cost reduction on drifted data is %.2fx, contract is >=%.1fx", factor, ab.Gate.MinCostReduction)
	}
}
