package bench

import (
	"testing"

	"repro/internal/access"
	"repro/internal/algo"
	"repro/internal/data"
	"repro/internal/data/datatest"
	"repro/internal/opt"
	"repro/internal/score"
)

// TestPaperShapesHold is the regression net for the scientific claims
// themselves (not just "experiments run"): at a moderate full-ish size it
// asserts the directional results every experiment's notes promise. If an
// algorithm or optimizer change silently degrades a headline result, this
// fails before EXPERIMENTS.md goes stale.
func TestPaperShapesHold(t *testing.T) {
	if testing.Short() {
		t.Skip("shape regression needs full-size runs")
	}
	n, k, seed := 600, 10, int64(1)
	ds := datatest.MustGenerate(data.Uniform, n, 2, seed)
	grid := 7

	nc := func(scn access.Scenario, f score.Func) access.Cost {
		t.Helper()
		c, _, err := runOptimized(opt.Config{Grid: grid, Seed: seed}, ds, scn, f, k)
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	baseline := func(alg algo.Algorithm, scn access.Scenario, f score.Func) access.Cost {
		t.Helper()
		c, err := runAlgo(alg, ds, scn, f, k)
		if err != nil {
			t.Fatal(err)
		}
		return c
	}

	// E2/E3: under min at symmetric costs, optimized NC clearly beats TA
	// (paper: ~30% savings; we consistently see >= 25%).
	uni := access.Uniform(2, 1, 1)
	if c, ta := nc(uni, score.Min()), baseline(algo.TA{}, uni, score.Min()); float64(c) > 0.75*float64(ta) {
		t.Errorf("min symmetric: NC %v vs TA %v — savings below 25%%", c, ta)
	}
	// E3: expensive probes blow TA up; NC stays near its sorted-only cost.
	exp := access.Uniform(2, 1, 10)
	if c, ta := nc(exp, score.Min()), baseline(algo.TA{}, exp, score.Min()); float64(c) > 0.3*float64(ta) {
		t.Errorf("min cr=10: NC %v vs TA %v — savings below 70%%", c, ta)
	}
	// E1: avg symmetric is near parity (NC within [70%, 105%] of TA).
	if c, ta := nc(uni, score.Avg()), baseline(algo.TA{}, uni, score.Avg()); float64(c) > 1.05*float64(ta) || float64(c) < 0.5*float64(ta) {
		t.Errorf("avg symmetric: NC %v vs TA %v — outside the parity band", c, ta)
	}
	// E4: NC at worst ~equal to CA in CA's home cell.
	caCell := access.MatrixCell(2, access.Cheap, access.Expensive, 10)
	if c, ca := nc(caCell, score.Avg()), baseline(algo.CA{}, caCell, score.Avg()); float64(c) > 1.05*float64(ca) {
		t.Errorf("CA cell: NC %v vs CA %v", c, ca)
	}
	// E10: adaptivity beats an oblivious baseline under a mid-query spike.
	shifts := []access.CostShift{
		{AfterAccesses: 40, Pred: 0, RandomFactor: 25},
		{AfterAccesses: 40, Pred: 1, RandomFactor: 25},
	}
	adaptive := &opt.Adaptive{Cfg: opt.Config{Grid: grid, Seed: seed}, Period: 10}
	ac, err := runAlgo(adaptive, ds, uni, score.Avg(), k, access.WithShifts(shifts...))
	if err != nil {
		t.Fatal(err)
	}
	tc, err := runAlgo(algo.TA{}, ds, uni, score.Avg(), k, access.WithShifts(shifts...))
	if err != nil {
		t.Fatal(err)
	}
	if float64(ac) > 0.5*float64(tc) {
		t.Errorf("adaptivity: adaptive %v vs TA %v — savings below 50%%", ac, tc)
	}
}

// TestVerifyShapeOnRealOutputs runs every experiment (quick mode for the
// non-percentage-sensitive ones would be noisy, so use default size for
// the checked ones) and feeds the result through VerifyShape.
func TestVerifyShapeOnRealOutputs(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size experiment runs")
	}
	cfg := Config{}
	for _, id := range []string{"E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11"} {
		e, ok := ByID(id)
		if !ok {
			t.Fatalf("missing %s", id)
		}
		tab, err := e.Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if err := VerifyShape(tab); err != nil {
			t.Errorf("%s shape: %v", id, err)
		}
	}
}

func TestVerifyShapeCatchesViolations(t *testing.T) {
	bad := &Table{ID: "E9", Rows: [][]string{{"n", "250", "100.0", "150.0", "150%"}}}
	if err := VerifyShape(bad); err == nil {
		t.Error("E9 violation not caught")
	}
	bad = &Table{ID: "E3", Rows: [][]string{{"min", "1", "uniform", "100.0", "120.0", "120%"}}}
	if err := VerifyShape(bad); err == nil {
		t.Error("E3 violation not caught")
	}
	bad = &Table{ID: "E11", Rows: [][]string{
		{"s", "0.00", "100.0", "100%", "0"},
		{"s", "0.50", "150.0", "150%", "0"},
	}}
	if err := VerifyShape(bad); err == nil {
		t.Error("E11 violation not caught")
	}
	// Unchecked experiments verify trivially.
	if err := VerifyShape(&Table{ID: "E1"}); err != nil {
		t.Errorf("E1 should verify trivially: %v", err)
	}
	// Garbage percentages surface as errors.
	bad = &Table{ID: "E9", Rows: [][]string{{"n", "250", "x", "y", "zonk"}}}
	if err := VerifyShape(bad); err == nil {
		t.Error("garbage row should fail")
	}
}
