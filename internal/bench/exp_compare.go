package bench

import (
	"errors"
	"fmt"

	"repro/internal/access"
	"repro/internal/algo"
	"repro/internal/data"
	"repro/internal/opt"
	"repro/internal/score"
)

// RunE3 regenerates Figure 12: relative access cost of optimized NC
// normalized to TA (TA = 100%) across symmetric and asymmetric scenarios —
// varying the scoring function (avg vs min) and the random/sorted cost
// ratio. Expected shape: near parity in the symmetric case (avg, cr=cs),
// growing NC savings as asymmetry grows (min, or expensive random access).
func RunE3(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{
		ID:     "E3",
		Title:  "optimized NC vs TA across scenarios (TA = 100%)",
		Header: []string{"F", "cr/cs", "distribution", "TA cost", "NC cost", "NC/TA"},
	}
	grid := 8
	if cfg.Quick {
		grid = 5
	}
	funcs := []score.Func{score.Avg(), score.Min()}
	ratios := []float64{1, 10, 100}
	dists := []data.Distribution{data.Uniform, data.AntiCorrelated}
	for _, f := range funcs {
		for _, r := range ratios {
			for _, dist := range dists {
				ds, err := data.Generate(dist, cfg.N, 2, cfg.Seed)
				if err != nil {
					return nil, err
				}
				scn := access.Uniform(2, 1, r)
				taCost, err := runAlgo(algo.TA{}, ds, scn, f, cfg.K)
				if err != nil {
					return nil, err
				}
				ncCost, _, err := runOptimized(opt.Config{Grid: grid, Seed: cfg.Seed}, ds, scn, f, cfg.K)
				if err != nil {
					return nil, err
				}
				t.AddRow(f.Name(), fmt.Sprintf("%g", r), dist.String(), costStr(taCost), costStr(ncCost), pct(ncCost, taCost))
			}
		}
	}
	t.Notes = append(t.Notes,
		"expected shape: NC ~= TA for (avg, cr/cs=1); NC saves under min and under expensive random access",
		"paper artifact: Figure 12")
	return t, nil
}

// RunE4 regenerates the Figure 2 matrix study: in each access-scenario
// cell, optimized NC against the specialist algorithm designed for that
// cell. Expected shape: NC matches or beats each specialist on its home
// turf, and covers the "?" cell (random cheaper than sorted, Example 2)
// where no specialist exists.
func RunE4(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{
		ID:     "E4",
		Title:  "optimized NC vs each cell's specialist (Figure 2 matrix)",
		Header: []string{"cell (sa, ra)", "specialist", "specialist cost", "NC cost", "NC/specialist"},
	}
	grid := 8
	if cfg.Quick {
		grid = 5
	}
	ds, err := data.Generate(data.Uniform, cfg.N, 2, cfg.Seed)
	if err != nil {
		return nil, err
	}
	f := score.Avg()
	type cell struct {
		name string
		scn  access.Scenario
		spec []algo.Algorithm
	}
	cells := []cell{
		{"(cheap, cheap)", access.MatrixCell(2, access.Cheap, access.Cheap, 10), []algo.Algorithm{algo.TA{}, algo.FA{}, algo.QuickCombine{}}},
		{"(cheap, expensive)", access.MatrixCell(2, access.Cheap, access.Expensive, 10), []algo.Algorithm{algo.CA{}, algo.SRCombine{}}},
		{"(cheap, impossible)", access.MatrixCell(2, access.Cheap, access.Impossible, 10), []algo.Algorithm{algo.NRA{}, algo.StreamCombine{}}},
		{"(impossible, expensive)", access.MatrixCell(2, access.Impossible, access.Expensive, 10), []algo.Algorithm{algo.MPro{}, algo.Upper{}}},
		{"(expensive, cheap) — the paper's ?", access.MatrixCell(2, access.Expensive, access.Cheap, 10), []algo.Algorithm{algo.TA{}}},
	}
	for _, c := range cells {
		ncCost, _, err := runOptimized(opt.Config{Grid: grid, Seed: cfg.Seed}, ds, c.scn, f, cfg.K)
		if err != nil {
			return nil, err
		}
		for _, spec := range c.spec {
			sc, err := runAlgo(spec, ds, c.scn, f, cfg.K)
			if err != nil {
				return nil, err
			}
			t.AddRow(c.name, spec.Name(), costStr(sc), costStr(ncCost), pct(ncCost, sc))
		}
	}
	t.Notes = append(t.Notes,
		"expected shape: NC/specialist <= ~100% in every cell; the (expensive, cheap) cell has no purpose-built algorithm (paper's '?')",
		"paper artifact: Figure 2 / Section 9 synthetic study")
	return t, nil
}

// RunE5 regenerates the travel-agent benchmark (the paper's real-life
// study): Query Q1 (top-5 restaurants by min(rating, closeness) with
// expensive random access, Example 1's cost structure) and Query Q2 (top-5
// hotels by avg(closeness, rating, cheap) where sorted access also fetches
// all attributes, so random accesses are free, Example 2). Expected shape:
// optimized NC is the best or tied-best middleware plan on both queries;
// the Q2 scenario ("random cheaper") is where the existing algorithms were
// never designed to operate.
func RunE5(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{
		ID:     "E5",
		Title:  "travel-agent benchmark: Q1 (restaurants) and Q2 (hotels)",
		Header: []string{"query", "algorithm", "cost (s)", "vs best baseline"},
	}
	grid := 8
	if cfg.Quick {
		grid = 5
	}
	k := 5

	// Q1 — Example 1: dineme.com (rating: cs=0.2, cr=1.0), superpages.com
	// (closeness: cs=0.1, cr=0.5); random access costlier in both sources,
	// with different scales and ratios.
	q1, _, err := data.Restaurants(cfg.N, cfg.Seed)
	if err != nil {
		return nil, err
	}
	q1scn := access.Scenario{Name: "example1", Preds: []access.PredCost{
		{Sorted: access.CostOf(0.2), SortedOK: true, Random: access.CostOf(1.0), RandomOK: true},
		{Sorted: access.CostOf(0.1), SortedOK: true, Random: access.CostOf(0.5), RandomOK: true},
	}}
	if err := addBenchmarkRows(t, "Q1 (min)", q1.Dataset, q1scn, score.Min(), k, grid, cfg.Seed); err != nil {
		return nil, err
	}

	// Q2 — Example 2: hotels.com serves all three predicates by sorted
	// access (cs=0.3 each); the attributes come along, so subsequent
	// random accesses are free (cr=0).
	q2, _, err := data.Hotels(cfg.N, cfg.Seed+1)
	if err != nil {
		return nil, err
	}
	free := access.PredCost{Sorted: access.CostOf(0.3), SortedOK: true, Random: 0, RandomOK: true}
	q2scn := access.Scenario{Name: "example2", Preds: []access.PredCost{free, free, free}}
	if err := addBenchmarkRows(t, "Q2 (avg)", q2.Dataset, q2scn, score.Avg(), k, grid, cfg.Seed); err != nil {
		return nil, err
	}

	t.Notes = append(t.Notes,
		"Q1: random access expensive (Example 1); Q2: random access free once seen (Example 2, the '?' cell)",
		"algorithms inapplicable to a scenario or function are reported as n/a",
		"paper artifact: travel-agent benchmark, Section 9 real-life study")
	return t, nil
}

func addBenchmarkRows(t *Table, label string, ds *data.Dataset, scn access.Scenario, f score.Func, k, grid int, seed int64) error {
	baselines := []algo.Algorithm{algo.FA{}, algo.TA{}, algo.CA{}, algo.QuickCombine{}}
	type entry struct {
		name string
		cost access.Cost
		ok   bool
	}
	var entries []entry
	bestBaseline := access.Cost(-1)
	for _, b := range baselines {
		c, err := runAlgo(b, ds, scn, f, k)
		if err != nil {
			if errors.Is(err, algo.ErrInapplicable) {
				entries = append(entries, entry{name: b.Name()})
				continue
			}
			return err
		}
		entries = append(entries, entry{name: b.Name(), cost: c, ok: true})
		if bestBaseline < 0 || c < bestBaseline {
			bestBaseline = c
		}
	}
	// NC optimized twice: against a dummy uniform sample (the paper's
	// worst-case validation, Section 7.3) and against a real data sample
	// (what a deployed travel middleware would keep as statistics).
	ncDummy, planDummy, err := runOptimized(opt.Config{Grid: grid, Seed: seed}, ds, scn, f, k)
	if err != nil {
		return err
	}
	sample, err := data.Sample(ds, 100, seed)
	if err != nil {
		return err
	}
	ncSampled, planSampled, err := runOptimized(opt.Config{Grid: grid, Seed: seed, Sample: sample}, ds, scn, f, k)
	if err != nil {
		return err
	}
	for _, e := range entries {
		if !e.ok {
			t.AddRow(label, e.name, "n/a", "n/a")
			continue
		}
		t.AddRow(label, e.name, costStr(e.cost), pct(e.cost, bestBaseline))
	}
	t.AddRow(label, fmt.Sprintf("NC-Opt dummy-sample H=%s", hStr(planDummy.H)), costStr(ncDummy), pct(ncDummy, bestBaseline))
	t.AddRow(label, fmt.Sprintf("NC-Opt real-sample H=%s", hStr(planSampled.H)), costStr(ncSampled), pct(ncSampled, bestBaseline))
	return nil
}
