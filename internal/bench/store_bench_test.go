package bench

// BenchmarkStoreAccess prices the disk store's two access paths on the
// BENCH_store.json workload (zipf n=1e6 m=3): ns/op is nanoseconds per
// access, so the committed baseline reads directly as the physical cs
// and cr the calibrator should rediscover. TestStoreGate enforces the
// headline contract: the measured cr/cs asymmetry is real (ratio above
// the gate floor) and feeding it to the optimizer shifts the plan enough
// to cut the billed cost of at least one Figure-2 cell by the gated
// fraction versus planning under the uniform-cost assumption.

import (
	"context"
	"encoding/json"
	"math/rand"
	"os"
	"strconv"
	"testing"

	"repro/internal/store"
)

// StoreGateNEnv lets CI tiers shrink the workload: the storage job runs
// the gate at n=10^5 against its cached dataset; the committed
// BENCH_store.json figures are from the full n=10^6 run.
const StoreGateNEnv = "TOPK_STORE_GATE_N"

func storeGateLoad(tb testing.TB) StoreLoad {
	tb.Helper()
	cfg := StoreLoad{}
	if v := os.Getenv(StoreGateNEnv); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			tb.Fatalf("%s=%q is not a positive integer", StoreGateNEnv, v)
		}
		cfg.N = n
	}
	return cfg.withDefaults()
}

// benchStore opens (building at most once per process) the workload's
// cached store directory.
func benchStore(tb testing.TB) *store.Store {
	tb.Helper()
	s, built, err := EnsureStore(storeGateLoad(tb))
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(func() { s.Close() })
	if built {
		tb.Logf("store cache miss: built %s", s.Dir())
	}
	return s
}

func BenchmarkStoreAccess(b *testing.B) {
	s := benchStore(b)
	ctx := context.Background()
	b.Run("zipf/sorted", func(b *testing.B) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			pred := i % s.M()
			rank := (i / s.M()) % s.N()
			if _, _, err := s.Sorted(ctx, pred, rank); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("zipf/random", func(b *testing.B) {
		rng := rand.New(rand.NewSource(1))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := s.Random(ctx, rng.Intn(s.M()), rng.Intn(s.N())); err != nil {
				b.Fatal(err)
			}
		}
	})
}

type storeBaseline struct {
	Gate struct {
		MinCrOverCs  float64 `json:"min_cr_over_cs"`
		MinAdvantage float64 `json:"min_plan_shift_advantage"`
	} `json:"gate"`
}

// TestStoreGate is the measured-cost gate: calibration from real IO must
// find random access genuinely dearer than sorted (cr/cs above the
// floor — the uniform assumption is wrong on this hardware), and the
// optimizer given the measured costs must beat the optimizer given
// uniform costs by the gated margin on at least one Figure-2 cell, both
// plans billed against the store's real prices.
func TestStoreGate(t *testing.T) {
	if testing.Short() {
		t.Skip("store gate calibrates and sweeps a large on-disk dataset")
	}
	if raceEnabled {
		t.Skip("race instrumentation distorts the timed IO calibration")
	}
	raw, err := os.ReadFile("../../BENCH_store.json")
	if err != nil {
		t.Fatalf("committed baseline missing: %v", err)
	}
	var sb storeBaseline
	if err := json.Unmarshal(raw, &sb); err != nil {
		t.Fatalf("BENCH_store.json unparseable: %v", err)
	}
	if sb.Gate.MinCrOverCs == 0 || sb.Gate.MinAdvantage == 0 {
		t.Fatal("BENCH_store.json gate values incomplete")
	}

	res, err := RunStoreLoad(storeGateLoad(t))
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("store %s (built=%v, n=%d)", res.Dir, res.Built, res.N)
	t.Logf("warm: %s (cr/cs %.1fx)", res.Warm.Key(), res.Warm.Ratio())
	t.Logf("cold: %s (cr/cs %.1fx)", res.Cold.Key(), res.Cold.Ratio())
	for _, sh := range res.Shifts {
		t.Logf("%-12s f=%-4s k=%-3d uniform-plan %10.3fms measured-plan %10.3fms advantage %5.1f%%",
			sh.Cell, sh.F, sh.K, sh.Uniform, sh.Measured, sh.Advantage*100)
	}

	if r := res.Warm.Ratio(); r < sb.Gate.MinCrOverCs {
		t.Errorf("warm cr/cs %.2fx below the %.1fx gate: the store is not exhibiting the access asymmetry the optimizer exists to exploit", r, sb.Gate.MinCrOverCs)
	}
	if res.BestAdvantage < sb.Gate.MinAdvantage {
		t.Errorf("best plan-shift advantage %.1f%% below the %.0f%% gate: measured costs did not move the plan",
			res.BestAdvantage*100, sb.Gate.MinAdvantage*100)
	}
	// Totals are reported but not gated: on cells where the estimator's
	// cardinality model is biased (avg at large k) the measured-cost plan
	// can bill worse despite truer prices, and that is the estimator's
	// bug to fix, not this gate's contract.
	t.Logf("sweep totals: uniform-plan %.3fms, measured-plan %.3fms", res.TotalUniform, res.TotalMeasured)
}
