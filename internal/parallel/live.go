package parallel

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/access"
	"repro/internal/algo"
	"repro/internal/obs"
	"repro/internal/score"
	"repro/internal/state"
)

// liveObsKind maps an access kind onto the observability mirror type.
func liveObsKind(k access.Kind) obs.AccessKind {
	if k == access.SortedAccess {
		return obs.Sorted
	}
	return obs.Random
}

// liveDenyReason classifies a failed live access for the observer.
func liveDenyReason(ctx context.Context, err error) obs.DenyReason {
	if ctx.Err() != nil || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return obs.DenyCancelled
	}
	return obs.DenyBackend
}

// Live executes a query against a real Backend (typically the HTTP
// web-source client of internal/websim) with genuinely concurrent
// requests, bounded by B — the deployment counterpart of the simulated
// Executor. It applies the same dispatch policy (necessary tasks only,
// pipelined sorted streams, one access per task at a time) but measures
// wall-clock time instead of simulating it, and acts as its own
// middleware runtime: it enforces legality and keeps the cost ledger,
// since a shared access.Session is deliberately single-threaded.
type Live struct {
	B   int
	Sel algo.Selector
	Scn access.Scenario
	// DisableNWG lifts the no-wild-guesses rule.
	DisableNWG bool
	// PerPredLimit additionally caps concurrent requests per predicate
	// (i.e. per source) — the politeness bound that keeps a B-way
	// middleware from hammering one slow source. Zero means no per-source
	// cap beyond B.
	PerPredLimit int
	// Obs, when non-nil, receives the run's events: AccessDone when an
	// access is billed (at dispatch — Live is its own cost ledger),
	// AccessDenied on backend failures, InflightChange around every
	// request, and DispatchStall when slots idle. It must be safe for
	// concurrent use; all emissions here happen under the coordinator.
	Obs obs.Observer
}

// LiveResult reports a live run: answers, the modeled cost ledger, and the
// actual wall-clock time spent.
type LiveResult struct {
	Items  []algo.Item
	Ledger access.Ledger
	Wall   time.Duration
}

// Cost returns the modeled total access cost.
func (r *LiveResult) Cost() access.Cost { return r.Ledger.TotalCost }

// liveState is the mutex-guarded middleware bookkeeping. Its
// algo.AccessContext methods are plain reads: the coordinator holds the
// lock around every piece of control logic, releasing it only while
// blocked on network completions.
type liveState struct {
	scn    access.Scenario
	nwg    bool
	n      int
	cursor []int
	probed [][]bool
	seen   []bool
	ns, nr []int
	cost   access.Cost
}

func (s *liveState) M() int                      { return len(s.scn.Preds) }
func (s *liveState) Costs(i int) access.PredCost { return s.scn.Preds[i] }
func (s *liveState) SortedExhausted(i int) bool  { return s.cursor[i] >= s.n }
func (s *liveState) Probed(i, u int) bool        { return s.probed[i][u] }
func (s *liveState) Seen(u int) bool             { return s.seen[u] }
func (s *liveState) NoWildGuesses() bool         { return s.nwg }

var _ algo.AccessContext = (*liveState)(nil)

// completion is one finished backend call.
type completion struct {
	kind  access.Kind
	pred  int
	obj   int
	task  int
	rank  int
	score float64
	err   error
}

// Run executes the query live. The backend must be safe for concurrent
// use (websim clients and DatasetBackend are). Cancelling the context
// aborts the run, including every in-flight backend request.
func (l *Live) Run(ctx context.Context, b access.Backend, f score.Func, k int) (*LiveResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if l.B < 1 {
		return nil, fmt.Errorf("parallel: live concurrency bound must be >= 1, got %d", l.B)
	}
	if l.Sel == nil {
		return nil, fmt.Errorf("parallel: live executor requires a selector")
	}
	if err := l.Scn.Validate(b.M()); err != nil {
		return nil, err
	}
	if k < 1 {
		return nil, fmt.Errorf("parallel: retrieval size must be >= 1, got %d", k)
	}
	start := time.Now()
	n, m := b.N(), b.M()
	tab, err := state.NewTable(n, m, f)
	if err != nil {
		return nil, err
	}
	st := &liveState{
		scn:    l.Scn,
		nwg:    !l.DisableNWG,
		n:      n,
		cursor: make([]int, m),
		probed: make([][]bool, m),
		seen:   make([]bool, n),
		ns:     make([]int, m),
		nr:     make([]int, m),
	}
	for i := range st.probed {
		st.probed[i] = make([]bool, n)
	}
	q := state.NewQueue(tab, st.nwg)
	emitted := make([]bool, n)
	taskBusy := make(map[int]bool, l.B)
	predInFlight := make([]int, m)
	applyRank := make([]int, m)
	sortedBuf := make([]map[int]completion, m)
	for i := range sortedBuf {
		sortedBuf[i] = make(map[int]completion)
	}

	// Buffered so that in-flight goroutines can always deliver and exit
	// even if Run has already returned (e.g. on error).
	results := make(chan completion, l.B)
	var mu sync.Mutex
	mu.Lock()
	defer mu.Unlock()
	inflight := 0

	launch := func(c completion) {
		go func() {
			switch c.kind {
			case access.SortedAccess:
				//topklint:allow billedaccess the live executor keeps its own ledger; every completion is billed on delivery
				obj, sc, err := b.Sorted(ctx, c.pred, c.rank)
				c.obj, c.score, c.err = obj, sc, err
			case access.RandomAccess:
				//topklint:allow billedaccess the live executor keeps its own ledger; every completion is billed on delivery
				sc, err := b.Random(ctx, c.pred, c.obj)
				c.score, c.err = sc, err
			}
			results <- c
		}()
	}

	// dispatchOne mirrors the simulated executor's policy; it must be
	// called with mu held.
	dispatchOne := func() bool {
		for _, cand := range q.TopN(k) {
			if taskBusy[cand.ID] {
				continue
			}
			if cand.ID != state.UnseenID && tab.Complete(cand.ID) {
				continue
			}
			choices := algo.NecessaryChoices(tab, st, cand.ID)
			if l.PerPredLimit > 0 {
				filtered := choices[:0]
				for _, ch := range choices {
					if predInFlight[ch.Pred] < l.PerPredLimit {
						filtered = append(filtered, ch)
					}
				}
				choices = filtered
			}
			if len(choices) == 0 {
				continue
			}
			ch := l.Sel.Choose(tab, st, cand.ID, choices)
			c := completion{kind: ch.Kind, pred: ch.Pred, task: cand.ID}
			switch ch.Kind {
			case access.SortedAccess:
				c.rank = st.cursor[ch.Pred]
				st.cursor[ch.Pred]++
				st.ns[ch.Pred]++
				st.cost += st.scn.Preds[ch.Pred].Sorted
				if l.Obs != nil {
					l.Obs.AccessDone(obs.Sorted, ch.Pred, st.scn.Preds[ch.Pred].Sorted.Units())
				}
			case access.RandomAccess:
				c.obj = cand.ID
				st.probed[ch.Pred][cand.ID] = true
				st.nr[ch.Pred]++
				st.cost += st.scn.Preds[ch.Pred].Random
				if l.Obs != nil {
					l.Obs.AccessDone(obs.Random, ch.Pred, st.scn.Preds[ch.Pred].Random.Units())
				}
			}
			taskBusy[cand.ID] = true
			predInFlight[ch.Pred]++
			launch(c)
			inflight++
			if l.Obs != nil {
				l.Obs.InflightChange(+1)
			}
			return true
		}
		return false
	}

	applySorted := func(c completion) {
		sortedBuf[c.pred][c.rank] = c
		for {
			g, ok := sortedBuf[c.pred][applyRank[c.pred]]
			if !ok {
				break
			}
			delete(sortedBuf[c.pred], applyRank[c.pred])
			applyRank[c.pred]++
			tab.ObserveSorted(g.pred, g.obj, g.score)
			if !st.seen[g.obj] {
				st.seen[g.obj] = true
			}
			if !emitted[g.obj] && !q.Contains(g.obj) {
				q.Add(g.obj)
			}
		}
	}

	var items []algo.Item
	for len(items) < k {
		for len(items) < k {
			top, ok := q.Peek()
			if !ok || top.ID == state.UnseenID || !tab.Complete(top.ID) {
				break
			}
			q.Pop()
			emitted[top.ID] = true
			exact, _ := tab.Exact(top.ID)
			items = append(items, algo.Item{Obj: top.ID, Score: exact, Exact: true})
		}
		if len(items) >= k {
			break
		}
		if _, ok := q.Peek(); !ok {
			break
		}
		for inflight < l.B && dispatchOne() {
		}
		if inflight == 0 {
			return nil, fmt.Errorf("parallel: live run stuck with %d/%d answers", len(items), k)
		}
		stalled := l.Obs != nil && inflight < l.B
		// Wait for one completion with the lock released so in-flight
		// requests can land (observer emissions also happen in this
		// window — never under the coordinator lock). Cancellation wins
		// the race: the in-flight goroutines deliver into the buffered
		// channel and exit on their own once their requests fail or
		// finish.
		mu.Unlock()
		if stalled {
			l.Obs.DispatchStall()
		}
		var c completion
		select {
		case c = <-results:
		case <-ctx.Done():
			mu.Lock()
			return nil, fmt.Errorf("parallel: live run cancelled: %w", ctx.Err())
		}
		if l.Obs != nil {
			l.Obs.InflightChange(-1)
			if c.err != nil {
				l.Obs.AccessDenied(liveObsKind(c.kind), c.pred, liveDenyReason(ctx, c.err))
			}
		}
		mu.Lock()
		inflight--
		delete(taskBusy, c.task)
		predInFlight[c.pred]--
		if c.err != nil {
			return nil, fmt.Errorf("parallel: live %v access on p%d failed: %w", c.kind, c.pred+1, c.err)
		}
		switch c.kind {
		case access.SortedAccess:
			applySorted(c)
		case access.RandomAccess:
			tab.ObserveRandom(c.pred, c.obj, c.score)
		}
	}

	ledger := access.Ledger{
		SortedCounts: append([]int(nil), st.ns...),
		RandomCounts: append([]int(nil), st.nr...),
		TotalCost:    st.cost,
	}
	return &LiveResult{Items: items, Ledger: ledger, Wall: time.Since(start)}, nil
}
