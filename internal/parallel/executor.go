// Package parallel layers bounded-concurrency execution on top of the
// sequential access-minimization framework, as Sections 3.2 and 9.1.1 of
// the paper prescribe: total access cost measures resource usage, elapsed
// time benefits from concurrency, and unbounded concurrency would abuse
// sources — so we parallelize within a concurrency limit B, dispatching
// only accesses the sequential framework itself would consider.
//
// The executor simulates time: each access occupies one of B slots for a
// latency equal to its unit cost. Dispatch follows Framework NC's logic —
// scan the current top-k candidates (K_P) in rank order; for each
// incomplete one, take the access its selector would choose and launch it
// unless an equivalent access is already in flight. Two rules keep
// resource usage near the sequential plan's:
//
//   - Sorted streams pipeline: several sorted accesses on one list may be
//     in flight at once (Web sources serve concurrent requests); their
//     results are applied in list order so the last-seen bounds stay
//     monotone.
//   - No second-guessing: if a task's chosen access cannot be launched
//     (its task already has an access in flight), the task is skipped
//     rather than degraded to a different access kind — firing probes the
//     sequential selector would not fire is exactly the speculation that
//     inflates cost.
package parallel

import (
	"container/heap"
	"context"
	"fmt"

	"repro/internal/access"
	"repro/internal/algo"
	"repro/internal/obs"
	"repro/internal/state"
)

// Result extends the sequential result with simulated timing.
type Result struct {
	Items   []algo.Item
	Ledger  access.Ledger
	Elapsed float64 // simulated elapsed time, in cost units
	MaxUsed int     // peak number of concurrently occupied slots
}

// Cost returns the total access cost (resource usage) of the run.
func (r *Result) Cost() access.Cost { return r.Ledger.TotalCost }

// Executor runs a problem with at most B concurrent accesses, choosing
// accesses with the given selector (typically an optimizer-produced SR/G
// configuration).
type Executor struct {
	B   int
	Sel algo.Selector
	// Obs, when non-nil, receives executor events: InflightChange on every
	// dispatch and completion (even though time is simulated, the gauge
	// tracks slot occupancy) and DispatchStall when a fill round leaves
	// slots empty. Access-level events flow from the session's observer.
	Obs obs.Observer
}

// flight is one in-flight access in the simulated timeline.
type flight struct {
	done  float64
	seq   int
	kind  access.Kind
	pred  int
	obj   int // object returned (sa) or targeted (ra)
	task  int // the candidate whose task triggered the dispatch
	rank  int // list rank, for ordered application of sorted results
	score float64
}

type flightHeap []flight

func (h flightHeap) Len() int { return len(h) }
func (h flightHeap) Less(a, b int) bool {
	if h[a].done != h[b].done {
		return h[a].done < h[b].done
	}
	return h[a].seq < h[b].seq
}
func (h flightHeap) Swap(a, b int)       { h[a], h[b] = h[b], h[a] }
func (h *flightHeap) Push(x interface{}) { *h = append(*h, x.(flight)) }
func (h *flightHeap) Pop() interface{} {
	old := *h
	n := len(old)
	f := old[n-1]
	*h = old[:n-1]
	return f
}

// Run executes the problem under the concurrency bound. The context
// cancels the simulated run between dispatch rounds.
func (ex *Executor) Run(ctx context.Context, p *algo.Problem) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if ex.B < 1 {
		return nil, fmt.Errorf("parallel: concurrency bound must be >= 1, got %d", ex.B)
	}
	if ex.Sel == nil {
		return nil, fmt.Errorf("parallel: executor requires a selector")
	}
	if err := p.Begin(); err != nil {
		return nil, err
	}
	sess := p.Session
	tab, err := state.NewTable(sess.N(), sess.M(), p.F)
	if err != nil {
		return nil, err
	}
	q := state.NewQueue(tab, sess.NoWildGuesses())
	emitted := make([]bool, sess.N())
	// taskBusy limits each unsatisfied task to one in-flight access:
	// concurrency comes from servicing *distinct* tasks (the paper's
	// observation that any incomplete member of K_P is equally necessary).
	taskBusy := make(map[int]bool, ex.B)
	// Sorted results apply in list order: applyRank is the next rank to
	// apply per list, sortedBuf holds completed-but-out-of-order results.
	applyRank := make([]int, sess.M())
	sortedBuf := make([]map[int]flight, sess.M())
	for i := range sortedBuf {
		sortedBuf[i] = make(map[int]flight)
	}

	var (
		items    []algo.Item
		inflight flightHeap
		clock    float64
		seq      int
		maxUsed  int
	)

	// dispatchOne scans K_P in rank order and launches the first task's
	// chosen access. It reports whether a dispatch happened.
	dispatchOne := func() (bool, error) {
		for _, cand := range q.TopN(p.K) {
			if taskBusy[cand.ID] {
				continue
			}
			if cand.ID != state.UnseenID && tab.Complete(cand.ID) {
				continue // will be emitted once it surfaces to the top
			}
			choices := algo.NecessaryChoices(tab, sess, cand.ID)
			if len(choices) == 0 {
				continue // everything this task needs is already in flight
			}
			ch := ex.Sel.Choose(tab, sess, cand.ID, choices)
			var f flight
			switch ch.Kind {
			case access.SortedAccess:
				rank := sess.SortedDepth(ch.Pred)
				obj, s, err := sess.SortedNext(ch.Pred)
				if err != nil {
					return false, err
				}
				f = flight{kind: ch.Kind, pred: ch.Pred, obj: obj, rank: rank, score: s}
				f.done = clock + sess.Costs(ch.Pred).Sorted.Units()
			case access.RandomAccess:
				s, err := sess.Random(ch.Pred, cand.ID)
				if err != nil {
					return false, err
				}
				f = flight{kind: ch.Kind, pred: ch.Pred, obj: cand.ID, score: s}
				f.done = clock + sess.Costs(ch.Pred).Random.Units()
			}
			f.task = cand.ID
			f.seq = seq
			seq++
			taskBusy[cand.ID] = true
			heap.Push(&inflight, f)
			return true, nil
		}
		return false, nil
	}

	applySorted := func(f flight) {
		sortedBuf[f.pred][f.rank] = f
		for {
			g, ok := sortedBuf[f.pred][applyRank[f.pred]]
			if !ok {
				break
			}
			delete(sortedBuf[f.pred], applyRank[f.pred])
			applyRank[f.pred]++
			tab.ObserveSorted(g.pred, g.obj, g.score)
			if !emitted[g.obj] && !q.Contains(g.obj) {
				q.Add(g.obj)
			}
		}
	}

	for len(items) < p.K {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("parallel: run cancelled: %w", err)
		}
		// Emit every complete candidate that has surfaced to the top; the
		// paper's incremental form of Theorem 1's halting condition.
		for len(items) < p.K {
			top, ok := q.Peek()
			if !ok || top.ID == state.UnseenID || !tab.Complete(top.ID) {
				break
			}
			q.Pop()
			emitted[top.ID] = true
			exact, _ := tab.Exact(top.ID)
			items = append(items, algo.Item{Obj: top.ID, Score: exact, Exact: true})
		}
		if len(items) >= p.K {
			break
		}
		if _, ok := q.Peek(); !ok {
			break // fewer than k objects exist
		}
		// Fill free slots with necessary accesses.
		for len(inflight) < ex.B {
			ok, err := dispatchOne()
			if err != nil {
				return nil, err
			}
			if !ok {
				break
			}
			if ex.Obs != nil {
				ex.Obs.InflightChange(+1)
			}
		}
		if len(inflight) > maxUsed {
			maxUsed = len(inflight)
		}
		if len(inflight) == 0 {
			return nil, fmt.Errorf("parallel: stuck with no dispatchable access and %d/%d answers", len(items), p.K)
		}
		if ex.Obs != nil && len(inflight) < ex.B {
			ex.Obs.DispatchStall()
		}
		// Advance simulated time to the earliest completion and apply it.
		f := heap.Pop(&inflight).(flight)
		clock = f.done
		delete(taskBusy, f.task)
		if ex.Obs != nil {
			ex.Obs.InflightChange(-1)
		}
		switch f.kind {
		case access.SortedAccess:
			applySorted(f)
		case access.RandomAccess:
			tab.ObserveRandom(f.pred, f.obj, f.score)
		}
	}
	return &Result{
		Items:   items,
		Ledger:  sess.Ledger(),
		Elapsed: clock,
		MaxUsed: maxUsed,
	}, nil
}
