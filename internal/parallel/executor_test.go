package parallel

import (
	"context"
	"math"
	"sort"
	"testing"

	"repro/internal/access"
	"repro/internal/algo"
	"repro/internal/algo/algotest"
	"repro/internal/data"
	"repro/internal/data/datatest"
	"repro/internal/score"
)

func runParallel(t *testing.T, b int, ds *data.Dataset, scn access.Scenario, f score.Func, k int, h []float64) *Result {
	t.Helper()
	sess, err := access.NewSession(access.DatasetBackend{DS: ds}, scn)
	if err != nil {
		t.Fatal(err)
	}
	prob, err := algo.NewProblem(f, k, sess)
	if err != nil {
		t.Fatal(err)
	}
	ex := &Executor{B: b, Sel: algotest.MustSRG(h, nil)}
	res, err := ex.Run(context.Background(), prob)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func assertOracle(t *testing.T, ds *data.Dataset, f score.Func, k int, items []algo.Item) {
	t.Helper()
	oracle := ds.TopK(f.Eval, k)
	if len(items) != len(oracle) {
		t.Fatalf("returned %d items, oracle %d", len(items), len(oracle))
	}
	got := make([]float64, len(items))
	for i, it := range items {
		got[i] = f.Eval(ds.Scores(it.Obj))
		if it.Exact && math.Abs(it.Score-got[i]) > 1e-9 {
			t.Fatalf("item %d reported %g, truth %g", i, it.Score, got[i])
		}
	}
	want := make([]float64, len(oracle))
	for i, r := range oracle {
		want[i] = r.Score
	}
	sort.Float64s(got)
	sort.Float64s(want)
	for i := range got {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Fatalf("score multiset mismatch: %v vs %v", got, want)
		}
	}
}

func TestSequentialEquivalence(t *testing.T) {
	// B = 1 must behave exactly like the sequential NC run: same answers,
	// same total cost, elapsed == cost.
	ds := datatest.MustGenerate(data.Uniform, 200, 2, 13)
	scn := access.Uniform(2, 1, 2)
	h := []float64{0.4, 0.6}

	res := runParallel(t, 1, ds, scn, score.Min(), 5, h)
	assertOracle(t, ds, score.Min(), 5, res.Items)

	sess, _ := access.NewSession(access.DatasetBackend{DS: ds}, scn)
	prob, _ := algo.NewProblem(score.Min(), 5, sess)
	alg, _ := algo.NewNC(h, nil)
	seq, err := alg.Run(prob)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ledger.TotalCost != seq.Cost() {
		t.Errorf("B=1 cost %v != sequential cost %v", res.Ledger.TotalCost, seq.Cost())
	}
	if math.Abs(res.Elapsed-res.Ledger.TotalCost.Units()) > 1e-6 {
		t.Errorf("B=1 elapsed %g != total cost %g", res.Elapsed, res.Ledger.TotalCost.Units())
	}
	if res.MaxUsed != 1 {
		t.Errorf("B=1 used %d slots", res.MaxUsed)
	}
}

func TestElapsedShrinksWithConcurrency(t *testing.T) {
	ds := datatest.MustGenerate(data.Uniform, 500, 3, 29)
	scn := access.Uniform(3, 1, 5)
	h := []float64{0.5, 0.5, 0.5}
	k := 10

	var prev *Result
	for _, b := range []int{1, 2, 4, 8} {
		res := runParallel(t, b, ds, scn, score.Avg(), k, h)
		assertOracle(t, ds, score.Avg(), k, res.Items)
		if res.Elapsed > res.Ledger.TotalCost.Units()+1e-6 {
			t.Errorf("B=%d: elapsed %g exceeds total cost %g", b, res.Elapsed, res.Ledger.TotalCost.Units())
		}
		if res.MaxUsed > b {
			t.Errorf("B=%d: used %d slots", b, res.MaxUsed)
		}
		if prev != nil {
			if res.Elapsed > prev.Elapsed*1.05 {
				t.Errorf("B=%d elapsed %g did not improve on %g", b, res.Elapsed, prev.Elapsed)
			}
			// Resource usage must stay near the sequential plan's: the
			// executor only services necessary tasks.
			if float64(res.Ledger.TotalCost) > 1.5*float64(prev.Ledger.TotalCost) {
				t.Errorf("B=%d cost %v blew up vs %v", b, res.Ledger.TotalCost, prev.Ledger.TotalCost)
			}
		}
		prev = res
	}
	first := runParallel(t, 1, ds, scn, score.Avg(), k, h)
	last := runParallel(t, 8, ds, scn, score.Avg(), k, h)
	if last.Elapsed >= first.Elapsed {
		t.Errorf("B=8 elapsed %g should beat B=1 elapsed %g", last.Elapsed, first.Elapsed)
	}
}

func TestParallelProbeOnlyScenario(t *testing.T) {
	ds := datatest.MustGenerate(data.AntiCorrelated, 150, 3, 31)
	scn := access.MatrixCell(3, access.Impossible, access.Expensive, 10)
	res := runParallel(t, 4, ds, scn, score.Min(), 5, []float64{0, 1, 1})
	assertOracle(t, ds, score.Min(), 5, res.Items)
	if res.MaxUsed < 2 {
		t.Errorf("probe-only scenario should overlap probes, used %d", res.MaxUsed)
	}
}

func TestParallelKLargerThanN(t *testing.T) {
	ds := datatest.MustGenerate(data.Uniform, 6, 2, 3)
	res := runParallel(t, 3, ds, access.Uniform(2, 1, 1), score.Avg(), 50, []float64{0.5, 0.5})
	assertOracle(t, ds, score.Avg(), 50, res.Items)
}

func TestParallelValidation(t *testing.T) {
	ds := datatest.MustGenerate(data.Uniform, 5, 2, 1)
	sess, _ := access.NewSession(access.DatasetBackend{DS: ds}, access.Uniform(2, 1, 1))
	prob, _ := algo.NewProblem(score.Avg(), 2, sess)
	if _, err := (&Executor{B: 0, Sel: algotest.MustSRG([]float64{1, 1}, nil)}).Run(context.Background(), prob); err == nil {
		t.Error("B=0 should fail")
	}
	if _, err := (&Executor{B: 2}).Run(context.Background(), prob); err == nil {
		t.Error("nil selector should fail")
	}
}

func TestParallelDeterminism(t *testing.T) {
	ds := datatest.MustGenerate(data.Gaussian, 120, 2, 77)
	a := runParallel(t, 4, ds, access.Uniform(2, 1, 3), score.Min(), 5, []float64{0.3, 0.7})
	b := runParallel(t, 4, ds, access.Uniform(2, 1, 3), score.Min(), 5, []float64{0.3, 0.7})
	if a.Elapsed != b.Elapsed || a.Ledger.TotalCost != b.Ledger.TotalCost {
		t.Error("parallel execution must be deterministic")
	}
	for i := range a.Items {
		if a.Items[i] != b.Items[i] {
			t.Fatal("items differ across identical runs")
		}
	}
}
