package parallel

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/access"
	"repro/internal/algo"
	"repro/internal/algo/algotest"
	"repro/internal/data"
	"repro/internal/data/datatest"
	"repro/internal/score"
)

// sleepBackend adds a fixed latency to every access of an in-memory
// backend, standing in for network time deterministically.
type sleepBackend struct {
	access.DatasetBackend
	delay time.Duration
}

func (b sleepBackend) Sorted(ctx context.Context, pred, rank int) (int, float64, error) {
	time.Sleep(b.delay)
	return b.DatasetBackend.Sorted(ctx, pred, rank)
}

func (b sleepBackend) Random(ctx context.Context, pred, obj int) (float64, error) {
	time.Sleep(b.delay)
	return b.DatasetBackend.Random(ctx, pred, obj)
}

// failingBackend errors on every random access.
type failingBackend struct{ access.DatasetBackend }

var errBoom = errors.New("boom")

func (b failingBackend) Random(ctx context.Context, pred, obj int) (float64, error) {
	return 0, errBoom
}

func TestLiveMatchesOracle(t *testing.T) {
	ds := datatest.MustGenerate(data.Uniform, 120, 2, 51)
	scn := access.Uniform(2, 1, 2)
	live := &Live{B: 4, Sel: algotest.MustSRG([]float64{0.5, 0.5}, nil), Scn: scn}
	res, err := live.Run(context.Background(), access.DatasetBackend{DS: ds}, score.Min(), 5)
	if err != nil {
		t.Fatal(err)
	}
	assertOracle(t, ds, score.Min(), 5, res.Items)
	if res.Cost() <= 0 {
		t.Error("live run accrued no modeled cost")
	}
	l := res.Ledger
	if l.TotalAccesses() == 0 {
		t.Error("no accesses recorded")
	}
}

func TestLiveWallClockSpeedup(t *testing.T) {
	ds := datatest.MustGenerate(data.Uniform, 80, 2, 52)
	scn := access.Uniform(2, 1, 1)
	backend := sleepBackend{DatasetBackend: access.DatasetBackend{DS: ds}, delay: 2 * time.Millisecond}
	run := func(b int) *LiveResult {
		live := &Live{B: b, Sel: algotest.MustSRG([]float64{0.5, 0.5}, nil), Scn: scn}
		res, err := live.Run(context.Background(), backend, score.Avg(), 5)
		if err != nil {
			t.Fatal(err)
		}
		assertOracle(t, ds, score.Avg(), 5, res.Items)
		return res
	}
	seq := run(1)
	par := run(8)
	// With ~2ms per request, an 8-way executor should finish in well under
	// half the sequential wall time; 60% is a safe flake-proof bound.
	if par.Wall > seq.Wall*6/10 {
		t.Errorf("B=8 wall %v did not improve enough on B=1 wall %v", par.Wall, seq.Wall)
	}
	// Resource usage (modeled cost) stays close to sequential.
	if float64(par.Cost()) > 1.4*float64(seq.Cost()) {
		t.Errorf("B=8 cost %v vs B=1 cost %v", par.Cost(), seq.Cost())
	}
}

func TestLiveProbeScenario(t *testing.T) {
	ds := datatest.MustGenerate(data.AntiCorrelated, 90, 3, 53)
	scn := access.MatrixCell(3, access.Impossible, access.Expensive, 10)
	live := &Live{B: 6, Sel: algotest.MustSRG([]float64{0, 1, 1}, nil), Scn: scn}
	res, err := live.Run(context.Background(), access.DatasetBackend{DS: ds}, score.Min(), 4)
	if err != nil {
		t.Fatal(err)
	}
	assertOracle(t, ds, score.Min(), 4, res.Items)
}

func TestLiveValidation(t *testing.T) {
	ds := datatest.MustGenerate(data.Uniform, 10, 2, 1)
	b := access.DatasetBackend{DS: ds}
	sel := algotest.MustSRG([]float64{0.5, 0.5}, nil)
	if _, err := (&Live{B: 0, Sel: sel, Scn: access.Uniform(2, 1, 1)}).Run(context.Background(), b, score.Min(), 2); err == nil {
		t.Error("B=0 should fail")
	}
	if _, err := (&Live{B: 2, Scn: access.Uniform(2, 1, 1)}).Run(context.Background(), b, score.Min(), 2); err == nil {
		t.Error("nil selector should fail")
	}
	if _, err := (&Live{B: 2, Sel: sel, Scn: access.Uniform(3, 1, 1)}).Run(context.Background(), b, score.Min(), 2); err == nil {
		t.Error("scenario arity mismatch should fail")
	}
	if _, err := (&Live{B: 2, Sel: sel, Scn: access.Uniform(2, 1, 1)}).Run(context.Background(), b, score.Min(), 0); err == nil {
		t.Error("k=0 should fail")
	}
}

func TestLiveSurfacesBackendErrors(t *testing.T) {
	ds := datatest.MustGenerate(data.Uniform, 30, 2, 2)
	scn := access.MatrixCell(2, access.Cheap, access.Cheap, 1)
	// Force probes by forbidding deep sorted access.
	live := &Live{B: 3, Sel: algotest.MustSRG([]float64{1, 1}, nil), Scn: scn}
	_, err := live.Run(context.Background(), failingBackend{access.DatasetBackend{DS: ds}}, score.Avg(), 3)
	if !errors.Is(err, errBoom) {
		t.Errorf("backend error not surfaced: %v", err)
	}
}

func TestLiveKLargerThanN(t *testing.T) {
	ds := datatest.MustGenerate(data.Uniform, 6, 2, 3)
	live := &Live{B: 3, Sel: algotest.MustSRG([]float64{0.5, 0.5}, nil), Scn: access.Uniform(2, 1, 1)}
	res, err := live.Run(context.Background(), access.DatasetBackend{DS: ds}, score.Avg(), 50)
	if err != nil {
		t.Fatal(err)
	}
	assertOracle(t, ds, score.Avg(), 50, res.Items)
}

// countingBackend records the peak number of concurrent requests per
// predicate.
type countingBackend struct {
	access.DatasetBackend
	mu       sync.Mutex
	inflight []int
	peak     []int
	delay    time.Duration
}

func newCountingBackend(ds *data.Dataset, delay time.Duration) *countingBackend {
	return &countingBackend{
		DatasetBackend: access.DatasetBackend{DS: ds},
		inflight:       make([]int, ds.M()),
		peak:           make([]int, ds.M()),
		delay:          delay,
	}
}

func (b *countingBackend) enter(pred int) {
	b.mu.Lock()
	b.inflight[pred]++
	if b.inflight[pred] > b.peak[pred] {
		b.peak[pred] = b.inflight[pred]
	}
	b.mu.Unlock()
}

func (b *countingBackend) exit(pred int) {
	b.mu.Lock()
	b.inflight[pred]--
	b.mu.Unlock()
}

func (b *countingBackend) Sorted(ctx context.Context, pred, rank int) (int, float64, error) {
	b.enter(pred)
	time.Sleep(b.delay)
	defer b.exit(pred)
	return b.DatasetBackend.Sorted(ctx, pred, rank)
}

func (b *countingBackend) Random(ctx context.Context, pred, obj int) (float64, error) {
	b.enter(pred)
	time.Sleep(b.delay)
	defer b.exit(pred)
	return b.DatasetBackend.Random(ctx, pred, obj)
}

func TestLivePerPredicatePoliteness(t *testing.T) {
	ds := datatest.MustGenerate(data.Uniform, 100, 2, 61)
	backend := newCountingBackend(ds, time.Millisecond)
	live := &Live{
		B:            8,
		Sel:          algotest.MustSRG([]float64{0.5, 0.5}, nil),
		Scn:          access.Uniform(2, 1, 1),
		PerPredLimit: 2,
	}
	res, err := live.Run(context.Background(), backend, score.Avg(), 5)
	if err != nil {
		t.Fatal(err)
	}
	assertOracle(t, ds, score.Avg(), 5, res.Items)
	backend.mu.Lock()
	defer backend.mu.Unlock()
	for i, p := range backend.peak {
		if p > 2 {
			t.Errorf("predicate %d saw %d concurrent requests, limit 2", i, p)
		}
	}
}

func TestLiveCancellation(t *testing.T) {
	ds := datatest.MustGenerate(data.Uniform, 200, 2, 9)
	backend := sleepBackend{DatasetBackend: access.DatasetBackend{DS: ds}, delay: 2 * time.Millisecond}
	live := &Live{B: 3, Sel: algotest.MustSRG([]float64{0.5, 0.5}, nil), Scn: access.Uniform(2, 1, 2)}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := live.Run(ctx, backend, score.Min(), 5); !errors.Is(err, context.Canceled) {
		t.Errorf("pre-cancelled run: err = %v, want context.Canceled", err)
	}
	// A short deadline mid-run aborts instead of hanging.
	ctx, cancel = context.WithTimeout(context.Background(), 3*time.Millisecond)
	defer cancel()
	if _, err := live.Run(ctx, backend, score.Min(), 50); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("deadline run: err = %v, want context.DeadlineExceeded", err)
	}
}

func TestExecutorCancellation(t *testing.T) {
	ds := datatest.MustGenerate(data.Uniform, 100, 2, 12)
	sess, err := access.NewSession(access.DatasetBackend{DS: ds}, access.Uniform(2, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	prob, err := algo.NewProblem(score.Min(), 5, sess)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ex := &Executor{B: 2, Sel: algotest.MustSRG([]float64{0.5, 0.5}, nil)}
	if _, err := ex.Run(ctx, prob); !errors.Is(err, context.Canceled) {
		t.Errorf("pre-cancelled executor run: err = %v, want context.Canceled", err)
	}
}
