// Package sqlq parses the paper's SQL-like top-k query syntax
// (Examples 1 and 2):
//
//	SELECT name FROM restaurants
//	ORDER BY min(rating, closeness) STOP AFTER 5
//
// The grammar, case-insensitive in keywords:
//
//	query   := SELECT ident FROM ident ORDER BY scoring STOP AFTER int
//	scoring := func '(' args ')'
//	func    := MIN | MAX | AVG | PRODUCT | GEOMEAN | WSUM
//	args    := arg (',' arg)*            -- at least one
//	arg     := ident                      -- plain predicate
//	         | number '*' ident           -- weighted (WSUM only)
//
// Parsing yields a Query holding the scoring function, the predicate names
// in query order, and the retrieval size; Bind resolves predicate names
// against a table's column names, producing the column indices the
// middleware engine operates on.
package sqlq

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"

	"repro/internal/score"
)

// Query is a parsed top-k query.
type Query struct {
	// Select is the projected attribute (informational; the middleware
	// returns object identities).
	Select string
	// From is the table (dataset) name.
	From string
	// Func is the scoring function, ready to evaluate the predicates in
	// Predicates order.
	Func score.Func
	// Predicates are the predicate names, in the order Func consumes them.
	Predicates []string
	// K is the retrieval size from STOP AFTER.
	K int
}

// String reassembles the canonical form of the query.
func (q *Query) String() string {
	return fmt.Sprintf("select %s from %s order by %s(%s) stop after %d",
		q.Select, q.From, q.Func.Name(), strings.Join(q.Predicates, ", "), q.K)
}

type tokenKind int

const (
	tokIdent tokenKind = iota
	tokNumber
	tokPunct
	tokEOF
)

type token struct {
	kind tokenKind
	text string
	pos  int
}

type lexer struct {
	in  string
	pos int
}

func (l *lexer) next() (token, error) {
	for l.pos < len(l.in) && unicode.IsSpace(rune(l.in[l.pos])) {
		l.pos++
	}
	if l.pos >= len(l.in) {
		return token{kind: tokEOF, pos: l.pos}, nil
	}
	start := l.pos
	c := l.in[l.pos]
	switch {
	case c == '(' || c == ')' || c == ',' || c == '*':
		l.pos++
		return token{kind: tokPunct, text: string(c), pos: start}, nil
	case c >= '0' && c <= '9' || c == '.':
		for l.pos < len(l.in) && (l.in[l.pos] >= '0' && l.in[l.pos] <= '9' || l.in[l.pos] == '.') {
			l.pos++
		}
		return token{kind: tokNumber, text: l.in[start:l.pos], pos: start}, nil
	case isIdentRune(rune(c)):
		for l.pos < len(l.in) && isIdentRune(rune(l.in[l.pos])) {
			l.pos++
		}
		return token{kind: tokIdent, text: l.in[start:l.pos], pos: start}, nil
	default:
		return token{}, fmt.Errorf("sqlq: unexpected character %q at position %d", c, start)
	}
}

func isIdentRune(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '.'
}

type parser struct {
	lex *lexer
	tok token
}

func (p *parser) advance() error {
	t, err := p.lex.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *parser) expectKeyword(kw string) error {
	if p.tok.kind != tokIdent || !strings.EqualFold(p.tok.text, kw) {
		return fmt.Errorf("sqlq: expected %q at position %d, found %q", kw, p.tok.pos, p.tok.text)
	}
	return p.advance()
}

func (p *parser) expectIdent(what string) (string, error) {
	if p.tok.kind != tokIdent {
		return "", fmt.Errorf("sqlq: expected %s at position %d, found %q", what, p.tok.pos, p.tok.text)
	}
	name := p.tok.text
	if err := p.advance(); err != nil {
		return "", err
	}
	return name, nil
}

func (p *parser) expectPunct(s string) error {
	if p.tok.kind != tokPunct || p.tok.text != s {
		return fmt.Errorf("sqlq: expected %q at position %d, found %q", s, p.tok.pos, p.tok.text)
	}
	return p.advance()
}

// Parse parses one query.
func Parse(input string) (*Query, error) {
	p := &parser{lex: &lexer{in: input}}
	if err := p.advance(); err != nil {
		return nil, err
	}
	q := &Query{}
	var err error
	if err = p.expectKeyword("select"); err != nil {
		return nil, err
	}
	if q.Select, err = p.expectIdent("projection attribute"); err != nil {
		return nil, err
	}
	if err = p.expectKeyword("from"); err != nil {
		return nil, err
	}
	if q.From, err = p.expectIdent("table name"); err != nil {
		return nil, err
	}
	if err = p.expectKeyword("order"); err != nil {
		return nil, err
	}
	if err = p.expectKeyword("by"); err != nil {
		return nil, err
	}
	fname, err := p.expectIdent("scoring function")
	if err != nil {
		return nil, err
	}
	if err = p.expectPunct("("); err != nil {
		return nil, err
	}
	var weights []float64
	weighted := strings.EqualFold(fname, "wsum")
	for {
		if weighted && p.tok.kind == tokNumber {
			w, perr := strconv.ParseFloat(p.tok.text, 64)
			if perr != nil {
				return nil, fmt.Errorf("sqlq: bad weight %q at position %d", p.tok.text, p.tok.pos)
			}
			if err = p.advance(); err != nil {
				return nil, err
			}
			if err = p.expectPunct("*"); err != nil {
				return nil, err
			}
			weights = append(weights, w)
		} else if weighted {
			weights = append(weights, 1)
		} else if p.tok.kind == tokNumber {
			return nil, fmt.Errorf("sqlq: weights are only allowed in wsum(...), found %q at position %d", p.tok.text, p.tok.pos)
		}
		pred, perr := p.expectIdent("predicate name")
		if perr != nil {
			return nil, perr
		}
		q.Predicates = append(q.Predicates, pred)
		if p.tok.kind == tokPunct && p.tok.text == "," {
			if err = p.advance(); err != nil {
				return nil, err
			}
			continue
		}
		break
	}
	if err = p.expectPunct(")"); err != nil {
		return nil, err
	}
	if err = p.expectKeyword("stop"); err != nil {
		return nil, err
	}
	if err = p.expectKeyword("after"); err != nil {
		return nil, err
	}
	if p.tok.kind != tokNumber {
		return nil, fmt.Errorf("sqlq: expected retrieval size at position %d, found %q", p.tok.pos, p.tok.text)
	}
	k, err := strconv.Atoi(p.tok.text)
	if err != nil || k < 1 {
		return nil, fmt.Errorf("sqlq: retrieval size must be a positive integer, got %q", p.tok.text)
	}
	q.K = k
	if err := p.advance(); err != nil {
		return nil, err
	}
	if p.tok.kind != tokEOF {
		return nil, fmt.Errorf("sqlq: trailing input at position %d: %q", p.tok.pos, p.tok.text)
	}

	// Resolve the scoring function.
	if weighted {
		q.Func = score.Weighted(weights...)
	} else {
		f, err := score.ByName(strings.ToLower(fname))
		if err != nil {
			return nil, fmt.Errorf("sqlq: unknown scoring function %q (min, max, avg, product, geomean, wsum)", fname)
		}
		q.Func = f
	}
	if err := score.Validate(q.Func, len(q.Predicates)); err != nil {
		return nil, err
	}
	// Duplicate predicates would make per-predicate access bookkeeping
	// ambiguous.
	seen := make(map[string]bool, len(q.Predicates))
	for _, pred := range q.Predicates {
		key := strings.ToLower(pred)
		if seen[key] {
			return nil, fmt.Errorf("sqlq: duplicate predicate %q", pred)
		}
		seen[key] = true
	}
	return q, nil
}

// Bind resolves the query's predicate names against a table's column
// names (case-insensitive), returning for each query predicate the column
// index it refers to. The middleware then evaluates the query over the
// projected columns in query order.
func Bind(q *Query, columns []string) ([]int, error) {
	idx := make(map[string]int, len(columns))
	for i, c := range columns {
		idx[strings.ToLower(c)] = i
	}
	out := make([]int, len(q.Predicates))
	for i, pred := range q.Predicates {
		j, ok := idx[strings.ToLower(pred)]
		if !ok {
			return nil, fmt.Errorf("sqlq: predicate %q not found among columns %v", pred, columns)
		}
		out[i] = j
	}
	return out, nil
}
