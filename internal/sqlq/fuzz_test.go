package sqlq

import (
	"strings"
	"testing"
)

// FuzzParse checks that the parser is total (never panics) and that every
// accepted query round-trips: its canonical String() form must reparse to
// an equivalent query. Run with `go test -fuzz FuzzParse ./internal/sqlq`
// to explore beyond the seed corpus; the seeds alone cover the grammar.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"select name from restaurants order by min(rating, closeness) stop after 5",
		"SELECT name FROM hotels ORDER BY AVG(closeness, rating, cheap) STOP AFTER 5",
		"select id from t order by wsum(0.3*a, 0.7*b) stop after 10",
		"select x from t order by geomean(a) stop after 1",
		"select x from t order by product(a, b, c, d) stop after 99",
		"select x from t order by max(a,b) stop after 2 trailing",
		"select x from t order by min(a,a) stop after 2",
		"select x from t order by wsum(a, 2*b) stop after 1",
		"", "select", "select x from", "order by", "(((",
		"select x from t order by min(0.5*a) stop after 1",
		"select x from t order by min(a;b) stop after 1",
		"select x from t order by min(a) stop after 999999999999999999999",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		q, err := Parse(input)
		if err != nil {
			return
		}
		// Accepted queries satisfy structural invariants.
		if q.K < 1 || len(q.Predicates) == 0 || q.Func == nil {
			t.Fatalf("accepted malformed query: %+v", q)
		}
		for _, p := range q.Predicates {
			if p == "" {
				t.Fatal("empty predicate name accepted")
			}
		}
		// Round trip through the canonical form. Weighted sums print their
		// weights inside the function name, which the grammar does not
		// re-accept; skip those.
		if strings.HasPrefix(q.Func.Name(), "wsum") {
			return
		}
		q2, err := Parse(q.String())
		if err != nil {
			t.Fatalf("canonical form %q does not reparse: %v", q.String(), err)
		}
		if q2.K != q.K || q2.From != q.From || q2.Select != q.Select ||
			q2.Func.Name() != q.Func.Name() || len(q2.Predicates) != len(q.Predicates) {
			t.Fatalf("round trip changed the query: %+v vs %+v", q, q2)
		}
	})
}
