package sqlq

import (
	"math"
	"strings"
	"testing"
)

func TestParseExample1(t *testing.T) {
	q, err := Parse("select name from restaurants order by min(rating, closeness) stop after 5")
	if err != nil {
		t.Fatal(err)
	}
	if q.Select != "name" || q.From != "restaurants" || q.K != 5 {
		t.Errorf("parsed %+v", q)
	}
	if q.Func.Name() != "min" {
		t.Errorf("func = %s", q.Func.Name())
	}
	if len(q.Predicates) != 2 || q.Predicates[0] != "rating" || q.Predicates[1] != "closeness" {
		t.Errorf("predicates = %v", q.Predicates)
	}
}

func TestParseExample2(t *testing.T) {
	q, err := Parse("SELECT name FROM hotels ORDER BY AVG(closeness, rating, cheap) STOP AFTER 5")
	if err != nil {
		t.Fatal(err)
	}
	if q.Func.Name() != "avg" || len(q.Predicates) != 3 || q.K != 5 {
		t.Errorf("parsed %+v", q)
	}
	if q.String() != "select name from hotels order by avg(closeness, rating, cheap) stop after 5" {
		t.Errorf("canonical form = %q", q.String())
	}
}

func TestParseWeightedSum(t *testing.T) {
	q, err := Parse("select id from t order by wsum(0.3*a, 0.7*b) stop after 10")
	if err != nil {
		t.Fatal(err)
	}
	got := q.Func.Eval([]float64{1, 0})
	if math.Abs(got-0.3) > 1e-12 {
		t.Errorf("weight binding wrong: F(1,0) = %g", got)
	}
	// Unweighted args inside wsum default to weight 1.
	q, err = Parse("select id from t order by wsum(a, 2*b) stop after 1")
	if err != nil {
		t.Fatal(err)
	}
	if got := q.Func.Eval([]float64{1, 1}); math.Abs(got-3) > 1e-12 {
		t.Errorf("mixed weights: F(1,1) = %g", got)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		in   string
		frag string
	}{
		{"", `expected "select"`},
		{"select from t order by min(a,b) stop after 1", `expected "from"`},
		{"select x t order by min(a,b) stop after 1", `expected "from"`},
		{"select x from t by min(a,b) stop after 1", `expected "order"`},
		{"select x from t order min(a,b) stop after 1", `expected "by"`},
		{"select x from t order by min a,b) stop after 1", `expected "("`},
		{"select x from t order by min() stop after 1", "predicate name"},
		{"select x from t order by min(a,b stop after 1", `expected ")"`},
		{"select x from t order by min(a,b) after 1", `expected "stop"`},
		{"select x from t order by min(a,b) stop 1", `expected "after"`},
		{"select x from t order by min(a,b) stop after", "retrieval size"},
		{"select x from t order by min(a,b) stop after 0", "positive integer"},
		{"select x from t order by min(a,b) stop after -3", "unexpected character"},
		{"select x from t order by min(a,b) stop after 2 garbage", "trailing input"},
		{"select x from t order by harmonic(a,b) stop after 2", "unknown scoring function"},
		{"select x from t order by min(a,a) stop after 2", "duplicate predicate"},
		{"select x from t order by min(0.3*a, b) stop after 2", "only allowed in wsum"},
		{"select x from t order by wsum(0.3*) stop after 2", "predicate name"},
		{"select x from t order by min(a; b) stop after 2", "unexpected character"},
	}
	for _, c := range cases {
		_, err := Parse(c.in)
		if err == nil {
			t.Errorf("Parse(%q) should fail", c.in)
			continue
		}
		if !strings.Contains(err.Error(), c.frag) {
			t.Errorf("Parse(%q) error %q lacks %q", c.in, err, c.frag)
		}
	}
}

func TestParseArityMismatch(t *testing.T) {
	// wsum's arity comes from its weights; a weighted function bound to a
	// different predicate count must fail via score.Validate. Constructing
	// that through the grammar is impossible (weights align with args), so
	// arity validation is covered by single-arg built-ins instead.
	if _, err := Parse("select x from t order by min(a) stop after 1"); err != nil {
		t.Errorf("single-predicate min should parse: %v", err)
	}
}

func TestBind(t *testing.T) {
	q, err := Parse("select name from restaurants order by min(closeness, rating) stop after 3")
	if err != nil {
		t.Fatal(err)
	}
	cols, err := Bind(q, []string{"rating", "closeness"})
	if err != nil {
		t.Fatal(err)
	}
	// Query order: closeness (column 1) first, then rating (column 0).
	if len(cols) != 2 || cols[0] != 1 || cols[1] != 0 {
		t.Errorf("bind = %v", cols)
	}
	// Case-insensitive.
	if _, err := Bind(q, []string{"Rating", "CLOSENESS"}); err != nil {
		t.Errorf("case-insensitive bind failed: %v", err)
	}
	if _, err := Bind(q, []string{"rating", "price"}); err == nil {
		t.Error("unknown predicate should fail to bind")
	}
}

func TestParseWhitespaceAndUnderscores(t *testing.T) {
	q, err := Parse("  select  obj_id   from my_table order by  geomean( p_1 ,p_2 )  stop   after 7 ")
	if err != nil {
		t.Fatal(err)
	}
	if q.Select != "obj_id" || q.From != "my_table" || q.K != 7 {
		t.Errorf("parsed %+v", q)
	}
	if q.Predicates[0] != "p_1" || q.Predicates[1] != "p_2" {
		t.Errorf("predicates = %v", q.Predicates)
	}
}
