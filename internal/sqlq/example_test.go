package sqlq_test

import (
	"fmt"

	"repro/internal/sqlq"
)

// ExampleParse parses the paper's Query Q1 and binds its predicates to a
// source catalog's column order.
func ExampleParse() {
	q, err := sqlq.Parse(
		"select name from restaurants order by min(rating, closeness) stop after 5")
	if err != nil {
		panic(err)
	}
	fmt.Println("function:", q.Func.Name())
	fmt.Println("k:", q.K)

	cols, err := sqlq.Bind(q, []string{"closeness", "rating"})
	if err != nil {
		panic(err)
	}
	fmt.Println("columns:", cols) // rating is catalog column 1, closeness 0
	// Output:
	// function: min
	// k: 5
	// columns: [1 0]
}
