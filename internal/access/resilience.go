// Resilience: circuit breakers and per-access deadlines for sessions over
// unreliable sources.
//
// The paper's framework treats source capabilities as part of the access
// scenario (the Figure 2 matrix) and re-plans when the scenario shifts
// mid-query. A real-world source outage is therefore not an exceptional
// condition but a scenario change: when a capability's circuit breaker
// opens after consecutive failures, the Session flips that capability off
// in CurrentScenario(), and the (adaptive) optimizer re-plans against the
// degraded scenario — the paper's own adaptivity mechanism, reused for
// fault tolerance. When the cooldown elapses the breaker half-opens, one
// probe access is let through, and a success restores the capability.
package access

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// BreakerState is the classic three-state circuit-breaker machine.
type BreakerState uint8

const (
	// BreakerClosed: the capability is healthy; accesses flow through.
	BreakerClosed BreakerState = iota
	// BreakerOpen: consecutive failures tripped the circuit; accesses are
	// refused locally and the capability reads as unsupported.
	BreakerOpen
	// BreakerHalfOpen: the cooldown elapsed; exactly one probe access is
	// let through to decide between closing and re-opening.
	BreakerHalfOpen
)

// String returns "closed", "open", or "half_open".
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half_open"
	default:
		return "unknown"
	}
}

// BreakerConfig tunes the per-capability circuit breakers. The zero value
// is usable: 3 consecutive failures open a circuit, and it half-opens
// after a 1-second cooldown.
type BreakerConfig struct {
	// FailureThreshold is how many consecutive failures open the circuit
	// (default 3).
	FailureThreshold int
	// Cooldown is how long an open circuit waits before half-opening for a
	// probe (default 1s).
	Cooldown time.Duration
	// Now is the clock (default time.Now); tests inject a fake to drive
	// cooldowns deterministically.
	Now func() time.Time
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.FailureThreshold <= 0 {
		c.FailureThreshold = 3
	}
	if c.Cooldown <= 0 {
		c.Cooldown = time.Second
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// BreakerTransition records one state change of one capability's circuit.
type BreakerTransition struct {
	Kind     Kind
	Pred     int
	From, To BreakerState
}

type breaker struct {
	state    BreakerState
	failures int       // consecutive failures while closed
	until    time.Time // open: when the circuit may half-open
	probing  bool      // half-open: a probe access is in flight
}

// BreakerSet holds one circuit breaker per (predicate, access kind). It is
// safe for concurrent use and designed to be shared: a service keeps one
// set per backend so breaker state carries across queries, while each
// query's Session consults it through a Resilience attachment.
//
// State transitions are returned to the caller rather than emitted into an
// observer directly — emission under the set's lock would stall every
// session sharing it (and trip the lockdiscipline analyzer).
type BreakerSet struct {
	cfg BreakerConfig
	gen atomic.Uint64 // bumped on every state change; sessions re-sync on mismatch

	mu sync.Mutex
	br [2][]breaker // indexed by Kind, then predicate
}

// NewBreakerSet builds a set of closed breakers for m predicates.
func NewBreakerSet(m int, cfg BreakerConfig) *BreakerSet {
	b := &BreakerSet{cfg: cfg.withDefaults()}
	b.br[SortedAccess] = make([]breaker, m)
	b.br[RandomAccess] = make([]breaker, m)
	return b
}

// M returns the number of predicates covered.
func (b *BreakerSet) M() int { return len(b.br[SortedAccess]) }

// Generation returns a counter that increments on every state change.
// Sessions cache it and refresh their capability view only when it moves,
// keeping the closed-circuit fast path to one atomic load.
func (b *BreakerSet) Generation() uint64 { return b.gen.Load() }

// State returns the current state of one capability's circuit.
func (b *BreakerSet) State(kind Kind, pred int) BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.br[kind][pred].state
}

// Poll advances time-based transitions: every open circuit whose cooldown
// has elapsed becomes half-open. It returns the transitions it caused.
func (b *BreakerSet) Poll() []BreakerTransition {
	now := b.cfg.Now()
	b.mu.Lock()
	var trs []BreakerTransition
	for kind := range b.br {
		for pred := range b.br[kind] {
			br := &b.br[kind][pred]
			if br.state == BreakerOpen && !now.Before(br.until) {
				br.state = BreakerHalfOpen
				br.probing = false
				trs = append(trs, BreakerTransition{Kind: Kind(kind), Pred: pred, From: BreakerOpen, To: BreakerHalfOpen})
			}
		}
	}
	if len(trs) > 0 {
		b.gen.Add(1)
	}
	b.mu.Unlock()
	return trs
}

// Acquire asks permission to perform one access on the capability. Closed
// circuits always grant it; open circuits refuse; a half-open circuit
// grants exactly one probe at a time. Grants must be paired with a Record
// call reporting the outcome.
func (b *BreakerSet) Acquire(kind Kind, pred int) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	br := &b.br[kind][pred]
	switch br.state {
	case BreakerClosed:
		return true
	case BreakerHalfOpen:
		if br.probing {
			return false
		}
		br.probing = true
		return true
	default:
		return false
	}
}

// Release returns an Acquire grant without an outcome (the access was
// aborted by the caller's own cancellation, which says nothing about the
// source). A half-open probe slot is freed; nothing else changes.
func (b *BreakerSet) Release(kind Kind, pred int) {
	b.mu.Lock()
	b.br[kind][pred].probing = false
	b.mu.Unlock()
}

// Record reports the outcome of an access granted by Acquire, returning
// any state transition it caused: consecutive failures open a closed
// circuit, a failed probe re-opens a half-open one, a successful probe
// closes it.
func (b *BreakerSet) Record(kind Kind, pred int, ok bool) []BreakerTransition {
	now := b.cfg.Now()
	b.mu.Lock()
	br := &b.br[kind][pred]
	var trs []BreakerTransition
	switch br.state {
	case BreakerClosed:
		if ok {
			br.failures = 0
		} else if br.failures++; br.failures >= b.cfg.FailureThreshold {
			br.state = BreakerOpen
			br.failures = 0
			br.until = now.Add(b.cfg.Cooldown)
			trs = append(trs, BreakerTransition{Kind: kind, Pred: pred, From: BreakerClosed, To: BreakerOpen})
		}
	case BreakerHalfOpen:
		br.probing = false
		if ok {
			br.state = BreakerClosed
			br.failures = 0
			trs = append(trs, BreakerTransition{Kind: kind, Pred: pred, From: BreakerHalfOpen, To: BreakerClosed})
		} else {
			br.state = BreakerOpen
			br.until = now.Add(b.cfg.Cooldown)
			trs = append(trs, BreakerTransition{Kind: kind, Pred: pred, From: BreakerHalfOpen, To: BreakerOpen})
		}
	}
	if len(trs) > 0 {
		b.gen.Add(1)
	}
	b.mu.Unlock()
	return trs
}

// Resilience attaches fault tolerance to a Session (WithResilience): a
// shared circuit-breaker set and a per-access deadline. The zero value of
// each field is inert — a nil Breakers skips breaker bookkeeping, a zero
// AccessTimeout leaves accesses unbounded.
type Resilience struct {
	// Breakers is the circuit-breaker set, usually shared across sessions
	// so breaker state carries across queries.
	Breakers *BreakerSet
	// Map translates session predicate indices to Breakers indices (a
	// service projects columns per query, so session predicate i is
	// backend predicate Map[i]). Nil means identity.
	Map []int
	// AccessTimeout bounds each backend access: a source that hangs past
	// it fails the access with a retryable error instead of stalling the
	// query (0 = unbounded).
	AccessTimeout time.Duration
}

// breakerIndex maps a session predicate to its breaker index.
func (r *Resilience) breakerIndex(pred int) int {
	if r.Map == nil {
		return pred
	}
	return r.Map[pred]
}

// validate checks the attachment against the session's predicate count.
func (r *Resilience) validate(m int) error {
	if r.Breakers == nil {
		return nil
	}
	if r.Map == nil {
		if r.Breakers.M() < m {
			return fmt.Errorf("access: breaker set covers %d predicates, session has %d", r.Breakers.M(), m)
		}
		return nil
	}
	if len(r.Map) != m {
		return fmt.Errorf("access: resilience map covers %d predicates, session has %d", len(r.Map), m)
	}
	for i, b := range r.Map {
		if b < 0 || b >= r.Breakers.M() {
			return fmt.Errorf("access: resilience map entry %d -> %d outside breaker set [0,%d)", i, b, r.Breakers.M())
		}
	}
	return nil
}
