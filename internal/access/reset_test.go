package access

import (
	"testing"

	"repro/internal/data"
	"repro/internal/data/datatest"
)

// TestSessionResetMatchesFresh drives a session through a mixed run, resets
// it, and checks that a reset session is observationally identical to a
// freshly constructed one: same accesses, same ledger, same legality.
func TestSessionResetMatchesFresh(t *testing.T) {
	ds := datatest.MustGenerate(data.Uniform, 20, 2, 4)
	scn := Uniform(2, 1, 3)
	run := func(s *Session) Ledger {
		t.Helper()
		for i := 0; i < 5; i++ {
			if _, _, err := s.SortedNext(0); err != nil {
				t.Fatal(err)
			}
		}
		obj, _, err := s.SortedNext(1)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Random(0, obj); err != nil && !s.Probed(0, obj) {
			t.Fatal(err)
		}
		return s.Ledger()
	}

	pooled, err := NewSession(DatasetBackend{DS: ds}, scn, WithTrace())
	if err != nil {
		t.Fatal(err)
	}
	first := run(pooled)
	if len(pooled.Trace()) == 0 {
		t.Fatal("trace should have recorded the first run")
	}
	if err := pooled.Reset(); err != nil {
		t.Fatal(err)
	}
	if pooled.Trace() != nil {
		t.Error("Reset must drop the recorded trace (trace off by default)")
	}
	if l := pooled.Ledger(); l.TotalCost != 0 || l.TotalAccesses() != 0 {
		t.Fatalf("reset ledger not empty: %+v", l)
	}
	if pooled.SeenCount() != 0 || pooled.SortedDepth(0) != 0 {
		t.Fatal("reset session retains cursors or visibility")
	}

	second := run(pooled)
	fresh, err := NewSession(DatasetBackend{DS: ds}, scn)
	if err != nil {
		t.Fatal(err)
	}
	third := run(fresh)
	for i := range second.SortedCounts {
		if second.SortedCounts[i] != third.SortedCounts[i] || second.RandomCounts[i] != third.RandomCounts[i] {
			t.Fatalf("reset run ledger diverges from fresh: %+v vs %+v", second, third)
		}
	}
	if second.TotalCost != third.TotalCost || second.TotalCost != first.TotalCost {
		t.Fatalf("costs diverge: first=%v reset=%v fresh=%v", first.TotalCost, second.TotalCost, third.TotalCost)
	}
}

// TestSessionResetDropsOptions verifies per-run options do not leak across
// Reset: budgets, NWG relaxation, and resilience all revert to defaults.
func TestSessionResetDropsOptions(t *testing.T) {
	ds := datatest.MustGenerate(data.Uniform, 10, 2, 4)
	s, err := NewSession(DatasetBackend{DS: ds}, Uniform(2, 1, 1),
		WithoutNoWildGuesses(), WithBudget(2*UnitCost), WithResilience(&Resilience{}))
	if err != nil {
		t.Fatal(err)
	}
	if s.NoWildGuesses() || !s.FaultTolerant() {
		t.Fatal("options not applied at construction")
	}
	if err := s.Reset(); err != nil {
		t.Fatal(err)
	}
	if !s.NoWildGuesses() {
		t.Error("Reset must restore no-wild-guesses")
	}
	if s.FaultTolerant() {
		t.Error("Reset must detach resilience")
	}
	// The old budget must be gone: 5 unit-cost accesses exceed it.
	for i := 0; i < 5; i++ {
		if _, _, err := s.SortedNext(0); err != nil {
			t.Fatalf("budget leaked across Reset: %v", err)
		}
	}
}
