package access

import (
	"encoding/json"
	"fmt"
	"io"
)

// scenarioJSON is the on-disk shape of a Scenario: costs in float units
// (as humans write them), capabilities explicit.
type scenarioJSON struct {
	Name       string         `json:"name"`
	Predicates []predCostJSON `json:"predicates"`
}

type predCostJSON struct {
	Sorted *float64 `json:"sorted,omitempty"` // unit cost; absent = unsupported
	Random *float64 `json:"random,omitempty"`
}

// WriteJSON serializes the scenario with costs in units.
func (s Scenario) WriteJSON(w io.Writer) error {
	payload := scenarioJSON{Name: s.Name, Predicates: make([]predCostJSON, len(s.Preds))}
	for i, pc := range s.Preds {
		var pj predCostJSON
		if pc.SortedOK {
			v := pc.Sorted.Units()
			pj.Sorted = &v
		}
		if pc.RandomOK {
			v := pc.Random.Units()
			pj.Random = &v
		}
		payload.Predicates[i] = pj
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	if err := enc.Encode(payload); err != nil {
		return fmt.Errorf("access: encoding scenario %q: %w", s.Name, err)
	}
	return nil
}

// ReadScenarioJSON loads a scenario written by WriteJSON (or
// hand-authored); costs are unit values, and a predicate supports an
// access type iff its cost is present.
func ReadScenarioJSON(r io.Reader) (Scenario, error) {
	var payload scenarioJSON
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&payload); err != nil {
		return Scenario{}, fmt.Errorf("access: decoding scenario: %w", err)
	}
	s := Scenario{Name: payload.Name, Preds: make([]PredCost, len(payload.Predicates))}
	for i, pj := range payload.Predicates {
		var pc PredCost
		if pj.Sorted != nil {
			c, err := CostFromUnits(*pj.Sorted)
			if err != nil {
				return Scenario{}, fmt.Errorf("access: scenario %q predicate %d: sorted cost: %w", payload.Name, i, err)
			}
			pc.Sorted, pc.SortedOK = c, true
		}
		if pj.Random != nil {
			c, err := CostFromUnits(*pj.Random)
			if err != nil {
				return Scenario{}, fmt.Errorf("access: scenario %q predicate %d: random cost: %w", payload.Name, i, err)
			}
			pc.Random, pc.RandomOK = c, true
		}
		s.Preds[i] = pc
	}
	if err := s.Validate(len(s.Preds)); err != nil {
		return Scenario{}, err
	}
	return s, nil
}
