package access

import (
	"context"
	"errors"
	"math"
	"testing"

	"repro/internal/data"
	"repro/internal/data/datatest"
)

func fig3Dataset() *data.Dataset {
	return datatest.MustNew("fig3", [][]float64{
		{0.6, 0.8},
		{0.65, 0.8},
		{0.7, 0.9},
	})
}

func newTestSession(t *testing.T, opts ...Option) *Session {
	t.Helper()
	s, err := NewSession(DatasetBackend{DS: fig3Dataset()}, Uniform(2, 1, 1), opts...)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestCostConversion(t *testing.T) {
	c, err := CostFromUnits(1.5)
	if err != nil {
		t.Fatal(err)
	}
	if c != 1_500_000 {
		t.Errorf("CostFromUnits(1.5) = %d", c)
	}
	if c.Units() != 1.5 {
		t.Errorf("Units = %g", c.Units())
	}
	if c.String() != "1.500" {
		t.Errorf("String = %q", c.String())
	}
	if _, err := CostFromUnits(-1); err == nil {
		t.Error("negative cost should be rejected")
	}
	if _, err := CostFromUnits(math.NaN()); err == nil {
		t.Error("NaN cost should be rejected")
	}
	if CostOf(2) != 2*UnitCost {
		t.Errorf("CostOf(2) = %d", CostOf(2))
	}
	if CostOf(-1) >= 0 {
		t.Error("CostOf of an invalid value must be a negative sentinel")
	}
	scn := Uniform(2, -1, 1)
	if err := scn.Validate(2); err == nil {
		t.Error("scenario built from invalid units must fail validation")
	}
}

func TestScenarioValidate(t *testing.T) {
	if err := Uniform(2, 1, 10).Validate(2); err != nil {
		t.Errorf("uniform: %v", err)
	}
	if err := Uniform(2, 1, 1).Validate(3); err == nil {
		t.Error("arity mismatch should fail")
	}
	bad := Scenario{Name: "none", Preds: []PredCost{{}}}
	if err := bad.Validate(1); err == nil {
		t.Error("no-capability predicate should fail")
	}
	probeOnly := Scenario{Name: "probe", Preds: []PredCost{
		{Random: UnitCost, RandomOK: true},
	}}
	if err := probeOnly.Validate(1); err == nil {
		t.Error("scenario with no sorted capability anywhere should fail")
	}
}

func TestMatrixCell(t *testing.T) {
	s := MatrixCell(2, Cheap, Expensive, 10)
	for i, pc := range s.Preds {
		if !pc.SortedOK || pc.Sorted != UnitCost {
			t.Errorf("pred %d sorted = %+v", i, pc)
		}
		if !pc.RandomOK || pc.Random != 10*UnitCost {
			t.Errorf("pred %d random = %+v", i, pc)
		}
	}
	s = MatrixCell(3, Impossible, Cheap, 10)
	if !s.Preds[0].SortedOK {
		t.Error("sa-impossible cell must keep a retrieval predicate")
	}
	if s.Preds[1].SortedOK || s.Preds[2].SortedOK {
		t.Error("non-retrieval predicates must be probe-only")
	}
	if err := s.Validate(3); err != nil {
		t.Errorf("sa-impossible cell should validate: %v", err)
	}
	s = MatrixCell(2, Cheap, Impossible, 10)
	if s.Preds[0].RandomOK || s.Preds[1].RandomOK {
		t.Error("ra-impossible cell must forbid probes")
	}
}

func TestSortedNextWalksListAndCounts(t *testing.T) {
	s := newTestSession(t, WithTrace())
	want := []struct {
		obj int
		sc  float64
	}{{2, 0.7}, {1, 0.65}, {0, 0.6}}
	for r, w := range want {
		obj, sc, err := s.SortedNext(0)
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
		if obj != w.obj || sc != w.sc {
			t.Fatalf("rank %d: got u%d(%g), want u%d(%g)", r, obj, sc, w.obj, w.sc)
		}
	}
	if _, _, err := s.SortedNext(0); !errors.Is(err, ErrExhausted) {
		t.Errorf("exhausted list: err = %v", err)
	}
	l := s.Ledger()
	if l.SortedCounts[0] != 3 || l.SortedCounts[1] != 0 {
		t.Errorf("sorted counts = %v", l.SortedCounts)
	}
	if l.TotalCost != 3*UnitCost {
		t.Errorf("total cost = %v", l.TotalCost)
	}
	if l.TotalAccesses() != 3 {
		t.Errorf("total accesses = %d", l.TotalAccesses())
	}
	if len(s.Trace()) != 3 || s.Trace()[0].String() != "sa1->u2(0.70)" {
		t.Errorf("trace = %v", s.Trace())
	}
}

func TestRandomLegality(t *testing.T) {
	s := newTestSession(t)
	// Wild guess forbidden before any sorted access.
	if _, err := s.Random(1, 2); !errors.Is(err, ErrWildGuess) {
		t.Fatalf("expected wild-guess error, got %v", err)
	}
	if _, _, err := s.SortedNext(0); err != nil { // sees u2
		t.Fatal(err)
	}
	sc, err := s.Random(1, 2)
	if err != nil || sc != 0.9 {
		t.Fatalf("ra2(u2) = %g, %v", sc, err)
	}
	if _, err := s.Random(1, 2); !errors.Is(err, ErrRepeatedProbe) {
		t.Fatalf("expected repeated-probe error, got %v", err)
	}
	if !s.Probed(1, 2) || s.Probed(0, 2) {
		t.Error("Probed bookkeeping wrong")
	}
}

func TestWithoutNoWildGuesses(t *testing.T) {
	s := newTestSession(t, WithoutNoWildGuesses())
	if s.NoWildGuesses() {
		t.Fatal("NWG should be off")
	}
	sc, err := s.Random(0, 1)
	if err != nil || sc != 0.65 {
		t.Fatalf("wild probe = %g, %v", sc, err)
	}
}

func TestUnsupportedAccess(t *testing.T) {
	scn := Scenario{Name: "mixed", Preds: []PredCost{
		{Sorted: UnitCost, SortedOK: true},                                    // sorted only
		{Sorted: UnitCost, SortedOK: true, Random: UnitCost, RandomOK: false}, // sorted only
	}}
	s, err := NewSession(DatasetBackend{DS: fig3Dataset()}, scn)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.SortedNext(0); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Random(0, 2); !errors.Is(err, ErrRandomUnsupported) {
		t.Errorf("expected unsupported error, got %v", err)
	}
}

func TestSeenTracking(t *testing.T) {
	s := newTestSession(t)
	if s.SeenCount() != 0 || s.Seen(2) {
		t.Fatal("nothing seen initially")
	}
	s.SortedNext(0) // u2
	s.SortedNext(1) // u2 again via p2
	if s.SeenCount() != 1 || !s.Seen(2) {
		t.Errorf("seen count = %d", s.SeenCount())
	}
	s.SortedNext(0) // u1
	if s.SeenCount() != 2 {
		t.Errorf("seen count = %d", s.SeenCount())
	}
	if s.SortedDepth(0) != 2 || s.SortedDepth(1) != 1 {
		t.Errorf("depths = %d, %d", s.SortedDepth(0), s.SortedDepth(1))
	}
}

func TestCostAccrualMixedScenario(t *testing.T) {
	scn := Scenario{Name: "ex1", Preds: []PredCost{
		{Sorted: CostOf(0.2), SortedOK: true, Random: CostOf(1.0), RandomOK: true},
		{Sorted: CostOf(0.1), SortedOK: true, Random: CostOf(0.5), RandomOK: true},
	}}
	s, err := NewSession(DatasetBackend{DS: fig3Dataset()}, scn)
	if err != nil {
		t.Fatal(err)
	}
	s.SortedNext(0)
	s.SortedNext(1)
	s.Random(1, 2)
	want := CostOf(0.2) + CostOf(0.1) + CostOf(0.5)
	if got := s.Ledger().TotalCost; got != want {
		t.Errorf("total cost = %v, want %v", got, want)
	}
	if math.Abs(s.Ledger().TotalCost.Units()-0.8) > 1e-9 {
		t.Errorf("units = %g", s.Ledger().TotalCost.Units())
	}
}

func TestCostShift(t *testing.T) {
	s := newTestSession(t, WithShifts(CostShift{AfterAccesses: 2, Pred: 0, SortedFactor: 10, RandomFactor: 10}))
	s.SortedNext(0) // cost 1
	s.SortedNext(0) // cost 1; shift applies before the *next* access
	if s.Costs(0).Sorted != UnitCost {
		t.Fatalf("shift applied too early")
	}
	s.SortedNext(0) // cost 10
	if s.Costs(0).Sorted != 10*UnitCost {
		t.Fatalf("shift not applied: %v", s.Costs(0).Sorted)
	}
	if got := s.Ledger().TotalCost; got != 12*UnitCost {
		t.Errorf("total = %v, want 12", got)
	}
	// Unshifted predicate unaffected.
	if s.Costs(1).Sorted != UnitCost {
		t.Error("shift leaked to other predicate")
	}
}

func TestOutOfRangeArguments(t *testing.T) {
	s := newTestSession(t)
	if _, _, err := s.SortedNext(5); err == nil {
		t.Error("bad predicate should fail")
	}
	if _, err := s.Random(0, 99); err == nil {
		t.Error("bad object should fail")
	}
	if _, err := s.Random(-1, 0); err == nil {
		t.Error("negative predicate should fail")
	}
}

func TestKindString(t *testing.T) {
	if SortedAccess.String() != "sa" || RandomAccess.String() != "ra" {
		t.Error("Kind.String mismatch")
	}
	r := Record{Kind: RandomAccess, Pred: 1, Obj: 3, Score: 0.7}
	if r.String() != "ra2(u3)=0.70" {
		t.Errorf("record string = %q", r.String())
	}
	if Cheap.String() != "cheap" || Expensive.String() != "expensive" || Impossible.String() != "impossible" {
		t.Error("Capability.String mismatch")
	}
}

// TestTraceCostsSumToLedger: the per-record costs in a trace must always
// sum to the ledger total, including across dynamic cost shifts.
func TestTraceCostsSumToLedger(t *testing.T) {
	s := newTestSession(t, WithTrace(),
		WithShifts(CostShift{AfterAccesses: 2, Pred: 1, SortedFactor: 7, RandomFactor: 3}))
	s.SortedNext(0)
	s.SortedNext(1)
	s.SortedNext(1) // shifted
	obj := 0
	for u := 0; u < s.N(); u++ {
		if s.Seen(u) {
			obj = u
			break
		}
	}
	s.Random(1, obj) // shifted random
	var sum Cost
	for _, rec := range s.Trace() {
		sum += rec.Cost
	}
	if sum != s.Ledger().TotalCost {
		t.Errorf("trace sum %v != ledger %v", sum, s.Ledger().TotalCost)
	}
}

func TestWithContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	s := newTestSession(t, WithContext(ctx))
	if _, _, err := s.SortedNext(0); err != nil {
		t.Fatalf("live context: %v", err)
	}
	cancel()
	if _, _, err := s.SortedNext(0); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled sorted access: err = %v, want context.Canceled", err)
	}
	if _, err := s.Random(0, 2); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled random access: err = %v, want context.Canceled", err)
	}
	// Nothing is charged for a refused access.
	if got := s.Ledger().TotalCost; got != UnitCost {
		t.Errorf("ledger after cancellation = %v, want %v", got, UnitCost)
	}
}
