package access

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/data"
	"repro/internal/obs"
)

// Backend supplies raw access results. The in-process implementation wraps
// a data.Dataset; internal/websim provides an HTTP-backed implementation.
// Backends are oblivious to costs and legality — that is the Session's job.
// Accesses take a context first so callers can cancel or bound in-flight
// source requests; in-memory backends only need to honor ctx.Err().
type Backend interface {
	// N and M return the object and predicate counts.
	N() int
	M() int
	// Sorted returns the object at the given zero-based rank of predicate
	// pred's descending list and its score. rank is always in [0, N).
	Sorted(ctx context.Context, pred, rank int) (obj int, score float64, err error)
	// Random returns p_pred[obj].
	Random(ctx context.Context, pred, obj int) (float64, error)
}

// DatasetBackend adapts a data.Dataset to the Backend interface.
type DatasetBackend struct{ DS *data.Dataset }

// N returns the object count.
func (b DatasetBackend) N() int { return b.DS.N() }

// M returns the predicate count.
func (b DatasetBackend) M() int { return b.DS.M() }

// Sorted returns the rank-th entry of pred's descending list.
func (b DatasetBackend) Sorted(ctx context.Context, pred, rank int) (int, float64, error) {
	if err := ctx.Err(); err != nil {
		return 0, 0, err
	}
	obj, s := b.DS.SortedAt(pred, rank)
	return obj, s, nil
}

// Random returns the exact score.
func (b DatasetBackend) Random(ctx context.Context, pred, obj int) (float64, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	return b.DS.Score(obj, pred), nil
}

// Sentinel errors for illegal or unavailable accesses.
var (
	// ErrExhausted is returned by SortedNext once a list has been fully
	// consumed.
	ErrExhausted = errors.New("access: sorted list exhausted")
	// ErrSortedUnsupported is returned when the scenario forbids sa_i.
	ErrSortedUnsupported = errors.New("access: sorted access unsupported on this predicate")
	// ErrRandomUnsupported is returned when the scenario forbids ra_i.
	ErrRandomUnsupported = errors.New("access: random access unsupported on this predicate")
	// ErrWildGuess is returned when a random access targets an object not
	// yet seen by any sorted access while no-wild-guesses is enforced.
	ErrWildGuess = errors.New("access: random access to unseen object (no wild guesses)")
	// ErrRepeatedProbe is returned on a second random access to the same
	// (predicate, object) pair; such accesses return no new information
	// and indicate an algorithm bug.
	ErrRepeatedProbe = errors.New("access: repeated random access")
	// ErrBudgetExhausted is returned when performing an access would push
	// the session's accrued cost past its budget (WithBudget). The access
	// is not performed and nothing is charged; anytime algorithms catch
	// this sentinel and return their best current answer.
	ErrBudgetExhausted = errors.New("access: cost budget exhausted")
	// ErrCircuitOpen is returned when an access is refused because the
	// capability's circuit breaker is open (WithResilience): the source
	// failed repeatedly and is being rested. Nothing is charged. Fault-
	// tolerant algorithms treat this as a scenario change and re-plan.
	ErrCircuitOpen = errors.New("access: circuit open")
	// ErrAccessFailed wraps a source-side failure (transport error, source
	// error, or per-access timeout) under WithResilience. Nothing was
	// charged; the failure was recorded against the capability's breaker,
	// and the access is safe to re-derive — the session's cursors did not
	// move. Fault-tolerant algorithms catch this sentinel and continue.
	ErrAccessFailed = errors.New("access: source access failed")
)

// Record is one entry of an access trace.
type Record struct {
	Kind  Kind
	Pred  int
	Obj   int // the object returned (sa) or targeted (ra)
	Score float64
	Cost  Cost
}

// String formats the record like the paper's notation, e.g. "sa1->u3(0.70)"
// or "ra2(u3)=0.70" (predicates printed 1-based as in the paper).
func (r Record) String() string {
	if r.Kind == SortedAccess {
		return fmt.Sprintf("sa%d->u%d(%.2f)", r.Pred+1, r.Obj, r.Score)
	}
	return fmt.Sprintf("ra%d(u%d)=%.2f", r.Pred+1, r.Obj, r.Score)
}

// Ledger is a snapshot of a session's accrued accesses and cost, the
// quantities of the paper's Eq. 1.
type Ledger struct {
	SortedCounts []int // ns_i
	RandomCounts []int // nr_i
	TotalCost    Cost  // sum ns_i*cs_i + nr_i*cr_i (at the costs in force when each access ran)
}

// TotalAccesses returns the total number of accesses of both kinds.
func (l Ledger) TotalAccesses() int {
	t := 0
	for _, c := range l.SortedCounts {
		t += c
	}
	for _, c := range l.RandomCounts {
		t += c
	}
	return t
}

// Option configures a Session.
type Option func(*Session)

// WithTrace enables access-trace recording (off by default; traces are
// useful for tests and debugging but cost memory).
func WithTrace() Option { return func(s *Session) { s.traceOn = true } }

// WithoutNoWildGuesses disables the no-wild-guesses rule, allowing random
// access to objects never seen by sorted access. The paper's framework
// "can generally work with or without" the rule (Section 8); middleware
// over Web sources normally enforce it.
func WithoutNoWildGuesses() Option { return func(s *Session) { s.nwg = false } }

// WithShifts installs dynamic cost shifts (adaptivity experiments).
func WithShifts(shifts ...CostShift) Option {
	return func(s *Session) { s.shifts = append(s.shifts, shifts...) }
}

// WithBudget caps the session's total access cost: an access that would
// exceed the budget fails with ErrBudgetExhausted (and is not charged).
// Budgets turn exact algorithms into anytime ones — Framework NC returns
// its best current answer when the budget runs dry.
func WithBudget(budget Cost) Option {
	return func(s *Session) { s.budget = budget; s.hasBudget = true }
}

// WithContext attaches a context to every backend access the session
// performs: cancelling it aborts in-flight source requests and fails
// subsequent accesses. The default is context.Background().
func WithContext(ctx context.Context) Option {
	return func(s *Session) {
		if ctx != nil {
			s.ctx = ctx
		}
	}
}

// WithObserver streams the session's access events (performed and
// refused accesses with their costs) into an observer. The default is a
// nil observer with zero overhead; obs.QueryTrace and obs.Metrics are
// the standard sinks.
func WithObserver(o obs.Observer) Option {
	return func(s *Session) {
		if o != nil {
			s.obs = o
		}
	}
}

// WithResilience attaches fault tolerance to the session: per-capability
// circuit breakers and a per-access deadline. Source failures are recorded
// against the breakers; when a circuit opens, the session flips that
// capability off in CurrentScenario() — degradation becomes a scenario
// change the engine re-plans around instead of an error it aborts on.
func WithResilience(r *Resilience) Option {
	return func(s *Session) {
		if r != nil {
			s.res = r
		}
	}
}

// Session mediates all accesses of one query execution: it enforces
// legality, walks sorted lists in order, accrues costs, and records
// traces. A Session is single-use and not safe for concurrent use; the
// parallel executor serializes its bookkeeping. The engine facade pools
// sessions through sync.Pool (see Reset).
//
//topklint:pooled
type Session struct {
	backend Backend  //topklint:allow resetcomplete identity: a recycled session serves the same backend
	scn     Scenario //topklint:allow resetcomplete identity: a recycled session keeps its scenario; Reset re-derives current from it
	nwg     bool
	ctx     context.Context

	cursor  []int    // next rank per predicate
	probed  [][]bool // probed[pred][obj]
	seen    []bool
	nseen   int
	ns, nr  []int
	cost    Cost
	nAccess int

	shifts    []CostShift
	current   []PredCost // costs currently in force
	budget    Cost
	hasBudget bool

	traceOn bool
	trace   []Record

	obs obs.Observer // nil unless WithObserver

	// Fault tolerance (nil res = none; see WithResilience).
	res      *Resilience
	resGen   uint64     // last breaker-set generation folded into current
	orig     []PredCost // scenario capabilities before breaker degradation
	degraded []string   // machine-readable degradation reasons, first-seen order
}

// observeDenied reports a refused or failed access to the observer.
func (s *Session) observeDenied(kind Kind, pred int, reason obs.DenyReason) {
	if s.obs != nil {
		s.obs.AccessDenied(obsKind(kind), pred, reason)
	}
}

// obsKind maps the access kind onto the observability layer's mirror type.
func obsKind(k Kind) obs.AccessKind {
	if k == SortedAccess {
		return obs.Sorted
	}
	return obs.Random
}

// denyReason classifies a backend failure: cancellation of the session's
// own context is an operational signal distinct from a source-side error.
// A deadline that fired while the session context is still live is the
// per-access timeout — a hung source, i.e. a backend failure.
func (s *Session) denyReason(err error) obs.DenyReason {
	if s.ctx.Err() != nil {
		return obs.DenyCancelled
	}
	if s.res == nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
		return obs.DenyCancelled
	}
	if errors.Is(err, ErrContractViolation) {
		return obs.DenyContract
	}
	return obs.DenyBackend
}

// observeFailure reports a failed access: a contract-guard rejection emits
// its structured violation event before the generic denial.
func (s *Session) observeFailure(kind Kind, pred int, err error) {
	if s.obs != nil {
		var cve *ContractViolationError
		if errors.As(err, &cve) {
			s.obs.ContractViolation(obsKind(kind), pred, cve.Reason)
		}
	}
	s.observeDenied(kind, pred, s.denyReason(err))
}

// NewSession creates a session over the backend with the given scenario.
func NewSession(b Backend, scn Scenario, opts ...Option) (*Session, error) {
	if err := scn.Validate(b.M()); err != nil {
		return nil, err
	}
	m, n := b.M(), b.N()
	s := &Session{
		backend: b,
		scn:     scn,
		cursor:  make([]int, m),
		probed:  make([][]bool, m),
		seen:    make([]bool, n),
		ns:      make([]int, m),
		nr:      make([]int, m),
		current: make([]PredCost, m),
	}
	for i := range s.probed {
		s.probed[i] = make([]bool, n)
	}
	if err := s.Reset(opts...); err != nil {
		return nil, err
	}
	return s, nil
}

// Reset restores a used session to the state NewSession would have built —
// same backend, same scenario, fresh cursors, probe history, ledger, and
// per-run options — reusing every backing array. It is the recycling hook
// that lets the facade and the HTTP service pool sessions through
// sync.Pool instead of reallocating the probed/seen/ledger bookkeeping on
// every query. Options from the previous run are discarded entirely; pass
// the full set again.
func (s *Session) Reset(opts ...Option) error {
	s.nwg = true
	s.ctx = context.Background()
	clear(s.cursor)
	for i := range s.probed {
		clear(s.probed[i])
	}
	clear(s.seen)
	s.nseen = 0
	clear(s.ns)
	clear(s.nr)
	s.cost = 0
	s.nAccess = 0
	s.shifts = s.shifts[:0]
	copy(s.current, s.scn.Preds)
	s.budget, s.hasBudget = 0, false
	s.traceOn = false
	s.trace = nil
	s.obs = nil
	s.res = nil
	s.resGen = 0
	s.orig = s.orig[:0]
	s.degraded = s.degraded[:0]
	for _, o := range opts {
		o(s)
	}
	if s.res != nil {
		m := s.backend.M()
		if err := s.res.validate(m); err != nil {
			return err
		}
		if cap(s.orig) < m {
			s.orig = make([]PredCost, m)
		}
		s.orig = s.orig[:m]
		copy(s.orig, s.scn.Preds)
		s.syncBreakers()
	}
	return nil
}

// N returns the object count.
func (s *Session) N() int { return s.backend.N() }

// M returns the predicate count.
func (s *Session) M() int { return s.backend.M() }

// Scenario returns the session's (initial) cost scenario.
func (s *Session) Scenario() Scenario { return s.scn }

// CurrentScenario snapshots the unit costs currently in force (they can
// differ from the initial scenario under dynamic cost shifts) and the
// capabilities currently available (circuit-breaker degradation flips a
// capability off until its breaker closes again). Adaptive optimizers
// re-plan against this snapshot — which is exactly how a source outage
// becomes a scenario change rather than a query failure.
func (s *Session) CurrentScenario() Scenario {
	s.syncBreakers()
	preds := make([]PredCost, len(s.current))
	copy(preds, s.current)
	return Scenario{Name: s.scn.Name + "/current", Preds: preds}
}

// Costs returns the unit costs currently in force for predicate i. With
// dynamic shifts these can differ from the scenario's initial values;
// adaptive algorithms read them at runtime.
func (s *Session) Costs(i int) PredCost { return s.current[i] }

// NoWildGuesses reports whether the NWG rule is enforced.
func (s *Session) NoWildGuesses() bool { return s.nwg }

// Seen reports whether object u has been returned by any sorted access.
func (s *Session) Seen(u int) bool { return s.seen[u] }

// SeenCount returns how many distinct objects have been seen.
func (s *Session) SeenCount() int { return s.nseen }

// SortedDepth returns how many sorted accesses have been performed on
// predicate i (the current depth into its list).
func (s *Session) SortedDepth(i int) int { return s.cursor[i] }

// SortedExhausted reports whether predicate i's list is fully consumed.
func (s *Session) SortedExhausted(i int) bool { return s.cursor[i] >= s.backend.N() }

// Probed reports whether ra_i(u) has already been performed.
func (s *Session) Probed(i, u int) bool { return s.probed[i][u] }

func (s *Session) applyShifts() {
	for _, sh := range s.shifts {
		if s.nAccess == sh.AfterAccesses && sh.Pred >= 0 && sh.Pred < len(s.current) {
			pc := s.current[sh.Pred]
			if sh.SortedFactor > 0 {
				pc.Sorted = scaleCost(pc.Sorted, sh.SortedFactor)
			}
			if sh.RandomFactor > 0 {
				pc.Random = scaleCost(pc.Random, sh.RandomFactor)
			}
			s.current[sh.Pred] = pc
		}
	}
}

// FaultTolerant reports whether the session runs with resilience attached
// (WithResilience). Fault-tolerant algorithms use it to decide between
// absorbing a source failure and aborting on it.
func (s *Session) FaultTolerant() bool { return s.res != nil }

// Err surfaces the session context's state, letting algorithms tell a
// query-level deadline or cancellation apart from a source-side failure.
func (s *Session) Err() error { return s.ctx.Err() }

// Bind re-points the session's context for all subsequent accesses,
// replacing the one WithContext attached (or a previous Bind). Resumable
// cursors use it to give every page its own deadline: a page's timeout
// must not outlive the request that asked for the page, yet the session —
// and the paid-for state behind it — survives between requests. A nil ctx
// resets to context.Background().
func (s *Session) Bind(ctx context.Context) {
	if ctx == nil {
		ctx = context.Background()
	}
	s.ctx = ctx
}

// Degraded returns the machine-readable degradation reasons accumulated so
// far (circuits opened during this session), in first-seen order.
func (s *Session) Degraded() []string {
	return append([]string(nil), s.degraded...)
}

// FailureBudget is how many consecutive unbilled failures a fault-tolerant
// algorithm should absorb before declaring the answer degraded. It is
// sized so that a fully dead source trips every breaker with room to
// spare; zero (no resilience) means any failure is terminal.
func (s *Session) FailureBudget() int {
	if s.res == nil {
		return 0
	}
	threshold := 3
	if s.res.Breakers != nil {
		threshold = s.res.Breakers.cfg.FailureThreshold
	}
	return 16 + 8*threshold*s.M()
}

// noteDegraded records a degradation reason once.
func (s *Session) noteDegraded(reason string) {
	for _, r := range s.degraded {
		if r == reason {
			return
		}
	}
	s.degraded = append(s.degraded, reason)
}

// noteTransitions emits breaker transitions to the observer and records
// newly opened circuits as degradation reasons. Open/close transitions
// also refresh the session's capability view.
func (s *Session) noteTransitions(trs []BreakerTransition) {
	if len(trs) == 0 {
		return
	}
	for _, tr := range trs {
		if s.obs != nil {
			s.obs.BreakerTransition(obsKind(tr.Kind), tr.Pred, obsBreakerState(tr.From), obsBreakerState(tr.To))
		}
		if tr.To == BreakerOpen {
			s.noteDegraded(fmt.Sprintf("circuit_open:%s:p%d", tr.Kind, tr.Pred+1))
		}
	}
	s.refreshCapabilities()
}

// obsBreakerState maps a breaker state onto the observability mirror type.
func obsBreakerState(st BreakerState) obs.BreakerState {
	switch st {
	case BreakerOpen:
		return obs.BreakerOpen
	case BreakerHalfOpen:
		return obs.BreakerHalfOpen
	default:
		return obs.BreakerClosed
	}
}

// syncBreakers folds the shared breaker set's state into the session's
// capability view: it advances cooldown-elapsed circuits to half-open and,
// when any session sharing the set changed a circuit, refreshes which
// capabilities read as supported. With no resilience attached this is a
// nil check; with all circuits closed it is one atomic load.
func (s *Session) syncBreakers() {
	if s.res == nil || s.res.Breakers == nil {
		return
	}
	s.noteTransitions(s.res.Breakers.Poll())
	if g := s.res.Breakers.Generation(); g != s.resGen {
		s.resGen = g
		s.refreshCapabilities()
	}
}

// refreshCapabilities recomputes the capability bits of the current
// scenario from the breakers: a capability is available iff the original
// scenario supports it and its circuit is not open. Unit costs are left
// alone (they belong to shifts).
func (s *Session) refreshCapabilities() {
	set := s.res.Breakers
	if set == nil {
		return
	}
	for i := range s.current {
		bi := s.res.breakerIndex(i)
		s.current[i].SortedOK = s.orig[i].SortedOK && set.State(SortedAccess, bi) != BreakerOpen
		s.current[i].RandomOK = s.orig[i].RandomOK && set.State(RandomAccess, bi) != BreakerOpen
	}
}

// breakerTripped reports whether a capability the original scenario
// supports currently reads as unsupported because of breaker degradation.
func (s *Session) breakerTripped(kind Kind, i int) bool {
	if s.res == nil {
		return false
	}
	if kind == SortedAccess {
		return s.orig[i].SortedOK && !s.current[i].SortedOK
	}
	return s.orig[i].RandomOK && !s.current[i].RandomOK
}

// acquireBreaker asks the breaker set for permission to access; a refusal
// (open circuit, or a half-open circuit whose probe slot another session
// holds) suppresses the capability locally so choice construction stops
// proposing it until the set's state moves again.
func (s *Session) acquireBreaker(kind Kind, i int) bool {
	if s.res == nil || s.res.Breakers == nil {
		return true
	}
	if s.res.Breakers.Acquire(kind, s.res.breakerIndex(i)) {
		return true
	}
	if kind == SortedAccess {
		s.current[i].SortedOK = false
	} else {
		s.current[i].RandomOK = false
	}
	return false
}

// recordBreaker reports an access outcome to the breaker set.
func (s *Session) recordBreaker(kind Kind, i int, ok bool) {
	if s.res == nil || s.res.Breakers == nil {
		return
	}
	s.noteTransitions(s.res.Breakers.Record(kind, s.res.breakerIndex(i), ok))
}

// accessCtx bounds one backend access with the per-access deadline. The
// returned cancel must be called as soon as the access returns.
func (s *Session) accessCtx() (context.Context, context.CancelFunc) {
	if s.res != nil && s.res.AccessTimeout > 0 {
		return context.WithTimeout(s.ctx, s.res.AccessTimeout)
	}
	return s.ctx, func() {}
}

// failAccess classifies a backend failure under resilience: a source-side
// failure (including a per-access timeout) is recorded against the breaker
// and wrapped in ErrAccessFailed so fault-tolerant algorithms absorb it; a
// failure caused by the session's own context stays terminal.
func (s *Session) failAccess(kind Kind, i int, err error) error {
	if s.res == nil {
		return err
	}
	if s.ctx.Err() == nil {
		s.recordBreaker(kind, i, false)
		return fmt.Errorf("%w: %w", ErrAccessFailed, err)
	}
	// Caller-side cancellation: no verdict on the source; free any probe.
	if s.res.Breakers != nil {
		s.res.Breakers.Release(kind, s.res.breakerIndex(i))
	}
	return err
}

// SortedNext performs sa_i: it returns the next object in descending p_i
// order along with its score, accruing cs_i. It fails with ErrExhausted at
// the end of the list and ErrSortedUnsupported if the scenario forbids it.
//
//topklint:hotpath
func (s *Session) SortedNext(i int) (obj int, score float64, err error) {
	if i < 0 || i >= s.M() {
		return 0, 0, fmt.Errorf("access: predicate %d out of range", i)
	}
	s.syncBreakers()
	if !s.current[i].SortedOK {
		if s.breakerTripped(SortedAccess, i) {
			s.observeDenied(SortedAccess, i, obs.DenyBreaker)
			return 0, 0, fmt.Errorf("%w: sa on p%d", ErrCircuitOpen, i+1)
		}
		s.observeDenied(SortedAccess, i, obs.DenyUnsupported)
		return 0, 0, fmt.Errorf("%w: p%d", ErrSortedUnsupported, i+1)
	}
	if s.SortedExhausted(i) {
		s.observeDenied(SortedAccess, i, obs.DenyExhausted)
		return 0, 0, fmt.Errorf("%w: p%d", ErrExhausted, i+1)
	}
	s.applyShifts()
	if s.hasBudget && s.cost+s.current[i].Sorted > s.budget {
		s.observeDenied(SortedAccess, i, obs.DenyBudget)
		return 0, 0, fmt.Errorf("%w: sa%d would cost %v with %v left", ErrBudgetExhausted, i+1, s.current[i].Sorted, s.budget-s.cost)
	}
	if !s.acquireBreaker(SortedAccess, i) {
		s.observeDenied(SortedAccess, i, obs.DenyBreaker)
		return 0, 0, fmt.Errorf("%w: sa on p%d (probe in flight)", ErrCircuitOpen, i+1)
	}
	rank := s.cursor[i]
	actx, cancel := s.accessCtx()
	obj, score, err = s.backend.Sorted(actx, i, rank)
	cancel()
	if err != nil {
		s.observeFailure(SortedAccess, i, err)
		return 0, 0, s.failAccess(SortedAccess, i, fmt.Errorf("access: backend sorted(p%d, rank %d): %w", i+1, rank, err))
	}
	s.recordBreaker(SortedAccess, i, true)
	s.cursor[i]++
	s.ns[i]++
	s.nAccess++
	s.cost += s.current[i].Sorted
	if !s.seen[obj] {
		s.seen[obj] = true
		s.nseen++
	}
	if s.traceOn {
		s.trace = append(s.trace, Record{Kind: SortedAccess, Pred: i, Obj: obj, Score: score, Cost: s.current[i].Sorted})
	}
	if s.obs != nil {
		s.obs.AccessDone(obs.Sorted, i, s.current[i].Sorted.Units())
	}
	return obj, score, nil
}

// Random performs ra_i(u), accruing cr_i. Under no-wild-guesses the object
// must already have been seen. Repeating a probe is an error.
//
//topklint:hotpath
func (s *Session) Random(i, u int) (float64, error) {
	if i < 0 || i >= s.M() {
		return 0, fmt.Errorf("access: predicate %d out of range", i)
	}
	if u < 0 || u >= s.N() {
		return 0, fmt.Errorf("access: object %d out of range", u)
	}
	s.syncBreakers()
	if !s.current[i].RandomOK {
		if s.breakerTripped(RandomAccess, i) {
			s.observeDenied(RandomAccess, i, obs.DenyBreaker)
			return 0, fmt.Errorf("%w: ra on p%d", ErrCircuitOpen, i+1)
		}
		s.observeDenied(RandomAccess, i, obs.DenyUnsupported)
		return 0, fmt.Errorf("%w: p%d", ErrRandomUnsupported, i+1)
	}
	if s.nwg && !s.seen[u] {
		s.observeDenied(RandomAccess, i, obs.DenyWildGuess)
		return 0, fmt.Errorf("%w: ra%d(u%d)", ErrWildGuess, i+1, u)
	}
	if s.probed[i][u] {
		s.observeDenied(RandomAccess, i, obs.DenyRepeatedProbe)
		return 0, fmt.Errorf("%w: ra%d(u%d)", ErrRepeatedProbe, i+1, u)
	}
	s.applyShifts()
	if s.hasBudget && s.cost+s.current[i].Random > s.budget {
		s.observeDenied(RandomAccess, i, obs.DenyBudget)
		return 0, fmt.Errorf("%w: ra%d would cost %v with %v left", ErrBudgetExhausted, i+1, s.current[i].Random, s.budget-s.cost)
	}
	if !s.acquireBreaker(RandomAccess, i) {
		s.observeDenied(RandomAccess, i, obs.DenyBreaker)
		return 0, fmt.Errorf("%w: ra on p%d (probe in flight)", ErrCircuitOpen, i+1)
	}
	actx, cancel := s.accessCtx()
	score, err := s.backend.Random(actx, i, u)
	cancel()
	if err != nil {
		s.observeFailure(RandomAccess, i, err)
		return 0, s.failAccess(RandomAccess, i, fmt.Errorf("access: backend random(p%d, u%d): %w", i+1, u, err))
	}
	s.recordBreaker(RandomAccess, i, true)
	s.probed[i][u] = true
	s.nr[i]++
	s.nAccess++
	s.cost += s.current[i].Random
	if s.traceOn {
		s.trace = append(s.trace, Record{Kind: RandomAccess, Pred: i, Obj: u, Score: score, Cost: s.current[i].Random})
	}
	if s.obs != nil {
		s.obs.AccessDone(obs.Random, i, s.current[i].Random.Units())
	}
	return score, nil
}

// Ledger returns a snapshot of accrued accesses and total cost.
func (s *Session) Ledger() Ledger {
	l := Ledger{
		SortedCounts: make([]int, s.M()),
		RandomCounts: make([]int, s.M()),
		TotalCost:    s.cost,
	}
	copy(l.SortedCounts, s.ns)
	copy(l.RandomCounts, s.nr)
	return l
}

// Trace returns the recorded access trace (nil unless WithTrace was set).
func (s *Session) Trace() []Record { return s.trace }
