package access

import (
	"strings"
	"testing"
)

func TestScenarioJSONRoundTrip(t *testing.T) {
	orig := Scenario{Name: "travel", Preds: []PredCost{
		{Sorted: CostOf(0.2), SortedOK: true, Random: CostOf(1.0), RandomOK: true},
		{Sorted: CostOf(0.1), SortedOK: true}, // sorted only
		{Random: CostOf(0.5), RandomOK: true}, // probe only
	}}
	var sb strings.Builder
	if err := orig.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	back, err := ReadScenarioJSON(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != orig.Name || len(back.Preds) != len(orig.Preds) {
		t.Fatalf("round trip changed shape: %+v", back)
	}
	for i := range orig.Preds {
		if back.Preds[i] != orig.Preds[i] {
			t.Fatalf("pred %d changed: %+v vs %+v", i, back.Preds[i], orig.Preds[i])
		}
	}
}

func TestReadScenarioJSONValidates(t *testing.T) {
	cases := []string{
		`{"name":"x","predicates":[{}]}`,                 // no capability
		`{"name":"x","predicates":[{"sorted":-1}]}`,      // negative cost
		`{"name":"x","predicates":[{"random":1}]}`,       // no sorted anywhere
		`{"name":"x","predicates":[{"sorted":1}],"z":1}`, // unknown field
		`garbage`,
	}
	for _, c := range cases {
		if _, err := ReadScenarioJSON(strings.NewReader(c)); err == nil {
			t.Errorf("ReadScenarioJSON(%q) should fail", c)
		}
	}
}
