package access

import (
	"errors"
	"fmt"
)

// ErrContractViolation marks a source response rejected before it could
// enter the score state: the backend broke the access-model contract the
// threshold math depends on (descending sorted order, scores in [0,1],
// distinct ids within a stream, random results consistent with sorted
// sightings). The contract guard (internal/adapt) returns errors wrapping
// this sentinel; sessions classify them as DenyContract, never bill them,
// and — under resilience — record a breaker failure, so a persistently
// lying capability is quarantined through the same breaker→scenario-change
// machinery that handles a failing one.
var ErrContractViolation = errors.New("access: source contract violation")

// ContractViolationError is the structured form of a guard rejection.
// errors.Is(err, ErrContractViolation) holds through any number of wraps
// (including the ErrAccessFailed wrap fault-tolerant runs absorb).
type ContractViolationError struct {
	Kind   Kind
	Pred   int
	Reason string // one of obs.ViolationReasons
	Detail string
}

// Error describes the violation.
func (e *ContractViolationError) Error() string {
	return fmt.Sprintf("%v: %s %v on p%d: %s", ErrContractViolation, e.Reason, e.Kind, e.Pred+1, e.Detail)
}

// Unwrap yields the sentinel.
func (e *ContractViolationError) Unwrap() error { return ErrContractViolation }
