// Package access models middleware access to (Web) sources: sorted and
// random accesses with per-predicate unit costs, capability restrictions
// (an access type may be cheap, expensive, or impossible), cost ledgers
// implementing the paper's cost model (Eq. 1), access-trace recording,
// legality enforcement (no wild guesses, no repeated probes, in-order
// sorted access), and dynamic cost scenarios for adaptivity experiments.
//
// Algorithms never touch a dataset directly; they see only a Session,
// which mediates every access exactly the way a Web middleware would —
// each access reveals one unit of score information and accrues its cost.
package access

import (
	"fmt"
	"math"
)

// Cost is an access cost in fixed-point micro-units (1 unit = 1e6).
// Integer arithmetic keeps ledgers exact no matter how many accesses
// accrue; unit values are whatever the scenario chooses (the paper uses
// milliseconds of latency).
type Cost int64

// UnitCost is one cost unit.
const UnitCost Cost = 1_000_000

// CostFromUnits converts a float unit value (e.g. milliseconds) to a Cost.
// NaN and negative values are rejected: costs are magnitudes in the
// paper's model (Eq. 1) and a negative ledger entry would let an optimizer
// "earn" budget by accessing.
func CostFromUnits(u float64) (Cost, error) {
	if math.IsNaN(u) || u < 0 {
		return 0, fmt.Errorf("access: invalid cost %v (must be a non-negative number)", u)
	}
	return Cost(math.Round(u * float64(UnitCost))), nil
}

// CostOf is CostFromUnits for scenario literals and builders, where a
// two-value conversion would bury the PredCost table in error plumbing:
// invalid unit values map to a negative sentinel Cost, which every
// consumer rejects through the mandatory Scenario.Validate.
func CostOf(u float64) Cost {
	c, err := CostFromUnits(u)
	if err != nil {
		return -1
	}
	return c
}

// Units converts back to float units.
func (c Cost) Units() float64 { return float64(c) / float64(UnitCost) }

// String prints the cost in units with three decimals.
func (c Cost) String() string { return fmt.Sprintf("%.3f", c.Units()) }

// Kind distinguishes the two access types of Section 3.2.
type Kind int

const (
	// SortedAccess is sa_i: next object in descending p_i order. It is
	// progressive and has the side effect of bounding unseen objects.
	SortedAccess Kind = iota
	// RandomAccess is ra_i(u): the exact score p_i[u] for a specific
	// object. It has no side effects and must not be repeated.
	RandomAccess
)

// String returns "sa" or "ra".
func (k Kind) String() string {
	if k == SortedAccess {
		return "sa"
	}
	return "ra"
}

// PredCost describes one predicate's access capabilities and unit costs
// (cs_i and cr_i in the paper). An unsupported access type is modeled
// explicitly rather than with an infinite cost.
type PredCost struct {
	Sorted   Cost // cs_i, meaningful only when SortedOK
	SortedOK bool
	Random   Cost // cr_i, meaningful only when RandomOK
	RandomOK bool
}

// Scenario is a complete cost configuration for a query: one PredCost per
// predicate. It corresponds to one cell (or mix of cells) of the paper's
// Figure 2 access-scenario matrix.
type Scenario struct {
	Name  string
	Preds []PredCost
}

// M returns the number of predicates the scenario covers.
func (s Scenario) M() int { return len(s.Preds) }

// Validate checks the scenario against a predicate count: every predicate
// must support at least one access type, and at least one predicate must
// support sorted access (otherwise no object can ever be seen under
// no-wild-guesses; probe-only scenarios model MPro's setup where object
// ids flow from one sorted "retrieval" predicate).
func (s Scenario) Validate(m int) error {
	if len(s.Preds) != m {
		return fmt.Errorf("access: scenario %q covers %d predicates, query has %d", s.Name, len(s.Preds), m)
	}
	anySorted := false
	for i, pc := range s.Preds {
		if !pc.SortedOK && !pc.RandomOK {
			return fmt.Errorf("access: scenario %q predicate %d supports no access at all", s.Name, i)
		}
		if pc.SortedOK {
			anySorted = true
			if pc.Sorted < 0 {
				return fmt.Errorf("access: scenario %q predicate %d has negative (or invalid) sorted cost", s.Name, i)
			}
		}
		if pc.RandomOK && pc.Random < 0 {
			return fmt.Errorf("access: scenario %q predicate %d has negative (or invalid) random cost", s.Name, i)
		}
	}
	if !anySorted {
		return fmt.Errorf("access: scenario %q supports sorted access on no predicate; objects could never be seen", s.Name)
	}
	return nil
}

// Uniform builds a scenario with identical sorted cost cs and random cost
// cr on all m predicates (the diagonal of Figure 2 when cs == cr).
// Invalid unit values surface from Scenario.Validate, which every session
// constructor runs.
func Uniform(m int, cs, cr float64) Scenario {
	preds := make([]PredCost, m)
	for i := range preds {
		preds[i] = PredCost{Sorted: CostOf(cs), SortedOK: true, Random: CostOf(cr), RandomOK: true}
	}
	return Scenario{Name: fmt.Sprintf("uniform(cs=%g,cr=%g)", cs, cr), Preds: preds}
}

// Capability abstracts one axis of the Figure 2 matrix.
type Capability int

const (
	// Cheap means unit cost 1.
	Cheap Capability = iota
	// Expensive means unit cost h (the matrix's "h", configurable in
	// MatrixCell; we default to 10).
	Expensive
	// Impossible means the access type is unsupported.
	Impossible
)

// String returns the capability name.
func (c Capability) String() string {
	switch c {
	case Cheap:
		return "cheap"
	case Expensive:
		return "expensive"
	case Impossible:
		return "impossible"
	default:
		return fmt.Sprintf("Capability(%d)", int(c))
	}
}

// MatrixCell builds the scenario for one cell of Figure 2: the given
// sorted/random capability on all m predicates, with "expensive" meaning
// expensiveFactor times the cheap unit cost. Sorted access Impossible is
// modeled as MPro's setting: predicate 0 keeps a cheap sorted (retrieval)
// capability so objects can be seen, and all predicates are probe-only
// otherwise — this mirrors how probe-only middleware obtain candidate
// objects in the paper's references [2, 5].
func MatrixCell(m int, sorted, random Capability, expensiveFactor float64) Scenario {
	cost := func(c Capability) (Cost, bool) {
		switch c {
		case Cheap:
			return UnitCost, true
		case Expensive:
			return CostOf(expensiveFactor), true
		default:
			return 0, false
		}
	}
	preds := make([]PredCost, m)
	for i := range preds {
		var pc PredCost
		pc.Sorted, pc.SortedOK = cost(sorted)
		pc.Random, pc.RandomOK = cost(random)
		preds[i] = pc
	}
	if sorted == Impossible {
		// Retrieval predicate: cheap sorted access on p_0 only.
		preds[0].Sorted, preds[0].SortedOK = UnitCost, true
	}
	return Scenario{
		Name:  fmt.Sprintf("matrix(sa=%v,ra=%v,h=%g)", sorted, random, expensiveFactor),
		Preds: preds,
	}
}

// CostShift is a dynamic cost event: once the session has performed
// AfterAccesses accesses in total, the given predicate's unit costs are
// multiplied by the factors. It models the Web's runtime dynamics
// ("cost scenarios changing over time, e.g., depending on source load").
type CostShift struct {
	AfterAccesses int
	Pred          int
	SortedFactor  float64
	RandomFactor  float64
}

func scaleCost(c Cost, f float64) Cost {
	return Cost(math.Round(float64(c) * f))
}
