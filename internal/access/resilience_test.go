package access

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/data"
)

// fakeClock drives breaker cooldowns deterministically.
type fakeClock struct{ now time.Time }

func (c *fakeClock) Now() time.Time          { return c.now }
func (c *fakeClock) Advance(d time.Duration) { c.now = c.now.Add(d) }
func newFakeClock() *fakeClock               { return &fakeClock{now: time.Unix(1000, 0)} }
func testCfg(clk *fakeClock) BreakerConfig {
	return BreakerConfig{FailureThreshold: 3, Cooldown: time.Second, Now: clk.Now}
}

func TestBreakerStateMachine(t *testing.T) {
	clk := newFakeClock()
	b := NewBreakerSet(2, testCfg(clk))
	g0 := b.Generation()

	// Two failures stay closed; the third opens.
	for i := 0; i < 2; i++ {
		if trs := b.Record(SortedAccess, 0, false); len(trs) != 0 {
			t.Fatalf("failure %d transitioned early: %v", i+1, trs)
		}
	}
	trs := b.Record(SortedAccess, 0, false)
	if len(trs) != 1 || trs[0].From != BreakerClosed || trs[0].To != BreakerOpen {
		t.Fatalf("third failure: %v, want closed->open", trs)
	}
	if b.State(SortedAccess, 0) != BreakerOpen {
		t.Fatal("circuit not open")
	}
	if b.Generation() == g0 {
		t.Fatal("generation did not move on transition")
	}
	if b.Acquire(SortedAccess, 0) {
		t.Fatal("open circuit granted an access")
	}
	// The sibling capability is untouched.
	if b.State(RandomAccess, 0) != BreakerClosed || b.State(SortedAccess, 1) != BreakerClosed {
		t.Fatal("unrelated circuits moved")
	}

	// Cooldown not elapsed: Poll is a no-op.
	if trs := b.Poll(); len(trs) != 0 {
		t.Fatalf("premature poll transitions: %v", trs)
	}
	clk.Advance(time.Second)
	trs = b.Poll()
	if len(trs) != 1 || trs[0].To != BreakerHalfOpen {
		t.Fatalf("poll after cooldown: %v, want open->half_open", trs)
	}

	// Half-open: exactly one probe at a time.
	if !b.Acquire(SortedAccess, 0) {
		t.Fatal("half-open circuit refused the probe")
	}
	if b.Acquire(SortedAccess, 0) {
		t.Fatal("half-open circuit granted a second concurrent probe")
	}
	// Failed probe re-opens.
	trs = b.Record(SortedAccess, 0, false)
	if len(trs) != 1 || trs[0].To != BreakerOpen {
		t.Fatalf("failed probe: %v, want half_open->open", trs)
	}
	clk.Advance(time.Second)
	b.Poll()
	if !b.Acquire(SortedAccess, 0) {
		t.Fatal("second probe refused")
	}
	// Successful probe closes.
	trs = b.Record(SortedAccess, 0, true)
	if len(trs) != 1 || trs[0].To != BreakerClosed {
		t.Fatalf("successful probe: %v, want half_open->closed", trs)
	}
	// A success resets the failure streak.
	b.Record(SortedAccess, 0, false)
	b.Record(SortedAccess, 0, true)
	b.Record(SortedAccess, 0, false)
	b.Record(SortedAccess, 0, false)
	if b.State(SortedAccess, 0) != BreakerClosed {
		t.Fatal("non-consecutive failures opened the circuit")
	}
}

func TestBreakerRelease(t *testing.T) {
	clk := newFakeClock()
	b := NewBreakerSet(1, testCfg(clk))
	for i := 0; i < 3; i++ {
		b.Record(RandomAccess, 0, false)
	}
	clk.Advance(time.Second)
	b.Poll()
	if !b.Acquire(RandomAccess, 0) {
		t.Fatal("probe refused")
	}
	// The probe was aborted by caller-side cancellation: releasing the
	// slot (no verdict) must let the next probe through.
	b.Release(RandomAccess, 0)
	if !b.Acquire(RandomAccess, 0) {
		t.Fatal("released probe slot still occupied")
	}
}

// flakyBackend fails accesses on the configured predicate until healed.
type flakyBackend struct {
	DatasetBackend
	failPred int
	failing  bool
	calls    int
	hang     bool // block until ctx cancels instead of failing fast
}

func (b *flakyBackend) Sorted(ctx context.Context, pred, rank int) (int, float64, error) {
	b.calls++
	if b.failing && pred == b.failPred {
		if b.hang {
			<-ctx.Done()
			return 0, 0, ctx.Err()
		}
		return 0, 0, fmt.Errorf("transient source error")
	}
	return b.DatasetBackend.Sorted(ctx, pred, rank)
}

func (b *flakyBackend) Random(ctx context.Context, pred, obj int) (float64, error) {
	b.calls++
	if b.failing && pred == b.failPred {
		if b.hang {
			<-ctx.Done()
			return 0, ctx.Err()
		}
		return 0, fmt.Errorf("transient source error")
	}
	return b.DatasetBackend.Random(ctx, pred, obj)
}

func testDataset(t *testing.T) *data.Dataset {
	t.Helper()
	ds, err := data.Generate(data.Uniform, 20, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

// TestDegradationAsScenarioChange is the core invariant: consecutive
// failures open the capability's circuit, which flips it off in
// CurrentScenario — an outage becomes a scenario change, not an error
// state — and nothing is ever billed for a failed access.
func TestDegradationAsScenarioChange(t *testing.T) {
	clk := newFakeClock()
	b := &flakyBackend{DatasetBackend: DatasetBackend{DS: testDataset(t)}, failPred: 1, failing: true}
	set := NewBreakerSet(2, testCfg(clk))
	sess, err := NewSession(b, Uniform(2, 1, 1), WithResilience(&Resilience{Breakers: set}))
	if err != nil {
		t.Fatal(err)
	}
	if !sess.FaultTolerant() {
		t.Fatal("resilient session must report FaultTolerant")
	}

	// Healthy predicate works.
	if _, _, err := sess.SortedNext(0); err != nil {
		t.Fatal(err)
	}
	costAfterOne := sess.Ledger().TotalCost

	// Three failures on p2's sorted capability open its circuit.
	for i := 0; i < 3; i++ {
		_, _, err := sess.SortedNext(1)
		if !errors.Is(err, ErrAccessFailed) {
			t.Fatalf("failure %d: err = %v, want ErrAccessFailed", i+1, err)
		}
	}
	if got := sess.Ledger(); got.TotalCost != costAfterOne || got.SortedCounts[1] != 0 {
		t.Fatalf("failed accesses were billed: %+v", got)
	}
	cur := sess.CurrentScenario()
	if cur.Preds[1].SortedOK {
		t.Fatal("open circuit did not flip SortedOK off in CurrentScenario")
	}
	if !cur.Preds[1].RandomOK || !cur.Preds[0].SortedOK {
		t.Fatal("degradation leaked onto healthy capabilities")
	}
	if _, _, err := sess.SortedNext(1); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("access on open circuit: %v, want ErrCircuitOpen", err)
	}
	deg := sess.Degraded()
	if len(deg) != 1 || deg[0] != "circuit_open:sa:p2" {
		t.Fatalf("degraded reasons = %v", deg)
	}

	// Source heals; after the cooldown the half-open probe restores the
	// capability.
	b.failing = false
	clk.Advance(time.Second)
	if !sess.CurrentScenario().Preds[1].SortedOK {
		t.Fatal("half-open circuit must re-enable the capability for its probe")
	}
	if _, _, err := sess.SortedNext(1); err != nil {
		t.Fatalf("probe access failed: %v", err)
	}
	if set.State(SortedAccess, 1) != BreakerClosed {
		t.Fatal("successful probe did not close the circuit")
	}
	if got := sess.Ledger().SortedCounts[1]; got != 1 {
		t.Fatalf("p2 sorted count = %d, want exactly 1 (no double charge)", got)
	}
}

// TestAccessTimeoutConvertsHang checks a hanging source fails the access
// within the per-access deadline while the session stays usable.
func TestAccessTimeoutConvertsHang(t *testing.T) {
	b := &flakyBackend{DatasetBackend: DatasetBackend{DS: testDataset(t)}, failPred: 0, failing: true, hang: true}
	set := NewBreakerSet(2, BreakerConfig{})
	sess, err := NewSession(b, Uniform(2, 1, 1),
		WithResilience(&Resilience{Breakers: set, AccessTimeout: 10 * time.Millisecond}))
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, _, aerr := sess.SortedNext(0)
	if !errors.Is(aerr, ErrAccessFailed) {
		t.Fatalf("hang: err = %v, want ErrAccessFailed", aerr)
	}
	if time.Since(start) > time.Second {
		t.Fatal("per-access deadline did not bound the hang")
	}
	// The session context is alive; other predicates still work.
	if sess.Err() != nil {
		t.Fatalf("session context died: %v", sess.Err())
	}
	if _, _, err := sess.SortedNext(1); err != nil {
		t.Fatalf("healthy predicate failed after a hang: %v", err)
	}
}

// TestQueryCancellationStaysTerminal checks the session's own context
// failing is not absorbed as a source failure (and records no breaker
// verdict).
func TestQueryCancellationStaysTerminal(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	set := NewBreakerSet(2, BreakerConfig{})
	sess, err := NewSession(DatasetBackend{DS: testDataset(t)}, Uniform(2, 1, 1),
		WithContext(ctx), WithResilience(&Resilience{Breakers: set}))
	if err != nil {
		t.Fatal(err)
	}
	_, _, aerr := sess.SortedNext(0)
	if aerr == nil || errors.Is(aerr, ErrAccessFailed) {
		t.Fatalf("cancelled access: %v, want terminal (non-absorbed) error", aerr)
	}
	if set.State(SortedAccess, 0) != BreakerClosed {
		t.Fatal("cancellation must not count against the source's breaker")
	}
}

func TestResilienceValidate(t *testing.T) {
	ds := testDataset(t)
	if _, err := NewSession(DatasetBackend{DS: ds}, Uniform(2, 1, 1),
		WithResilience(&Resilience{Breakers: NewBreakerSet(1, BreakerConfig{})})); err == nil {
		t.Fatal("undersized breaker set accepted")
	}
	if _, err := NewSession(DatasetBackend{DS: ds}, Uniform(2, 1, 1),
		WithResilience(&Resilience{Breakers: NewBreakerSet(3, BreakerConfig{}), Map: []int{0, 5}})); err == nil {
		t.Fatal("out-of-range map entry accepted")
	}
	if _, err := NewSession(DatasetBackend{DS: ds}, Uniform(2, 1, 1),
		WithResilience(&Resilience{Breakers: NewBreakerSet(3, BreakerConfig{}), Map: []int{2, 0}})); err != nil {
		t.Fatalf("valid map rejected: %v", err)
	}
}
