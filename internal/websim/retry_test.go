package websim

import (
	"context"
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/access"
	"repro/internal/algo"
	"repro/internal/data"
	"repro/internal/data/datatest"
	"repro/internal/obs"
	"repro/internal/score"
)

func TestClientRetriesTransientFailures(t *testing.T) {
	ds := datatest.MustGenerate(data.Uniform, 30, 2, 9)
	// Every 3rd request fails with 503; retries must absorb it.
	ts := startSource(t, ds, WithFailEvery(3))
	c, err := NewClient(context.Background(), ts.Client(), []Route{{ts.URL, 0}, {ts.URL, 1}},
		WithRetries(3, time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 30; r++ {
		if _, _, err := c.Sorted(context.Background(), 0, r); err != nil {
			t.Fatalf("rank %d failed despite retries: %v", r, err)
		}
	}
}

func TestClientGivesUpWithoutRetries(t *testing.T) {
	ds := datatest.MustGenerate(data.Uniform, 10, 1, 9)
	ts := startSource(t, ds, WithFailEvery(1)) // always failing
	// NewClient itself retries the /meta probe; with zero retries it must
	// surface the failure.
	if _, err := NewClient(context.Background(), ts.Client(), []Route{{ts.URL, 0}}, WithRetries(0, time.Millisecond)); err == nil {
		t.Fatal("always-failing source should not dial")
	}
}

func TestClientDoesNotRetryClientErrors(t *testing.T) {
	ds := datatest.MustGenerate(data.Uniform, 10, 1, 9)
	ts := startSource(t, ds)
	c, err := NewClient(context.Background(), ts.Client(), []Route{{ts.URL, 0}}, WithRetries(5, time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, _, err = c.Sorted(context.Background(), 0, 99) // 404: permanent
	if err == nil || !strings.Contains(err.Error(), "beyond list end") {
		t.Fatalf("err = %v", err)
	}
	// 5 retries with backoff would take >= 310ms; a permanent error must
	// return immediately.
	if time.Since(start) > 100*time.Millisecond {
		t.Error("client retried a permanent (4xx) error")
	}
}

// TestClientObserverSeesRetries checks the client's observer wiring: every
// backoff sleep emits a SourceRetry and every abandoned request a
// SourceFailure.
func TestClientObserverSeesRetries(t *testing.T) {
	ds := datatest.MustGenerate(data.Uniform, 30, 2, 9)
	tr := obs.NewQueryTrace()
	ts := startSource(t, ds, WithFailEvery(3))
	c, err := NewClient(context.Background(), ts.Client(), []Route{{ts.URL, 0}, {ts.URL, 1}},
		WithRetries(3, time.Millisecond), WithObserver(tr))
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 12; r++ {
		if _, _, err := c.Sorted(context.Background(), 0, r); err != nil {
			t.Fatal(err)
		}
	}
	s := tr.Snapshot()
	if s.SourceRetries == 0 {
		t.Error("a fail-every-3 source must have triggered retries")
	}
	if s.BackoffSeconds <= 0 {
		t.Error("retries must accumulate backoff time")
	}
	if s.SourceFailures != 0 {
		t.Errorf("no request was abandoned, yet %d failures observed", s.SourceFailures)
	}

	// Exhausted retries surface as a terminal failure.
	always := startSource(t, ds, WithFailEvery(1))
	tr2 := obs.NewQueryTrace()
	if _, err := NewClient(context.Background(), always.Client(), []Route{{always.URL, 0}},
		WithRetries(1, time.Millisecond), WithObserver(tr2)); err == nil {
		t.Fatal("always-failing source should not dial")
	}
	if s2 := tr2.Snapshot(); s2.SourceFailures == 0 || s2.SourceRetries == 0 {
		t.Errorf("terminal failure not observed: %+v", s2)
	}
}

// TestQueryOverFlakySources runs a whole query against sources that drop
// every 5th request: the middleware must still produce the oracle answer,
// paying only latency for the retries.
func TestQueryOverFlakySources(t *testing.T) {
	q, _, err := data.Restaurants(60, 6)
	if err != nil {
		t.Fatal(err)
	}
	ds := q.Dataset
	ts := startSource(t, ds, WithFailEvery(5))
	client, err := NewClient(context.Background(), ts.Client(), []Route{{ts.URL, 0}, {ts.URL, 1}},
		WithRetries(4, time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	sess, err := access.NewSession(client, access.Uniform(2, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	prob, err := algo.NewProblem(score.Min(), 4, sess)
	if err != nil {
		t.Fatal(err)
	}
	alg, _ := algo.NewNC([]float64{0.5, 0.5}, nil)
	res, err := alg.Run(prob)
	if err != nil {
		t.Fatal(err)
	}
	oracle := ds.TopK(score.Min().Eval, 4)
	for i := range oracle {
		got := score.Min().Eval(ds.Scores(res.Items[i].Obj))
		if math.Abs(got-oracle[i].Score) > 1e-9 {
			t.Fatalf("rank %d wrong under flaky sources", i)
		}
	}
}
