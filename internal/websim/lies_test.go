package websim

// Tests for the contract-violating chaos options: score drift (honest but
// statistically wrong), unsorted lies, and duplicate replays. The latter
// two are verified both raw (the client faithfully reports what the
// source said) and through the contract guard (the lie is caught and
// named).

import (
	"context"
	"math"
	"testing"

	"repro/internal/adapt"
	"repro/internal/data"
	"repro/internal/data/datatest"
)

func TestScoreDriftWarpsButHonorsContract(t *testing.T) {
	ds := datatest.MustGenerate(data.Uniform, 20, 2, 4)
	ts := startSource(t, ds, WithScoreDrift(3))
	c, err := NewClient(context.Background(), ts.Client(), []Route{{ts.URL, 0}, {ts.URL, 1}})
	if err != nil {
		t.Fatal(err)
	}
	prev := math.Inf(1)
	for rank := 0; rank < 10; rank++ {
		obj, sc, err := c.Sorted(context.Background(), 0, rank)
		if err != nil {
			t.Fatalf("sorted(0,%d): %v", rank, err)
		}
		truth := math.Pow(ds.Scores(obj)[0], 3)
		if math.Abs(sc-truth) > 1e-9 {
			t.Fatalf("rank %d: served %g, want %g^3 = %g", rank, sc, ds.Scores(obj)[0], truth)
		}
		if sc > prev+1e-9 {
			t.Fatalf("drifted stream broke descending order at rank %d: %g after %g", rank, sc, prev)
		}
		prev = sc
		// The probe must agree with the sorted sighting: drift is applied
		// consistently, so the source still honors the access contract.
		psc, err := c.Random(context.Background(), 0, obj)
		if err != nil {
			t.Fatalf("random(0,%d): %v", obj, err)
		}
		if math.Abs(psc-sc) > 1e-9 {
			t.Fatalf("probe of object %d disagrees with sorted sighting: %g vs %g", obj, psc, sc)
		}
	}
}

func TestUnsortedRateLiesAndGuardCatches(t *testing.T) {
	ds := datatest.MustGenerate(data.Uniform, 20, 1, 4)
	ts := startSource(t, ds, WithUnsortedRate(1, 9))
	c, err := NewClient(context.Background(), ts.Client(), []Route{{ts.URL, 0}})
	if err != nil {
		t.Fatal(err)
	}
	// Raw client: rank 1 must be served inflated above rank 0.
	_, s0, err := c.Sorted(context.Background(), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	_, s1, err := c.Sorted(context.Background(), 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if s1 <= s0 {
		t.Fatalf("rate-1 unsorted lie not served: rank1 %g <= rank0 %g", s1, s0)
	}
	// Guarded client: the same sequence is a named contract violation.
	g := adapt.NewGuard(c)
	if _, _, err := g.Sorted(context.Background(), 0, 0); err != nil {
		t.Fatal(err)
	}
	if _, _, err := g.Sorted(context.Background(), 0, 1); err == nil {
		t.Fatal("guard passed an out-of-order response")
	}
	if v := g.Violations(); v["unsorted"] == 0 {
		t.Fatalf("guard violations = %v, want unsorted", v)
	}
}

func TestDupRateRepaysAndGuardCatches(t *testing.T) {
	ds := datatest.MustGenerate(data.Uniform, 20, 1, 4)
	ts := startSource(t, ds, WithDupRate(1, 9))
	c, err := NewClient(context.Background(), ts.Client(), []Route{{ts.URL, 0}})
	if err != nil {
		t.Fatal(err)
	}
	o0, _, err := c.Sorted(context.Background(), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	o1, _, err := c.Sorted(context.Background(), 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if o1 != o0 {
		t.Fatalf("rate-1 dup lie not served: rank1 object %d, want replay of %d", o1, o0)
	}
	g := adapt.NewGuard(c)
	if _, _, err := g.Sorted(context.Background(), 0, 0); err != nil {
		t.Fatal(err)
	}
	if _, _, err := g.Sorted(context.Background(), 0, 1); err == nil {
		t.Fatal("guard passed a duplicate-id response")
	}
	if v := g.Violations(); v["dup"] == 0 {
		t.Fatalf("guard violations = %v, want dup", v)
	}
}
