// Package websim simulates Web sources over real HTTP: servers expose
// sorted and random access endpoints for the predicates they score (as
// superpages.com, dineme.com, and hotels.com do in the paper's travel
// scenario), and a client-side Backend lets the middleware run any
// algorithm in this repository against them unchanged. Network and server
// time can be simulated with a configurable per-request latency.
//
// Protocol (JSON over GET):
//
//	/meta                  -> {"n": 120, "m": 2}
//	/sorted?pred=0&rank=3  -> {"obj": 17, "score": 0.83}
//	/random?pred=0&obj=17  -> {"score": 0.83}
//
// plus one POST endpoint coalescing random accesses (JSON body):
//
//	POST /batch  {"probes":[{"pred":0,"obj":17},...]} -> {"scores":[0.83,...]}
//
// A batch is one HTTP request: it pays one round trip and passes the
// fault-injection gate once, succeeding or failing as a unit.
//
// A paged variant of the sorted endpoint serves one prefetch window per
// round trip (the distributed coordinator's shard-cursor refill):
//
//	/sortedpage?pred=0&rank=3&count=4 -> {"entries":[{"obj":17,"score":0.83},...]}
//
// Predicates in URLs are zero-based and local to the server; a middleware
// Route maps each query predicate to (server, local predicate).
//
// A server may also be one *shard* of a larger object universe
// (WithShardObjects): the dataset then holds only the shard's local
// slice, /meta reports the global object count plus the slice size as
// local_n, sorted responses carry global object ids, and random/batch
// probes address objects by global id.
package websim

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/data"
)

// Server is an http.Handler serving one Web source: a dataset restricted
// to the predicates the source can score.
type Server struct {
	ds         *data.Dataset
	preds      []int // local predicate -> dataset predicate
	global     []int // local object -> global id (nil = identity universe)
	globalN    int   // universe size when global is set
	toLocal    []int32
	latency    time.Duration
	failery    int           // fail every n-th request with 503 (0 = never)
	failRate   float64       // fail this fraction of requests with 503 (0 = never)
	outFrom    int           // outage window in request ordinals, half-open
	outTo      int           // [outFrom, outTo); outTo <= outFrom disables
	retryAfter time.Duration // Retry-After hint attached to 503s (0 = none)
	drift      float64       // score drift exponent (0 = honest)
	unsorted   float64       // fraction of sorted responses served out of order
	dupRate    float64       // fraction of sorted responses replaying the previous rank
	mu         sync.Mutex
	requests   uint64     // request counter for deterministic failure injection
	rng        *rand.Rand // nil unless WithFailRate; guarded by mu
	lieRng     *rand.Rand // nil unless WithUnsortedRate/WithDupRate; guarded by mu
	mux        *http.ServeMux
}

// ServerOption configures a Server.
type ServerOption func(*Server)

// WithLatency makes every request sleep for d before answering,
// simulating network plus server time.
func WithLatency(d time.Duration) ServerOption {
	return func(s *Server) { s.latency = d }
}

// WithPredicates restricts the source to the given dataset predicates (in
// the order the source exposes them). Default: all predicates.
func WithPredicates(preds ...int) ServerOption {
	return func(s *Server) { s.preds = append([]int(nil), preds...) }
}

// WithFailEvery makes every n-th request fail with 503 Service
// Unavailable (deterministically), simulating the intermittent
// availability of real Web sources. n <= 0 disables failures.
func WithFailEvery(n int) ServerOption {
	return func(s *Server) { s.failery = n }
}

// WithFailRate makes each request fail with 503 with the given
// probability, drawn from a private generator seeded for replayability:
// equal seeds and request sequences produce equal failure sequences.
func WithFailRate(rate float64, seed int64) ServerOption {
	return func(s *Server) {
		s.failRate = rate
		s.rng = rand.New(rand.NewSource(seed))
	}
}

// WithOutageWindow fails every request whose ordinal n (0-based arrival
// order) satisfies from <= n < to with 503, simulating a hard outage that
// starts and ends at deterministic points. to <= from disables the window.
func WithOutageWindow(from, to int) ServerOption {
	return func(s *Server) { s.outFrom, s.outTo = from, to }
}

// WithRetryAfter attaches a Retry-After header (in whole seconds, rounded
// up) to every 503 the server emits, telling well-behaved clients when to
// come back.
func WithRetryAfter(d time.Duration) ServerOption {
	return func(s *Server) { s.retryAfter = d }
}

// WithScoreDrift warps every served score through s -> s^gamma (gamma > 0,
// 1 = honest). The transform is monotone and applied consistently across
// the sorted, random, and batch endpoints, so the source still honors the
// access contract — its score *distribution* just no longer matches any
// sample taken before the drift. This is the "wrong statistics" chaos mode
// the adaptive layer exists for: gamma > 1 collapses scores early (steep
// descent), gamma < 1 flattens the head.
func WithScoreDrift(gamma float64) ServerOption {
	return func(s *Server) { s.drift = gamma }
}

// WithUnsortedRate makes the sorted endpoint lie: each response (beyond
// rank 0) is, with the given probability, served with its score inflated
// above the previous rank's — a descending-order violation the contract
// guard must catch. The true object id is kept, so a later random access
// to it also contradicts the lie ("inconsistent"). Draws come from a
// private seeded generator for replayability.
func WithUnsortedRate(rate float64, seed int64) ServerOption {
	return func(s *Server) {
		s.unsorted = rate
		s.ensureLieRng(seed)
	}
}

// WithDupRate makes the sorted endpoint replay: each response (beyond rank
// 0) is, with the given probability, the previous rank's entry again — the
// same object at two ranks, a duplicate-id violation. Seeded like
// WithUnsortedRate; when both are set they share one generator.
func WithDupRate(rate float64, seed int64) ServerOption {
	return func(s *Server) {
		s.dupRate = rate
		s.ensureLieRng(seed)
	}
}

// WithShardObjects declares the server one shard of a larger object
// universe: the dataset holds the shard's slice in local ids, global[u]
// is local object u's global id, and globalN is the universe size. The
// sorted endpoints then serve global ids, and the random and batch
// endpoints resolve probes addressed by global id (unknown ids 404).
func WithShardObjects(global []int, globalN int) ServerOption {
	return func(s *Server) {
		s.global = append([]int(nil), global...)
		s.globalN = globalN
	}
}

func (s *Server) ensureLieRng(seed int64) {
	if s.lieRng == nil {
		s.lieRng = rand.New(rand.NewSource(seed))
	}
}

// NewServer builds a source server over the dataset.
func NewServer(ds *data.Dataset, opts ...ServerOption) (*Server, error) {
	s := &Server{ds: ds}
	for _, o := range opts {
		o(s)
	}
	if s.preds == nil {
		s.preds = make([]int, ds.M())
		for i := range s.preds {
			s.preds[i] = i
		}
	}
	for _, p := range s.preds {
		if p < 0 || p >= ds.M() {
			return nil, fmt.Errorf("websim: predicate %d out of dataset range [0,%d)", p, ds.M())
		}
	}
	if s.global != nil {
		if len(s.global) != ds.N() {
			return nil, fmt.Errorf("websim: shard mapping covers %d objects, dataset has %d", len(s.global), ds.N())
		}
		s.toLocal = make([]int32, s.globalN)
		for i := range s.toLocal {
			s.toLocal[i] = -1
		}
		for local, g := range s.global {
			if g < 0 || g >= s.globalN {
				return nil, fmt.Errorf("websim: shard object %d has global id %d outside universe [0,%d)", local, g, s.globalN)
			}
			if s.toLocal[g] != -1 {
				return nil, fmt.Errorf("websim: global id %d mapped twice", g)
			}
			s.toLocal[g] = int32(local)
		}
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/meta", s.handleMeta)
	s.mux.HandleFunc("/sorted", s.handleSorted)
	s.mux.HandleFunc("/sortedpage", s.handleSortedPage)
	s.mux.HandleFunc("/random", s.handleRandom)
	s.mux.HandleFunc("/batch", s.handleBatch)
	return s, nil
}

// universeN is the object count the server advertises: the global
// universe for a shard, the dataset size otherwise.
func (s *Server) universeN() int {
	if s.global != nil {
		return s.globalN
	}
	return s.ds.N()
}

// globalID maps a local object id to the id served on the wire.
func (s *Server) globalID(local int) int {
	if s.global == nil {
		return local
	}
	return s.global[local]
}

// localID resolves a wire object id to a local one, or -1 when the
// server does not hold it.
func (s *Server) localID(global int) int {
	if s.global == nil {
		if global < 0 || global >= s.ds.N() {
			return -1
		}
		return global
	}
	if global < 0 || global >= s.globalN {
		return -1
	}
	return int(s.toLocal[global])
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if s.latency > 0 {
		time.Sleep(s.latency)
	}
	if s.failRequest() {
		if s.retryAfter > 0 {
			secs := int64((s.retryAfter + time.Second - 1) / time.Second)
			w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
		}
		writeJSON(w, http.StatusServiceUnavailable, errorPayload{Error: "source temporarily overloaded"})
		return
	}
	s.mux.ServeHTTP(w, r)
}

// failRequest advances the request counter and decides whether this
// request is a simulated failure under any configured fault mode.
func (s *Server) failRequest() bool {
	if s.failery <= 0 && s.failRate <= 0 && s.outTo <= s.outFrom {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	ordinal := s.requests // 0-based arrival order
	s.requests++
	if s.failery > 0 && s.requests%uint64(s.failery) == 0 {
		return true
	}
	if s.outFrom < s.outTo && int(ordinal) >= s.outFrom && int(ordinal) < s.outTo {
		return true
	}
	return s.failRate > 0 && s.rng.Float64() < s.failRate
}

type metaPayload struct {
	N int `json:"n"`
	M int `json:"m"`
	// LocalN is the shard's slice size, present only when the server is a
	// shard of a larger universe (n then reports the universe size).
	LocalN int `json:"local_n,omitempty"`
}

type sortedPayload struct {
	Obj   int     `json:"obj"`
	Score float64 `json:"score"`
}

type randomPayload struct {
	Score float64 `json:"score"`
}

type errorPayload struct {
	Error string `json:"error"`
}

type batchProbe struct {
	Pred int `json:"pred"`
	Obj  int `json:"obj"`
}

type batchRequest struct {
	Probes []batchProbe `json:"probes"`
}

type batchPayload struct {
	Scores []float64 `json:"scores"`
}

type sortedPagePayload struct {
	Entries []sortedPayload `json:"entries"`
}

// maxBatchProbes bounds one batch request, keeping a single round trip
// from turning into an unbounded table scan.
const maxBatchProbes = 4096

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	// Encoding small fixed structs cannot fail in practice; an encoder
	// error here would mean the connection died, which the client will
	// surface on its side anyway.
	_ = json.NewEncoder(w).Encode(v)
}

func (s *Server) intParam(r *http.Request, name string) (int, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return 0, fmt.Errorf("missing parameter %q", name)
	}
	v, err := strconv.Atoi(raw)
	if err != nil {
		return 0, fmt.Errorf("parameter %q: %v", name, err)
	}
	return v, nil
}

func (s *Server) resolvePred(r *http.Request) (int, error) {
	local, err := s.intParam(r, "pred")
	if err != nil {
		return 0, err
	}
	if local < 0 || local >= len(s.preds) {
		return 0, fmt.Errorf("predicate %d out of range [0,%d)", local, len(s.preds))
	}
	return s.preds[local], nil
}

func (s *Server) handleMeta(w http.ResponseWriter, r *http.Request) {
	p := metaPayload{N: s.universeN(), M: len(s.preds)}
	if s.global != nil {
		p.LocalN = s.ds.N()
	}
	writeJSON(w, http.StatusOK, p)
}

func (s *Server) handleSorted(w http.ResponseWriter, r *http.Request) {
	pred, err := s.resolvePred(r)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorPayload{Error: err.Error()})
		return
	}
	rank, err := s.intParam(r, "rank")
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorPayload{Error: err.Error()})
		return
	}
	if rank < 0 || rank >= s.ds.N() {
		writeJSON(w, http.StatusNotFound, errorPayload{Error: fmt.Sprintf("rank %d beyond list end", rank)})
		return
	}
	obj, sc := s.ds.SortedAt(pred, rank)
	obj, sc = s.lieSorted(pred, rank, obj, sc)
	writeJSON(w, http.StatusOK, sortedPayload{Obj: s.globalID(obj), Score: s.warp(sc)})
}

// handleSortedPage serves count consecutive entries of the sorted list in
// one round trip: the whole page passes the fault-injection gate (and
// pays the simulated latency) once, like a batched probe.
func (s *Server) handleSortedPage(w http.ResponseWriter, r *http.Request) {
	pred, err := s.resolvePred(r)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorPayload{Error: err.Error()})
		return
	}
	rank, err := s.intParam(r, "rank")
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorPayload{Error: err.Error()})
		return
	}
	count, err := s.intParam(r, "count")
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorPayload{Error: err.Error()})
		return
	}
	if count <= 0 || count > maxBatchProbes {
		writeJSON(w, http.StatusBadRequest, errorPayload{Error: fmt.Sprintf("page of %d entries outside limit [1,%d]", count, maxBatchProbes)})
		return
	}
	if rank < 0 || rank+count > s.ds.N() {
		writeJSON(w, http.StatusNotFound, errorPayload{Error: fmt.Sprintf("page [%d,%d) beyond list end", rank, rank+count)})
		return
	}
	entries := make([]sortedPayload, count)
	for i := range entries {
		obj, sc := s.ds.SortedAt(pred, rank+i)
		obj, sc = s.lieSorted(pred, rank+i, obj, sc)
		entries[i] = sortedPayload{Obj: s.globalID(obj), Score: s.warp(sc)}
	}
	writeJSON(w, http.StatusOK, sortedPagePayload{Entries: entries})
}

// warp applies the configured score drift (identity when unset).
func (s *Server) warp(sc float64) float64 {
	if s.drift <= 0 || s.drift == 1 {
		return sc
	}
	return math.Pow(sc, s.drift)
}

// lieSorted applies the configured contract-violating chaos modes to one
// sorted response: an inflated out-of-order score (WithUnsortedRate) or a
// replay of the previous rank's entry (WithDupRate). Rank 0 has no
// previous entry and is always served honestly.
func (s *Server) lieSorted(pred, rank, obj int, sc float64) (int, float64) {
	if (s.unsorted <= 0 && s.dupRate <= 0) || rank == 0 {
		return obj, sc
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.unsorted > 0 && s.lieRng.Float64() < s.unsorted {
		_, prev := s.ds.SortedAt(pred, rank-1)
		return obj, math.Min(1, prev*1.05+0.01) // jumps above the previous rank
	}
	if s.dupRate > 0 && s.lieRng.Float64() < s.dupRate {
		prevObj, prevSc := s.ds.SortedAt(pred, rank-1)
		return prevObj, prevSc // the previous entry again: duplicate id
	}
	return obj, sc
}

func (s *Server) handleRandom(w http.ResponseWriter, r *http.Request) {
	pred, err := s.resolvePred(r)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorPayload{Error: err.Error()})
		return
	}
	obj, err := s.intParam(r, "obj")
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorPayload{Error: err.Error()})
		return
	}
	local := s.localID(obj)
	if local < 0 {
		writeJSON(w, http.StatusNotFound, errorPayload{Error: fmt.Sprintf("object %d unknown", obj)})
		return
	}
	writeJSON(w, http.StatusOK, randomPayload{Score: s.warp(s.ds.Score(local, pred))})
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errorPayload{Error: "batch requires POST"})
		return
	}
	var req batchRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorPayload{Error: fmt.Sprintf("batch body: %v", err)})
		return
	}
	if len(req.Probes) == 0 {
		writeJSON(w, http.StatusBadRequest, errorPayload{Error: "batch requires at least one probe"})
		return
	}
	if len(req.Probes) > maxBatchProbes {
		writeJSON(w, http.StatusBadRequest, errorPayload{Error: fmt.Sprintf("batch of %d probes exceeds limit %d", len(req.Probes), maxBatchProbes)})
		return
	}
	scores := make([]float64, len(req.Probes))
	for i, p := range req.Probes {
		if p.Pred < 0 || p.Pred >= len(s.preds) {
			writeJSON(w, http.StatusBadRequest, errorPayload{Error: fmt.Sprintf("probe %d: predicate %d out of range [0,%d)", i, p.Pred, len(s.preds))})
			return
		}
		local := s.localID(p.Obj)
		if local < 0 {
			writeJSON(w, http.StatusNotFound, errorPayload{Error: fmt.Sprintf("probe %d: object %d unknown", i, p.Obj)})
			return
		}
		scores[i] = s.warp(s.ds.Score(local, s.preds[p.Pred]))
	}
	writeJSON(w, http.StatusOK, batchPayload{Scores: scores})
}
