package websim

import (
	"context"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/access"
	"repro/internal/algo"
	"repro/internal/data"
	"repro/internal/data/datatest"
	"repro/internal/score"
)

func startSource(t *testing.T, ds *data.Dataset, opts ...ServerOption) *httptest.Server {
	t.Helper()
	srv, err := NewServer(ds, opts...)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return ts
}

func TestServerEndpoints(t *testing.T) {
	ds := datatest.MustNew("d", [][]float64{
		{0.6, 0.8},
		{0.65, 0.8},
		{0.7, 0.9},
	})
	ts := startSource(t, ds)
	c, err := NewClient(context.Background(), ts.Client(), []Route{{ts.URL, 0}, {ts.URL, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if c.N() != 3 || c.M() != 2 {
		t.Fatalf("meta = %d, %d", c.N(), c.M())
	}
	obj, sc, err := c.Sorted(context.Background(), 0, 0)
	if err != nil || obj != 2 || sc != 0.7 {
		t.Fatalf("sorted(0,0) = %d, %g, %v", obj, sc, err)
	}
	sc, err = c.Random(context.Background(), 1, 2)
	if err != nil || sc != 0.9 {
		t.Fatalf("random(1,2) = %g, %v", sc, err)
	}
	// Error paths surface the server message.
	if _, _, err := c.Sorted(context.Background(), 0, 99); err == nil || !strings.Contains(err.Error(), "beyond list end") {
		t.Errorf("deep rank error = %v", err)
	}
	if _, err := c.Random(context.Background(), 0, 99); err == nil {
		t.Error("unknown object should fail")
	}
	if _, _, err := c.Sorted(context.Background(), 5, 0); err == nil {
		t.Error("unrouted predicate should fail")
	}
}

func TestServerValidation(t *testing.T) {
	ds := datatest.MustGenerate(data.Uniform, 5, 2, 1)
	if _, err := NewServer(ds, WithPredicates(0, 7)); err == nil {
		t.Error("out-of-range predicate should fail")
	}
}

func TestClientValidation(t *testing.T) {
	a := startSource(t, datatest.MustGenerate(data.Uniform, 5, 2, 1))
	b := startSource(t, datatest.MustGenerate(data.Uniform, 9, 2, 2))
	if _, err := NewClient(context.Background(), nil, nil); err == nil {
		t.Error("empty routes should fail")
	}
	if _, err := NewClient(context.Background(), a.Client(), []Route{{a.URL, 0}, {b.URL, 0}}); err == nil {
		t.Error("mismatched object universes should fail")
	}
	if _, err := NewClient(context.Background(), a.Client(), []Route{{a.URL, 9}}); err == nil {
		t.Error("predicate beyond source arity should fail")
	}
	if _, err := NewClient(context.Background(), a.Client(), []Route{{"http://127.0.0.1:1", 0}}); err == nil {
		t.Error("unreachable source should fail")
	}
}

// TestMultiSourceMiddleware runs the full stack of the paper's Example 1:
// two separate HTTP sources each scoring one predicate (the dineme.com /
// superpages.com split), a session enforcing costs and legality on top of
// the HTTP backend, and Framework NC answering the query — verified
// against the brute-force oracle.
func TestMultiSourceMiddleware(t *testing.T) {
	q, _, err := data.Restaurants(80, 4)
	if err != nil {
		t.Fatal(err)
	}
	ds := q.Dataset
	// Source 1 (dineme analogue) scores rating only; source 2 (superpages
	// analogue) scores closeness only.
	dineme := startSource(t, ds, WithPredicates(0))
	superpages := startSource(t, ds, WithPredicates(1))
	client, err := NewClient(context.Background(), dineme.Client(), []Route{{dineme.URL, 0}, {superpages.URL, 0}})
	if err != nil {
		t.Fatal(err)
	}
	scn := access.Scenario{Name: "example1", Preds: []access.PredCost{
		{Sorted: access.CostOf(0.2), SortedOK: true, Random: access.CostOf(1.0), RandomOK: true},
		{Sorted: access.CostOf(0.1), SortedOK: true, Random: access.CostOf(0.5), RandomOK: true},
	}}
	sess, err := access.NewSession(client, scn)
	if err != nil {
		t.Fatal(err)
	}
	prob, err := algo.NewProblem(score.Min(), 5, sess)
	if err != nil {
		t.Fatal(err)
	}
	alg, err := algo.NewNC([]float64{0.5, 0.5}, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := alg.Run(prob)
	if err != nil {
		t.Fatal(err)
	}
	oracle := ds.TopK(score.Min().Eval, 5)
	for i, want := range oracle {
		got := score.Min().Eval(ds.Scores(res.Items[i].Obj))
		if math.Abs(got-want.Score) > 1e-9 {
			t.Fatalf("rank %d: got %g want %g", i, got, want.Score)
		}
	}
	// Accesses actually crossed the network and cost real money.
	if res.Cost() <= 0 {
		t.Error("HTTP run accrued no cost")
	}
}

func TestLatencyOption(t *testing.T) {
	ds := datatest.MustGenerate(data.Uniform, 5, 1, 1)
	ts := startSource(t, ds, WithLatency(30*time.Millisecond))
	c, err := NewClient(context.Background(), ts.Client(), []Route{{ts.URL, 0}})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, _, err := c.Sorted(context.Background(), 0, 0); err != nil {
		t.Fatal(err)
	}
	if el := time.Since(start); el < 25*time.Millisecond {
		t.Errorf("latency option not applied: %v", el)
	}
}

func TestServerRejectsBadParams(t *testing.T) {
	ds := datatest.MustGenerate(data.Uniform, 5, 2, 1)
	ts := startSource(t, ds)
	for _, path := range []string{
		"/sorted",               // missing params
		"/sorted?pred=a&rank=0", // non-numeric
		"/sorted?pred=0",        // missing rank
		"/random?pred=0",        // missing obj
		"/random?pred=9&obj=0",  // pred out of range
	} {
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			t.Errorf("%s should have been rejected", path)
		}
	}
}

// TestServerConcurrentClients hammers one source from many goroutines to
// certify the handler (including failure injection's shared counter) is
// race-free under -race.
func TestServerConcurrentClients(t *testing.T) {
	ds := datatest.MustGenerate(data.Uniform, 50, 2, 31)
	ts := startSource(t, ds, WithFailEvery(7))
	c, err := NewClient(context.Background(), ts.Client(), []Route{{ts.URL, 0}, {ts.URL, 1}},
		WithRetries(5, time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				if _, _, err := c.Sorted(context.Background(), g%2, (g*8+i)%50); err != nil {
					errs <- err
				}
				if _, err := c.Random(context.Background(), g%2, (g+i)%50); err != nil {
					errs <- err
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Errorf("concurrent access failed: %v", err)
	}
}

func TestBatchRandom(t *testing.T) {
	ds := datatest.MustNew("d", [][]float64{
		{0.6, 0.8},
		{0.65, 0.8},
		{0.7, 0.9},
	})
	// Two sources, one predicate each, so the batch splits per server.
	tsA := startSource(t, ds, WithPredicates(0))
	tsB := startSource(t, ds, WithPredicates(1))
	c, err := NewClient(context.Background(), tsA.Client(), []Route{{tsA.URL, 0}, {tsB.URL, 0}})
	if err != nil {
		t.Fatal(err)
	}
	preds := []int{0, 1, 0, 1}
	objs := []int{0, 0, 2, 2}
	scores, err := c.BatchRandom(context.Background(), preds, objs)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0.6, 0.8, 0.7, 0.9}
	for i := range want {
		if scores[i] != want[i] {
			t.Errorf("scores[%d] = %g, want %g", i, scores[i], want[i])
		}
	}
	// Length mismatch and out-of-range predicates are rejected client-side.
	if _, err := c.BatchRandom(context.Background(), []int{0}, []int{0, 1}); err == nil {
		t.Error("mismatched lengths should fail")
	}
	if _, err := c.BatchRandom(context.Background(), []int{7}, []int{0}); err == nil {
		t.Error("out-of-range predicate should fail")
	}
	// Unknown objects surface the server's error.
	if _, err := c.BatchRandom(context.Background(), []int{0}, []int{99}); err == nil || !strings.Contains(err.Error(), "unknown") {
		t.Errorf("unknown object error = %v", err)
	}
}

func TestBatchEndpointValidation(t *testing.T) {
	ds := datatest.MustNew("d", [][]float64{{0.5}, {0.6}})
	ts := startSource(t, ds)
	post := func(body string) int {
		t.Helper()
		resp, err := ts.Client().Post(ts.URL+"/batch", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := post(`{"probes":[]}`); code != http.StatusBadRequest {
		t.Errorf("empty batch status = %d", code)
	}
	if code := post(`not json`); code != http.StatusBadRequest {
		t.Errorf("malformed body status = %d", code)
	}
	if code := post(`{"probes":[{"pred":9,"obj":0}]}`); code != http.StatusBadRequest {
		t.Errorf("bad predicate status = %d", code)
	}
	resp, err := ts.Client().Get(ts.URL + "/batch")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /batch status = %d", resp.StatusCode)
	}
}
