package websim

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"time"

	"repro/internal/obs"
)

// Route maps one middleware query predicate to a source: the server's base
// URL and the predicate's local index at that server.
type Route struct {
	BaseURL string
	Pred    int
}

// Client is an access.Backend that gathers scores from HTTP sources. It
// performs one HTTP request per access, matching the paper's cost model
// where each source access incurs network communication and server time.
// Transient failures (HTTP 5xx and transport errors) are retried with
// exponential backoff up to the configured limit, since real Web sources
// drop requests under load.
type Client struct {
	routes  []Route
	n       int
	httpc   *http.Client
	retries int
	backoff time.Duration
	obs     obs.Observer // nil unless WithObserver
}

// ClientOption configures a Client.
type ClientOption func(*Client)

// WithRetries sets how many times a failed request is retried (default 2)
// and the initial backoff between attempts (default 10ms, doubling).
func WithRetries(n int, backoff time.Duration) ClientOption {
	return func(c *Client) { c.retries, c.backoff = n, backoff }
}

// WithObserver streams the client's retry storms and terminal request
// failures into an observer (SourceRetry per backoff sleep,
// SourceFailure per request given up on). The observer must be safe for
// concurrent use — live executors issue requests from many goroutines.
func WithObserver(o obs.Observer) ClientOption {
	return func(c *Client) { c.obs = o }
}

// NewClient dials every routed source, validates that all sources serve
// the same object universe (identical n), and that each route's predicate
// exists at its source. The context bounds the validation dials; later
// accesses carry their own.
func NewClient(ctx context.Context, httpc *http.Client, routes []Route, opts ...ClientOption) (*Client, error) {
	if len(routes) == 0 {
		return nil, fmt.Errorf("websim: client requires at least one route")
	}
	if httpc == nil {
		httpc = http.DefaultClient
	}
	c := &Client{routes: append([]Route(nil), routes...), httpc: httpc, retries: 2, backoff: 10 * time.Millisecond}
	for _, o := range opts {
		o(c)
	}
	for i, rt := range routes {
		var meta metaPayload
		if err := c.get(ctx, rt.BaseURL+"/meta", &meta); err != nil {
			return nil, fmt.Errorf("websim: route %d meta: %w", i, err)
		}
		if i == 0 {
			c.n = meta.N
		} else if meta.N != c.n {
			return nil, fmt.Errorf("websim: route %d serves %d objects, route 0 serves %d", i, meta.N, c.n)
		}
		if rt.Pred < 0 || rt.Pred >= meta.M {
			return nil, fmt.Errorf("websim: route %d predicate %d out of source range [0,%d)", i, rt.Pred, meta.M)
		}
	}
	return c, nil
}

func (c *Client) get(ctx context.Context, rawURL string, into interface{}) error {
	backoff := c.backoff
	var lastErr error
	for attempt := 0; ; attempt++ {
		err, retryable := c.getOnce(ctx, rawURL, into)
		if err == nil {
			return nil
		}
		lastErr = err
		if !retryable || attempt >= c.retries {
			if c.obs != nil {
				c.obs.SourceFailure()
			}
			return lastErr
		}
		if c.obs != nil {
			c.obs.SourceRetry(backoff)
		}
		t := time.NewTimer(backoff)
		select {
		case <-ctx.Done():
			t.Stop()
			if c.obs != nil {
				c.obs.SourceFailure()
			}
			return fmt.Errorf("websim: %w (last attempt: %v)", ctx.Err(), lastErr)
		case <-t.C:
		}
		backoff *= 2
	}
}

// getOnce performs one request; the second result reports whether the
// failure is transient (transport error or 5xx) and worth retrying.
func (c *Client) getOnce(ctx context.Context, rawURL string, into interface{}) (err error, retryable bool) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, rawURL, nil)
	if err != nil {
		return err, false
	}
	resp, err := c.httpc.Do(req)
	if err != nil {
		return err, ctx.Err() == nil
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	if err != nil {
		return err, true
	}
	if resp.StatusCode != http.StatusOK {
		var ep errorPayload
		if json.Unmarshal(body, &ep) == nil && ep.Error != "" {
			err = fmt.Errorf("websim: source error (%d): %s", resp.StatusCode, ep.Error)
		} else {
			err = fmt.Errorf("websim: source returned status %d", resp.StatusCode)
		}
		return err, resp.StatusCode >= 500
	}
	return json.Unmarshal(body, into), false
}

// N returns the object count shared by all sources.
func (c *Client) N() int { return c.n }

// M returns the number of routed predicates.
func (c *Client) M() int { return len(c.routes) }

// Sorted fetches the rank-th entry of the predicate's descending list.
func (c *Client) Sorted(ctx context.Context, pred, rank int) (int, float64, error) {
	if pred < 0 || pred >= len(c.routes) {
		return 0, 0, fmt.Errorf("websim: predicate %d out of range", pred)
	}
	rt := c.routes[pred]
	u := fmt.Sprintf("%s/sorted?pred=%s&rank=%s", rt.BaseURL,
		url.QueryEscape(fmt.Sprint(rt.Pred)), url.QueryEscape(fmt.Sprint(rank)))
	var p sortedPayload
	if err := c.get(ctx, u, &p); err != nil {
		return 0, 0, err
	}
	if p.Obj < 0 || p.Obj >= c.n {
		return 0, 0, fmt.Errorf("websim: source returned out-of-universe object %d", p.Obj)
	}
	return p.Obj, p.Score, nil
}

// Random fetches the exact score of one object on one predicate.
func (c *Client) Random(ctx context.Context, pred, obj int) (float64, error) {
	if pred < 0 || pred >= len(c.routes) {
		return 0, fmt.Errorf("websim: predicate %d out of range", pred)
	}
	rt := c.routes[pred]
	u := fmt.Sprintf("%s/random?pred=%s&obj=%s", rt.BaseURL,
		url.QueryEscape(fmt.Sprint(rt.Pred)), url.QueryEscape(fmt.Sprint(obj)))
	var p randomPayload
	if err := c.get(ctx, u, &p); err != nil {
		return 0, err
	}
	return p.Score, nil
}
