package websim

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strconv"
	"sync"
	"time"

	"repro/internal/obs"
)

// Route maps one middleware query predicate to a source: the server's base
// URL and the predicate's local index at that server.
type Route struct {
	BaseURL string
	Pred    int
}

// Client is an access.Backend that gathers scores from HTTP sources. It
// performs one HTTP request per access, matching the paper's cost model
// where each source access incurs network communication and server time.
// Transient failures (HTTP 5xx and transport errors) are retried with
// exponential backoff up to the configured limit, since real Web sources
// drop requests under load.
type Client struct {
	routes         []Route
	n              int
	localN         int
	httpc          *http.Client
	retries        int
	backoff        time.Duration
	attemptTimeout time.Duration
	obs            obs.Observer // nil unless WithObserver

	jmu    sync.Mutex
	jitter *rand.Rand // nil unless WithJitterSeed
}

// ClientOption configures a Client.
type ClientOption func(*Client)

// WithRetries sets how many times a failed request is retried (default 2)
// and the initial backoff between attempts (default 10ms, doubling).
func WithRetries(n int, backoff time.Duration) ClientOption {
	return func(c *Client) { c.retries, c.backoff = n, backoff }
}

// WithAttemptTimeout bounds each individual request attempt (default 5s),
// so a source that hangs mid-request turns into a retryable failure
// instead of stalling the access until the query's own deadline. d <= 0
// disables the bound.
func WithAttemptTimeout(d time.Duration) ClientOption {
	return func(c *Client) { c.attemptTimeout = d }
}

// WithJitterSeed randomizes each retry's backoff sleep uniformly within
// [backoff/2, backoff] from a private seeded generator, de-synchronizing
// the retry storms of concurrent clients hammering a recovering source.
// Equal seeds reproduce equal jitter sequences.
func WithJitterSeed(seed int64) ClientOption {
	return func(c *Client) { c.jitter = rand.New(rand.NewSource(seed)) }
}

// WithObserver streams the client's retry storms and terminal request
// failures into an observer (SourceRetry per backoff sleep,
// SourceFailure per request given up on). The observer must be safe for
// concurrent use — live executors issue requests from many goroutines.
func WithObserver(o obs.Observer) ClientOption {
	return func(c *Client) { c.obs = o }
}

// NewClient dials every routed source, validates that all sources serve
// the same object universe (identical n), and that each route's predicate
// exists at its source. The context bounds the validation dials; later
// accesses carry their own.
func NewClient(ctx context.Context, httpc *http.Client, routes []Route, opts ...ClientOption) (*Client, error) {
	if len(routes) == 0 {
		return nil, fmt.Errorf("websim: client requires at least one route")
	}
	if httpc == nil {
		httpc = http.DefaultClient
	}
	c := &Client{routes: append([]Route(nil), routes...), httpc: httpc, retries: 2, backoff: 10 * time.Millisecond, attemptTimeout: 5 * time.Second}
	for _, o := range opts {
		o(c)
	}
	for i, rt := range routes {
		var meta metaPayload
		if err := c.get(ctx, rt.BaseURL+"/meta", &meta); err != nil {
			return nil, fmt.Errorf("websim: route %d meta: %w", i, err)
		}
		localN := meta.LocalN
		if localN == 0 {
			localN = meta.N
		}
		if i == 0 {
			c.n = meta.N
			c.localN = localN
		} else if meta.N != c.n {
			return nil, fmt.Errorf("websim: route %d serves %d objects, route 0 serves %d", i, meta.N, c.n)
		} else if localN != c.localN {
			return nil, fmt.Errorf("websim: route %d holds %d local objects, route 0 holds %d", i, localN, c.localN)
		}
		if rt.Pred < 0 || rt.Pred >= meta.M {
			return nil, fmt.Errorf("websim: route %d predicate %d out of source range [0,%d)", i, rt.Pred, meta.M)
		}
	}
	return c, nil
}

func (c *Client) get(ctx context.Context, rawURL string, into interface{}) error {
	return c.do(ctx, http.MethodGet, rawURL, nil, into)
}

// post sends the payload as JSON, with the same retry policy as get. The
// body is marshaled once and replayed on each attempt.
func (c *Client) post(ctx context.Context, rawURL string, payload, into interface{}) error {
	body, err := json.Marshal(payload)
	if err != nil {
		return fmt.Errorf("websim: encoding request: %w", err)
	}
	return c.do(ctx, http.MethodPost, rawURL, body, into)
}

func (c *Client) do(ctx context.Context, method, rawURL string, body []byte, into interface{}) error {
	backoff := c.backoff
	var lastErr error
	for attempt := 0; ; attempt++ {
		err, retryable, retryAfter := c.doOnce(ctx, method, rawURL, body, into)
		if err == nil {
			return nil
		}
		lastErr = err
		if !retryable || attempt >= c.retries {
			if c.obs != nil {
				c.obs.SourceFailure()
			}
			return lastErr
		}
		sleep := c.retrySleep(backoff, retryAfter)
		if c.obs != nil {
			c.obs.SourceRetry(sleep)
		}
		t := time.NewTimer(sleep)
		select {
		case <-ctx.Done():
			t.Stop()
			if c.obs != nil {
				c.obs.SourceFailure()
			}
			return fmt.Errorf("websim: %w (last attempt: %v)", ctx.Err(), lastErr)
		case <-t.C:
		}
		backoff *= 2
	}
}

// retrySleep computes the pause before the next attempt: the (optionally
// jittered) exponential backoff, but never less than the server's
// Retry-After hint — an overloaded source knows best when it will
// recover, and hammering it earlier only prolongs the outage.
func (c *Client) retrySleep(backoff, retryAfter time.Duration) time.Duration {
	d := backoff
	if c.jitter != nil && backoff > 1 {
		c.jmu.Lock()
		d = backoff/2 + time.Duration(c.jitter.Int63n(int64(backoff-backoff/2)+1))
		c.jmu.Unlock()
	}
	if retryAfter > d {
		d = retryAfter
	}
	return d
}

// doOnce performs one request, bounded by the per-attempt timeout; the
// second result reports whether the failure is transient (transport error,
// attempt timeout, or 5xx) and worth retrying, and retryAfter carries the
// server's Retry-After hint from a 503 (zero when absent).
func (c *Client) doOnce(ctx context.Context, method, rawURL string, body []byte, into interface{}) (err error, retryable bool, retryAfter time.Duration) {
	actx := ctx
	if c.attemptTimeout > 0 {
		var cancel context.CancelFunc
		actx, cancel = context.WithTimeout(ctx, c.attemptTimeout)
		defer cancel()
	}
	var reader io.Reader
	if body != nil {
		reader = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(actx, method, rawURL, reader)
	if err != nil {
		return err, false, 0
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.httpc.Do(req)
	if err != nil {
		// Retryable as long as the caller's own context is alive: a
		// per-attempt timeout converts a hung source into a retryable
		// failure rather than a dead query.
		return err, ctx.Err() == nil, 0
	}
	defer resp.Body.Close()
	respBody, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return err, ctx.Err() == nil, 0
	}
	if resp.StatusCode != http.StatusOK {
		var ep errorPayload
		if json.Unmarshal(respBody, &ep) == nil && ep.Error != "" {
			err = fmt.Errorf("websim: source error (%d): %s", resp.StatusCode, ep.Error)
		} else {
			err = fmt.Errorf("websim: source returned status %d", resp.StatusCode)
		}
		if resp.StatusCode == http.StatusServiceUnavailable {
			retryAfter = parseRetryAfter(resp.Header.Get("Retry-After"))
		}
		return err, resp.StatusCode >= 500, retryAfter
	}
	return json.Unmarshal(respBody, into), false, 0
}

// parseRetryAfter reads an HTTP Retry-After header value (delta-seconds or
// HTTP-date), returning 0 when absent or unparsable.
func parseRetryAfter(v string) time.Duration {
	if v == "" {
		return 0
	}
	if secs, err := strconv.Atoi(v); err == nil {
		if secs < 0 {
			return 0
		}
		return time.Duration(secs) * time.Second
	}
	if t, err := http.ParseTime(v); err == nil {
		if d := time.Until(t); d > 0 {
			return d
		}
	}
	return 0
}

// N returns the object count shared by all sources: the universe size
// when the sources are shards.
func (c *Client) N() int { return c.n }

// LocalN returns how many objects the sources actually hold: their shard
// slice size, or N for whole-universe sources. Sorted ranks are local —
// they walk a list of LocalN entries.
func (c *Client) LocalN() int { return c.localN }

// M returns the number of routed predicates.
func (c *Client) M() int { return len(c.routes) }

// Sorted fetches the rank-th entry of the predicate's descending list.
func (c *Client) Sorted(ctx context.Context, pred, rank int) (int, float64, error) {
	if pred < 0 || pred >= len(c.routes) {
		return 0, 0, fmt.Errorf("websim: predicate %d out of range", pred)
	}
	rt := c.routes[pred]
	u := fmt.Sprintf("%s/sorted?pred=%s&rank=%s", rt.BaseURL,
		url.QueryEscape(fmt.Sprint(rt.Pred)), url.QueryEscape(fmt.Sprint(rank)))
	var p sortedPayload
	if err := c.get(ctx, u, &p); err != nil {
		return 0, 0, err
	}
	if p.Obj < 0 || p.Obj >= c.n {
		return 0, 0, fmt.Errorf("websim: source returned out-of-universe object %d", p.Obj)
	}
	return p.Obj, p.Score, nil
}

// SortedEntry is one row of a sorted page.
type SortedEntry struct {
	Obj   int
	Score float64
}

// SortedPage fetches count consecutive entries of the predicate's
// descending list starting at rank, in one round trip.
func (c *Client) SortedPage(ctx context.Context, pred, rank, count int) ([]SortedEntry, error) {
	if pred < 0 || pred >= len(c.routes) {
		return nil, fmt.Errorf("websim: predicate %d out of range", pred)
	}
	rt := c.routes[pred]
	u := fmt.Sprintf("%s/sortedpage?pred=%d&rank=%d&count=%d", rt.BaseURL, rt.Pred, rank, count)
	var p sortedPagePayload
	if err := c.get(ctx, u, &p); err != nil {
		return nil, err
	}
	if len(p.Entries) != count {
		return nil, fmt.Errorf("websim: source returned %d entries for a page of %d", len(p.Entries), count)
	}
	out := make([]SortedEntry, count)
	for i, e := range p.Entries {
		if e.Obj < 0 || e.Obj >= c.n {
			return nil, fmt.Errorf("websim: source returned out-of-universe object %d", e.Obj)
		}
		out[i] = SortedEntry{Obj: e.Obj, Score: e.Score}
	}
	return out, nil
}

// Random fetches the exact score of one object on one predicate.
func (c *Client) Random(ctx context.Context, pred, obj int) (float64, error) {
	if pred < 0 || pred >= len(c.routes) {
		return 0, fmt.Errorf("websim: predicate %d out of range", pred)
	}
	rt := c.routes[pred]
	u := fmt.Sprintf("%s/random?pred=%s&obj=%s", rt.BaseURL,
		url.QueryEscape(fmt.Sprint(rt.Pred)), url.QueryEscape(fmt.Sprint(obj)))
	var p randomPayload
	if err := c.get(ctx, u, &p); err != nil {
		return 0, err
	}
	return p.Score, nil
}

// BatchRandom implements the share.BatchBackend capability: every
// (preds[i], objs[i]) probe is resolved, in order, into the returned
// scores. Probes are grouped by source so each routed server receives one
// POST /batch round trip, amortizing per-request latency across however
// many probes the caller coalesced.
func (c *Client) BatchRandom(ctx context.Context, preds, objs []int) ([]float64, error) {
	if len(preds) != len(objs) {
		return nil, fmt.Errorf("websim: batch has %d predicates but %d objects", len(preds), len(objs))
	}
	if len(preds) == 0 {
		return nil, nil
	}
	type group struct {
		indices []int
		probes  []batchProbe
	}
	groups := make(map[string]*group)
	var order []string
	for i, pred := range preds {
		if pred < 0 || pred >= len(c.routes) {
			return nil, fmt.Errorf("websim: predicate %d out of range", pred)
		}
		rt := c.routes[pred]
		g := groups[rt.BaseURL]
		if g == nil {
			g = &group{}
			groups[rt.BaseURL] = g
			order = append(order, rt.BaseURL)
		}
		g.indices = append(g.indices, i)
		g.probes = append(g.probes, batchProbe{Pred: rt.Pred, Obj: objs[i]})
	}
	scores := make([]float64, len(preds))
	for _, base := range order {
		g := groups[base]
		var p batchPayload
		if err := c.post(ctx, base+"/batch", batchRequest{Probes: g.probes}, &p); err != nil {
			return nil, err
		}
		if len(p.Scores) != len(g.probes) {
			return nil, fmt.Errorf("websim: source returned %d scores for %d probes", len(p.Scores), len(g.probes))
		}
		for j, idx := range g.indices {
			scores[idx] = p.Scores[j]
		}
	}
	return scores, nil
}
