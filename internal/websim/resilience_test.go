package websim

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/data"
	"repro/internal/data/datatest"
	"repro/internal/obs"
)

// TestAttemptTimeoutConvertsHang checks that a source which accepts the
// request and never answers turns into a retryable failure bounded by the
// per-attempt timeout, not a stuck access.
func TestAttemptTimeoutConvertsHang(t *testing.T) {
	ds := datatest.MustGenerate(data.Uniform, 10, 1, 9)
	src, err := NewServer(ds)
	if err != nil {
		t.Fatal(err)
	}
	var hung atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Hang every request after the /meta dial.
		if r.URL.Path != "/meta" {
			hung.Add(1)
			<-r.Context().Done()
			return
		}
		src.ServeHTTP(w, r)
	}))
	defer ts.Close()
	c, err := NewClient(context.Background(), ts.Client(), []Route{{ts.URL, 0}},
		WithRetries(1, time.Millisecond), WithAttemptTimeout(20*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, _, err = c.Sorted(context.Background(), 0, 0)
	if err == nil {
		t.Fatal("hanging source must fail the access")
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("hang resolved in %v; attempt timeout did not bound it", d)
	}
	if hung.Load() < 2 {
		t.Fatalf("timed-out attempt must be retried, got %d attempts", hung.Load())
	}
}

// TestJitterDeterministic checks seeded jitter replays identically and
// stays within [backoff/2, backoff].
func TestJitterDeterministic(t *testing.T) {
	draw := func(seed int64) []time.Duration {
		c := &Client{backoff: 16 * time.Millisecond}
		WithJitterSeed(seed)(c)
		var out []time.Duration
		b := c.backoff
		for i := 0; i < 8; i++ {
			out = append(out, c.retrySleep(b, 0))
			b *= 2
		}
		return out
	}
	a, b := draw(7), draw(7)
	base := 16 * time.Millisecond
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d differs across identically-seeded clients: %v vs %v", i, a[i], b[i])
		}
		if a[i] < base/2 || a[i] > base {
			t.Fatalf("draw %d = %v outside [%v, %v]", i, a[i], base/2, base)
		}
		base *= 2
	}
	if c := draw(8); c[0] == a[0] && c[1] == a[1] && c[2] == a[2] {
		t.Fatal("different seeds produced identical jitter prefixes")
	}
}

// TestRetrySleepHonorsRetryAfter checks the server's hint floors the
// backoff sleep.
func TestRetrySleepHonorsRetryAfter(t *testing.T) {
	c := &Client{backoff: time.Millisecond}
	if got := c.retrySleep(time.Millisecond, 50*time.Millisecond); got != 50*time.Millisecond {
		t.Fatalf("retrySleep = %v, want Retry-After floor of 50ms", got)
	}
	if got := c.retrySleep(80*time.Millisecond, 50*time.Millisecond); got != 80*time.Millisecond {
		t.Fatalf("retrySleep = %v, want backoff 80ms to dominate", got)
	}
}

func TestParseRetryAfter(t *testing.T) {
	if d := parseRetryAfter("2"); d != 2*time.Second {
		t.Errorf("delta-seconds: got %v", d)
	}
	if d := parseRetryAfter(""); d != 0 {
		t.Errorf("absent: got %v", d)
	}
	if d := parseRetryAfter("-3"); d != 0 {
		t.Errorf("negative: got %v", d)
	}
	if d := parseRetryAfter("garbage"); d != 0 {
		t.Errorf("garbage: got %v", d)
	}
	future := time.Now().Add(30 * time.Second).UTC().Format(http.TimeFormat)
	if d := parseRetryAfter(future); d <= 0 || d > 30*time.Second {
		t.Errorf("HTTP-date: got %v", d)
	}
}

// TestClientWaitsForRetryAfter runs an end-to-end retry against a 503
// emitting Retry-After and checks the observed backoff respects it.
func TestClientWaitsForRetryAfter(t *testing.T) {
	ds := datatest.MustGenerate(data.Uniform, 10, 1, 9)
	ts := startSource(t, ds, WithFailEvery(2), WithRetryAfter(time.Second))
	tr := obs.NewQueryTrace()
	c, err := NewClient(context.Background(), ts.Client(), []Route{{ts.URL, 0}},
		WithRetries(2, time.Millisecond), WithObserver(tr))
	if err != nil {
		t.Fatal(err)
	}
	// Issue accesses until one hits the fail-every-2 rhythm and retries.
	deadline := time.Now().Add(10 * time.Second)
	for tr.Snapshot().SourceRetries == 0 && time.Now().Before(deadline) {
		if _, _, err := c.Sorted(context.Background(), 0, 0); err != nil {
			t.Fatal(err)
		}
	}
	s := tr.Snapshot()
	if s.SourceRetries == 0 {
		t.Fatal("no retry observed")
	}
	// Each retry slept at least the 1s Retry-After, not the 1ms backoff.
	if perRetry := s.BackoffSeconds / float64(s.SourceRetries); perRetry < 0.9 {
		t.Fatalf("average backoff %.3fs ignores Retry-After of 1s", perRetry)
	}
}

// TestServerOutageWindow checks request ordinals inside the window fail
// with 503 and carry Retry-After, while the rest succeed.
func TestServerOutageWindow(t *testing.T) {
	ds := datatest.MustGenerate(data.Uniform, 10, 1, 9)
	ts := startSource(t, ds, WithOutageWindow(1, 3), WithRetryAfter(2*time.Second))
	for n := 0; n < 5; n++ {
		resp, err := ts.Client().Get(ts.URL + "/meta")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		inOutage := n >= 1 && n < 3
		if inOutage {
			if resp.StatusCode != http.StatusServiceUnavailable {
				t.Errorf("request %d: status %d, want 503 during outage", n, resp.StatusCode)
			}
			if ra := resp.Header.Get("Retry-After"); ra != "2" {
				t.Errorf("request %d: Retry-After %q, want \"2\"", n, ra)
			}
		} else if resp.StatusCode != http.StatusOK {
			t.Errorf("request %d: status %d, want 200 outside outage", n, resp.StatusCode)
		}
	}
}

// TestServerFailRateDeterministic checks seeded random failures replay
// identically across identically-configured servers.
func TestServerFailRateDeterministic(t *testing.T) {
	ds := datatest.MustGenerate(data.Uniform, 10, 1, 9)
	run := func() []int {
		ts := startSource(t, ds, WithFailRate(0.5, 11))
		var codes []int
		for n := 0; n < 20; n++ {
			resp, err := ts.Client().Get(ts.URL + "/meta")
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			codes = append(codes, resp.StatusCode)
		}
		return codes
	}
	a, b := run(), run()
	var fails int
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("request %d differs across identically-seeded servers: %d vs %d", i, a[i], b[i])
		}
		if a[i] == http.StatusServiceUnavailable {
			fails++
		}
	}
	if fails == 0 || fails == len(a) {
		t.Fatalf("fail rate 0.5 produced %d/%d failures", fails, len(a))
	}
}
