package service

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	topk "repro"
	"repro/internal/access"
	"repro/internal/data"
	"repro/internal/score"
)

// currentHandler is the handler behind the most recently started test
// service, for tests inspecting internals such as the plan cache.
var currentHandler *Handler

func startService(t *testing.T) (*httptest.Server, *data.Dataset) {
	t.Helper()
	bench, _, err := data.Restaurants(200, 5)
	if err != nil {
		t.Fatal(err)
	}
	h, err := NewHandler(Config{
		Dataset:  bench.Dataset,
		Columns:  bench.PredicateNames,
		Scenario: access.Uniform(2, 1, 2),
	})
	if err != nil {
		t.Fatal(err)
	}
	currentHandler = h
	ts := httptest.NewServer(h)
	t.Cleanup(ts.Close)
	return ts, bench.Dataset
}

func postQuery(t *testing.T, ts *httptest.Server, req QueryRequest) (*QueryResponse, *http.Response) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Post(ts.URL+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var ep errPayload
		_ = json.NewDecoder(resp.Body).Decode(&ep)
		return &QueryResponse{Query: ep.Error}, resp
	}
	var qr QueryResponse
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		t.Fatal(err)
	}
	return &qr, resp
}

func TestServiceMetaAndHealth(t *testing.T) {
	ts, _ := startService(t)
	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v %v", resp, err)
	}
	resp.Body.Close()
	r2, err := ts.Client().Get(ts.URL + "/meta")
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Body.Close()
	var meta metaPayload
	if err := json.NewDecoder(r2.Body).Decode(&meta); err != nil {
		t.Fatal(err)
	}
	if meta.N != 200 || meta.M != 2 || meta.Columns[0] != "rating" {
		t.Errorf("meta = %+v", meta)
	}
}

func TestServiceQueryOptimized(t *testing.T) {
	ts, ds := startService(t)
	qr, resp := postQuery(t, ts, QueryRequest{
		SQL: "select name from db order by min(rating, closeness) stop after 5",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, qr.Query)
	}
	if len(qr.Items) != 5 || qr.Plan == nil || qr.Cost <= 0 {
		t.Fatalf("response = %+v", qr)
	}
	oracle := ds.TopK(score.Min().Eval, 5)
	for i, it := range qr.Items {
		if math.Abs(it.Score-oracle[i].Score) > 1e-9 {
			t.Fatalf("rank %d: %g vs oracle %g", i, it.Score, oracle[i].Score)
		}
		if !strings.HasPrefix(it.Label, "restaurant-") {
			t.Errorf("label = %q", it.Label)
		}
	}
}

func TestServiceQueryBindsPredicateOrder(t *testing.T) {
	ts, ds := startService(t)
	// Reversed predicate order in the SQL must still answer correctly.
	qr, resp := postQuery(t, ts, QueryRequest{
		SQL:       "select name from db order by min(closeness, rating) stop after 3",
		Algorithm: "TA",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, qr.Query)
	}
	oracle := ds.TopK(score.Min().Eval, 3)
	for i, it := range qr.Items {
		if math.Abs(it.Score-oracle[i].Score) > 1e-9 {
			t.Fatalf("rank %d mismatch", i)
		}
	}
}

func TestServiceBudgetAndEpsilon(t *testing.T) {
	ts, _ := startService(t)
	qr, resp := postQuery(t, ts, QueryRequest{
		SQL:       "select name from db order by avg(rating, closeness) stop after 5",
		Algorithm: "nc",
		H:         []float64{0.5, 0.5},
		Budget:    10,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("budget query failed: %s", qr.Query)
	}
	if !qr.Truncated || qr.Cost > 10 {
		t.Errorf("budgeted response = %+v", qr)
	}
	qr2, resp2 := postQuery(t, ts, QueryRequest{
		SQL:       "select name from db order by avg(rating, closeness) stop after 5",
		H:         []float64{0.5, 0.5},
		Epsilon:   0.4,
		Algorithm: "nc",
	})
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("epsilon query failed: %s", qr2.Query)
	}
	if len(qr2.Items) != 5 {
		t.Errorf("epsilon response = %+v", qr2)
	}
}

func TestServiceParallel(t *testing.T) {
	ts, _ := startService(t)
	qr, resp := postQuery(t, ts, QueryRequest{
		SQL:      "select name from db order by min(rating, closeness) stop after 4",
		Parallel: 4,
	})
	if resp.StatusCode != http.StatusOK || len(qr.Items) != 4 {
		t.Fatalf("parallel query: %d %+v", resp.StatusCode, qr)
	}
}

func TestServiceErrors(t *testing.T) {
	ts, _ := startService(t)
	cases := []struct {
		req  QueryRequest
		frag string
	}{
		{QueryRequest{SQL: "not sql"}, "expected"},
		{QueryRequest{SQL: "select x from db order by min(rating, price) stop after 2"}, "not found"},
		{QueryRequest{SQL: "select x from db order by min(rating) stop after 2", Algorithm: "bogus"}, "unknown algorithm"},
		{QueryRequest{SQL: "select x from db order by min(rating) stop after 2", Algorithm: "nc"}, "requires h"},
	}
	for _, c := range cases {
		qr, resp := postQuery(t, ts, c.req)
		if resp.StatusCode == http.StatusOK {
			t.Errorf("request %+v should fail", c.req)
			continue
		}
		if !strings.Contains(qr.Query, c.frag) {
			t.Errorf("error %q lacks %q", qr.Query, c.frag)
		}
	}
	// Non-POST and malformed JSON.
	resp, err := ts.Client().Get(ts.URL + "/query")
	if err != nil || resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /query: %v %v", resp.StatusCode, err)
	}
	resp.Body.Close()
	r2, err := ts.Client().Post(ts.URL+"/query", "application/json", strings.NewReader("{"))
	if err != nil || r2.StatusCode != http.StatusBadRequest {
		t.Errorf("bad JSON: %v %v", r2.StatusCode, err)
	}
	r2.Body.Close()
}

func TestNewHandlerValidation(t *testing.T) {
	bench, _, err := data.Restaurants(10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewHandler(Config{Columns: []string{"a"}}); err == nil {
		t.Error("nil dataset should fail")
	}
	if _, err := NewHandler(Config{Dataset: bench.Dataset, Columns: []string{"a"}}); err == nil {
		t.Error("column count mismatch should fail")
	}
	if _, err := NewHandler(Config{Dataset: bench.Dataset, Columns: bench.PredicateNames, Scenario: topk.UniformScenario(3, 1, 1)}); err == nil {
		t.Error("scenario mismatch should fail")
	}
}

func TestServicePlanCache(t *testing.T) {
	ts, _ := startService(t)
	h := currentHandler
	sql := "select name from db order by min(rating, closeness) stop after 5"
	first, resp := postQuery(t, ts, QueryRequest{SQL: sql})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first: %s", first.Query)
	}
	if h.PlanCacheHits() != 0 {
		t.Fatalf("hits = %d before any repeat", h.PlanCacheHits())
	}
	second, resp2 := postQuery(t, ts, QueryRequest{SQL: sql})
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("second: %s", second.Query)
	}
	if h.PlanCacheHits() != 1 {
		t.Errorf("hits = %d after repeat", h.PlanCacheHits())
	}
	// Same answers and cost either way.
	if second.Cost != first.Cost || len(second.Items) != len(first.Items) {
		t.Errorf("cached plan diverged: %+v vs %+v", second, first)
	}
	// A different query misses the cache.
	postQuery(t, ts, QueryRequest{SQL: "select name from db order by avg(rating, closeness) stop after 5"})
	if h.PlanCacheHits() != 1 {
		t.Errorf("different query should not hit: %d", h.PlanCacheHits())
	}
}
