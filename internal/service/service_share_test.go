package service

// TestSharedAccessGate is the PR's headline acceptance gate: concurrent
// identical queries served with sharing enabled must reach the sources at
// least min_access_reduction_factor (BENCH_share.json) fewer times than
// the same queries served unshared, while every per-query ledger stays
// exactly what an unshared run would have billed.

import (
	"encoding/json"
	"net/http/httptest"
	"os"
	"sync"
	"testing"

	"repro/internal/access"
	"repro/internal/data"
)

type shareBaseline struct {
	Gate struct {
		MinAccessReduction float64 `json:"min_access_reduction_factor"`
	} `json:"gate"`
}

func loadShareBaseline(t *testing.T) shareBaseline {
	t.Helper()
	raw, err := os.ReadFile("../../BENCH_share.json")
	if err != nil {
		t.Fatalf("committed baseline missing: %v", err)
	}
	var sb shareBaseline
	if err := json.Unmarshal(raw, &sb); err != nil {
		t.Fatalf("BENCH_share.json unparseable: %v", err)
	}
	if sb.Gate.MinAccessReduction == 0 {
		t.Fatal("BENCH_share.json gate values incomplete")
	}
	return sb
}

// startE1Service serves the E1 reference workload (uniform n=1000 m=2
// seed=42, cs=cr=1) with or without the sharing layer.
func startE1Service(t *testing.T, sharing bool) (*httptest.Server, *Handler) {
	t.Helper()
	ds, err := data.Generate(data.Uniform, 1000, 2, 42)
	if err != nil {
		t.Fatal(err)
	}
	h, err := NewHandler(Config{
		Dataset:       ds,
		Columns:       []string{"p1", "p2"},
		Scenario:      access.Uniform(2, 1, 1),
		EnableSharing: sharing,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(h)
	t.Cleanup(ts.Close)
	return ts, h
}

func TestSharedAccessGate(t *testing.T) {
	sb := loadShareBaseline(t)
	// A fixed NC plan keeps all ledgers deterministic: the optimizer's
	// sharing discounts would legitimately change later queries' plans.
	req := QueryRequest{
		SQL:       "select name from db order by avg(p1, p2) stop after 10",
		Algorithm: "nc",
		H:         []float64{0.5, 0.5},
	}
	const queries = 8

	runAll := func(ts *httptest.Server) []*QueryResponse {
		resps := make([]*QueryResponse, queries)
		var wg sync.WaitGroup
		for i := 0; i < queries; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				resps[i], _ = postQuery(t, ts, req)
			}(i)
		}
		wg.Wait()
		return resps
	}
	ledgerTotal := func(qr *QueryResponse) int {
		total := 0
		for _, c := range qr.SortedAccesses {
			total += c
		}
		for _, c := range qr.RandomAccesses {
			total += c
		}
		return total
	}

	// Unshared: every ledger entry is an access that reached the backend.
	tsOff, hOff := startE1Service(t, false)
	if hOff.Sharing() {
		t.Fatal("sharing should be off by default")
	}
	offResps := runAll(tsOff)
	unsharedBackend := 0
	for _, qr := range offResps {
		unsharedBackend += ledgerTotal(qr)
	}

	// Shared: ledgers must be identical, backend accesses collapse.
	tsOn, hOn := startE1Service(t, true)
	if !hOn.Sharing() {
		t.Fatal("sharing should be enabled")
	}
	onResps := runAll(tsOn)
	for i, qr := range onResps {
		if got, want := ledgerTotal(qr), ledgerTotal(offResps[i]); got != want {
			t.Errorf("query %d: shared ledger bills %d accesses, unshared oracle %d", i, got, want)
		}
	}
	st := hOn.ShareStats()
	sharedBackend := int(st.BackendSorted + st.BackendRandom)
	if sharedBackend == 0 {
		t.Fatal("sharing layer reports zero backend accesses")
	}
	factor := float64(unsharedBackend) / float64(sharedBackend)
	t.Logf("backend accesses: unshared=%d shared=%d (%.1fx reduction; stats %+v)",
		unsharedBackend, sharedBackend, factor, st)
	if factor < sb.Gate.MinAccessReduction {
		t.Errorf("access reduction = %.2fx, gate is >=%.1fx", factor, sb.Gate.MinAccessReduction)
	}
}
