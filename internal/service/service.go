// Package service exposes the top-k middleware as an HTTP service: clients
// POST queries in the paper's SQL-like syntax and receive ranked answers
// with the access bill. One service instance fronts one database (a
// dataset or any access backend composition) under one cost scenario —
// the deployable form of the middleware that cmd/topkd runs.
//
// Endpoints:
//
//	GET  /meta     -> {"n":1000,"m":2,"columns":["rating","closeness"],"scenario":"example1"}
//	GET  /healthz  -> 200 ok (503 when the readiness probe fails; see
//	                  Config.HealthBackend)
//	GET  /metrics  -> Prometheus text exposition of the engine and service
//	                  metric set (topk_* series)
//	GET  /debug/pprof/*  -> runtime profiles, when Config.EnablePprof is set
//	POST /query    <- {"sql":"select name from db order by min(rating, closeness) stop after 5",
//	                   "algorithm":"opt",          // opt (default) | nc | any baseline name
//	                   "h":[0.4,1], "omega":[1,0], // with algorithm "nc"
//	                   "budget":25.0,              // optional anytime cap (cost units)
//	                   "epsilon":0.1,              // optional approximation slack
//	                   "parallel":8}               // optional simulated concurrency
//	               -> {"items":[{"object":3,"label":"restaurant-003","score":0.91,"exact":true}],
//	                   "cost":14.2,"truncated":false,"plan":{"h":[...],"omega":[...]},
//	                   "sortedAccesses":[20,50],"randomAccesses":[0,0]}
//
// Adding "cursor":true to /query suspends the query server-side instead of
// discarding its state: the response carries the first page plus a cursor
// id, and POST /query/next deepens it at only the marginal access cost:
//
//	POST /query/next <- {"cursor":"<id>","k":5}      // next 5 answers
//	                 <- {"cursor":"<id>","tau":0.8}  // all answers scoring >= 0.8
//	                 <- {"cursor":"<id>","close":true}
//	                 -> {"cursor":"<id>","page":2,"items":[...],"cost":21.7,
//	                     "exhausted":false,...}
//
// Page responses list only the page's new answers; cost and access counts
// stay cumulative, so the final page's bill equals a one-shot run of the
// total depth. Cursors idle longer than Config.CursorTTL expire (a later
// /query/next gets 404), and at most Config.MaxCursors are open at once.
//
// Appending ?trace=1 to /query or /query/next returns a per-query
// execution trace in the response's "trace" field: phase timings,
// per-predicate access counts (matching the ledger exactly), refused
// accesses, and optimizer statistics. On cursor pages the trace is
// cumulative and carries a "cursor" identity block.
//
// The service is fault-tolerant by construction: every query runs under a
// deadline (Config.QueryTimeout) with per-access timeouts and shared
// circuit breakers (one per dataset predicate and access kind), so a
// failing or hanging backend degrades the answer instead of wedging the
// service. Degraded answers are still 200s, carrying the best current
// candidates with "truncated":true and machine-readable reasons in
// "degraded". Above Config.MaxInflight concurrent queries, new requests
// are shed with 503 and a Retry-After hint.
package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	topk "repro"
	"repro/internal/cluster"
	"repro/internal/data"
	"repro/internal/obs"
	"repro/internal/opt"
	"repro/internal/sqlq"
)

// Config describes the database one service instance fronts.
type Config struct {
	// Dataset is the in-memory database (the service projects its columns
	// per query). Exactly one of Dataset and Cluster must be set.
	Dataset *data.Dataset
	// Cluster, when non-nil, fronts a shard cluster instead of a local
	// dataset: per-query backends are predicate views into the
	// coordinator's scatter-gather Backend, so every algorithm, breaker,
	// and sharing feature runs unchanged over the distributed sources.
	// The coordinator's topk_cluster_* series register on the service's
	// metrics registry, and ?trace=1 responses carry its shard fan-out
	// counters.
	Cluster *cluster.Coordinator
	// Store, when non-nil, fronts a disk store directory instead of an
	// in-memory dataset: per-query backends are predicate views into the
	// store, so sorted accesses run as block scans and random accesses as
	// point reads while every algorithm, breaker, and sharing feature
	// runs unchanged. Exactly one of Dataset, Cluster, and Store must be
	// set.
	Store *topk.Store
	// StoreCalibration carries the store's IO-measured (cs, cr) — it
	// fingerprints every store-mode plan into the shared plan cache
	// (topk.WithStore) so plans priced under one calibration are not
	// replayed after the physics moves. Ignored without Store.
	StoreCalibration topk.StoreCalibration
	// Columns names the dataset's predicates for SQL binding.
	Columns []string
	// Scenario is the access cost configuration.
	Scenario topk.Scenario
	// Optimizer tunes the default cost-based pipeline.
	Optimizer opt.Config

	// Metrics is the registry behind GET /metrics. When nil the handler
	// creates a private one, so the endpoint always serves; pass a shared
	// registry to aggregate several handlers into one scrape.
	Metrics *obs.Registry
	// SlowQueryThreshold logs queries slower than this through Logger and
	// counts them in topk_slow_queries_total. Zero disables the log.
	SlowQueryThreshold time.Duration
	// Logger receives slow-query lines (default log.Default()).
	Logger *log.Logger
	// EnablePprof mounts the runtime profiling handlers under
	// /debug/pprof/. Off by default: profiles expose internals, so the
	// operator opts in (cmd/topkd does, behind -pprof).
	EnablePprof bool
	// HealthBackend, when non-nil, turns GET /healthz into a readiness
	// probe: one sorted access at rank 0 under HealthTimeout; a failure
	// answers 503. Nil keeps /healthz as a trivial liveness check — the
	// in-memory dataset cannot be "down".
	HealthBackend topk.Backend
	// HealthTimeout bounds the readiness probe (default 1s).
	HealthTimeout time.Duration

	// QueryTimeout bounds each /query end to end (default 30s): when it
	// fires mid-run the response carries the best current candidates with
	// "degraded":["query_deadline"] instead of hanging. Negative disables
	// the bound.
	QueryTimeout time.Duration
	// MaxInflight caps concurrently executing queries; excess requests are
	// shed immediately with 503 and a Retry-After hint instead of queuing
	// into an ever-growing pile. Zero means unlimited.
	MaxInflight int
	// AccessTimeout bounds each backend access inside a query (default 5s;
	// negative disables): a hung source becomes a failed access the
	// circuit breakers can act on.
	AccessTimeout time.Duration
	// Breaker tunes the per-capability circuit breakers shared across
	// queries. The zero value uses the breaker defaults (3 consecutive
	// failures open a circuit for 1s).
	Breaker topk.BreakerConfig
	// WrapBackend, when non-nil, wraps each query's projected backend
	// (cols maps the projection's predicates to dataset predicates). The
	// chaos tests use it to splice a fault injector into the service's
	// own execution path. With sharing enabled the wrapper sits above the
	// shared layer, so injected faults hit each query's session (and its
	// breakers) without poisoning the shared caches.
	WrapBackend func(b topk.Backend, cols []int) topk.Backend

	// AdaptivePeriod, when > 0, runs every default-pipeline query with
	// mid-query adaptive re-planning: a divergence checkpoint every
	// AdaptivePeriod accesses compares observed source behaviour against
	// the plan's assumptions and re-plans through the shared plan cache
	// when sources drift (topk.WithAdaptive). Re-plans surface in /metrics
	// (topk_replan_total) and ?trace=1 responses. Skipped for explicit
	// algorithms, parallel, and approximate runs.
	AdaptivePeriod int
	// ContractGuard wraps each query's backend with the source contract
	// guard (topk.WithContractGuard): responses violating the access
	// contract — unsorted streams, non-finite or out-of-range scores,
	// duplicate ids, random results contradicting sorted sightings — are
	// rejected unbilled and, via the shared breakers, quarantine the lying
	// capability, so answers degrade honestly instead of going silently
	// wrong. Violations land in /metrics (topk_contract_violations_total)
	// and ?trace=1.
	ContractGuard bool

	// EnableSharing routes every query through one cross-query access-
	// sharing layer over the full dataset: concurrent queries share sorted
	// cursors and probed scores per dataset predicate (queries selecting
	// different column subsets still share the predicates they have in
	// common). Breaker transitions invalidate the affected predicate's
	// shared state, and the optimizer's expected costs are discounted by
	// the observed hit rates. Counters land in /metrics (topk_share_*)
	// and in ?trace=1 responses.
	EnableSharing bool
	// ShareScoreCapacity bounds the shared score cache in entries
	// (default share.DefaultScoreCapacity; negative disables score
	// caching while keeping shared cursors).
	ShareScoreCapacity int

	// CursorTTL expires server-side cursors idle longer than this: a
	// background reaper closes them and returns their pooled query state
	// (default 60s; negative disables expiry, so cursors live until the
	// client closes them or the handler shuts down). A request naming an
	// expired cursor gets 404 and re-runs from scratch.
	CursorTTL time.Duration
	// MaxCursors caps concurrently open server-side cursors; opening past
	// the cap is shed with 503 (default 128; negative means unlimited).
	MaxCursors int
}

// Handler is the HTTP middleware service.
type Handler struct {
	cfg Config
	mux *http.ServeMux

	// Observability: reg backs /metrics; metrics folds engine events into
	// it and is threaded through every query's engine run.
	reg       *obs.Registry
	metrics   *obs.Metrics
	logger    *log.Logger
	queryOK   *obs.Counter
	queryKO   *obs.Counter
	querySec  *obs.Histogram
	slowTotal *obs.Counter

	// breakers carries circuit-breaker state across queries: one breaker
	// per (dataset predicate, access kind), consulted by every query's
	// session through its resilience attachment.
	breakers *topk.BreakerSet
	// inflight counts queries currently executing, for load shedding.
	inflight atomic.Int64

	// plans memoizes optimizer plans across queries, keyed by the full
	// planning problem including the scenario the session currently sees —
	// so a breaker-degraded scenario keys differently and repeated queries
	// skip the plan search only while the plan is actually valid.
	// Concurrent identical queries dedup to a single optimization.
	plans *topk.PlanCache

	// shared is the cross-query access-sharing layer over the full
	// dataset (nil unless Config.EnableSharing); per-query backends are
	// projected views into it.
	shared *topk.SharedAccess

	// Cursor registry: open server-side cursors by id, their pooled state
	// alive between requests. curPrefix makes ids unguessable across
	// handler restarts; the reaper (started lazily with the first cursor)
	// expires idle entries.
	curMu      sync.Mutex
	cursors    map[string]*liveCursor
	curSeq     atomic.Uint64
	curPrefix  string
	reaperOn   bool
	reaperStop chan struct{}
	closeOnce  sync.Once

	cursorOpened  *obs.Counter
	cursorPages   *obs.Counter
	cursorClosed  *obs.Counter
	cursorExpired *obs.Counter
	cursorOpenG   *obs.Gauge
}

// NewHandler validates the configuration and builds the service.
func NewHandler(cfg Config) (*Handler, error) {
	sources := 0
	m := 0
	if cfg.Dataset != nil {
		sources++
		m = cfg.Dataset.M()
	}
	if cfg.Cluster != nil {
		sources++
		m = cfg.Cluster.M()
	}
	if cfg.Store != nil {
		sources++
		m = cfg.Store.M()
	}
	if sources == 0 {
		return nil, fmt.Errorf("service: config requires a dataset, a cluster coordinator, or a disk store")
	}
	if sources > 1 {
		return nil, fmt.Errorf("service: config names more than one of dataset, cluster coordinator, and disk store")
	}
	if len(cfg.Columns) != m {
		return nil, fmt.Errorf("service: %d column names for %d predicates", len(cfg.Columns), m)
	}
	if err := cfg.Scenario.Validate(m); err != nil {
		return nil, err
	}
	if cfg.HealthTimeout <= 0 {
		cfg.HealthTimeout = time.Second
	}
	if cfg.QueryTimeout == 0 {
		cfg.QueryTimeout = 30 * time.Second
	}
	if cfg.AccessTimeout == 0 {
		cfg.AccessTimeout = 5 * time.Second
	}
	if cfg.CursorTTL == 0 {
		cfg.CursorTTL = 60 * time.Second
	}
	if cfg.MaxCursors == 0 {
		cfg.MaxCursors = 128
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	logger := cfg.Logger
	if logger == nil {
		logger = log.Default()
	}
	h := &Handler{
		cfg:       cfg,
		mux:       http.NewServeMux(),
		reg:       reg,
		metrics:   obs.NewMetrics(reg),
		logger:    logger,
		queryOK:   reg.Counter("topk_queries_total", "Queries served by status.", obs.L("status", "ok")),
		queryKO:   reg.Counter("topk_queries_total", "Queries served by status.", obs.L("status", "error")),
		querySec:  reg.Histogram("topk_query_seconds", "End-to-end /query latency.", nil),
		slowTotal: reg.Counter("topk_slow_queries_total", "Queries slower than the configured threshold."),
		breakers:  topk.NewBreakerSet(m, cfg.Breaker),
		plans:     topk.NewPlanCache(0),
		cursors:   make(map[string]*liveCursor),
		curPrefix: cursorPrefix(),

		cursorOpened:  reg.Counter("topk_cursor_opened_total", "Server-side cursors opened."),
		cursorPages:   reg.Counter("topk_cursor_pages_total", "Cursor pages served, including each cursor's opening page."),
		cursorClosed:  reg.Counter("topk_cursor_closed_total", "Cursors closed by client request or handler shutdown."),
		cursorExpired: reg.Counter("topk_cursor_expired_total", "Idle cursors expired by the TTL reaper."),
		cursorOpenG:   reg.Gauge("topk_cursor_open", "Server-side cursors currently open."),
	}
	if cfg.Cluster != nil {
		// The coordinator's scatter-gather counters join the service's
		// scrape; safe here because the handler is built before serving.
		cfg.Cluster.AttachMetrics(reg)
	}
	if cfg.EnableSharing {
		var base topk.Backend
		switch {
		case cfg.Cluster != nil:
			// The sharing layer sits above the coordinator: shared cursor
			// prefixes and probed scores absorb accesses before they fan
			// out to the shards.
			base = cfg.Cluster
		case cfg.Store != nil:
			// Likewise above the store: a shared cursor prefix hit or a
			// cached probe never reaches the disk.
			base = cfg.Store
		default:
			base = topk.DataBackend(cfg.Dataset)
		}
		h.shared = topk.NewSharedAccess(base, topk.SharingOptions{
			ScoreCapacity: cfg.ShareScoreCapacity,
			Breakers:      h.breakers,
			Metrics:       reg,
		})
	}
	h.mux.HandleFunc("/meta", h.handleMeta)
	h.mux.HandleFunc("/healthz", h.handleHealth)
	h.mux.HandleFunc("/query", h.handleQuery)
	h.mux.HandleFunc("/query/next", h.handleNext)
	h.mux.HandleFunc("/metrics", h.handleMetrics)
	if cfg.EnablePprof {
		// Explicit wiring: importing net/http/pprof for its side effect
		// would publish profiles on http.DefaultServeMux for every binary
		// linking this package, opted in or not.
		h.mux.HandleFunc("/debug/pprof/", pprof.Index)
		h.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		h.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		h.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		h.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return h, nil
}

// Metrics returns the registry behind /metrics (the configured one, or the
// private registry the handler created).
func (h *Handler) Metrics() *obs.Registry { return h.reg }

// ServeHTTP implements http.Handler.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) { h.mux.ServeHTTP(w, r) }

// QueryRequest is the POST /query payload.
type QueryRequest struct {
	SQL       string    `json:"sql"`
	Algorithm string    `json:"algorithm,omitempty"`
	H         []float64 `json:"h,omitempty"`
	Omega     []int     `json:"omega,omitempty"`
	Budget    float64   `json:"budget,omitempty"`
	Epsilon   float64   `json:"epsilon,omitempty"`
	Parallel  int       `json:"parallel,omitempty"`
	// Cursor opens the query as a resumable server-side cursor instead of
	// a one-shot run: the response carries the first page (the query's
	// "stop after k" answers) plus a cursor id for POST /query/next.
	// Incompatible with "parallel" and batch-only baselines.
	Cursor bool `json:"cursor,omitempty"`
}

// NextRequest is the POST /query/next payload: deepen, score-page, or close
// an open cursor.
type NextRequest struct {
	// Cursor is the id returned by POST /query with "cursor":true.
	Cursor string `json:"cursor"`
	// K asks for the next K answers (ordinal deepening). K=0 with no tau
	// is a metadata poll: an empty, access-free page that still reports
	// cumulative cost and exhaustion.
	K int `json:"k,omitempty"`
	// Tau switches this page to score-range mode: emit every remaining
	// answer provably scoring at least tau (NC-shaped cursors only).
	Tau *float64 `json:"tau,omitempty"`
	// Close releases the cursor instead of paging.
	Close bool `json:"close,omitempty"`
}

// QueryItem is one ranked answer in a response.
type QueryItem struct {
	Object int     `json:"object"`
	Label  string  `json:"label"`
	Score  float64 `json:"score"`
	Exact  bool    `json:"exact"`
}

// PlanPayload reports the optimizer's configuration choice.
type PlanPayload struct {
	H     []float64 `json:"h"`
	Omega []int     `json:"omega"`
}

// QueryResponse is the POST /query result.
type QueryResponse struct {
	Query          string       `json:"query"`
	Items          []QueryItem  `json:"items"`
	Cost           float64      `json:"cost"`
	Truncated      bool         `json:"truncated"`
	Plan           *PlanPayload `json:"plan,omitempty"`
	SortedAccesses []int        `json:"sortedAccesses"`
	RandomAccesses []int        `json:"randomAccesses"`
	// Degraded lists machine-readable reasons the answer is best-effort
	// rather than exact ("circuit_open:sa:p1", "query_deadline",
	// "no_legal_plan", ...). Absent for exact answers.
	Degraded []string `json:"degraded,omitempty"`
	// Trace is the per-query execution trace, present when the request
	// asked for it with ?trace=1.
	Trace *obs.TraceSnapshot `json:"trace,omitempty"`
	// Share snapshots the service's cross-query sharing layer at response
	// time (cumulative across queries, not per-query), present when
	// sharing is enabled and the request asked for a trace.
	Share *topk.SharingStats `json:"share,omitempty"`
	// Cluster snapshots the coordinator's scatter-gather counters and
	// membership at response time (cumulative across queries, like Share),
	// present when the service fronts a shard cluster and the request
	// asked for a trace.
	Cluster *cluster.Stats `json:"cluster,omitempty"`

	// Cursor/Page/Exhausted are the pagination fields of cursor-backed
	// responses. Items then holds only the page's new answers, while Cost
	// and the access counts stay cumulative across the cursor's life — the
	// final page's bill equals a one-shot run of the total depth. Closed
	// acknowledges a NextRequest.Close.
	Cursor    string `json:"cursor,omitempty"`
	Page      int    `json:"page,omitempty"`
	Exhausted bool   `json:"exhausted,omitempty"`
	Closed    bool   `json:"closed,omitempty"`
}

type errPayload struct {
	Error string `json:"error"`
}

// bufPool recycles response buffers across requests: JSON answers and
// metric expositions are encoded into a pooled buffer and written with a
// single syscall-sized Write, instead of allocating an encoder stream per
// response. Buffers that grew beyond maxPooledBuf are dropped rather than
// pinned in the pool.
var bufPool = sync.Pool{New: func() interface{} { return new(bytes.Buffer) }}

const maxPooledBuf = 1 << 20

func putBuf(b *bytes.Buffer) {
	if b.Cap() <= maxPooledBuf {
		bufPool.Put(b)
	}
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	buf := bufPool.Get().(*bytes.Buffer)
	buf.Reset()
	_ = json.NewEncoder(buf).Encode(v)
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(buf.Len()))
	w.WriteHeader(status)
	_, _ = w.Write(buf.Bytes())
	putBuf(buf)
}

// handleMetrics serves the Prometheus exposition through a pooled buffer:
// the registry streams into recycled memory and the response goes out in
// one Write with an exact Content-Length.
func (h *Handler) handleMetrics(w http.ResponseWriter, r *http.Request) {
	buf := bufPool.Get().(*bytes.Buffer)
	buf.Reset()
	if err := h.reg.WritePrometheus(buf); err != nil {
		putBuf(buf)
		w.WriteHeader(http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.Header().Set("Content-Length", strconv.Itoa(buf.Len()))
	_, _ = w.Write(buf.Bytes())
	putBuf(buf)
}

// handleHealth answers liveness, and — when a health backend is
// configured — readiness: the sources this instance fronts must answer one
// sorted access within the deadline, otherwise load balancers should stop
// routing queries here.
func (h *Handler) handleHealth(w http.ResponseWriter, r *http.Request) {
	if b := h.cfg.HealthBackend; b != nil {
		ctx, cancel := context.WithTimeout(r.Context(), h.cfg.HealthTimeout)
		defer cancel()
		//topklint:allow billedaccess readiness probe: one unbilled access decides routability, no query pays for it
		if _, _, err := b.Sorted(ctx, 0, 0); err != nil {
			writeJSON(w, http.StatusServiceUnavailable, errPayload{Error: "backend unavailable: " + err.Error()})
			return
		}
	}
	w.WriteHeader(http.StatusOK)
	_, _ = io.WriteString(w, "ok\n")
}

type metaPayload struct {
	N        int      `json:"n"`
	M        int      `json:"m"`
	Columns  []string `json:"columns"`
	Scenario string   `json:"scenario"`
}

func (h *Handler) handleMeta(w http.ResponseWriter, r *http.Request) {
	var n, m func() int
	switch {
	case h.cfg.Cluster != nil:
		n, m = h.cfg.Cluster.N, h.cfg.Cluster.M
	case h.cfg.Store != nil:
		n, m = h.cfg.Store.N, h.cfg.Store.M
	default:
		n, m = h.cfg.Dataset.N, h.cfg.Dataset.M
	}
	writeJSON(w, http.StatusOK, metaPayload{
		N:        n(),
		M:        m(),
		Columns:  h.cfg.Columns,
		Scenario: h.cfg.Scenario.Name,
	})
}

func (h *Handler) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errPayload{Error: "POST required"})
		return
	}
	var req QueryRequest
	dec := json.NewDecoder(io.LimitReader(r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		h.queryKO.Inc()
		writeJSON(w, http.StatusBadRequest, errPayload{Error: "bad request: " + err.Error()})
		return
	}
	if max := h.cfg.MaxInflight; max > 0 {
		if h.inflight.Add(1) > int64(max) {
			h.inflight.Add(-1)
			h.metrics.RequestShed()
			w.Header().Set("Retry-After", "1")
			writeJSON(w, http.StatusServiceUnavailable, errPayload{Error: "service overloaded; retry later"})
			return
		}
		defer h.inflight.Add(-1)
	}
	start := time.Now()
	traced := r.URL.Query().Get("trace") == "1"
	var (
		resp   *QueryResponse
		status int
		err    error
	)
	if req.Cursor {
		resp, status, err = h.openCursor(req, traced)
	} else {
		resp, status, err = h.execute(r.Context(), req, traced)
	}
	elapsed := time.Since(start)
	h.querySec.Observe(elapsed.Seconds())
	if t := h.cfg.SlowQueryThreshold; t > 0 && elapsed >= t {
		h.slowTotal.Inc()
		h.logger.Printf("service: slow query (%v >= %v): %.120q", elapsed, t, req.SQL)
	}
	if err != nil {
		h.queryKO.Inc()
		writeJSON(w, status, errPayload{Error: err.Error()})
		return
	}
	h.queryOK.Inc()
	writeJSON(w, http.StatusOK, resp)
}

// prepared is one parsed, bound, and configured query that has not run
// yet: everything the one-shot path (execute) and the cursor path
// (openCursor) share. opts deliberately excludes the context — one-shot
// runs attach the HTTP request's, cursors rebind a fresh deadline per page.
type prepared struct {
	pq *sqlq.Query
	// label names answer objects; the projected dataset's labels locally,
	// the synthesized u<id> form in cluster mode (shards hold scores, not
	// row metadata).
	label func(int) string
	eng   *topk.Engine
	opts  []topk.RunOption
	o     obs.Observer
	tr    *obs.QueryTrace
}

// clusterLabel names objects when no local dataset carries labels — the
// same default form data.Dataset falls back to, so answers look alike
// across deployment modes.
func clusterLabel(u int) string { return fmt.Sprintf("u%d", u) }

// prepare parses, binds, and configures one query request against the
// configured database: projection, scenario, backend composition (sharing,
// chaos wrapper), engine, resilience, and the algorithm/budget/epsilon/
// parallel options. The engine run always feeds the service metrics; when
// traced, a per-query trace rides along.
func (h *Handler) prepare(req QueryRequest, traced bool) (*prepared, int, error) {
	var o obs.Observer = h.metrics
	var tr *obs.QueryTrace
	if traced {
		tr = obs.NewQueryTrace()
		o = obs.Multi(h.metrics, tr)
	}
	parseStart := time.Now()
	pq, err := sqlq.Parse(req.SQL)
	if err != nil {
		return nil, http.StatusBadRequest, err
	}
	cols, err := sqlq.Bind(pq, h.cfg.Columns)
	o.PhaseDone(obs.PhaseParse, time.Since(parseStart))
	if err != nil {
		return nil, http.StatusBadRequest, err
	}
	planStart := time.Now()
	var (
		backend topk.Backend
		label   func(int) string
	)
	switch {
	case h.cfg.Cluster != nil:
		v, verr := h.cfg.Cluster.View(cols)
		if verr != nil {
			return nil, http.StatusBadRequest, verr
		}
		backend, label = v, clusterLabel
	case h.cfg.Store != nil:
		v, verr := h.cfg.Store.View(cols)
		if verr != nil {
			return nil, http.StatusBadRequest, verr
		}
		// The store carries scores only; objects answer under the same
		// generic labels the cluster mode uses.
		backend, label = v, clusterLabel
	default:
		ds, derr := data.Project(h.cfg.Dataset, cols)
		if derr != nil {
			return nil, http.StatusBadRequest, derr
		}
		backend, label = topk.DataBackend(ds), ds.Label
	}
	scn := topk.Scenario{Name: h.cfg.Scenario.Name, Preds: make([]topk.PredCost, len(cols))}
	for i, c := range cols {
		scn.Preds[i] = h.cfg.Scenario.Preds[c]
	}
	if h.shared != nil {
		// The shared layer is keyed by database predicate; the view maps
		// this query's projection onto it, so queries over different
		// column subsets still share the predicates they have in common.
		backend = h.shared.View(cols)
	}
	if h.cfg.WrapBackend != nil {
		backend = h.cfg.WrapBackend(backend, cols)
	}
	engOpts := []topk.EngineOption{topk.WithPlanCache(h.plans)}
	if h.cfg.Store != nil {
		// Fingerprint the store identity and its measured calibration into
		// the shared plan cache: a re-calibration re-keys every plan.
		engOpts = append(engOpts, topk.WithStore(h.cfg.Store, h.cfg.StoreCalibration))
	}
	if h.cfg.ContractGuard {
		engOpts = append(engOpts, topk.WithContractGuard())
	}
	eng, err := topk.NewEngine(backend, scn, engOpts...)
	if err != nil {
		return nil, http.StatusInternalServerError, err
	}

	res := &topk.Resilience{Breakers: h.breakers, Map: cols}
	if h.cfg.AccessTimeout > 0 {
		res.AccessTimeout = h.cfg.AccessTimeout
	}
	opts := []topk.RunOption{topk.WithObserver(o), topk.WithResilience(res)}
	switch alg := req.Algorithm; {
	case alg == "" || alg == "opt":
		// The engine's plan cache (shared across queries via h.plans)
		// resolves the plan; hit/miss lands on the observer from inside
		// the cache, so the trace and metrics see the real outcome.
		ocfg := topk.OptimizerConfig(h.cfg.Optimizer)
		if h.shared != nil {
			// Shared accesses never reach the sources; discount the
			// optimizer's expected costs by the observed (quantized) hit
			// rates. Quantization keeps the plan-cache key space small.
			ocfg.SortedDiscount, ocfg.RandomDiscount = h.shared.Stats().Discounts()
		}
		opts = append(opts, topk.WithOptimizer(ocfg))
		if h.cfg.AdaptivePeriod > 0 && req.Parallel == 0 && req.Epsilon == 0 {
			opts = append(opts, topk.WithAdaptive(h.cfg.AdaptivePeriod))
		}
	case alg == "nc":
		if req.H == nil {
			return nil, http.StatusBadRequest, fmt.Errorf("service: algorithm \"nc\" requires h")
		}
		opts = append(opts, topk.WithNC(req.H, req.Omega))
	default:
		opts = append(opts, topk.WithAlgorithm(alg))
	}
	if req.Budget > 0 {
		opts = append(opts, topk.WithBudget(req.Budget))
	}
	if req.Epsilon > 0 {
		opts = append(opts, topk.WithApproximation(req.Epsilon))
	}
	if req.Parallel > 0 {
		opts = append(opts, topk.WithParallel(req.Parallel))
	}
	o.PhaseDone(obs.PhasePlan, time.Since(planStart))
	return &prepared{pq: pq, label: label, eng: eng, opts: opts, o: o, tr: tr}, http.StatusOK, nil
}

// execute runs one query request to completion. The context (the HTTP
// request's) cancels the run when the client goes away.
func (h *Handler) execute(ctx context.Context, req QueryRequest, traced bool) (*QueryResponse, int, error) {
	if t := h.cfg.QueryTimeout; t > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, t)
		defer cancel()
	}
	p, status, err := h.prepare(req, traced)
	if err != nil {
		return nil, status, err
	}
	ans, err := p.eng.Run(topk.Query{F: p.pq.Func, K: p.pq.K}, append(p.opts, topk.WithContext(ctx))...)
	if err != nil {
		status := http.StatusBadRequest
		if strings.Contains(err.Error(), "unknown algorithm") {
			status = http.StatusBadRequest
		}
		return nil, status, err
	}

	resp := &QueryResponse{
		Query:          p.pq.String(),
		Cost:           ans.TotalCost().Units(),
		Truncated:      ans.Truncated,
		SortedAccesses: ans.Ledger.SortedCounts,
		RandomAccesses: ans.Ledger.RandomCounts,
		Degraded:       ans.Degraded,
	}
	for _, it := range ans.Items {
		resp.Items = append(resp.Items, QueryItem{
			Object: it.Obj,
			Label:  p.label(it.Obj),
			Score:  it.Score,
			Exact:  it.Exact,
		})
	}
	if ans.Plan != nil {
		resp.Plan = &PlanPayload{H: ans.Plan.H, Omega: ans.Plan.Omega}
	}
	if p.tr != nil {
		snap := p.tr.Snapshot()
		resp.Trace = &snap
		if h.shared != nil {
			s := h.shared.Stats()
			resp.Share = &s
		}
		if h.cfg.Cluster != nil {
			cs := h.cfg.Cluster.Stats()
			resp.Cluster = &cs
		}
	}
	return resp, http.StatusOK, nil
}

// PlanCacheHits reports how many queries were answered with a cached plan
// (for tests and operational visibility). Singleflight followers count:
// they reused a concurrent identical optimization.
func (h *Handler) PlanCacheHits() int { return int(h.plans.Stats().Hits) }

// PlanCacheStats reports the plan cache's cumulative hits, misses, and
// evictions.
func (h *Handler) PlanCacheStats() topk.PlanCacheStats { return h.plans.Stats() }

// Sharing reports whether the cross-query sharing layer is enabled.
func (h *Handler) Sharing() bool { return h.shared != nil }

// ShareStats reports the sharing layer's cumulative counters (the zero
// Stats when sharing is disabled).
func (h *Handler) ShareStats() topk.SharingStats {
	if h.shared == nil {
		return topk.SharingStats{}
	}
	return h.shared.Stats()
}
