// Package service exposes the top-k middleware as an HTTP service: clients
// POST queries in the paper's SQL-like syntax and receive ranked answers
// with the access bill. One service instance fronts one database (a
// dataset or any access backend composition) under one cost scenario —
// the deployable form of the middleware that cmd/topkd runs.
//
// Endpoints:
//
//	GET  /meta     -> {"n":1000,"m":2,"columns":["rating","closeness"],"scenario":"example1"}
//	GET  /healthz  -> 200 ok
//	POST /query    <- {"sql":"select name from db order by min(rating, closeness) stop after 5",
//	                   "algorithm":"opt",          // opt (default) | nc | any baseline name
//	                   "h":[0.4,1], "omega":[1,0], // with algorithm "nc"
//	                   "budget":25.0,              // optional anytime cap (cost units)
//	                   "epsilon":0.1,              // optional approximation slack
//	                   "parallel":8}               // optional simulated concurrency
//	               -> {"items":[{"object":3,"label":"restaurant-003","score":0.91,"exact":true}],
//	                   "cost":14.2,"truncated":false,"plan":{"h":[...],"omega":[...]},
//	                   "sortedAccesses":[20,50],"randomAccesses":[0,0]}
package service

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"

	topk "repro"
	"repro/internal/data"
	"repro/internal/opt"
	"repro/internal/sqlq"
)

// Config describes the database one service instance fronts.
type Config struct {
	// Dataset is the in-memory database (the service projects its columns
	// per query).
	Dataset *data.Dataset
	// Columns names the dataset's predicates for SQL binding.
	Columns []string
	// Scenario is the access cost configuration.
	Scenario topk.Scenario
	// Optimizer tunes the default cost-based pipeline.
	Optimizer opt.Config
}

// Handler is the HTTP middleware service.
type Handler struct {
	cfg Config
	mux *http.ServeMux

	// planCache memoizes optimizer plans per canonical query: repeated
	// queries skip the plan search (costs are static for one service
	// instance, so plans stay valid until restart).
	mu        sync.Mutex
	planCache map[string]cachedPlan
	hits      int
}

type cachedPlan struct {
	h     []float64
	omega []int
}

// NewHandler validates the configuration and builds the service.
func NewHandler(cfg Config) (*Handler, error) {
	if cfg.Dataset == nil {
		return nil, fmt.Errorf("service: config requires a dataset")
	}
	if len(cfg.Columns) != cfg.Dataset.M() {
		return nil, fmt.Errorf("service: %d column names for %d predicates", len(cfg.Columns), cfg.Dataset.M())
	}
	if err := cfg.Scenario.Validate(cfg.Dataset.M()); err != nil {
		return nil, err
	}
	h := &Handler{cfg: cfg, mux: http.NewServeMux(), planCache: make(map[string]cachedPlan)}
	h.mux.HandleFunc("/meta", h.handleMeta)
	h.mux.HandleFunc("/healthz", h.handleHealth)
	h.mux.HandleFunc("/query", h.handleQuery)
	return h, nil
}

// ServeHTTP implements http.Handler.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) { h.mux.ServeHTTP(w, r) }

// QueryRequest is the POST /query payload.
type QueryRequest struct {
	SQL       string    `json:"sql"`
	Algorithm string    `json:"algorithm,omitempty"`
	H         []float64 `json:"h,omitempty"`
	Omega     []int     `json:"omega,omitempty"`
	Budget    float64   `json:"budget,omitempty"`
	Epsilon   float64   `json:"epsilon,omitempty"`
	Parallel  int       `json:"parallel,omitempty"`
}

// QueryItem is one ranked answer in a response.
type QueryItem struct {
	Object int     `json:"object"`
	Label  string  `json:"label"`
	Score  float64 `json:"score"`
	Exact  bool    `json:"exact"`
}

// PlanPayload reports the optimizer's configuration choice.
type PlanPayload struct {
	H     []float64 `json:"h"`
	Omega []int     `json:"omega"`
}

// QueryResponse is the POST /query result.
type QueryResponse struct {
	Query          string       `json:"query"`
	Items          []QueryItem  `json:"items"`
	Cost           float64      `json:"cost"`
	Truncated      bool         `json:"truncated"`
	Plan           *PlanPayload `json:"plan,omitempty"`
	SortedAccesses []int        `json:"sortedAccesses"`
	RandomAccesses []int        `json:"randomAccesses"`
}

type errPayload struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func (h *Handler) handleHealth(w http.ResponseWriter, r *http.Request) {
	w.WriteHeader(http.StatusOK)
	_, _ = io.WriteString(w, "ok\n")
}

type metaPayload struct {
	N        int      `json:"n"`
	M        int      `json:"m"`
	Columns  []string `json:"columns"`
	Scenario string   `json:"scenario"`
}

func (h *Handler) handleMeta(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, metaPayload{
		N:        h.cfg.Dataset.N(),
		M:        h.cfg.Dataset.M(),
		Columns:  h.cfg.Columns,
		Scenario: h.cfg.Scenario.Name,
	})
}

func (h *Handler) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errPayload{Error: "POST required"})
		return
	}
	var req QueryRequest
	dec := json.NewDecoder(io.LimitReader(r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errPayload{Error: "bad request: " + err.Error()})
		return
	}
	resp, status, err := h.execute(r.Context(), req)
	if err != nil {
		writeJSON(w, status, errPayload{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// execute runs one query request against the configured database. The
// context (the HTTP request's) cancels the run when the client goes away.
func (h *Handler) execute(ctx context.Context, req QueryRequest) (*QueryResponse, int, error) {
	pq, err := sqlq.Parse(req.SQL)
	if err != nil {
		return nil, http.StatusBadRequest, err
	}
	cols, err := sqlq.Bind(pq, h.cfg.Columns)
	if err != nil {
		return nil, http.StatusBadRequest, err
	}
	ds, err := data.Project(h.cfg.Dataset, cols)
	if err != nil {
		return nil, http.StatusBadRequest, err
	}
	scn := topk.Scenario{Name: h.cfg.Scenario.Name, Preds: make([]topk.PredCost, len(cols))}
	for i, c := range cols {
		scn.Preds[i] = h.cfg.Scenario.Preds[c]
	}
	eng, err := topk.NewEngine(topk.DataBackend(ds), scn)
	if err != nil {
		return nil, http.StatusInternalServerError, err
	}

	opts := []topk.RunOption{topk.WithContext(ctx)}
	switch alg := req.Algorithm; {
	case alg == "" || alg == "opt":
		h.mu.Lock()
		if cp, ok := h.planCache[pq.String()]; ok {
			opts = append(opts, topk.WithNC(cp.h, cp.omega))
			h.hits++
		} else {
			opts = append(opts, topk.WithOptimizer(topk.OptimizerConfig(h.cfg.Optimizer)))
		}
		h.mu.Unlock()
	case alg == "nc":
		if req.H == nil {
			return nil, http.StatusBadRequest, fmt.Errorf("service: algorithm \"nc\" requires h")
		}
		opts = append(opts, topk.WithNC(req.H, req.Omega))
	default:
		opts = append(opts, topk.WithAlgorithm(alg))
	}
	if req.Budget > 0 {
		opts = append(opts, topk.WithBudget(req.Budget))
	}
	if req.Epsilon > 0 {
		opts = append(opts, topk.WithApproximation(req.Epsilon))
	}
	if req.Parallel > 0 {
		opts = append(opts, topk.WithParallel(req.Parallel))
	}

	ans, err := eng.Run(topk.Query{F: pq.Func, K: pq.K}, opts...)
	if err != nil {
		status := http.StatusBadRequest
		if strings.Contains(err.Error(), "unknown algorithm") {
			status = http.StatusBadRequest
		}
		return nil, status, err
	}

	resp := &QueryResponse{
		Query:          pq.String(),
		Cost:           ans.TotalCost().Units(),
		Truncated:      ans.Truncated,
		SortedAccesses: ans.Ledger.SortedCounts,
		RandomAccesses: ans.Ledger.RandomCounts,
	}
	for _, it := range ans.Items {
		resp.Items = append(resp.Items, QueryItem{
			Object: it.Obj,
			Label:  ds.Label(it.Obj),
			Score:  it.Score,
			Exact:  it.Exact,
		})
	}
	if ans.Plan != nil {
		resp.Plan = &PlanPayload{H: ans.Plan.H, Omega: ans.Plan.Omega}
		h.mu.Lock()
		h.planCache[pq.String()] = cachedPlan{h: ans.Plan.H, omega: ans.Plan.Omega}
		h.mu.Unlock()
	}
	return resp, http.StatusOK, nil
}

// PlanCacheHits reports how many queries were answered with a cached plan
// (for tests and operational visibility).
func (h *Handler) PlanCacheHits() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.hits
}
