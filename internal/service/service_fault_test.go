package service

// Service-level fault-tolerance tests: chaos via the Config.WrapBackend
// seam, load shedding at the admission gate, and per-query deadlines —
// with the degradation visible in the response body, /metrics, and
// ?trace=1, as the PR's observability contract requires.

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	topk "repro"
	"repro/internal/access"
	"repro/internal/data"
	"repro/internal/fault"
)

// startFaultService builds a two-predicate restaurant service whose
// configuration the caller can mutate before the handler is constructed.
func startFaultService(t *testing.T, mutate func(cfg *Config)) (*httptest.Server, *Handler) {
	t.Helper()
	bench, _, err := data.Restaurants(200, 5)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Dataset:  bench.Dataset,
		Columns:  bench.PredicateNames,
		Scenario: access.Uniform(2, 1, 2),
	}
	if mutate != nil {
		mutate(&cfg)
	}
	h, err := NewHandler(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(h)
	t.Cleanup(ts.Close)
	return ts, h
}

// postRaw posts a query and returns the raw response without asserting
// its status.
func postRaw(t *testing.T, ts *httptest.Server, path string, req QueryRequest) (*http.Response, []byte) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Post(ts.URL+path, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	payload, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, payload
}

// scrapeMetric returns the summed value of a metric across label sets in
// the /metrics exposition.
func scrapeMetric(t *testing.T, ts *httptest.Server, name string) int64 {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var sum int64
	var seen bool
	for _, line := range strings.Split(string(body), "\n") {
		if !strings.HasPrefix(line, name) || strings.HasPrefix(line, "#") {
			continue
		}
		rest := line[len(name):]
		if rest != "" && rest[0] != ' ' && rest[0] != '{' {
			continue // longer metric name sharing the prefix
		}
		fields := strings.Fields(line)
		v, err := strconv.ParseInt(fields[len(fields)-1], 10, 64)
		if err != nil {
			t.Fatalf("unparseable metric line %q: %v", line, err)
		}
		sum += v
		seen = true
	}
	if !seen {
		t.Fatalf("metric %s absent from /metrics", name)
	}
	return sum
}

// TestServiceChaosDegradedAndObservable: a permanent outage on one
// predicate (injected through the WrapBackend seam) must yield an HTTP
// 200 with a machine-readable degraded answer — and the breaker
// transitions and degraded re-plans must be visible in both the ?trace=1
// payload and /metrics.
func TestServiceChaosDegradedAndObservable(t *testing.T) {
	ts, _ := startFaultService(t, func(cfg *Config) {
		cfg.Breaker = topk.BreakerConfig{FailureThreshold: 2, Cooldown: time.Hour}
		cfg.WrapBackend = func(b topk.Backend, cols []int) topk.Backend {
			return fault.Wrap(b, fault.Config{Seed: 1, Preds: map[int]fault.PredFault{
				1: {OutageFrom: 0, OutageTo: -1},
			}})
		}
	})
	resp, payload := postRaw(t, ts, "/query?trace=1", QueryRequest{
		SQL: "select name from db order by min(rating, closeness) stop after 3",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("degraded query must answer 200, got %d: %s", resp.StatusCode, payload)
	}
	var qr QueryResponse
	if err := json.Unmarshal(payload, &qr); err != nil {
		t.Fatal(err)
	}
	if !qr.Truncated || len(qr.Degraded) == 0 {
		t.Fatalf("outage answer not flagged degraded: truncated=%v degraded=%v", qr.Truncated, qr.Degraded)
	}
	var sawCircuit bool
	for _, r := range qr.Degraded {
		if strings.HasPrefix(r, "circuit_open:") {
			sawCircuit = true
		}
	}
	if !sawCircuit {
		t.Fatalf("degraded reasons %v carry no circuit_open entry", qr.Degraded)
	}
	if qr.Trace == nil {
		t.Fatal("?trace=1 returned no trace")
	}
	if len(qr.Trace.BreakerTransitions) == 0 {
		t.Fatal("trace shows no breaker transitions")
	}
	if qr.Trace.DegradedReplans == 0 || len(qr.Trace.DegradedReasons) == 0 {
		t.Fatalf("trace shows no degradation: replans=%d reasons=%v",
			qr.Trace.DegradedReplans, qr.Trace.DegradedReasons)
	}
	if got := scrapeMetric(t, ts, "topk_breaker_transitions_total"); got == 0 {
		t.Error("topk_breaker_transitions_total not incremented")
	}
	if got := scrapeMetric(t, ts, "topk_breaker_open"); got == 0 {
		t.Error("topk_breaker_open gauge not raised while the circuit is open")
	}
	if got := scrapeMetric(t, ts, "topk_degraded_replans_total"); got == 0 {
		t.Error("topk_degraded_replans_total not incremented")
	}
}

// gatedBackend blocks every access until the gate closes (or the access
// context dies), holding a query deliberately inflight.
type gatedBackend struct {
	topk.Backend
	gate <-chan struct{}
}

func (b gatedBackend) Sorted(ctx context.Context, pred, rank int) (int, float64, error) {
	select {
	case <-b.gate:
	case <-ctx.Done():
		return 0, 0, ctx.Err()
	}
	return b.Backend.Sorted(ctx, pred, rank)
}

func (b gatedBackend) Random(ctx context.Context, pred, obj int) (float64, error) {
	select {
	case <-b.gate:
	case <-ctx.Done():
		return 0, ctx.Err()
	}
	return b.Backend.Random(ctx, pred, obj)
}

// TestServiceLoadShedding: above MaxInflight concurrent queries, the
// service sheds with 503 + Retry-After instead of queueing, and counts
// the shed in topk_requests_shed_total.
func TestServiceLoadShedding(t *testing.T) {
	gate := make(chan struct{})
	ts, h := startFaultService(t, func(cfg *Config) {
		cfg.MaxInflight = 1
		cfg.WrapBackend = func(b topk.Backend, cols []int) topk.Backend {
			return gatedBackend{Backend: b, gate: gate}
		}
	})

	first := make(chan int, 1)
	go func() {
		resp, _ := postRaw(t, ts, "/query", QueryRequest{
			SQL: "select name from db order by min(rating, closeness) stop after 2",
		})
		first <- resp.StatusCode
	}()
	// Wait until the first query holds the inflight slot.
	deadline := time.Now().Add(5 * time.Second)
	for h.inflight.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("first query never became inflight")
		}
		time.Sleep(time.Millisecond)
	}

	resp, payload := postRaw(t, ts, "/query", QueryRequest{
		SQL: "select name from db order by min(rating, closeness) stop after 2",
	})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("second query status %d, want 503: %s", resp.StatusCode, payload)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 carries no Retry-After header")
	}
	if got := scrapeMetric(t, ts, "topk_requests_shed_total"); got != 1 {
		t.Errorf("topk_requests_shed_total = %d, want 1", got)
	}

	close(gate)
	if status := <-first; status != http.StatusOK {
		t.Fatalf("first query status %d after release, want 200", status)
	}
	if h.inflight.Load() != 0 {
		t.Errorf("inflight gauge leaked: %d", h.inflight.Load())
	}
}

// slowBackend delays every access, forcing the query deadline to fire
// mid-run.
type slowBackend struct {
	topk.Backend
	delay time.Duration
}

func (b slowBackend) Sorted(ctx context.Context, pred, rank int) (int, float64, error) {
	time.Sleep(b.delay)
	return b.Backend.Sorted(ctx, pred, rank)
}

func (b slowBackend) Random(ctx context.Context, pred, obj int) (float64, error) {
	time.Sleep(b.delay)
	return b.Backend.Random(ctx, pred, obj)
}

// TestServiceQueryDeadlineDegrades: when the per-query deadline fires
// mid-run, the service still answers 200 with the work already paid for,
// flagged "query_deadline" — it does not hang or return a 5xx.
func TestServiceQueryDeadlineDegrades(t *testing.T) {
	ts, _ := startFaultService(t, func(cfg *Config) {
		cfg.QueryTimeout = 60 * time.Millisecond
		cfg.WrapBackend = func(b topk.Backend, cols []int) topk.Backend {
			return slowBackend{Backend: b, delay: 10 * time.Millisecond}
		}
	})
	start := time.Now()
	resp, payload := postRaw(t, ts, "/query", QueryRequest{
		SQL: "select name from db order by min(rating, closeness) stop after 5",
	})
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("deadline did not bound the query: %v", elapsed)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("deadline query status %d, want 200 degraded: %s", resp.StatusCode, payload)
	}
	var qr QueryResponse
	if err := json.Unmarshal(payload, &qr); err != nil {
		t.Fatal(err)
	}
	if !qr.Truncated {
		t.Fatal("deadline answer not flagged truncated")
	}
	var sawDeadline bool
	for _, r := range qr.Degraded {
		if r == "query_deadline" {
			sawDeadline = true
		}
	}
	if !sawDeadline {
		t.Fatalf("degraded reasons %v carry no query_deadline entry", qr.Degraded)
	}
}
