// Server-side resumable cursors: POST /query with "cursor":true suspends
// the query after its first page instead of discarding the per-query state,
// and POST /query/next deepens it (ordinal k, or score-range tau) at only
// the marginal access cost. The engine-level Cursor keeps the score table,
// candidate queue, and access ledger alive between requests; this file adds
// the service concerns — an id registry, per-page deadlines, a TTL reaper
// that returns idle cursors' pooled state, and topk_cursor_* metrics.
package service

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	topk "repro"
	"repro/internal/obs"
)

// liveCursor is one registered server-side cursor: the engine cursor plus
// the request-independent context a page response needs (labels, trace,
// pagination counters).
type liveCursor struct {
	id    string
	query string
	label func(int) string
	tr    *obs.QueryTrace

	// mu serializes pages — concurrent /query/next calls on the same id
	// queue up rather than interleave accesses — and guards page/cur
	// teardown ordering with the reaper.
	mu   sync.Mutex
	cur  *topk.Cursor
	page int

	// lastUsed (unix nanos) is touched at every page boundary; the reaper
	// compares it against the TTL cutoff.
	lastUsed atomic.Int64
}

func (lc *liveCursor) touch() { lc.lastUsed.Store(time.Now().UnixNano()) }

// cursorPrefix mints a per-handler random id prefix, so cursor ids are not
// guessable across restarts. crypto/rand, not math/rand: the repo's detrand
// lint keeps pseudo-randomness out of the serving path.
func cursorPrefix() string {
	var b [6]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "cur"
	}
	return hex.EncodeToString(b[:])
}

func (h *Handler) nextCursorID() string {
	return h.curPrefix + "-" + strconv.FormatUint(h.curSeq.Add(1), 10)
}

// openCursor handles POST /query with "cursor":true: it prepares the query
// exactly like a one-shot run, suspends it as an engine cursor, registers
// it, and serves the first page (the query's "stop after k" answers).
// Cursors always carry a trace so any later page may ask for ?trace=1.
func (h *Handler) openCursor(req QueryRequest, traced bool) (*QueryResponse, int, error) {
	if req.Parallel > 0 {
		return nil, http.StatusBadRequest, fmt.Errorf("service: cursors are sequential; \"parallel\" applies to one-shot queries")
	}
	p, status, err := h.prepare(req, true)
	if err != nil {
		return nil, status, err
	}
	cur, err := p.eng.Open(topk.Query{F: p.pq.Func, K: p.pq.K}, p.opts...)
	if err != nil {
		return nil, http.StatusBadRequest, err
	}
	lc := &liveCursor{id: h.nextCursorID(), query: p.pq.String(), label: p.label, tr: p.tr, cur: cur}
	lc.touch()
	if err := h.register(lc); err != nil {
		_ = cur.Close()
		return nil, http.StatusServiceUnavailable, err
	}
	page, pageNo, err := lc.produce(h, p.pq.K, nil)
	if err != nil {
		h.unregister(lc, h.cursorClosed)
		return nil, http.StatusInternalServerError, err
	}
	return lc.response(h, page, pageNo, traced), http.StatusOK, nil
}

// handleNext serves POST /query/next: deepen an open cursor by k answers,
// page it by score threshold, or close it. Pages run under the same
// shedding, latency, and slow-query accounting as one-shot queries.
func (h *Handler) handleNext(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errPayload{Error: "POST required"})
		return
	}
	var req NextRequest
	dec := json.NewDecoder(io.LimitReader(r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		h.queryKO.Inc()
		writeJSON(w, http.StatusBadRequest, errPayload{Error: "bad request: " + err.Error()})
		return
	}
	if req.Cursor == "" {
		h.queryKO.Inc()
		writeJSON(w, http.StatusBadRequest, errPayload{Error: "cursor id required"})
		return
	}
	if req.K < 0 {
		h.queryKO.Inc()
		writeJSON(w, http.StatusBadRequest, errPayload{Error: "k must be >= 0"})
		return
	}
	lc := h.lookup(req.Cursor)
	if lc == nil {
		h.queryKO.Inc()
		writeJSON(w, http.StatusNotFound, errPayload{Error: "unknown cursor (closed, expired, or never opened): " + req.Cursor})
		return
	}
	if req.Close {
		h.unregister(lc, h.cursorClosed)
		h.queryOK.Inc()
		writeJSON(w, http.StatusOK, &QueryResponse{Query: lc.query, Cursor: lc.id, Closed: true})
		return
	}
	if max := h.cfg.MaxInflight; max > 0 {
		if h.inflight.Add(1) > int64(max) {
			h.inflight.Add(-1)
			h.metrics.RequestShed()
			w.Header().Set("Retry-After", "1")
			writeJSON(w, http.StatusServiceUnavailable, errPayload{Error: "service overloaded; retry later"})
			return
		}
		defer h.inflight.Add(-1)
	}
	start := time.Now()
	page, pageNo, err := lc.produce(h, req.K, req.Tau)
	elapsed := time.Since(start)
	h.querySec.Observe(elapsed.Seconds())
	if t := h.cfg.SlowQueryThreshold; t > 0 && elapsed >= t {
		h.slowTotal.Inc()
		h.logger.Printf("service: slow cursor page (%v >= %v): %.120q", elapsed, t, lc.query)
	}
	if err != nil {
		h.queryKO.Inc()
		status := http.StatusBadRequest
		if errors.Is(err, topk.ErrCursorClosed) {
			// The reaper or a concurrent close won the race after lookup.
			status = http.StatusNotFound
		}
		writeJSON(w, status, errPayload{Error: err.Error()})
		return
	}
	h.queryOK.Inc()
	writeJSON(w, http.StatusOK, lc.response(h, page, pageNo, r.URL.Query().Get("trace") == "1"))
}

// produce runs one page under its own deadline. The session — and the
// paid-for state behind it — survives between requests, so each page binds
// a fresh QueryTimeout context for just the duration of the call.
func (lc *liveCursor) produce(h *Handler, k int, tau *float64) (*topk.Page, int, error) {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	lc.touch()
	ctx := context.Background()
	cancel := func() {}
	if t := h.cfg.QueryTimeout; t > 0 {
		ctx, cancel = context.WithTimeout(ctx, t)
	}
	lc.cur.Bind(ctx)
	var page *topk.Page
	var err error
	if tau != nil {
		page, err = lc.cur.NextUntil(*tau)
	} else {
		page, err = lc.cur.Next(k)
	}
	lc.cur.Bind(nil)
	cancel()
	if err != nil {
		return nil, 0, err
	}
	lc.page++
	h.cursorPages.Inc()
	lc.touch()
	return page, lc.page, nil
}

// response assembles a paged QueryResponse: the page's new answers, the
// cursor's cumulative bill, and — when asked — the cumulative trace tagged
// with the cursor's identity.
func (lc *liveCursor) response(h *Handler, page *topk.Page, pageNo int, traced bool) *QueryResponse {
	resp := &QueryResponse{
		Query:          lc.query,
		Cost:           page.Ledger.TotalCost.Units(),
		Truncated:      page.Truncated,
		SortedAccesses: page.Ledger.SortedCounts,
		RandomAccesses: page.Ledger.RandomCounts,
		Degraded:       page.Degraded,
		Cursor:         lc.id,
		Page:           pageNo,
		Exhausted:      page.Exhausted,
	}
	for _, it := range page.Items {
		resp.Items = append(resp.Items, QueryItem{
			Object: it.Obj,
			Label:  lc.label(it.Obj),
			Score:  it.Score,
			Exact:  it.Exact,
		})
	}
	if page.Plan != nil {
		resp.Plan = &PlanPayload{H: page.Plan.H, Omega: page.Plan.Omega}
	}
	if traced && lc.tr != nil {
		snap := lc.tr.Snapshot()
		snap.Cursor = &obs.CursorTrace{ID: lc.id, Page: pageNo, Emitted: lc.cur.Emitted(), Exhausted: page.Exhausted}
		resp.Trace = &snap
		if h.shared != nil {
			s := h.shared.Stats()
			resp.Share = &s
		}
		if h.cfg.Cluster != nil {
			cs := h.cfg.Cluster.Stats()
			resp.Cluster = &cs
		}
	}
	return resp
}

// register adds a cursor to the registry, enforcing the open-cursor cap,
// and lazily starts the TTL reaper.
func (h *Handler) register(lc *liveCursor) error {
	h.curMu.Lock()
	defer h.curMu.Unlock()
	if h.cursors == nil {
		return fmt.Errorf("service: handler closed")
	}
	if max := h.cfg.MaxCursors; max > 0 && len(h.cursors) >= max {
		return fmt.Errorf("service: cursor limit reached (%d open); close cursors or let idle ones expire", max)
	}
	h.cursors[lc.id] = lc
	h.cursorOpened.Inc()
	h.cursorOpenG.Add(1)
	h.ensureReaperLocked()
	return nil
}

func (h *Handler) lookup(id string) *liveCursor {
	h.curMu.Lock()
	defer h.curMu.Unlock()
	return h.cursors[id]
}

// unregister removes a cursor from the registry and returns its pooled
// engine state; counter attributes the close (client request vs expiry).
// Reports whether this call was the one that removed it — losers of a
// close/expire race are no-ops, so each cursor is counted exactly once.
func (h *Handler) unregister(lc *liveCursor, counter *obs.Counter) bool {
	h.curMu.Lock()
	_, present := h.cursors[lc.id]
	if present {
		delete(h.cursors, lc.id)
	}
	h.curMu.Unlock()
	if !present {
		return false
	}
	// Taking the page lock orders teardown after any in-flight page: the
	// page completes normally, then the state goes back to the pool.
	lc.mu.Lock()
	_ = lc.cur.Close()
	lc.mu.Unlock()
	counter.Inc()
	h.cursorOpenG.Add(-1)
	return true
}

// ensureReaperLocked starts the TTL reaper the first time a cursor is
// registered (curMu held). Handlers that never open cursors never run it.
func (h *Handler) ensureReaperLocked() {
	if h.cfg.CursorTTL <= 0 || h.reaperOn {
		return
	}
	h.reaperOn = true
	h.reaperStop = make(chan struct{})
	interval := h.cfg.CursorTTL / 4
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	go h.reap(interval)
}

func (h *Handler) reap(interval time.Duration) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-h.reaperStop:
			return
		case <-t.C:
			h.expireIdle(time.Now())
		}
	}
}

// expireIdle closes every cursor idle for at least CursorTTL, returning
// its pooled state, and reports how many it expired. The reaper calls it
// on a timer; tests call it directly with a synthetic clock.
func (h *Handler) expireIdle(now time.Time) int {
	ttl := h.cfg.CursorTTL
	if ttl <= 0 {
		return 0
	}
	cutoff := now.Add(-ttl).UnixNano()
	h.curMu.Lock()
	var idle []*liveCursor
	for _, lc := range h.cursors {
		if lc.lastUsed.Load() <= cutoff {
			idle = append(idle, lc)
		}
	}
	h.curMu.Unlock()
	n := 0
	for _, lc := range idle {
		// Re-check under the page lock: a page may have started since the
		// sweep, and a page boundary refreshes lastUsed.
		lc.mu.Lock()
		fresh := lc.lastUsed.Load() > cutoff
		lc.mu.Unlock()
		if fresh {
			continue
		}
		if h.unregister(lc, h.cursorExpired) {
			n++
		}
	}
	return n
}

// OpenCursors reports how many server-side cursors are currently open.
func (h *Handler) OpenCursors() int {
	h.curMu.Lock()
	defer h.curMu.Unlock()
	return len(h.cursors)
}

// Close shuts the cursor subsystem down: it stops the reaper, closes every
// open cursor (returning their pooled state), and refuses new ones with
// 503. One-shot queries keep serving. Idempotent.
func (h *Handler) Close() {
	h.closeOnce.Do(func() {
		h.curMu.Lock()
		if h.reaperOn {
			close(h.reaperStop)
			h.reaperOn = false
		}
		open := make([]*liveCursor, 0, len(h.cursors))
		for _, lc := range h.cursors {
			open = append(open, lc)
		}
		h.cursors = nil
		h.curMu.Unlock()
		for _, lc := range open {
			lc.mu.Lock()
			_ = lc.cur.Close()
			lc.mu.Unlock()
			h.cursorClosed.Inc()
			h.cursorOpenG.Add(-1)
		}
	})
}
