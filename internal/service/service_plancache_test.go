package service

// Plan-cache behaviour through the service's own execution path: breaker
// degradation must invalidate cached plans (the scenario fingerprint
// changes), and concurrent identical queries must share one optimization.

import (
	"net/http"
	"sync"
	"testing"
	"time"

	topk "repro"
	"repro/internal/access"
)

func TestServicePlanCacheBreakerInvalidation(t *testing.T) {
	ts, h := startFaultService(t, func(cfg *Config) {
		cfg.Breaker = topk.BreakerConfig{FailureThreshold: 1, Cooldown: time.Hour}
	})
	req := QueryRequest{SQL: "select name from db order by min(rating, closeness) stop after 3"}
	if resp, payload := postRaw(t, ts, "/query", req); resp.StatusCode != http.StatusOK {
		t.Fatalf("first query: %d: %s", resp.StatusCode, payload)
	}
	if resp, payload := postRaw(t, ts, "/query", req); resp.StatusCode != http.StatusOK {
		t.Fatalf("second query: %d: %s", resp.StatusCode, payload)
	}
	if st := h.PlanCacheStats(); st.Misses != 1 || st.Hits != 1 {
		t.Fatalf("healthy repeat should hit; stats = %+v", st)
	}
	// Open the random-access breaker on p1 (threshold 1, 1h cooldown).
	// Sorted access survives everywhere, so the degraded scenario stays
	// plannable — but its fingerprint differs, and the repeat query must
	// MISS: the cached plan solves a planning problem that no longer
	// matches the world.
	h.breakers.Record(access.RandomAccess, 1, false)
	if got := h.breakers.State(access.RandomAccess, 1); got != access.BreakerOpen {
		t.Fatalf("breaker state after failure = %v, want open", got)
	}
	if resp, payload := postRaw(t, ts, "/query", req); resp.StatusCode != http.StatusOK {
		t.Fatalf("degraded repeat: %d: %s", resp.StatusCode, payload)
	}
	if st := h.PlanCacheStats(); st.Misses != 2 || st.Hits != 1 {
		t.Fatalf("breaker flip must invalidate the cached plan; stats = %+v", st)
	}
	// The degraded fingerprint is itself cacheable: a fourth run hits.
	if resp, payload := postRaw(t, ts, "/query", req); resp.StatusCode != http.StatusOK {
		t.Fatalf("fourth query: %d: %s", resp.StatusCode, payload)
	}
	if st := h.PlanCacheStats(); st.Misses != 2 || st.Hits != 2 {
		t.Fatalf("degraded plan should now be cached; stats = %+v", st)
	}
	if got := scrapeMetric(t, ts, "topk_plan_cache_requests_total"); got != 4 {
		t.Errorf("plan-cache lookups in /metrics = %d, want 4", got)
	}
}

func TestServicePlanCacheConcurrentDedup(t *testing.T) {
	ts, h := startFaultService(t, nil)
	req := QueryRequest{SQL: "select name from db order by avg(rating, closeness) stop after 5"}
	const dupes = 8
	var wg sync.WaitGroup
	for i := 0; i < dupes; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, payload := postRaw(t, ts, "/query", req)
			if resp.StatusCode != http.StatusOK {
				t.Errorf("concurrent query: %d: %s", resp.StatusCode, payload)
			}
		}()
	}
	wg.Wait()
	// Whatever the interleaving — singleflight followers or late cache
	// hits — the stampede must have cost exactly one optimization.
	if st := h.PlanCacheStats(); st.Misses != 1 || st.Hits != dupes-1 {
		t.Errorf("stats after %d concurrent identical queries = %+v, want 1 miss / %d hits",
			dupes, st, dupes-1)
	}
	// One more run of the same query is a pure hit and must change nothing
	// about the estimator: evals come only from the single optimization.
	before := scrapeMetric(t, ts, "topk_estimator_evals_total")
	if resp, _ := postRaw(t, ts, "/query", req); resp.StatusCode != http.StatusOK {
		t.Fatal("repeat query failed")
	}
	if after := scrapeMetric(t, ts, "topk_estimator_evals_total"); after != before {
		t.Errorf("cache hit still ran the estimator: evals %d -> %d", before, after)
	}
}
