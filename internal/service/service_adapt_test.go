package service

// Service-level adaptivity: a handler configured with AdaptivePeriod and
// ContractGuard over heavily drifted data must re-plan mid-query, surface
// the re-plan events through ?trace=1 and /metrics, and keep the guard
// silent — drift is honest data, only its statistics are wrong.

import (
	"math"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/access"
	"repro/internal/data"
)

func driftedServiceDataset(t *testing.T, n, m int, seed int64, gamma float64) *data.Dataset {
	t.Helper()
	base, err := data.Generate(data.Uniform, n, m, seed)
	if err != nil {
		t.Fatal(err)
	}
	scores := make([][]float64, n)
	for u := 0; u < n; u++ {
		row := base.Scores(u)
		for i := range row {
			row[i] = math.Pow(row[i], gamma)
		}
		scores[u] = row
	}
	ds, err := data.New("drifted", scores)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestServiceAdaptiveReplanTraced(t *testing.T) {
	ds := driftedServiceDataset(t, 300, 3, 3, 6)
	h, err := NewHandler(Config{
		Dataset:        ds,
		Columns:        []string{"a", "b", "c"},
		Scenario:       access.Uniform(3, 1, 10),
		AdaptivePeriod: 16,
		ContractGuard:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(h)
	t.Cleanup(ts.Close)

	sql := "select name from db order by min(a, b, c) stop after 5"
	traced, code := postTo(t, ts, "/query?trace=1", QueryRequest{SQL: sql})
	if code != 200 {
		t.Fatalf("status %d", code)
	}
	if traced.Trace == nil {
		t.Fatal("?trace=1 returned no trace")
	}
	if len(traced.Trace.AdaptiveReplans) == 0 {
		t.Fatal("drifted data at AdaptivePeriod 16 must surface re-plan events in the trace")
	}
	for _, ev := range traced.Trace.AdaptiveReplans {
		if ev.Trigger == "" || ev.Divergence <= 0 {
			t.Errorf("re-plan event missing trigger or divergence: %+v", ev)
		}
	}
	// Honest (merely drifted) sources must not trip the contract guard.
	if len(traced.Trace.ContractViolations) != 0 {
		t.Fatalf("guard flagged honest drifted data: %v", traced.Trace.ContractViolations)
	}
	// The trace's per-predicate counts must still equal the billed ledger
	// even though the plan was swapped mid-flight.
	for i := range traced.SortedAccesses {
		st, rt := 0, 0
		if i < len(traced.Trace.SortedAccesses) {
			st = traced.Trace.SortedAccesses[i]
		}
		if i < len(traced.Trace.RandomAccesses) {
			rt = traced.Trace.RandomAccesses[i]
		}
		if st != traced.SortedAccesses[i] || rt != traced.RandomAccesses[i] {
			t.Errorf("pred %d: trace (%d,%d) vs ledger (%d,%d)",
				i, st, rt, traced.SortedAccesses[i], traced.RandomAccesses[i])
		}
	}
	// The re-plan also lands on the metrics endpoint.
	metrics := scrapeMetrics(t, ts)
	if !strings.Contains(metrics, `topk_replan_total{trigger="divergence"}`) {
		t.Error("metrics missing topk_replan_total{trigger=\"divergence\"}")
	}
}
