package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	topk "repro"
	"repro/internal/access"
	"repro/internal/data"
	"repro/internal/obs"
)

// startObsService builds a service with observability knobs under test
// control and returns the handler alongside the test server.
func startObsService(t *testing.T, mutate func(*Config)) (*httptest.Server, *Handler) {
	t.Helper()
	bench, _, err := data.Restaurants(150, 3)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Dataset:  bench.Dataset,
		Columns:  bench.PredicateNames,
		Scenario: access.Uniform(2, 1, 2),
	}
	if mutate != nil {
		mutate(&cfg)
	}
	h, err := NewHandler(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(h)
	t.Cleanup(ts.Close)
	return ts, h
}

func scrapeMetrics(t *testing.T, ts *httptest.Server) string {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("content type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

func postTo(t *testing.T, ts *httptest.Server, path string, req QueryRequest) (*QueryResponse, int) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Post(ts.URL+path, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var qr QueryResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
			t.Fatal(err)
		}
	}
	return &qr, resp.StatusCode
}

// TestServiceMetricsReflectQueries checks that /metrics is a faithful view
// of the traffic just served: query status counters, engine access
// counters, and the plan-cache hit/miss split.
func TestServiceMetricsReflectQueries(t *testing.T) {
	ts, _ := startObsService(t, nil)
	sql := "select name from db order by min(rating, closeness) stop after 5"

	if _, code := postTo(t, ts, "/query", QueryRequest{SQL: sql}); code != http.StatusOK {
		t.Fatalf("query status %d", code)
	}
	out := scrapeMetrics(t, ts)
	for _, line := range []string{
		`topk_queries_total{status="ok"} 1`,
		`topk_plan_cache_requests_total{result="miss"} 1`,
		`topk_plan_cache_requests_total{result="hit"} 0`,
	} {
		if !strings.Contains(out, line) {
			t.Errorf("after first query, missing %q in:\n%s", line, out)
		}
	}
	if !strings.Contains(out, `topk_accesses_total{kind="sorted"}`) ||
		strings.Contains(out, `topk_accesses_total{kind="sorted"} 0`) {
		t.Error("engine sorted accesses not reflected in /metrics")
	}
	if !strings.Contains(out, "topk_query_seconds_count 1") {
		t.Error("query latency histogram missing the run")
	}

	// The repeat hits the plan cache; a broken query bumps the error count.
	if _, code := postTo(t, ts, "/query", QueryRequest{SQL: sql}); code != http.StatusOK {
		t.Fatal("repeat query failed")
	}
	if _, code := postTo(t, ts, "/query", QueryRequest{SQL: "not sql"}); code == http.StatusOK {
		t.Fatal("malformed SQL should fail")
	}
	out = scrapeMetrics(t, ts)
	for _, line := range []string{
		`topk_queries_total{status="ok"} 2`,
		`topk_queries_total{status="error"} 1`,
		`topk_plan_cache_requests_total{result="hit"} 1`,
	} {
		if !strings.Contains(out, line) {
			t.Errorf("after repeat+error, missing %q in:\n%s", line, out)
		}
	}
}

// TestServiceTraceParam checks the ?trace=1 contract: a trace rides along
// with the response, conserving the response's own access counts, and its
// absence is the default.
func TestServiceTraceParam(t *testing.T) {
	ts, _ := startObsService(t, nil)
	sql := "select name from db order by min(rating, closeness) stop after 5"

	plain, code := postTo(t, ts, "/query", QueryRequest{SQL: sql})
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if plain.Trace != nil {
		t.Error("untraced query carried a trace")
	}

	traced, code := postTo(t, ts, "/query?trace=1", QueryRequest{SQL: sql})
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if traced.Trace == nil {
		t.Fatal("?trace=1 returned no trace")
	}
	for i := range traced.SortedAccesses {
		var got int
		if i < len(traced.Trace.SortedAccesses) {
			got = traced.Trace.SortedAccesses[i]
		}
		if got != traced.SortedAccesses[i] {
			t.Errorf("trace sorted[%d] = %d, response ledger %d", i, got, traced.SortedAccesses[i])
		}
	}
	phases := make(map[string]bool)
	for _, p := range traced.Trace.Phases {
		phases[string(p.Phase)] = true
	}
	for _, want := range []string{"parse", "plan", "execute"} {
		if !phases[want] {
			t.Errorf("trace phases %v missing %q", traced.Trace.Phases, want)
		}
	}
	if traced.Trace.PlanCacheHit == nil || !*traced.Trace.PlanCacheHit {
		t.Errorf("second identical query should report a plan-cache hit, got %v", traced.Trace.PlanCacheHit)
	}
}

// flakyBackend is a topk.Backend whose accesses fail when down.
type flakyBackend struct {
	inner topk.Backend
	down  bool
}

func (f *flakyBackend) N() int { return f.inner.N() }
func (f *flakyBackend) M() int { return f.inner.M() }
func (f *flakyBackend) Sorted(ctx context.Context, pred, rank int) (int, float64, error) {
	if f.down {
		return 0, 0, fmt.Errorf("source unreachable")
	}
	return f.inner.Sorted(ctx, pred, rank)
}
func (f *flakyBackend) Random(ctx context.Context, pred, obj int) (float64, error) {
	if f.down {
		return 0, fmt.Errorf("source unreachable")
	}
	return f.inner.Random(ctx, pred, obj)
}

// TestServiceHealthReadiness checks both faces of /healthz: 200 while the
// probe backend answers, 503 the moment it stops.
func TestServiceHealthReadiness(t *testing.T) {
	bench, _, err := data.Restaurants(50, 3)
	if err != nil {
		t.Fatal(err)
	}
	fb := &flakyBackend{inner: topk.DataBackend(bench.Dataset)}
	ts, _ := startObsService(t, func(cfg *Config) {
		cfg.HealthBackend = fb
		cfg.HealthTimeout = 200 * time.Millisecond
	})

	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthy probe: %v %v", resp.StatusCode, err)
	}
	resp.Body.Close()

	fb.down = true
	resp, err = ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("down probe status = %d, want 503", resp.StatusCode)
	}
	var ep errPayload
	if err := json.NewDecoder(resp.Body).Decode(&ep); err != nil || !strings.Contains(ep.Error, "unreachable") {
		t.Errorf("503 body should name the failure: %+v (%v)", ep, err)
	}
}

// TestServicePprofGating checks that the profiling endpoints exist exactly
// when the operator opted in.
func TestServicePprofGating(t *testing.T) {
	off, _ := startObsService(t, nil)
	resp, err := off.Client().Get(off.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("pprof off: status %d, want 404", resp.StatusCode)
	}

	on, _ := startObsService(t, func(cfg *Config) { cfg.EnablePprof = true })
	resp, err = on.Client().Get(on.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "goroutine") {
		t.Errorf("pprof on: status %d body %.80q", resp.StatusCode, body)
	}
}

// TestServiceSlowQueryLog checks that queries beyond the threshold are
// logged and counted; with a 1ns threshold every query qualifies.
func TestServiceSlowQueryLog(t *testing.T) {
	var buf bytes.Buffer
	var mu sync.Mutex
	logger := log.New(lockedWriter{w: &buf, mu: &mu}, "", 0)
	ts, h := startObsService(t, func(cfg *Config) {
		cfg.SlowQueryThreshold = time.Nanosecond
		cfg.Logger = logger
	})
	if _, code := postTo(t, ts, "/query", QueryRequest{
		SQL: "select name from db order by min(rating, closeness) stop after 3",
	}); code != http.StatusOK {
		t.Fatalf("query status %d", code)
	}
	mu.Lock()
	logged := buf.String()
	mu.Unlock()
	if !strings.Contains(logged, "slow query") || !strings.Contains(logged, "stop after 3") {
		t.Errorf("slow-query log = %q", logged)
	}
	if got := h.reg.Counter("topk_slow_queries_total", "").Value(); got != 1 {
		t.Errorf("topk_slow_queries_total = %d, want 1", got)
	}
}

type lockedWriter struct {
	w  io.Writer
	mu *sync.Mutex
}

func (l lockedWriter) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.w.Write(p)
}

// TestServiceConcurrentQueriesAndScrapes hammers /query (mixed cache hits
// and misses across two statements) while /metrics scrapes race along.
// Under -race this is the proof that the plan cache, the registry, and the
// shared metrics observer tolerate concurrent requests; afterwards the
// counters must account for every request exactly.
func TestServiceConcurrentQueriesAndScrapes(t *testing.T) {
	ts, h := startObsService(t, nil)
	sqls := []string{
		"select name from db order by min(rating, closeness) stop after 5",
		"select name from db order by avg(rating, closeness) stop after 3",
	}
	const workers = 6
	const perWorker = 5
	var wg sync.WaitGroup
	errs := make(chan error, workers*perWorker)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				body, _ := json.Marshal(QueryRequest{SQL: sqls[(w+i)%len(sqls)]})
				resp, err := ts.Client().Post(ts.URL+"/query", "application/json", bytes.NewReader(body))
				if err != nil {
					errs <- err
					continue
				}
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("status %d", resp.StatusCode)
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()

				mresp, err := ts.Client().Get(ts.URL + "/metrics")
				if err != nil {
					errs <- err
					continue
				}
				_, _ = io.Copy(io.Discard, mresp.Body)
				mresp.Body.Close()
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	total := workers * perWorker
	if got := h.reg.Counter("topk_queries_total", "", obs.L("status", "ok")).Value(); got != int64(total) {
		t.Errorf("topk_queries_total ok = %d, want %d", got, total)
	}
	out := scrapeMetrics(t, ts)
	if !strings.Contains(out, fmt.Sprintf("topk_query_seconds_count %d", total)) {
		t.Errorf("latency histogram lost observations:\n%s", out)
	}
	// Every "opt" query performs exactly one plan-cache lookup; racing
	// first-misses on the same statement mean the hit count is only bounded,
	// but hits+misses must account for every request.
	hits := h.reg.Counter("topk_plan_cache_requests_total", "", obs.L("result", "hit")).Value()
	misses := h.reg.Counter("topk_plan_cache_requests_total", "", obs.L("result", "miss")).Value()
	if hits+misses != int64(total) {
		t.Errorf("plan cache lookups = %d hits + %d misses, want %d total", hits, misses, total)
	}
	if hits < 1 || misses < int64(len(sqls)) {
		t.Errorf("plan cache split implausible: %d hits / %d misses", hits, misses)
	}
}
