package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/access"
	"repro/internal/data"
)

// startCursorService boots a service with the given config defaults filled
// in (restaurants dataset, uniform scenario) and tears the cursor
// subsystem down with the server.
func startCursorService(t *testing.T, cfg Config) (*httptest.Server, *Handler) {
	t.Helper()
	bench, _, err := data.Restaurants(200, 5)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Dataset == nil {
		cfg.Dataset = bench.Dataset
		cfg.Columns = bench.PredicateNames
	}
	if cfg.Scenario.Preds == nil {
		cfg.Scenario = access.Uniform(2, 1, 2)
	}
	h, err := NewHandler(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(h)
	t.Cleanup(func() {
		ts.Close()
		h.Close()
	})
	return ts, h
}

func postNext(t *testing.T, ts *httptest.Server, path string, req NextRequest) (*QueryResponse, int) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Post(ts.URL+path, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var ep errPayload
		_ = json.NewDecoder(resp.Body).Decode(&ep)
		return &QueryResponse{Query: ep.Error}, resp.StatusCode
	}
	var qr QueryResponse
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		t.Fatal(err)
	}
	return &qr, resp.StatusCode
}

const cursorSQL = "select name from db order by min(rating, closeness) stop after 4"

// fixedCursorReq pins the NC configuration so paged and one-shot runs use
// the identical plan regardless of k — the precondition for comparing them.
func fixedCursorReq(sql string) QueryRequest {
	return QueryRequest{SQL: sql, Algorithm: "nc", H: []float64{0.5, 0.5}, Cursor: true}
}

// TestServiceCursorPagingMatchesOneShot deepens a server-side cursor page
// by page and checks the paged answers and the cumulative bill against a
// one-shot query of the total depth.
func TestServiceCursorPagingMatchesOneShot(t *testing.T) {
	ts, h := startCursorService(t, Config{})

	first, _ := postQuery(t, ts, fixedCursorReq(cursorSQL))
	if first.Cursor == "" || first.Page != 1 {
		t.Fatalf("open response missing cursor fields: %+v", first)
	}
	if len(first.Items) != 4 {
		t.Fatalf("first page has %d items, want the query's stop-after 4", len(first.Items))
	}
	items := append([]QueryItem(nil), first.Items...)
	last := first
	for page := 2; page <= 3; page++ {
		qr, code := postNext(t, ts, "/query/next", NextRequest{Cursor: first.Cursor, K: 4})
		if code != http.StatusOK {
			t.Fatalf("page %d: status %d (%s)", page, code, qr.Query)
		}
		if qr.Page != page || qr.Cursor != first.Cursor {
			t.Fatalf("page %d response says page %d cursor %q", page, qr.Page, qr.Cursor)
		}
		if qr.Cost < last.Cost {
			t.Fatalf("cumulative cost went down across pages: %g then %g", last.Cost, qr.Cost)
		}
		items = append(items, qr.Items...)
		last = qr
	}

	oneShot, _ := postQuery(t, ts, QueryRequest{
		SQL:       "select name from db order by min(rating, closeness) stop after 12",
		Algorithm: "nc", H: []float64{0.5, 0.5},
	})
	if len(items) != len(oneShot.Items) {
		t.Fatalf("paged total %d items, one-shot %d", len(items), len(oneShot.Items))
	}
	for i := range items {
		if items[i] != oneShot.Items[i] {
			t.Errorf("item %d differs: paged %+v one-shot %+v", i, items[i], oneShot.Items[i])
		}
	}
	if last.Cost != oneShot.Cost {
		t.Errorf("cumulative paged cost %g, one-shot cost %g", last.Cost, oneShot.Cost)
	}
	for i := range oneShot.SortedAccesses {
		if last.SortedAccesses[i] != oneShot.SortedAccesses[i] || last.RandomAccesses[i] != oneShot.RandomAccesses[i] {
			t.Errorf("pred %d: paged accesses (%d,%d), one-shot (%d,%d)", i,
				last.SortedAccesses[i], last.RandomAccesses[i],
				oneShot.SortedAccesses[i], oneShot.RandomAccesses[i])
		}
	}

	// A k=0 poll is free metadata: no new items, bill unchanged.
	poll, _ := postNext(t, ts, "/query/next", NextRequest{Cursor: first.Cursor})
	if len(poll.Items) != 0 || poll.Cost != last.Cost {
		t.Errorf("k=0 poll changed state: %+v", poll)
	}

	if got := h.cursorPages.Value(); got < 4 {
		t.Errorf("topk_cursor_pages_total = %d, want >= 4", got)
	}
	if h.OpenCursors() != 1 || h.cursorOpenG.Value() != 1 {
		t.Errorf("open cursors: registry %d gauge %d, want 1", h.OpenCursors(), h.cursorOpenG.Value())
	}
}

// TestServiceCursorScoreRange pages by score threshold and checks the tau
// page against ordinal paging on a parallel cursor.
func TestServiceCursorScoreRange(t *testing.T) {
	ts, _ := startCursorService(t, Config{})

	ord, _ := postQuery(t, ts, fixedCursorReq(cursorSQL))
	more, code := postNext(t, ts, "/query/next", NextRequest{Cursor: ord.Cursor, K: 6})
	if code != http.StatusOK {
		t.Fatalf("ordinal page: %d (%s)", code, more.Query)
	}
	all := append(append([]QueryItem(nil), ord.Items...), more.Items...)
	tau := all[len(all)-1].Score

	rng, _ := postQuery(t, ts, fixedCursorReq(cursorSQL))
	page, code := postNext(t, ts, "/query/next", NextRequest{Cursor: rng.Cursor, Tau: &tau})
	if code != http.StatusOK {
		t.Fatalf("score-range page: %d (%s)", code, page.Query)
	}
	got := append(append([]QueryItem(nil), rng.Items...), page.Items...)
	if len(got) != len(all) {
		t.Fatalf("score-range reached %d items for tau=%g, ordinal %d", len(got), tau, len(all))
	}
	for i := range got {
		if got[i] != all[i] {
			t.Errorf("item %d differs: range %+v ordinal %+v", i, got[i], all[i])
		}
		if got[i].Score < tau {
			t.Errorf("score-range emitted %+v below tau %g", got[i], tau)
		}
	}

	// Baseline cursors are ordinal-only: tau on a TA cursor is a 400.
	ta, _ := postQuery(t, ts, QueryRequest{SQL: cursorSQL, Algorithm: "TA", Cursor: true})
	if ta.Cursor == "" {
		t.Fatalf("TA cursor did not open: %+v", ta)
	}
	if _, code := postNext(t, ts, "/query/next", NextRequest{Cursor: ta.Cursor, Tau: &tau}); code != http.StatusBadRequest {
		t.Errorf("tau on a TA cursor: status %d, want 400", code)
	}
	if qr, code := postNext(t, ts, "/query/next", NextRequest{Cursor: ta.Cursor, K: 3}); code != http.StatusOK || len(qr.Items) != 3 {
		t.Errorf("TA ordinal page after refused tau: %d %+v", code, qr)
	}
}

// TestServiceCursorValidation covers the request-shape failure modes.
func TestServiceCursorValidation(t *testing.T) {
	ts, _ := startCursorService(t, Config{})

	bad, resp := postQuery(t, ts, QueryRequest{SQL: cursorSQL, Cursor: true, Parallel: 4})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("cursor+parallel: %d (%s)", resp.StatusCode, bad.Query)
	}
	if _, resp := postQuery(t, ts, QueryRequest{SQL: cursorSQL, Cursor: true, Algorithm: "FA"}); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("cursor+FA: %d, want 400", resp.StatusCode)
	}
	if _, code := postNext(t, ts, "/query/next", NextRequest{Cursor: "nope", K: 1}); code != http.StatusNotFound {
		t.Errorf("unknown cursor: %d, want 404", code)
	}
	if _, code := postNext(t, ts, "/query/next", NextRequest{K: 1}); code != http.StatusBadRequest {
		t.Errorf("missing cursor id: %d, want 400", code)
	}
	open, _ := postQuery(t, ts, fixedCursorReq(cursorSQL))
	if _, code := postNext(t, ts, "/query/next", NextRequest{Cursor: open.Cursor, K: -1}); code != http.StatusBadRequest {
		t.Errorf("negative k: %d, want 400", code)
	}
	r, err := ts.Client().Get(ts.URL + "/query/next")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /query/next: %d, want 405", r.StatusCode)
	}
}

// TestServiceCursorCloseAndExpiry exercises the explicit close, the TTL
// sweep, and the close/expire accounting.
func TestServiceCursorCloseAndExpiry(t *testing.T) {
	ts, h := startCursorService(t, Config{})

	a, _ := postQuery(t, ts, fixedCursorReq(cursorSQL))
	b, _ := postQuery(t, ts, fixedCursorReq(cursorSQL))
	if h.OpenCursors() != 2 {
		t.Fatalf("open cursors = %d, want 2", h.OpenCursors())
	}

	ack, code := postNext(t, ts, "/query/next", NextRequest{Cursor: a.Cursor, Close: true})
	if code != http.StatusOK || !ack.Closed || ack.Cursor != a.Cursor {
		t.Fatalf("close ack: %d %+v", code, ack)
	}
	if _, code := postNext(t, ts, "/query/next", NextRequest{Cursor: a.Cursor, K: 1}); code != http.StatusNotFound {
		t.Errorf("page after close: %d, want 404", code)
	}

	// Deterministic sweep: pretend the TTL has elapsed.
	if n := h.expireIdle(time.Now().Add(h.cfg.CursorTTL + time.Second)); n != 1 {
		t.Fatalf("expireIdle reaped %d cursors, want 1", n)
	}
	if _, code := postNext(t, ts, "/query/next", NextRequest{Cursor: b.Cursor, K: 1}); code != http.StatusNotFound {
		t.Errorf("page after expiry: %d, want 404", code)
	}
	if h.OpenCursors() != 0 || h.cursorOpenG.Value() != 0 {
		t.Errorf("after teardown: registry %d gauge %d, want 0", h.OpenCursors(), h.cursorOpenG.Value())
	}
	if h.cursorClosed.Value() != 1 || h.cursorExpired.Value() != 1 {
		t.Errorf("closed=%d expired=%d, want 1 and 1", h.cursorClosed.Value(), h.cursorExpired.Value())
	}

	// A live reaper does the same without help: tiny TTL, fresh cursor.
	tsr, hr := startCursorService(t, Config{CursorTTL: 20 * time.Millisecond})
	c, _ := postQuery(t, tsr, fixedCursorReq(cursorSQL))
	deadline := time.Now().Add(2 * time.Second)
	for hr.OpenCursors() > 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if hr.OpenCursors() != 0 {
		t.Fatalf("reaper never expired cursor %s", c.Cursor)
	}
	if hr.cursorExpired.Value() != 1 {
		t.Errorf("reaper expired = %d, want 1", hr.cursorExpired.Value())
	}
}

// TestServiceCursorLimitAndShutdown checks the MaxCursors cap and that
// Handler.Close refuses new cursors while one-shot queries keep working.
func TestServiceCursorLimitAndShutdown(t *testing.T) {
	ts, h := startCursorService(t, Config{MaxCursors: 2})
	for i := 0; i < 2; i++ {
		if qr, resp := postQuery(t, ts, fixedCursorReq(cursorSQL)); resp.StatusCode != http.StatusOK {
			t.Fatalf("open %d: %d (%s)", i, resp.StatusCode, qr.Query)
		}
	}
	if _, resp := postQuery(t, ts, fixedCursorReq(cursorSQL)); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("open past cap: %d, want 503", resp.StatusCode)
	}

	h.Close()
	h.Close() // idempotent
	if h.OpenCursors() != 0 || h.cursorOpenG.Value() != 0 {
		t.Errorf("after Close: registry %d gauge %d", h.OpenCursors(), h.cursorOpenG.Value())
	}
	if _, resp := postQuery(t, ts, fixedCursorReq(cursorSQL)); resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("open after Close should 503")
	}
	if qr, resp := postQuery(t, ts, QueryRequest{SQL: cursorSQL}); resp.StatusCode != http.StatusOK || len(qr.Items) != 4 {
		t.Errorf("one-shot after Close: %d %+v", resp.StatusCode, qr)
	}
}

// TestServiceCursorTrace asks for ?trace=1 on a cursor page and checks the
// cumulative trace conserves the cumulative bill and carries the cursor
// identity block.
func TestServiceCursorTrace(t *testing.T) {
	ts, _ := startCursorService(t, Config{})
	open, _ := postQuery(t, ts, fixedCursorReq(cursorSQL))

	body, _ := json.Marshal(NextRequest{Cursor: open.Cursor, K: 4})
	resp, err := ts.Client().Post(ts.URL+"/query/next?trace=1", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var qr QueryResponse
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		t.Fatal(err)
	}
	if qr.Trace == nil || qr.Trace.Cursor == nil {
		t.Fatalf("traced page missing trace/cursor block: %+v", qr.Trace)
	}
	ct := qr.Trace.Cursor
	if ct.ID != open.Cursor || ct.Page != 2 || ct.Emitted != 8 {
		t.Errorf("cursor trace block = %+v, want id %s page 2 emitted 8", ct, open.Cursor)
	}
	for i := range qr.SortedAccesses {
		if qr.Trace.SortedAccesses[i] != qr.SortedAccesses[i] {
			t.Errorf("trace sorted[%d] = %d, response bill %d", i, qr.Trace.SortedAccesses[i], qr.SortedAccesses[i])
		}
	}
	if qr.Trace.CostUnits != qr.Cost {
		t.Errorf("trace cost %g, response cost %g", qr.Trace.CostUnits, qr.Cost)
	}
}

// TestServiceCursorExpiryUnderLoad races pagination against the TTL sweep:
// clients keep deepening cursors while the reaper force-expires them.
// Every request must resolve to a page or a clean 404 — never a 5xx, a
// panic, or a double-counted cursor.
func TestServiceCursorExpiryUnderLoad(t *testing.T) {
	ts, h := startCursorService(t, Config{CursorTTL: time.Hour})

	const clients = 8
	ids := make([]string, clients)
	for i := range ids {
		qr, resp := postQuery(t, ts, fixedCursorReq(cursorSQL))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("open %d: %d", i, resp.StatusCode)
		}
		ids[i] = qr.Cursor
	}

	var wg sync.WaitGroup
	errs := make(chan error, clients*8+1)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			for p := 0; p < 8; p++ {
				body, _ := json.Marshal(NextRequest{Cursor: id, K: 2})
				resp, err := ts.Client().Post(ts.URL+"/query/next", "application/json", bytes.NewReader(body))
				if err != nil {
					errs <- err
					return
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusNotFound {
					errs <- fmt.Errorf("cursor %s page %d: status %d", id, p, resp.StatusCode)
					return
				}
				if resp.StatusCode == http.StatusNotFound {
					return // expired under us: the documented outcome
				}
			}
		}(ids[i])
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for s := 0; s < 20; s++ {
			h.expireIdle(time.Now().Add(2 * time.Hour))
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// Every opened cursor is accounted for exactly once.
	open := int64(h.OpenCursors())
	if got := h.cursorClosed.Value() + h.cursorExpired.Value() + open; got != h.cursorOpened.Value() {
		t.Errorf("cursor accounting: closed %d + expired %d + open %d != opened %d",
			h.cursorClosed.Value(), h.cursorExpired.Value(), open, h.cursorOpened.Value())
	}
	if h.cursorOpenG.Value() != open {
		t.Errorf("gauge %d disagrees with registry %d", h.cursorOpenG.Value(), open)
	}
}

// TestServiceCursorOpenExpireCycles is the reaper-path pool guard: ten
// thousand cursors opened and force-expired through one handler must leave
// the registry empty, the accounting exact, no goroutine pile-up, and the
// engine pool healthy enough that one more query works.
func TestServiceCursorOpenExpireCycles(t *testing.T) {
	if testing.Short() {
		t.Skip("open/expire churn is a long steady-state test")
	}
	ds, err := data.Generate(data.Uniform, 100, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	h, err := NewHandler(Config{
		Dataset:  ds,
		Columns:  []string{"p1", "p2"},
		Scenario: access.Uniform(2, 1, 2),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	req := QueryRequest{
		SQL:       "select name from db order by min(p1, p2) stop after 2",
		Algorithm: "nc", H: []float64{0.5, 0.5},
		Cursor: true,
	}
	goroutinesBefore := runtime.NumGoroutine()
	const cycles = 10_000
	for i := 0; i < cycles; i++ {
		if _, status, err := h.openCursor(req, false); err != nil {
			t.Fatalf("cycle %d: open failed (%d): %v", i, status, err)
		}
		// Expire in batches so the registry sometimes holds several
		// cursors, exercising the sweep's selection too.
		if i%8 == 7 {
			h.expireIdle(time.Now().Add(h.cfg.CursorTTL + time.Second))
		}
	}
	h.expireIdle(time.Now().Add(h.cfg.CursorTTL + time.Second))

	if h.OpenCursors() != 0 || h.cursorOpenG.Value() != 0 {
		t.Errorf("after churn: registry %d gauge %d, want 0", h.OpenCursors(), h.cursorOpenG.Value())
	}
	if opened, expired := h.cursorOpened.Value(), h.cursorExpired.Value(); opened != int64(cycles) || expired != opened {
		t.Errorf("accounting after churn: opened %d expired %d", opened, expired)
	}
	// The reaper is one goroutine, started once — churn must not have
	// spawned more (generous slack for runtime/test goroutines).
	if after := runtime.NumGoroutine(); after > goroutinesBefore+3 {
		t.Errorf("goroutines grew %d -> %d across churn", goroutinesBefore, after)
	}
	if _, status, err := h.openCursor(req, false); err != nil || status != 200 {
		t.Errorf("handler unhealthy after churn: %d %v", status, err)
	}
}
