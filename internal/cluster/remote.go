package cluster

import (
	"context"
	"net/http"

	"repro/internal/websim"
)

// RemoteShard speaks the websim shard protocol to one topkd -shard node:
// a websim.Client whose routes all point at the shard's base URL, plus
// the Shard-contract surface (LocalN, paged sorted refills).
type RemoteShard struct {
	*websim.Client
}

// DialShard connects to a shard node serving m predicates at baseURL,
// validating its /meta. The node must run in shard mode (topkd -shard),
// so its sorted streams carry global object ids and its meta reports the
// universe size alongside the local slice size; a whole-universe node
// degenerates to a 1-shard cluster. Client options (retries, attempt
// timeouts, observers) pass through to the underlying websim client.
func DialShard(ctx context.Context, baseURL string, m int, httpc *http.Client, opts ...websim.ClientOption) (*RemoteShard, error) {
	routes := make([]websim.Route, m)
	for i := range routes {
		routes[i] = websim.Route{BaseURL: baseURL, Pred: i}
	}
	c, err := websim.NewClient(ctx, httpc, routes, opts...)
	if err != nil {
		return nil, err
	}
	return &RemoteShard{Client: c}, nil
}

// SortedPage implements PageBackend: one shard round trip per cursor
// refill instead of one per entry.
func (s *RemoteShard) SortedPage(ctx context.Context, pred, rank, count int) ([]Entry, error) {
	page, err := s.Client.SortedPage(ctx, pred, rank, count)
	if err != nil {
		return nil, err
	}
	out := make([]Entry, len(page))
	for i, e := range page {
		out[i] = Entry{Obj: e.Obj, Score: e.Score}
	}
	return out, nil
}

var (
	_ Shard        = (*RemoteShard)(nil)
	_ PageBackend  = (*RemoteShard)(nil)
	_ batchBackend = (*RemoteShard)(nil)
)
