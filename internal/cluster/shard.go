package cluster

import (
	"context"
	"fmt"

	"repro/internal/access"
	"repro/internal/data"
)

// Entry is one element of a shard's descending sorted stream, in global
// object ids.
type Entry struct {
	Obj   int
	Score float64
}

// Shard is the coordinator-facing contract of one shard node. It is an
// access.Backend whose object ids are *global* — N() returns the full
// cluster's object count, Sorted returns global ids, Random and
// BatchRandom accept them — while Sorted's rank walks the shard's
// *local* descending list, of LocalN() entries. The coordinator owns the
// translation between local ranks and global ranks (the k-way merge);
// shards only ever serve their own slice.
type Shard interface {
	access.Backend
	// LocalN returns how many objects this shard owns: the length of each
	// of its per-predicate sorted lists.
	LocalN() int
}

// PageBackend is the optional capability a shard may advertise to serve
// one prefetch page — count consecutive entries of a predicate's local
// descending list starting at rank — in a single round trip. Shards
// without it (e.g. a fault-injector-wrapped shard) are paged entry by
// entry through Sorted.
type PageBackend interface {
	SortedPage(ctx context.Context, pred, rank, count int) ([]Entry, error)
}

// ShardData is one shard's slice of a partitioned dataset: the local
// dataset re-indexed to local ids 0..LocalN-1 plus the mapping back to
// global ids. Local ids are assigned in increasing global-id order, so
// the local datasets' tie-break (higher local id first) agrees with the
// global convention (higher OID first) — the property that makes the
// coordinator's merge byte-identical to a single-node sorted list.
type ShardData struct {
	// Index is this shard's position in the cluster.
	Index int
	// Local is the shard's slice as a standalone dataset in local ids
	// (nil when the shard owns no objects).
	Local *data.Dataset
	// Global maps local id -> global id, ascending.
	Global []int

	toLocal []int32 // global id -> local id, -1 when not owned
	globalN int
	m       int
}

// Partition splits the dataset across the given number of shards by
// consistent hashing on object id. Every object lands on exactly one
// shard; the union of the returned slices is the dataset.
func Partition(ds *data.Dataset, shards int) ([]*ShardData, error) {
	ring, err := NewRing(shards)
	if err != nil {
		return nil, err
	}
	n, m := ds.N(), ds.M()
	owned := make([][]int, shards)
	for u := 0; u < n; u++ {
		s := ring.Owner(u)
		owned[s] = append(owned[s], u) // ascending u: preserves the tie-break order
	}
	out := make([]*ShardData, shards)
	for s := 0; s < shards; s++ {
		sd := &ShardData{
			Index:   s,
			Global:  owned[s],
			toLocal: make([]int32, n),
			globalN: n,
			m:       m,
		}
		for i := range sd.toLocal {
			sd.toLocal[i] = -1
		}
		for local, global := range owned[s] {
			sd.toLocal[global] = int32(local)
		}
		if len(owned[s]) > 0 {
			rows := make([][]float64, len(owned[s]))
			for local, global := range owned[s] {
				rows[local] = ds.Scores(global)
			}
			sd.Local, err = data.New(fmt.Sprintf("%s/shard%d-of-%d", ds.Name(), s, shards), rows)
			if err != nil {
				return nil, err
			}
		}
		out[s] = sd
	}
	return out, nil
}

// LocalN returns how many objects the shard owns.
func (d *ShardData) LocalN() int { return len(d.Global) }

// GlobalN returns the full cluster's object count.
func (d *ShardData) GlobalN() int { return d.globalN }

// M returns the predicate count.
func (d *ShardData) M() int { return d.m }

// ToLocal maps a global object id to the shard's local id, or -1 when
// the shard does not own it.
func (d *ShardData) ToLocal(global int) int {
	if global < 0 || global >= len(d.toLocal) {
		return -1
	}
	return int(d.toLocal[global])
}

// LocalShard serves one ShardData in process: the Shard implementation
// behind in-process clusters (tests, benchmarks) and the data source a
// topkd -shard node exposes over HTTP.
type LocalShard struct {
	d *ShardData
}

// NewLocalShard wraps the partition slice as a Shard.
func NewLocalShard(d *ShardData) *LocalShard { return &LocalShard{d: d} }

// N returns the global object count.
func (s *LocalShard) N() int { return s.d.globalN }

// M returns the predicate count.
func (s *LocalShard) M() int { return s.d.m }

// LocalN returns how many objects this shard owns.
func (s *LocalShard) LocalN() int { return len(s.d.Global) }

// Sorted returns the rank-th entry of the shard's local descending list
// for pred, as a global object id.
func (s *LocalShard) Sorted(ctx context.Context, pred, rank int) (int, float64, error) {
	if err := ctx.Err(); err != nil {
		return 0, 0, err
	}
	if rank < 0 || rank >= len(s.d.Global) {
		return 0, 0, fmt.Errorf("cluster: shard %d rank %d beyond local list of %d", s.d.Index, rank, len(s.d.Global))
	}
	local, score := s.d.Local.SortedAt(pred, rank)
	return s.d.Global[local], score, nil
}

// SortedPage serves one prefetch page of the local descending list.
func (s *LocalShard) SortedPage(ctx context.Context, pred, rank, count int) ([]Entry, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if rank < 0 || count <= 0 || rank+count > len(s.d.Global) {
		return nil, fmt.Errorf("cluster: shard %d page [%d,%d) beyond local list of %d", s.d.Index, rank, rank+count, len(s.d.Global))
	}
	page := make([]Entry, count)
	for i := range page {
		local, score := s.d.Local.SortedAt(pred, rank+i)
		page[i] = Entry{Obj: s.d.Global[local], Score: score}
	}
	return page, nil
}

// Random returns the exact score of one owned object, addressed by its
// global id.
func (s *LocalShard) Random(ctx context.Context, pred, obj int) (float64, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	local := s.d.ToLocal(obj)
	if local < 0 {
		return 0, fmt.Errorf("cluster: shard %d does not own object %d", s.d.Index, obj)
	}
	return s.d.Local.Score(local, pred), nil
}

// BatchRandom resolves a batch of probes against the shard in one call.
func (s *LocalShard) BatchRandom(ctx context.Context, preds, objs []int) ([]float64, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if len(preds) != len(objs) {
		return nil, fmt.Errorf("cluster: batch has %d predicates but %d objects", len(preds), len(objs))
	}
	scores := make([]float64, len(preds))
	for i := range preds {
		local := s.d.ToLocal(objs[i])
		if local < 0 {
			return nil, fmt.Errorf("cluster: shard %d does not own object %d", s.d.Index, objs[i])
		}
		scores[i] = s.d.Local.Score(local, preds[i])
	}
	return scores, nil
}

// shardFacade adapts a plain access.Backend (e.g. a fault-injector
// wrapping a LocalShard) back into a Shard by restoring the LocalN the
// wrapper hid. The wrapped backend must keep the Shard contract: global
// ids, local ranks.
type shardFacade struct {
	access.Backend
	localN int
}

// WrapShard restores the Shard contract over a wrapped shard backend:
// chaos tests use it to splice fault.Wrap between a LocalShard and the
// coordinator. A wrapper without the PageBackend capability is paged
// entry by entry, so every prefetched entry passes the injector's gate.
func WrapShard(b access.Backend, localN int) Shard {
	return &shardFacade{Backend: b, localN: localN}
}

// LocalN returns the wrapped shard's local object count.
func (f *shardFacade) LocalN() int { return f.localN }
