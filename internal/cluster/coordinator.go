package cluster

import (
	"context"
	"errors"
	"fmt"
	"math"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// ErrShardDown marks an access refused because the owning shard is
// fenced: it failed FailureThreshold consecutive accesses and its
// cooldown has not elapsed. The error reaches the engine as an ordinary
// access failure, so the session's resilience machinery (breakers →
// scenario change → re-plan/degrade) absorbs a lost shard exactly like a
// lost source — the answer degrades honestly instead of silently
// dropping the shard's objects.
var ErrShardDown = errors.New("cluster: shard down")

// Options tunes a Coordinator.
type Options struct {
	// Prefetch is the page size of each per-shard sorted cursor: how many
	// entries one shard round trip pulls ahead of the merge frontier.
	// Defaults to 16.
	Prefetch int
	// FailureThreshold is how many consecutive failed accesses fence a
	// shard. Defaults to 3.
	FailureThreshold int
	// Cooldown is how long a fenced shard stays fenced before a single
	// half-open probe is let through. Defaults to 1s.
	Cooldown time.Duration
	// Metrics, when set, registers the topk_cluster_* series on the
	// registry and mirrors the coordinator's counters into them.
	Metrics *obs.Registry
}

// Coordinator presents a set of shards as one access.Backend in global
// object ids. Sorted accesses are served from per-predicate k-way merges
// of the shard streams (lazy: shard cursors advance only when the merge
// frontier consumes them, pulling Prefetch entries per round trip);
// random and batched probes route to the owning shard via the same ring
// that partitioned the data. All methods are safe for concurrent use.
type Coordinator struct {
	shards    []Shard
	ring      *Ring
	n, m      int
	prefetch  int
	threshold int
	cooldown  time.Duration
	now       func() time.Time

	health []shardHealth
	epoch  atomic.Uint64
	up     atomic.Int64

	merges []mergeState

	stats   stats
	metrics *clusterMetrics
}

// shardHealth is one shard's failure-fencing state. The healthy flag is
// the lock-free fast path: while it holds, allow and success recording
// are one atomic load each.
type shardHealth struct {
	healthy atomic.Bool

	mu        sync.Mutex
	fails     int
	down      bool
	downSince time.Time
	probing   bool
}

// mergeState is one predicate's scatter-gather merge: the globally
// sorted prefix materialized so far, one cursor head per shard, and the
// singleflight slot serializing frontier extension. merged is append-only
// under mu; heads are owned exclusively by the pending driver.
type mergeState struct {
	mu      sync.Mutex
	merged  []Entry
	heads   []headState
	pending *mergeFetch
	bound   atomic.Uint64 // float64 bits of the unseen-score bound
}

// headState is one shard's cursor into its local sorted stream for one
// predicate: the current prefetched page, the consume position within
// it, and the next local rank to fetch. last carries ℓ_i, the score of
// the most recently seen entry — the shard's contribution to the global
// unseen-score bound while its page is dry.
type headState struct {
	buf  []Entry
	pos  int
	next int
	last float64
	eof  bool
}

// mergeFetch is the singleflight handle a frontier-extending driver
// publishes; waiters block on done and re-check the merged prefix.
type mergeFetch struct {
	done chan struct{}
	err  error
}

// New builds a coordinator over the shards. Every shard must agree on
// the global object and predicate counts, and the local slices must add
// up to the whole dataset.
func New(shards []Shard, opts Options) (*Coordinator, error) {
	if len(shards) == 0 {
		return nil, errors.New("cluster: coordinator requires at least one shard")
	}
	ring, err := NewRing(len(shards))
	if err != nil {
		return nil, err
	}
	n, m := shards[0].N(), shards[0].M()
	sum := 0
	for i, sh := range shards {
		if sh.N() != n || sh.M() != m {
			return nil, fmt.Errorf("cluster: shard %d reports %dx%d, shard 0 reports %dx%d", i, sh.N(), sh.M(), n, m)
		}
		sum += sh.LocalN()
	}
	if sum != n {
		return nil, fmt.Errorf("cluster: shard slices hold %d objects, dataset has %d", sum, n)
	}
	c := &Coordinator{
		shards:    shards,
		ring:      ring,
		n:         n,
		m:         m,
		prefetch:  opts.Prefetch,
		threshold: opts.FailureThreshold,
		cooldown:  opts.Cooldown,
		now:       time.Now,
		health:    make([]shardHealth, len(shards)),
		merges:    make([]mergeState, m),
	}
	if c.prefetch <= 0 {
		c.prefetch = 16
	}
	if c.threshold <= 0 {
		c.threshold = 3
	}
	if c.cooldown <= 0 {
		c.cooldown = time.Second
	}
	for i := range c.health {
		c.health[i].healthy.Store(true)
	}
	c.up.Store(int64(len(shards)))
	one := math.Float64bits(1)
	for p := range c.merges {
		ms := &c.merges[p]
		ms.heads = make([]headState, len(shards))
		for i := range ms.heads {
			ms.heads[i].last = 1
		}
		ms.bound.Store(one)
	}
	if opts.Metrics != nil {
		c.metrics = newClusterMetrics(opts.Metrics)
		c.metrics.shardsUp.Set(int64(len(shards)))
	}
	return c, nil
}

// N returns the global object count.
func (c *Coordinator) N() int { return c.n }

// M returns the predicate count.
func (c *Coordinator) M() int { return c.m }

// Shards returns the shard count.
func (c *Coordinator) Shards() int { return len(c.shards) }

// Sorted implements access.Backend over the cluster: ranks inside the
// merged prefix are served without touching a shard (zero allocations);
// a rank at the frontier drives (or waits on) one scatter-gather round
// extending the merge, shared by every query needing it.
//
//topklint:hotpath
func (c *Coordinator) Sorted(ctx context.Context, pred, rank int) (int, float64, error) {
	if pred < 0 || pred >= c.m {
		return 0, 0, fmt.Errorf("cluster: predicate %d out of range [0,%d)", pred, c.m)
	}
	if rank < 0 || rank >= c.n {
		return 0, 0, fmt.Errorf("cluster: rank %d out of range [0,%d)", rank, c.n)
	}
	ms := &c.merges[pred]
	for {
		ms.mu.Lock()
		if rank < len(ms.merged) {
			e := ms.merged[rank]
			ms.mu.Unlock()
			c.count(&c.stats.mergeHits, metricClusterMergeHits)
			return e.Obj, e.Score, nil
		}
		if f := ms.pending; f != nil {
			ms.mu.Unlock()
			select {
			case <-f.done:
			case <-ctx.Done():
				return 0, 0, ctx.Err()
			}
			// Re-check: the fetch may have covered our rank, erred, or
			// stopped short — in the latter cases this caller drives its
			// own round and reports its own error.
			continue
		}
		//topklint:allow hotpathalloc frontier miss pays a shard round trip; one fetch handle is noise against it
		f := &mergeFetch{done: make(chan struct{})}
		ms.pending = f
		ms.mu.Unlock()
		err := c.advance(ctx, pred, ms, rank)
		ms.mu.Lock()
		ms.pending = nil
		ms.mu.Unlock()
		f.err = err
		close(f.done)
		if err != nil {
			return 0, 0, err
		}
	}
}

// advance extends pred's merged prefix through rank: refill dry shard
// cursors (concurrently when several are dry), then pop the maximum head
// into the prefix until the rank is covered. Only the singleflight
// driver runs here, so heads need no locking; merged is appended under
// the merge mutex because readers scan it concurrently.
func (c *Coordinator) advance(ctx context.Context, pred int, ms *mergeState, rank int) error {
	for {
		var needs []int
		for i := range ms.heads {
			h := &ms.heads[i]
			if !h.eof && h.pos == len(h.buf) {
				needs = append(needs, i)
			}
		}
		if len(needs) > 0 {
			if err := c.refill(ctx, pred, ms, needs); err != nil {
				return err
			}
		}
		done, err := c.pop(ms, rank)
		if err != nil || done {
			return err
		}
	}
}

// refill pulls the next page for each listed shard cursor, fanning out
// concurrently when more than one is dry.
func (c *Coordinator) refill(ctx context.Context, pred int, ms *mergeState, needs []int) error {
	if len(needs) == 1 {
		return c.fill(ctx, pred, ms, needs[0])
	}
	errs := make([]error, len(needs))
	var wg sync.WaitGroup
	for j, i := range needs {
		wg.Add(1)
		go func(j, i int) {
			defer wg.Done()
			errs[j] = c.fill(ctx, pred, ms, i)
		}(j, i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// fill fetches shard i's next page of pred's local sorted stream into
// its cursor head. Entries fetched before a mid-page failure are kept —
// they were paid for — and the cursor resumes after them on retry.
func (c *Coordinator) fill(ctx context.Context, pred int, ms *mergeState, i int) error {
	h := &ms.heads[i]
	sh := c.shards[i]
	remaining := sh.LocalN() - h.next
	if remaining <= 0 {
		h.eof = true
		return nil
	}
	if !c.allow(i) {
		return fmt.Errorf("%w: shard %d fenced, sorted stream for p%d unavailable", ErrShardDown, i, pred)
	}
	count := c.prefetch
	if count > remaining {
		count = remaining
	}
	if h.buf == nil {
		h.buf = make([]Entry, 0, c.prefetch)
	}
	h.buf = h.buf[:0]
	h.pos = 0
	var err error
	if pager, ok := sh.(PageBackend); ok {
		var page []Entry
		page, err = pager.SortedPage(ctx, pred, h.next, count)
		if err == nil {
			h.buf = append(h.buf, page...)
		}
	} else {
		// No page capability (e.g. a fault-injected shard): pull entry by
		// entry so every prefetched row passes the wrapper's gate.
		for j := 0; j < count; j++ {
			var obj int
			var score float64
			obj, score, err = sh.Sorted(ctx, pred, h.next+j)
			if err != nil {
				break
			}
			h.buf = append(h.buf, Entry{Obj: obj, Score: score})
		}
	}
	h.next += len(h.buf)
	if len(h.buf) > 0 {
		h.last = h.buf[len(h.buf)-1].Score
		c.count(&c.stats.shardFetches, metricClusterShardFetches)
		c.stats.fetchedEntries.Add(uint64(len(h.buf)))
		if c.metrics != nil {
			c.metrics.counters[metricClusterFetchedEntries].Add(int64(len(h.buf)))
		}
	}
	if err != nil {
		// Mirror the session's failAccess rule: a caller-cancelled access
		// says nothing about the shard's health.
		if ctx.Err() == nil {
			c.recordFailure(i)
		}
		return fmt.Errorf("cluster: shard %d sorted p%d rank %d: %w", i, pred, h.next, err)
	}
	if h.next == sh.LocalN() {
		h.eof = true
	}
	c.recordSuccess(i)
	return nil
}

// pop merges available heads into the prefix until rank is covered
// (done), a dry non-eof head blocks further popping (needs a refill), or
// every stream is exhausted.
//
//topklint:hotpath
func (c *Coordinator) pop(ms *mergeState, rank int) (bool, error) {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	defer c.updateBound(ms)
	for len(ms.merged) <= rank {
		best := -1
		for i := range ms.heads {
			h := &ms.heads[i]
			if h.pos < len(h.buf) {
				if best < 0 || entryLess(ms.heads[best].buf[ms.heads[best].pos], h.buf[h.pos]) {
					best = i
				}
			} else if !h.eof {
				// A dry head might hold the true maximum: stop and refill
				// before committing any more rows.
				return false, nil
			}
		}
		if best < 0 {
			return false, fmt.Errorf("cluster: merge exhausted at rank %d of %d", len(ms.merged), c.n)
		}
		h := &ms.heads[best]
		ms.merged = append(ms.merged, h.buf[h.pos])
		h.pos++
		c.count(&c.stats.mergedRows, metricClusterMergedRows)
	}
	return true, nil
}

// entryLess orders merge candidates: a loses to b when b scores higher,
// or ties with a higher global id — the same tie-break as a single-node
// sorted list, which is what makes the merged stream byte-identical.
//
//topklint:hotpath
func entryLess(a, b Entry) bool {
	if a.Score != b.Score {
		return a.Score < b.Score
	}
	return a.Obj < b.Obj
}

// updateBound recomputes pred's unseen-score bound: the maximum over
// shards of the next entry each could still contribute — the page head
// when one is buffered, else ℓ_i, the last score seen from that shard.
// Rows at ranks beyond the merged prefix are guaranteed to score at or
// below this bound, which is what lets NRA-style consumers stop before
// draining the shard streams.
//
//topklint:hotpath
func (c *Coordinator) updateBound(ms *mergeState) {
	bound := 0.0
	for i := range ms.heads {
		h := &ms.heads[i]
		switch {
		case h.pos < len(h.buf):
			if s := h.buf[h.pos].Score; s > bound {
				bound = s
			}
		case !h.eof:
			if h.last > bound {
				bound = h.last
			}
		}
	}
	ms.bound.Store(math.Float64bits(bound))
}

// UnseenBound returns the current global upper bound on any score not
// yet surfaced by pred's merged stream.
func (c *Coordinator) UnseenBound(pred int) float64 {
	return math.Float64frombits(c.merges[pred].bound.Load())
}

// Random implements access.Backend: the probe routes to the shard owning
// the object on the same ring that partitioned the data.
//
//topklint:hotpath
func (c *Coordinator) Random(ctx context.Context, pred, obj int) (float64, error) {
	if obj < 0 || obj >= c.n {
		return 0, fmt.Errorf("cluster: object %d out of range [0,%d)", obj, c.n)
	}
	i := c.ring.Owner(obj)
	if !c.allow(i) {
		return 0, fmt.Errorf("%w: shard %d fenced, probe for object %d refused", ErrShardDown, i, obj)
	}
	score, err := c.shards[i].Random(ctx, pred, obj)
	if err != nil {
		if ctx.Err() == nil {
			c.recordFailure(i)
		}
		return 0, fmt.Errorf("cluster: shard %d random p%d obj %d: %w", i, pred, obj, err)
	}
	c.recordSuccess(i)
	c.count(&c.stats.randomRouted, metricClusterRandomRouted)
	return score, nil
}

// batchBackend is the optional batch capability a shard may offer
// (structurally share.BatchBackend, redeclared to keep the dependency
// arrow pointing share → cluster only if ever needed, not both ways).
type batchBackend interface {
	BatchRandom(ctx context.Context, preds, objs []int) ([]float64, error)
}

// BatchRandom implements share.BatchBackend over the cluster: probes
// group by owning shard (group commit per shard), the groups fan out
// concurrently, and each shard serves its group in one round trip when
// it speaks batch, else probe by probe. The batch fails as a unit, like
// a single backend's BatchRandom.
func (c *Coordinator) BatchRandom(ctx context.Context, preds, objs []int) ([]float64, error) {
	if len(preds) != len(objs) {
		return nil, fmt.Errorf("cluster: batch has %d predicates but %d objects", len(preds), len(objs))
	}
	if len(preds) == 0 {
		return []float64{}, nil
	}
	owners := make([]int, len(objs))
	counts := make([]int, len(c.shards))
	for j, obj := range objs {
		if obj < 0 || obj >= c.n {
			return nil, fmt.Errorf("cluster: object %d out of range [0,%d)", obj, c.n)
		}
		o := c.ring.Owner(obj)
		owners[j] = o
		counts[o]++
	}
	out := make([]float64, len(preds))
	var wg sync.WaitGroup
	errs := make([]error, len(c.shards))
	groups := 0
	for s := range c.shards {
		if counts[s] == 0 {
			continue
		}
		groups++
		idx := make([]int, 0, counts[s])
		for j := range objs {
			if owners[j] == s {
				idx = append(idx, j)
			}
		}
		wg.Add(1)
		go func(s int, idx []int) {
			defer wg.Done()
			errs[s] = c.shardBatch(ctx, s, preds, objs, idx, out)
		}(s, idx)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	c.stats.batchGroups.Add(uint64(groups))
	if c.metrics != nil {
		c.metrics.counters[metricClusterBatchGroups].Add(int64(groups))
	}
	return out, nil
}

// shardBatch serves one shard's slice of a batched probe set, writing
// scores into the shared result at their original positions.
func (c *Coordinator) shardBatch(ctx context.Context, s int, preds, objs, idx []int, out []float64) error {
	if !c.allow(s) {
		return fmt.Errorf("%w: shard %d fenced, batched probes refused", ErrShardDown, s)
	}
	sh := c.shards[s]
	if bb, ok := sh.(batchBackend); ok {
		sp := make([]int, len(idx))
		so := make([]int, len(idx))
		for j, orig := range idx {
			sp[j] = preds[orig]
			so[j] = objs[orig]
		}
		scores, err := bb.BatchRandom(ctx, sp, so)
		if err != nil {
			if ctx.Err() == nil {
				c.recordFailure(s)
			}
			return fmt.Errorf("cluster: shard %d batch of %d probes: %w", s, len(idx), err)
		}
		for j, orig := range idx {
			out[orig] = scores[j]
		}
	} else {
		for _, orig := range idx {
			score, err := sh.Random(ctx, preds[orig], objs[orig])
			if err != nil {
				if ctx.Err() == nil {
					c.recordFailure(s)
				}
				return fmt.Errorf("cluster: shard %d random p%d obj %d: %w", s, preds[orig], objs[orig], err)
			}
			out[orig] = score
		}
	}
	c.recordSuccess(s)
	return nil
}

// allow reports whether shard i may be accessed: healthy shards always,
// fenced shards only as a single half-open probe after the cooldown.
func (c *Coordinator) allow(i int) bool {
	h := &c.health[i]
	if h.healthy.Load() {
		return true
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if !h.down {
		// Failures below the threshold never fence the shard.
		return true
	}
	if h.probing || c.now().Sub(h.downSince) < c.cooldown {
		return false
	}
	h.probing = true
	return true
}

// recordSuccess clears shard i's failure state; a fenced shard coming
// back bumps the membership epoch so cached plans re-key.
func (c *Coordinator) recordSuccess(i int) {
	h := &c.health[i]
	if h.healthy.Load() {
		return
	}
	h.mu.Lock()
	wasDown := h.down
	h.fails = 0
	h.down = false
	h.probing = false
	h.healthy.Store(true)
	h.mu.Unlock()
	if wasDown {
		c.epoch.Add(1)
		c.up.Add(1)
		if c.metrics != nil {
			c.metrics.shardsUp.Add(1)
		}
	}
}

// recordFailure counts one failed access against shard i, fencing it at
// the threshold (and restarting the cooldown while it stays fenced).
func (c *Coordinator) recordFailure(i int) {
	c.count(&c.stats.shardFailures, metricClusterShardFailures)
	h := &c.health[i]
	h.mu.Lock()
	h.healthy.Store(false)
	h.fails++
	h.probing = false
	wentDown := false
	if h.down {
		h.downSince = c.now()
	} else if h.fails >= c.threshold {
		h.down = true
		h.downSince = c.now()
		wentDown = true
	}
	h.mu.Unlock()
	if wentDown {
		c.epoch.Add(1)
		c.up.Add(-1)
		if c.metrics != nil {
			c.metrics.shardsUp.Add(-1)
		}
	}
}

// MembershipKey fingerprints the cluster's live membership: the epoch
// (bumped on every fence and recovery) plus the up/down mask. The
// optimizer folds it into the plan-cache key so plans chosen against one
// membership are never replayed against another.
func (c *Coordinator) MembershipKey() string {
	var mask strings.Builder
	for i := range c.health {
		h := &c.health[i]
		h.mu.Lock()
		down := h.down
		h.mu.Unlock()
		if down {
			mask.WriteByte('0')
		} else {
			mask.WriteByte('1')
		}
	}
	return fmt.Sprintf("e%d:%s", c.epoch.Load(), mask.String())
}
