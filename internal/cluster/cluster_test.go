package cluster

// In-package tests for the cluster layers: the ring's determinism and
// balance, Partition's exactly-once coverage, the shard contract
// (including its error surface), and the coordinator's merge, routing,
// fencing, and metrics machinery. The cross-package contracts — byte
// identity with a single-node backend across the Figure-2 matrix, chaos
// under shard loss — live in the root package's cluster_oracle_test.go
// and cluster_chaos_test.go; here the parts are tested against their own
// specifications, with access to unexported state (the fake clock behind
// cooldowns, the prefetch defaults) that black-box tests cannot reach.

import (
	"context"
	"errors"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/data"
	"repro/internal/obs"
	"repro/internal/websim"
)

func uniformDataset(tb testing.TB, n, m int, seed int64) *data.Dataset {
	tb.Helper()
	ds, err := data.Generate(data.Uniform, n, m, seed)
	if err != nil {
		tb.Fatal(err)
	}
	return ds
}

func partitioned(tb testing.TB, ds *data.Dataset, shards int) []*ShardData {
	tb.Helper()
	parts, err := Partition(ds, shards)
	if err != nil {
		tb.Fatal(err)
	}
	return parts
}

// localCluster builds an in-process coordinator over LocalShard members.
func localCluster(tb testing.TB, ds *data.Dataset, shards int, opts Options) *Coordinator {
	tb.Helper()
	members := make([]Shard, shards)
	for i, sd := range partitioned(tb, ds, shards) {
		members[i] = NewLocalShard(sd)
	}
	c, err := New(members, opts)
	if err != nil {
		tb.Fatal(err)
	}
	return c
}

// drainSorted walks pred's full merged stream and checks it against the
// dataset's own sorted list — object ids, scores, and tie-breaks.
func drainSorted(t *testing.T, c *Coordinator, ds *data.Dataset, pred int) {
	t.Helper()
	ctx := context.Background()
	for rank := 0; rank < ds.N(); rank++ {
		obj, score, err := c.Sorted(ctx, pred, rank)
		if err != nil {
			t.Fatalf("sorted p%d rank %d: %v", pred, rank, err)
		}
		wantObj, wantScore := ds.SortedAt(pred, rank)
		if obj != wantObj || score != wantScore {
			t.Fatalf("sorted p%d rank %d: got (%d, %g), dataset says (%d, %g)",
				pred, rank, obj, score, wantObj, wantScore)
		}
	}
}

func TestRing(t *testing.T) {
	if _, err := NewRing(0); err == nil {
		t.Error("NewRing(0) accepted")
	}
	if _, err := NewRing(-3); err == nil {
		t.Error("NewRing(-3) accepted")
	}

	r1, err := NewRing(5)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Shards() != 5 {
		t.Fatalf("Shards() = %d, want 5", r1.Shards())
	}
	// Ownership is a pure function of (object id, shard count): two rings
	// built independently must agree everywhere — that is what lets a
	// coordinator and a remote shard node route without coordination.
	r2, _ := NewRing(5)
	for u := 0; u < 10_000; u++ {
		o := r1.Owner(u)
		if o < 0 || o >= 5 {
			t.Fatalf("Owner(%d) = %d out of range", u, o)
		}
		if o != r2.Owner(u) {
			t.Fatalf("rings disagree on object %d: %d vs %d", u, o, r2.Owner(u))
		}
	}

	// 64 vnodes per shard keep the assignment near balanced; the exact
	// split is deterministic, the bounds document the invariant.
	const n, shards = 100_000, 4
	ring, _ := NewRing(shards)
	counts := make([]int, shards)
	for u := 0; u < n; u++ {
		counts[ring.Owner(u)]++
	}
	for s, got := range counts {
		frac := float64(got) / n
		if frac < 0.15 || frac > 0.35 {
			t.Errorf("shard %d owns %.1f%% of objects, fair share is 25%%", s, 100*frac)
		}
	}
}

func TestPartition(t *testing.T) {
	ds := uniformDataset(t, 200, 2, 7)
	if _, err := Partition(ds, 0); err == nil {
		t.Error("Partition with 0 shards accepted")
	}

	parts := partitioned(t, ds, 3)
	ring, _ := NewRing(3)
	seen := make([]int, ds.N())
	for s, sd := range parts {
		if sd.Index != s {
			t.Errorf("shard %d reports Index %d", s, sd.Index)
		}
		if sd.GlobalN() != ds.N() || sd.M() != ds.M() {
			t.Errorf("shard %d dims %dx%d, want %dx%d", s, sd.GlobalN(), sd.M(), ds.N(), ds.M())
		}
		if sd.LocalN() != len(sd.Global) {
			t.Errorf("shard %d LocalN %d != len(Global) %d", s, sd.LocalN(), len(sd.Global))
		}
		for local, global := range sd.Global {
			seen[global]++
			if ring.Owner(global) != s {
				t.Errorf("object %d on shard %d, ring says %d", global, s, ring.Owner(global))
			}
			if local > 0 && sd.Global[local-1] >= global {
				t.Errorf("shard %d Global not ascending at local %d", s, local)
			}
			if sd.ToLocal(global) != local {
				t.Errorf("ToLocal(%d) = %d, want %d", global, sd.ToLocal(global), local)
			}
			// The local dataset is the shard's slice of the global one.
			for p := 0; p < ds.M(); p++ {
				if sd.Local.Score(local, p) != ds.Score(global, p) {
					t.Errorf("shard %d local %d p%d: score %g, dataset %g",
						s, local, p, sd.Local.Score(local, p), ds.Score(global, p))
				}
			}
		}
		if sd.ToLocal(-1) != -1 || sd.ToLocal(ds.N()) != -1 {
			t.Error("ToLocal out of range must return -1")
		}
	}
	for u, c := range seen {
		if c != 1 {
			t.Errorf("object %d owned by %d shards, want exactly 1", u, c)
		}
	}
}

func TestLocalShard(t *testing.T) {
	ds := uniformDataset(t, 90, 2, 11)
	parts := partitioned(t, ds, 2)
	sh := NewLocalShard(parts[0])
	ctx := context.Background()

	if sh.N() != ds.N() || sh.M() != ds.M() || sh.LocalN() != parts[0].LocalN() {
		t.Fatalf("dims N=%d M=%d LocalN=%d", sh.N(), sh.M(), sh.LocalN())
	}

	// The local sorted list descends, serves global ids, and agrees with
	// the page endpoint entry for entry.
	page, err := sh.SortedPage(ctx, 0, 0, sh.LocalN())
	if err != nil {
		t.Fatal(err)
	}
	prev := 2.0
	for rank, e := range page {
		obj, score, err := sh.Sorted(ctx, 0, rank)
		if err != nil {
			t.Fatal(err)
		}
		if obj != e.Obj || score != e.Score {
			t.Fatalf("rank %d: Sorted (%d, %g) vs SortedPage (%d, %g)", rank, obj, score, e.Obj, e.Score)
		}
		if score > prev {
			t.Fatalf("rank %d breaks descending order: %g after %g", rank, score, prev)
		}
		prev = score
		if parts[0].ToLocal(obj) < 0 {
			t.Fatalf("rank %d serves object %d the shard does not own", rank, obj)
		}
		if score != ds.Score(obj, 0) {
			t.Fatalf("rank %d: score %g, dataset %g", rank, score, ds.Score(obj, 0))
		}
	}

	if _, _, err := sh.Sorted(ctx, 0, sh.LocalN()); err == nil {
		t.Error("Sorted beyond the local list accepted")
	}
	if _, _, err := sh.Sorted(ctx, 0, -1); err == nil {
		t.Error("Sorted at negative rank accepted")
	}
	if _, err := sh.SortedPage(ctx, 0, sh.LocalN()-1, 2); err == nil {
		t.Error("SortedPage past the local list accepted")
	}
	if _, err := sh.SortedPage(ctx, 0, 0, 0); err == nil {
		t.Error("SortedPage with zero count accepted")
	}

	owned := parts[0].Global[0]
	unowned := parts[1].Global[0]
	if got, err := sh.Random(ctx, 1, owned); err != nil || got != ds.Score(owned, 1) {
		t.Errorf("Random(%d) = (%g, %v), want %g", owned, got, err, ds.Score(owned, 1))
	}
	if _, err := sh.Random(ctx, 1, unowned); err == nil {
		t.Error("Random on an un-owned object accepted")
	}

	scores, err := sh.BatchRandom(ctx, []int{0, 1}, []int{owned, owned})
	if err != nil {
		t.Fatal(err)
	}
	if scores[0] != ds.Score(owned, 0) || scores[1] != ds.Score(owned, 1) {
		t.Errorf("BatchRandom = %v", scores)
	}
	if _, err := sh.BatchRandom(ctx, []int{0}, []int{owned, owned}); err == nil {
		t.Error("BatchRandom length mismatch accepted")
	}
	if _, err := sh.BatchRandom(ctx, []int{0}, []int{unowned}); err == nil {
		t.Error("BatchRandom on an un-owned object accepted")
	}

	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := sh.Sorted(cancelled, 0, 0); !errors.Is(err, context.Canceled) {
		t.Errorf("Sorted under cancelled ctx: %v", err)
	}
	if _, err := sh.SortedPage(cancelled, 0, 0, 1); !errors.Is(err, context.Canceled) {
		t.Errorf("SortedPage under cancelled ctx: %v", err)
	}
	if _, err := sh.Random(cancelled, 0, owned); !errors.Is(err, context.Canceled) {
		t.Errorf("Random under cancelled ctx: %v", err)
	}
	if _, err := sh.BatchRandom(cancelled, []int{0}, []int{owned}); !errors.Is(err, context.Canceled) {
		t.Errorf("BatchRandom under cancelled ctx: %v", err)
	}
}

func TestWrapShardFacade(t *testing.T) {
	ds := uniformDataset(t, 40, 2, 3)
	parts := partitioned(t, ds, 2)
	inner := NewLocalShard(parts[0])
	wrapped := WrapShard(inner, inner.LocalN())

	if wrapped.LocalN() != inner.LocalN() {
		t.Fatalf("facade LocalN %d, inner %d", wrapped.LocalN(), inner.LocalN())
	}
	obj, score, err := wrapped.Sorted(context.Background(), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if wObj, wScore, _ := inner.Sorted(context.Background(), 0, 0); obj != wObj || score != wScore {
		t.Fatalf("facade forwards (%d, %g), inner serves (%d, %g)", obj, score, wObj, wScore)
	}
	// The facade deliberately hides the wrapped value's page and batch
	// capabilities: a wrapper spliced between (a fault injector) must see
	// every entry, so the coordinator has to fall back to scalar access.
	if _, ok := wrapped.(PageBackend); ok {
		t.Error("facade leaks the PageBackend capability past the wrapper")
	}
	if _, ok := wrapped.(batchBackend); ok {
		t.Error("facade leaks the batch capability past the wrapper")
	}
}

// dimShard fakes a Shard's dimension surface for New's validation.
type dimShard struct{ n, m, localN int }

func (d dimShard) N() int      { return d.n }
func (d dimShard) M() int      { return d.m }
func (d dimShard) LocalN() int { return d.localN }
func (d dimShard) Sorted(context.Context, int, int) (int, float64, error) {
	return 0, 0, errors.New("dimShard: not servable")
}
func (d dimShard) Random(context.Context, int, int) (float64, error) {
	return 0, errors.New("dimShard: not servable")
}

func TestCoordinatorValidation(t *testing.T) {
	if _, err := New(nil, Options{}); err == nil {
		t.Error("coordinator over zero shards accepted")
	}
	if _, err := New([]Shard{dimShard{10, 2, 5}, dimShard{10, 3, 5}}, Options{}); err == nil {
		t.Error("shards disagreeing on dimensions accepted")
	}
	if _, err := New([]Shard{dimShard{10, 2, 5}, dimShard{10, 2, 4}}, Options{}); err == nil {
		t.Error("shard slices not covering the dataset accepted")
	}

	c, err := New([]Shard{dimShard{10, 2, 10}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if c.prefetch != 16 || c.threshold != 3 || c.cooldown != time.Second {
		t.Errorf("defaults prefetch=%d threshold=%d cooldown=%v", c.prefetch, c.threshold, c.cooldown)
	}
	if c.N() != 10 || c.M() != 2 || c.Shards() != 1 {
		t.Errorf("dims N=%d M=%d Shards=%d", c.N(), c.M(), c.Shards())
	}
	if got := c.MembershipKey(); got != "e0:1" {
		t.Errorf("fresh MembershipKey %q, want e0:1", got)
	}
}

func TestCoordinatorSortedMerge(t *testing.T) {
	ds := uniformDataset(t, 150, 2, 13)
	c := localCluster(t, ds, 3, Options{})
	ctx := context.Background()

	if _, _, err := c.Sorted(ctx, -1, 0); err == nil {
		t.Error("negative predicate accepted")
	}
	if _, _, err := c.Sorted(ctx, 2, 0); err == nil {
		t.Error("predicate beyond M accepted")
	}
	if _, _, err := c.Sorted(ctx, 0, -1); err == nil {
		t.Error("negative rank accepted")
	}
	if _, _, err := c.Sorted(ctx, 0, ds.N()); err == nil {
		t.Error("rank beyond N accepted")
	}

	// The unseen bound starts at 1, never rises as the merge advances,
	// and always dominates the next entry to surface.
	bound := c.UnseenBound(0)
	if bound != 1 {
		t.Fatalf("fresh UnseenBound %g, want 1", bound)
	}
	for rank := 0; rank < ds.N(); rank++ {
		_, score, err := c.Sorted(ctx, 0, rank)
		if err != nil {
			t.Fatal(err)
		}
		if score > bound {
			t.Fatalf("rank %d scored %g above the prior bound %g", rank, score, bound)
		}
		nb := c.UnseenBound(0)
		if nb > bound {
			t.Fatalf("bound rose %g -> %g at rank %d", bound, nb, rank)
		}
		bound = nb
	}
	if bound != 0 {
		t.Errorf("bound after a full drain is %g, want 0 (every stream at eof)", bound)
	}
	drainSorted(t, c, ds, 1)

	st := c.Stats()
	if st.MergedRows != uint64(2*ds.N()) {
		t.Errorf("MergedRows %d, want %d", st.MergedRows, 2*ds.N())
	}
	// Singleflight cursors fetch every local entry exactly once per
	// predicate — a full drain bills n entries of shard traffic, no more.
	if st.FetchedEntries != uint64(2*ds.N()) {
		t.Errorf("FetchedEntries %d, want %d", st.FetchedEntries, 2*ds.N())
	}
	if st.ShardFetches == 0 || st.ShardFailures != 0 {
		t.Errorf("ShardFetches %d, ShardFailures %d", st.ShardFetches, st.ShardFailures)
	}

	// A second pass replays from the merged prefix without shard traffic.
	hits := st.MergeHits
	drainSorted(t, c, ds, 0)
	st = c.Stats()
	if st.FetchedEntries != uint64(2*ds.N()) {
		t.Errorf("replay fetched new entries: %d", st.FetchedEntries)
	}
	if st.MergeHits != hits+uint64(ds.N()) {
		t.Errorf("MergeHits %d after replay, want %d", st.MergeHits, hits+uint64(ds.N()))
	}
}

func TestCoordinatorTieBreak(t *testing.T) {
	// Every object ties on predicate 0, so the merged order is decided
	// purely by the tie-break: higher global id first, exactly as a
	// single-node sorted list orders it.
	rows := make([][]float64, 30)
	for u := range rows {
		rows[u] = []float64{0.5, float64(u) / 30}
	}
	ds, err := data.New("ties", rows)
	if err != nil {
		t.Fatal(err)
	}
	c := localCluster(t, ds, 3, Options{Prefetch: 4})
	drainSorted(t, c, ds, 0)
	drainSorted(t, c, ds, 1)
}

func TestCoordinatorEmptyShards(t *testing.T) {
	// More shards than objects: several members own nothing and must sit
	// at eof without stalling the merge.
	ds := uniformDataset(t, 5, 2, 19)
	c := localCluster(t, ds, 8, Options{})
	drainSorted(t, c, ds, 0)
	drainSorted(t, c, ds, 1)
}

func TestCoordinatorSortedConcurrent(t *testing.T) {
	ds := uniformDataset(t, 400, 1, 17)
	c := localCluster(t, ds, 3, Options{Prefetch: 8})

	const readers = 8
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx := context.Background()
			for rank := 0; rank < ds.N(); rank++ {
				obj, score, err := c.Sorted(ctx, 0, rank)
				if err != nil {
					t.Errorf("rank %d: %v", rank, err)
					return
				}
				wantObj, wantScore := ds.SortedAt(0, rank)
				if obj != wantObj || score != wantScore {
					t.Errorf("rank %d: got (%d, %g), want (%d, %g)", rank, obj, score, wantObj, wantScore)
					return
				}
			}
		}()
	}
	wg.Wait()

	// The singleflight contract under contention: however many readers
	// race the frontier, each shard entry crosses the wire once.
	if st := c.Stats(); st.FetchedEntries != uint64(ds.N()) {
		t.Errorf("%d readers fetched %d entries, want %d", readers, st.FetchedEntries, ds.N())
	}
}

func TestCoordinatorRandomAndBatch(t *testing.T) {
	ds := uniformDataset(t, 120, 2, 23)
	c := localCluster(t, ds, 3, Options{})
	ctx := context.Background()

	for u := 0; u < ds.N(); u++ {
		got, err := c.Random(ctx, 1, u)
		if err != nil {
			t.Fatalf("random obj %d: %v", u, err)
		}
		if want := ds.Score(u, 1); got != want {
			t.Fatalf("random obj %d: %g, want %g", u, got, want)
		}
	}
	if _, err := c.Random(ctx, 0, -1); err == nil {
		t.Error("negative object accepted")
	}
	if _, err := c.Random(ctx, 0, ds.N()); err == nil {
		t.Error("object beyond N accepted")
	}

	preds := make([]int, 0, 2*ds.N())
	objs := make([]int, 0, 2*ds.N())
	for u := 0; u < ds.N(); u++ {
		preds = append(preds, 0, 1)
		objs = append(objs, u, u)
	}
	scores, err := c.BatchRandom(ctx, preds, objs)
	if err != nil {
		t.Fatal(err)
	}
	for j := range scores {
		if want := ds.Score(objs[j], preds[j]); scores[j] != want {
			t.Fatalf("batch slot %d: %g, want %g", j, scores[j], want)
		}
	}
	if _, err := c.BatchRandom(ctx, []int{0, 1}, []int{0}); err == nil {
		t.Error("batch length mismatch accepted")
	}
	if _, err := c.BatchRandom(ctx, []int{0}, []int{ds.N()}); err == nil {
		t.Error("batch with out-of-range object accepted")
	}
	empty, err := c.BatchRandom(ctx, nil, nil)
	if err != nil || len(empty) != 0 {
		t.Errorf("empty batch: %v, %v", empty, err)
	}

	st := c.Stats()
	if st.RandomRouted != uint64(ds.N()) {
		t.Errorf("RandomRouted %d, want %d", st.RandomRouted, ds.N())
	}
	// The full-universe batch touches every shard: one group commit each.
	if st.BatchGroups != 3 {
		t.Errorf("BatchGroups %d, want 3", st.BatchGroups)
	}
}

func TestCoordinatorUnpagedShards(t *testing.T) {
	// Shards behind WrapShard expose neither pages nor batches, forcing
	// the coordinator's entry-by-entry and probe-by-probe fallbacks — the
	// paths every fault-wrapped shard takes.
	ds := uniformDataset(t, 80, 2, 29)
	members := make([]Shard, 0, 3)
	for _, sd := range partitioned(t, ds, 3) {
		local := NewLocalShard(sd)
		members = append(members, WrapShard(local, local.LocalN()))
	}
	c, err := New(members, Options{Prefetch: 8})
	if err != nil {
		t.Fatal(err)
	}
	drainSorted(t, c, ds, 0)

	scores, err := c.BatchRandom(context.Background(), []int{0, 1, 0}, []int{3, 40, 77})
	if err != nil {
		t.Fatal(err)
	}
	for j, want := range []float64{ds.Score(3, 0), ds.Score(40, 1), ds.Score(77, 0)} {
		if scores[j] != want {
			t.Errorf("batch slot %d: %g, want %g", j, scores[j], want)
		}
	}
}

// flakyShard is a LocalShard whose every access fails while the switch
// is on — the minimal failure model for exercising the fencing state
// machine deterministically.
type flakyShard struct {
	*LocalShard
	fail atomic.Bool
}

var errFlaky = errors.New("flaky: injected failure")

func (f *flakyShard) Sorted(ctx context.Context, pred, rank int) (int, float64, error) {
	if f.fail.Load() {
		return 0, 0, errFlaky
	}
	return f.LocalShard.Sorted(ctx, pred, rank)
}

func (f *flakyShard) SortedPage(ctx context.Context, pred, rank, count int) ([]Entry, error) {
	if f.fail.Load() {
		return nil, errFlaky
	}
	return f.LocalShard.SortedPage(ctx, pred, rank, count)
}

func (f *flakyShard) Random(ctx context.Context, pred, obj int) (float64, error) {
	if f.fail.Load() {
		return 0, errFlaky
	}
	return f.LocalShard.Random(ctx, pred, obj)
}

func (f *flakyShard) BatchRandom(ctx context.Context, preds, objs []int) ([]float64, error) {
	if f.fail.Load() {
		return nil, errFlaky
	}
	return f.LocalShard.BatchRandom(ctx, preds, objs)
}

// expectKey asserts the membership fingerprint: epoch plus the expected
// up/down mask with the victim shard's bit cleared when down is set.
func expectKey(t *testing.T, c *Coordinator, epoch uint64, downShard int) {
	t.Helper()
	mask := []byte(strings.Repeat("1", c.Shards()))
	if downShard >= 0 {
		mask[downShard] = '0'
	}
	want := fmt.Sprintf("e%d:%s", epoch, mask)
	if got := c.MembershipKey(); got != want {
		t.Fatalf("MembershipKey %q, want %q", got, want)
	}
}

func TestCoordinatorFencing(t *testing.T) {
	ds := uniformDataset(t, 120, 2, 31)
	const victim = 1
	var flaky *flakyShard
	members := make([]Shard, 0, 3)
	for i, sd := range partitioned(t, ds, 3) {
		local := NewLocalShard(sd)
		if i == victim {
			flaky = &flakyShard{LocalShard: local}
			members = append(members, flaky)
		} else {
			members = append(members, local)
		}
	}
	c, err := New(members, Options{FailureThreshold: 2, Cooldown: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	// The fake clock makes cooldown expiry a statement, not a sleep.
	clock := time.Unix(0, 0)
	c.now = func() time.Time { return clock }

	ring, _ := NewRing(3)
	probe := -1
	for u := 0; u < ds.N(); u++ {
		if ring.Owner(u) == victim {
			probe = u
			break
		}
	}
	if probe < 0 {
		t.Fatal("victim shard owns no objects")
	}
	ctx := context.Background()

	if _, err := c.Random(ctx, 0, probe); err != nil {
		t.Fatalf("healthy probe: %v", err)
	}
	expectKey(t, c, 0, -1)

	// Two consecutive failures reach the threshold and fence the shard;
	// the access that fences still reports the underlying error, the next
	// one is refused up front.
	flaky.fail.Store(true)
	for i := 0; i < 2; i++ {
		_, err := c.Random(ctx, 0, probe)
		if !errors.Is(err, errFlaky) {
			t.Fatalf("failure %d: %v", i, err)
		}
		if errors.Is(err, ErrShardDown) {
			t.Fatalf("failure %d reported as a fence refusal: %v", i, err)
		}
	}
	if _, err := c.Random(ctx, 0, probe); !errors.Is(err, ErrShardDown) {
		t.Fatalf("fenced probe: %v", err)
	}
	expectKey(t, c, 1, victim)
	st := c.Stats()
	if st.ShardsUp != 2 || st.ShardFailures != 2 || st.Epoch != 1 {
		t.Fatalf("post-fence stats: up=%d failures=%d epoch=%d", st.ShardsUp, st.ShardFailures, st.Epoch)
	}

	// Every access path refuses a fenced shard: the sorted frontier needs
	// its cursor, batches need its group.
	if _, _, err := c.Sorted(ctx, 0, 0); !errors.Is(err, ErrShardDown) {
		t.Fatalf("sorted through a fenced shard: %v", err)
	}
	if _, err := c.BatchRandom(ctx, []int{0}, []int{probe}); !errors.Is(err, ErrShardDown) {
		t.Fatalf("batch through a fenced shard: %v", err)
	}

	// A half-open probe after the cooldown that fails again restarts the
	// cooldown without another epoch bump.
	clock = clock.Add(2 * time.Minute)
	if _, err := c.Random(ctx, 0, probe); !errors.Is(err, errFlaky) {
		t.Fatalf("half-open probe: %v", err)
	}
	if _, err := c.Random(ctx, 0, probe); !errors.Is(err, ErrShardDown) {
		t.Fatalf("probe inside the restarted cooldown: %v", err)
	}
	expectKey(t, c, 1, victim)

	// Recovery: the shard heals, the next half-open probe succeeds, and
	// membership flips back with a fresh epoch so cached plans re-key.
	clock = clock.Add(2 * time.Minute)
	flaky.fail.Store(false)
	if got, err := c.Random(ctx, 0, probe); err != nil || got != ds.Score(probe, 0) {
		t.Fatalf("recovery probe: (%g, %v)", got, err)
	}
	expectKey(t, c, 2, -1)
	if st := c.Stats(); st.ShardsUp != 3 || st.Epoch != 2 {
		t.Fatalf("post-recovery stats: up=%d epoch=%d", st.ShardsUp, st.Epoch)
	}
	drainSorted(t, c, ds, 1)
}

func TestCoordinatorCancellationDoesNotFence(t *testing.T) {
	ds := uniformDataset(t, 60, 1, 37)
	c := localCluster(t, ds, 2, Options{FailureThreshold: 1})
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()

	// A caller-cancelled access says nothing about shard health: with a
	// threshold of one, any miscounted failure would fence immediately.
	if _, _, err := c.Sorted(cancelled, 0, 0); err == nil {
		t.Fatal("sorted under cancelled ctx succeeded")
	}
	if _, err := c.Random(cancelled, 0, 0); err == nil {
		t.Fatal("random under cancelled ctx succeeded")
	}
	expectKey(t, c, 0, -1)
	if st := c.Stats(); st.ShardFailures != 0 || st.ShardsUp != 2 {
		t.Fatalf("cancellation billed as failure: %+v", st)
	}
	drainSorted(t, c, ds, 0)
}

func TestView(t *testing.T) {
	ds := uniformDataset(t, 100, 3, 41)
	c := localCluster(t, ds, 3, Options{})
	ctx := context.Background()

	if _, err := c.View(nil); err == nil {
		t.Error("empty view accepted")
	}
	if _, err := c.View([]int{0, 3}); err == nil {
		t.Error("out-of-range view predicate accepted")
	}
	if _, err := c.View([]int{1, 1}); err == nil {
		t.Error("duplicate view predicate accepted")
	}
	if ident, err := c.View([]int{0, 1, 2}); err != nil || ident != interface{}(c) {
		t.Errorf("identity projection returned %T, %v", ident, err)
	}

	b, err := c.View([]int{2, 0})
	if err != nil {
		t.Fatal(err)
	}
	v := b.(*View)
	if v.Coordinator() != c || v.N() != ds.N() || v.M() != 2 {
		t.Fatalf("view surface: N=%d M=%d", v.N(), v.M())
	}
	if v.MembershipKey() != c.MembershipKey() {
		t.Error("view membership key diverges from the coordinator's")
	}

	// Every access on view predicate j lands on global predicate preds[j].
	obj, score, err := v.Sorted(ctx, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if wObj, wScore, _ := c.Sorted(ctx, 2, 0); obj != wObj || score != wScore {
		t.Errorf("view sorted (%d, %g), coordinator p2 (%d, %g)", obj, score, wObj, wScore)
	}
	got, err := v.Random(ctx, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	if want := ds.Score(5, 0); got != want {
		t.Errorf("view random %g, want p0 score %g", got, want)
	}
	scores, err := v.BatchRandom(ctx, []int{0, 1}, []int{7, 9})
	if err != nil {
		t.Fatal(err)
	}
	if scores[0] != ds.Score(7, 2) || scores[1] != ds.Score(9, 0) {
		t.Errorf("view batch %v", scores)
	}
	if v.UnseenBound(0) != c.UnseenBound(2) {
		t.Error("view bound diverges from the projected predicate's")
	}

	if _, _, err := v.Sorted(ctx, 2, 0); err == nil {
		t.Error("view predicate beyond projection accepted by Sorted")
	}
	if _, err := v.Random(ctx, -1, 0); err == nil {
		t.Error("negative view predicate accepted by Random")
	}
	if _, err := v.BatchRandom(ctx, []int{2}, []int{0}); err == nil {
		t.Error("view predicate beyond projection accepted by BatchRandom")
	}
}

func TestCoordinatorMetrics(t *testing.T) {
	ds := uniformDataset(t, 80, 2, 43)
	reg := obs.NewRegistry()
	c := localCluster(t, ds, 3, Options{Metrics: reg})
	ctx := context.Background()

	drainSorted(t, c, ds, 0)
	drainSorted(t, c, ds, 0) // replay: pure merge hits
	if _, err := c.Random(ctx, 1, 4); err != nil {
		t.Fatal(err)
	}
	if _, err := c.BatchRandom(ctx, []int{0, 1}, []int{10, 20}); err != nil {
		t.Fatal(err)
	}

	// The registry mirrors are the internal counters, name for name.
	st := c.Stats()
	for name, want := range map[string]uint64{
		"topk_cluster_merged_rows_total":     st.MergedRows,
		"topk_cluster_merge_hits_total":      st.MergeHits,
		"topk_cluster_shard_fetches_total":   st.ShardFetches,
		"topk_cluster_fetched_entries_total": st.FetchedEntries,
		"topk_cluster_random_routed_total":   st.RandomRouted,
		"topk_cluster_batch_groups_total":    st.BatchGroups,
		"topk_cluster_shard_failures_total":  st.ShardFailures,
	} {
		if got := reg.Counter(name, "").Value(); got != int64(want) {
			t.Errorf("%s = %d, stats say %d", name, got, want)
		}
	}
	if up := reg.Gauge("topk_cluster_shards_up", "").Value(); up != 3 {
		t.Errorf("topk_cluster_shards_up = %d, want 3", up)
	}

	// AttachMetrics wires a bare coordinator to a registry after the fact.
	reg2 := obs.NewRegistry()
	c2 := localCluster(t, ds, 2, Options{})
	c2.AttachMetrics(reg2)
	if _, err := c2.Random(ctx, 0, 1); err != nil {
		t.Fatal(err)
	}
	if got := reg2.Counter("topk_cluster_random_routed_total", "").Value(); got != 1 {
		t.Errorf("attached registry counted %d routed probes, want 1", got)
	}
	if up := reg2.Gauge("topk_cluster_shards_up", "").Value(); up != 2 {
		t.Errorf("attached topk_cluster_shards_up = %d, want 2", up)
	}
}

func TestRemoteShardCluster(t *testing.T) {
	// The full remote path: each partition behind a websim shard server
	// (exactly what topkd -shard runs), dialed back as RemoteShards and
	// merged by a coordinator — the in-process cluster's wire twin.
	ds := uniformDataset(t, 80, 2, 47)
	parts := partitioned(t, ds, 2)
	ctx := context.Background()

	remotes := make([]Shard, len(parts))
	for i, sd := range parts {
		if sd.LocalN() == 0 {
			t.Fatalf("shard %d owns nothing; pick a friendlier seed", i)
		}
		srv, err := websim.NewServer(sd.Local, websim.WithShardObjects(sd.Global, ds.N()))
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv)
		defer ts.Close()
		rs, err := DialShard(ctx, ts.URL, ds.M(), ts.Client())
		if err != nil {
			t.Fatal(err)
		}
		if rs.N() != ds.N() || rs.M() != ds.M() || rs.LocalN() != sd.LocalN() {
			t.Fatalf("remote shard %d meta: N=%d M=%d LocalN=%d", i, rs.N(), rs.M(), rs.LocalN())
		}
		// A probe addressed to the wrong shard 404s instead of lying.
		if _, err := rs.Random(ctx, 0, parts[1-i].Global[0]); err == nil {
			t.Errorf("remote shard %d answered a probe it does not own", i)
		}
		remotes[i] = rs
	}

	c, err := New(remotes, Options{Prefetch: 8})
	if err != nil {
		t.Fatal(err)
	}
	drainSorted(t, c, ds, 0)
	drainSorted(t, c, ds, 1)
	for _, u := range []int{0, 17, 42, 79} {
		got, err := c.Random(ctx, 1, u)
		if err != nil {
			t.Fatal(err)
		}
		if want := ds.Score(u, 1); got != want {
			t.Errorf("remote random obj %d: %g, want %g", u, got, want)
		}
	}
	scores, err := c.BatchRandom(ctx, []int{0, 1, 0}, []int{2, 33, 71})
	if err != nil {
		t.Fatal(err)
	}
	for j, want := range []float64{ds.Score(2, 0), ds.Score(33, 1), ds.Score(71, 0)} {
		if scores[j] != want {
			t.Errorf("remote batch slot %d: %g, want %g", j, scores[j], want)
		}
	}
}
