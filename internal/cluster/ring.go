// Package cluster scales the middleware horizontally: a dataset is
// sharded across N nodes by consistent hashing on object id, each shard
// serves its slice through the ordinary per-source access protocol
// (sorted streams, random probes, batches), and a coordinator presents
// the shards back to the engine as one access.Backend. The paper's cost
// model is exactly the abstraction that makes this work: NC/TA/MPro and
// the optimizers consume sorted and random accesses with per-predicate
// costs, so they run unchanged over a cluster — only the backend's
// implementation changes, from one dataset to a scatter-gather merge
// (see DESIGN.md §15).
//
// The package has three layers:
//
//   - Ring: a deterministic consistent-hash ring assigning each object
//     id to its owning shard. Both partitioning (Partition) and probe
//     routing (Coordinator.Random) consult the same ring, so ownership
//     is a pure function of (object id, shard count).
//   - Shard: the coordinator-facing contract of one shard node —
//     access.Backend in *global* object ids plus the size of the local
//     slice. LocalShard serves an in-process partition; RemoteShard
//     (remote.go) speaks the websim HTTP protocol to a topkd -shard node.
//   - Coordinator: the scatter-gather access.Backend. Sorted accesses
//     are served from a per-predicate k-way merge of the shard streams
//     with pooled, prefetching per-shard cursors; random and batched
//     accesses route to the owning shard. Shard failures surface as
//     access errors the session's resilience machinery absorbs, so a
//     lost shard degrades answers honestly instead of silently.
package cluster

import (
	"fmt"
	"sort"
)

// vnodesPerShard is the number of virtual nodes each shard contributes
// to the ring. 64 keeps the assignment within a few percent of balanced
// while the ring stays small enough to build at startup in microseconds.
const vnodesPerShard = 64

// fnv1a64 hashes one 64-bit word with FNV-1a, byte by byte. It is the
// ring's only hash: allocation-free and stable across processes, so a
// coordinator and a remote shard node always agree on ownership.
func fnv1a64(x uint64) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < 8; i++ {
		h ^= x & 0xff
		h *= 1099511628211
		x >>= 8
	}
	return h
}

// ringPoint is one virtual node on the ring.
type ringPoint struct {
	hash  uint64
	shard int
}

// Ring is a consistent-hash ring over a fixed shard count. It is
// immutable after construction and safe for concurrent use; membership
// changes (a shard going down) never move data — the coordinator's
// health tracking handles availability, the ring only answers ownership.
type Ring struct {
	shards int
	points []ringPoint
}

// NewRing builds the ring for the given shard count.
func NewRing(shards int) (*Ring, error) {
	if shards <= 0 {
		return nil, fmt.Errorf("cluster: ring requires at least one shard, got %d", shards)
	}
	r := &Ring{shards: shards, points: make([]ringPoint, 0, shards*vnodesPerShard)}
	for s := 0; s < shards; s++ {
		for v := 0; v < vnodesPerShard; v++ {
			// Mix shard and vnode into one word before hashing so vnode
			// sequences of different shards land independently.
			key := uint64(s)*0x9E3779B97F4A7C15 + uint64(v)
			r.points = append(r.points, ringPoint{hash: fnv1a64(key), shard: s})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		pa, pb := r.points[a], r.points[b]
		if pa.hash != pb.hash {
			return pa.hash < pb.hash
		}
		// Hash collisions between vnodes resolve by shard index so the
		// ring order — and therefore ownership — is fully deterministic.
		return pa.shard < pb.shard
	})
	return r, nil
}

// Shards returns the shard count the ring was built for.
func (r *Ring) Shards() int { return r.shards }

// Owner returns the shard owning object id u: the first virtual node at
// or clockwise after the object's hash.
func (r *Ring) Owner(u int) int {
	h := fnv1a64(uint64(u))
	points := r.points
	i := sort.Search(len(points), func(i int) bool { return points[i].hash >= h })
	if i == len(points) {
		i = 0
	}
	return points[i].shard
}
