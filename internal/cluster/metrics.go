package cluster

import (
	"sync/atomic"

	"repro/internal/obs"
)

// Stats is a point-in-time snapshot of a coordinator's scatter-gather
// activity. MergeHits count sorted accesses served from the merged
// prefix without a shard round trip; ShardFetches/FetchedEntries count
// the cursor pages that extended it. Ledgers are unaffected by any of
// this: queries are billed for the accesses they request, not for what
// the coordinator fans out.
type Stats struct {
	// Shards is the cluster size; ShardsUp how many are currently
	// unfenced; Epoch the membership epoch (bumped on every fence and
	// recovery).
	Shards, ShardsUp int
	Epoch            uint64
	// MergedRows counts entries appended to merge prefixes; MergeHits
	// sorted accesses served from an already-merged prefix.
	MergedRows, MergeHits uint64
	// ShardFetches counts shard cursor page fetches; FetchedEntries the
	// entries they carried.
	ShardFetches, FetchedEntries uint64
	// RandomRouted counts probes routed to their owning shard;
	// BatchGroups the per-shard groups batched probes fanned out into.
	RandomRouted, BatchGroups uint64
	// ShardFailures counts failed shard accesses (before fencing turns
	// further attempts away).
	ShardFailures uint64
}

// stats holds the coordinator's internal counters.
type stats struct {
	mergedRows, mergeHits        atomic.Uint64
	shardFetches, fetchedEntries atomic.Uint64
	randomRouted, batchGroups    atomic.Uint64
	shardFailures                atomic.Uint64
}

// Stats snapshots the counters and membership state.
func (c *Coordinator) Stats() Stats {
	return Stats{
		Shards:         len(c.shards),
		ShardsUp:       int(c.up.Load()),
		Epoch:          c.epoch.Load(),
		MergedRows:     c.stats.mergedRows.Load(),
		MergeHits:      c.stats.mergeHits.Load(),
		ShardFetches:   c.stats.shardFetches.Load(),
		FetchedEntries: c.stats.fetchedEntries.Load(),
		RandomRouted:   c.stats.randomRouted.Load(),
		BatchGroups:    c.stats.batchGroups.Load(),
		ShardFailures:  c.stats.shardFailures.Load(),
	}
}

// Metric indices into clusterMetrics.counters, so the hot path's mirror
// increment is an array index away from the internal counter.
const (
	metricClusterMergedRows = iota
	metricClusterMergeHits
	metricClusterShardFetches
	metricClusterFetchedEntries
	metricClusterRandomRouted
	metricClusterBatchGroups
	metricClusterShardFailures
	numClusterMetrics
)

// clusterMetrics mirrors the coordinator's counters into an obs.Registry
// under the topk_cluster_* names; every series is registered up front so
// hot-path delivery is one atomic increment.
type clusterMetrics struct {
	counters [numClusterMetrics]*obs.Counter
	shardsUp *obs.Gauge
}

func newClusterMetrics(reg *obs.Registry) *clusterMetrics {
	m := &clusterMetrics{}
	m.counters[metricClusterMergedRows] = reg.Counter("topk_cluster_merged_rows_total", "Rows appended to coordinator merge prefixes.")
	m.counters[metricClusterMergeHits] = reg.Counter("topk_cluster_merge_hits_total", "Sorted accesses served from an already-merged prefix.")
	m.counters[metricClusterShardFetches] = reg.Counter("topk_cluster_shard_fetches_total", "Shard cursor page fetches.")
	m.counters[metricClusterFetchedEntries] = reg.Counter("topk_cluster_fetched_entries_total", "Entries prefetched from shard sorted streams.")
	m.counters[metricClusterRandomRouted] = reg.Counter("topk_cluster_random_routed_total", "Random probes routed to their owning shard.")
	m.counters[metricClusterBatchGroups] = reg.Counter("topk_cluster_batch_groups_total", "Per-shard groups fanned out by batched probes.")
	m.counters[metricClusterShardFailures] = reg.Counter("topk_cluster_shard_failures_total", "Shard accesses that failed.")
	m.shardsUp = reg.Gauge("topk_cluster_shards_up", "Shards currently unfenced.")
	return m
}

// AttachMetrics mirrors the coordinator's counters into reg under the
// topk_cluster_* names and publishes the shards-up gauge. Call it once,
// before the coordinator serves traffic: the hot path reads the metrics
// pointer without synchronization, so attaching mid-flight would race.
// Counters registered earlier under the same names are reused (the
// registry get-or-creates), so sharing reg across handlers is safe.
func (c *Coordinator) AttachMetrics(reg *obs.Registry) {
	c.metrics = newClusterMetrics(reg)
	c.metrics.shardsUp.Set(c.up.Load())
}

// count bumps an internal counter and, when metrics are attached, its
// registry mirror.
func (c *Coordinator) count(ctr *atomic.Uint64, idx int) {
	ctr.Add(1)
	if c.metrics != nil {
		c.metrics.counters[idx].Inc()
	}
}
