package cluster

import (
	"context"
	"fmt"

	"repro/internal/access"
)

// View restricts a coordinator to a subset of its predicates, re-indexed
// as backend predicates 0..len(preds)-1 — the cluster analogue of
// data.Project, so the service can bind a query's columns without
// duplicating shard state. Views share the coordinator's merge prefixes,
// health tracking, and stats.
type View struct {
	c     *Coordinator
	preds []int
}

// View returns the coordinator restricted to the given global predicate
// columns. Projecting every column in order returns the coordinator
// itself.
func (c *Coordinator) View(preds []int) (access.Backend, error) {
	if len(preds) == 0 {
		return nil, fmt.Errorf("cluster: view selects no predicates")
	}
	identity := len(preds) == c.m
	seen := make([]bool, c.m)
	for j, p := range preds {
		if p < 0 || p >= c.m {
			return nil, fmt.Errorf("cluster: view predicate %d out of range [0,%d)", p, c.m)
		}
		if seen[p] {
			return nil, fmt.Errorf("cluster: view selects predicate %d twice", p)
		}
		seen[p] = true
		if p != j {
			identity = false
		}
	}
	if identity {
		return c, nil
	}
	cp := make([]int, len(preds))
	copy(cp, preds)
	return &View{c: c, preds: cp}, nil
}

// Coordinator returns the coordinator behind the view.
func (v *View) Coordinator() *Coordinator { return v.c }

// N returns the global object count.
func (v *View) N() int { return v.c.n }

// M returns the number of projected predicates.
func (v *View) M() int { return len(v.preds) }

// Sorted implements access.Backend on the projected predicate.
//
//topklint:hotpath
func (v *View) Sorted(ctx context.Context, pred, rank int) (int, float64, error) {
	if pred < 0 || pred >= len(v.preds) {
		return 0, 0, fmt.Errorf("cluster: view predicate %d out of range [0,%d)", pred, len(v.preds))
	}
	return v.c.Sorted(ctx, v.preds[pred], rank)
}

// Random implements access.Backend on the projected predicate.
//
//topklint:hotpath
func (v *View) Random(ctx context.Context, pred, obj int) (float64, error) {
	if pred < 0 || pred >= len(v.preds) {
		return 0, fmt.Errorf("cluster: view predicate %d out of range [0,%d)", pred, len(v.preds))
	}
	return v.c.Random(ctx, v.preds[pred], obj)
}

// BatchRandom implements share.BatchBackend on the projected predicates.
func (v *View) BatchRandom(ctx context.Context, preds, objs []int) ([]float64, error) {
	mapped := make([]int, len(preds))
	for j, p := range preds {
		if p < 0 || p >= len(v.preds) {
			return nil, fmt.Errorf("cluster: view predicate %d out of range [0,%d)", p, len(v.preds))
		}
		mapped[j] = v.preds[p]
	}
	return v.c.BatchRandom(ctx, mapped, objs)
}

// UnseenBound returns the unseen-score bound of the projected predicate.
func (v *View) UnseenBound(pred int) float64 { return v.c.UnseenBound(v.preds[pred]) }

// MembershipKey forwards the coordinator's membership fingerprint so the
// plan cache re-keys on shard fences behind a view too.
func (v *View) MembershipKey() string { return v.c.MembershipKey() }
