// Package fault injects deterministic failures into an access.Backend for
// chaos testing. The wrapper reproduces the pathologies of real Web
// sources — transient errors, latency spikes, hangs, hard outages, and
// flapping availability — from a fixed seed, so every chaos run is exactly
// replayable: same seed, same accesses, same faults.
//
// Faults are configured per (predicate, access kind). Decisions are drawn
// from a seeded *rand.Rand plus per-capability access counters, both
// guarded by a mutex; the injected delay/hang itself happens outside the
// lock so concurrent accesses to healthy predicates never stall behind a
// slow one.
package fault

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/access"
)

// ErrInjected marks every error produced by the injector, so tests and
// resilience code can tell injected faults from genuine backend bugs with
// errors.Is.
var ErrInjected = errors.New("fault: injected failure")

// PredFault configures the failure behaviour of one predicate. The zero
// value injects nothing. Rates are probabilities in [0, 1] drawn
// independently per access; windows count accesses to the predicate
// (across both kinds), so a deterministic access sequence hits an outage
// at a deterministic point.
type PredFault struct {
	// ErrorRate is the probability an access fails immediately with
	// ErrInjected.
	ErrorRate float64
	// SlowRate is the probability an access sleeps SlowDelay before
	// succeeding — a latency spike, not a failure (unless the caller's
	// per-access deadline converts it into one).
	SlowRate float64
	// SlowDelay is the injected latency for a slow access (default 20ms
	// when SlowRate > 0).
	SlowDelay time.Duration
	// HangRate is the probability an access blocks until its context is
	// cancelled, then fails with the context error. A hang only ever
	// resolves through the caller's deadline.
	HangRate float64
	// OutageFrom/OutageTo delimit a hard outage window in access ordinals
	// (half-open, 0-based): accesses From <= n < To fail with ErrInjected.
	// To <= From means no outage; To < 0 means the outage never ends.
	OutageFrom, OutageTo int
	// FlapPeriod > 0 alternates availability: each run of FlapPeriod
	// consecutive accesses flips between healthy and failing, starting
	// healthy.
	FlapPeriod int
}

// Config seeds and scopes the injector.
type Config struct {
	// Seed drives the injector's private *rand.Rand. Equal seeds and equal
	// access sequences produce equal fault sequences.
	Seed int64
	// Preds maps predicate index to its fault profile; absent predicates
	// are healthy.
	Preds map[int]PredFault
}

// Backend wraps an access.Backend, injecting configured faults before
// delegating. It is safe for concurrent use.
type Backend struct {
	inner access.Backend

	mu    sync.Mutex
	rng   *rand.Rand
	preds map[int]PredFault
	count map[int]int // accesses issued per predicate, both kinds
}

// Wrap builds the fault-injecting wrapper around a backend.
func Wrap(inner access.Backend, cfg Config) *Backend {
	preds := make(map[int]PredFault, len(cfg.Preds))
	for p, f := range cfg.Preds {
		if f.SlowRate > 0 && f.SlowDelay <= 0 {
			f.SlowDelay = 20 * time.Millisecond
		}
		preds[p] = f
	}
	return &Backend{
		inner: inner,
		rng:   rand.New(rand.NewSource(cfg.Seed)),
		preds: preds,
		count: make(map[int]int),
	}
}

// N returns the object count of the wrapped backend.
func (b *Backend) N() int { return b.inner.N() }

// M returns the predicate count of the wrapped backend.
func (b *Backend) M() int { return b.inner.M() }

// action is the outcome of one fault decision.
type action int

const (
	actPass action = iota
	actError
	actSlow
	actHang
)

// decide draws the fault decision for one access to pred. The lock covers
// only the rng and counters; sleeping and hanging happen in the caller.
func (b *Backend) decide(pred int) (action, time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	f, ok := b.preds[pred]
	if !ok {
		return actPass, 0
	}
	n := b.count[pred]
	b.count[pred] = n + 1
	if f.OutageTo < 0 && n >= f.OutageFrom {
		return actError, 0
	}
	if f.OutageFrom < f.OutageTo && n >= f.OutageFrom && n < f.OutageTo {
		return actError, 0
	}
	if f.FlapPeriod > 0 && (n/f.FlapPeriod)%2 == 1 {
		return actError, 0
	}
	// Draw the random gates in a fixed order so the consumed rng stream is
	// identical regardless of which gate fires.
	hang := b.rng.Float64() < f.HangRate
	fail := b.rng.Float64() < f.ErrorRate
	slow := b.rng.Float64() < f.SlowRate
	switch {
	case hang:
		return actHang, 0
	case fail:
		return actError, 0
	case slow:
		return actSlow, f.SlowDelay
	default:
		return actPass, 0
	}
}

// inject applies the decided fault. It returns a non-nil error when the
// access must fail without reaching the inner backend.
func (b *Backend) inject(ctx context.Context, kind access.Kind, pred int) error {
	act, delay := b.decide(pred)
	switch act {
	case actError:
		return fmt.Errorf("%w: %s access on p%d", ErrInjected, kind, pred+1)
	case actSlow:
		t := time.NewTimer(delay)
		defer t.Stop()
		select {
		case <-t.C:
			return nil
		case <-ctx.Done():
			return fmt.Errorf("%w: %s access on p%d cut off mid-spike: %w", ErrInjected, kind, pred+1, ctx.Err())
		}
	case actHang:
		<-ctx.Done()
		return fmt.Errorf("%w: %s access on p%d hung: %w", ErrInjected, kind, pred+1, ctx.Err())
	default:
		return nil
	}
}

// Sorted injects faults, then delegates to the wrapped backend.
func (b *Backend) Sorted(ctx context.Context, pred, rank int) (int, float64, error) {
	if err := b.inject(ctx, access.SortedAccess, pred); err != nil {
		return 0, 0, err
	}
	return b.inner.Sorted(ctx, pred, rank)
}

// Random injects faults, then delegates to the wrapped backend.
func (b *Backend) Random(ctx context.Context, pred, obj int) (float64, error) {
	if err := b.inject(ctx, access.RandomAccess, pred); err != nil {
		return 0, err
	}
	return b.inner.Random(ctx, pred, obj)
}
