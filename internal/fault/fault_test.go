package fault

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/access"
	"repro/internal/data"
)

func testBackend(t *testing.T) access.Backend {
	t.Helper()
	ds, err := data.Generate(data.Uniform, 50, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	return access.DatasetBackend{DS: ds}
}

// TestDeterministic pins the replayability contract: same seed, same
// access sequence, same fault sequence.
func TestDeterministic(t *testing.T) {
	cfg := Config{Seed: 42, Preds: map[int]PredFault{
		0: {ErrorRate: 0.5},
		1: {ErrorRate: 0.3, SlowRate: 0.2, SlowDelay: time.Microsecond},
	}}
	run := func() []bool {
		b := Wrap(testBackend(t), cfg)
		var outcomes []bool
		for r := 0; r < 20; r++ {
			_, _, err := b.Sorted(context.Background(), 0, r)
			outcomes = append(outcomes, err == nil)
			_, err = b.Random(context.Background(), 1, r)
			outcomes = append(outcomes, err == nil)
		}
		return outcomes
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("outcome %d differs across identically-seeded runs: %v vs %v", i, a[i], b[i])
		}
	}
	var failed bool
	for _, ok := range a {
		if !ok {
			failed = true
		}
	}
	if !failed {
		t.Fatal("no fault injected in 40 accesses at 30-50% error rates")
	}
}

// TestOutageWindow drives an access ordinal range through a hard outage.
func TestOutageWindow(t *testing.T) {
	b := Wrap(testBackend(t), Config{Seed: 1, Preds: map[int]PredFault{
		0: {OutageFrom: 2, OutageTo: 4},
	}})
	for n := 0; n < 6; n++ {
		_, _, err := b.Sorted(context.Background(), 0, n)
		inOutage := n >= 2 && n < 4
		if inOutage && !errors.Is(err, ErrInjected) {
			t.Errorf("access %d: want outage failure, got %v", n, err)
		}
		if !inOutage && err != nil {
			t.Errorf("access %d: want success outside outage, got %v", n, err)
		}
	}
}

// TestPermanentOutage checks OutageTo < 0 never recovers.
func TestPermanentOutage(t *testing.T) {
	b := Wrap(testBackend(t), Config{Seed: 1, Preds: map[int]PredFault{
		1: {OutageFrom: 0, OutageTo: -1},
	}})
	for n := 0; n < 5; n++ {
		if _, err := b.Random(context.Background(), 1, n); !errors.Is(err, ErrInjected) {
			t.Fatalf("access %d: want permanent outage, got %v", n, err)
		}
	}
	// Other predicates stay healthy.
	if _, _, err := b.Sorted(context.Background(), 0, 0); err != nil {
		t.Fatalf("healthy predicate failed: %v", err)
	}
}

// TestFlapping checks the alternating availability pattern.
func TestFlapping(t *testing.T) {
	b := Wrap(testBackend(t), Config{Seed: 1, Preds: map[int]PredFault{
		0: {FlapPeriod: 3},
	}})
	for n := 0; n < 12; n++ {
		_, _, err := b.Sorted(context.Background(), 0, n%10)
		down := (n/3)%2 == 1
		if down != (err != nil) {
			t.Errorf("access %d: down=%v but err=%v", n, down, err)
		}
	}
}

// TestHangRespectsContext checks a hang resolves only through cancellation
// and surfaces the context error.
func TestHangRespectsContext(t *testing.T) {
	b := Wrap(testBackend(t), Config{Seed: 1, Preds: map[int]PredFault{
		0: {HangRate: 1},
	}})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, _, err := b.Sorted(ctx, 0, 0)
	if !errors.Is(err, ErrInjected) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want injected+deadline error, got %v", err)
	}
	if time.Since(start) > time.Second {
		t.Fatal("hang did not resolve promptly after context deadline")
	}
}

// TestSlowDelay checks latency spikes delay but do not fail the access.
func TestSlowDelay(t *testing.T) {
	b := Wrap(testBackend(t), Config{Seed: 1, Preds: map[int]PredFault{
		0: {SlowRate: 1, SlowDelay: 5 * time.Millisecond},
	}})
	start := time.Now()
	if _, _, err := b.Sorted(context.Background(), 0, 0); err != nil {
		t.Fatalf("slow access failed: %v", err)
	}
	if d := time.Since(start); d < 5*time.Millisecond {
		t.Fatalf("slow access returned in %v, want >= 5ms", d)
	}
}
