// Package catalog assembles a middleware's view of heterogeneous Web
// sources: which source scores which predicate, through which access
// types, at what cost. Sources register a backend per predicate; the
// catalog composes them into a single routed access.Backend for the query
// engine and derives the cost scenario either from declared unit costs or
// by *calibration* — timing real accesses, the way a Web middleware turns
// observed latencies into the cost model of the paper's Figure 1.
package catalog

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/access"
	"repro/internal/store"
)

// Registration describes one predicate served by one source.
type Registration struct {
	// Source is a human-readable source name (e.g. "superpages.com").
	Source string
	// PredName is the predicate's name as queries refer to it.
	PredName string
	// Backend serves the predicate; LocalPred is its index there.
	Backend   access.Backend
	LocalPred int
	// Sorted and Random declare the supported access types.
	Sorted, Random bool
	// SortedCost and RandomCost optionally declare unit costs (in cost
	// units); zero means "unknown, calibrate me".
	SortedCost, RandomCost float64
}

// Catalog accumulates registrations, one per query predicate, in
// registration order.
type Catalog struct {
	regs []Registration
	n    int
}

// New creates an empty catalog.
func New() *Catalog { return &Catalog{n: -1} }

// Register adds one predicate. All registered backends must serve the
// same object universe (identical N) and the registration must support at
// least one access type with a valid local predicate.
func (c *Catalog) Register(r Registration) error {
	if r.Backend == nil {
		return fmt.Errorf("catalog: registration %q/%q has no backend", r.Source, r.PredName)
	}
	if !r.Sorted && !r.Random {
		return fmt.Errorf("catalog: predicate %q supports no access type", r.PredName)
	}
	if r.LocalPred < 0 || r.LocalPred >= r.Backend.M() {
		return fmt.Errorf("catalog: predicate %q local index %d out of source range [0,%d)", r.PredName, r.LocalPred, r.Backend.M())
	}
	if r.SortedCost < 0 || r.RandomCost < 0 {
		return fmt.Errorf("catalog: predicate %q has negative declared cost", r.PredName)
	}
	for _, prev := range c.regs {
		if prev.PredName == r.PredName {
			return fmt.Errorf("catalog: predicate %q registered twice", r.PredName)
		}
	}
	if c.n == -1 {
		c.n = r.Backend.N()
	} else if r.Backend.N() != c.n {
		return fmt.Errorf("catalog: source %q serves %d objects, catalog universe has %d", r.Source, r.Backend.N(), c.n)
	}
	c.regs = append(c.regs, r)
	return nil
}

// M returns the number of registered predicates.
func (c *Catalog) M() int { return len(c.regs) }

// PredicateNames returns the predicate names in registration (= query
// predicate) order.
func (c *Catalog) PredicateNames() []string {
	out := make([]string, len(c.regs))
	for i, r := range c.regs {
		out[i] = r.PredName
	}
	return out
}

// routed composes the registrations into one Backend: query predicate i is
// served by registration i.
type routed struct {
	regs []Registration
	n    int
}

func (b routed) N() int { return b.n }
func (b routed) M() int { return len(b.regs) }

func (b routed) Sorted(ctx context.Context, pred, rank int) (int, float64, error) {
	if pred < 0 || pred >= len(b.regs) {
		return 0, 0, fmt.Errorf("catalog: predicate %d out of range", pred)
	}
	r := b.regs[pred]
	return r.Backend.Sorted(ctx, r.LocalPred, rank)
}

func (b routed) Random(ctx context.Context, pred, obj int) (float64, error) {
	if pred < 0 || pred >= len(b.regs) {
		return 0, fmt.Errorf("catalog: predicate %d out of range", pred)
	}
	r := b.regs[pred]
	return r.Backend.Random(ctx, r.LocalPred, obj)
}

// Backend returns the composed multi-source backend. It requires at least
// one registration.
func (c *Catalog) Backend() (access.Backend, error) {
	if len(c.regs) == 0 {
		return nil, fmt.Errorf("catalog: no predicates registered")
	}
	return routed{regs: append([]Registration(nil), c.regs...), n: c.n}, nil
}

// DeclaredScenario builds the cost scenario from the registrations'
// declared unit costs, failing if any supported access type lacks one.
func (c *Catalog) DeclaredScenario(name string) (access.Scenario, error) {
	preds := make([]access.PredCost, len(c.regs))
	for i, r := range c.regs {
		var pc access.PredCost
		if r.Sorted {
			if r.SortedCost == 0 {
				return access.Scenario{}, fmt.Errorf("catalog: predicate %q has no declared sorted cost; use Calibrate", r.PredName)
			}
			c, err := access.CostFromUnits(r.SortedCost)
			if err != nil {
				return access.Scenario{}, fmt.Errorf("catalog: predicate %q sorted cost: %w", r.PredName, err)
			}
			pc.Sorted, pc.SortedOK = c, true
		}
		if r.Random {
			if r.RandomCost == 0 {
				return access.Scenario{}, fmt.Errorf("catalog: predicate %q has no declared random cost; use Calibrate", r.PredName)
			}
			c, err := access.CostFromUnits(r.RandomCost)
			if err != nil {
				return access.Scenario{}, fmt.Errorf("catalog: predicate %q random cost: %w", r.PredName, err)
			}
			pc.Random, pc.RandomOK = c, true
		}
		preds[i] = pc
	}
	return access.Scenario{Name: name, Preds: preds}, nil
}

// Calibrate measures per-access latency by timing `probes` real accesses
// of each supported type on every predicate (walking ranks/objects
// round-robin) and returns a scenario whose unit costs are the median
// latency in milliseconds. Declared non-zero costs are kept as-is;
// calibration only fills the unknowns. Calibration traffic does not count
// toward any query's ledger — it is the middleware's startup cost. The
// context bounds the calibration probes (they hit real sources).
func (c *Catalog) Calibrate(ctx context.Context, name string, probes int) (access.Scenario, error) {
	if len(c.regs) == 0 {
		return access.Scenario{}, fmt.Errorf("catalog: no predicates registered")
	}
	if probes < 1 {
		probes = 3
	}
	preds := make([]access.PredCost, len(c.regs))
	for i, r := range c.regs {
		var pc access.PredCost
		if r.Sorted {
			pc.SortedOK = true
			ms := r.SortedCost
			if ms <= 0 {
				var err error
				ms, err = c.timeAccesses(probes, func(j int) error {
					//topklint:allow billedaccess calibration probes are middleware startup cost, not query traffic
					_, _, err := r.Backend.Sorted(ctx, r.LocalPred, j%c.n)
					return err
				})
				if err != nil {
					return access.Scenario{}, fmt.Errorf("catalog: calibrating sorted %q: %w", r.PredName, err)
				}
			}
			cost, err := access.CostFromUnits(ms)
			if err != nil {
				return access.Scenario{}, fmt.Errorf("catalog: predicate %q sorted cost: %w", r.PredName, err)
			}
			pc.Sorted = cost
		}
		if r.Random {
			pc.RandomOK = true
			ms := r.RandomCost
			if ms <= 0 {
				var err error
				ms, err = c.timeAccesses(probes, func(j int) error {
					//topklint:allow billedaccess calibration probes are middleware startup cost, not query traffic
					_, err := r.Backend.Random(ctx, r.LocalPred, j%c.n)
					return err
				})
				if err != nil {
					return access.Scenario{}, fmt.Errorf("catalog: calibrating random %q: %w", r.PredName, err)
				}
			}
			cost, err := access.CostFromUnits(ms)
			if err != nil {
				return access.Scenario{}, fmt.Errorf("catalog: predicate %q random cost: %w", r.PredName, err)
			}
			pc.Random = cost
		}
		preds[i] = pc
	}
	return access.Scenario{Name: name, Preds: preds}, nil
}

// CalibrateIO measures per-access cost from timed IO using the store
// measurement harness: batched probes per predicate and access type,
// median across batches, quantized to two significant figures (see
// store.QuantizeUnits). Unlike Calibrate — one timed access at a time,
// raw medians — the batched protocol resolves the sub-microsecond
// per-access costs a disk store serves (a warm sorted access is a map
// lookup plus a 12-byte decode), which single-probe timing rounds to
// noise, and the quantization keeps repeat calibrations keying the plan
// cache identically. opts.Cold drops backend caches between batches for
// worst-case pricing. Declared non-zero costs are kept as-is, like
// Calibrate. The returned key (one predicate calibration per clause,
// "-" for declared costs) is what topk.WithStore folds into the
// plan-cache fingerprint.
func (c *Catalog) CalibrateIO(ctx context.Context, name string, opts store.MeasureOptions) (access.Scenario, string, error) {
	if len(c.regs) == 0 {
		return access.Scenario{}, "", fmt.Errorf("catalog: no predicates registered")
	}
	preds := make([]access.PredCost, len(c.regs))
	keys := make([]string, 0, len(c.regs))
	for i, r := range c.regs {
		var pc access.PredCost
		var cal store.Calibration
		measured := false
		if r.Sorted && r.SortedCost <= 0 || r.Random && r.RandomCost <= 0 {
			var err error
			cal, err = store.MeasurePred(ctx, r.Backend, r.LocalPred, opts)
			if err != nil {
				return access.Scenario{}, "", fmt.Errorf("catalog: calibrating %q: %w", r.PredName, err)
			}
			measured = true
		}
		if r.Sorted {
			ms := r.SortedCost
			if ms <= 0 {
				ms = cal.SortedMS
			}
			cost, err := access.CostFromUnits(ms)
			if err != nil {
				return access.Scenario{}, "", fmt.Errorf("catalog: predicate %q sorted cost: %w", r.PredName, err)
			}
			pc.Sorted, pc.SortedOK = cost, true
		}
		if r.Random {
			ms := r.RandomCost
			if ms <= 0 {
				ms = cal.RandomMS
			}
			cost, err := access.CostFromUnits(ms)
			if err != nil {
				return access.Scenario{}, "", fmt.Errorf("catalog: predicate %q random cost: %w", r.PredName, err)
			}
			pc.Random, pc.RandomOK = cost, true
		}
		preds[i] = pc
		if measured {
			keys = append(keys, cal.Key())
		} else {
			keys = append(keys, "-")
		}
	}
	return access.Scenario{Name: name, Preds: preds}, strings.Join(keys, ","), nil
}

// timeAccesses returns the median latency, in milliseconds, of running fn
// `probes` times.
func (c *Catalog) timeAccesses(probes int, fn func(j int) error) (float64, error) {
	lat := make([]float64, 0, probes)
	for j := 0; j < probes; j++ {
		start := time.Now()
		if err := fn(j); err != nil {
			return 0, err
		}
		lat = append(lat, float64(time.Since(start).Microseconds())/1000)
	}
	sort.Float64s(lat)
	med := lat[len(lat)/2]
	if med <= 0 {
		med = 0.001 // sub-microsecond local backends: charge a nominal cost
	}
	return med, nil
}
