package catalog_test

import (
	"fmt"

	"repro/internal/access"
	"repro/internal/catalog"
	"repro/internal/data"
	"repro/internal/data/datatest"
)

// Example registers two sources over one object universe, builds the
// routed backend, and derives the cost scenario from declared unit costs.
func Example() {
	ds := datatest.MustGenerate(data.Uniform, 100, 2, 1)
	cat := catalog.New()
	must := func(err error) {
		if err != nil {
			panic(err)
		}
	}
	must(cat.Register(catalog.Registration{
		Source: "dineme.com", PredName: "rating",
		Backend: access.DatasetBackend{DS: ds}, LocalPred: 0,
		Sorted: true, SortedCost: 0.2, Random: true, RandomCost: 1.0,
	}))
	must(cat.Register(catalog.Registration{
		Source: "superpages.com", PredName: "closeness",
		Backend: access.DatasetBackend{DS: ds}, LocalPred: 1,
		Sorted: true, SortedCost: 0.1, Random: true, RandomCost: 0.5,
	}))

	backend, err := cat.Backend()
	must(err)
	scn, err := cat.DeclaredScenario("travel")
	must(err)
	fmt.Println("predicates:", cat.PredicateNames())
	fmt.Printf("universe: %d objects, %d predicates\n", backend.N(), backend.M())
	fmt.Printf("rating probe costs %.1f units\n", scn.Preds[0].Random.Units())
	// Output:
	// predicates: [rating closeness]
	// universe: 100 objects, 2 predicates
	// rating probe costs 1.0 units
}
