package catalog

import (
	"context"
	"math"
	"testing"
	"time"

	"repro/internal/access"
	"repro/internal/algo"
	"repro/internal/data"
	"repro/internal/data/datatest"
	"repro/internal/score"
)

type slowBackend struct {
	access.DatasetBackend
	sorted, random time.Duration
}

func (b slowBackend) Sorted(ctx context.Context, pred, rank int) (int, float64, error) {
	time.Sleep(b.sorted)
	return b.DatasetBackend.Sorted(ctx, pred, rank)
}

func (b slowBackend) Random(ctx context.Context, pred, obj int) (float64, error) {
	time.Sleep(b.random)
	return b.DatasetBackend.Random(ctx, pred, obj)
}

func twoSourceCatalog(t *testing.T, ds *data.Dataset) *Catalog {
	t.Helper()
	c := New()
	if err := c.Register(Registration{
		Source: "alpha", PredName: "rating",
		Backend: access.DatasetBackend{DS: ds}, LocalPred: 0,
		Sorted: true, Random: true, SortedCost: 0.2, RandomCost: 1.0,
	}); err != nil {
		t.Fatal(err)
	}
	if err := c.Register(Registration{
		Source: "beta", PredName: "closeness",
		Backend: access.DatasetBackend{DS: ds}, LocalPred: 1,
		Sorted: true, Random: true, SortedCost: 0.1, RandomCost: 0.5,
	}); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestRegisterValidation(t *testing.T) {
	ds := datatest.MustGenerate(data.Uniform, 20, 2, 1)
	other := datatest.MustGenerate(data.Uniform, 30, 2, 1)
	c := New()
	be := access.DatasetBackend{DS: ds}
	if err := c.Register(Registration{Source: "s", PredName: "p", LocalPred: 0, Sorted: true}); err == nil {
		t.Error("nil backend should fail")
	}
	if err := c.Register(Registration{Source: "s", PredName: "p", Backend: be, LocalPred: 0}); err == nil {
		t.Error("no capability should fail")
	}
	if err := c.Register(Registration{Source: "s", PredName: "p", Backend: be, LocalPred: 5, Sorted: true}); err == nil {
		t.Error("bad local pred should fail")
	}
	if err := c.Register(Registration{Source: "s", PredName: "p", Backend: be, LocalPred: 0, Sorted: true, SortedCost: -1}); err == nil {
		t.Error("negative cost should fail")
	}
	if err := c.Register(Registration{Source: "s", PredName: "p", Backend: be, LocalPred: 0, Sorted: true}); err != nil {
		t.Fatalf("valid registration rejected: %v", err)
	}
	if err := c.Register(Registration{Source: "s2", PredName: "p", Backend: be, LocalPred: 1, Sorted: true}); err == nil {
		t.Error("duplicate predicate name should fail")
	}
	if err := c.Register(Registration{Source: "s3", PredName: "q", Backend: access.DatasetBackend{DS: other}, LocalPred: 0, Sorted: true}); err == nil {
		t.Error("mismatched universe should fail")
	}
}

func TestRoutedBackendAndDeclaredScenario(t *testing.T) {
	ds := datatest.MustGenerate(data.Uniform, 50, 2, 5)
	c := twoSourceCatalog(t, ds)
	if c.M() != 2 {
		t.Fatalf("M = %d", c.M())
	}
	names := c.PredicateNames()
	if names[0] != "rating" || names[1] != "closeness" {
		t.Errorf("names = %v", names)
	}
	be, err := c.Backend()
	if err != nil {
		t.Fatal(err)
	}
	if be.N() != 50 || be.M() != 2 {
		t.Fatalf("backend %dx%d", be.N(), be.M())
	}
	obj, s, err := be.Sorted(context.Background(), 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if wantObj, wantS := ds.SortedAt(1, 0); obj != wantObj || s != wantS {
		t.Errorf("routing wrong: got u%d(%g)", obj, s)
	}
	if _, _, err := be.Sorted(context.Background(), 9, 0); err == nil {
		t.Error("out-of-range predicate should fail")
	}
	if _, err := be.Random(context.Background(), -1, 0); err == nil {
		t.Error("out-of-range predicate should fail")
	}

	scn, err := c.DeclaredScenario("travel")
	if err != nil {
		t.Fatal(err)
	}
	if scn.Preds[0].Sorted != access.CostOf(0.2) || scn.Preds[1].Random != access.CostOf(0.5) {
		t.Errorf("scenario = %+v", scn.Preds)
	}
	// End to end: the catalog's backend + scenario answer queries.
	sess, err := access.NewSession(be, scn)
	if err != nil {
		t.Fatal(err)
	}
	prob, err := algo.NewProblem(score.Min(), 3, sess)
	if err != nil {
		t.Fatal(err)
	}
	alg, _ := algo.NewNC([]float64{0.5, 0.5}, nil)
	res, err := alg.Run(prob)
	if err != nil {
		t.Fatal(err)
	}
	oracle := ds.TopK(score.Min().Eval, 3)
	for i := range oracle {
		got := score.Min().Eval(ds.Scores(res.Items[i].Obj))
		if math.Abs(got-oracle[i].Score) > 1e-9 {
			t.Fatalf("rank %d wrong", i)
		}
	}
}

func TestDeclaredScenarioRequiresCosts(t *testing.T) {
	ds := datatest.MustGenerate(data.Uniform, 10, 1, 1)
	c := New()
	if err := c.Register(Registration{Source: "s", PredName: "p", Backend: access.DatasetBackend{DS: ds}, LocalPred: 0, Sorted: true}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.DeclaredScenario("x"); err == nil {
		t.Error("missing declared cost should fail")
	}
}

func TestCalibrateOrdersLatencies(t *testing.T) {
	ds := datatest.MustGenerate(data.Uniform, 40, 2, 7)
	fast := slowBackend{DatasetBackend: access.DatasetBackend{DS: ds}, sorted: time.Millisecond, random: time.Millisecond}
	slow := slowBackend{DatasetBackend: access.DatasetBackend{DS: ds}, sorted: 6 * time.Millisecond, random: 12 * time.Millisecond}
	c := New()
	if err := c.Register(Registration{Source: "slow", PredName: "a", Backend: slow, LocalPred: 0, Sorted: true, Random: true}); err != nil {
		t.Fatal(err)
	}
	if err := c.Register(Registration{Source: "fast", PredName: "b", Backend: fast, LocalPred: 1, Sorted: true, Random: true}); err != nil {
		t.Fatal(err)
	}
	scn, err := c.Calibrate(context.Background(), "measured", 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := scn.Validate(2); err != nil {
		t.Fatal(err)
	}
	// Calibrated order must reflect real latencies: slow source's probe is
	// the priciest, fast source the cheapest.
	if !(scn.Preds[0].Random > scn.Preds[0].Sorted) {
		t.Errorf("slow source: random %v should exceed sorted %v", scn.Preds[0].Random, scn.Preds[0].Sorted)
	}
	if !(scn.Preds[0].Sorted > scn.Preds[1].Sorted) {
		t.Errorf("slow sorted %v should exceed fast sorted %v", scn.Preds[0].Sorted, scn.Preds[1].Sorted)
	}
}

func TestCalibrateKeepsDeclaredCosts(t *testing.T) {
	ds := datatest.MustGenerate(data.Uniform, 10, 1, 1)
	c := New()
	if err := c.Register(Registration{
		Source: "s", PredName: "p", Backend: access.DatasetBackend{DS: ds}, LocalPred: 0,
		Sorted: true, SortedCost: 7.5, Random: true,
	}); err != nil {
		t.Fatal(err)
	}
	scn, err := c.Calibrate(context.Background(), "mixed", 2)
	if err != nil {
		t.Fatal(err)
	}
	if scn.Preds[0].Sorted != access.CostOf(7.5) {
		t.Errorf("declared sorted cost overwritten: %v", scn.Preds[0].Sorted)
	}
	if !scn.Preds[0].RandomOK || scn.Preds[0].Random <= 0 {
		t.Errorf("random cost not calibrated: %+v", scn.Preds[0])
	}
}

func TestEmptyCatalog(t *testing.T) {
	c := New()
	if _, err := c.Backend(); err == nil {
		t.Error("empty backend should fail")
	}
	if _, err := c.Calibrate(context.Background(), "x", 1); err == nil {
		t.Error("empty calibrate should fail")
	}
}
