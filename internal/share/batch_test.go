package share_test

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/access"
	"repro/internal/share"
)

// gatedBatchBackend implements share.BatchBackend over a dataset backend
// and lets tests hold the first batch round trip open so later probes
// demonstrably queue behind it.
type gatedBatchBackend struct {
	inner   access.Backend
	batch   share.BatchBackend // nil: answer from inner.Random
	gate    chan struct{}      // when non-nil, BatchRandom waits for it
	started chan struct{}      // closed when the first BatchRandom begins
	once    sync.Once

	batches atomic.Int64
	probes  atomic.Int64
	fail    atomic.Bool // next batches fail until cleared
}

func (b *gatedBatchBackend) N() int { return b.inner.N() }
func (b *gatedBatchBackend) M() int { return b.inner.M() }
func (b *gatedBatchBackend) Sorted(ctx context.Context, pred, rank int) (int, float64, error) {
	return b.inner.Sorted(ctx, pred, rank)
}
func (b *gatedBatchBackend) Random(ctx context.Context, pred, obj int) (float64, error) {
	return b.inner.Random(ctx, pred, obj)
}

func (b *gatedBatchBackend) BatchRandom(ctx context.Context, preds, objs []int) ([]float64, error) {
	b.once.Do(func() {
		if b.started != nil {
			close(b.started)
		}
	})
	if b.gate != nil {
		select {
		case <-b.gate:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	b.batches.Add(1)
	b.probes.Add(int64(len(preds)))
	if b.fail.Load() {
		return nil, errors.New("batch backend down")
	}
	scores := make([]float64, len(preds))
	for i := range preds {
		sc, err := b.inner.Random(ctx, preds[i], objs[i])
		if err != nil {
			return nil, err
		}
		scores[i] = sc
	}
	return scores, nil
}

// waitFor polls until the condition holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestBatchCoalescing holds the first round trip open while more misses
// arrive, then asserts they were coalesced into larger batches instead of
// one round trip each.
func TestBatchCoalescing(t *testing.T) {
	ds := e1Dataset(t)
	backend := &gatedBatchBackend{
		inner:   access.DatasetBackend{DS: ds},
		gate:    make(chan struct{}),
		started: make(chan struct{}),
	}
	layer := share.New(backend, share.Options{MaxBatch: 8})
	if !layer.Batching() {
		t.Fatal("layer should detect the BatchBackend capability")
	}
	ctx := context.Background()

	const probes = 10
	var wg sync.WaitGroup
	scores := make([]float64, probes)
	errs := make([]error, probes)
	wg.Add(1)
	go func() {
		defer wg.Done()
		scores[0], errs[0] = layer.Random(ctx, 0, 0)
	}()
	<-backend.started // the first probe's round trip is now held open
	for i := 1; i < probes; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			scores[i], errs[i] = layer.Random(ctx, 0, i)
		}(i)
	}
	// All nine latecomers must be queued misses before the gate opens.
	waitFor(t, "queued misses", func() bool { return layer.Stats().RandomMisses == probes })
	close(backend.gate)
	wg.Wait()

	for i := 0; i < probes; i++ {
		if errs[i] != nil {
			t.Fatalf("probe %d: %v", i, errs[i])
		}
		if want := ds.Score(i, 0); scores[i] != want {
			t.Errorf("probe %d = %g, want %g", i, scores[i], want)
		}
	}
	// One held round trip + the 9 queued probes in ceil(9/8) = 2 batches.
	if got := backend.batches.Load(); got != 3 {
		t.Errorf("batch round trips = %d, want 3", got)
	}
	if got := backend.probes.Load(); got != probes {
		t.Errorf("batched probes = %d, want %d (each distinct probe exactly once)", got, probes)
	}
	st := layer.Stats()
	if st.Batches != 3 || st.BatchedProbes != probes || st.BackendRandom != probes {
		t.Errorf("stats = %+v, want 3 batches carrying %d probes", st, probes)
	}
	// A repeat probe is now a cache hit: no new round trip.
	if sc, err := layer.Random(ctx, 0, 5); err != nil || sc != ds.Score(5, 0) {
		t.Fatalf("cached probe = %g, %v", sc, err)
	}
	if got := backend.batches.Load(); got != 3 {
		t.Errorf("cache hit caused a round trip (batches = %d)", got)
	}
}

// TestBatchSingleflight: concurrent identical probes ride one in-flight
// batch entry instead of issuing their own.
func TestBatchSingleflight(t *testing.T) {
	ds := e1Dataset(t)
	backend := &gatedBatchBackend{
		inner:   access.DatasetBackend{DS: ds},
		gate:    make(chan struct{}),
		started: make(chan struct{}),
	}
	layer := share.New(backend, share.Options{MaxBatch: 8})
	ctx := context.Background()

	var wg sync.WaitGroup
	results := make([]float64, 4)
	wg.Add(1)
	go func() { defer wg.Done(); results[0], _ = layer.Random(ctx, 1, 7) }()
	<-backend.started
	for i := 1; i < 4; i++ {
		wg.Add(1)
		go func(i int) { defer wg.Done(); results[i], _ = layer.Random(ctx, 1, 7) }(i)
	}
	waitFor(t, "coalesced joins", func() bool { return layer.Stats().Coalesced >= 3 })
	close(backend.gate)
	wg.Wait()

	want := ds.Score(7, 1)
	for i, sc := range results {
		if sc != want {
			t.Errorf("probe %d = %g, want %g", i, sc, want)
		}
	}
	if got := backend.probes.Load(); got != 1 {
		t.Errorf("backend probes = %d, want 1 (identical probes share one batch entry)", got)
	}
}

// TestBatchFailureRetry: a failed round trip propagates to its waiters,
// and a later probe retries against the recovered source.
func TestBatchFailureRetry(t *testing.T) {
	ds := e1Dataset(t)
	backend := &gatedBatchBackend{inner: access.DatasetBackend{DS: ds}}
	layer := share.New(backend, share.Options{MaxBatch: 4})
	ctx := context.Background()

	backend.fail.Store(true)
	ctxTO, cancel := context.WithTimeout(ctx, 200*time.Millisecond)
	defer cancel()
	if _, err := layer.Random(ctxTO, 0, 3); err == nil {
		t.Fatal("probe against failing source should error")
	}
	backend.fail.Store(false)
	if sc, err := layer.Random(ctx, 0, 3); err != nil || sc != ds.Score(3, 0) {
		t.Fatalf("recovered probe = %g, %v", sc, err)
	}
}
