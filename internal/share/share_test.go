package share_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	topk "repro"
	"repro/internal/access"
	"repro/internal/data"
	"repro/internal/share"
)

// countingBackend counts the accesses that actually reach the wrapped
// backend — the quantity sharing exists to reduce.
type countingBackend struct {
	inner          access.Backend
	sorted, random atomic.Int64
}

func (b *countingBackend) N() int { return b.inner.N() }
func (b *countingBackend) M() int { return b.inner.M() }
func (b *countingBackend) Sorted(ctx context.Context, pred, rank int) (int, float64, error) {
	b.sorted.Add(1)
	return b.inner.Sorted(ctx, pred, rank)
}
func (b *countingBackend) Random(ctx context.Context, pred, obj int) (float64, error) {
	b.random.Add(1)
	return b.inner.Random(ctx, pred, obj)
}

// mutableBackend serves scores that tests can change mid-run, to prove
// invalidation refetches rather than serving stale cached values.
type mutableBackend struct {
	mu     sync.Mutex
	scores [][]float64 // [obj][pred]
}

func newMutableBackend(scores [][]float64) *mutableBackend {
	cp := make([][]float64, len(scores))
	for i, row := range scores {
		cp[i] = append([]float64(nil), row...)
	}
	return &mutableBackend{scores: cp}
}

func (b *mutableBackend) Set(obj, pred int, v float64) {
	b.mu.Lock()
	b.scores[obj][pred] = v
	b.mu.Unlock()
}

func (b *mutableBackend) N() int { return len(b.scores) }
func (b *mutableBackend) M() int { return len(b.scores[0]) }

func (b *mutableBackend) Sorted(ctx context.Context, pred, rank int) (int, float64, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if rank < 0 || rank >= len(b.scores) {
		return 0, 0, fmt.Errorf("rank %d out of range", rank)
	}
	order := make([]int, len(b.scores))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(i, j int) bool {
		return b.scores[order[i]][pred] > b.scores[order[j]][pred]
	})
	obj := order[rank]
	return obj, b.scores[obj][pred], nil
}

func (b *mutableBackend) Random(ctx context.Context, pred, obj int) (float64, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.scores[obj][pred], nil
}

func e1Dataset(t *testing.T) *data.Dataset {
	t.Helper()
	ds, err := data.Generate(data.Uniform, 500, 2, 42)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

// TestSharedCursorStress runs N concurrent queries over one shared
// cursor and asserts the issue's bound: total backend sorted accesses
// stay within the deepest single query's depth + 1, no matter how the
// queries interleave. Run with -race.
func TestSharedCursorStress(t *testing.T) {
	ds := e1Dataset(t)
	backend := &countingBackend{inner: access.DatasetBackend{DS: ds}}
	layer := share.New(backend, share.Options{})

	const queries = 8
	deepest := 0
	var wg sync.WaitGroup
	errs := make(chan error, queries)
	for q := 0; q < queries; q++ {
		depth := 40 + 20*q // deepest query reads 180 ranks
		if depth > deepest {
			deepest = depth
		}
		wg.Add(1)
		go func(depth int) {
			defer wg.Done()
			for rank := 0; rank < depth; rank++ {
				obj, sc, err := layer.Sorted(context.Background(), 0, rank)
				if err != nil {
					errs <- err
					return
				}
				wantObj, wantSc := ds.SortedAt(0, rank)
				if obj != wantObj || sc != wantSc {
					errs <- fmt.Errorf("rank %d = (%d, %g), want (%d, %g)", rank, obj, sc, wantObj, wantSc)
					return
				}
			}
		}(depth)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := backend.sorted.Load(); got > int64(deepest)+1 {
		t.Errorf("backend sorted accesses = %d, want <= deepest depth %d + 1", got, deepest)
	}
	st := layer.Stats()
	if st.SortedHits == 0 {
		t.Error("expected shared-cursor hits across 8 overlapping queries")
	}
	if layer.Depth(0) != deepest {
		t.Errorf("cursor depth = %d, want %d", layer.Depth(0), deepest)
	}
}

// TestLedgerOracle asserts the billing contract: per-query ledgers of
// concurrent shared runs are byte-identical to unshared oracle runs of
// the same queries — sharing reduces backend accesses, never a query's
// own bill.
func TestLedgerOracle(t *testing.T) {
	ds := e1Dataset(t)
	scn := access.Uniform(2, 1, 1)
	layer := share.New(access.DatasetBackend{DS: ds}, share.Options{})

	configs := [][]float64{{0.3, 0.3}, {0.5, 0.5}, {0.7, 0.7}, {0.5, 0.9}, {0.9, 0.5}, {0.4, 0.6}, {0.6, 0.4}, {0.8, 0.8}}
	q := topk.Query{F: topk.Avg(), K: 10}

	// Oracle: each configuration alone against the raw backend.
	oracle := make([][]byte, len(configs))
	for i, h := range configs {
		eng, err := topk.NewEngine(topk.DataBackend(ds), scn)
		if err != nil {
			t.Fatal(err)
		}
		ans, err := eng.Run(q, topk.WithNC(h, nil))
		if err != nil {
			t.Fatal(err)
		}
		oracle[i], err = json.Marshal(ans.Ledger)
		if err != nil {
			t.Fatal(err)
		}
	}

	// Shared: all configurations concurrently through one layer.
	shared := make([][]byte, len(configs))
	errs := make([]error, len(configs))
	var wg sync.WaitGroup
	for i, h := range configs {
		wg.Add(1)
		go func(i int, h []float64) {
			defer wg.Done()
			eng, err := topk.NewEngine(topk.DataBackend(ds), scn, topk.WithSharing(layer))
			if err != nil {
				errs[i] = err
				return
			}
			ans, err := eng.Run(q, topk.WithNC(h, nil))
			if err != nil {
				errs[i] = err
				return
			}
			shared[i], errs[i] = json.Marshal(ans.Ledger)
		}(i, h)
	}
	wg.Wait()
	for i := range configs {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if !bytes.Equal(oracle[i], shared[i]) {
			t.Errorf("config %v: shared ledger differs from oracle\noracle: %s\nshared: %s", configs[i], oracle[i], shared[i])
		}
	}
	st := layer.Stats()
	if st.SortedHits == 0 && st.RandomHits == 0 {
		t.Error("expected cross-query sharing across 8 overlapping runs")
	}
}

// TestBreakerInvalidation asserts that breaker transitions drop shared
// state: a score cached (or a cursor filled) before an outage is
// refetched, never served stale, once the predicate's circuit trips.
func TestBreakerInvalidation(t *testing.T) {
	backend := newMutableBackend([][]float64{
		{0.9, 0.1},
		{0.5, 0.2},
		{0.3, 0.3},
	})
	bs := access.NewBreakerSet(2, access.BreakerConfig{FailureThreshold: 1, Cooldown: time.Minute})
	layer := share.New(backend, share.Options{Breakers: bs})
	ctx := context.Background()

	// Cache a score, then change the source behind the cache's back.
	if sc, err := layer.Random(ctx, 0, 1); err != nil || sc != 0.5 {
		t.Fatalf("random(0,1) = %g, %v", sc, err)
	}
	backend.Set(1, 0, 0.7)
	if sc, _ := layer.Random(ctx, 0, 1); sc != 0.5 {
		t.Fatalf("healthy predicate should serve the cached score, got %g", sc)
	}
	// Trip the random circuit for predicate 0: the cached scores must go.
	bs.Record(access.RandomAccess, 0, false)
	if sc, err := layer.Random(ctx, 0, 1); err != nil || sc != 0.7 {
		t.Errorf("post-trip random(0,1) = %g, %v; stale cache served", sc, err)
	}

	// Same for the shared cursor: fill it, reorder the source, trip.
	if obj, _, err := layer.Sorted(ctx, 1, 0); err != nil || obj != 2 {
		t.Fatalf("sorted(1,0) = %d, %v", obj, err)
	}
	backend.Set(0, 1, 0.99) // object 0 is now the predicate-1 leader
	if obj, _, _ := layer.Sorted(ctx, 1, 0); obj != 2 {
		t.Fatalf("healthy predicate should serve the shared prefix, got obj %d", obj)
	}
	bs.Record(access.SortedAccess, 1, false)
	if obj, _, err := layer.Sorted(ctx, 1, 0); err != nil || obj != 0 {
		t.Errorf("post-trip sorted(1,0) = %d, %v; stale cursor served", obj, err)
	}
	if inv := layer.Stats().Invalidations; inv < 2 {
		t.Errorf("invalidations = %d, want >= 2", inv)
	}
	// Unaffected predicates keep their caches: predicate 1's scores were
	// never invalidated by predicate 0's random trip.
	if sc, err := layer.Random(ctx, 1, 2); err != nil || sc != 0.3 {
		t.Fatalf("random(1,2) = %g, %v", sc, err)
	}
}

// TestViewMapping checks that column-projected views share the layer's
// state under the dataset's own predicate numbering.
func TestViewMapping(t *testing.T) {
	ds := e1Dataset(t)
	backend := &countingBackend{inner: access.DatasetBackend{DS: ds}}
	layer := share.New(backend, share.Options{})
	ctx := context.Background()

	v := layer.View([]int{1}) // projection selecting only predicate 1
	if v.M() != 1 || v.N() != ds.N() {
		t.Fatalf("view dims = (%d, %d)", v.N(), v.M())
	}
	obj, sc, err := v.Sorted(ctx, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	wantObj, wantSc := ds.SortedAt(1, 0)
	if obj != wantObj || sc != wantSc {
		t.Fatalf("view sorted = (%d, %g), want (%d, %g)", obj, sc, wantObj, wantSc)
	}
	// The same rank through the layer directly is a hit: one backend access.
	if _, _, err := layer.Sorted(ctx, 1, 0); err != nil {
		t.Fatal(err)
	}
	if got := backend.sorted.Load(); got != 1 {
		t.Errorf("backend sorted accesses = %d, want 1 (view and layer share the cursor)", got)
	}
	// The identity projection is the layer itself — no wrapper allocation.
	if id := layer.View([]int{0, 1}); id != access.Backend(layer) {
		t.Error("identity view should return the layer")
	}
}
