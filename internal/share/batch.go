package share

import (
	"context"
	"fmt"
	"sync"
)

// batcher coalesces concurrent random-access cache misses into
// BatchRandom round trips of up to max probes. It deliberately has no
// linger timer: batches form from natural concurrency (the first miss
// becomes the flusher and drains the queue; misses arriving while a
// round trip is in flight accumulate into the next one — the group-commit
// pattern), so an isolated query pays no added latency and a busy service
// amortizes automatically.
type batcher struct {
	l   *Layer
	max int

	mu       sync.Mutex
	queue    []*pendingProbe          // not yet picked up by a flush
	byKey    map[uint64]*pendingProbe // queued or in-flight, for singleflight joins
	flushing bool
}

// pendingProbe is one queued random access and the call its waiters share.
type pendingProbe struct {
	key       uint64
	pred, obj int
	gen       uint64 // score-shard generation at enqueue, guards late caching
	call      *probeCall
}

func newBatcher(l *Layer, max int) *batcher {
	return &batcher{l: l, max: max, byKey: make(map[uint64]*pendingProbe)}
}

// probe resolves one cache miss through the batch queue: identical
// concurrent probes join one pending entry, and whoever finds no flush in
// progress drains the queue for everyone.
func (b *batcher) probe(ctx context.Context, pred, obj int) (float64, error) {
	key := probeKey(pred, obj)
	sh := b.l.scores.shard(key)
	for {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		if score, ok := sh.get(key); ok {
			// Resolved by a batch that completed between the miss and here.
			b.l.count(&b.l.stats.coalesced, b.l.metrics, metricCoalesced)
			return score, nil
		}
		gen := sh.generation()
		b.mu.Lock()
		p, joined := b.byKey[key]
		if !joined {
			p = &pendingProbe{key: key, pred: pred, obj: obj, gen: gen, call: &probeCall{done: make(chan struct{})}}
			b.byKey[key] = p
			b.queue = append(b.queue, p)
		}
		flush := false
		if !b.flushing {
			b.flushing = true
			flush = true
		}
		b.mu.Unlock()
		if joined {
			b.l.count(&b.l.stats.coalesced, b.l.metrics, metricCoalesced)
		}
		if flush {
			b.drain(ctx)
		}
		select {
		case <-p.call.done:
		case <-ctx.Done():
			return 0, ctx.Err()
		}
		if p.call.err == nil {
			return p.call.score, nil
		}
		// The round trip this probe rode failed; retry under this query's
		// own context (the retry may become the next flusher).
	}
}

// drain flushes batches until the queue is empty, then releases the
// flusher role. The flusher serves probes queued by other queries too —
// bounded unfairness that keeps the design timer-free.
func (b *batcher) drain(ctx context.Context) {
	for {
		b.mu.Lock()
		if len(b.queue) == 0 {
			b.flushing = false
			b.mu.Unlock()
			return
		}
		n := min(b.max, len(b.queue))
		batch := make([]*pendingProbe, n)
		copy(batch, b.queue[:n])
		rest := copy(b.queue, b.queue[n:])
		for i := rest; i < len(b.queue); i++ {
			b.queue[i] = nil
		}
		b.queue = b.queue[:rest]
		b.mu.Unlock()

		preds := make([]int, n)
		objs := make([]int, n)
		for i, p := range batch {
			preds[i], objs[i] = p.pred, p.obj
		}
		scores, err := b.l.batch.BatchRandom(ctx, preds, objs)
		if err == nil && len(scores) != n {
			err = fmt.Errorf("share: batch backend returned %d scores for %d probes", len(scores), n)
		}
		b.l.stats.backendRandom.Add(uint64(n))
		b.l.stats.batchedProbes.Add(uint64(n))
		b.l.count(&b.l.stats.batches, b.l.metrics, metricBatches)

		b.mu.Lock()
		for _, p := range batch {
			// A retry may have re-registered the key after a failed earlier
			// round; only remove our own entry.
			if b.byKey[p.key] == p {
				delete(b.byKey, p.key)
			}
		}
		b.mu.Unlock()
		for i, p := range batch {
			if err == nil {
				b.l.scores.shard(p.key).put(p.key, p.gen, scores[i])
				p.call.score = scores[i]
			} else {
				p.call.err = err
			}
			close(p.call.done)
		}
	}
}
