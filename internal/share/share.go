// Package share is the cross-query access-sharing layer: a concurrency-
// safe access.Backend wrapper that lets many simultaneous queries against
// the same sources amortize their source accesses.
//
// The paper's cost model (Eq. 1) prices individual source accesses; the
// optimizer minimizes them per query. Under production traffic the same
// sorted prefixes and probed scores are fetched over and over by
// near-identical queries, so the next lever after per-query optimization
// is aggregate: share the access results themselves. The layer has three
// parts:
//
//   - A shared sorted-access cursor per backend predicate. Concurrent
//     queries attach to one descending stream: a query needing depth d
//     reads the already-fetched prefix without touching the source, and
//     only the query driving the deepest frontier performs new backend
//     accesses (frontier fetches are singleflighted, so n queries racing
//     at the same depth cost one source access).
//   - A random-access score cache: a sharded LRU keyed by
//     (predicate, object) with singleflight on concurrent identical
//     probes, so a score probed by one query is free for every later one.
//   - Batched random access: when the wrapped backend advertises the
//     BatchBackend capability (the websim client does, via POST /batch),
//     cache misses from concurrent queries coalesce into one round trip
//     of up to MaxBatch probes, amortizing per-request latency across
//     queries the way the parallel executor amortizes it within one.
//
// Billing is deliberately untouched: the layer sits below access.Session,
// so every query's ledger still prices its logical accesses exactly as if
// it ran alone — Framework NC's choice accounting and the trace==ledger
// invariant hold unchanged. What sharing reduces is the aggregate number
// of accesses that actually reach the sources, reported by Stats.
//
// The layer composes with the resilience layer: attach the service's
// BreakerSet with Options.Breakers and a capability's breaker opening
// drops the shared state for that predicate (the cursor for sorted, the
// cached scores for random), so recovery never serves results fetched
// from a source that has since been declared unhealthy.
package share

import (
	"context"
	"sync"
	"sync/atomic"

	"repro/internal/access"
	"repro/internal/obs"
)

// BatchBackend is the optional capability a backend may advertise to
// receive coalesced random accesses: one call resolves every (preds[i],
// objs[i]) probe, in order, into the returned scores. A batch maps to one
// round trip, which succeeds or fails as a unit; partial results are not
// modeled.
type BatchBackend interface {
	access.Backend
	BatchRandom(ctx context.Context, preds, objs []int) ([]float64, error)
}

// DefaultScoreCapacity bounds the score cache when Options.ScoreCapacity
// is zero: entries, across all shards.
const DefaultScoreCapacity = 1 << 16

// Options tunes a Layer.
type Options struct {
	// ScoreCapacity bounds the random-access score cache in entries
	// (DefaultScoreCapacity when 0; negative disables score caching).
	ScoreCapacity int
	// MaxBatch enables batched random access: up to MaxBatch concurrent
	// cache misses are coalesced into one BatchRandom round trip. Values
	// <= 1 disable batching, as does a backend without the BatchBackend
	// capability.
	MaxBatch int
	// Breakers, when non-nil, ties shared state to the circuit breakers:
	// a breaker opening for (kind, predicate) invalidates that predicate's
	// shared cursor (sorted) or cached scores (random). Share the same set
	// the queries' Resilience attachments use.
	Breakers *access.BreakerSet
	// Metrics, when non-nil, registers the topk_share_* metric set on the
	// registry and feeds it from the hot path (atomic increments only).
	Metrics *obs.Registry
}

// Layer is the sharing layer. It implements access.Backend over the
// wrapped backend and is safe for concurrent use by any number of
// sessions. Construct one Layer per backend (it is keyed by the backend's
// own predicate space) and share it across queries.
type Layer struct {
	backend access.Backend
	batch   BatchBackend // nil unless enabled and supported
	n, m    int

	cursors []cursor
	scores  *scoreCache // nil when disabled
	batcher *batcher    // nil unless batching enabled

	breakers *access.BreakerSet
	brMu     sync.Mutex               // serializes breaker-state folds
	brGen    atomic.Uint64            // last breaker generation folded into the caches
	brState  [2][]access.BreakerState // last observed state per (kind, pred); guarded by brMu

	stats   stats
	metrics *shareMetrics // nil unless Options.Metrics
}

// New builds a sharing layer over the backend. The returned Layer is the
// Backend queries should run against (directly, or through a View for
// column-projected queries).
func New(b access.Backend, opts Options) *Layer {
	l := &Layer{
		backend:  b,
		n:        b.N(),
		m:        b.M(),
		cursors:  make([]cursor, b.M()),
		breakers: opts.Breakers,
	}
	if opts.ScoreCapacity >= 0 {
		capacity := opts.ScoreCapacity
		if capacity == 0 {
			capacity = DefaultScoreCapacity
		}
		l.scores = newScoreCache(capacity)
	}
	if bb, ok := b.(BatchBackend); ok && opts.MaxBatch > 1 {
		l.batch = bb
		l.batcher = newBatcher(l, opts.MaxBatch)
	}
	if opts.Metrics != nil {
		l.metrics = newShareMetrics(opts.Metrics)
	}
	if l.breakers != nil {
		l.brGen.Store(l.breakers.Generation())
		for kind := range l.brState {
			l.brState[kind] = make([]access.BreakerState, l.m)
			for pred := 0; pred < l.m; pred++ {
				l.brState[kind][pred] = l.breakers.State(access.Kind(kind), pred)
			}
		}
	}
	return l
}

// N returns the object count of the wrapped backend.
func (l *Layer) N() int { return l.n }

// M returns the predicate count of the wrapped backend.
func (l *Layer) M() int { return l.m }

// Backend returns the wrapped backend.
func (l *Layer) Backend() access.Backend { return l.backend }

// Batching reports whether batched random access is active.
func (l *Layer) Batching() bool { return l.batcher != nil }

// entry is one fetched element of a predicate's descending list.
type entry struct {
	obj   int
	score float64
}

// cursor is the shared sorted-access stream of one predicate: the prefix
// of its descending list fetched so far, plus the singleflight state for
// the fetch extending the frontier. The mutex is never held across a
// backend access — the fetching query releases it, fetches, relocks to
// publish, and waiters block on the fetch's done channel instead. gen
// detects invalidation racing an in-flight fetch: a fetch started against
// a since-dropped prefix must not publish into the fresh one.
type cursor struct {
	mu      sync.Mutex
	gen     uint64
	entries []entry
	pending *frontierFetch // non-nil while a frontier fetch is in flight
}

type frontierFetch struct {
	done  chan struct{}
	obj   int
	score float64
	err   error
}

// Sorted implements access.Backend: ranks inside the shared prefix are
// served without a source access; a rank at the frontier drives (or waits
// on) exactly one backend access shared by every query needing it.
//
//topklint:hotpath
func (l *Layer) Sorted(ctx context.Context, pred, rank int) (int, float64, error) {
	l.syncBreakers()
	c := &l.cursors[pred]
	for {
		c.mu.Lock()
		if rank < len(c.entries) {
			e := c.entries[rank]
			c.mu.Unlock()
			l.count(&l.stats.sortedHits, l.metrics, metricSortedHits)
			return e.obj, e.score, nil
		}
		if f := c.pending; f != nil {
			// Another query is extending the frontier: wait for its result
			// and re-check, without charging the source twice.
			c.mu.Unlock()
			select {
			case <-f.done:
			case <-ctx.Done():
				return 0, 0, ctx.Err()
			}
			continue
		}
		//topklint:allow hotpathalloc frontier miss pays a source round trip; one fetch handle is noise against it
		f := &frontierFetch{done: make(chan struct{})}
		c.pending = f
		fetchRank := len(c.entries)
		fetchGen := c.gen
		c.mu.Unlock()

		f.obj, f.score, f.err = l.backend.Sorted(ctx, pred, fetchRank)
		l.stats.backendSorted.Add(1)
		c.mu.Lock()
		c.pending = nil
		if f.err == nil && c.gen == fetchGen {
			c.entries = append(c.entries, entry{obj: f.obj, score: f.score})
		}
		c.mu.Unlock()
		close(f.done)
		if f.err != nil {
			return 0, 0, f.err
		}
		l.count(&l.stats.sortedMisses, l.metrics, metricSortedMisses)
		if rank == fetchRank {
			return f.obj, f.score, nil
		}
		// rank sits deeper than the frontier just fetched (possible after
		// an invalidation dropped the prefix mid-session): keep extending
		// until the prefix covers it.
	}
}

// Random implements access.Backend: cached scores are served without a
// source access; misses are singleflighted and, when batching is enabled,
// coalesced with concurrent misses into one round trip.
//
//topklint:hotpath
func (l *Layer) Random(ctx context.Context, pred, obj int) (float64, error) {
	l.syncBreakers()
	if l.scores == nil {
		l.count(&l.stats.randomMisses, l.metrics, metricRandomMisses)
		l.stats.backendRandom.Add(1)
		return l.backend.Random(ctx, pred, obj)
	}
	key := probeKey(pred, obj)
	shard := l.scores.shard(key)
	if score, ok := shard.get(key); ok {
		l.count(&l.stats.randomHits, l.metrics, metricRandomHits)
		return score, nil
	}
	l.count(&l.stats.randomMisses, l.metrics, metricRandomMisses)
	if l.batcher != nil {
		return l.batcher.probe(ctx, pred, obj)
	}
	return l.probeDirect(ctx, shard, key, pred, obj)
}

// probeDirect resolves one cache miss with a singleflighted direct
// backend access.
func (l *Layer) probeDirect(ctx context.Context, sh *scoreShard, key uint64, pred, obj int) (float64, error) {
	for {
		score, cached, call, gen := sh.begin(key)
		if cached {
			l.count(&l.stats.coalesced, l.metrics, metricCoalesced)
			return score, nil
		}
		if call == nil {
			// This query drives the access; concurrent identical probes
			// block on the in-flight call and share the result.
			score, err := l.backend.Random(ctx, pred, obj)
			l.stats.backendRandom.Add(1)
			sh.commit(key, gen, score, err)
			return score, err
		}
		select {
		case <-call.done:
		case <-ctx.Done():
			return 0, ctx.Err()
		}
		if call.err == nil {
			l.count(&l.stats.coalesced, l.metrics, metricCoalesced)
			return call.score, nil
		}
		// The driving probe failed; retry (and possibly become the driver)
		// under this query's own context.
	}
}

// syncBreakers folds breaker state changes into the shared caches: any
// predicate whose sorted circuit changed state has its cursor dropped,
// any whose random circuit changed has its cached scores dropped.
// Transitions, not just the open state, trigger the drop — a full
// open→cooldown→closed cycle between two accesses must still invalidate,
// because entries fetched before the outage may be stale afterwards. With
// no breaker set attached — or no state change since the last access —
// this is one atomic load.
func (l *Layer) syncBreakers() {
	if l.breakers == nil {
		return
	}
	gen := l.breakers.Generation()
	if gen == l.brGen.Load() {
		return
	}
	l.brMu.Lock()
	defer l.brMu.Unlock()
	if gen = l.breakers.Generation(); gen == l.brGen.Load() {
		return
	}
	l.brGen.Store(gen)
	for pred := 0; pred < l.m; pred++ {
		if st := l.breakers.State(access.SortedAccess, pred); st != l.brState[access.SortedAccess][pred] {
			l.brState[access.SortedAccess][pred] = st
			l.invalidateCursor(pred)
		}
		if st := l.breakers.State(access.RandomAccess, pred); st != l.brState[access.RandomAccess][pred] {
			l.brState[access.RandomAccess][pred] = st
			if l.scores != nil {
				l.scores.invalidatePred(pred)
				l.count(&l.stats.invalidations, l.metrics, metricInvalidations)
			}
		}
	}
}

// invalidateCursor drops one predicate's shared prefix and bumps its
// generation so an in-flight frontier fetch cannot publish stale entries
// into the fresh stream.
func (l *Layer) invalidateCursor(pred int) {
	c := &l.cursors[pred]
	c.mu.Lock()
	c.gen++
	c.entries = nil
	c.mu.Unlock()
	l.count(&l.stats.invalidations, l.metrics, metricInvalidations)
}

// Invalidate drops every shared cursor and cached score. Operational
// escape hatch (the breaker hook handles degradation automatically).
func (l *Layer) Invalidate() {
	for pred := 0; pred < l.m; pred++ {
		c := &l.cursors[pred]
		c.mu.Lock()
		c.gen++
		c.entries = nil
		c.mu.Unlock()
	}
	if l.scores != nil {
		l.scores.invalidateAll()
	}
}

// Depth reports how many entries of predicate pred's descending list the
// shared cursor currently holds.
func (l *Layer) Depth(pred int) int {
	c := &l.cursors[pred]
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// View returns an access.Backend exposing the layer under a column
// projection: view predicate i maps to layer predicate preds[i]. Views
// share the layer's cursors and caches, so queries selecting different
// column subsets still amortize accesses to the predicates they have in
// common — the cursor keying is (backend, backend predicate), exactly the
// granularity the sources see.
func (l *Layer) View(preds []int) access.Backend {
	identity := len(preds) == l.m
	for i, p := range preds {
		if p != i {
			identity = false
			break
		}
	}
	if identity {
		return l
	}
	return &View{layer: l, preds: append([]int(nil), preds...)}
}

// View is a column-projected window onto a Layer. It implements
// access.Backend with the projection's predicate numbering.
type View struct {
	layer *Layer
	preds []int
}

// N returns the object count.
func (v *View) N() int { return v.layer.n }

// M returns the projected predicate count.
func (v *View) M() int { return len(v.preds) }

// Layer returns the shared layer behind the view.
func (v *View) Layer() *Layer { return v.layer }

// Sorted implements access.Backend through the shared cursor of the
// mapped predicate.
func (v *View) Sorted(ctx context.Context, pred, rank int) (int, float64, error) {
	return v.layer.Sorted(ctx, v.preds[pred], rank)
}

// Random implements access.Backend through the shared score cache of the
// mapped predicate.
func (v *View) Random(ctx context.Context, pred, obj int) (float64, error) {
	return v.layer.Random(ctx, v.preds[pred], obj)
}

// Stats reports the layer's cumulative counters (sharing is global to
// the layer, so a view's stats are the layer's).
func (v *View) Stats() Stats { return v.layer.Stats() }
