package share

import (
	"container/list"
	"sync"
)

// numShards splits the score cache to keep concurrent queries off one
// mutex. A power of two so the shard pick is a mask.
const numShards = 16

// probeKey packs (predicate, object) into the cache key.
func probeKey(pred, obj int) uint64 {
	return uint64(pred)<<32 | uint64(uint32(obj))
}

// shardIndex spreads keys over shards (Fibonacci hashing: consecutive
// object ids land on different shards).
func shardIndex(key uint64) int {
	return int((key * 0x9E3779B97F4A7C15) >> 60)
}

// scoreCache is the sharded random-access score cache.
type scoreCache struct {
	shards [numShards]scoreShard
}

func newScoreCache(capacity int) *scoreCache {
	per := capacity / numShards
	if per < 1 {
		per = 1
	}
	c := &scoreCache{}
	for i := range c.shards {
		sh := &c.shards[i]
		sh.capacity = per
		sh.entries = make(map[uint64]*list.Element)
		sh.lru = list.New()
		sh.inflight = make(map[uint64]*probeCall)
	}
	return c
}

func (c *scoreCache) shard(key uint64) *scoreShard {
	return &c.shards[shardIndex(key)&(numShards-1)]
}

// invalidatePred drops every cached score of one predicate and bumps each
// affected shard's generation so in-flight probes started before the
// invalidation cannot re-insert stale values.
func (c *scoreCache) invalidatePred(pred int) {
	for i := range c.shards {
		c.shards[i].invalidatePred(pred)
	}
}

func (c *scoreCache) invalidateAll() {
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		sh.gen++
		sh.entries = make(map[uint64]*list.Element)
		sh.lru.Init()
		sh.mu.Unlock()
	}
}

// probeCall is one in-flight random access shared by concurrent identical
// probes (singleflight).
type probeCall struct {
	done  chan struct{}
	score float64
	err   error
}

// scoreEntry is one cached (predicate, object) score.
type scoreEntry struct {
	key   uint64
	score float64
}

// scoreShard is one LRU shard. The mutex is never held across a backend
// access: begin registers the in-flight call and releases, commit
// publishes after the access returns.
type scoreShard struct {
	mu       sync.Mutex
	gen      uint64 // bumped on invalidation; guards late commits
	capacity int
	entries  map[uint64]*list.Element
	lru      *list.List // of *scoreEntry, front = most recent
	inflight map[uint64]*probeCall
}

// get returns the cached score, refreshing its LRU position. The hit path
// allocates nothing.
func (s *scoreShard) get(key uint64) (float64, bool) {
	s.mu.Lock()
	el, ok := s.entries[key]
	if !ok {
		s.mu.Unlock()
		return 0, false
	}
	s.lru.MoveToFront(el)
	score := el.Value.(*scoreEntry).score
	s.mu.Unlock()
	return score, true
}

// begin opens a probe: a concurrent insert since the caller's miss is
// returned as cached; an in-flight identical probe is returned as call to
// wait on; otherwise the caller becomes the driver (nil call) and must
// pair this with commit. gen is the shard generation the driver must pass
// back so a value fetched before an invalidation is not cached after it.
func (s *scoreShard) begin(key uint64) (score float64, cached bool, call *probeCall, gen uint64) {
	s.mu.Lock()
	if el, ok := s.entries[key]; ok {
		s.lru.MoveToFront(el)
		score = el.Value.(*scoreEntry).score
		s.mu.Unlock()
		return score, true, nil, 0
	}
	if c, ok := s.inflight[key]; ok {
		s.mu.Unlock()
		return 0, false, c, 0
	}
	c := &probeCall{done: make(chan struct{})}
	s.inflight[key] = c
	gen = s.gen
	s.mu.Unlock()
	return 0, false, nil, gen
}

// commit closes the probe opened by begin: the result is published to
// waiters, and cached when the access succeeded and no invalidation
// intervened.
func (s *scoreShard) commit(key uint64, gen uint64, score float64, err error) {
	s.mu.Lock()
	call := s.inflight[key]
	delete(s.inflight, key)
	if err == nil && gen == s.gen {
		s.insert(key, score)
	}
	s.mu.Unlock()
	if call != nil {
		call.score, call.err = score, err
		close(call.done)
	}
}

// put caches a score fetched outside the shard's own singleflight (the
// batcher resolves probes through its own pending set). gen guards late
// inserts the same way commit does.
func (s *scoreShard) put(key uint64, gen uint64, score float64) {
	s.mu.Lock()
	if gen == s.gen {
		s.insert(key, score)
	}
	s.mu.Unlock()
}

// generation snapshots the shard generation for a later put.
func (s *scoreShard) generation() uint64 {
	s.mu.Lock()
	g := s.gen
	s.mu.Unlock()
	return g
}

// insert stores the score and trims to capacity. Caller holds s.mu.
func (s *scoreShard) insert(key uint64, score float64) {
	if el, ok := s.entries[key]; ok {
		el.Value.(*scoreEntry).score = score
		s.lru.MoveToFront(el)
		return
	}
	s.entries[key] = s.lru.PushFront(&scoreEntry{key: key, score: score})
	for s.lru.Len() > s.capacity {
		back := s.lru.Back()
		s.lru.Remove(back)
		delete(s.entries, back.Value.(*scoreEntry).key)
	}
}

// invalidatePred removes this shard's entries for one predicate and bumps
// the generation.
func (s *scoreShard) invalidatePred(pred int) {
	s.mu.Lock()
	s.gen++
	for el := s.lru.Front(); el != nil; {
		next := el.Next()
		e := el.Value.(*scoreEntry)
		if int(e.key>>32) == pred {
			s.lru.Remove(el)
			delete(s.entries, e.key)
		}
		el = next
	}
	s.mu.Unlock()
}
