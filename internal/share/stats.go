package share

import (
	"math"
	"sync/atomic"

	"repro/internal/obs"
)

// Stats is a point-in-time snapshot of a layer's sharing effectiveness.
// Hits never touched the wrapped backend; Backend* count the accesses
// that actually reached it — the aggregate quantity sharing exists to
// reduce (per-query ledgers are unaffected by design).
type Stats struct {
	// SortedHits are sorted accesses served from a shared cursor prefix;
	// SortedMisses drove a backend access extending a frontier.
	SortedHits, SortedMisses uint64
	// RandomHits are probes served from the score cache; RandomMisses
	// went to the backend (directly or batched).
	RandomHits, RandomMisses uint64
	// Coalesced are probes that piggybacked on a concurrent identical
	// in-flight probe (singleflight or batch join) instead of issuing
	// their own backend access.
	Coalesced uint64
	// Batches counts BatchRandom round trips; BatchedProbes the probes
	// they carried.
	Batches, BatchedProbes uint64
	// BackendSorted and BackendRandom count accesses that reached the
	// wrapped backend.
	BackendSorted, BackendRandom uint64
	// Invalidations counts shared-state drops (breaker-open transitions).
	Invalidations uint64
}

// HitRate returns the fraction of accesses of the given totals served
// without a backend access, or 0 below a minimum sample size.
func hitRate(hits, misses uint64) float64 {
	total := hits + misses
	if total == 0 {
		return 0
	}
	return float64(hits) / float64(total)
}

// SortedHitRate is the shared-cursor hit fraction.
func (s Stats) SortedHitRate() float64 { return hitRate(s.SortedHits, s.SortedMisses) }

// RandomHitRate is the score-cache hit fraction.
func (s Stats) RandomHitRate() float64 { return hitRate(s.RandomHits, s.RandomMisses) }

// Discount quantization: the optimizer fingerprints discounts into its
// plan-cache key, so a continuously drifting hit rate would defeat plan
// caching entirely. Discounts therefore snap to 10% steps, stay 0 until a
// minimum sample has accrued (early rates are noise), and cap below 1 so
// sources never look free.
const (
	discountWarmup  = 64
	discountQuantum = 0.1
	discountCap     = 0.9
)

// Discounts converts the observed hit rates into the quantized cost
// discounts the optimizer consumes (opt.Config.SortedDiscount and
// RandomDiscount): the expected fraction of nominal access cost that
// sharing absorbs.
func (s Stats) Discounts() (sorted, random float64) {
	return quantizeDiscount(s.SortedHits, s.SortedMisses), quantizeDiscount(s.RandomHits, s.RandomMisses)
}

func quantizeDiscount(hits, misses uint64) float64 {
	if hits+misses < discountWarmup {
		return 0
	}
	d := math.Floor(hitRate(hits, misses)/discountQuantum) * discountQuantum
	if d > discountCap {
		d = discountCap
	}
	return d
}

// stats holds the layer's internal counters.
type stats struct {
	sortedHits, sortedMisses     atomic.Uint64
	randomHits, randomMisses     atomic.Uint64
	coalesced                    atomic.Uint64
	batches, batchedProbes       atomic.Uint64
	backendSorted, backendRandom atomic.Uint64
	invalidations                atomic.Uint64
}

// Stats snapshots the counters.
func (l *Layer) Stats() Stats {
	return Stats{
		SortedHits:    l.stats.sortedHits.Load(),
		SortedMisses:  l.stats.sortedMisses.Load(),
		RandomHits:    l.stats.randomHits.Load(),
		RandomMisses:  l.stats.randomMisses.Load(),
		Coalesced:     l.stats.coalesced.Load(),
		Batches:       l.stats.batches.Load(),
		BatchedProbes: l.stats.batchedProbes.Load(),
		BackendSorted: l.stats.backendSorted.Load(),
		BackendRandom: l.stats.backendRandom.Load(),
		Invalidations: l.stats.invalidations.Load(),
	}
}

// Metric indices into shareMetrics.counters, so the hot path's mirror
// increment is an array index away from the internal counter.
const (
	metricSortedHits = iota
	metricSortedMisses
	metricRandomHits
	metricRandomMisses
	metricCoalesced
	metricBatches
	metricInvalidations
	numShareMetrics
)

// shareMetrics mirrors the layer's counters into an obs.Registry under
// the topk_share_* names; every series is registered up front so hot-path
// delivery is one atomic increment.
type shareMetrics struct {
	counters [numShareMetrics]*obs.Counter
}

func newShareMetrics(reg *obs.Registry) *shareMetrics {
	m := &shareMetrics{}
	m.counters[metricSortedHits] = reg.Counter("topk_share_sorted_total", "Sorted accesses through the sharing layer by outcome.", obs.L("result", "hit"))
	m.counters[metricSortedMisses] = reg.Counter("topk_share_sorted_total", "Sorted accesses through the sharing layer by outcome.", obs.L("result", "miss"))
	m.counters[metricRandomHits] = reg.Counter("topk_share_random_total", "Random accesses through the sharing layer by outcome.", obs.L("result", "hit"))
	m.counters[metricRandomMisses] = reg.Counter("topk_share_random_total", "Random accesses through the sharing layer by outcome.", obs.L("result", "miss"))
	m.counters[metricCoalesced] = reg.Counter("topk_share_coalesced_total", "Probes that joined a concurrent identical in-flight probe.")
	m.counters[metricBatches] = reg.Counter("topk_share_batches_total", "Batched random-access round trips.")
	m.counters[metricInvalidations] = reg.Counter("topk_share_invalidations_total", "Shared-state drops on breaker transitions.")
	return m
}

// count bumps an internal counter and, when metrics are attached, its
// registry mirror.
func (l *Layer) count(c *atomic.Uint64, m *shareMetrics, idx int) {
	c.Add(1)
	if m != nil {
		m.counters[idx].Inc()
	}
}
