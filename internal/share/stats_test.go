package share_test

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"repro/internal/access"
	"repro/internal/obs"
	"repro/internal/share"
)

// TestDiscountQuantization pins the estimator-discount contract: no
// discount before the warmup sample, 10% steps afterwards, capped so the
// optimizer never believes accesses are free.
func TestDiscountQuantization(t *testing.T) {
	cases := []struct {
		name           string
		st             share.Stats
		sorted, random float64
	}{
		{"cold", share.Stats{}, 0, 0},
		{"warming", share.Stats{SortedHits: 30, SortedMisses: 30}, 0, 0},
		{"half", share.Stats{SortedHits: 50, SortedMisses: 50}, 0.5, 0},
		{"quantized-down", share.Stats{SortedHits: 59, SortedMisses: 41}, 0.5, 0},
		{"capped", share.Stats{SortedHits: 99, SortedMisses: 1, RandomHits: 999, RandomMisses: 1}, 0.9, 0.9},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			sd, rd := c.st.Discounts()
			if sd != c.sorted || rd != c.random {
				t.Errorf("Discounts() = (%g, %g), want (%g, %g)", sd, rd, c.sorted, c.random)
			}
		})
	}
	st := share.Stats{SortedHits: 3, SortedMisses: 1, RandomHits: 1, RandomMisses: 3}
	if got := st.SortedHitRate(); got != 0.75 {
		t.Errorf("SortedHitRate = %g, want 0.75", got)
	}
	if got := st.RandomHitRate(); got != 0.25 {
		t.Errorf("RandomHitRate = %g, want 0.25", got)
	}
}

// TestInvalidateAndMetrics drives the operational surface: the Invalidate
// escape hatch drops all shared state, and an attached registry mirrors
// the layer's counters as topk_share_* series.
func TestInvalidateAndMetrics(t *testing.T) {
	ds := e1Dataset(t)
	reg := obs.NewRegistry()
	layer := share.New(access.DatasetBackend{DS: ds}, share.Options{Metrics: reg})
	ctx := context.Background()

	if layer.Backend().N() != ds.N() {
		t.Fatal("Backend() should expose the wrapped backend")
	}
	if _, _, err := layer.Sorted(ctx, 0, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := layer.Random(ctx, 1, 3); err != nil {
		t.Fatal(err)
	}
	if layer.Depth(0) != 1 {
		t.Fatalf("depth = %d", layer.Depth(0))
	}
	layer.Invalidate()
	if layer.Depth(0) != 0 {
		t.Error("Invalidate left cursor entries behind")
	}
	// The dropped score must be refetched, not served stale.
	if _, err := layer.Random(ctx, 1, 3); err != nil {
		t.Fatal(err)
	}
	if st := layer.Stats(); st.RandomMisses != 2 {
		t.Errorf("post-invalidate probe should miss: %+v", st)
	}

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	exposition := buf.String()
	for _, series := range []string{"topk_share_sorted_total", "topk_share_random_total", "topk_share_invalidations_total"} {
		if !strings.Contains(exposition, series) {
			t.Errorf("registry exposition missing %s", series)
		}
	}
}

// TestViewRandomAndStats covers the projected window's random-access and
// stats passthrough.
func TestViewRandomAndStats(t *testing.T) {
	ds := e1Dataset(t)
	layer := share.New(access.DatasetBackend{DS: ds}, share.Options{})
	ctx := context.Background()

	v, ok := layer.View([]int{1}).(*share.View)
	if !ok {
		t.Fatal("projection should return a *share.View")
	}
	if v.Layer() != layer {
		t.Error("view should expose its layer")
	}
	sc, err := v.Random(ctx, 0, 9)
	if err != nil || sc != ds.Score(9, 1) {
		t.Fatalf("view random = %g, %v", sc, err)
	}
	// The same probe through the layer is a hit: views share the cache.
	if _, err := layer.Random(ctx, 1, 9); err != nil {
		t.Fatal(err)
	}
	st := v.Stats()
	if st.RandomHits != 1 || st.RandomMisses != 1 {
		t.Errorf("view stats = %+v, want one hit one miss", st)
	}
}
