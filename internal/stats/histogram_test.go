package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/data"
	"repro/internal/data/datatest"
)

func TestHistogramValidation(t *testing.T) {
	if _, err := NewHistogram(0); err == nil {
		t.Error("0 buckets should fail")
	}
	if MustNewHistogram(4).Buckets() != 4 {
		t.Error("bucket count mismatch")
	}
}

func TestEmptyHistogramIsUniform(t *testing.T) {
	h := MustNewHistogram(10)
	if h.CDF(0.3) != 0.3 || h.Quantile(0.7) != 0.7 || h.Mean() != 0.5 {
		t.Errorf("empty histogram: CDF(0.3)=%g Q(0.7)=%g mean=%g", h.CDF(0.3), h.Quantile(0.7), h.Mean())
	}
}

func TestCDFAndQuantileKnownData(t *testing.T) {
	h := MustNewHistogram(4)
	// 4 observations, one per bucket midpoint.
	for _, x := range []float64{0.1, 0.35, 0.6, 0.85} {
		h.Add(x)
	}
	if h.Total() != 4 {
		t.Fatalf("total = %d", h.Total())
	}
	if got := h.CDF(0.25); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("CDF(0.25) = %g, want 0.25", got)
	}
	if got := h.CDF(0.5); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("CDF(0.5) = %g, want 0.5", got)
	}
	if got := h.Survival(0.5); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("Survival(0.5) = %g", got)
	}
	if got := h.Mean(); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("Mean = %g", got)
	}
	// Boundary behaviour.
	if h.CDF(0) != 0 || h.CDF(1) != 1 || h.CDF(-1) != 0 || h.CDF(2) != 1 {
		t.Error("CDF boundaries wrong")
	}
	if h.Quantile(0) != 0 || h.Quantile(1) != 1 {
		t.Error("Quantile boundaries wrong")
	}
}

func TestAddClamps(t *testing.T) {
	h := MustNewHistogram(2)
	h.Add(-5)
	h.Add(5)
	if h.Total() != 2 {
		t.Fatal("clamped observations lost")
	}
	if h.CDF(0.5) != 0.5 {
		t.Errorf("CDF(0.5) = %g, want 0.5 (one obs per half)", h.CDF(0.5))
	}
}

// TestQuantileInvertsCDFProperty: Quantile(CDF(x)) ~ x wherever density is
// positive around x.
func TestQuantileInvertsCDFProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	h := MustNewHistogram(32)
	for i := 0; i < 5000; i++ {
		h.Add(rng.Float64())
	}
	prop := func(raw float64) bool {
		x := math.Abs(raw)
		x -= math.Floor(x)
		q := h.Quantile(h.CDF(x))
		return math.Abs(q-x) < 0.05
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestCDFMonotoneProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	h := MustNewHistogram(16)
	for i := 0; i < 500; i++ {
		h.Add(rng.NormFloat64()*0.2 + 0.5)
	}
	prop := func(a, b float64) bool {
		x := math.Mod(math.Abs(a), 1)
		y := math.Mod(math.Abs(b), 1)
		if x > y {
			x, y = y, x
		}
		return h.CDF(x) <= h.CDF(y)+1e-12
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestCollectMatchesEmpirical(t *testing.T) {
	ds := datatest.MustGenerate(data.Skewed, 3000, 2, 9)
	hists, err := Collect(ds, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(hists) != 2 {
		t.Fatalf("got %d histograms", len(hists))
	}
	// Empirical CDF vs histogram CDF at a few cut points.
	for _, cut := range []float64{0.1, 0.3, 0.7} {
		emp := 0
		for u := 0; u < ds.N(); u++ {
			if ds.Score(u, 0) <= cut {
				emp++
			}
		}
		want := float64(emp) / float64(ds.N())
		if got := hists[0].CDF(cut); math.Abs(got-want) > 0.03 {
			t.Errorf("CDF(%g) = %g, empirical %g", cut, got, want)
		}
	}
	if _, err := Collect(ds, 0); err == nil {
		t.Error("0 buckets should fail")
	}
}

func TestSynthesizeSamplePreservesMarginals(t *testing.T) {
	ds := datatest.MustGenerate(data.Skewed, 4000, 2, 11)
	hists, err := Collect(ds, 24)
	if err != nil {
		t.Fatal(err)
	}
	sample, err := SynthesizeSample(hists, 2000, 3)
	if err != nil {
		t.Fatal(err)
	}
	if sample.N() != 2000 || sample.M() != 2 {
		t.Fatalf("sample size %dx%d", sample.N(), sample.M())
	}
	// Means of the synthesized sample should match the source marginals.
	for i := 0; i < 2; i++ {
		var src, syn float64
		for u := 0; u < ds.N(); u++ {
			src += ds.Score(u, i)
		}
		src /= float64(ds.N())
		for u := 0; u < sample.N(); u++ {
			syn += sample.Score(u, i)
		}
		syn /= float64(sample.N())
		if math.Abs(src-syn) > 0.03 {
			t.Errorf("pred %d: source mean %.3f vs synthesized %.3f", i, src, syn)
		}
	}
	// Determinism.
	again, _ := SynthesizeSample(hists, 2000, 3)
	if again.Score(7, 1) != sample.Score(7, 1) {
		t.Error("SynthesizeSample not deterministic")
	}
	if _, err := SynthesizeSample(nil, 10, 1); err == nil {
		t.Error("no histograms should fail")
	}
	if s, err := SynthesizeSample(hists, 0, 1); err != nil || s.N() != 1 {
		t.Error("s<1 should clamp to 1")
	}
}

func TestHistogramDrawRange(t *testing.T) {
	h := MustNewHistogram(8)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100; i++ {
		h.Add(rng.Float64() * 0.5) // mass only in [0, 0.5]
	}
	for i := 0; i < 200; i++ {
		x := h.Draw(rng)
		if x < 0 || x > 0.55 {
			t.Fatalf("draw %g escapes the observed support", x)
		}
	}
}
