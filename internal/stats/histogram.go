// Package stats provides the score-distribution statistics the paper's
// cost estimation builds on (Section 7.3): per-predicate histograms
// generalizing Boolean selectivities, with CDF/quantile queries, and
// histogram-driven sample synthesis — the paper's "samples ... built
// offline (e.g., based on a priori knowledge on predicate score
// distribution)" provenance, sitting between dummy uniform samples and
// real data samples.
//
// Synthesized samples assume predicate independence, exactly like the
// Boolean optimizers the paper draws its analogy from; correlation is what
// only real samples capture (see experiment E8(c) / E3's anticorrelated
// rows).
package stats

import (
	"fmt"
	"math/rand"

	"repro/internal/data"
)

// Histogram is an equi-width histogram over [0,1].
type Histogram struct {
	counts []int
	total  int
}

// NewHistogram creates an empty histogram with the given bucket count.
func NewHistogram(buckets int) (*Histogram, error) {
	if buckets < 1 {
		return nil, fmt.Errorf("stats: histogram needs at least one bucket, got %d", buckets)
	}
	return &Histogram{counts: make([]int, buckets)}, nil
}

// Buckets returns the bucket count.
func (h *Histogram) Buckets() int { return len(h.counts) }

// Total returns the number of observations.
func (h *Histogram) Total() int { return h.total }

func (h *Histogram) bucketOf(x float64) int {
	if x < 0 {
		x = 0
	}
	if x > 1 {
		x = 1
	}
	b := int(x * float64(len(h.counts)))
	if b == len(h.counts) {
		b--
	}
	return b
}

// Add records one observation (clamped to [0,1]).
func (h *Histogram) Add(x float64) {
	h.counts[h.bucketOf(x)]++
	h.total++
}

// CDF returns P(X <= x), interpolating linearly within the bucket of x.
// An empty histogram is treated as uniform.
func (h *Histogram) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	if x >= 1 {
		return 1
	}
	if h.total == 0 {
		return x
	}
	b := h.bucketOf(x)
	w := 1 / float64(len(h.counts))
	below := 0
	for i := 0; i < b; i++ {
		below += h.counts[i]
	}
	frac := (x - float64(b)*w) / w
	return (float64(below) + frac*float64(h.counts[b])) / float64(h.total)
}

// Survival returns P(X > x) — the "selectivity" of a sorted list cut at
// score x: the expected fraction of objects a sorted access walk passes
// before its last-seen bound reaches x.
func (h *Histogram) Survival(x float64) float64 { return 1 - h.CDF(x) }

// Quantile returns the smallest x with CDF(x) >= p, interpolated.
func (h *Histogram) Quantile(p float64) float64 {
	if p <= 0 {
		return 0
	}
	if p >= 1 {
		return 1
	}
	if h.total == 0 {
		return p
	}
	target := p * float64(h.total)
	acc := 0.0
	w := 1 / float64(len(h.counts))
	for i, c := range h.counts {
		if acc+float64(c) >= target {
			if c == 0 {
				return float64(i) * w
			}
			frac := (target - acc) / float64(c)
			return (float64(i) + frac) * w
		}
		acc += float64(c)
	}
	return 1
}

// Mean returns the histogram's mean (bucket midpoints weighted by counts);
// 0.5 for an empty histogram.
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0.5
	}
	w := 1 / float64(len(h.counts))
	sum := 0.0
	for i, c := range h.counts {
		sum += float64(c) * (float64(i) + 0.5) * w
	}
	return sum / float64(h.total)
}

// Draw samples one value by inverse-transform sampling.
func (h *Histogram) Draw(rng *rand.Rand) float64 { return h.Quantile(rng.Float64()) }

// Collect builds one histogram per predicate from a dataset (or a sample
// of one), the middleware's offline statistics.
func Collect(ds *data.Dataset, buckets int) ([]*Histogram, error) {
	out := make([]*Histogram, ds.M())
	for i := range out {
		h, err := NewHistogram(buckets)
		if err != nil {
			return nil, err
		}
		for u := 0; u < ds.N(); u++ {
			h.Add(ds.Score(u, i))
		}
		out[i] = h
	}
	return out, nil
}

// SynthesizeSample generates a sample dataset of s objects whose predicate
// scores are drawn independently from the given per-predicate histograms —
// the optimizer's third sample provenance. Deterministic for a seed.
func SynthesizeSample(hists []*Histogram, s int, seed int64) (*data.Dataset, error) {
	if len(hists) == 0 {
		return nil, fmt.Errorf("stats: SynthesizeSample needs at least one histogram")
	}
	if s < 1 {
		s = 1
	}
	rng := rand.New(rand.NewSource(seed))
	rows := make([][]float64, s)
	for u := range rows {
		row := make([]float64, len(hists))
		for i, h := range hists {
			row[i] = h.Draw(rng)
		}
		rows[u] = row
	}
	return data.New(fmt.Sprintf("histsample(s=%d,seed=%d)", s, seed), rows)
}
