package stats

// MustNewHistogram is a test-only NewHistogram that panics on error;
// production code handles the error.
func MustNewHistogram(buckets int) *Histogram {
	h, err := NewHistogram(buckets)
	if err != nil {
		panic(err)
	}
	return h
}
