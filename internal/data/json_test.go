package data

import (
	"strings"
	"testing"
)

func TestDatasetJSONRoundTrip(t *testing.T) {
	ds := MustGenerate(Gaussian, 25, 3, 17)
	ds.SetLabels([]string{"alpha", "beta"})
	var sb strings.Builder
	if err := ds.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != ds.N() || back.M() != ds.M() || back.Name() != ds.Name() {
		t.Fatalf("round trip changed shape: %s %dx%d", back.Name(), back.N(), back.M())
	}
	for u := 0; u < ds.N(); u++ {
		for i := 0; i < ds.M(); i++ {
			if back.Score(u, i) != ds.Score(u, i) {
				t.Fatalf("score [%d][%d] changed", u, i)
			}
		}
	}
	if back.Label(0) != "alpha" || back.Label(1) != "beta" || back.Label(2) != "u2" {
		t.Errorf("labels = %q %q %q", back.Label(0), back.Label(1), back.Label(2))
	}
	// Sorted views rebuilt identically.
	for i := 0; i < ds.M(); i++ {
		for r := 0; r < ds.N(); r++ {
			o1, _ := ds.SortedAt(i, r)
			o2, _ := back.SortedAt(i, r)
			if o1 != o2 {
				t.Fatalf("sorted view diverged at pred %d rank %d", i, r)
			}
		}
	}
}

func TestReadJSONValidates(t *testing.T) {
	cases := []string{
		`{"name":"x","scores":[[1.5]]}`,                    // out of range
		`{"name":"x","scores":[]}`,                         // empty
		`{"name":"x","scores":[[0.5],[0.1,0.2]]}`,          // ragged
		`{"name":"x","scores":[[0.5]],"extra":1}`,          // unknown field
		`{"name":"x","scores":[[0.5]],"labels":["a","b"]}`, // too many labels
		`not json`,
	}
	for _, c := range cases {
		if _, err := ReadJSON(strings.NewReader(c)); err == nil {
			t.Errorf("ReadJSON(%q) should fail", c)
		}
	}
}
