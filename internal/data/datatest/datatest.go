// Package datatest provides panic-on-error dataset constructors for tests
// and benchmarks. The production constructors in internal/data return
// errors (the serving path must never panic — see topklint's nopanic
// analyzer); fixtures with known-good literal parameters keep the
// one-line convenience here instead, outside every serving package.
package datatest

import (
	"repro/internal/data"
)

// MustGenerate is data.Generate that panics on error, for fixtures with
// known-good parameters.
func MustGenerate(dist data.Distribution, n, m int, seed int64) *data.Dataset {
	d, err := data.Generate(dist, n, m, seed)
	if err != nil {
		panic(err)
	}
	return d
}

// MustNew is data.New that panics on error, for literal score tables.
func MustNew(name string, scores [][]float64) *data.Dataset {
	d, err := data.New(name, scores)
	if err != nil {
		panic(err)
	}
	return d
}

// MustSample is data.Sample that panics on error.
func MustSample(ds *data.Dataset, s int, seed int64) *data.Dataset {
	out, err := data.Sample(ds, s, seed)
	if err != nil {
		panic(err)
	}
	return out
}

// MustDummySample is data.DummySample that panics on error.
func MustDummySample(s, m int, seed int64) *data.Dataset {
	d, err := data.DummySample(s, m, seed)
	if err != nil {
		panic(err)
	}
	return d
}
