package data

import (
	"fmt"
	"math"
	"math/rand"
)

// Distribution identifies a synthetic score distribution used by the
// experiment harness. The paper's evaluation spans "a wider range of
// synthesized middleware settings"; these are the standard families in the
// top-k literature.
type Distribution int

const (
	// Uniform draws every predicate score iid uniformly from [0,1].
	Uniform Distribution = iota
	// Gaussian draws scores from a clipped normal N(0.5, 0.15^2).
	Gaussian
	// Skewed draws scores u^theta (theta > 1), piling mass near 0; the
	// sorted lists then drop fast at the top, which is where skew matters
	// for access scheduling.
	Skewed
	// Correlated draws predicate scores around a shared per-object latent
	// value, so lists agree (easy case: top objects surface everywhere).
	Correlated
	// AntiCorrelated makes predicates trade off against each other (hard
	// case: objects good on one list are bad on others), the classic
	// adversarial workload for threshold algorithms.
	AntiCorrelated
	// Zipf maps a Zipf(s=3)-drawn rank r to score r/(1+r): the
	// overwhelming mass scores 0 while a thin power-law tail approaches
	// 1 — the web-source regime (a few strong answers, a long
	// irrelevant tail) the cluster throughput workloads run at n=10^6,
	// where the working set outgrows CPU caches. The top of each sorted
	// list then drops off polynomially, so threshold drains terminate
	// at depths ~sqrt-of-n instead of Θ(n).
	Zipf
)

// String returns the distribution name.
func (d Distribution) String() string {
	switch d {
	case Uniform:
		return "uniform"
	case Gaussian:
		return "gaussian"
	case Skewed:
		return "skewed"
	case Correlated:
		return "correlated"
	case AntiCorrelated:
		return "anticorrelated"
	case Zipf:
		return "zipf"
	default:
		return fmt.Sprintf("Distribution(%d)", int(d))
	}
}

// DistributionByName parses a distribution name as printed by String.
func DistributionByName(name string) (Distribution, error) {
	for _, d := range []Distribution{Uniform, Gaussian, Skewed, Correlated, AntiCorrelated, Zipf} {
		if d.String() == name {
			return d, nil
		}
	}
	return 0, fmt.Errorf("data: unknown distribution %q", name)
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// GeneratorVersion identifies the score-generation procedure. It is part
// of the disk-store dataset cache key (see internal/store and the CI
// storage job): any change to how Stream draws scores — a new rng
// consumption order, different constants — must bump it, or a cached
// on-disk dataset would silently diverge from what Generate builds in
// memory for the same (dist, n, m, seed).
const GeneratorVersion = 1

// rowGenerator produces one object's scores at a time, in object order,
// consuming its rng deterministically so Generate and Stream yield
// bit-identical scores for equal parameters.
type rowGenerator struct {
	dist    Distribution
	rng     *rand.Rand
	zipf    *rand.Zipf
	weights []float64 // anticorrelated scratch
}

func newRowGenerator(dist Distribution, n, m int, seed int64) (*rowGenerator, error) {
	switch dist {
	case Uniform, Gaussian, Skewed, Correlated, AntiCorrelated, Zipf:
	default:
		return nil, fmt.Errorf("data: unknown distribution %v", dist)
	}
	g := &rowGenerator{dist: dist, rng: rand.New(rand.NewSource(seed))}
	if dist == Zipf {
		// One generator for the whole dataset: rank draws are iid across
		// objects and predicates, so scores stay exchangeable per cell.
		g.zipf = rand.NewZipf(g.rng, 3, 1, uint64(n-1))
	}
	if dist == AntiCorrelated {
		g.weights = make([]float64, m)
	}
	return g, nil
}

// fill writes the next object's scores into row.
func (g *rowGenerator) fill(row []float64) {
	switch g.dist {
	case Uniform:
		for i := range row {
			row[i] = g.rng.Float64()
		}
	case Gaussian:
		for i := range row {
			row[i] = clamp01(0.5 + 0.15*g.rng.NormFloat64())
		}
	case Skewed:
		const theta = 3.0
		for i := range row {
			row[i] = math.Pow(g.rng.Float64(), theta)
		}
	case Correlated:
		latent := g.rng.Float64()
		for i := range row {
			row[i] = clamp01(latent + 0.1*g.rng.NormFloat64())
		}
	case AntiCorrelated:
		// Distribute a shared budget across predicates with jitter:
		// high score on one predicate implies low scores elsewhere.
		budget := 0.4 + 0.2*g.rng.Float64() // per-predicate average
		m := len(row)
		sum := 0.0
		for i := range g.weights {
			g.weights[i] = g.rng.ExpFloat64()
			sum += g.weights[i]
		}
		for i := range row {
			row[i] = clamp01(budget*float64(m)*g.weights[i]/sum + 0.05*g.rng.NormFloat64())
		}
	case Zipf:
		for i := range row {
			r := float64(g.zipf.Uint64())
			row[i] = r / (1 + r)
		}
	}
}

// Stream synthesizes the same scores Generate would — bit-identical for
// equal (dist, n, m, seed) — but delivers them one object at a time
// through emit(obj, scores) without materializing the dataset. The row
// slice is reused between calls; emit must copy what it keeps. A non-nil
// error from emit aborts the stream. This is the write path for disk-
// backed datasets at n >= 10^6, where an in-memory Dataset (score matrix
// plus m sorted views) would cost multiples of the raw score payload.
func Stream(dist Distribution, n, m int, seed int64, emit func(obj int, scores []float64) error) error {
	if n <= 0 || m <= 0 {
		return fmt.Errorf("data: Stream(n=%d, m=%d) requires positive sizes", n, m)
	}
	g, err := newRowGenerator(dist, n, m, seed)
	if err != nil {
		return err
	}
	row := make([]float64, m)
	for u := 0; u < n; u++ {
		g.fill(row)
		if err := emit(u, row); err != nil {
			return err
		}
	}
	return nil
}

// Generate synthesizes a dataset of n objects and m predicates from the
// given distribution, deterministically for a given seed.
func Generate(dist Distribution, n, m int, seed int64) (*Dataset, error) {
	if n <= 0 || m <= 0 {
		return nil, fmt.Errorf("data: Generate(n=%d, m=%d) requires positive sizes", n, m)
	}
	scores := make([][]float64, n)
	flat := make([]float64, n*m)
	err := Stream(dist, n, m, seed, func(u int, row []float64) error {
		dst := flat[u*m : (u+1)*m : (u+1)*m]
		copy(dst, row)
		scores[u] = dst
		return nil
	})
	if err != nil {
		return nil, err
	}
	return New(fmt.Sprintf("%s(n=%d,m=%d,seed=%d)", dist, n, m, seed), scores)
}

// Sample draws a without-replacement random sample of s objects from ds,
// deterministically for a given seed, and returns it as a new dataset.
// It is used by the optimizer's cost estimator (Section 7.3) when real
// samples are available. s is clamped to ds.N().
func Sample(ds *Dataset, s int, seed int64) (*Dataset, error) {
	n := ds.N()
	if s > n {
		s = n
	}
	if s <= 0 {
		s = 1
	}
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(n)[:s]
	scores := make([][]float64, s)
	for j, u := range perm {
		scores[j] = ds.Scores(u)
	}
	return New(fmt.Sprintf("%s/sample(%d,seed=%d)", ds.Name(), s, seed), scores)
}

// DummySample synthesizes a sample of s objects and m predicates from an
// assumed uniform distribution, as Section 7.3 prescribes "when samples
// are unavailable or too costly to obtain online". Such samples cannot
// reflect the real score distribution but still let the optimizer adapt to
// the scoring function, k, and the cost scenario — the paper's worst-case
// validation setting, and our default.
func DummySample(s, m int, seed int64) (*Dataset, error) {
	return Generate(Uniform, s, m, seed)
}
