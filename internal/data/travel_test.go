package data

import (
	"math"
	"testing"
)

func TestRestaurantsBenchmark(t *testing.T) {
	q, rs := mustRestaurants(120, 1)
	if q.Dataset.N() != 120 || q.Dataset.M() != 2 {
		t.Fatalf("size %dx%d", q.Dataset.N(), q.Dataset.M())
	}
	if len(rs) != 120 {
		t.Fatalf("returned %d restaurants", len(rs))
	}
	if len(q.PredicateNames) != 2 || q.PredicateNames[0] != "rating" {
		t.Errorf("predicate names = %v", q.PredicateNames)
	}
	for u, r := range rs {
		if r.Rating < 0 || r.Rating > 5 {
			t.Fatalf("rating out of range: %g", r.Rating)
		}
		if got, want := q.Dataset.Score(u, 0), r.Rating/5; math.Abs(got-want) > 1e-12 {
			t.Fatalf("rating score mismatch: %g vs %g", got, want)
		}
		// Closeness must decrease with distance from (UserX, UserY).
		d := math.Hypot(r.X-q.UserX, r.Y-q.UserY)
		want := 1 - d/(10*math.Sqrt2)
		if want < 0 {
			want = 0
		}
		if got := q.Dataset.Score(u, 1); math.Abs(got-want) > 1e-12 {
			t.Fatalf("closeness mismatch for %s: %g vs %g", r.Name, got, want)
		}
	}
	if q.Dataset.Label(0) != rs[0].Name {
		t.Error("labels not attached")
	}
}

func TestHotelsBenchmark(t *testing.T) {
	q, hs := mustHotels(150, 2)
	if q.Dataset.N() != 150 || q.Dataset.M() != 3 {
		t.Fatalf("size %dx%d", q.Dataset.N(), q.Dataset.M())
	}
	if q.Budget <= 0 {
		t.Error("hotel query must carry a budget")
	}
	for u, h := range hs {
		if h.Stars < 1 || h.Stars > 5 {
			t.Fatalf("stars out of range: %g", h.Stars)
		}
		if h.Price < 30 {
			t.Fatalf("price out of range: %g", h.Price)
		}
		for i := 0; i < 3; i++ {
			s := q.Dataset.Score(u, i)
			if s < 0 || s > 1 {
				t.Fatalf("score out of range: pred %d = %g", i, s)
			}
		}
	}
}

func TestCheapScoreShape(t *testing.T) {
	budget := 150.0
	if s := cheapScore(60, budget); s != 1 {
		t.Errorf("cheap(60) = %g, want 1 (below budget/2)", s)
	}
	if s := cheapScore(400, budget); s != 0 {
		t.Errorf("cheap(400) = %g, want 0 (above 2*budget)", s)
	}
	mid := cheapScore(150, budget)
	if mid <= 0 || mid >= 1 {
		t.Errorf("cheap(budget) = %g, want strictly between 0 and 1", mid)
	}
	if cheapScore(100, budget) <= cheapScore(200, budget) {
		t.Error("cheap must decrease with price")
	}
}

func TestTravelDeterminism(t *testing.T) {
	a, _ := mustRestaurants(50, 9)
	b, _ := mustRestaurants(50, 9)
	for u := 0; u < 50; u++ {
		for i := 0; i < 2; i++ {
			if a.Dataset.Score(u, i) != b.Dataset.Score(u, i) {
				t.Fatal("Restaurants not deterministic")
			}
		}
	}
	h1, _ := mustHotels(50, 9)
	h2, _ := mustHotels(50, 9)
	if h1.Dataset.Score(3, 2) != h2.Dataset.Score(3, 2) {
		t.Fatal("Hotels not deterministic")
	}
}
