package data

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// paperDataset reproduces Dataset 1 of the paper (Figure 3): three objects
// u1..u3 with predicate scores such that sorted access on p1 returns
// u3(.7), u2(.65), u1(.6) and u3 is the top-1 under min with score .7.
// We map u1,u2,u3 to OIDs 0,1,2.
func paperDataset() *Dataset {
	return MustNew("paper-fig3", [][]float64{
		{0.6, 0.8},  // u1
		{0.65, 0.8}, // u2
		{0.7, 0.9},  // u3  (adjusted p2 so min(u3)=.7 as in the running example)
	})
}

func TestNewValidation(t *testing.T) {
	if _, err := New("empty", nil); err == nil {
		t.Error("empty dataset should fail")
	}
	if _, err := New("nopred", [][]float64{{}}); err == nil {
		t.Error("zero-predicate dataset should fail")
	}
	if _, err := New("ragged", [][]float64{{0.5, 0.5}, {0.5}}); err == nil {
		t.Error("ragged dataset should fail")
	}
	if _, err := New("range", [][]float64{{1.5}}); err == nil {
		t.Error("score > 1 should fail")
	}
	if _, err := New("nan", [][]float64{{math.NaN()}}); err == nil {
		t.Error("NaN score should fail")
	}
	if _, err := New("ok", [][]float64{{0, 1}, {0.5, 0.25}}); err != nil {
		t.Errorf("valid dataset rejected: %v", err)
	}
}

func TestNewCopiesInput(t *testing.T) {
	raw := [][]float64{{0.5, 0.5}}
	d := MustNew("copy", raw)
	raw[0][0] = 0.9
	if d.Score(0, 0) != 0.5 {
		t.Error("New must copy the score matrix")
	}
}

func TestSortedOrder(t *testing.T) {
	d := paperDataset()
	wantP1 := []int{2, 1, 0} // u3 .7, u2 .65, u1 .6
	for r, want := range wantP1 {
		obj, s := d.SortedAt(0, r)
		if obj != want {
			t.Errorf("sorted p1 rank %d: got obj %d (score %g), want %d", r, obj, s, want)
		}
	}
	// p2 has a tie between u1 and u2 at .8; higher OID first.
	obj0, s0 := d.SortedAt(1, 0)
	if obj0 != 2 || s0 != 0.9 {
		t.Errorf("sorted p2 rank 0 = %d(%g), want 2(0.9)", obj0, s0)
	}
	obj1, _ := d.SortedAt(1, 1)
	obj2, _ := d.SortedAt(1, 2)
	if obj1 != 1 || obj2 != 0 {
		t.Errorf("sorted p2 tie order = %d,%d, want 1,0 (higher OID first)", obj1, obj2)
	}
}

func TestSortedListNonIncreasingProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	prop := func(seedRaw int64, nRaw, mRaw uint8) bool {
		n := int(nRaw%50) + 1
		m := int(mRaw%4) + 1
		d := MustGenerate(Uniform, n, m, seedRaw)
		for i := 0; i < m; i++ {
			prev := math.Inf(1)
			seen := make(map[int]bool, n)
			for r := 0; r < n; r++ {
				obj, s := d.SortedAt(i, r)
				if s > prev {
					return false
				}
				if seen[obj] {
					return false
				}
				seen[obj] = true
				prev = s
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestTopKOracle(t *testing.T) {
	d := paperDataset()
	minF := func(xs []float64) float64 {
		v := xs[0]
		for _, x := range xs[1:] {
			if x < v {
				v = x
			}
		}
		return v
	}
	top := d.TopK(minF, 1)
	if len(top) != 1 || top[0].Obj != 2 || math.Abs(top[0].Score-0.7) > 1e-12 {
		t.Errorf("top-1 under min = %+v, want obj 2 score 0.7", top)
	}
	top3 := d.TopK(minF, 3)
	if len(top3) != 3 || top3[1].Obj != 1 || top3[2].Obj != 0 {
		t.Errorf("full ranking = %+v, want 2,1,0", top3)
	}
	if got := d.TopK(minF, 10); len(got) != 3 {
		t.Errorf("k clamps to n: got %d", len(got))
	}
}

func TestTopKTieBreakHigherOID(t *testing.T) {
	d := MustNew("ties", [][]float64{
		{0.5}, {0.5}, {0.5},
	})
	id := func(xs []float64) float64 { return xs[0] }
	top := d.TopK(id, 3)
	want := []int{2, 1, 0}
	for i, r := range top {
		if r.Obj != want[i] {
			t.Fatalf("tie order = %v, want 2,1,0", top)
		}
	}
}

func TestTopKMatchesSortProperty(t *testing.T) {
	avg := func(xs []float64) float64 {
		s := 0.0
		for _, x := range xs {
			s += x
		}
		return s / float64(len(xs))
	}
	for seed := int64(0); seed < 20; seed++ {
		d := MustGenerate(Gaussian, 40, 3, seed)
		k := int(seed%7) + 1
		top := d.TopK(avg, k)
		// Independent check: sort all scores and compare the k-th values.
		all := make([]float64, d.N())
		for u := 0; u < d.N(); u++ {
			all[u] = avg(d.Scores(u))
		}
		sort.Sort(sort.Reverse(sort.Float64Slice(all)))
		for i := 0; i < k; i++ {
			if math.Abs(top[i].Score-all[i]) > 1e-12 {
				t.Fatalf("seed %d: rank %d score %g, want %g", seed, i, top[i].Score, all[i])
			}
		}
		// Scores must be non-increasing.
		for i := 1; i < k; i++ {
			if top[i].Score > top[i-1].Score {
				t.Fatalf("seed %d: ranking not sorted: %v", seed, top)
			}
		}
	}
}

func TestLabels(t *testing.T) {
	d := MustNew("lbl", [][]float64{{0.1}, {0.2}})
	if d.Label(1) != "u1" {
		t.Errorf("default label = %q", d.Label(1))
	}
	d.SetLabels([]string{"alpha"})
	if d.Label(0) != "alpha" || d.Label(1) != "u1" {
		t.Errorf("labels = %q, %q", d.Label(0), d.Label(1))
	}
}

func TestScoresReturnsCopy(t *testing.T) {
	d := MustNew("cp", [][]float64{{0.3, 0.4}})
	v := d.Scores(0)
	v[0] = 0.9
	if d.Score(0, 0) != 0.3 {
		t.Error("Scores must return a copy")
	}
}

func TestLess(t *testing.T) {
	if !Less(0.4, 9, 0.5, 1) {
		t.Error("lower score ranks below")
	}
	if Less(0.5, 2, 0.5, 1) {
		t.Error("tie: higher OID wins (2 not below 1)")
	}
	if !Less(0.5, 1, 0.5, 2) {
		t.Error("tie: lower OID loses")
	}
}
