package data

// Test-only panic-on-error constructors; production code returns errors.

func MustGenerate(dist Distribution, n, m int, seed int64) *Dataset {
	d, err := Generate(dist, n, m, seed)
	if err != nil {
		panic(err)
	}
	return d
}

func MustNew(name string, scores [][]float64) *Dataset {
	d, err := New(name, scores)
	if err != nil {
		panic(err)
	}
	return d
}

func mustRestaurants(n int, seed int64) (*TravelQuery, []Restaurant) {
	q, rs, err := Restaurants(n, seed)
	if err != nil {
		panic(err)
	}
	return q, rs
}

func mustHotels(n int, seed int64) (*TravelQuery, []Hotel) {
	q, hs, err := Hotels(n, seed)
	if err != nil {
		panic(err)
	}
	return q, hs
}
