package data

import (
	"fmt"
	"math"
	"math/rand"
)

// This file generates the paper's travel-agent benchmark (Examples 1 and
// 2): restaurants for Query Q1 and hotels for Query Q2, with predicate
// scores derived from realistic attributes exactly as the queries define
// them. The paper used real Chicago-area Web sources (dineme.com,
// superpages.com, hotels.com); we synthesize attribute data with the same
// structure — see DESIGN.md's substitution table.

// Restaurant is one object of the Q1 benchmark.
type Restaurant struct {
	Name   string
	X, Y   float64 // location on a [0,10]x[0,10] mile grid
	Rating float64 // 0..5 stars
}

// Hotel is one object of the Q2 benchmark.
type Hotel struct {
	Name  string
	X, Y  float64
	Stars float64 // 1..5
	Price float64 // dollars per night
}

// TravelQuery bundles a benchmark dataset with the query context that
// produced it (the user location and, for hotels, the budget), so tools
// can report answers in domain terms.
type TravelQuery struct {
	Dataset *Dataset
	// PredicateNames documents each predicate column, e.g.
	// ["rating", "closeness"] for Q1.
	PredicateNames []string
	// UserX, UserY is the query's reference location ("myaddr").
	UserX, UserY float64
	// Budget is Q2's nightly budget in dollars (0 for Q1).
	Budget float64
}

const gridSide = 10.0 // miles

// closeness maps a distance on the grid to a [0,1] score: 1 at distance 0,
// linearly falling to 0 at the grid diagonal.
func closeness(x1, y1, x2, y2 float64) float64 {
	d := math.Hypot(x1-x2, y1-y2)
	max := gridSide * math.Sqrt2
	return clamp01(1 - d/max)
}

// Restaurants synthesizes n restaurants and returns Q1's two-predicate
// dataset: p_1 = rating (normalized stars, from the dineme.com analogue)
// and p_2 = closeness to the user's address (from the superpages.com
// analogue). This matches Example 1's
//
//	select name from restaurants
//	order by min(rating(r), closeness(r, myaddr)) stop after k
func Restaurants(n int, seed int64) (*TravelQuery, []Restaurant, error) {
	rng := rand.New(rand.NewSource(seed))
	userX, userY := 3.0, 4.0 // "myaddr": fixed so runs are comparable
	rs := make([]Restaurant, n)
	scores := make([][]float64, n)
	labels := make([]string, n)
	for u := range rs {
		// Restaurants cluster downtown (around 5,5) with spread; ratings
		// are bell-shaped around 3.4 stars like typical review sites.
		r := Restaurant{
			Name:   fmt.Sprintf("restaurant-%03d", u),
			X:      clampGrid(5 + 2.2*rng.NormFloat64()),
			Y:      clampGrid(5 + 2.2*rng.NormFloat64()),
			Rating: math.Min(5, math.Max(0, 3.4+0.8*rng.NormFloat64())),
		}
		rs[u] = r
		scores[u] = []float64{
			r.Rating / 5,
			closeness(r.X, r.Y, userX, userY),
		}
		labels[u] = r.Name
	}
	ds, err := New(fmt.Sprintf("restaurants(n=%d,seed=%d)", n, seed), scores)
	if err != nil {
		return nil, nil, err
	}
	ds.SetLabels(labels)
	return &TravelQuery{
		Dataset:        ds,
		PredicateNames: []string{"rating", "closeness"},
		UserX:          userX,
		UserY:          userY,
	}, rs, nil
}

// Hotels synthesizes n hotels and returns Q2's three-predicate dataset:
// p_1 = closeness, p_2 = rating (stars), p_3 = cheaper-than-budget fit.
// This matches Example 2's
//
//	select name from hotels
//	order by avg(closeness(h, myaddr), rating(h), cheap(h)) stop after k
//
// cheap(h) scores 1 at or below half the budget, 0 at or above twice the
// budget, linearly in between (on a log-price scale so the score is not
// dominated by luxury outliers).
func Hotels(n int, seed int64) (*TravelQuery, []Hotel, error) {
	rng := rand.New(rand.NewSource(seed))
	userX, userY := 3.0, 4.0
	budget := 150.0
	hs := make([]Hotel, n)
	scores := make([][]float64, n)
	labels := make([]string, n)
	for u := range hs {
		stars := 1 + math.Floor(4*rng.Float64()+rng.Float64()) // 1..5, mild upward skew
		if stars > 5 {
			stars = 5
		}
		// Price correlates with stars plus noise: ~$60 per star level.
		price := 40 + 55*stars + 40*rng.NormFloat64()
		if price < 30 {
			price = 30
		}
		h := Hotel{
			Name:  fmt.Sprintf("hotel-%03d", u),
			X:     clampGrid(5 + 2.5*rng.NormFloat64()),
			Y:     clampGrid(5 + 2.5*rng.NormFloat64()),
			Stars: stars,
			Price: price,
		}
		hs[u] = h
		scores[u] = []float64{
			closeness(h.X, h.Y, userX, userY),
			(h.Stars - 1) / 4,
			cheapScore(h.Price, budget),
		}
		labels[u] = h.Name
	}
	ds, err := New(fmt.Sprintf("hotels(n=%d,seed=%d)", n, seed), scores)
	if err != nil {
		return nil, nil, err
	}
	ds.SetLabels(labels)
	return &TravelQuery{
		Dataset:        ds,
		PredicateNames: []string{"closeness", "rating", "cheap"},
		UserX:          userX,
		UserY:          userY,
		Budget:         budget,
	}, hs, nil
}

func cheapScore(price, budget float64) float64 {
	// 1 at price <= budget/2, 0 at price >= 2*budget, log-linear between.
	lo, hi := math.Log(budget/2), math.Log(budget*2)
	p := math.Log(price)
	return clamp01(1 - (p-lo)/(hi-lo))
}

func clampGrid(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > gridSide {
		return gridSide
	}
	return x
}
