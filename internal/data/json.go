package data

import (
	"encoding/json"
	"fmt"
	"io"
)

// datasetJSON is the on-disk representation of a dataset: explicit enough
// to be hand-authored, validated on load exactly like New.
type datasetJSON struct {
	Name   string      `json:"name"`
	Scores [][]float64 `json:"scores"`
	Labels []string    `json:"labels,omitempty"`
}

// WriteJSON serializes the dataset.
func (d *Dataset) WriteJSON(w io.Writer) error {
	payload := datasetJSON{Name: d.name, Scores: d.scores}
	if d.labels != nil {
		payload.Labels = d.labels
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	if err := enc.Encode(payload); err != nil {
		return fmt.Errorf("data: encoding dataset %q: %w", d.name, err)
	}
	return nil
}

// ReadJSON loads a dataset serialized by WriteJSON (or hand-written in the
// same shape), applying full validation.
func ReadJSON(r io.Reader) (*Dataset, error) {
	var payload datasetJSON
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&payload); err != nil {
		return nil, fmt.Errorf("data: decoding dataset: %w", err)
	}
	ds, err := New(payload.Name, payload.Scores)
	if err != nil {
		return nil, err
	}
	if payload.Labels != nil {
		if len(payload.Labels) > ds.N() {
			return nil, fmt.Errorf("data: dataset %q has %d labels for %d objects", payload.Name, len(payload.Labels), ds.N())
		}
		ds.SetLabels(payload.Labels)
	}
	return ds, nil
}
