package data

import "testing"

func TestProjectValidation(t *testing.T) {
	ds := MustGenerate(Uniform, 10, 3, 1)
	if _, err := Project(ds, nil); err == nil {
		t.Error("empty projection should fail")
	}
	if _, err := Project(ds, []int{0, 5}); err == nil {
		t.Error("out-of-range column should fail")
	}
	if _, err := Project(ds, []int{0, 0}); err == nil {
		t.Error("duplicate column should fail")
	}
	same, err := Project(ds, []int{0, 1, 2})
	if err != nil || same != ds {
		t.Error("identity projection should return the same dataset")
	}
	sub, err := Project(ds, []int{2})
	if err != nil || sub.M() != 1 || sub.Score(3, 0) != ds.Score(3, 2) {
		t.Errorf("subset projection wrong: %v", err)
	}
}
