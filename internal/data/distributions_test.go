package data

import (
	"math"
	"testing"
)

func TestGenerateDeterminism(t *testing.T) {
	for _, dist := range []Distribution{Uniform, Gaussian, Skewed, Correlated, AntiCorrelated} {
		a := MustGenerate(dist, 30, 3, 42)
		b := MustGenerate(dist, 30, 3, 42)
		for u := 0; u < 30; u++ {
			for i := 0; i < 3; i++ {
				if a.Score(u, i) != b.Score(u, i) {
					t.Fatalf("%v not deterministic at [%d][%d]", dist, u, i)
				}
			}
		}
		c := MustGenerate(dist, 30, 3, 43)
		same := true
		for u := 0; u < 30 && same; u++ {
			for i := 0; i < 3; i++ {
				if a.Score(u, i) != c.Score(u, i) {
					same = false
					break
				}
			}
		}
		if same {
			t.Errorf("%v: different seeds produced identical data", dist)
		}
	}
}

func TestGenerateBoundsAndSize(t *testing.T) {
	for _, dist := range []Distribution{Uniform, Gaussian, Skewed, Correlated, AntiCorrelated, Zipf} {
		d := MustGenerate(dist, 200, 4, 7)
		if d.N() != 200 || d.M() != 4 {
			t.Fatalf("%v: size %dx%d", dist, d.N(), d.M())
		}
		for u := 0; u < d.N(); u++ {
			for i := 0; i < d.M(); i++ {
				s := d.Score(u, i)
				if s < 0 || s > 1 {
					t.Fatalf("%v: score out of range: %g", dist, s)
				}
			}
		}
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := Generate(Uniform, 0, 2, 1); err == nil {
		t.Error("n=0 should fail")
	}
	if _, err := Generate(Uniform, 2, 0, 1); err == nil {
		t.Error("m=0 should fail")
	}
	if _, err := Generate(Distribution(99), 2, 2, 1); err == nil {
		t.Error("unknown distribution should fail")
	}
}

func TestSkewedPilesNearZero(t *testing.T) {
	d := MustGenerate(Skewed, 2000, 1, 3)
	below := 0
	for u := 0; u < d.N(); u++ {
		if d.Score(u, 0) < 0.125 { // P(u^3 < 1/8) = P(u < 1/2) = 1/2
			below++
		}
	}
	frac := float64(below) / float64(d.N())
	if frac < 0.42 || frac > 0.58 {
		t.Errorf("skewed mass below 0.125 = %.2f, want ~0.5", frac)
	}
}

func pearson(d *Dataset, i, j int) float64 {
	n := float64(d.N())
	var si, sj, sii, sjj, sij float64
	for u := 0; u < d.N(); u++ {
		x, y := d.Score(u, i), d.Score(u, j)
		si += x
		sj += y
		sii += x * x
		sjj += y * y
		sij += x * y
	}
	cov := sij/n - si/n*sj/n
	vi := sii/n - si/n*si/n
	vj := sjj/n - sj/n*sj/n
	return cov / math.Sqrt(vi*vj)
}

func TestCorrelationSigns(t *testing.T) {
	cor := MustGenerate(Correlated, 1500, 2, 9)
	if r := pearson(cor, 0, 1); r < 0.5 {
		t.Errorf("correlated r = %.2f, want > 0.5", r)
	}
	anti := MustGenerate(AntiCorrelated, 1500, 2, 9)
	if r := pearson(anti, 0, 1); r > -0.2 {
		t.Errorf("anticorrelated r = %.2f, want < -0.2", r)
	}
	uni := MustGenerate(Uniform, 1500, 2, 9)
	if r := pearson(uni, 0, 1); math.Abs(r) > 0.1 {
		t.Errorf("uniform r = %.2f, want ~0", r)
	}
}

func TestZipfHeavyTail(t *testing.T) {
	d := MustGenerate(Zipf, 2000, 1, 3)
	zero, high := 0, 0
	for u := 0; u < d.N(); u++ {
		switch s := d.Score(u, 0); {
		case s == 0: // rank-0 draws: the irrelevant mass (P ~ 1/zeta(3))
			zero++
		case s >= 0.5: // rank >= 1: the thin power-law tail of answers
			high++
		}
	}
	if frac := float64(zero) / float64(d.N()); frac < 0.7 {
		t.Errorf("zipf mass at score 0 = %.2f, want > 0.7", frac)
	}
	// P(rank >= 1) = 1 - 1/zeta(3) ~ 0.17: thin but never empty.
	if frac := float64(high) / float64(d.N()); frac < 0.05 || frac > 0.3 {
		t.Errorf("zipf tail mass at score >= 0.5 = %.2f, want in [0.05, 0.3]", frac)
	}
}

func TestDistributionNames(t *testing.T) {
	for _, d := range []Distribution{Uniform, Gaussian, Skewed, Correlated, AntiCorrelated, Zipf} {
		got, err := DistributionByName(d.String())
		if err != nil || got != d {
			t.Errorf("round-trip %v failed: %v, %v", d, got, err)
		}
	}
	if _, err := DistributionByName("bogus"); err == nil {
		t.Error("bogus name should fail")
	}
	if Distribution(42).String() == "" {
		t.Error("unknown distribution should still print")
	}
}

func mustSample(t *testing.T, d *Dataset, s int, seed int64) *Dataset {
	t.Helper()
	out, err := Sample(d, s, seed)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestSample(t *testing.T) {
	d := MustGenerate(Uniform, 100, 2, 1)
	s := mustSample(t, d, 10, 2)
	if s.N() != 10 || s.M() != 2 {
		t.Fatalf("sample size %dx%d", s.N(), s.M())
	}
	// Every sampled row must exist in the original.
	rows := make(map[[2]float64]bool)
	for u := 0; u < d.N(); u++ {
		rows[[2]float64{d.Score(u, 0), d.Score(u, 1)}] = true
	}
	for u := 0; u < s.N(); u++ {
		if !rows[[2]float64{s.Score(u, 0), s.Score(u, 1)}] {
			t.Fatal("sample contains a row not in the source")
		}
	}
	// Determinism and clamping.
	s2 := mustSample(t, d, 10, 2)
	if s2.Score(0, 0) != s.Score(0, 0) {
		t.Error("sample not deterministic")
	}
	if mustSample(t, d, 1000, 3).N() != 100 {
		t.Error("oversized sample should clamp to N")
	}
	if mustSample(t, d, 0, 3).N() != 1 {
		t.Error("non-positive sample size should clamp to 1")
	}
}

func TestDummySample(t *testing.T) {
	s, err := DummySample(25, 3, 11)
	if err != nil {
		t.Fatal(err)
	}
	if s.N() != 25 || s.M() != 3 {
		t.Fatalf("dummy sample size %dx%d", s.N(), s.M())
	}
}
