// Package data provides the database substrate for top-k middleware
// experiments: in-memory datasets of per-predicate scores, synthetic score
// distributions (uniform, gaussian, zipf-skewed, correlated,
// anti-correlated), a brute-force top-k oracle for correctness checks, and
// the paper's travel-agent benchmark generator (restaurants for Query Q1,
// hotels for Query Q2).
//
// A Dataset is immutable after construction. Sorted views (the descending
// per-predicate orders that sorted access walks) are built once and shared.
package data

import (
	"fmt"
	"math"
	"sort"
)

// Dataset holds n objects with m predicate scores each, all in [0,1].
// Objects are identified by their index 0..n-1 ("OID"). Following the
// paper (Section 3.1) ties in overall score are broken deterministically;
// we adopt the paper's Example 9 convention that the higher OID wins.
type Dataset struct {
	name   string
	scores [][]float64 // scores[obj][pred]
	sorted [][]int     // sorted[pred] = object ids in descending score order
	labels []string    // optional human-readable object labels
}

// New constructs a dataset from a score matrix. The matrix is copied.
// It returns an error if the matrix is empty, ragged, or contains scores
// outside [0,1].
func New(name string, scores [][]float64) (*Dataset, error) {
	n := len(scores)
	if n == 0 {
		return nil, fmt.Errorf("data: dataset %q has no objects", name)
	}
	m := len(scores[0])
	if m == 0 {
		return nil, fmt.Errorf("data: dataset %q has no predicates", name)
	}
	cp := make([][]float64, n)
	flat := make([]float64, n*m)
	for u, row := range scores {
		if len(row) != m {
			return nil, fmt.Errorf("data: dataset %q is ragged: object %d has %d scores, want %d", name, u, len(row), m)
		}
		cp[u] = flat[u*m : (u+1)*m : (u+1)*m]
		for i, s := range row {
			if math.IsNaN(s) || s < 0 || s > 1 {
				return nil, fmt.Errorf("data: dataset %q score [%d][%d] = %v outside [0,1]", name, u, i, s)
			}
			cp[u][i] = s
		}
	}
	d := &Dataset{name: name, scores: cp}
	d.buildSorted()
	return d, nil
}

func (d *Dataset) buildSorted() {
	m := d.M()
	d.sorted = make([][]int, m)
	for i := 0; i < m; i++ {
		ids := make([]int, d.N())
		for u := range ids {
			ids[u] = u
		}
		pred := i
		sort.SliceStable(ids, func(a, b int) bool {
			sa, sb := d.scores[ids[a]][pred], d.scores[ids[b]][pred]
			if sa != sb {
				return sa > sb
			}
			// Deterministic tie-break within a sorted list: higher OID
			// first, consistent with the overall-score tie-breaker.
			return ids[a] > ids[b]
		})
		d.sorted[i] = ids
	}
}

// Name returns the dataset's name.
func (d *Dataset) Name() string { return d.name }

// N returns the number of objects.
func (d *Dataset) N() int { return len(d.scores) }

// M returns the number of predicates.
func (d *Dataset) M() int { return len(d.scores[0]) }

// Score returns p_i[u], the exact score of object u on predicate i.
func (d *Dataset) Score(u, i int) float64 { return d.scores[u][i] }

// Scores returns a copy of object u's score vector.
func (d *Dataset) Scores(u int) []float64 {
	out := make([]float64, d.M())
	copy(out, d.scores[u])
	return out
}

// SortedAt returns the object at the given zero-based rank of predicate
// i's descending sorted list, together with its score.
func (d *Dataset) SortedAt(i, rank int) (obj int, s float64) {
	obj = d.sorted[i][rank]
	return obj, d.scores[obj][i]
}

// Label returns the human-readable label of object u, or "u<id>" if none
// was set.
func (d *Dataset) Label(u int) string {
	if d.labels != nil && d.labels[u] != "" {
		return d.labels[u]
	}
	return fmt.Sprintf("u%d", u)
}

// SetLabels attaches human-readable labels (copied; may be shorter than N,
// missing entries default). Intended for benchmark generators.
func (d *Dataset) SetLabels(labels []string) {
	d.labels = make([]string, d.N())
	copy(d.labels, labels)
}

// Less reports whether object a ranks strictly below object b under the
// deterministic total order (score desc, then OID desc) for the given
// overall scores. It is the single source of truth for tie-breaking.
func Less(scoreA float64, a int, scoreB float64, b int) bool {
	if scoreA != scoreB {
		return scoreA < scoreB
	}
	return a < b
}

// Project returns a dataset whose predicate columns are the given columns
// of d, in order (reordering and subsetting; duplicates are rejected since
// duplicate predicates make access bookkeeping ambiguous). Labels carry
// over; an identity projection returns d itself.
func Project(d *Dataset, cols []int) (*Dataset, error) {
	if len(cols) == 0 {
		return nil, fmt.Errorf("data: projection needs at least one column")
	}
	identity := len(cols) == d.M()
	seen := make(map[int]bool, len(cols))
	for i, c := range cols {
		if c < 0 || c >= d.M() {
			return nil, fmt.Errorf("data: projection column %d out of range [0,%d)", c, d.M())
		}
		if seen[c] {
			return nil, fmt.Errorf("data: projection repeats column %d", c)
		}
		seen[c] = true
		if c != i {
			identity = false
		}
	}
	if identity {
		return d, nil
	}
	rows := make([][]float64, d.N())
	for u := 0; u < d.N(); u++ {
		row := make([]float64, len(cols))
		for i, c := range cols {
			row[i] = d.scores[u][c]
		}
		rows[u] = row
	}
	out, err := New(d.name+"/projected", rows)
	if err != nil {
		return nil, err
	}
	if d.labels != nil {
		out.SetLabels(d.labels)
	}
	return out, nil
}

// Ranked is one entry of an oracle ranking.
type Ranked struct {
	Obj   int
	Score float64
}

// TopK computes the exact top-k answer by brute force using the scoring
// function eval (called with each object's full score vector). It is the
// correctness oracle for every middleware algorithm. k is clamped to N.
func (d *Dataset) TopK(eval func([]float64) float64, k int) []Ranked {
	n := d.N()
	if k > n {
		k = n
	}
	all := make([]Ranked, n)
	for u := 0; u < n; u++ {
		all[u] = Ranked{Obj: u, Score: eval(d.scores[u])}
	}
	sort.Slice(all, func(a, b int) bool {
		// Descending: b below a.
		return Less(all[b].Score, all[b].Obj, all[a].Score, all[a].Obj)
	})
	return all[:k]
}
