package score

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// allFuncs returns one instance of every built-in function usable at the
// given arity.
func allFuncs(m int) []Func {
	fs := []Func{Min(), Max(), Avg(), Product(), Geometric()}
	w := make([]float64, m)
	for i := range w {
		w[i] = float64(i+1) / float64(m)
	}
	fs = append(fs, Weighted(w...))
	return fs
}

func clampVec(xs []float64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		x = math.Abs(x)
		x -= math.Floor(x) // fold into [0,1)
		out[i] = x
	}
	return out
}

func TestEvalKnownValues(t *testing.T) {
	cases := []struct {
		f    Func
		in   []float64
		want float64
	}{
		{Min(), []float64{0.7, 0.9}, 0.7},
		{Min(), []float64{0.3, 0.3, 0.3}, 0.3},
		{Max(), []float64{0.7, 0.9}, 0.9},
		{Avg(), []float64{0.7, 0.9}, 0.8},
		{Avg(), []float64{1, 0, 1}, 2.0 / 3},
		{Product(), []float64{0.5, 0.5}, 0.25},
		{Geometric(), []float64{0.25, 1}, 0.5},
		{Weighted(2, 1), []float64{0.5, 1}, 2.0},
		{Weighted(0.5, 0.5), []float64{0.7, 0.9}, 0.8},
	}
	for _, c := range cases {
		got := c.f.Eval(c.in)
		if math.Abs(got-c.want) > 1e-12 {
			t.Errorf("%s(%v) = %g, want %g", c.f.Name(), c.in, got, c.want)
		}
	}
}

func TestMonotonicityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, m := range []int{1, 2, 3, 5} {
		for _, f := range allFuncs(m) {
			f := f
			prop := func(a, b []float64) bool {
				if len(a) < m || len(b) < m {
					return true
				}
				x := clampVec(a[:m])
				bump := clampVec(b[:m])
				y := make([]float64, m)
				for i := range y {
					y[i] = math.Min(1, x[i]+bump[i])
				}
				return f.Eval(x) <= f.Eval(y)+1e-12
			}
			cfg := &quick.Config{MaxCount: 200, Rand: rng}
			if err := quick.Check(prop, cfg); err != nil {
				t.Errorf("monotonicity violated for %s at m=%d: %v", f.Name(), m, err)
			}
		}
	}
}

func TestRangeProperty(t *testing.T) {
	// Built-ins with normalized weights must map [0,1]^m into [0,1].
	rng := rand.New(rand.NewSource(11))
	for _, m := range []int{1, 2, 4} {
		w := make([]float64, m)
		for i := range w {
			w[i] = 1 / float64(m)
		}
		fs := []Func{Min(), Max(), Avg(), Product(), Geometric(), Weighted(w...)}
		for _, f := range fs {
			f := f
			prop := func(a []float64) bool {
				if len(a) < m {
					return true
				}
				x := clampVec(a[:m])
				v := f.Eval(x)
				return v >= -1e-12 && v <= 1+1e-12
			}
			if err := quick.Check(prop, &quick.Config{MaxCount: 200, Rand: rng}); err != nil {
				t.Errorf("range violated for %s at m=%d: %v", f.Name(), m, err)
			}
		}
	}
}

func TestDerivativeApplicability(t *testing.T) {
	pt := []float64{0.4, 0.6}
	if _, ok := Min().Derivative(pt, 0); ok {
		t.Error("min should report derivative indicator inapplicable")
	}
	if _, ok := Max().Derivative(pt, 0); ok {
		t.Error("max should report derivative indicator inapplicable")
	}
	if d, ok := Avg().Derivative(pt, 0); !ok || math.Abs(d-0.5) > 1e-12 {
		t.Errorf("avg derivative = %v,%v want 0.5,true", d, ok)
	}
	if d, ok := Weighted(3, 1).Derivative(pt, 0); !ok || d != 3 {
		t.Errorf("wsum derivative = %v,%v want 3,true", d, ok)
	}
	if d, ok := Product().Derivative(pt, 0); !ok || math.Abs(d-0.6) > 1e-12 {
		t.Errorf("product derivative = %v,%v want 0.6,true", d, ok)
	}
	if _, ok := Geometric().Derivative([]float64{0, 0.5}, 0); ok {
		t.Error("geomean derivative at zero should be inapplicable")
	}
	if d, ok := Geometric().Derivative([]float64{1, 1}, 0); !ok || math.Abs(d-0.5) > 1e-12 {
		t.Errorf("geomean derivative at (1,1) = %v,%v want 0.5,true", d, ok)
	}
}

func TestDerivativeMatchesFiniteDifference(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const h = 1e-6
	for _, m := range []int{2, 3} {
		for _, f := range allFuncs(m) {
			for trial := 0; trial < 50; trial++ {
				x := make([]float64, m)
				for i := range x {
					x[i] = 0.1 + 0.8*rng.Float64()
				}
				for i := 0; i < m; i++ {
					d, ok := f.Derivative(x, i)
					if !ok {
						continue
					}
					xp := append([]float64(nil), x...)
					xp[i] += h
					fd := (f.Eval(xp) - f.Eval(x)) / h
					if math.Abs(fd-d) > 1e-4 {
						t.Fatalf("%s d/dx_%d at %v: analytic %g vs finite-diff %g", f.Name(), i, x, d, fd)
					}
				}
			}
		}
	}
}

func TestShapes(t *testing.T) {
	cases := map[string]Shape{
		"min":     ShapeMinLike,
		"max":     ShapeMaxLike,
		"avg":     ShapeMeanLike,
		"product": ShapeMinLike,
		"geomean": ShapeMinLike,
	}
	for name, want := range cases {
		f, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if f.Shape() != want {
			t.Errorf("%s shape = %v, want %v", name, f.Shape(), want)
		}
	}
	if Weighted(1, 2).Shape() != ShapeMeanLike {
		t.Error("weighted sum should be mean-like")
	}
	if ShapeOther.String() != "other" || ShapeMinLike.String() != "min-like" ||
		ShapeMeanLike.String() != "mean-like" || ShapeMaxLike.String() != "max-like" {
		t.Error("Shape.String mismatch")
	}
}

func TestValidate(t *testing.T) {
	if err := Validate(Min(), 3); err != nil {
		t.Errorf("min at m=3: %v", err)
	}
	if err := Validate(Weighted(1, 2), 2); err != nil {
		t.Errorf("wsum(1,2) at m=2: %v", err)
	}
	if err := Validate(Weighted(1, 2), 3); err == nil {
		t.Error("wsum(1,2) at m=3 should fail")
	}
	if err := Validate(Min(), 0); err == nil {
		t.Error("m=0 should fail")
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("harmonic"); err == nil {
		t.Error("ByName(harmonic) should fail")
	}
}

func TestWeightedPanics(t *testing.T) {
	assertPanics := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	assertPanics("empty", func() { Weighted() })
	assertPanics("negative", func() { Weighted(0.5, -0.1) })
	assertPanics("nan", func() { Weighted(math.NaN()) })
}

func TestWeighterInterface(t *testing.T) {
	f := Weighted(0.25, 0.75)
	w, ok := f.(Weighter)
	if !ok {
		t.Fatal("weighted sum should implement Weighter")
	}
	ws := w.Weights()
	if len(ws) != 2 || ws[0] != 0.25 || ws[1] != 0.75 {
		t.Errorf("Weights() = %v", ws)
	}
	ws[0] = 99 // must not alias internal state
	if f.Eval([]float64{1, 0}) != 0.25 {
		t.Error("Weights() must return a copy")
	}
}

func BenchmarkEvalAvg(b *testing.B) {
	f := Avg()
	x := []float64{0.1, 0.9, 0.5, 0.7}
	for i := 0; i < b.N; i++ {
		_ = f.Eval(x)
	}
}

func BenchmarkEvalWeighted(b *testing.B) {
	f := Weighted(0.1, 0.2, 0.3, 0.4)
	x := []float64{0.1, 0.9, 0.5, 0.7}
	for i := 0; i < b.N; i++ {
		_ = f.Eval(x)
	}
}
