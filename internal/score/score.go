// Package score provides the monotone scoring functions that aggregate
// per-predicate scores into an overall query score for top-k queries.
//
// A top-k query Q = (F, k) ranks objects by F(p_1[u], ..., p_m[u]) where
// each predicate score p_i[u] lies in [0,1]. Following the paper's standard
// assumption (Section 3.1), every Func in this package is monotone:
// F(x) <= F(y) whenever x_i <= y_i for all i. Monotonicity is what makes
// maximal-possible scores (substituting unevaluated predicates by their
// upper bounds) sound, and it is checked by property tests.
//
// Besides evaluation, a Func carries two pieces of metadata used elsewhere:
//
//   - Shape: a coarse classification consumed by the optimizer's
//     query-driven "Strategies" scheme (Section 7.2), which focuses the
//     H-search on configurations that suit the function (e.g. focused
//     depths for min-like functions, equal depths for mean-like ones).
//   - Derivative: the partial derivative where defined, consumed by the
//     Quick-Combine / Stream-Combine indicator. The paper points out that
//     this indicator "may not [be] applicable to all functions (e.g.,
//     min)"; Derivative reports applicability explicitly.
package score

import (
	"errors"
	"fmt"
	"math"
)

// Shape classifies a scoring function for the optimizer's Strategies
// scheme. It is a heuristic hint, never a correctness requirement.
type Shape int

const (
	// ShapeOther marks functions with no specific strategy; the optimizer
	// falls back to a generic search.
	ShapeOther Shape = iota
	// ShapeMinLike marks functions dominated by their smallest argument
	// (min, product, geometric mean). Focused sorted-access depths tend to
	// win: driving one list deep quickly caps every object's overall bound.
	ShapeMinLike
	// ShapeMeanLike marks functions where every argument contributes
	// proportionally (avg, weighted sum). Equal or weight-proportional
	// depths tend to win.
	ShapeMeanLike
	// ShapeMaxLike marks functions dominated by their largest argument
	// (max). Sorted access on any single list determines the top answers;
	// shallow parallel depths tend to win.
	ShapeMaxLike
)

// String returns the shape name.
func (s Shape) String() string {
	switch s {
	case ShapeMinLike:
		return "min-like"
	case ShapeMeanLike:
		return "mean-like"
	case ShapeMaxLike:
		return "max-like"
	default:
		return "other"
	}
}

// Func is a monotone scoring function over predicate scores in [0,1].
//
// Implementations must be pure and safe for concurrent use.
type Func interface {
	// Name returns a short human-readable identifier such as "min" or
	// "wsum(0.5,0.5)".
	Name() string

	// Arity returns the number of predicate scores the function expects,
	// or 0 if it accepts any positive arity.
	Arity() int

	// Eval computes the overall score. The slice must have length Arity()
	// (or any positive length when Arity() == 0); Eval must not retain or
	// modify it. Inputs outside [0,1] are clamped by callers, not here.
	Eval(scores []float64) float64

	// Shape returns the strategy classification for the optimizer.
	Shape() Shape

	// Derivative returns dF/dx_i at the given point and whether the
	// derivative indicator is applicable to this function. Functions like
	// min return ok == false.
	Derivative(scores []float64, i int) (d float64, ok bool)
}

// ErrArity is returned by Validate when a function's arity does not match
// the number of query predicates.
var ErrArity = errors.New("score: function arity does not match predicate count")

// Validate checks that f can aggregate m predicate scores.
func Validate(f Func, m int) error {
	if m <= 0 {
		return fmt.Errorf("score: predicate count must be positive, got %d", m)
	}
	if a := f.Arity(); a != 0 && a != m {
		return fmt.Errorf("%w: function %s expects %d, query has %d", ErrArity, f.Name(), a, m)
	}
	return nil
}

// minFunc implements F = min(x_1..x_m).
type minFunc struct{}

// Min returns the minimum scoring function, the running example of the
// paper's Query Q1 ("order by min(rating, closeness)").
func Min() Func { return minFunc{} }

func (minFunc) Name() string { return "min" }
func (minFunc) Arity() int   { return 0 }
func (minFunc) Shape() Shape { return ShapeMinLike }

func (minFunc) Eval(scores []float64) float64 {
	m := scores[0]
	for _, s := range scores[1:] {
		if s < m {
			m = s
		}
	}
	return m
}

func (minFunc) Derivative(scores []float64, i int) (float64, bool) {
	// min is not differentiable at ties and its derivative is a poor
	// steering indicator (the paper's critique of Quick-Combine); report
	// inapplicable.
	return 0, false
}

// maxFunc implements F = max(x_1..x_m).
type maxFunc struct{}

// Max returns the maximum scoring function.
func Max() Func { return maxFunc{} }

func (maxFunc) Name() string { return "max" }
func (maxFunc) Arity() int   { return 0 }
func (maxFunc) Shape() Shape { return ShapeMaxLike }

func (maxFunc) Eval(scores []float64) float64 {
	m := scores[0]
	for _, s := range scores[1:] {
		if s > m {
			m = s
		}
	}
	return m
}

func (maxFunc) Derivative(scores []float64, i int) (float64, bool) {
	return 0, false
}

// avgFunc implements F = (x_1 + ... + x_m) / m.
type avgFunc struct{}

// Avg returns the arithmetic-mean scoring function, used by the paper's
// Query Q2 and scenario S1.
func Avg() Func { return avgFunc{} }

func (avgFunc) Name() string { return "avg" }
func (avgFunc) Arity() int   { return 0 }
func (avgFunc) Shape() Shape { return ShapeMeanLike }

func (avgFunc) Eval(scores []float64) float64 {
	sum := 0.0
	for _, s := range scores {
		sum += s
	}
	return sum / float64(len(scores))
}

func (avgFunc) Derivative(scores []float64, i int) (float64, bool) {
	return 1 / float64(len(scores)), true
}

// weighted implements F = sum_i w_i * x_i with w_i >= 0.
type weighted struct {
	w    []float64
	name string
}

// Weighted returns a weighted-sum scoring function with the given
// non-negative weights. The weights are copied; they need not sum to 1
// (overall scores then range in [0, sum(w)]). Weighted panics if no weight
// is given or any weight is negative, since such a function would not be a
// monotone [0,1]-aggregate.
func Weighted(weights ...float64) Func {
	if len(weights) == 0 {
		panic("score: Weighted requires at least one weight")
	}
	w := make([]float64, len(weights))
	name := "wsum("
	for i, x := range weights {
		if x < 0 || math.IsNaN(x) {
			panic(fmt.Sprintf("score: Weighted weight %d is %v, must be >= 0", i, x))
		}
		w[i] = x
		if i > 0 {
			name += ","
		}
		name += fmt.Sprintf("%g", x)
	}
	return weighted{w: w, name: name + ")"}
}

func (f weighted) Name() string { return f.name }
func (f weighted) Arity() int   { return len(f.w) }
func (f weighted) Shape() Shape { return ShapeMeanLike }

// Weights returns a copy of the weight vector. It is used by the
// Strategies scheme to bias depths proportionally to weights.
func (f weighted) Weights() []float64 {
	out := make([]float64, len(f.w))
	copy(out, f.w)
	return out
}

func (f weighted) Eval(scores []float64) float64 {
	sum := 0.0
	for i, s := range scores {
		sum += f.w[i] * s
	}
	return sum
}

func (f weighted) Derivative(scores []float64, i int) (float64, bool) {
	return f.w[i], true
}

// Weighter is implemented by functions that expose per-predicate weights
// (currently the weighted sum). The optimizer uses it to scale depths.
type Weighter interface {
	Weights() []float64
}

// product implements F = x_1 * ... * x_m.
type product struct{}

// Product returns the product scoring function. Like min it is dominated
// by small arguments, so it classifies as min-like.
func Product() Func { return product{} }

func (product) Name() string { return "product" }
func (product) Arity() int   { return 0 }
func (product) Shape() Shape { return ShapeMinLike }

func (product) Eval(scores []float64) float64 {
	p := 1.0
	for _, s := range scores {
		p *= s
	}
	return p
}

func (product) Derivative(scores []float64, i int) (float64, bool) {
	d := 1.0
	for j, s := range scores {
		if j != i {
			d *= s
		}
	}
	return d, true
}

// geometric implements F = (x_1 * ... * x_m)^(1/m).
type geometric struct{}

// Geometric returns the geometric-mean scoring function.
func Geometric() Func { return geometric{} }

func (geometric) Name() string { return "geomean" }
func (geometric) Arity() int   { return 0 }
func (geometric) Shape() Shape { return ShapeMinLike }

func (geometric) Eval(scores []float64) float64 {
	p := 1.0
	for _, s := range scores {
		p *= s
	}
	return math.Pow(p, 1/float64(len(scores)))
}

func (geometric) Derivative(scores []float64, i int) (float64, bool) {
	// d/dx_i (prod x)^(1/m) = F / (m * x_i); undefined at x_i == 0.
	if scores[i] == 0 {
		return 0, false
	}
	g := geometric{}.Eval(scores)
	return g / (float64(len(scores)) * scores[i]), true
}

// orderStat implements F = the j-th largest argument (1-based). It
// generalizes min (j = m), max (j = 1), and the median: an object scores
// well when at least j of its predicates score well, the "quantile
// semantics" of soft conjunctions. Order statistics are monotone —
// raising any coordinate can only raise the j-th largest — so they slot
// into the framework like any other Func.
type orderStat struct {
	j int
}

// OrderStatistic returns the j-th-largest scoring function (1-based:
// j = 1 is max). It panics for j < 1; arity is flexible, and j is clamped
// to the argument count at evaluation (so j = 2 over one predicate is that
// predicate).
func OrderStatistic(j int) Func {
	if j < 1 {
		panic(fmt.Sprintf("score: OrderStatistic(%d): j must be >= 1", j))
	}
	return orderStat{j: j}
}

// Median returns the lower-median order statistic evaluated dynamically
// per arity: the ceil(m/2)-th largest argument. Note its Arity is open, so
// the rank adapts to the query's predicate count.
func Median() Func { return medianFunc{} }

func (f orderStat) Name() string { return fmt.Sprintf("kth-largest(%d)", f.j) }
func (f orderStat) Arity() int   { return 0 }
func (f orderStat) Shape() Shape {
	// Like min, the value is pinned by a low coordinate once fewer than j
	// coordinates can exceed it; focused strategies tend to apply.
	return ShapeMinLike
}

func (f orderStat) Eval(scores []float64) float64 {
	return kthLargest(scores, f.j)
}

func (f orderStat) Derivative(scores []float64, i int) (float64, bool) {
	return 0, false // piecewise selection, no useful steering derivative
}

type medianFunc struct{}

func (medianFunc) Name() string { return "median" }
func (medianFunc) Arity() int   { return 0 }
func (medianFunc) Shape() Shape { return ShapeMinLike }

func (medianFunc) Eval(scores []float64) float64 {
	return kthLargest(scores, (len(scores)+1)/2)
}

func (medianFunc) Derivative(scores []float64, i int) (float64, bool) {
	return 0, false
}

// kthLargest selects the j-th largest value (j clamped to len(xs)) by
// insertion into a small descending prefix; m is tiny, so O(m*j) beats
// sorting a copy.
func kthLargest(xs []float64, j int) float64 {
	if j > len(xs) {
		j = len(xs)
	}
	top := make([]float64, 0, j)
	for _, x := range xs {
		pos := len(top)
		for pos > 0 && top[pos-1] < x {
			pos--
		}
		if pos < j {
			if len(top) < j {
				top = append(top, 0)
			}
			copy(top[pos+1:], top[pos:len(top)-1])
			top[pos] = x
		}
	}
	return top[len(top)-1]
}

// ByName returns the built-in function with the given name: "min", "max",
// "avg", "product", "geomean", "median". It is a convenience for
// command-line tools; weighted sums and order statistics must be
// constructed with Weighted and OrderStatistic.
func ByName(name string) (Func, error) {
	switch name {
	case "min":
		return Min(), nil
	case "max":
		return Max(), nil
	case "avg":
		return Avg(), nil
	case "product":
		return Product(), nil
	case "geomean":
		return Geometric(), nil
	case "median":
		return Median(), nil
	default:
		return nil, fmt.Errorf("score: unknown function %q", name)
	}
}
