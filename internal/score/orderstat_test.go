package score

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestOrderStatisticKnownValues(t *testing.T) {
	xs := []float64{0.2, 0.9, 0.5, 0.7}
	cases := []struct {
		j    int
		want float64
	}{
		{1, 0.9}, {2, 0.7}, {3, 0.5}, {4, 0.2},
		{9, 0.2}, // clamps to m
	}
	for _, c := range cases {
		if got := OrderStatistic(c.j).Eval(xs); got != c.want {
			t.Errorf("kth-largest(%d) = %g, want %g", c.j, got, c.want)
		}
	}
	// Identities: j=1 is max, j=m is min.
	if OrderStatistic(1).Eval(xs) != Max().Eval(xs) {
		t.Error("j=1 should equal max")
	}
	if OrderStatistic(4).Eval(xs) != Min().Eval(xs) {
		t.Error("j=m should equal min")
	}
}

func TestMedian(t *testing.T) {
	if got := Median().Eval([]float64{0.1, 0.5, 0.9}); got != 0.5 {
		t.Errorf("median of 3 = %g", got)
	}
	// Even arity: lower median = ceil(4/2) = 2nd largest.
	if got := Median().Eval([]float64{0.1, 0.2, 0.8, 0.9}); got != 0.8 {
		t.Errorf("median of 4 = %g", got)
	}
	if got := Median().Eval([]float64{0.4}); got != 0.4 {
		t.Errorf("median of 1 = %g", got)
	}
	if Median().Name() != "median" || Median().Shape() != ShapeMinLike {
		t.Error("median metadata wrong")
	}
	if _, ok := Median().Derivative([]float64{0.5, 0.5}, 0); ok {
		t.Error("median derivative should be inapplicable")
	}
}

func TestOrderStatisticPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("j=0 should panic")
		}
	}()
	OrderStatistic(0)
}

func TestOrderStatisticMatchesSortProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	prop := func(raw []float64, jRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := clampVec(raw)
		j := int(jRaw)%len(xs) + 1
		got := OrderStatistic(j).Eval(xs)
		sorted := append([]float64(nil), xs...)
		sort.Sort(sort.Reverse(sort.Float64Slice(sorted)))
		return got == sorted[j-1]
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestOrderStatisticMonotoneProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	prop := func(a, b []float64, jRaw uint8) bool {
		if len(a) < 3 || len(b) < 3 {
			return true
		}
		x := clampVec(a[:3])
		bump := clampVec(b[:3])
		y := make([]float64, 3)
		for i := range y {
			y[i] = math.Min(1, x[i]+bump[i])
		}
		j := int(jRaw)%3 + 1
		f := OrderStatistic(j)
		return f.Eval(x) <= f.Eval(y)+1e-12
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestByNameMedian(t *testing.T) {
	f, err := ByName("median")
	if err != nil || f.Name() != "median" {
		t.Errorf("ByName(median) = %v, %v", f, err)
	}
}
