package store

import (
	"encoding/binary"
	"fmt"
	"math"
	"path/filepath"
	"strconv"
)

// FormatVersion identifies the on-disk layout. Any change to the file
// formats below — header widths, entry encoding, fence layout — must bump
// it; Open refuses a store whose manifest names a different version, and
// the CI storage job keys its dataset cache on it so a layout change can
// never serve stale bytes to new code.
const FormatVersion = 1

// DefaultBlockEntries is the number of sorted entries per segment block
// (the unit of sequential IO): 4096 entries x 12 bytes = 48 KiB reads,
// large enough that one block read amortizes the seek over thousands of
// sorted accesses, small enough that a handful of hot blocks per
// predicate fit any cache budget.
const DefaultBlockEntries = 4096

// entrySize is the fixed on-disk size of one sorted-segment entry:
// uint32 object id + float64 score, little-endian.
const entrySize = 12

// Magic strings open every file so a foreign or truncated-at-zero file
// fails loudly instead of decoding garbage.
const (
	scoresMagic  = "TOPKSCR1"
	segmentMagic = "TOPKSEG1"
	magicSize    = 8
)

// scoresHeaderSize is the scores.dat header: magic + uint32 n + uint32 m.
const scoresHeaderSize = magicSize + 4 + 4

// segmentHeaderSize is a segment header: magic + uint32 pred +
// uint32 blockEntries + uint64 entryCount.
const segmentHeaderSize = magicSize + 4 + 4 + 8

// ManifestName is the store directory's manifest file. It is written
// last, after every data file is synced, so its presence certifies a
// complete write: a crash mid-build leaves a directory without a
// manifest, which Open refuses.
const ManifestName = "MANIFEST.json"

// Manifest records the store's identity and the exact byte size of every
// data file. Open validates sizes against it, so any torn or truncated
// file — a crash after the manifest was written, a bad copy — surfaces as
// ErrCorrupt instead of an out-of-range read deep inside a query.
type Manifest struct {
	FormatVersion    int           `json:"format_version"`
	GeneratorVersion int           `json:"generator_version,omitempty"`
	Name             string        `json:"name"`
	N                int           `json:"n"`
	M                int           `json:"m"`
	BlockEntries     int           `json:"block_entries"`
	ScoresSize       int64         `json:"scores_size"`
	ScoresCRC        uint32        `json:"scores_crc32"`
	Segments         []SegmentInfo `json:"segments"`
}

// SegmentInfo is one predicate segment's manifest entry.
type SegmentInfo struct {
	Size int64  `json:"size"`
	CRC  uint32 `json:"crc32"`
}

// scoresPath and segmentPath name the data files inside a store dir.
func scoresPath(dir string) string { return filepath.Join(dir, "scores.dat") }

func segmentPath(dir string, pred int) string {
	return filepath.Join(dir, fmt.Sprintf("pred_%03d.seg", pred))
}

func manifestPath(dir string) string { return filepath.Join(dir, ManifestName) }

// segmentSize computes the exact byte size of a segment holding n entries
// at the given block granularity: header + entries + one fence score per
// block. The fence section is written after the entries, so a truncated
// write is always shorter than this and fails the manifest size check.
func segmentSize(n, blockEntries int) int64 {
	blocks := (n + blockEntries - 1) / blockEntries
	return segmentHeaderSize + int64(n)*entrySize + int64(blocks)*8
}

// scoresSize computes the exact byte size of scores.dat.
func scoresSize(n, m int) int64 { return scoresHeaderSize + int64(n)*int64(m)*8 }

// putEntry encodes one sorted entry at buf (12 bytes).
func putEntry(buf []byte, obj uint32, score float64) {
	binary.LittleEndian.PutUint32(buf, obj)
	binary.LittleEndian.PutUint64(buf[4:], math.Float64bits(score))
}

// getEntry decodes one sorted entry from buf.
func getEntry(buf []byte) (obj uint32, score float64) {
	return binary.LittleEndian.Uint32(buf),
		math.Float64frombits(binary.LittleEndian.Uint64(buf[4:]))
}

// QuantizeUnits rounds a measured unit cost (milliseconds per access) to
// two significant figures. Calibrated costs feed the optimizer's scenario
// and, through it, the plan-cache fingerprint; raw medians jitter run to
// run, so quantization is what keeps repeat calibrations keying to the
// same cached plans. Non-positive and non-finite inputs quantize to the
// smallest representable cost so a sub-resolution measurement still
// prices accesses above zero.
func QuantizeUnits(ms float64) float64 {
	const floor = 1e-6 // 1 nanosecond in milliseconds
	if math.IsNaN(ms) || math.IsInf(ms, 0) || ms <= floor {
		return floor
	}
	// Round-trip through a two-significant-figure decimal string rather
	// than multiplying by a power of ten: 41 * 1e-5 is 4.1000000000000005e-4
	// in float64, and that noise would leak into every fingerprint the
	// quantized value is printed into.
	q, err := strconv.ParseFloat(strconv.FormatFloat(ms, 'e', 1, 64), 64)
	if err != nil || q <= floor {
		return floor
	}
	return q
}
