package store

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
	"math"
	"os"
	"sort"

	"repro/internal/data"
)

// Writer builds a store directory by streaming object rows in id order:
// Append(scores) writes object u's row straight to scores.dat, so the
// full score matrix never lives in memory. Finish then builds each
// predicate's sorted segment by re-reading that one column from
// scores.dat — peak memory is a single predicate's (score, id) pairs
// (16 bytes per object), not the n x m matrix plus m sorted views an
// in-memory data.Dataset costs — and commits the manifest last, so a
// crash at any earlier point leaves a directory Open refuses loudly.
type Writer struct {
	dir          string
	name         string
	n, m         int
	genVersion   int
	blockEntries int

	next   int // objects appended so far (= next expected id)
	file   *os.File
	buf    *bufio.Writer
	crc    hash.Hash32
	rowBuf []byte
	done   bool
}

// WriterOptions tunes Create.
type WriterOptions struct {
	// BlockEntries is the sorted-segment block granularity
	// (DefaultBlockEntries when 0).
	BlockEntries int
	// GeneratorVersion records the score-generation procedure that feeds
	// Append (data.GeneratorVersion for synthetic datasets; 0 for
	// externally sourced scores). It is part of the manifest identity the
	// dataset cache keys on.
	GeneratorVersion int
}

// Create opens a writer for a store of n objects and m predicates in dir
// (created if missing; any previous store files there are overwritten on
// Finish). Rows must then be appended in object-id order.
func Create(dir, name string, n, m int, opts WriterOptions) (*Writer, error) {
	if n <= 0 || m <= 0 {
		return nil, fmt.Errorf("store: Create(n=%d, m=%d) requires positive sizes", n, m)
	}
	if n > math.MaxUint32 {
		return nil, fmt.Errorf("store: %d objects exceed the uint32 id space of format v%d", n, FormatVersion)
	}
	be := opts.BlockEntries
	if be <= 0 {
		be = DefaultBlockEntries
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	f, err := os.Create(scoresPath(dir) + ".tmp")
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	w := &Writer{
		dir: dir, name: name, n: n, m: m,
		genVersion:   opts.GeneratorVersion,
		blockEntries: be,
		file:         f,
		buf:          bufio.NewWriterSize(f, 1<<20),
		crc:          crc32.NewIEEE(),
		rowBuf:       make([]byte, m*8),
	}
	hdr := make([]byte, scoresHeaderSize)
	copy(hdr, scoresMagic)
	binary.LittleEndian.PutUint32(hdr[magicSize:], uint32(n))
	binary.LittleEndian.PutUint32(hdr[magicSize+4:], uint32(m))
	if err := w.write(hdr); err != nil {
		w.Abort()
		return nil, err
	}
	return w, nil
}

// write appends to the scores file, folding the bytes into the CRC.
func (w *Writer) write(b []byte) error {
	if _, err := w.buf.Write(b); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	w.crc.Write(b)
	return nil
}

// Append writes the next object's score row. Scores must be in [0,1]
// (NaN rejected), matching the contract every in-memory dataset enforces.
func (w *Writer) Append(scores []float64) error {
	if w.done {
		return fmt.Errorf("store: writer already finished")
	}
	if len(scores) != w.m {
		return fmt.Errorf("store: object %d has %d scores, store has %d predicates", w.next, len(scores), w.m)
	}
	if w.next >= w.n {
		return fmt.Errorf("store: object %d appended beyond declared n=%d", w.next, w.n)
	}
	for i, s := range scores {
		if math.IsNaN(s) || s < 0 || s > 1 {
			return fmt.Errorf("store: object %d score [%d] = %v outside [0,1]", w.next, i, s)
		}
		binary.LittleEndian.PutUint64(w.rowBuf[i*8:], math.Float64bits(s))
	}
	if err := w.write(w.rowBuf); err != nil {
		return err
	}
	w.next++
	return nil
}

// Abort discards the partial build, removing the temporary file.
func (w *Writer) Abort() {
	if w.file != nil {
		w.file.Close()
		os.Remove(w.file.Name())
		w.file = nil
	}
	w.done = true
}

// Finish completes the build: it syncs and publishes scores.dat, sorts
// and writes every predicate segment, and commits the manifest last.
func (w *Writer) Finish() error {
	if w.done {
		return fmt.Errorf("store: writer already finished")
	}
	if w.next != w.n {
		w.Abort()
		return fmt.Errorf("store: %d of %d declared objects appended", w.next, w.n)
	}
	w.done = true
	if err := w.buf.Flush(); err != nil {
		w.Abort()
		return fmt.Errorf("store: %w", err)
	}
	if err := w.file.Sync(); err != nil {
		w.Abort()
		return fmt.Errorf("store: %w", err)
	}
	tmp := w.file.Name()
	if err := w.file.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: %w", err)
	}
	w.file = nil
	if err := os.Rename(tmp, scoresPath(w.dir)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: %w", err)
	}
	man := Manifest{
		FormatVersion:    FormatVersion,
		GeneratorVersion: w.genVersion,
		Name:             w.name,
		N:                w.n,
		M:                w.m,
		BlockEntries:     w.blockEntries,
		ScoresSize:       scoresSize(w.n, w.m),
		ScoresCRC:        w.crc.Sum32(),
		Segments:         make([]SegmentInfo, w.m),
	}
	for i := 0; i < w.m; i++ {
		crc, err := writeSegment(w.dir, i, w.n, w.m, w.blockEntries)
		if err != nil {
			return err
		}
		man.Segments[i] = SegmentInfo{Size: segmentSize(w.n, w.blockEntries), CRC: crc}
	}
	return writeManifest(w.dir, man)
}

// segEntry is one in-memory (object, score) pair being sorted into a
// segment. 16 bytes; one predicate's worth is the writer's peak memory.
type segEntry struct {
	obj   uint32
	score float64
}

// writeSegment builds predicate pred's descending segment by reading its
// column back from the published scores.dat (one sequential pass), sorting
// by (score desc, id desc) — the tie-break every in-memory sorted view
// uses, so disk and memory serve byte-identical streams — and writing
// header, entries, and the block fence section.
func writeSegment(dir string, pred, n, m, blockEntries int) (uint32, error) {
	col, err := readColumn(dir, pred, n, m)
	if err != nil {
		return 0, err
	}
	sort.Slice(col, func(a, b int) bool {
		if col[a].score != col[b].score {
			return col[a].score > col[b].score
		}
		return col[a].obj > col[b].obj
	})

	path := segmentPath(dir, pred)
	f, err := os.Create(path + ".tmp")
	if err != nil {
		return 0, fmt.Errorf("store: %w", err)
	}
	defer func() {
		if f != nil {
			f.Close()
			os.Remove(path + ".tmp")
		}
	}()
	crc := crc32.NewIEEE()
	buf := bufio.NewWriterSize(io.MultiWriter(f, crc), 1<<20)

	hdr := make([]byte, segmentHeaderSize)
	copy(hdr, segmentMagic)
	binary.LittleEndian.PutUint32(hdr[magicSize:], uint32(pred))
	binary.LittleEndian.PutUint32(hdr[magicSize+4:], uint32(blockEntries))
	binary.LittleEndian.PutUint64(hdr[magicSize+8:], uint64(n))
	if _, err := buf.Write(hdr); err != nil {
		return 0, fmt.Errorf("store: %w", err)
	}

	blocks := (n + blockEntries - 1) / blockEntries
	fences := make([]byte, 0, blocks*8)
	ebuf := make([]byte, entrySize)
	for rank, e := range col {
		if rank%blockEntries == 0 {
			fences = binary.LittleEndian.AppendUint64(fences, math.Float64bits(e.score))
		}
		putEntry(ebuf, e.obj, e.score)
		if _, err := buf.Write(ebuf); err != nil {
			return 0, fmt.Errorf("store: %w", err)
		}
	}
	if _, err := buf.Write(fences); err != nil {
		return 0, fmt.Errorf("store: %w", err)
	}
	if err := buf.Flush(); err != nil {
		return 0, fmt.Errorf("store: %w", err)
	}
	if err := f.Sync(); err != nil {
		return 0, fmt.Errorf("store: %w", err)
	}
	tmp := f.Name()
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		f = nil
		return 0, fmt.Errorf("store: %w", err)
	}
	f = nil
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return 0, fmt.Errorf("store: %w", err)
	}
	return crc.Sum32(), nil
}

// readColumn streams scores.dat once, extracting predicate pred's column.
func readColumn(dir string, pred, n, m int) ([]segEntry, error) {
	f, err := os.Open(scoresPath(dir))
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	defer f.Close()
	if _, err := f.Seek(scoresHeaderSize, io.SeekStart); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	r := bufio.NewReaderSize(f, 1<<20)
	row := make([]byte, m*8)
	col := make([]segEntry, n)
	for u := 0; u < n; u++ {
		if _, err := io.ReadFull(r, row); err != nil {
			return nil, fmt.Errorf("store: reading scores row %d: %w", u, err)
		}
		col[u] = segEntry{
			obj:   uint32(u),
			score: math.Float64frombits(binary.LittleEndian.Uint64(row[pred*8:])),
		}
	}
	return col, nil
}

// writeManifest commits the manifest atomically (tmp + sync + rename).
func writeManifest(dir string, man Manifest) error {
	raw, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	path := manifestPath(dir)
	f, err := os.Create(path + ".tmp")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if _, err := f.Write(append(raw, '\n')); err != nil {
		f.Close()
		os.Remove(path + ".tmp")
		return fmt.Errorf("store: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(path + ".tmp")
		return fmt.Errorf("store: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(path + ".tmp")
		return fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(path+".tmp", path); err != nil {
		os.Remove(path + ".tmp")
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// WriteStream builds a complete store in dir from a streaming generator:
// it creates a writer sized (n, m), streams data.Stream's rows straight
// into it, and finishes. The resulting store serves bit-identical scores
// to data.Generate(dist, n, m, seed) — the property the disk-vs-memory
// oracle tests pin — without ever materializing the dataset.
func WriteStream(dir string, dist data.Distribution, n, m int, seed int64, opts WriterOptions) error {
	name := fmt.Sprintf("%s(n=%d,m=%d,seed=%d)", dist, n, m, seed)
	if opts.GeneratorVersion == 0 {
		opts.GeneratorVersion = data.GeneratorVersion
	}
	w, err := Create(dir, name, n, m, opts)
	if err != nil {
		return err
	}
	if err := data.Stream(dist, n, m, seed, func(_ int, scores []float64) error {
		return w.Append(scores)
	}); err != nil {
		w.Abort()
		return err
	}
	return w.Finish()
}

// WriteDataset builds a store in dir from an in-memory dataset (test and
// migration convenience; large datasets should use WriteStream).
func WriteDataset(dir string, ds *data.Dataset, opts WriterOptions) error {
	w, err := Create(dir, ds.Name(), ds.N(), ds.M(), opts)
	if err != nil {
		return err
	}
	row := make([]float64, ds.M())
	for u := 0; u < ds.N(); u++ {
		for i := range row {
			row[i] = ds.Score(u, i)
		}
		if err := w.Append(row); err != nil {
			w.Abort()
			return err
		}
	}
	return w.Finish()
}
