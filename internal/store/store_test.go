package store

import (
	"context"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/data"
)

// buildSmall writes a generated dataset to a fresh store dir and returns
// both representations plus the open store.
func buildSmall(t *testing.T, dist data.Distribution, n, m int, seed int64, opts WriterOptions) (*data.Dataset, *Store) {
	t.Helper()
	dir := t.TempDir()
	if err := WriteStream(dir, dist, n, m, seed, opts); err != nil {
		t.Fatalf("WriteStream: %v", err)
	}
	ds, err := data.Generate(dist, n, m, seed)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	return ds, s
}

// TestStoreRoundTrip pins the core contract: a store written by the
// streaming generator serves bit-identical sorted lists and point scores
// to the in-memory dataset generated with the same parameters — including
// the (score desc, id desc) tie-break the rest of the system assumes.
func TestStoreRoundTrip(t *testing.T) {
	ctx := context.Background()
	for _, dist := range []data.Distribution{data.Uniform, data.Zipf, data.Correlated, data.AntiCorrelated} {
		// Block size 16 forces multi-block segments at n=100.
		ds, s := buildSmall(t, dist, 100, 3, 42, WriterOptions{BlockEntries: 16})
		if s.N() != ds.N() || s.M() != ds.M() {
			t.Fatalf("%v: store is %dx%d, dataset %dx%d", dist, s.N(), s.M(), ds.N(), ds.M())
		}
		for pred := 0; pred < ds.M(); pred++ {
			for rank := 0; rank < ds.N(); rank++ {
				wantObj, wantScore := ds.SortedAt(pred, rank)
				obj, score, err := s.Sorted(ctx, pred, rank)
				if err != nil {
					t.Fatalf("%v: Sorted(%d,%d): %v", dist, pred, rank, err)
				}
				if obj != wantObj || score != wantScore {
					t.Fatalf("%v: Sorted(%d,%d) = (u%d, %v), dataset has (u%d, %v)",
						dist, pred, rank, obj, score, wantObj, wantScore)
				}
			}
			for obj := 0; obj < ds.N(); obj++ {
				got, err := s.Random(ctx, pred, obj)
				if err != nil {
					t.Fatalf("%v: Random(%d,%d): %v", dist, pred, obj, err)
				}
				if got != ds.Score(obj, pred) {
					t.Fatalf("%v: Random(%d,%d) = %v, dataset has %v", dist, pred, obj, got, ds.Score(obj, pred))
				}
			}
		}
	}
}

// TestWriteDatasetMatchesWriteStream checks the two build paths produce
// byte-identical stores.
func TestWriteDatasetMatchesWriteStream(t *testing.T) {
	dirA, dirB := t.TempDir(), t.TempDir()
	if err := WriteStream(dirA, data.Skewed, 50, 2, 7, WriterOptions{BlockEntries: 8}); err != nil {
		t.Fatalf("WriteStream: %v", err)
	}
	ds, err := data.Generate(data.Skewed, 50, 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteDataset(dirB, ds, WriterOptions{BlockEntries: 8, GeneratorVersion: data.GeneratorVersion}); err != nil {
		t.Fatalf("WriteDataset: %v", err)
	}
	for _, name := range []string{"scores.dat", "pred_000.seg", "pred_001.seg"} {
		a, err := os.ReadFile(filepath.Join(dirA, name))
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(filepath.Join(dirB, name))
		if err != nil {
			t.Fatal(err)
		}
		if string(a) != string(b) {
			t.Fatalf("%s differs between stream and dataset builds", name)
		}
	}
}

// TestStoreBatchRandom checks batched probes return scores in request
// order regardless of the internal offset-ordered issue.
func TestStoreBatchRandom(t *testing.T) {
	ds, s := buildSmall(t, data.Uniform, 40, 3, 11, WriterOptions{BlockEntries: 8})
	preds := []int{2, 0, 1, 0, 2}
	objs := []int{39, 0, 17, 39, 1}
	got, err := s.BatchRandom(context.Background(), preds, objs)
	if err != nil {
		t.Fatalf("BatchRandom: %v", err)
	}
	for i := range preds {
		if want := ds.Score(objs[i], preds[i]); got[i] != want {
			t.Fatalf("batch[%d] = %v, want %v", i, got[i], want)
		}
	}
	if _, err := s.BatchRandom(context.Background(), []int{0}, []int{1, 2}); err == nil {
		t.Fatal("mismatched batch lengths: want error")
	}
}

// TestStoreView checks predicate projection: identity returns the store
// itself, a subset maps indexes, and physical counters stay shared.
func TestStoreView(t *testing.T) {
	ds, s := buildSmall(t, data.Uniform, 30, 3, 5, WriterOptions{BlockEntries: 8})
	ident, err := s.View([]int{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if st, ok := ident.(*Store); !ok || st != s {
		t.Fatalf("identity view: got %T, want the store itself", ident)
	}
	v, err := s.View([]int{2, 0})
	if err != nil {
		t.Fatal(err)
	}
	if v.M() != 2 || v.N() != 30 {
		t.Fatalf("view dims %dx%d", v.N(), v.M())
	}
	ctx := context.Background()
	obj, score, err := v.Sorted(ctx, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	wantObj, wantScore := ds.SortedAt(2, 0)
	if obj != wantObj || score != wantScore {
		t.Fatalf("view Sorted(0,0) = (u%d,%v), want (u%d,%v)", obj, score, wantObj, wantScore)
	}
	got, err := v.Random(ctx, 1, 9)
	if err != nil {
		t.Fatal(err)
	}
	if want := ds.Score(9, 0); got != want {
		t.Fatalf("view Random(1,9) = %v, want %v", got, want)
	}
	if _, err := s.View([]int{0, 5}); err == nil {
		t.Fatal("out-of-range view predicate: want error")
	}
}

// TestStoreContextAndBounds checks the context-first discipline and
// range validation.
func TestStoreContextAndBounds(t *testing.T) {
	_, s := buildSmall(t, data.Uniform, 20, 2, 3, WriterOptions{BlockEntries: 8})
	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := s.Sorted(canceled, 0, 0); !errors.Is(err, context.Canceled) {
		t.Fatalf("Sorted with canceled ctx: %v", err)
	}
	if _, err := s.Random(canceled, 0, 0); !errors.Is(err, context.Canceled) {
		t.Fatalf("Random with canceled ctx: %v", err)
	}
	if _, err := s.BatchRandom(canceled, []int{0}, []int{0}); !errors.Is(err, context.Canceled) {
		t.Fatalf("BatchRandom with canceled ctx: %v", err)
	}
	ctx := context.Background()
	if _, _, err := s.Sorted(ctx, 0, 20); err == nil {
		t.Fatal("rank out of range: want error")
	}
	if _, _, err := s.Sorted(ctx, 2, 0); err == nil {
		t.Fatal("pred out of range: want error")
	}
	if _, err := s.Random(ctx, 0, -1); err == nil {
		t.Fatal("obj out of range: want error")
	}
}

// TestStoreCacheStats checks the block cache actually amortizes: a full
// in-order scan of one predicate reads each block from disk once.
func TestStoreCacheStats(t *testing.T) {
	_, s := buildSmall(t, data.Uniform, 64, 2, 9, WriterOptions{BlockEntries: 16})
	ctx := context.Background()
	for rank := 0; rank < 64; rank++ {
		if _, _, err := s.Sorted(ctx, 0, rank); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.BlockReads != 4 { // 64 entries / 16 per block
		t.Fatalf("BlockReads = %d, want 4", st.BlockReads)
	}
	if st.BlockHits != 60 {
		t.Fatalf("BlockHits = %d, want 60", st.BlockHits)
	}
	s.DropCaches()
	if _, _, err := s.Sorted(ctx, 0, 0); err != nil {
		t.Fatal(err)
	}
	if got := s.Stats().BlockReads; got != 5 {
		t.Fatalf("BlockReads after DropCaches = %d, want 5", got)
	}
}

// TestStoreSeekScore checks the fence index gives a sound lower bound:
// every rank before SeekScore(pred, v) scores >= v.
func TestStoreSeekScore(t *testing.T) {
	ds, s := buildSmall(t, data.Uniform, 100, 2, 21, WriterOptions{BlockEntries: 16})
	for _, v := range []float64{0.0, 0.25, 0.5, 0.9, 1.1} {
		rank := s.SeekScore(0, v)
		if rank%16 != 0 && rank != 100 {
			t.Fatalf("SeekScore(%v) = %d, not a block boundary", v, rank)
		}
		for r := 0; r < rank; r += 16 { // fences only bound block starts
			if _, score := ds.SortedAt(0, r); score < v {
				t.Fatalf("SeekScore(%v) = %d, but rank %d scores %v", v, rank, r, score)
			}
		}
	}
}

// TestStoreRowAndSample checks the row reader and the sample builder
// reproduce stored scores exactly.
func TestStoreRowAndSample(t *testing.T) {
	ds, s := buildSmall(t, data.Correlated, 50, 3, 13, WriterOptions{BlockEntries: 16})
	row, err := s.Row(17, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range row {
		if row[i] != ds.Score(17, i) {
			t.Fatalf("Row(17)[%d] = %v, want %v", i, row[i], ds.Score(17, i))
		}
	}
	sample, err := s.SampleDataset(10, 99)
	if err != nil {
		t.Fatal(err)
	}
	if sample.N() != 10 || sample.M() != 3 {
		t.Fatalf("sample dims %dx%d", sample.N(), sample.M())
	}
	// Every sampled row must be some real object's row.
	direct, err := data.Sample(ds, 10, 99)
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < 10; u++ {
		for i := 0; i < 3; i++ {
			if sample.Score(u, i) != direct.Score(u, i) {
				t.Fatalf("sample[%d][%d] = %v, data.Sample has %v", u, i, sample.Score(u, i), direct.Score(u, i))
			}
		}
	}
}

// TestStoreCrashConsistency is the recover-or-refuse-loudly contract: a
// store directory damaged in any of the ways a crash can produce —
// missing manifest (died mid-build), truncated segment or scores file
// (torn write after manifest... can't happen with manifest-last ordering,
// but disks lie), corrupted fence order — must fail Open with ErrCorrupt,
// never serve garbage.
func TestStoreCrashConsistency(t *testing.T) {
	build := func(t *testing.T) string {
		dir := t.TempDir()
		if err := WriteStream(dir, data.Uniform, 60, 2, 17, WriterOptions{BlockEntries: 16}); err != nil {
			t.Fatal(err)
		}
		return dir
	}
	damage := []struct {
		name string
		hurt func(t *testing.T, dir string)
	}{
		{"missing-manifest", func(t *testing.T, dir string) {
			os.Remove(manifestPath(dir))
		}},
		{"truncated-segment", func(t *testing.T, dir string) {
			truncateTail(t, segmentPath(dir, 1), 5)
		}},
		{"truncated-scores", func(t *testing.T, dir string) {
			truncateTail(t, scoresPath(dir), 1)
		}},
		{"missing-segment", func(t *testing.T, dir string) {
			os.Remove(segmentPath(dir, 0))
		}},
		{"garbage-manifest", func(t *testing.T, dir string) {
			if err := os.WriteFile(manifestPath(dir), []byte("{not json"), 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"fence-disorder", func(t *testing.T, dir string) {
			// Overwrite the first fence (block 0 max score) with -Inf: a
			// later fence is then necessarily larger, breaking descent.
			path := segmentPath(dir, 0)
			f, err := os.OpenFile(path, os.O_WRONLY, 0)
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			buf := make([]byte, 8)
			buf[7] = 0xFF // sign+exponent bits set: a huge negative float
			if _, err := f.WriteAt(buf, segmentHeaderSize+int64(60)*entrySize); err != nil {
				t.Fatal(err)
			}
		}},
		{"wrong-format-version", func(t *testing.T, dir string) {
			raw, err := os.ReadFile(manifestPath(dir))
			if err != nil {
				t.Fatal(err)
			}
			out := []byte(`{"format_version": 999` + string(raw[len(`{"format_version": 1`):]))
			if err := os.WriteFile(manifestPath(dir), out, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
	}
	for _, d := range damage {
		t.Run(d.name, func(t *testing.T) {
			dir := build(t)
			d.hurt(t, dir)
			s, err := Open(dir, Options{})
			if err == nil {
				s.Close()
				t.Fatal("Open accepted a damaged store")
			}
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("want ErrCorrupt, got %v", err)
			}
		})
	}
	// And an undamaged store still opens after all that.
	dir := build(t)
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("Open undamaged: %v", err)
	}
	s.Close()
}

// TestWriterContract checks Append validation and abort-on-error.
func TestWriterContract(t *testing.T) {
	dir := t.TempDir()
	w, err := Create(dir, "t", 3, 2, WriterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append([]float64{0.1}); err == nil {
		t.Fatal("wrong row width: want error")
	}
	if err := w.Append([]float64{0.1, math.NaN()}); err == nil {
		t.Fatal("NaN score: want error")
	}
	if err := w.Append([]float64{0.1, 1.5}); err == nil {
		t.Fatal("score > 1: want error")
	}
	if err := w.Append([]float64{0.1, 0.2}); err != nil {
		t.Fatal(err)
	}
	// Finishing short of n must fail and leave no manifest.
	if err := w.Finish(); err == nil {
		t.Fatal("short Finish: want error")
	}
	if _, err := os.Stat(manifestPath(dir)); !os.IsNotExist(err) {
		t.Fatalf("short build left a manifest: %v", err)
	}
	if _, err := Open(dir, Options{}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open after aborted build: %v", err)
	}
}

// TestMeasureSmoke checks measurement returns positive quantized costs
// and a stable fingerprint key.
func TestMeasureSmoke(t *testing.T) {
	_, s := buildSmall(t, data.Uniform, 200, 2, 31, WriterOptions{BlockEntries: 32})
	ctx := context.Background()
	cal, err := Measure(ctx, s, MeasureOptions{Probes: 64, Batches: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if cal.SortedMS <= 0 || cal.RandomMS <= 0 {
		t.Fatalf("non-positive calibration: %+v", cal)
	}
	if cal.Mode != "warm" {
		t.Fatalf("mode = %q", cal.Mode)
	}
	if cal.Key() == "" || cal.Key() != cal.Key() {
		t.Fatal("unstable key")
	}
	cold, err := Measure(ctx, s, MeasureOptions{Probes: 64, Batches: 3, Seed: 1, Cold: true})
	if err != nil {
		t.Fatal(err)
	}
	if cold.Mode != "cold" {
		t.Fatalf("cold mode = %q", cold.Mode)
	}
	perPred, err := MeasurePred(ctx, s, 1, MeasureOptions{Probes: 32, Batches: 3, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if perPred.SortedMS <= 0 || perPred.RandomMS <= 0 {
		t.Fatalf("non-positive per-pred calibration: %+v", perPred)
	}
	if _, err := MeasurePred(ctx, s, 9, MeasureOptions{}); err == nil {
		t.Fatal("out-of-range MeasurePred: want error")
	}
}

// TestQuantizeUnits pins the two-significant-figure quantizer.
func TestQuantizeUnits(t *testing.T) {
	cases := []struct{ in, want float64 }{
		{0.0001234, 0.00012},
		{0.0001299, 0.00013},
		{1.26, 1.3},
		{987, 990},
		{0, 1e-6},
		{-5, 1e-6},
		{math.NaN(), 1e-6},
		{math.Inf(1), 1e-6},
	}
	for _, c := range cases {
		if got := QuantizeUnits(c.in); math.Abs(got-c.want) > c.want*1e-9 {
			t.Fatalf("QuantizeUnits(%v) = %v, want %v", c.in, got, c.want)
		}
	}
	// Quantized values print as clean two-digit decimals: they are spliced
	// verbatim into calibration keys and plan-cache fingerprints.
	if s := fmt.Sprintf("%g", QuantizeUnits(0.000407)); s != "0.00041" {
		t.Fatalf("quantized value prints as %q, want 0.00041", s)
	}
}

func truncateTail(t *testing.T, path string, bytes int64) {
	t.Helper()
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, st.Size()-bytes); err != nil {
		t.Fatal(err)
	}
}
