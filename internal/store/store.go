// Package store is the disk-backed access.Backend: per-predicate sorted
// segments (append-only block files with a sparse in-memory fence index)
// serve sa_i as sequential block scans, and a row-major score matrix
// serves ra_i/BatchRandom as single-pread point lookups. The point is
// physical honesty: the cost asymmetry the paper assumes (cr > cs,
// Section 2) here emerges from seek-vs-scan physics — one 48 KiB block
// read amortizes over thousands of sorted accesses while every random
// probe pays its own positioned read — and internal/catalog measures it
// from timed IO instead of taking it as config.
package store

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"os"
	"sync/atomic"

	"repro/internal/access"
	"repro/internal/data"
)

// ErrCorrupt reports a store directory that fails validation: missing or
// torn files, a size or checksum mismatch, a broken fence order. Open
// refuses such a store loudly rather than serving bytes it cannot vouch
// for; rebuilding from the generator is always safe because stores are
// append-once artifacts.
var ErrCorrupt = errors.New("store: corrupt store")

// Options tunes Open.
type Options struct {
	// CacheBlocks bounds the decoded-block LRU cache, in blocks across
	// all predicates (DefaultCacheBlocks when 0; negative disables
	// caching, which makes every sorted access a positioned read — useful
	// only for measurement).
	CacheBlocks int
}

// DefaultCacheBlocks holds 64 blocks (~3 MiB at the default block size):
// enough for the hot top-of-list blocks of every predicate of any
// realistic query, small enough to be irrelevant next to the dataset.
const DefaultCacheBlocks = 64

// Store is a read-only disk-backed Backend over a directory written by
// Writer. It is safe for concurrent use.
type Store struct {
	dir          string
	man          Manifest
	scores       *os.File
	segs         []*os.File
	fences       [][]float64 // per pred: block -> first (max) score
	blockEntries int
	cache        *blockCache

	sortedReads atomic.Int64
	randomReads atomic.Int64
	blockReads  atomic.Int64
	blockHits   atomic.Int64
}

// Stats is a snapshot of a store's physical counters. BlockReads vs
// SortedReads is the amortization ratio the cost asymmetry comes from.
type Stats struct {
	SortedReads int64 // sa_i served
	RandomReads int64 // ra_i preads issued (incl. batched)
	BlockReads  int64 // segment blocks fetched from disk
	BlockHits   int64 // sorted accesses served from the block cache
}

// Open validates and opens a store directory. Every structural claim the
// manifest makes — format version, file sizes, header contents, fence
// order — is checked up front; any mismatch returns ErrCorrupt and no
// half-open store.
func Open(dir string, opts Options) (*Store, error) {
	raw, err := os.ReadFile(manifestPath(dir))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, fmt.Errorf("%w: %s has no %s (incomplete write or not a store)", ErrCorrupt, dir, ManifestName)
		}
		return nil, fmt.Errorf("store: %w", err)
	}
	var man Manifest
	if err := json.Unmarshal(raw, &man); err != nil {
		return nil, fmt.Errorf("%w: unreadable manifest: %v", ErrCorrupt, err)
	}
	if man.FormatVersion != FormatVersion {
		return nil, fmt.Errorf("%w: format v%d, this build reads v%d", ErrCorrupt, man.FormatVersion, FormatVersion)
	}
	if man.N <= 0 || man.M <= 0 || man.BlockEntries <= 0 || len(man.Segments) != man.M {
		return nil, fmt.Errorf("%w: implausible manifest (n=%d m=%d block=%d segments=%d)",
			ErrCorrupt, man.N, man.M, man.BlockEntries, len(man.Segments))
	}

	s := &Store{
		dir:          dir,
		man:          man,
		blockEntries: man.BlockEntries,
		segs:         make([]*os.File, man.M),
		fences:       make([][]float64, man.M),
	}
	ok := false
	defer func() {
		if !ok {
			s.Close()
		}
	}()

	if s.scores, err = openChecked(scoresPath(dir), man.ScoresSize); err != nil {
		return nil, err
	}
	hdr := make([]byte, scoresHeaderSize)
	if _, err := s.scores.ReadAt(hdr, 0); err != nil {
		return nil, fmt.Errorf("%w: scores header: %v", ErrCorrupt, err)
	}
	if string(hdr[:magicSize]) != scoresMagic {
		return nil, fmt.Errorf("%w: scores.dat bad magic", ErrCorrupt)
	}
	if n := binary.LittleEndian.Uint32(hdr[magicSize:]); int(n) != man.N {
		return nil, fmt.Errorf("%w: scores.dat header n=%d, manifest n=%d", ErrCorrupt, n, man.N)
	}
	if m := binary.LittleEndian.Uint32(hdr[magicSize+4:]); int(m) != man.M {
		return nil, fmt.Errorf("%w: scores.dat header m=%d, manifest m=%d", ErrCorrupt, m, man.M)
	}

	for i := 0; i < man.M; i++ {
		if s.segs[i], err = openChecked(segmentPath(dir, i), man.Segments[i].Size); err != nil {
			return nil, err
		}
		if s.fences[i], err = readFences(s.segs[i], i, man.N, man.BlockEntries); err != nil {
			return nil, err
		}
	}

	cap := opts.CacheBlocks
	if cap == 0 {
		cap = DefaultCacheBlocks
	}
	if cap > 0 {
		s.cache = newBlockCache(cap)
	}
	ok = true
	return s, nil
}

// openChecked opens a data file and verifies its exact size against the
// manifest, converting truncation into ErrCorrupt before any read.
func openChecked(path string, wantSize int64) (*os.File, error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, fmt.Errorf("%w: missing %s", ErrCorrupt, path)
		}
		return nil, fmt.Errorf("store: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("store: %w", err)
	}
	if st.Size() != wantSize {
		f.Close()
		return nil, fmt.Errorf("%w: %s is %d bytes, manifest says %d (torn or truncated write)",
			ErrCorrupt, path, st.Size(), wantSize)
	}
	return f, nil
}

// readFences validates a segment's header and loads its fence section —
// the first (maximum) score of every block — checking it descends. The
// fences are the sparse in-memory index: ~2 KB per predicate at n=10^6,
// they bound every block's score range without touching the entries.
func readFences(f *os.File, pred, n, blockEntries int) ([]float64, error) {
	hdr := make([]byte, segmentHeaderSize)
	if _, err := f.ReadAt(hdr, 0); err != nil {
		return nil, fmt.Errorf("%w: segment %d header: %v", ErrCorrupt, pred, err)
	}
	if string(hdr[:magicSize]) != segmentMagic {
		return nil, fmt.Errorf("%w: segment %d bad magic", ErrCorrupt, pred)
	}
	if p := binary.LittleEndian.Uint32(hdr[magicSize:]); int(p) != pred {
		return nil, fmt.Errorf("%w: segment %d header claims predicate %d", ErrCorrupt, pred, p)
	}
	if be := binary.LittleEndian.Uint32(hdr[magicSize+4:]); int(be) != blockEntries {
		return nil, fmt.Errorf("%w: segment %d block size %d, manifest %d", ErrCorrupt, pred, be, blockEntries)
	}
	if c := binary.LittleEndian.Uint64(hdr[magicSize+8:]); int(c) != n {
		return nil, fmt.Errorf("%w: segment %d entry count %d, manifest n=%d", ErrCorrupt, pred, c, n)
	}
	blocks := (n + blockEntries - 1) / blockEntries
	raw := make([]byte, blocks*8)
	if _, err := f.ReadAt(raw, segmentHeaderSize+int64(n)*entrySize); err != nil {
		return nil, fmt.Errorf("%w: segment %d fence section: %v", ErrCorrupt, pred, err)
	}
	fences := make([]float64, blocks)
	prev := math.Inf(1)
	for b := range fences {
		fences[b] = math.Float64frombits(binary.LittleEndian.Uint64(raw[b*8:]))
		if fences[b] > prev || math.IsNaN(fences[b]) {
			return nil, fmt.Errorf("%w: segment %d fences not descending at block %d", ErrCorrupt, pred, b)
		}
		prev = fences[b]
	}
	return fences, nil
}

// Close releases the store's file handles.
func (s *Store) Close() error {
	var first error
	if s.scores != nil {
		if err := s.scores.Close(); err != nil && first == nil {
			first = err
		}
		s.scores = nil
	}
	for i, f := range s.segs {
		if f == nil {
			continue
		}
		if err := f.Close(); err != nil && first == nil {
			first = err
		}
		s.segs[i] = nil
	}
	return first
}

// Dir returns the store directory.
func (s *Store) Dir() string { return s.dir }

// Manifest returns a copy of the store's manifest.
func (s *Store) Manifest() Manifest {
	man := s.man
	man.Segments = append([]SegmentInfo(nil), s.man.Segments...)
	return man
}

// Name returns the dataset name recorded at build time.
func (s *Store) Name() string { return s.man.Name }

// N returns the object count.
func (s *Store) N() int { return s.man.N }

// M returns the predicate count.
func (s *Store) M() int { return s.man.M }

// Stats returns a snapshot of the physical counters.
func (s *Store) Stats() Stats {
	return Stats{
		SortedReads: s.sortedReads.Load(),
		RandomReads: s.randomReads.Load(),
		BlockReads:  s.blockReads.Load(),
		BlockHits:   s.blockHits.Load(),
	}
}

// DropCaches empties the decoded-block cache, so the next sorted access
// on every block pays its disk read again. Calibration's cold mode uses
// it between batches; it cannot evict the OS page cache, which is why
// cold numbers are labeled as such rather than claimed as device-raw.
func (s *Store) DropCaches() {
	if s.cache != nil {
		s.cache.drop()
	}
}

// Sorted serves sa_pred at the given rank from the segment's block,
// through the cache: a hit costs a map lookup and a 12-byte decode, a
// miss one positioned block read.
//
//topklint:hotpath
func (s *Store) Sorted(ctx context.Context, pred, rank int) (int, float64, error) {
	if err := ctx.Err(); err != nil {
		return 0, 0, err
	}
	if pred < 0 || pred >= s.man.M || rank < 0 || rank >= s.man.N {
		return 0, 0, fmt.Errorf("store: Sorted(pred=%d, rank=%d) out of range (n=%d, m=%d)", pred, rank, s.man.N, s.man.M)
	}
	s.sortedReads.Add(1)
	blk, off := rank/s.blockEntries, rank%s.blockEntries
	var raw []byte
	if s.cache != nil {
		raw = s.cache.get(pred, blk)
	}
	if raw == nil {
		var err error
		if raw, err = s.readBlock(pred, blk); err != nil {
			return 0, 0, err
		}
		if s.cache != nil {
			s.cache.put(pred, blk, raw)
		}
	} else {
		s.blockHits.Add(1)
	}
	obj, score := getEntry(raw[off*entrySize:])
	return int(obj), score, nil
}

// readBlock fetches one segment block from disk.
//
//topklint:allow hotpathalloc miss path: the block buffer is the cache entry being created; hits are allocation-free
func (s *Store) readBlock(pred, blk int) ([]byte, error) {
	first := blk * s.blockEntries
	count := s.man.N - first
	if count > s.blockEntries {
		count = s.blockEntries
	}
	raw := make([]byte, count*entrySize)
	if _, err := s.segs[pred].ReadAt(raw, segmentHeaderSize+int64(first)*entrySize); err != nil {
		return nil, fmt.Errorf("store: segment %d block %d: %w", pred, blk, err)
	}
	s.blockReads.Add(1)
	return raw, nil
}

// Random serves ra_pred(obj) as exactly one 8-byte positioned read into
// the row-major score matrix. No score cache sits in front of it: the
// session forbids repeated probes anyway, so caching here would only
// flatter the measured random cost.
//
//topklint:hotpath
func (s *Store) Random(ctx context.Context, pred, obj int) (float64, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	if pred < 0 || pred >= s.man.M || obj < 0 || obj >= s.man.N {
		return 0, fmt.Errorf("store: Random(pred=%d, obj=%d) out of range (n=%d, m=%d)", pred, obj, s.man.N, s.man.M)
	}
	s.randomReads.Add(1)
	var buf [8]byte
	off := scoresHeaderSize + (int64(obj)*int64(s.man.M)+int64(pred))*8
	if _, err := s.scores.ReadAt(buf[:], off); err != nil {
		return 0, fmt.Errorf("store: scores read (pred=%d, obj=%d): %w", pred, obj, err)
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(buf[:])), nil
}

// BatchRandom resolves a batch of probes in one call, issuing the preads
// in ascending file-offset order so a spinning disk sweeps once instead
// of seeking per probe. It succeeds or fails as a unit, matching the
// share layer's batching contract.
func (s *Store) BatchRandom(ctx context.Context, preds, objs []int) ([]float64, error) {
	if len(preds) != len(objs) {
		return nil, fmt.Errorf("store: BatchRandom got %d preds, %d objs", len(preds), len(objs))
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	order := make([]int, len(preds))
	for i := range order {
		order[i] = i
	}
	offset := func(i int) int64 {
		return int64(objs[i])*int64(s.man.M) + int64(preds[i])
	}
	for a := 1; a < len(order); a++ { // insertion sort: batches are small
		for b := a; b > 0 && offset(order[b]) < offset(order[b-1]); b-- {
			order[b], order[b-1] = order[b-1], order[b]
		}
	}
	out := make([]float64, len(preds))
	for _, i := range order {
		v, err := s.Random(ctx, preds[i], objs[i])
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

// SeekScore returns the rank of the first block whose fence (maximum
// score) is below v — a lower bound on where scores < v can start —
// using only the in-memory fence index. Callers can skip straight past
// blocks that are entirely above v without reading them.
func (s *Store) SeekScore(pred int, v float64) int {
	fences := s.fences[pred]
	lo, hi := 0, len(fences)
	for lo < hi { // first block with fence < v
		mid := (lo + hi) / 2
		if fences[mid] < v {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	rank := lo * s.blockEntries
	if rank > s.man.N {
		rank = s.man.N
	}
	return rank
}

// View projects the store onto a predicate subset, implementing the same
// access.Backend projection the share and cluster layers expose. The
// identity projection returns the store itself; otherwise the view maps
// predicate indexes and forwards, so the block cache, counters, and file
// handles stay shared with the base store.
func (s *Store) View(preds []int) (access.Backend, error) {
	identity := len(preds) == s.man.M
	for i, p := range preds {
		if p < 0 || p >= s.man.M {
			return nil, fmt.Errorf("store: view predicate %d out of range (m=%d)", p, s.man.M)
		}
		if p != i {
			identity = false
		}
	}
	if identity {
		return s, nil
	}
	return &View{store: s, preds: append([]int(nil), preds...)}, nil
}

// View is a predicate projection of a Store (see Store.View).
type View struct {
	store *Store
	preds []int
}

// Store returns the base store behind the view.
func (v *View) Store() *Store { return v.store }

// N returns the object count.
func (v *View) N() int { return v.store.N() }

// M returns the projected predicate count.
func (v *View) M() int { return len(v.preds) }

// Sorted implements access.Backend on the mapped predicate.
func (v *View) Sorted(ctx context.Context, pred, rank int) (int, float64, error) {
	return v.store.Sorted(ctx, v.preds[pred], rank)
}

// Random implements access.Backend on the mapped predicate.
func (v *View) Random(ctx context.Context, pred, obj int) (float64, error) {
	return v.store.Random(ctx, v.preds[pred], obj)
}

// BatchRandom maps the batch's predicates and forwards.
func (v *View) BatchRandom(ctx context.Context, preds, objs []int) ([]float64, error) {
	mapped := make([]int, len(preds))
	for i, p := range preds {
		mapped[i] = v.preds[p]
	}
	return v.store.BatchRandom(ctx, mapped, objs)
}

// Stats reports the base store's counters (physical IO is shared).
func (v *View) Stats() Stats { return v.store.Stats() }

// Row reads one object's full score row (one sequential pread).
func (s *Store) Row(obj int, dst []float64) ([]float64, error) {
	if obj < 0 || obj >= s.man.N {
		return nil, fmt.Errorf("store: Row(%d) out of range (n=%d)", obj, s.man.N)
	}
	m := s.man.M
	if cap(dst) < m {
		dst = make([]float64, m)
	}
	dst = dst[:m]
	raw := make([]byte, m*8)
	if _, err := s.scores.ReadAt(raw, scoresHeaderSize+int64(obj)*int64(m)*8); err != nil {
		return nil, fmt.Errorf("store: row %d: %w", obj, err)
	}
	for i := 0; i < m; i++ {
		dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[i*8:]))
	}
	return dst, nil
}

// SampleDataset draws a without-replacement sample of size sz from the
// store's real rows, deterministically for a seed, as an in-memory
// dataset for the optimizer's cost estimator (Section 7.3). Unlike
// data.DummySample this reflects the true score distribution — the whole
// point of running the optimizer against a physical source.
func (s *Store) SampleDataset(sz int, seed int64) (*data.Dataset, error) {
	n := s.man.N
	if sz > n {
		sz = n
	}
	if sz <= 0 {
		sz = 1
	}
	rng := rand.New(rand.NewSource(seed))
	scores := make([][]float64, sz)
	for j, u := range rng.Perm(n)[:sz] {
		row, err := s.Row(u, nil)
		if err != nil {
			return nil, err
		}
		scores[j] = row
	}
	return data.New(fmt.Sprintf("%s/storesample(%d,seed=%d)", s.man.Name, sz, seed), scores)
}
