package store

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"repro/internal/access"
)

// MeasureOptions tunes IO cost measurement.
type MeasureOptions struct {
	// Probes is the number of accesses timed per batch (default 512).
	// Each batch yields one per-access figure; the median across batches
	// is the measurement, so stray scheduler hiccups don't land in the
	// cost model.
	Probes int
	// Batches is the number of batches (default 5).
	Batches int
	// Seed drives probe placement (ranks, objects, predicates).
	Seed int64
	// Cold drops the backend's caches (DropCaches) before every batch,
	// so each batch re-pays block reads instead of amortizing the first
	// batch's. Warm (the default) measures the steady state a long query
	// run sees.
	Cold bool
}

// CacheDropper is implemented by backends whose caches cold-mode
// measurement can evict (the Store's decoded-block cache).
type CacheDropper interface{ DropCaches() }

// Calibration is a measured access cost model: milliseconds per sorted
// and per random access, quantized to two significant figures so repeat
// measurements of the same hardware key identically (see QuantizeUnits).
type Calibration struct {
	SortedMS float64 // cs: ms per sorted access
	RandomMS float64 // cr: ms per random access
	Mode     string  // "warm" or "cold"
	Probes   int     // accesses per batch that produced the figures
}

// Ratio returns cr/cs, the asymmetry the optimizer's plan shape turns on.
func (c Calibration) Ratio() float64 { return c.RandomMS / c.SortedMS }

// Key renders the calibration for the plan-cache fingerprint. Because
// the cost figures are quantized, the key is stable across repeat
// calibrations of the same store on the same hardware — and changes
// whenever the measured physics does, which must invalidate cached
// plans.
func (c Calibration) Key() string {
	return fmt.Sprintf("io(cs=%gms,cr=%gms,%s)", c.SortedMS, c.RandomMS, c.Mode)
}

func (o MeasureOptions) probes() int {
	if o.Probes <= 0 {
		return 512
	}
	return o.Probes
}

func (o MeasureOptions) batches() int {
	if o.Batches <= 0 {
		return 5
	}
	return o.Batches
}

func (o MeasureOptions) mode() string {
	if o.Cold {
		return "cold"
	}
	return "warm"
}

// Measure times sorted and random accesses against a backend and returns
// the quantized per-access costs. It works on any access.Backend — the
// catalog calls it for declared sources too — but it is only as honest
// as the backend is physical. Measurement probes are raw, unbilled
// accesses by design: they are the instrument, not the query. The
// context bounds the probes (they may hit real sources).
func Measure(ctx context.Context, b access.Backend, opts MeasureOptions) (Calibration, error) {
	cs, err := MeasureSorted(ctx, b, opts)
	if err != nil {
		return Calibration{}, err
	}
	cr, err := MeasureRandom(ctx, b, opts)
	if err != nil {
		return Calibration{}, err
	}
	return Calibration{
		SortedMS: QuantizeUnits(cs),
		RandomMS: QuantizeUnits(cr),
		Mode:     opts.mode(),
		Probes:   opts.probes(),
	}, nil
}

// MeasurePred measures a single predicate of b — the granularity the
// catalog calibrates heterogeneous sources at.
func MeasurePred(ctx context.Context, b access.Backend, pred int, opts MeasureOptions) (Calibration, error) {
	if pred < 0 || pred >= b.M() {
		return Calibration{}, fmt.Errorf("store: MeasurePred(%d) out of range (m=%d)", pred, b.M())
	}
	return Measure(ctx, singlePred{b: b, pred: pred}, opts)
}

// singlePred restricts a backend to one predicate for measurement.
type singlePred struct {
	b    access.Backend
	pred int
}

func (s singlePred) N() int { return s.b.N() }
func (s singlePred) M() int { return 1 }
func (s singlePred) Sorted(ctx context.Context, _, rank int) (int, float64, error) {
	return s.b.Sorted(ctx, s.pred, rank)
}
func (s singlePred) Random(ctx context.Context, _, obj int) (float64, error) {
	return s.b.Random(ctx, s.pred, obj)
}

// DropCaches forwards cold-mode eviction to the underlying backend.
func (s singlePred) DropCaches() {
	if d, ok := s.b.(CacheDropper); ok {
		d.DropCaches()
	}
}

// MeasureSorted times batches of consecutive sorted accesses — the sa_i
// pattern every algorithm issues: descend a list from some depth — and
// returns the median per-access milliseconds (unquantized).
func MeasureSorted(ctx context.Context, b access.Backend, opts MeasureOptions) (float64, error) {
	probes, batches := opts.probes(), opts.batches()
	if probes > b.N() {
		probes = b.N()
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	samples := make([]float64, 0, batches)
	for i := 0; i < batches; i++ {
		pred := rng.Intn(b.M())
		start := 0
		if span := b.N() - probes; span > 0 {
			start = rng.Intn(span)
		}
		dropCaches(b, opts)
		t0 := time.Now()
		for r := start; r < start+probes; r++ {
			if _, _, err := b.Sorted(ctx, pred, r); err != nil {
				return 0, fmt.Errorf("store: measuring sorted access: %w", err)
			}
		}
		samples = append(samples, float64(time.Since(t0).Nanoseconds())/1e6/float64(probes))
	}
	return median(samples), nil
}

// MeasureRandom times batches of scattered point probes — the ra_i
// pattern — and returns the median per-access milliseconds (unquantized).
// Probe targets are drawn before the clock starts.
func MeasureRandom(ctx context.Context, b access.Backend, opts MeasureOptions) (float64, error) {
	probes, batches := opts.probes(), opts.batches()
	rng := rand.New(rand.NewSource(opts.Seed + 1))
	preds := make([]int, probes)
	objs := make([]int, probes)
	samples := make([]float64, 0, batches)
	for i := 0; i < batches; i++ {
		for j := 0; j < probes; j++ {
			preds[j] = rng.Intn(b.M())
			objs[j] = rng.Intn(b.N())
		}
		dropCaches(b, opts)
		t0 := time.Now()
		for j := 0; j < probes; j++ {
			if _, err := b.Random(ctx, preds[j], objs[j]); err != nil {
				return 0, fmt.Errorf("store: measuring random access: %w", err)
			}
		}
		samples = append(samples, float64(time.Since(t0).Nanoseconds())/1e6/float64(probes))
	}
	return median(samples), nil
}

func dropCaches(b access.Backend, opts MeasureOptions) {
	if !opts.Cold {
		return
	}
	if d, ok := b.(CacheDropper); ok {
		d.DropCaches()
	}
}

func median(xs []float64) float64 {
	sort.Float64s(xs)
	n := len(xs)
	if n%2 == 1 {
		return xs[n/2]
	}
	return (xs[n/2-1] + xs[n/2]) / 2
}
