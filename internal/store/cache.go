package store

import (
	"container/list"
	"sync"
)

// blockCache is a mutex-guarded LRU of raw segment blocks keyed by
// (predicate, block). Values are the immutable on-disk bytes; Sorted
// decodes the 12-byte entry it needs in place, so a cache hit allocates
// nothing. One cache serves the whole store — predicates share the
// budget the way they share the disk.
type blockCache struct {
	mu  sync.Mutex
	cap int
	ll  *list.List
	idx map[blockKey]*list.Element
}

type blockKey struct {
	pred, block int
}

type blockVal struct {
	key blockKey
	raw []byte
}

func newBlockCache(cap int) *blockCache {
	return &blockCache{cap: cap, ll: list.New(), idx: make(map[blockKey]*list.Element, cap)}
}

// get returns the cached block, or nil on a miss.
//
//topklint:hotpath
func (c *blockCache) get(pred, block int) []byte {
	c.mu.Lock()
	e, ok := c.idx[blockKey{pred, block}]
	if ok {
		c.ll.MoveToFront(e)
	}
	c.mu.Unlock()
	if !ok {
		return nil
	}
	return e.Value.(*blockVal).raw
}

// put inserts a block, evicting the least recently used past capacity.
//
//topklint:allow hotpathalloc miss path: one list element per cached block, bounded by the cache capacity
func (c *blockCache) put(pred, block int, raw []byte) {
	k := blockKey{pred, block}
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.idx[k]; ok {
		c.ll.MoveToFront(e)
		e.Value.(*blockVal).raw = raw
		return
	}
	c.idx[k] = c.ll.PushFront(&blockVal{key: k, raw: raw})
	for c.ll.Len() > c.cap {
		last := c.ll.Back()
		c.ll.Remove(last)
		delete(c.idx, last.Value.(*blockVal).key)
	}
}

// drop empties the cache.
func (c *blockCache) drop() {
	c.mu.Lock()
	c.ll.Init()
	c.idx = make(map[blockKey]*list.Element, c.cap)
	c.mu.Unlock()
}
