package opt

import (
	"fmt"
	"math/rand"

	"repro/internal/access"
	"repro/internal/score"
)

// Plan is a chosen SR/G configuration with its estimated cost and the
// optimization overhead (number of simulation runs) spent finding it.
type Plan struct {
	H             []float64
	Omega         []int
	EstimatedCost access.Cost
	Evals         int
}

// Scheme selects the H-search strategy of Section 7.2.
type Scheme int

const (
	// SchemeHClimb is multi-start hill climbing, "evaluated to be the most
	// effective" in the paper's appendix; the default.
	SchemeHClimb Scheme = iota
	// SchemeNaive meshes the whole H space into a grid and evaluates every
	// point; the exhaustive baseline.
	SchemeNaive
	// SchemeStrategies focuses on configurations matching the scoring
	// function's shape (focused for min-like, equal-depth for mean-like).
	SchemeStrategies
	// SchemeGreedy is the statistics-free planner: H and Omega picked in
	// closed form from capability/cost asymmetries and observed stream
	// slopes, no simulation runs. The mid-query re-plan fast path and the
	// fallback when the estimator's sample is flagged stale.
	SchemeGreedy
)

// String returns the scheme name.
func (s Scheme) String() string {
	switch s {
	case SchemeHClimb:
		return "HClimb"
	case SchemeNaive:
		return "Naive"
	case SchemeStrategies:
		return "Strategies"
	case SchemeGreedy:
		return "Greedy"
	default:
		return fmt.Sprintf("Scheme(%d)", int(s))
	}
}

// SchemeByName parses a scheme name.
func SchemeByName(name string) (Scheme, error) {
	for _, s := range []Scheme{SchemeHClimb, SchemeNaive, SchemeStrategies, SchemeGreedy} {
		if s.String() == name {
			return s, nil
		}
	}
	return 0, fmt.Errorf("opt: unknown scheme %q", name)
}

// gridValues returns g evenly spaced depth values spanning [0,1].
func gridValues(g int) []float64 {
	if g < 2 {
		g = 2
	}
	vs := make([]float64, g)
	for i := range vs {
		vs[i] = float64(i) / float64(g-1)
	}
	return vs
}

// Naive exhaustively evaluates the full g^m mesh and returns the minimum.
// It refuses meshes larger than maxEvals points (Section 7.2 notes the
// space "explodes for large m"; that explosion is the point of E6).
func Naive(e *Estimator, omega []int, g, maxEvals int) (Plan, error) {
	m := e.sample.M()
	points := 1
	for i := 0; i < m; i++ {
		points *= g
		if points > maxEvals {
			return Plan{}, fmt.Errorf("opt: Naive mesh %d^%d exceeds the %d-evaluation budget", g, m, maxEvals)
		}
	}
	vs := gridValues(g)
	h := make([]float64, m)
	idx := make([]int, m)
	best := Plan{EstimatedCost: -1}
	for {
		for i, j := range idx {
			h[i] = vs[j]
		}
		c, err := e.Estimate(h, omega)
		if err != nil {
			return Plan{}, err
		}
		if best.EstimatedCost < 0 || c < best.EstimatedCost {
			best = Plan{H: append([]float64(nil), h...), Omega: omega, EstimatedCost: c}
		}
		// Odometer increment.
		i := 0
		for ; i < m; i++ {
			idx[i]++
			if idx[i] < g {
				break
			}
			idx[i] = 0
		}
		if i == m {
			break
		}
	}
	best.Evals = e.Evals()
	return best, nil
}

// Strategies evaluates only configurations suiting the scoring function's
// shape (Example 11's observation: focused for min, parallel for avg),
// falling back to the union of both families for unclassified functions.
func Strategies(e *Estimator, f score.Func, omega []int, g int) (Plan, error) {
	m := e.sample.M()
	vs := gridValues(g)
	var candidates [][]float64

	addFocused := func() {
		// Deep on one predicate, none on the rest.
		for i := 0; i < m; i++ {
			for _, t := range vs {
				h := make([]float64, m)
				for j := range h {
					h[j] = 1
				}
				h[i] = t
				candidates = append(candidates, h)
			}
		}
	}
	addDiagonal := func(lo float64) {
		for _, t := range vs {
			if t < lo {
				continue
			}
			h := make([]float64, m)
			for j := range h {
				h[j] = t
			}
			candidates = append(candidates, h)
		}
	}
	addWeighted := func(w []float64) {
		// Depths proportional to weights: heavier predicates deeper.
		maxW := 0.0
		for _, x := range w {
			if x > maxW {
				maxW = x
			}
		}
		if maxW == 0 {
			return
		}
		for _, t := range vs {
			h := make([]float64, m)
			for j := range h {
				h[j] = 1 - (1-t)*(w[j]/maxW)
			}
			candidates = append(candidates, h)
		}
	}

	switch f.Shape() {
	case score.ShapeMinLike:
		addFocused()
		addDiagonal(0) // keep the symmetric family as a safety net
	case score.ShapeMeanLike:
		addDiagonal(0)
		if w, ok := f.(score.Weighter); ok {
			addWeighted(w.Weights())
		}
	case score.ShapeMaxLike:
		addDiagonal(0.5) // shallow parallel depths
		addFocused()
	default:
		addFocused()
		addDiagonal(0)
	}

	best := Plan{EstimatedCost: -1}
	for _, h := range candidates {
		c, err := e.Estimate(h, omega)
		if err != nil {
			return Plan{}, err
		}
		if best.EstimatedCost < 0 || c < best.EstimatedCost {
			best = Plan{H: h, Omega: omega, EstimatedCost: c}
		}
	}
	best.Evals = e.Evals()
	return best, nil
}

// HClimb performs steepest-descent hill climbing on the grid lattice from
// several random starting points, the scheme the paper adopts for its
// experiments. Neighbors differ by one grid step in one dimension.
func HClimb(e *Estimator, omega []int, g, restarts int, seed int64) (Plan, error) {
	m := e.sample.M()
	vs := gridValues(g)
	rng := rand.New(rand.NewSource(seed))
	if restarts < 1 {
		restarts = 1
	}
	best := Plan{EstimatedCost: -1}

	idxToH := func(idx []int) []float64 {
		h := make([]float64, m)
		for i, j := range idx {
			h[i] = vs[j]
		}
		return h
	}
	for r := 0; r < restarts; r++ {
		idx := make([]int, m)
		if r == 0 {
			// First start at the all-max-depth corner's midpoint, a
			// deterministic anchor that keeps single-restart runs stable.
			for i := range idx {
				idx[i] = (g - 1) / 2
			}
		} else {
			for i := range idx {
				idx[i] = rng.Intn(g)
			}
		}
		cur, err := e.Estimate(idxToH(idx), omega)
		if err != nil {
			return Plan{}, err
		}
		for {
			improved := false
			bestN, bestNCost := -1, cur
			var bestDir int
			for i := 0; i < m; i++ {
				for _, d := range []int{-1, 1} {
					j := idx[i] + d
					if j < 0 || j >= g {
						continue
					}
					idx[i] = j
					c, err := e.Estimate(idxToH(idx), omega)
					idx[i] = j - d
					if err != nil {
						return Plan{}, err
					}
					if c < bestNCost {
						bestNCost, bestN, bestDir = c, i, d
					}
				}
			}
			if bestN >= 0 {
				idx[bestN] += bestDir
				cur = bestNCost
				improved = true
			}
			if !improved {
				break
			}
		}
		if best.EstimatedCost < 0 || cur < best.EstimatedCost {
			best = Plan{H: idxToH(idx), Omega: omega, EstimatedCost: cur}
		}
	}
	best.Evals = e.Evals()
	return best, nil
}
