package opt

import (
	"math"
	"testing"

	"repro/internal/access"
	"repro/internal/algo"
	"repro/internal/data"
	"repro/internal/data/datatest"
	"repro/internal/score"
)

func testEstimator(t *testing.T, f score.Func, scn access.Scenario, k, n int) *Estimator {
	t.Helper()
	sample := datatest.MustDummySample(40, scn.M(), 7)
	e, err := NewEstimator(sample, scn, f, k, n, true)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestEstimatorBasics(t *testing.T) {
	e := testEstimator(t, score.Avg(), access.Uniform(2, 1, 1), 10, 400)
	// k' = round(10 * 40/400) = 1.
	if e.KPrime() != 1 {
		t.Errorf("k' = %d, want 1", e.KPrime())
	}
	c1, err := e.Estimate([]float64{0.5, 0.5}, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if c1 <= 0 {
		t.Errorf("estimate = %v, want positive", c1)
	}
	if e.Evals() != 1 {
		t.Errorf("evals = %d", e.Evals())
	}
	// Memoization: same config costs no extra eval.
	c2, err := e.Estimate([]float64{0.5, 0.5}, []int{0, 1})
	if err != nil || c2 != c1 {
		t.Errorf("cached estimate mismatch: %v vs %v (%v)", c2, c1, err)
	}
	if e.Evals() != 1 {
		t.Errorf("cache miss on identical config: evals = %d", e.Evals())
	}
}

func TestEstimatorValidation(t *testing.T) {
	sample := datatest.MustDummySample(10, 2, 1)
	if _, err := NewEstimator(sample, access.Uniform(3, 1, 1), score.Avg(), 5, 100, true); err == nil {
		t.Error("scenario arity mismatch should fail")
	}
	if _, err := NewEstimator(sample, access.Uniform(2, 1, 1), score.Avg(), 0, 100, true); err == nil {
		t.Error("k=0 should fail")
	}
	if _, err := NewEstimator(sample, access.Uniform(2, 1, 1), score.Weighted(1, 2, 3), 5, 100, true); err == nil {
		t.Error("function arity mismatch should fail")
	}
}

func TestKPrimeClamps(t *testing.T) {
	sample := datatest.MustDummySample(10, 2, 1)
	e, err := NewEstimator(sample, access.Uniform(2, 1, 1), score.Avg(), 500, 100, true)
	if err != nil {
		t.Fatal(err)
	}
	if e.KPrime() != 10 {
		t.Errorf("k' = %d, want clamp to sample size 10", e.KPrime())
	}
}

func TestOptimizeOmegaOrdersByGainPerCost(t *testing.T) {
	// Predicate 0: high mean (low gain), cheap. Predicate 1: low mean
	// (high gain), same cost -> 1 first.
	sample := datatest.MustNew("s", [][]float64{
		{0.9, 0.1},
		{0.95, 0.2},
		{0.85, 0.15},
	})
	scn := access.Uniform(2, 1, 1)
	omega := OptimizeOmega(sample, scn)
	if omega[0] != 1 || omega[1] != 0 {
		t.Errorf("omega = %v, want [1 0]", omega)
	}
	// Make predicate 1's probe 100x more expensive: order flips.
	scn.Preds[1].Random = 100 * access.UnitCost
	omega = OptimizeOmega(sample, scn)
	if omega[0] != 0 {
		t.Errorf("omega = %v, want predicate 0 first when 1 is costly", omega)
	}
	// Probe-impossible predicates go last.
	scn.Preds[0].RandomOK = false
	omega = OptimizeOmega(sample, scn)
	if omega[len(omega)-1] != 0 {
		t.Errorf("omega = %v, want probe-impossible predicate last", omega)
	}
}

func TestNaiveFindsGridMinimum(t *testing.T) {
	e := testEstimator(t, score.Min(), access.Uniform(2, 1, 1), 5, 200)
	plan, err := Naive(e, []int{0, 1}, 5, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.H) != 2 {
		t.Fatalf("plan = %+v", plan)
	}
	// Naive is exhaustive: no grid point may beat its pick.
	vs := gridValues(5)
	for _, a := range vs {
		for _, b := range vs {
			c, err := e.Estimate([]float64{a, b}, []int{0, 1})
			if err != nil {
				t.Fatal(err)
			}
			if c < plan.EstimatedCost {
				t.Errorf("grid point (%g,%g)=%v beats Naive's %v", a, b, c, plan.EstimatedCost)
			}
		}
	}
	if plan.Evals != 25 {
		t.Errorf("evals = %d, want 25", plan.Evals)
	}
}

func TestNaiveBudget(t *testing.T) {
	e := testEstimator(t, score.Avg(), access.Uniform(3, 1, 1), 5, 200)
	if _, err := Naive(e, []int{0, 1, 2}, 11, 100); err == nil {
		t.Error("11^3 mesh should exceed a 100-eval budget")
	}
}

func TestHClimbNeverWorseThanItsStarts(t *testing.T) {
	for _, f := range []score.Func{score.Min(), score.Avg()} {
		e := testEstimator(t, f, access.Uniform(2, 1, 10), 5, 200)
		plan, err := HClimb(e, []int{0, 1}, 11, 4, 3)
		if err != nil {
			t.Fatal(err)
		}
		// The midpoint anchor is always a start; HClimb must do at least
		// as well as it.
		mid, err := e.Estimate([]float64{0.5, 0.5}, []int{0, 1})
		if err != nil {
			t.Fatal(err)
		}
		if plan.EstimatedCost > mid {
			t.Errorf("%s: HClimb %v worse than its own start %v", f.Name(), plan.EstimatedCost, mid)
		}
	}
}

func TestHClimbReachesNaiveQualityOnSmallGrid(t *testing.T) {
	eN := testEstimator(t, score.Min(), access.MatrixCell(2, access.Cheap, access.Expensive, 10), 5, 200)
	naive, err := Naive(eN, []int{0, 1}, 7, 1000)
	if err != nil {
		t.Fatal(err)
	}
	eH := testEstimator(t, score.Min(), access.MatrixCell(2, access.Cheap, access.Expensive, 10), 5, 200)
	climb, err := HClimb(eH, []int{0, 1}, 7, 6, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Multi-start climbing on a small 2-D grid should land within 25% of
	// the exhaustive optimum while spending fewer evaluations.
	if float64(climb.EstimatedCost) > 1.25*float64(naive.EstimatedCost) {
		t.Errorf("HClimb %v vs Naive %v: quality gap too large", climb.EstimatedCost, naive.EstimatedCost)
	}
	if climb.Evals >= naive.Evals {
		t.Errorf("HClimb used %d evals, Naive %d: no overhead saving", climb.Evals, naive.Evals)
	}
}

func TestStrategiesMatchesShape(t *testing.T) {
	// For min, Strategies must consider focused configurations and pick
	// one at least as good as the best equal-depth one.
	e := testEstimator(t, score.Min(), access.Uniform(2, 1, 1), 5, 200)
	plan, err := Strategies(e, score.Min(), []int{0, 1}, 6)
	if err != nil {
		t.Fatal(err)
	}
	bestDiag := access.Cost(math.MaxInt64)
	for _, tv := range gridValues(6) {
		c, err := e.Estimate([]float64{tv, tv}, []int{0, 1})
		if err != nil {
			t.Fatal(err)
		}
		if c < bestDiag {
			bestDiag = c
		}
	}
	if plan.EstimatedCost > bestDiag {
		t.Errorf("Strategies(min) %v worse than best diagonal %v", plan.EstimatedCost, bestDiag)
	}
	// Weighted functions get weight-proportional candidates without error.
	e2 := testEstimator(t, score.Weighted(0.8, 0.2), access.Uniform(2, 1, 1), 5, 200)
	if _, err := Strategies(e2, score.Weighted(0.8, 0.2), []int{0, 1}, 6); err != nil {
		t.Fatal(err)
	}
	// Max-like and other shapes are accepted too.
	e3 := testEstimator(t, score.Max(), access.Uniform(2, 1, 1), 5, 200)
	if _, err := Strategies(e3, score.Max(), []int{0, 1}, 6); err != nil {
		t.Fatal(err)
	}
}

func TestOptimizeEndToEnd(t *testing.T) {
	ds := datatest.MustGenerate(data.Uniform, 300, 2, 11)
	for _, scheme := range []Scheme{SchemeHClimb, SchemeNaive, SchemeStrategies} {
		cfg := Config{Scheme: scheme, Grid: 6, Seed: 1}
		plan, err := Optimize(cfg, access.Uniform(2, 1, 5), score.Min(), 5, ds.N())
		if err != nil {
			t.Fatalf("%v: %v", scheme, err)
		}
		// Execute the plan and verify correctness plus an estimated cost
		// that is at least in the right order of magnitude.
		sess, err := access.NewSession(access.DatasetBackend{DS: ds}, access.Uniform(2, 1, 5))
		if err != nil {
			t.Fatal(err)
		}
		alg, err := algo.NewNC(plan.H, plan.Omega)
		if err != nil {
			t.Fatal(err)
		}
		prob, _ := algo.NewProblem(score.Min(), 5, sess)
		res, err := alg.Run(prob)
		if err != nil {
			t.Fatal(err)
		}
		oracle := ds.TopK(score.Min().Eval, 5)
		for i := range oracle {
			truth := score.Min().Eval(ds.Scores(res.Items[i].Obj))
			if math.Abs(truth-oracle[i].Score) > 1e-9 {
				t.Fatalf("%v: wrong answer at rank %d", scheme, i)
			}
		}
	}
}

func TestOptimizedAlgorithm(t *testing.T) {
	ds := datatest.MustGenerate(data.Gaussian, 200, 2, 5)
	scn := access.MatrixCell(2, access.Cheap, access.Expensive, 10)
	sess, err := access.NewSession(access.DatasetBackend{DS: ds}, scn)
	if err != nil {
		t.Fatal(err)
	}
	o := &Optimized{Cfg: Config{Grid: 6, Seed: 2}}
	prob, _ := algo.NewProblem(score.Avg(), 5, sess)
	res, err := o.Run(prob)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Items) != 5 {
		t.Fatalf("items = %d", len(res.Items))
	}
	if len(o.LastPlan.H) != 2 {
		t.Error("LastPlan not recorded")
	}
	oracle := ds.TopK(score.Avg().Eval, 5)
	for i := range oracle {
		truth := score.Avg().Eval(ds.Scores(res.Items[i].Obj))
		if math.Abs(truth-oracle[i].Score) > 1e-9 {
			t.Fatalf("wrong answer at rank %d", i)
		}
	}
}

func TestAdaptiveReplansOnCostShift(t *testing.T) {
	ds := datatest.MustGenerate(data.Uniform, 400, 2, 8)
	// Random access on p1 becomes 50x more expensive after 30 accesses.
	shift := access.CostShift{AfterAccesses: 30, Pred: 0, RandomFactor: 50}
	scn := access.Uniform(2, 1, 2)
	sess, err := access.NewSession(access.DatasetBackend{DS: ds}, scn, access.WithShifts(shift))
	if err != nil {
		t.Fatal(err)
	}
	a := &Adaptive{Cfg: Config{Grid: 6, Seed: 3}, Period: 10}
	prob, _ := algo.NewProblem(score.Min(), 10, sess)
	res, err := a.Run(prob)
	if err != nil {
		t.Fatal(err)
	}
	if a.Replans == 0 {
		t.Error("adaptive run should have re-planned after the cost shift")
	}
	oracle := ds.TopK(score.Min().Eval, 10)
	if len(res.Items) != 10 {
		t.Fatalf("items = %d", len(res.Items))
	}
	for i := range oracle {
		truth := score.Min().Eval(ds.Scores(res.Items[i].Obj))
		if math.Abs(truth-oracle[i].Score) > 1e-9 {
			t.Fatalf("wrong answer at rank %d after re-planning", i)
		}
	}
}

func TestAdaptiveSkipsReplanWhenStable(t *testing.T) {
	ds := datatest.MustGenerate(data.Uniform, 200, 2, 8)
	sess, err := access.NewSession(access.DatasetBackend{DS: ds}, access.Uniform(2, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	a := &Adaptive{Cfg: Config{Grid: 6, Seed: 3}, Period: 5}
	prob, _ := algo.NewProblem(score.Avg(), 5, sess)
	if _, err := a.Run(prob); err != nil {
		t.Fatal(err)
	}
	if a.Replans != 0 {
		t.Errorf("stable costs should never trigger a re-plan, got %d", a.Replans)
	}
}

func TestSchemeNames(t *testing.T) {
	for _, s := range []Scheme{SchemeHClimb, SchemeNaive, SchemeStrategies} {
		got, err := SchemeByName(s.String())
		if err != nil || got != s {
			t.Errorf("round-trip %v: %v, %v", s, got, err)
		}
	}
	if _, err := SchemeByName("x"); err == nil {
		t.Error("unknown scheme should fail")
	}
	if (&Optimized{}).Name() != "NC-Opt/HClimb" {
		t.Errorf("Optimized name = %q", (&Optimized{}).Name())
	}
}

func TestEstimatorDeterminism(t *testing.T) {
	mk := func() *Estimator {
		return testEstimator(t, score.Min(), access.Uniform(2, 1, 10), 10, 500)
	}
	a, b := mk(), mk()
	for _, h := range [][]float64{{0, 1}, {0.5, 0.5}, {1, 0.2}} {
		ca, err := a.Estimate(h, []int{0, 1})
		if err != nil {
			t.Fatal(err)
		}
		cb, err := b.Estimate(h, []int{0, 1})
		if err != nil {
			t.Fatal(err)
		}
		if ca != cb {
			t.Errorf("H=%v: estimates differ across identical estimators: %v vs %v", h, ca, cb)
		}
	}
}

func BenchmarkEstimate(b *testing.B) {
	sample := datatest.MustDummySample(50, 2, 7)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e, err := NewEstimator(sample, access.Uniform(2, 1, 10), score.Min(), 10, 1000, true)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := e.Estimate([]float64{0.5, 0.5}, []int{0, 1}); err != nil {
			b.Fatal(err)
		}
	}
}
