package opt

import (
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/access"
	"repro/internal/obs"
	"repro/internal/score"
)

// countingObs counts estimator evaluations and plan-cache outcomes; safe
// for concurrent use so singleflight tests can share one instance.
type countingObs struct {
	obs.Nop
	evals, memo  atomic.Int64
	hits, misses atomic.Int64
	evictions    atomic.Int64
}

func (c *countingObs) EstimatorEval(memoHit bool) {
	if memoHit {
		c.memo.Add(1)
	} else {
		c.evals.Add(1)
	}
}
func (c *countingObs) PlanCache(hit bool) {
	if hit {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
}
func (c *countingObs) PlanCacheEvict() { c.evictions.Add(1) }

func quickCfg(o obs.Observer) Config {
	return Config{Grid: 5, SampleSize: 20, Restarts: 2, Observer: o}
}

func TestPlanCacheHitIsByteForByte(t *testing.T) {
	c := NewPlanCache(8)
	scn := access.Uniform(2, 1, 5)
	first, err := c.Get(quickCfg(nil), scn, score.Avg(), 5, 500)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the returned slices: the cache must have kept its own copy.
	for i := range first.H {
		first.H[i] = -1
	}
	second, err := c.Get(quickCfg(nil), scn, score.Avg(), 5, 500)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := Optimize(quickCfg(nil), scn, score.Avg(), 5, 500)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(second.H, direct.H) || !reflect.DeepEqual(second.Omega, direct.Omega) ||
		second.EstimatedCost != direct.EstimatedCost {
		t.Errorf("cached plan %+v differs from direct optimization %+v", second, direct)
	}
	if st := c.Stats(); st.Hits != 1 || st.Misses != 1 {
		t.Errorf("stats = %+v, want 1 hit / 1 miss", st)
	}
}

func TestPlanCacheKeyDiscriminates(t *testing.T) {
	c := NewPlanCache(8)
	base := access.Uniform(2, 1, 5)
	if _, err := c.Get(quickCfg(nil), base, score.Avg(), 5, 500); err != nil {
		t.Fatal(err)
	}
	// Same costs under a different display name: must hit (session scenario
	// names mutate without changing the planning problem).
	renamed := access.Scenario{Name: "degraded/current", Preds: append([]access.PredCost(nil), base.Preds...)}
	if _, err := c.Get(quickCfg(nil), renamed, score.Avg(), 5, 500); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Hits != 1 {
		t.Fatalf("renamed scenario should hit, stats = %+v", st)
	}
	// A breaker-style capability flip must miss: the plan is stale.
	flipped := access.Scenario{Name: base.Name, Preds: append([]access.PredCost(nil), base.Preds...)}
	flipped.Preds[1].RandomOK = false
	if _, err := c.Get(quickCfg(nil), flipped, score.Avg(), 5, 500); err != nil {
		t.Fatal(err)
	}
	// So must different k, scoring function, or search config.
	if _, err := c.Get(quickCfg(nil), base, score.Avg(), 6, 500); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get(quickCfg(nil), base, score.Min(), 5, 500); err != nil {
		t.Fatal(err)
	}
	cfg := quickCfg(nil)
	cfg.Seed = 99
	if _, err := c.Get(cfg, base, score.Avg(), 5, 500); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Hits != 1 || st.Misses != 5 {
		t.Errorf("stats = %+v, want 1 hit / 5 misses", st)
	}
}

func TestPlanCacheSingleflight(t *testing.T) {
	// Learn how many estimator simulations one optimization costs.
	solo := &countingObs{}
	if _, err := NewPlanCache(8).Get(quickCfg(solo), access.Uniform(2, 1, 5), score.Avg(), 5, 500); err != nil {
		t.Fatal(err)
	}
	perRun := solo.evals.Load()
	if perRun == 0 {
		t.Fatal("optimization ran no estimator evals; test premise broken")
	}

	shared := &countingObs{}
	c := NewPlanCache(8)
	const dupes = 8
	var wg sync.WaitGroup
	for i := 0; i < dupes; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := c.Get(quickCfg(shared), access.Uniform(2, 1, 5), score.Avg(), 5, 500); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if got := shared.evals.Load(); got != perRun {
		t.Errorf("%d concurrent identical queries ran %d estimator evals, want exactly one optimization (%d)",
			dupes, got, perRun)
	}
	if st := c.Stats(); st.Misses != 1 || st.Hits != dupes-1 {
		t.Errorf("stats = %+v, want 1 miss / %d hits", st, dupes-1)
	}
	if shared.misses.Load() != 1 || shared.hits.Load() != dupes-1 {
		t.Errorf("observer saw %d misses / %d hits, want 1 / %d",
			shared.misses.Load(), shared.hits.Load(), dupes-1)
	}
}

func TestPlanCacheEviction(t *testing.T) {
	o := &countingObs{}
	c := NewPlanCache(2)
	for _, k := range []int{1, 2, 3} {
		if _, err := c.Get(quickCfg(o), access.Uniform(2, 1, 5), score.Avg(), k, 500); err != nil {
			t.Fatal(err)
		}
	}
	if c.Len() != 2 {
		t.Errorf("Len = %d, want capacity 2", c.Len())
	}
	if st := c.Stats(); st.Evictions != 1 {
		t.Errorf("evictions = %d, want 1", st.Evictions)
	}
	if o.evictions.Load() != 1 {
		t.Errorf("observer saw %d evictions, want 1", o.evictions.Load())
	}
	// k=1 was least recently used and must have been the entry dropped.
	if _, err := c.Get(quickCfg(o), access.Uniform(2, 1, 5), score.Avg(), 1, 500); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Misses != 4 {
		t.Errorf("re-fetching the evicted plan should miss; stats = %+v", st)
	}
}
