package opt

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/access"
	"repro/internal/data"
	"repro/internal/score"
)

// ObservedStats carries mid-query observations back into the optimizer.
// The divergence monitor (internal/adapt) fills one in when a running
// query's sources stop matching the plan's assumptions; Optimize then
// warps the dummy sample to match and the plan cache fingerprints the
// values — the same trick Config.SortedDiscount uses for sharing hit
// rates — so identical observations across queries share one plan.
//
// All values must be quantized (QuantizeSlope/QuantizeMean) before they
// reach a Config: raw floats would make every re-plan a cache miss.
type ObservedStats struct {
	// Slopes[i] is the implied power-law exponent of predicate i's sorted
	// stream: the c for which the observed last-seen score at depth d
	// matches ell = (1 - d/(n+1))^c. 1 means the stream descends exactly
	// as the uniform dummy sample predicts; >1 faster (scores collapse
	// early), <1 slower (a flat head). 0 means "no observation".
	Slopes []float64
	// ProbeMeans[i] is the observed mean random-access score on predicate
	// i, quantized; the uniform assumption is 0.5. <= 0 means "no
	// observation".
	ProbeMeans []float64
}

// Slope exponents are clamped to [1/8, 8]: beyond that the warped sample
// degenerates (every score ~0 or ~1) and plans stop discriminating.
const (
	minSlope = 0.125
	maxSlope = 8
)

// QuantizeSlope snaps an implied stream exponent onto half-steps in log2
// space, clamped to [1/8, 8] — 13 distinct values, so the plan-cache key
// space stays small as observations drift.
func QuantizeSlope(c float64) float64 {
	if math.IsNaN(c) || c <= 0 {
		return 0
	}
	q := math.Exp2(math.Round(math.Log2(c)*2) / 2)
	if q < minSlope {
		return minSlope
	}
	if q > maxSlope {
		return maxSlope
	}
	return q
}

// QuantizeMean snaps an observed mean score to 1/16 steps, clamped away
// from the {0,1} endpoints so the implied exponent stays finite.
func QuantizeMean(mu float64) float64 {
	if math.IsNaN(mu) || mu <= 0 {
		return 0
	}
	q := math.Round(mu*16) / 16
	if q < 1.0/16 {
		q = 1.0 / 16
	}
	if q > 15.0/16 {
		q = 15.0 / 16
	}
	return q
}

// Exponent combines the slope and probe-mean observations for predicate i
// into one power-law exponent (geometric mean when both are present), or
// 1 — the uniform assumption — when neither was observed. The divergence
// monitor uses it to re-baseline after a re-plan: once a plan has absorbed
// the observations, further divergence is measured against them.
func (o *ObservedStats) Exponent(i int) float64 {
	var cs, cm float64
	if o != nil && i < len(o.Slopes) && o.Slopes[i] > 0 {
		cs = o.Slopes[i]
	}
	if o != nil && i < len(o.ProbeMeans) && o.ProbeMeans[i] > 0 {
		// Mean of U^c is 1/(1+c), so an observed mean mu implies c = 1/mu - 1.
		cm = 1/o.ProbeMeans[i] - 1
		if cm < minSlope {
			cm = minSlope
		}
		if cm > maxSlope {
			cm = maxSlope
		}
	}
	switch {
	case cs > 0 && cm > 0:
		return math.Sqrt(cs * cm)
	case cs > 0:
		return cs
	case cm > 0:
		return cm
	default:
		return 1
	}
}

// Key renders the observations as the plan-cache key fragment; empty when
// there is nothing to distinguish from the no-observation baseline. The
// adaptive layer compares keys across checkpoints to skip re-plans that
// would provably return the current plan.
func (o *ObservedStats) Key() string {
	if o == nil || (len(o.Slopes) == 0 && len(o.ProbeMeans) == 0) {
		return ""
	}
	any := false
	var b strings.Builder
	b.WriteString("obs=")
	for i, s := range o.Slopes {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%g", s)
		if s > 0 && s != 1 {
			any = true
		}
	}
	b.WriteByte(';')
	for i, mu := range o.ProbeMeans {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%g", mu)
		if mu > 0 && mu != 0.5 {
			any = true
		}
	}
	if !any {
		return ""
	}
	return b.String()
}

// warpSample pushes the sample's per-predicate scores through the observed
// power law (v -> v^c_i), so simulation runs price configurations against
// streams shaped like the ones actually being served. Returns the input
// unchanged when every exponent is 1.
func warpSample(sample *data.Dataset, o *ObservedStats) (*data.Dataset, error) {
	n, m := sample.N(), sample.M()
	exps := make([]float64, m)
	identity := true
	for i := range exps {
		exps[i] = o.Exponent(i)
		if exps[i] != 1 {
			identity = false
		}
	}
	if identity {
		return sample, nil
	}
	scores := make([][]float64, n)
	for u := 0; u < n; u++ {
		row := make([]float64, m)
		for i := 0; i < m; i++ {
			row[i] = math.Pow(sample.Score(u, i), exps[i])
		}
		scores[u] = row
	}
	return data.New(sample.Name()+"/warped", scores)
}

// greedyFan is the candidate multiplier of the greedy depth rule: sorted
// streams are drained until roughly greedyFan*k objects have been seen,
// enough to cover the top-k under mild cross-predicate disagreement.
const greedyFan = 4

// depthAt returns the expected last-seen score after d sorted accesses on
// a stream with implied exponent c: the uniform quantile 1 - d/(n+1)
// pushed through the power law.
func depthAt(d, n int, c float64) float64 {
	fr := 1 - float64(d)/float64(n+1)
	if fr < 0 {
		fr = 0
	}
	return math.Pow(fr, c)
}

// rankAt inverts depthAt: how many sorted accesses it takes to descend to
// score h on a stream with exponent c.
func rankAt(h float64, n int, c float64) float64 {
	if h >= 1 {
		return 0
	}
	if h <= 0 {
		return float64(n)
	}
	return (1 - math.Pow(h, 1/c)) * float64(n+1)
}

// Greedy is the statistics-free planner (the re-plan fast path and the
// fallback when the estimator's sample is flagged stale): H and Omega are
// picked directly from the scenario's capability/cost asymmetries, the
// scoring function's shape, and the observed stream slopes — closed-form,
// no simulation runs, microseconds instead of the estimator's hundreds of
// sampled executions.
//
// Heuristics (DESIGN.md section 14):
//   - Omega orders predicates by expected bound reduction per unit probe
//     cost, (1 - mean_i)/cr_i, exactly like OptimizeOmega but with means
//     from the observed power law instead of a sample.
//   - Probe-incapable sorted predicates must be drained to be learned at
//     all; they always receive sorted depth.
//   - Min-like F focuses on one stream (candidates must be high on every
//     predicate, so one selective stream bounds the rest via probes); the
//     cheapest sorted source is drained to ~greedyFan*k candidates.
//   - Mean-like F deepens every sorted predicate in parallel, except those
//     whose random access is strictly cheaper — probing them on demand
//     dominates draining them speculatively.
//   - Max-like F skims every sorted stream to ~k: any single list can
//     carry a top answer.
//
// The returned plan's EstimatedCost is the closed-form drain+probe figure,
// comparable across greedy plans but not against estimator simulations;
// Evals is always 0.
func Greedy(scn access.Scenario, f score.Func, k, n int, obsv *ObservedStats) (Plan, error) {
	m := scn.M()
	if err := scn.Validate(m); err != nil {
		return Plan{}, err
	}
	if err := score.Validate(f, m); err != nil {
		return Plan{}, err
	}
	if k <= 0 || n <= 0 {
		return Plan{}, fmt.Errorf("opt: greedy planner requires positive k and n, got k=%d n=%d", k, n)
	}
	exps := make([]float64, m)
	for i := range exps {
		exps[i] = obsv.Exponent(i)
	}

	drain := greedyFan * k
	if drain > n {
		drain = n
	}
	skim := k
	if skim > n {
		skim = n
	}

	h := make([]float64, m)
	for i := range h {
		h[i] = 1
	}
	// Probe-incapable sorted predicates can only be learned by draining.
	for i, pc := range scn.Preds {
		if pc.SortedOK && !pc.RandomOK {
			h[i] = depthAt(drain, n, exps[i])
		}
	}
	switch f.Shape() {
	case score.ShapeMeanLike:
		for i, pc := range scn.Preds {
			if !pc.SortedOK || h[i] < 1 {
				continue
			}
			if pc.RandomOK && pc.Random < pc.Sorted {
				continue // probing on demand beats speculative draining
			}
			h[i] = depthAt(drain, n, exps[i])
		}
	case score.ShapeMaxLike:
		for i, pc := range scn.Preds {
			if pc.SortedOK {
				h[i] = depthAt(skim, n, exps[i])
			}
		}
	}
	// At least one stream must discover objects (no wild guesses): if no
	// predicate got depth above, drain the cheapest sorted source.
	if !anyBelow(h, 1) {
		best := -1
		for i, pc := range scn.Preds {
			if pc.SortedOK && (best == -1 || pc.Sorted < scn.Preds[best].Sorted) {
				best = i
			}
		}
		// Validate guarantees a sorted-capable predicate exists.
		h[best] = depthAt(drain, n, exps[best])
	}

	omega := greedyOmega(scn, obsv, exps)

	var units float64
	for i, pc := range scn.Preds {
		if h[i] < 1 {
			units += rankAt(h[i], n, exps[i]) * pc.Sorted.Units()
		} else if pc.RandomOK {
			units += float64(drain) * pc.Random.Units()
		}
	}
	return Plan{H: h, Omega: omega, EstimatedCost: access.CostOf(units), Evals: 0}, nil
}

func anyBelow(h []float64, bound float64) bool {
	for _, v := range h {
		if v < bound {
			return true
		}
	}
	return false
}

// greedyOmega mirrors OptimizeOmega's schedule — expected upper-bound
// reduction per unit probe cost, probe-incapable predicates last in index
// order — with means implied by the observed power law (1/(1+c), or the
// observed probe mean directly) instead of sample statistics.
func greedyOmega(scn access.Scenario, obsv *ObservedStats, exps []float64) []int {
	m := scn.M()
	gain := make([]float64, m)
	for i, pc := range scn.Preds {
		if !pc.RandomOK {
			gain[i] = math.Inf(-1)
			continue
		}
		mean := 1 / (1 + exps[i])
		if obsv != nil && i < len(obsv.ProbeMeans) && obsv.ProbeMeans[i] > 0 {
			mean = obsv.ProbeMeans[i]
		}
		cost := pc.Random.Units()
		if cost <= 0 {
			cost = 1e-9
		}
		gain[i] = (1 - mean) / cost
	}
	omega := make([]int, m)
	for i := range omega {
		omega[i] = i
	}
	// Stable selection sort, descending gain, index order on ties.
	for i := 0; i < m; i++ {
		best := i
		for j := i + 1; j < m; j++ {
			if gain[omega[j]] > gain[omega[best]] {
				best = j
			}
		}
		omega[i], omega[best] = omega[best], omega[i]
	}
	return omega
}
