package opt

import (
	"fmt"
	"math"

	"repro/internal/access"
	"repro/internal/algo"
	"repro/internal/data"
	"repro/internal/obs"
	"repro/internal/score"
	"repro/internal/state"
)

// Config parameterizes the optimizer. The zero value is usable: HClimb
// over an 11-point grid with a 50-object dummy sample and 5 restarts.
type Config struct {
	Scheme     Scheme
	Grid       int   // grid points per dimension (default 11)
	SampleSize int   // dummy-sample size when no sample is given (default 50)
	Restarts   int   // HClimb restarts (default 5)
	MaxEvals   int   // Naive mesh budget (default 20000)
	Seed       int64 // randomness for HClimb starts and dummy samples
	// Sample optionally supplies real sample objects (Section 7.3); when
	// nil a dummy uniform sample is synthesized, the paper's worst case.
	Sample *data.Dataset
	// NoWildGuesses mirrors the execution session's setting so simulation
	// runs exercise the same code path (default true).
	DisableNWG bool
	// RefineOmega enables the second stage of Section 7.2's two-stage
	// approximation in exhaustive form: after the H-search, all m!
	// probe schedules are estimated at the chosen depths and the best is
	// kept. Only honored for m <= 4 (beyond that the greedy schedule
	// stands, as the paper prescribes).
	RefineOmega bool
	// SortedDiscount and RandomDiscount scale the scenario's per-access
	// costs down before planning, modeling expected savings from the
	// cross-query sharing layer: a sorted access that hits a shared cursor
	// prefix (or a random access that hits the score cache) never reaches
	// the source, so its expected cost is (1 - hit rate) of the nominal
	// cost. Values are clamped to [0, maxDiscount]; callers should feed
	// quantized rates (share.Stats.Discounts) so plan-cache keys stay
	// stable as the observed rate drifts.
	SortedDiscount float64
	RandomDiscount float64
	// Observed, when non-nil, injects quantized mid-query observations
	// (internal/adapt's divergence monitor) into planning: the dummy
	// sample is warped per predicate to match the observed sorted-descent
	// slopes and random-access means, the greedy scheme consumes them
	// directly, and the values are fingerprinted into the plan-cache key —
	// the same trick SortedDiscount uses — so re-plans against repeated
	// observations are cache hits. A caller-supplied Sample is never
	// warped: real samples are ground truth, observations only correct
	// the dummy uniform assumption.
	Observed *ObservedStats
	// ClusterKey fingerprints distributed-backend membership (see
	// cluster.Coordinator.MembershipKey): plans chosen while one shard
	// set was live must not be replayed against another, so the key joins
	// the plan-cache fingerprint. Empty for single-node backends. It does
	// not change the optimization itself — membership shifts surface to
	// the optimizer as breaker-driven capability changes, which re-key the
	// scenario on their own; ClusterKey covers the window before breakers
	// trip and the recovery after they close.
	ClusterKey string
	// StorageKey fingerprints a disk-backed source's identity and its
	// IO-measured calibration (see store.Calibration.Key): plans priced
	// under one measured (cs, cr) must not be replayed after a
	// re-calibration moved the costs — new hardware, cold vs warm cache
	// mode — even though n, m, and the capability flags are unchanged.
	// Calibrated costs are quantized to two significant figures before
	// they reach this key, so repeat calibrations of unchanged physics
	// stay cache hits. Empty for declared-cost scenarios.
	StorageKey string
	// Observer, when non-nil, receives optimizer events: one
	// EstimatorEval per priced configuration (memoized or simulated).
	Observer obs.Observer
}

// maxDiscount caps sharing discounts: even a near-perfect cache must not
// price accesses at zero, or the optimizer would treat the source as free.
const maxDiscount = 0.95

func clampDiscount(d float64) float64 {
	if d < 0 || math.IsNaN(d) {
		return 0
	}
	if d > maxDiscount {
		return maxDiscount
	}
	return d
}

func (c Config) withDefaults() Config {
	if c.Grid == 0 {
		c.Grid = 11
	}
	if c.SampleSize == 0 {
		c.SampleSize = 50
	}
	if c.Restarts == 0 {
		c.Restarts = 5
	}
	if c.MaxEvals == 0 {
		c.MaxEvals = 20000
	}
	c.SortedDiscount = clampDiscount(c.SortedDiscount)
	c.RandomDiscount = clampDiscount(c.RandomDiscount)
	return c
}

// discountScenario applies the sharing discounts to a scenario's costs,
// returning the input unchanged when both are zero.
func discountScenario(scn access.Scenario, sd, rd float64) access.Scenario {
	if sd <= 0 && rd <= 0 {
		return scn
	}
	preds := append([]access.PredCost(nil), scn.Preds...)
	for i := range preds {
		if sd > 0 && preds[i].SortedOK {
			preds[i].Sorted = access.Cost(math.Round(float64(preds[i].Sorted) * (1 - sd)))
		}
		if rd > 0 && preds[i].RandomOK {
			preds[i].Random = access.Cost(math.Round(float64(preds[i].Random) * (1 - rd)))
		}
	}
	return access.Scenario{Name: scn.Name + "/discounted", Preds: preds}
}

// Optimize searches the SR/G space for a low-cost configuration for a
// (F, k) query over n objects under the given cost scenario. It first
// fixes Omega (global probe scheduling, following MPro), then runs the
// configured H-scheme against a fresh estimator, per Section 7.2's
// two-stage approximation.
func Optimize(cfg Config, scn access.Scenario, f score.Func, k, n int) (Plan, error) {
	cfg = cfg.withDefaults()
	scn = discountScenario(scn, cfg.SortedDiscount, cfg.RandomDiscount)
	if cfg.Scheme == SchemeGreedy {
		return Greedy(scn, f, k, n, cfg.Observed)
	}
	sample := cfg.Sample
	if sample == nil {
		var err error
		sample, err = data.DummySample(cfg.SampleSize, scn.M(), cfg.Seed)
		if err != nil {
			return Plan{}, fmt.Errorf("opt: synthesizing dummy sample: %w", err)
		}
		if cfg.Observed != nil {
			sample, err = warpSample(sample, cfg.Observed)
			if err != nil {
				return Plan{}, fmt.Errorf("opt: warping dummy sample: %w", err)
			}
		}
	}
	omega := OptimizeOmega(sample, scn)
	est, err := NewEstimator(sample, scn, f, k, n, !cfg.DisableNWG)
	if err != nil {
		return Plan{}, err
	}
	est.SetObserver(cfg.Observer)
	var plan Plan
	switch cfg.Scheme {
	case SchemeNaive:
		plan, err = Naive(est, omega, cfg.Grid, cfg.MaxEvals)
	case SchemeStrategies:
		plan, err = Strategies(est, f, omega, cfg.Grid)
	case SchemeHClimb:
		plan, err = HClimb(est, omega, cfg.Grid, cfg.Restarts, cfg.Seed)
	default:
		return Plan{}, fmt.Errorf("opt: unknown scheme %v", cfg.Scheme)
	}
	if err != nil {
		return Plan{}, err
	}
	if cfg.RefineOmega && scn.M() <= 4 {
		// Stage 2: the best schedule for the chosen depths.
		best, bestCost, oerr := OptimizeOmegaExhaustive(est, plan.H)
		if oerr != nil {
			return Plan{}, oerr
		}
		if bestCost < plan.EstimatedCost {
			plan.Omega, plan.EstimatedCost = best, bestCost
		}
		plan.Evals = est.Evals()
	}
	return plan, nil
}

// EstimateConfiguration prices one (H, Omega) configuration under the
// same model Optimize plans against: the scenario after sharing
// discounts, and the dummy sample warped by cfg.Observed. The adaptive
// layer uses it to price the incumbent plan before a mid-query swap — a
// re-plan only pays off if the candidate beats the incumbent under the
// *same* model, and comparing a fresh estimate against the incumbent's
// original (differently-modelled) estimate would systematically favour
// switching. cfg.Scheme is irrelevant here: pricing a fixed configuration
// is scheme-free.
func EstimateConfiguration(cfg Config, scn access.Scenario, f score.Func, k, n int, h []float64, omega []int) (access.Cost, error) {
	cfg = cfg.withDefaults()
	scn = discountScenario(scn, cfg.SortedDiscount, cfg.RandomDiscount)
	sample := cfg.Sample
	if sample == nil {
		var err error
		sample, err = data.DummySample(cfg.SampleSize, scn.M(), cfg.Seed)
		if err != nil {
			return 0, fmt.Errorf("opt: synthesizing dummy sample: %w", err)
		}
		if cfg.Observed != nil {
			sample, err = warpSample(sample, cfg.Observed)
			if err != nil {
				return 0, fmt.Errorf("opt: warping dummy sample: %w", err)
			}
		}
	}
	est, err := NewEstimator(sample, scn, f, k, n, !cfg.DisableNWG)
	if err != nil {
		return 0, err
	}
	est.SetObserver(cfg.Observer)
	return est.Estimate(h, omega)
}

// Optimized is an algo.Algorithm that optimizes before executing: the
// paper's complete pipeline (estimate, search, run the chosen NC
// configuration). The plan chosen at run time is recorded for inspection.
type Optimized struct {
	Cfg      Config
	LastPlan Plan
}

// Name returns the pipeline name with the scheme.
func (o *Optimized) Name() string {
	return "NC-Opt/" + o.Cfg.withDefaults().Scheme.String()
}

// Run optimizes for the problem's scenario and executes the chosen plan.
func (o *Optimized) Run(p *algo.Problem) (*algo.Result, error) {
	scn := p.Session.CurrentScenario()
	plan, err := Optimize(o.Cfg, scn, p.F, p.K, p.Session.N())
	if err != nil {
		return nil, err
	}
	o.LastPlan = plan
	sel, err := algo.NewSRG(plan.H, plan.Omega)
	if err != nil {
		return nil, err
	}
	return (&algo.NC{Sel: sel, Obs: o.Cfg.Observer}).Run(p)
}

// Adaptive is an algo.Algorithm that re-plans mid-query: every Period
// accesses it re-reads the costs currently in force (which dynamic
// scenarios may have shifted) and re-optimizes the SR/G configuration,
// swapping the selector while NC's state carries over — sound because
// SR/G selectors are stateless over the shared score state. It
// demonstrates the adaptivity motivation of Section 1 on dynamic sources.
type Adaptive struct {
	Cfg    Config
	Period int // accesses between re-plans (default 25)
	// Replans counts how many re-optimizations the last run performed.
	Replans int
}

// Name returns "NC-Adaptive".
func (a *Adaptive) Name() string { return "NC-Adaptive" }

// Run executes the adaptive pipeline.
func (a *Adaptive) Run(p *algo.Problem) (*algo.Result, error) {
	period := a.Period
	if period <= 0 {
		period = 25
	}
	a.Replans = 0
	plan, err := Optimize(a.Cfg, p.Session.CurrentScenario(), p.F, p.K, p.Session.N())
	if err != nil {
		return nil, err
	}
	sel, err := algo.NewSRG(plan.H, plan.Omega)
	if err != nil {
		return nil, err
	}
	nc := &algo.NC{Sel: sel, Obs: a.Cfg.Observer}
	accesses := 0
	lastScn := p.Session.CurrentScenario()
	nc.OnAccess = func(_ *state.Table, _ algo.Choice) {
		accesses++
		if accesses%period != 0 {
			return
		}
		cur := p.Session.CurrentScenario()
		if scenarioEqual(cur, lastScn) {
			return // nothing changed; skip the re-plan
		}
		lastScn = cur
		// Seed shifted per re-plan so dummy samples differ across plans
		// only deterministically.
		cfg := a.Cfg
		cfg.Seed += int64(accesses)
		newPlan, err := Optimize(cfg, cur, p.F, p.K, p.Session.N())
		if err != nil {
			return // keep the current plan; re-planning is best-effort
		}
		newSel, err := algo.NewSRG(newPlan.H, newPlan.Omega)
		if err != nil {
			return
		}
		nc.Sel = newSel
		a.Replans++
	}
	return nc.Run(p)
}

func scenarioEqual(a, b access.Scenario) bool {
	if len(a.Preds) != len(b.Preds) {
		return false
	}
	for i := range a.Preds {
		if a.Preds[i] != b.Preds[i] {
			return false
		}
	}
	return true
}
