// Package opt implements the paper's dynamic cost-based optimization
// (Section 7): searching the SR/G-reduced NC space for a low-cost
// (H, Omega) configuration.
//
//   - Cost estimation (Section 7.3) runs the actual SR/G algorithm on a
//     sample dataset — a "simulation run" — with the retrieval size scaled
//     proportionally (k' = k*|sample|/n) and the resulting cost scaled back
//     up. Samples may come from the real data or be "dummy" samples from
//     an assumed uniform distribution when real statistics are
//     unavailable, the paper's worst-case setting and our default.
//   - H-optimization (Section 7.2) offers the paper's three schemes:
//     Naive exhaustive grid search, query-driven Strategies, and
//     multi-start hill climbing (HClimb, the paper's pick).
//   - Omega-optimization adopts MPro's global probe scheduling: predicates
//     ordered by expected bound reduction per unit of probe cost.
//
// The package also provides Adaptive, an algo.Algorithm that re-plans
// mid-query against the costs currently in force, demonstrating the
// framework's runtime adaptivity on dynamic Web sources.
package opt

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"repro/internal/access"
	"repro/internal/algo"
	"repro/internal/data"
	"repro/internal/obs"
	"repro/internal/score"
)

// Estimator prices SR/G configurations by simulation runs on a sample.
// It memoizes estimates per configuration, so search schemes can revisit
// grid points for free; Evals counts distinct simulation runs, the
// optimization-overhead measure of the paper's appendix experiment.
type Estimator struct {
	sample *data.Dataset
	scn    access.Scenario
	f      score.Func
	kPrime int
	scale  float64 // n / |sample|
	nwg    bool

	cache map[string]access.Cost
	evals int
	obs   obs.Observer // nil unless SetObserver
}

// SetObserver streams estimator events (one EstimatorEval per Estimate
// call, distinguishing memoized from simulated) into the observer.
func (e *Estimator) SetObserver(o obs.Observer) { e.obs = o }

// NewEstimator builds an estimator for a query of size k over n objects
// under the given scenario, using the provided sample dataset. The sample
// must have the scenario's predicate count.
func NewEstimator(sample *data.Dataset, scn access.Scenario, f score.Func, k, n int, nwg bool) (*Estimator, error) {
	if err := scn.Validate(sample.M()); err != nil {
		return nil, err
	}
	if err := score.Validate(f, sample.M()); err != nil {
		return nil, err
	}
	if k <= 0 || n <= 0 {
		return nil, fmt.Errorf("opt: estimator requires positive k and n, got k=%d n=%d", k, n)
	}
	kPrime := int(math.Round(float64(k) * float64(sample.N()) / float64(n)))
	if kPrime < 1 {
		kPrime = 1
	}
	if kPrime > sample.N() {
		kPrime = sample.N()
	}
	return &Estimator{
		sample: sample,
		scn:    scn,
		f:      f,
		kPrime: kPrime,
		scale:  float64(n) / float64(sample.N()),
		nwg:    nwg,
		cache:  make(map[string]access.Cost),
	}, nil
}

// Evals returns the number of distinct simulation runs performed so far.
func (e *Estimator) Evals() int { return e.evals }

// KPrime returns the scaled retrieval size used in simulation runs.
func (e *Estimator) KPrime() int { return e.kPrime }

func cfgKey(h []float64, omega []int) string {
	var b strings.Builder
	for _, x := range h {
		b.WriteString(strconv.FormatFloat(x, 'f', 6, 64))
		b.WriteByte(',')
	}
	b.WriteByte('|')
	for _, p := range omega {
		b.WriteString(strconv.Itoa(p))
		b.WriteByte(',')
	}
	return b.String()
}

// Estimate returns the estimated total access cost of NC with SR/G
// configuration (h, omega) on the full database: the simulation run's cost
// scaled by n/|sample|.
func (e *Estimator) Estimate(h []float64, omega []int) (access.Cost, error) {
	key := cfgKey(h, omega)
	if c, ok := e.cache[key]; ok {
		if e.obs != nil {
			e.obs.EstimatorEval(true)
		}
		return c, nil
	}
	if e.obs != nil {
		e.obs.EstimatorEval(false)
	}
	var opts []access.Option
	if !e.nwg {
		opts = append(opts, access.WithoutNoWildGuesses())
	}
	sess, err := access.NewSession(access.DatasetBackend{DS: e.sample}, e.scn, opts...)
	if err != nil {
		return 0, err
	}
	alg, err := algo.NewNC(h, omega)
	if err != nil {
		return 0, err
	}
	prob, err := algo.NewProblem(e.f, e.kPrime, sess)
	if err != nil {
		return 0, err
	}
	res, err := alg.Run(prob)
	if err != nil {
		return 0, fmt.Errorf("opt: simulation run failed for H=%v Omega=%v: %w", h, omega, err)
	}
	cost := access.Cost(math.Round(float64(res.Cost()) * e.scale))
	e.cache[key] = cost
	e.evals++
	return cost, nil
}

// OptimizeOmega computes a global probe schedule following MPro's
// cost-based scheduling insight: probe first the predicate expected to
// shrink an object's maximal-possible score the most per unit of random-
// access cost. The expected shrink of predicate i is estimated from the
// sample as 1 - mean(p_i) (how far, on average, the perfect bound falls
// when the probe lands); predicates without random access go last, in
// index order, since they can only be resolved by sorted access anyway.
func OptimizeOmega(sample *data.Dataset, scn access.Scenario) []int {
	m := sample.M()
	means := make([]float64, m)
	for i := 0; i < m; i++ {
		sum := 0.0
		for u := 0; u < sample.N(); u++ {
			sum += sample.Score(u, i)
		}
		means[i] = sum / float64(sample.N())
	}
	type ranked struct {
		pred int
		gain float64
	}
	rs := make([]ranked, m)
	for i := 0; i < m; i++ {
		pc := scn.Preds[i]
		if !pc.RandomOK {
			rs[i] = ranked{pred: i, gain: math.Inf(-1)}
			continue
		}
		cost := pc.Random.Units()
		if cost <= 0 {
			cost = 1e-9
		}
		rs[i] = ranked{pred: i, gain: (1 - means[i]) / cost}
	}
	// Stable selection sort by gain descending, index ascending on ties:
	// m is tiny, clarity over cleverness.
	omega := make([]int, 0, m)
	used := make([]bool, m)
	for len(omega) < m {
		best := -1
		for i := 0; i < m; i++ {
			if used[i] {
				continue
			}
			if best == -1 || rs[i].gain > rs[best].gain {
				best = i
			}
		}
		used[best] = true
		omega = append(omega, rs[best].pred)
	}
	return omega
}

// OptimizeOmegaExhaustive searches all m! probe schedules with the
// estimator at the given depth configuration and returns the cheapest.
// It exists to validate the greedy OptimizeOmega (the paper adopts MPro's
// global scheduling precisely because exhaustive per-object scheduling
// "significantly reduc[es] the complexity" without hurting quality) and is
// practical only for small m; it refuses m > maxExhaustiveOmega.
func OptimizeOmegaExhaustive(e *Estimator, h []float64) ([]int, access.Cost, error) {
	m := e.sample.M()
	const maxExhaustiveOmega = 6
	if m > maxExhaustiveOmega {
		return nil, 0, fmt.Errorf("opt: exhaustive Omega search refuses m=%d (> %d): %d! schedules", m, maxExhaustiveOmega, m)
	}
	perm := make([]int, m)
	for i := range perm {
		perm[i] = i
	}
	var best []int
	bestCost := access.Cost(-1)
	var recurse func(depth int) error
	recurse = func(depth int) error {
		if depth == m {
			c, err := e.Estimate(h, perm)
			if err != nil {
				return err
			}
			if bestCost < 0 || c < bestCost {
				bestCost = c
				best = append(best[:0], perm...)
			}
			return nil
		}
		for i := depth; i < m; i++ {
			perm[depth], perm[i] = perm[i], perm[depth]
			if err := recurse(depth + 1); err != nil {
				return err
			}
			perm[depth], perm[i] = perm[i], perm[depth]
		}
		return nil
	}
	if err := recurse(0); err != nil {
		return nil, 0, err
	}
	return best, bestCost, nil
}
