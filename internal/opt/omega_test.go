package opt

import (
	"testing"

	"repro/internal/access"
	"repro/internal/data"
	"repro/internal/data/datatest"
	"repro/internal/score"
)

// probeScenario builds an MPro-style setting with heterogeneous probe
// costs so schedules genuinely differ.
func probeScenario() access.Scenario {
	return access.Scenario{Name: "probe3", Preds: []access.PredCost{
		{Sorted: access.CostOf(0.1), SortedOK: true, Random: access.CostOf(4), RandomOK: true},
		{Sorted: 0, SortedOK: false, Random: access.CostOf(1), RandomOK: true},
		{Sorted: 0, SortedOK: false, Random: access.CostOf(2), RandomOK: true},
	}}
}

func TestGreedyOmegaNearExhaustive(t *testing.T) {
	// The greedy (MPro-style) schedule should be within a modest factor of
	// the exhaustive optimum on heterogeneous probe scenarios — the
	// empirical basis for adopting global greedy scheduling.
	for seed := int64(1); seed <= 4; seed++ {
		sample := datatest.MustGenerate(data.Skewed, 60, 3, seed)
		scn := probeScenario()
		e, err := NewEstimator(sample, scn, score.Min(), 5, 600, true)
		if err != nil {
			t.Fatal(err)
		}
		h := []float64{0, 1, 1}
		greedy := OptimizeOmega(sample, scn)
		gCost, err := e.Estimate(h, greedy)
		if err != nil {
			t.Fatal(err)
		}
		_, bestCost, err := OptimizeOmegaExhaustive(e, h)
		if err != nil {
			t.Fatal(err)
		}
		if gCost > bestCost*13/10 {
			t.Errorf("seed %d: greedy %v vs exhaustive optimum %v (> 30%% off)", seed, gCost, bestCost)
		}
		if bestCost > gCost {
			t.Errorf("seed %d: exhaustive %v cannot exceed greedy %v", seed, bestCost, gCost)
		}
	}
}

func TestOptimizeOmegaExhaustiveRefusesLargeM(t *testing.T) {
	sample := datatest.MustGenerate(data.Uniform, 10, 7, 1)
	e, err := NewEstimator(sample, access.Uniform(7, 1, 1), score.Min(), 2, 100, true)
	if err != nil {
		t.Fatal(err)
	}
	h := make([]float64, 7)
	if _, _, err := OptimizeOmegaExhaustive(e, h); err == nil {
		t.Error("m=7 should be refused")
	}
}

func TestOptimizeOmegaExhaustiveCoversAllPermutations(t *testing.T) {
	sample := datatest.MustGenerate(data.Uniform, 20, 3, 2)
	scn := probeScenario()
	e, err := NewEstimator(sample, scn, score.Min(), 2, 100, true)
	if err != nil {
		t.Fatal(err)
	}
	omega, cost, err := OptimizeOmegaExhaustive(e, []float64{0, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(omega) != 3 || cost <= 0 {
		t.Fatalf("omega=%v cost=%v", omega, cost)
	}
	// 3! = 6 distinct schedules must have been estimated.
	if e.Evals() != 6 {
		t.Errorf("evals = %d, want 6", e.Evals())
	}
	// Must be a permutation.
	seen := [3]bool{}
	for _, p := range omega {
		if p < 0 || p > 2 || seen[p] {
			t.Fatalf("not a permutation: %v", omega)
		}
		seen[p] = true
	}
}

func TestOptimizeWithRefineOmega(t *testing.T) {
	scn := probeScenario()
	cfg := Config{Grid: 5, Seed: 2, RefineOmega: true}
	plan, err := Optimize(cfg, scn, score.Min(), 5, 500)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Omega) != 3 {
		t.Fatalf("plan = %+v", plan)
	}
	// Refinement can only improve (or match) the unrefined plan's estimate.
	base, err := Optimize(Config{Grid: 5, Seed: 2}, scn, score.Min(), 5, 500)
	if err != nil {
		t.Fatal(err)
	}
	if plan.EstimatedCost > base.EstimatedCost {
		t.Errorf("refined %v worse than unrefined %v", plan.EstimatedCost, base.EstimatedCost)
	}
	// m > 4 silently keeps the greedy schedule.
	big := access.Uniform(5, 1, 1)
	if _, err := Optimize(Config{Grid: 3, Seed: 1, RefineOmega: true, SampleSize: 20}, big, score.Min(), 3, 100); err != nil {
		t.Fatalf("m=5 with RefineOmega should not fail: %v", err)
	}
}
