package opt

import (
	"container/list"
	"fmt"
	"strings"
	"sync"

	"repro/internal/access"
	"repro/internal/score"
)

// DefaultPlanCacheCapacity bounds a PlanCache built with capacity <= 0.
const DefaultPlanCacheCapacity = 128

// CacheStats is a point-in-time snapshot of plan-cache effectiveness.
// Hits include singleflight followers: a query that waited for a
// concurrent identical optimization still avoided an estimator run.
type CacheStats struct {
	Hits, Misses, Evictions uint64
}

// PlanCache memoizes optimizer results across queries. Optimization is
// the serve path's dominant fixed cost — an HClimb search prices hundreds
// of configurations by simulation — while its inputs are fully
// deterministic, so identical planning problems always yield identical
// plans and can share one search.
//
// The key is a fingerprint of every input Optimize consumes: the
// scenario's per-predicate capabilities and costs (deliberately not its
// name — a breaker-degraded scenario differs in capability flags, so
// degradation invalidates cached plans with no extra wiring), the scoring
// function's identity, k, n, and the search configuration. Entries are
// kept in LRU order up to a fixed capacity.
//
// Concurrent lookups of the same key are deduplicated singleflight-style:
// the first caller runs Optimize, every concurrent duplicate blocks on
// the in-flight call and shares its result, so a stampede of identical
// queries costs exactly one estimator run.
//
// PlanCache is safe for concurrent use. Per the lock discipline, the
// cache lock is never held across the optimizer run, the in-flight wait,
// or observer emissions.
type PlanCache struct {
	mu       sync.Mutex
	capacity int
	entries  map[string]*list.Element
	lru      *list.List // of *cacheEntry, front = most recent
	inflight map[string]*planCall

	hits, misses, evictions uint64
}

type cacheEntry struct {
	key  string
	plan Plan
}

type planCall struct {
	done chan struct{} // closed when plan/err are set
	plan Plan
	err  error
}

// NewPlanCache builds a plan cache bounded to capacity entries
// (DefaultPlanCacheCapacity when capacity <= 0).
func NewPlanCache(capacity int) *PlanCache {
	if capacity <= 0 {
		capacity = DefaultPlanCacheCapacity
	}
	return &PlanCache{
		capacity: capacity,
		entries:  make(map[string]*list.Element),
		lru:      list.New(),
		inflight: make(map[string]*planCall),
	}
}

// Get returns the plan for the planning problem, running Optimize on a
// miss and caching the result. The returned plan's slices are the
// caller's to own (defensive copies of the cached entry). Lookup outcomes
// and evictions are emitted on cfg.Observer; errors are never cached.
func (c *PlanCache) Get(cfg Config, scn access.Scenario, f score.Func, k, n int) (Plan, error) {
	norm := cfg.withDefaults()
	key := cacheKey(scn, f, k, n, norm)

	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.lru.MoveToFront(el)
		plan := copyPlan(el.Value.(*cacheEntry).plan)
		c.hits++
		c.mu.Unlock()
		if cfg.Observer != nil {
			cfg.Observer.PlanCache(true)
		}
		return plan, nil
	}
	if call, ok := c.inflight[key]; ok {
		c.mu.Unlock()
		<-call.done
		if call.err != nil {
			return Plan{}, call.err
		}
		c.mu.Lock()
		c.hits++
		c.mu.Unlock()
		if cfg.Observer != nil {
			cfg.Observer.PlanCache(true)
		}
		return copyPlan(call.plan), nil
	}
	call := &planCall{done: make(chan struct{})}
	c.inflight[key] = call
	c.misses++
	c.mu.Unlock()
	if cfg.Observer != nil {
		cfg.Observer.PlanCache(false)
	}

	call.plan, call.err = Optimize(cfg, scn, f, k, n)
	close(call.done)

	c.mu.Lock()
	delete(c.inflight, key)
	evicted := 0
	if call.err == nil {
		evicted = c.insert(key, call.plan)
	}
	c.mu.Unlock()
	for i := 0; i < evicted; i++ {
		if cfg.Observer != nil {
			cfg.Observer.PlanCacheEvict()
		}
	}
	if call.err != nil {
		return Plan{}, call.err
	}
	return copyPlan(call.plan), nil
}

// insert stores the plan under key and trims to capacity, returning how
// many entries were evicted. Caller holds c.mu.
func (c *PlanCache) insert(key string, p Plan) int {
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheEntry).plan = copyPlan(p)
		c.lru.MoveToFront(el)
		return 0
	}
	c.entries[key] = c.lru.PushFront(&cacheEntry{key: key, plan: copyPlan(p)})
	evicted := 0
	for c.lru.Len() > c.capacity {
		back := c.lru.Back()
		c.lru.Remove(back)
		delete(c.entries, back.Value.(*cacheEntry).key)
		c.evictions++
		evicted++
	}
	return evicted
}

// Stats returns cumulative hit/miss/eviction counts.
func (c *PlanCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Hits: c.hits, Misses: c.misses, Evictions: c.evictions}
}

// Len returns the number of cached plans.
func (c *PlanCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// Purge drops every cached plan (counters are kept). In-flight
// optimizations complete and re-insert; stale entries otherwise age out
// via LRU, so Purge exists for tests and operational resets, not
// correctness.
func (c *PlanCache) Purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = make(map[string]*list.Element)
	c.lru.Init()
}

func copyPlan(p Plan) Plan {
	p.H = append([]float64(nil), p.H...)
	p.Omega = append([]int(nil), p.Omega...)
	return p
}

// cacheKey fingerprints a planning problem. cfg must already be
// normalized (withDefaults) so a zero Config and an explicit default
// Config share an entry. The scenario contributes capabilities and exact
// costs per predicate; its display name is excluded on purpose (session
// scenario names mutate — "/current", "/degraded" — without changing the
// planning problem, and vice versa).
func cacheKey(scn access.Scenario, f score.Func, k, n int, cfg Config) string {
	var b strings.Builder
	fmt.Fprintf(&b, "f=%s k=%d n=%d m=%d", f.Name(), k, n, scn.M())
	for _, pc := range scn.Preds {
		fmt.Fprintf(&b, "|s:%t:%d r:%t:%d", pc.SortedOK, int64(pc.Sorted), pc.RandomOK, int64(pc.Random))
	}
	fmt.Fprintf(&b, "|cfg=%d:%d:%d:%d:%d:%d:%t:%t", cfg.Scheme, cfg.Grid, cfg.SampleSize,
		cfg.Restarts, cfg.MaxEvals, cfg.Seed, cfg.DisableNWG, cfg.RefineOmega)
	if cfg.SortedDiscount > 0 || cfg.RandomDiscount > 0 {
		// Sharing discounts reshape the scenario Optimize plans against;
		// quantized rates keep the key space small.
		fmt.Fprintf(&b, " disc=%g:%g", cfg.SortedDiscount, cfg.RandomDiscount)
	}
	if cfg.ClusterKey != "" {
		// Cluster membership reshapes which backend serves the accesses a
		// plan schedules; epoch-keyed so fences and recoveries re-key.
		fmt.Fprintf(&b, " cluster=%s", cfg.ClusterKey)
	}
	if cfg.StorageKey != "" {
		// Disk-backed sources carry their measured calibration in the key:
		// a re-calibration that moves the quantized costs re-keys every
		// plan priced under the old physics.
		fmt.Fprintf(&b, " storage=%s", cfg.StorageKey)
	}
	if fp := cfg.Observed.Key(); fp != "" {
		// Mid-query observations reshape the sample Optimize plans against,
		// exactly like the sharing discounts reshape costs; quantized values
		// keep the key space small and make repeat re-plans cache hits.
		b.WriteByte(' ')
		b.WriteString(fp)
	}
	if cfg.Sample != nil {
		// A caller-supplied sample changes the estimator's input; identity
		// (not content) is the practical discriminator for shared datasets.
		fmt.Fprintf(&b, " sample=%p", cfg.Sample)
	}
	return b.String()
}
