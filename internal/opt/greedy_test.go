package opt

import (
	"math"
	"testing"

	"repro/internal/access"
	"repro/internal/score"
)

func TestQuantizeSlope(t *testing.T) {
	cases := []struct{ in, want float64 }{
		{0, 0}, {-1, 0}, {math.NaN(), 0},
		{1, 1}, {2, 2}, {4, 4},
		{1.3, math.Exp2(0.5)}, // rounds to the nearest half-step in log2
		{0.01, 0.125},         // clamped low
		{100, 8},              // clamped high
	}
	for _, c := range cases {
		if got := QuantizeSlope(c.in); got != c.want {
			t.Errorf("QuantizeSlope(%g) = %g, want %g", c.in, got, c.want)
		}
	}
}

func TestQuantizeMean(t *testing.T) {
	cases := []struct{ in, want float64 }{
		{0, 0}, {-0.5, 0}, {math.NaN(), 0},
		{0.5, 0.5}, {0.52, 0.5}, {0.1, 0.125},
		{0.001, 1.0 / 16}, {0.999, 15.0 / 16},
	}
	for _, c := range cases {
		if got := QuantizeMean(c.in); got != c.want {
			t.Errorf("QuantizeMean(%g) = %g, want %g", c.in, got, c.want)
		}
	}
}

func TestObservedExponent(t *testing.T) {
	if c := (*ObservedStats)(nil).Exponent(0); c != 1 {
		t.Errorf("nil stats exponent = %g, want 1 (uniform)", c)
	}
	o := &ObservedStats{Slopes: []float64{2, 0}, ProbeMeans: []float64{0, 0.25}}
	if c := o.Exponent(0); c != 2 {
		t.Errorf("slope-only exponent = %g, want 2", c)
	}
	// Mean 0.25 implies c = 1/0.25 - 1 = 3.
	if c := o.Exponent(1); c != 3 {
		t.Errorf("probe-only exponent = %g, want 3", c)
	}
	both := &ObservedStats{Slopes: []float64{4}, ProbeMeans: []float64{0.5}}
	// Slope 4, mean 0.5 -> cm = 1; geometric mean = 2.
	if c := both.Exponent(0); c != 2 {
		t.Errorf("blended exponent = %g, want 2", c)
	}
}

func TestObservedKey(t *testing.T) {
	if k := (*ObservedStats)(nil).Key(); k != "" {
		t.Errorf("nil stats key = %q, want empty", k)
	}
	baseline := &ObservedStats{Slopes: []float64{1, 0}, ProbeMeans: []float64{0.5, 0}}
	if k := baseline.Key(); k != "" {
		t.Errorf("baseline observations key = %q, want empty (indistinguishable from no observation)", k)
	}
	drifted := &ObservedStats{Slopes: []float64{2, 1}, ProbeMeans: []float64{0, 0}}
	k1 := drifted.Key()
	if k1 == "" {
		t.Fatal("drifted observations must produce a key")
	}
	same := &ObservedStats{Slopes: []float64{2, 1}, ProbeMeans: []float64{0, 0}}
	if same.Key() != k1 {
		t.Errorf("equal observations produced different keys: %q vs %q", same.Key(), k1)
	}
	other := &ObservedStats{Slopes: []float64{4, 1}, ProbeMeans: []float64{0, 0}}
	if other.Key() == k1 {
		t.Errorf("different observations share key %q", k1)
	}
}

// validatePlan asserts structural soundness: per-predicate depths in
// [0,1], Omega a permutation, positive cost.
func validatePlan(t *testing.T, p Plan, m int) {
	t.Helper()
	if len(p.H) != m {
		t.Fatalf("plan H arity %d, want %d", len(p.H), m)
	}
	for i, h := range p.H {
		if h < 0 || h > 1 {
			t.Fatalf("H[%d] = %g outside [0,1]", i, h)
		}
	}
	if len(p.Omega) != m {
		t.Fatalf("plan Omega arity %d, want %d", len(p.Omega), m)
	}
	seen := make([]bool, m)
	for _, i := range p.Omega {
		if i < 0 || i >= m || seen[i] {
			t.Fatalf("Omega %v is not a permutation", p.Omega)
		}
		seen[i] = true
	}
}

func TestGreedyFigure2Cells(t *testing.T) {
	caps := []access.Capability{access.Cheap, access.Expensive, access.Impossible}
	funcs := []score.Func{score.Min(), score.Avg(), score.Max()}
	for _, sa := range caps {
		for _, ra := range caps {
			if sa == access.Impossible && ra == access.Impossible {
				continue
			}
			scn := access.MatrixCell(3, sa, ra, 10)
			for _, f := range funcs {
				p, err := Greedy(scn, f, 5, 1000, nil)
				if err != nil {
					t.Fatalf("Greedy(%s, %s): %v", scn.Name, f.Name(), err)
				}
				validatePlan(t, p, 3)
				if p.Evals != 0 {
					t.Fatalf("greedy plan ran %d estimator evals, want 0", p.Evals)
				}
				// At least one sorted-capable predicate must descend, or no
				// object is ever discovered.
				drained := false
				for i, pc := range scn.Preds {
					if pc.SortedOK && p.H[i] < 1 {
						drained = true
					}
					if !pc.SortedOK && p.H[i] < 1 {
						t.Fatalf("%s/%s: sorted-incapable p%d got depth %g", scn.Name, f.Name(), i, p.H[i])
					}
				}
				if !drained {
					t.Fatalf("%s/%s: no predicate drained: H=%v", scn.Name, f.Name(), p.H)
				}
			}
		}
	}
}

func TestGreedyProbeIncapableDrained(t *testing.T) {
	// Predicate 1 is sorted-only: probes cannot learn it, so the greedy
	// plan must descend its stream even for min-like F.
	scn := access.Scenario{Preds: []access.PredCost{
		{Sorted: access.UnitCost, SortedOK: true, Random: access.UnitCost, RandomOK: true},
		{Sorted: access.CostOf(5), SortedOK: true},
	}}
	p, err := Greedy(scn, score.Min(), 5, 1000, nil)
	if err != nil {
		t.Fatal(err)
	}
	if p.H[1] >= 1 {
		t.Fatalf("probe-incapable predicate not drained: H=%v", p.H)
	}
}

func TestGreedyOmegaPrefersCheapHighGain(t *testing.T) {
	// Predicate 1 probes 10x cheaper at the same expected mean: it must
	// lead the probe schedule. Predicate 2 is probe-incapable: last.
	scn := access.Scenario{Preds: []access.PredCost{
		{Sorted: access.UnitCost, SortedOK: true, Random: access.CostOf(10), RandomOK: true},
		{Sorted: access.UnitCost, SortedOK: true, Random: access.UnitCost, RandomOK: true},
		{Sorted: access.UnitCost, SortedOK: true},
	}}
	p, err := Greedy(scn, score.Avg(), 5, 1000, nil)
	if err != nil {
		t.Fatal(err)
	}
	if p.Omega[0] != 1 || p.Omega[2] != 2 {
		t.Fatalf("Omega = %v, want cheap probe first and probe-incapable last", p.Omega)
	}
}

func TestGreedyUsesObservedSlopes(t *testing.T) {
	scn := access.Uniform(2, 1, 1)
	flat, err := Greedy(scn, score.Avg(), 5, 1000, nil)
	if err != nil {
		t.Fatal(err)
	}
	// A steep stream (c=8) reaches the same rank at a much lower score
	// threshold: observed slopes must move the depths.
	steep, err := Greedy(scn, score.Avg(), 5, 1000, &ObservedStats{Slopes: []float64{8, 8}})
	if err != nil {
		t.Fatal(err)
	}
	if !(steep.H[0] < flat.H[0]) {
		t.Fatalf("steep slope should deepen score-space depth: %g vs %g", steep.H[0], flat.H[0])
	}
}

func TestOptimizeSchemeGreedy(t *testing.T) {
	scn := access.Uniform(2, 1, 10)
	p, err := Optimize(Config{Scheme: SchemeGreedy}, scn, score.Avg(), 5, 500)
	if err != nil {
		t.Fatal(err)
	}
	validatePlan(t, p, 2)
	direct, err := Greedy(scn, score.Avg(), 5, 500, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range p.H {
		if p.H[i] != direct.H[i] {
			t.Fatalf("Optimize(SchemeGreedy) H=%v differs from Greedy H=%v", p.H, direct.H)
		}
	}
}

func TestObservedStatsRekeyPlanCache(t *testing.T) {
	cache := NewPlanCache(8)
	scn := access.Uniform(2, 1, 10)
	cfg := Config{SampleSize: 20, MaxEvals: 50}
	if _, err := cache.Get(cfg, scn, score.Avg(), 5, 500); err != nil {
		t.Fatal(err)
	}
	drift := cfg
	drift.Observed = &ObservedStats{Slopes: []float64{4, 1}}
	if _, err := cache.Get(drift, scn, score.Avg(), 5, 500); err != nil {
		t.Fatal(err)
	}
	if st := cache.Stats(); st.Misses != 2 {
		t.Fatalf("observed stats must re-key the cache: stats=%+v", st)
	}
	// The same observations hit.
	again := cfg
	again.Observed = &ObservedStats{Slopes: []float64{4, 1}}
	if _, err := cache.Get(again, scn, score.Avg(), 5, 500); err != nil {
		t.Fatal(err)
	}
	if st := cache.Stats(); st.Hits != 1 {
		t.Fatalf("identical observations must share a plan: stats=%+v", st)
	}
	// Baseline observations (all-1 slopes) are the no-observation key.
	base := cfg
	base.Observed = &ObservedStats{Slopes: []float64{1, 1}}
	if _, err := cache.Get(base, scn, score.Avg(), 5, 500); err != nil {
		t.Fatal(err)
	}
	if st := cache.Stats(); st.Hits != 2 {
		t.Fatalf("baseline observations must share the unobserved plan: stats=%+v", st)
	}
}

func TestOptimizeWarpsSampleUnderObservations(t *testing.T) {
	// With observations attached, the estimator prices configurations
	// against the warped sample; the pipeline must still produce a valid
	// plan (the substantive cost assertions live in the adaptive property
	// tests at the repo root).
	scn := access.Uniform(2, 1, 10)
	cfg := Config{SampleSize: 30, MaxEvals: 60, Observed: &ObservedStats{Slopes: []float64{4, 4}}}
	p, err := Optimize(cfg, scn, score.Avg(), 5, 500)
	if err != nil {
		t.Fatal(err)
	}
	validatePlan(t, p, 2)
}
